// Cluster serving scaling sweep: 1 -> 4 homogeneous Titan X GPUs under each
// placement policy, with open-loop Poisson arrivals and per-request SLOs,
// plus a skewed/bursty scenario where load-aware placement has to beat
// round-robin on tail latency.
//
//   cluster_scaling [--tasks=N] [--seed=N] [--out=BENCH_cluster.json]
//
// Emits a stable JSON artifact (BENCH_cluster.json): throughput, latency
// percentiles, SLO violation rate and per-device load imbalance per sweep
// point. Byte-identical across reruns with the same flags — the ctest
// determinism check diffs two runs.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "common/stats.h"
#include "engine/session.h"
#include "harness/flags.h"
#include "obs/metrics.h"
#include "sim/process.h"

using namespace pagoda;

namespace {

struct Scenario {
  int gpus = 1;
  /// True: a mixed titan_x + tesla_k40 fleet (gpus alternating specs)
  /// instead of homogeneous Titan X nodes.
  bool mixed = false;
  std::string policy;
  cluster::ArrivalConfig arrival;
  cluster::RequestProfile profile;
  int requests = 0;
  std::uint64_t seed = 1;
};

struct Outcome {
  double elapsed_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double violation_rate = 0.0;
  double load_imbalance = 0.0;
  std::int64_t completed = 0;
  std::int64_t dropped = 0;
};

struct RunBox {
  static engine::SessionConfig clock_only() {
    engine::SessionConfig c;
    c.device = false;  // GpuNodes bring up their own device sub-sessions
    return c;
  }

  engine::Session session{clock_only()};
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher disp;
  sim::Time end_time = 0;
  bool done = false;

  static std::vector<cluster::NodeConfig> node_configs(
      const Scenario& sc, const cluster::NodeConfig& proto) {
    std::vector<cluster::NodeConfig> nodes =
        cluster::Cluster::homogeneous(sc.gpus, proto);
    if (sc.mixed) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        nodes[i].spec = (i % 2 == 0) ? gpu::GpuSpec::titan_x()
                                     : gpu::GpuSpec::tesla_k40();
      }
    }
    return nodes;
  }

  RunBox(const Scenario& sc, cluster::NodeConfig proto)
      : fleet(sim, node_configs(sc, proto)),
        disp(fleet, cluster::make_policy(sc.policy), [] {
          cluster::DispatcherConfig dc;
          return dc;
        }()) {}
};

sim::Process source(RunBox& box, const Scenario& sc) {
  cluster::ArrivalSequence seq(sc.arrival, sc.seed);
  for (int i = 0; i < sc.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await box.sim.delay(gap);
    box.disp.offer(cluster::synth_request(sc.profile, sc.seed, i));
  }
  box.disp.close();
}

sim::Process drainer(RunBox& box) {
  co_await box.disp.drain();
  box.end_time = box.sim.now();
  box.done = true;
}

Outcome run_scenario(const Scenario& sc) {
  cluster::NodeConfig proto;
  proto.pcie.bandwidth_bytes_per_sec = 12.0e9;  // the paper's platform
  proto.pcie.latency = sim::microseconds(2.0);

  RunBox box(sc, proto);
  box.fleet.start();
  box.sim.spawn(source(box, sc));
  box.sim.spawn(drainer(box));
  box.sim.run_until(sim::seconds(120.0));
  PAGODA_CHECK_MSG(box.done, "cluster scenario did not drain");

  const cluster::Dispatcher::Stats& st = box.disp.stats();
  Outcome out;
  out.elapsed_ms = sim::to_milliseconds(box.end_time);
  const double elapsed_s = sim::to_seconds(box.end_time);
  if (elapsed_s > 0.0) {
    out.throughput_rps = static_cast<double>(st.completed) / elapsed_s;
  }
  const std::span<const double> lat = box.disp.latencies_us();
  if (!lat.empty()) {
    out.p50_us = percentile(lat, 50);
    out.p99_us = percentile(lat, 99);
  }
  if (st.offered > 0) {
    out.violation_rate = static_cast<double>(st.slo_violations) /
                         static_cast<double>(st.offered);
  }
  out.load_imbalance = box.disp.load_imbalance();
  out.completed = st.completed;
  out.dropped = st.dropped;
  PAGODA_CHECK_MSG(st.slot_releases == st.admitted,
                   "backpressure slots leaked");
  box.fleet.shutdown();
  return out;
}

void write_outcome_json(std::ostream& os, const Outcome& o) {
  using obs::format_metric_double;
  os << "\"throughput_rps\": " << format_metric_double(o.throughput_rps)
     << ", \"p50_us\": " << format_metric_double(o.p50_us)
     << ", \"p99_us\": " << format_metric_double(o.p99_us)
     << ", \"violation_rate\": " << format_metric_double(o.violation_rate)
     << ", \"load_imbalance\": " << format_metric_double(o.load_imbalance)
     << ", \"completed\": " << o.completed << ", \"dropped\": " << o.dropped;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string bad = flags.unknown({"tasks", "seed", "out", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", bad.c_str());
    return 1;
  }
  if (flags.has("help")) {
    std::printf("cluster_scaling [--tasks=N] [--seed=N] [--out=FILE]\n");
    return 0;
  }
  const int requests = static_cast<int>(flags.get_int("tasks", 4096));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  const std::string out_path = flags.get("out", "BENCH_cluster.json");

  // Uniform service demand, open-loop Poisson at a per-GPU constant offered
  // load, 2 ms deadline. The rate sits near one device's serving capacity so
  // adding GPUs visibly recovers the tail.
  cluster::RequestProfile uniform;
  uniform.slo = sim::milliseconds(2.0);
  const double rate_per_gpu = 220.0e3;  // requests/s

  // Skewed: wide, long, GPU-bound requests (executor-warp residency is the
  // binding resource, so serving capacity scales with each device's
  // SMM count x clock — Titan X has ~2.2x a K40's), plus a rare (0.5%) 32x
  // heavy elephant. Rare enough that p99 measures the SMALL requests — the
  // ones that queue behind overloaded devices — not the elephants' own
  // intrinsic service time, which no placement policy can reduce.
  cluster::RequestProfile skewed = uniform;
  skewed.threads_per_task = 256;
  skewed.compute_cycles = 180000.0;
  skewed.stall_cycles = 360000.0;
  skewed.heavy_fraction = 0.005;
  skewed.heavy_multiplier = 32.0;

  std::printf("=== cluster scaling: %d requests/point, seed %llu ===\n",
              requests, static_cast<unsigned long long>(seed));
  std::printf("%-5s %-18s %12s %10s %10s %10s %10s\n", "gpus", "policy",
              "thr (k/s)", "p50 (us)", "p99 (us)", "viol", "imbal");

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"cluster_scaling\", \"requests\": " << requests
       << ", \"seed\": " << seed << ",\n  \"sweep\": [\n";

  bool first = true;
  for (int gpus = 1; gpus <= 4; ++gpus) {
    for (const std::string_view policy : cluster::all_policy_names()) {
      Scenario sc;
      sc.gpus = gpus;
      sc.policy = std::string(policy);
      sc.arrival.kind = cluster::ArrivalKind::Poisson;
      sc.arrival.rate_per_sec = rate_per_gpu * gpus;
      sc.profile = uniform;
      sc.requests = requests;
      sc.seed = seed;
      const Outcome o = run_scenario(sc);
      std::printf("%-5d %-18s %12.1f %10.1f %10.1f %9.2f%% %10.3f\n", gpus,
                  sc.policy.c_str(), o.throughput_rps / 1e3, o.p50_us,
                  o.p99_us, o.violation_rate * 100.0, o.load_imbalance);
      if (!first) json << ",\n";
      first = false;
      json << "    {\"gpus\": " << gpus << ", \"policy\": \"" << sc.policy
           << "\", ";
      write_outcome_json(json, o);
      json << "}";
    }
  }
  json << "\n  ],\n  \"bursty_skewed\": [\n";

  // The head-to-head: skewed heavy-tailed requests under a sustained bursty
  // overload on a MIXED fleet (1 Titan X + 1 Tesla K40, the K40 holding
  // only ~1/3 of the GPU-bound capacity). Arrivals outrun the fleet, so
  // tail latency is set by how the backlog drains: round-robin's blind
  // 50/50 split leaves half the work queued on the slow K40 long after the
  // Titan X runs dry, while work-aware least-loaded splits the backlog in
  // proportion to capacity and finishes both queues together — a ~1.5x
  // better p99, robustly across seeds, because the gap is structural
  // (capacity misallocation), not a lucky arrival pattern.
  const double skewed_rate_total = 300.0e3;
  double rr_p99 = 0.0;
  double ll_p99 = 0.0;
  first = true;
  for (const char* policy : {"round-robin", "least-loaded"}) {
    Scenario sc;
    sc.gpus = 2;
    sc.mixed = true;
    sc.policy = policy;
    sc.arrival.kind = cluster::ArrivalKind::Bursty;
    sc.arrival.rate_per_sec = skewed_rate_total;
    sc.arrival.burst_factor = 2.0;
    sc.arrival.mean_on = sim::microseconds(500.0);
    sc.profile = skewed;
    sc.requests = requests;
    sc.seed = seed;
    const Outcome o = run_scenario(sc);
    std::printf("%-5s %-18s %12.1f %10.1f %10.1f %9.2f%% %10.3f\n", "2mix",
                sc.policy.c_str(), o.throughput_rps / 1e3, o.p50_us, o.p99_us,
                o.violation_rate * 100.0, o.load_imbalance);
    if (sc.policy == "round-robin") rr_p99 = o.p99_us;
    if (sc.policy == "least-loaded") ll_p99 = o.p99_us;
    if (!first) json << ",\n";
    first = false;
    json << "    {\"gpus\": 2, \"mixed\": true, \"policy\": \"" << sc.policy
         << "\", ";
    write_outcome_json(json, o);
    json << "}";
  }
  json << "\n  ]\n}\n";

  std::printf("\nbursty/skewed p99: round-robin %.1f us, least-loaded %.1f us "
              "(%.2fx)\n",
              rr_p99, ll_p99, ll_p99 > 0.0 ? rr_p99 / ll_p99 : 0.0);
  std::printf("-> %s\n", out_path.c_str());
  PAGODA_CHECK_MSG(ll_p99 < rr_p99,
                   "least-loaded must beat round-robin on bursty p99");
  return 0;
}
