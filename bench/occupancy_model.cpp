// Reproduces the §2 occupancy arithmetic and reports the theoretical
// residency for each benchmark's native-kernel footprint.
#include <cstdio>

#include "gpu/occupancy.h"
#include "workloads/workload.h"

using namespace pagoda;
using gpu::BlockFootprint;
using gpu::GpuSpec;

int main() {
  const GpuSpec spec = GpuSpec::titan_x();
  std::printf("=== Section 2 occupancy arithmetic (Titan X: %d SMMs x %d "
              "warp slots) ===\n\n",
              spec.num_smms, spec.warps_per_smm);

  const auto narrow = BlockFootprint::of(256, 32, 0);
  std::printf("one 256-thread narrow task resident:      %5.2f%%  (paper: "
              "0.52%%)\n",
              gpu::device_occupancy(spec, narrow, 1) * 100.0);
  std::printf("32 such tasks under HyperQ:               %5.2f%%  (paper: "
              "16.67%%)\n\n",
              gpu::device_occupancy(spec, narrow, 32) * 100.0);

  std::printf("MasterKernel footprint (1024 thr, 32 regs, 32KB shmem):\n");
  const auto mtb = gpu::max_residency(
      spec, BlockFootprint::of(1024, 32, 32 * 1024));
  std::printf("  %d blocks/SMM -> %d warps/SMM -> occupancy %5.1f%% "
              "(design goal: 100%%)\n\n",
              mtb.blocks_per_smm, mtb.warps_per_smm, mtb.occupancy * 100.0);

  std::printf("native 128-thread kernels, per-benchmark register budgets "
              "(Table 3):\n");
  std::printf("%-6s %5s %14s %12s\n", "bench", "regs", "blocks/SMM",
              "occupancy");
  for (const auto wl_name : workloads::all_workload_names()) {
    if (wl_name == "MPE") continue;
    auto wl = workloads::make_workload(wl_name);
    const int regs = wl->traits().default_registers;
    const auto r = gpu::max_residency(spec, BlockFootprint::of(128, regs, 0));
    std::printf("%-6s %5d %14d %11.1f%%\n", std::string(wl_name).c_str(),
                regs, r.blocks_per_smm, r.occupancy * 100.0);
  }
  return 0;
}
