// QoS isolation under overload: mixed interactive + batch traffic on one
// Titan X, swept over every scheduling policy and >= 5 seeds.
//
//   qos_isolation [--tasks=N] [--seeds=N] [--seed=BASE] [--out=BENCH_sched.json]
//                 [--trace-spans=spans.json]
//
// --trace-spans arms a passive obs::RequestTracer on the fifo run of the
// first seed — the run where interactive requests blow their 2 ms SLO —
// and dumps a pagoda-trace-spans-v1 file for `trace_report --explain-slo`.
// Tracing never perturbs the simulation, so the BENCH json is identical
// with or without it.
//
// The setup is a sustained overload: open-loop Poisson arrivals above the
// device's serving rate, 25% small tight-SLO interactive requests
// deterministically interleaved with 75% heavy batch requests. Under fifo
// the interactive tail is set by the whole backlog ahead of it; under
// priority/edf interactive work jumps the admission queue (and the
// scheduler-warp claim order), so its p99 collapses to near its intrinsic
// service time while batch goodput is unchanged — every request still
// completes (queue_limit=0), so batch completions are equal across policies
// by construction, and CHECKed.
//
// CHECK-enforced for every seed: interactive p99 under edf AND priority is
// >= 2x better than under fifo. wfq is reported as data (its weighted
// shares bound batch's penalty instead of strictly preferring interactive).
//
// Emits BENCH_sched.json, byte-identical across reruns with the same flags
// (the ctest/check.sh determinism gate diffs two runs).
#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "common/stats.h"
#include "engine/session.h"
#include "harness/flags.h"
#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "sched/policy.h"
#include "sim/process.h"

using namespace pagoda;

namespace {

constexpr std::array<sched::PolicyKind, 4> kPolicies = {
    sched::PolicyKind::kFifo, sched::PolicyKind::kPriority,
    sched::PolicyKind::kEdf, sched::PolicyKind::kWfq};

struct Scenario {
  sched::PolicyKind policy = sched::PolicyKind::kFifo;
  int requests = 0;
  std::uint64_t seed = 1;
  double rate_per_sec = 0.0;
  cluster::RequestProfile interactive;
  cluster::RequestProfile batch;
};

struct Outcome {
  double elapsed_ms = 0.0;
  double throughput_rps = 0.0;
  double inter_p50_us = 0.0;
  double inter_p99_us = 0.0;
  double batch_p50_us = 0.0;
  double batch_p99_us = 0.0;
  std::int64_t inter_completed = 0;
  std::int64_t batch_completed = 0;
};

struct RunBox {
  static engine::SessionConfig clock_only() {
    engine::SessionConfig c;
    c.device = false;  // the GpuNode brings up its own device sub-session
    return c;
  }

  engine::Session session{clock_only()};
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher disp;
  sim::Time end_time = 0;
  bool done = false;

  static cluster::NodeConfig node_config(const Scenario& sc) {
    cluster::NodeConfig nc;
    nc.pcie.bandwidth_bytes_per_sec = 12.0e9;  // the paper's platform
    nc.pcie.latency = sim::microseconds(2.0);
    // A small TaskTable keeps the in-flight set shallow, so the backlog —
    // and the ordering decision — lives in the dispatcher's admission
    // queue rather than inside the device.
    nc.pagoda.rows_per_column = 4;
    // One policy end-to-end: the scheduler warps claim TaskTable entries in
    // the same order the dispatcher admits.
    nc.pagoda.sched.kind = sc.policy;
    return nc;
  }

  static cluster::DispatcherConfig dispatcher_config(const Scenario& sc) {
    cluster::DispatcherConfig dc;
    dc.sched.kind = sc.policy;
    dc.qos = true;  // per-class ledgers under fifo too
    return dc;
  }

  explicit RunBox(const Scenario& sc)
      : fleet(sim, {node_config(sc)}),
        disp(fleet, cluster::make_policy("round-robin"),
             dispatcher_config(sc)) {}
};

/// Deterministic class interleave: every 4th request is interactive. The
/// mix is a pure function of the index, so every policy sees the identical
/// arrival trace for a given seed.
bool is_interactive(int index) { return index % 4 == 0; }

sim::Process source(RunBox& box, const Scenario& sc) {
  cluster::ArrivalConfig acfg;
  acfg.kind = cluster::ArrivalKind::Poisson;
  acfg.rate_per_sec = sc.rate_per_sec;
  cluster::ArrivalSequence seq(acfg, sc.seed);
  for (int i = 0; i < sc.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await box.sim.delay(gap);
    const cluster::RequestProfile& p =
        is_interactive(i) ? sc.interactive : sc.batch;
    box.disp.offer(cluster::synth_request(p, sc.seed, i));
  }
  box.disp.close();
}

sim::Process drainer(RunBox& box) {
  co_await box.disp.drain();
  box.end_time = box.sim.now();
  box.done = true;
}

Outcome run_scenario(const Scenario& sc,
                     obs::RequestTracer* tracer = nullptr) {
  RunBox box(sc);
  if (tracer != nullptr) box.disp.set_tracer(tracer);
  box.fleet.start();
  box.sim.spawn(source(box, sc));
  box.sim.spawn(drainer(box));
  box.sim.run_until(sim::seconds(600.0));
  PAGODA_CHECK_MSG(box.done, "qos scenario did not drain");

  Outcome out;
  out.elapsed_ms = sim::to_milliseconds(box.end_time);
  const double elapsed_s = sim::to_seconds(box.end_time);
  if (elapsed_s > 0.0) {
    out.throughput_rps =
        static_cast<double>(box.disp.stats().completed) / elapsed_s;
  }
  const std::span<const double> inter =
      box.disp.class_latencies_us(sched::Class::kInteractive);
  const std::span<const double> batch =
      box.disp.class_latencies_us(sched::Class::kBatch);
  PAGODA_CHECK_MSG(!inter.empty() && !batch.empty(),
                   "both classes must complete work");
  out.inter_p50_us = percentile(inter, 50);
  out.inter_p99_us = percentile(inter, 99);
  out.batch_p50_us = percentile(batch, 50);
  out.batch_p99_us = percentile(batch, 99);

  // Exactly-once per class, no losses: queue_limit=0 means nothing is
  // dropped, shed or evicted, so "equal batch goodput" holds by
  // construction — and is enforced here and across policies in main().
  for (const sched::Class c :
       {sched::Class::kInteractive, sched::Class::kStandard,
        sched::Class::kBatch}) {
    const cluster::Dispatcher::ClassStats& cs = box.disp.class_stats(c);
    PAGODA_CHECK_MSG(cs.offered == cs.admitted && cs.dropped == 0,
                     "overload run must admit everything");
    PAGODA_CHECK_MSG(cs.slot_releases == cs.completed + cs.shed &&
                         cs.slot_releases == cs.admitted,
                     "per-class ledger must balance");
    PAGODA_CHECK_MSG(cs.shed == 0 && cs.evicted == 0,
                     "no losses in the unbounded-queue sweep");
  }
  out.inter_completed =
      box.disp.class_stats(sched::Class::kInteractive).completed;
  out.batch_completed = box.disp.class_stats(sched::Class::kBatch).completed;
  box.fleet.shutdown();
  return out;
}

void write_outcome_json(std::ostream& os, const Outcome& o) {
  using obs::format_metric_double;
  os << "\"inter_p50_us\": " << format_metric_double(o.inter_p50_us)
     << ", \"inter_p99_us\": " << format_metric_double(o.inter_p99_us)
     << ", \"batch_p50_us\": " << format_metric_double(o.batch_p50_us)
     << ", \"batch_p99_us\": " << format_metric_double(o.batch_p99_us)
     << ", \"throughput_rps\": " << format_metric_double(o.throughput_rps)
     << ", \"inter_completed\": " << o.inter_completed
     << ", \"batch_completed\": " << o.batch_completed
     << ", \"elapsed_ms\": " << format_metric_double(o.elapsed_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string bad = flags.unknown(
      {"tasks", "seeds", "seed", "rate", "out", "trace-spans", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", bad.c_str());
    return 1;
  }
  if (flags.has("help")) {
    std::printf(
        "qos_isolation [--tasks=N] [--seeds=N] [--seed=BASE] "
        "[--rate=REQ_PER_S] [--out=FILE] [--trace-spans=FILE]\n");
    return 0;
  }
  const int requests = static_cast<int>(flags.get_int("tasks", 2048));
  const int num_seeds = static_cast<int>(flags.get_int("seeds", 5));
  PAGODA_CHECK_MSG(num_seeds >= 1, "--seeds must be >= 1");
  const auto base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  const std::string out_path = flags.get("out", "BENCH_sched.json");
  const bool want_spans = flags.has("trace-spans");
  const std::string spans_path = flags.get("trace-spans");
  if (want_spans && spans_path.empty()) {
    std::fprintf(stderr, "error: --trace-spans needs a file path\n");
    return 1;
  }

  // Fail fast on unwritable output paths, before any simulation runs.
  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "error: --out: cannot open output path '%s'\n",
                 out_path.c_str());
    return 2;
  }
  std::ofstream spans_out;
  if (want_spans) {
    spans_out.open(spans_path);
    if (!spans_out) {
      std::fprintf(stderr,
                   "error: --trace-spans: cannot open output path '%s'\n",
                   spans_path.c_str());
      return 2;
    }
  }

  // Interactive: small, short, 2 ms SLO. Batch: wide and ~25x the service
  // demand, no deadline. The Poisson rate sits well above the mixed-traffic
  // serving rate of one Titan X, so a backlog forms and ordering decides
  // who waits.
  Scenario proto;
  proto.requests = requests;
  proto.rate_per_sec = flags.get_double("rate", 300.0e3);
  PAGODA_CHECK_MSG(proto.rate_per_sec > 0.0, "--rate must be positive");
  proto.interactive.threads_per_task = 64;
  proto.interactive.compute_cycles = 6000.0;
  proto.interactive.stall_cycles = 12000.0;
  proto.interactive.h2d_bytes = 2048;
  proto.interactive.d2h_bytes = 512;
  proto.interactive.slo = sim::milliseconds(2.0);
  proto.interactive.cls = sched::Class::kInteractive;
  proto.batch.threads_per_task = 256;
  proto.batch.compute_cycles = 120000.0;
  proto.batch.stall_cycles = 240000.0;
  proto.batch.slo = 0;  // no deadline: ranks last under edf
  proto.batch.cls = sched::Class::kBatch;

  std::printf("=== qos isolation: %d requests/run, %d seeds, base %llu ===\n",
              requests, num_seeds,
              static_cast<unsigned long long>(base_seed));
  std::printf("%-6s %-10s %12s %12s %12s %12s\n", "seed", "policy",
              "int p99", "int p50", "batch p99", "batch done");

  json << "{\n  \"bench\": \"qos_isolation\", \"requests\": " << requests
       << ", \"seeds\": " << num_seeds << ", \"base_seed\": " << base_seed
       << ",\n  \"runs\": [\n";

  bool first = true;
  double worst_edf_gain = 0.0;
  double worst_prio_gain = 0.0;
  bool have_worst = false;
  obs::RequestTracer tracer;
  for (int s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);
    std::array<Outcome, kPolicies.size()> outs;
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
      Scenario sc = proto;
      sc.policy = kPolicies[p];
      sc.seed = seed;
      // Trace the fifo run of the first seed: the one with SLO casualties.
      const bool traced = want_spans && s == 0 &&
                          kPolicies[p] == sched::PolicyKind::kFifo;
      outs[p] = run_scenario(sc, traced ? &tracer : nullptr);
      std::printf("%-6llu %-10s %10.1fus %10.1fus %10.1fus %12lld\n",
                  static_cast<unsigned long long>(seed),
                  std::string(sched::to_string(sc.policy)).c_str(),
                  outs[p].inter_p99_us, outs[p].inter_p50_us,
                  outs[p].batch_p99_us,
                  static_cast<long long>(outs[p].batch_completed));
      if (!first) json << ",\n";
      first = false;
      json << "    {\"seed\": " << seed << ", \"policy\": \""
           << sched::to_string(sc.policy) << "\", ";
      write_outcome_json(json, outs[p]);
      json << "}";
    }
    const Outcome& fifo = outs[0];
    const Outcome& prio = outs[1];
    const Outcome& edf = outs[2];
    // Equal batch goodput across policies: identical arrival trace, nothing
    // lost, so completions must match exactly.
    for (const Outcome& o : outs) {
      PAGODA_CHECK_MSG(o.batch_completed == fifo.batch_completed &&
                           o.inter_completed == fifo.inter_completed,
                       "per-class goodput must be policy-independent");
    }
    const double edf_gain = fifo.inter_p99_us / edf.inter_p99_us;
    const double prio_gain = fifo.inter_p99_us / prio.inter_p99_us;
    if (!have_worst || edf_gain < worst_edf_gain) worst_edf_gain = edf_gain;
    if (!have_worst || prio_gain < worst_prio_gain) {
      worst_prio_gain = prio_gain;
    }
    have_worst = true;
    PAGODA_CHECK_MSG(edf_gain >= 2.0,
                     "edf must beat fifo on interactive p99 by >= 2x");
    PAGODA_CHECK_MSG(prio_gain >= 2.0,
                     "priority must beat fifo on interactive p99 by >= 2x");
  }
  json << "\n  ],\n  \"worst_gain\": {\"edf\": "
       << obs::format_metric_double(worst_edf_gain)
       << ", \"priority\": " << obs::format_metric_double(worst_prio_gain)
       << "}\n}\n";

  std::printf("\nworst-seed interactive p99 gain vs fifo: edf %.2fx, "
              "priority %.2fx (floor 2x)\n",
              worst_edf_gain, worst_prio_gain);
  std::printf("-> %s\n", out_path.c_str());
  if (want_spans) {
    tracer.write_json(spans_out);
    std::printf("spans      %zu requests (fifo, seed %llu) -> %s\n",
                tracer.records().size(),
                static_cast<unsigned long long>(base_seed),
                spans_path.c_str());
  }
  return 0;
}
