// Reproduces Figure 10: average per-task latency vs. task count.
//
// Paper: in a statically fused kernel (or any batch system) a task's result
// is only available when the whole kernel/batch finishes, so average task
// latency grows with the number of fused tasks; Pagoda's per-task latency
// stays flat regardless of how many tasks are launched. Representative
// irregular (3DES) and regular (MM) benchmarks.
#include <vector>

#include "bench_common.h"
#include "common/stats.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/8192);
  bench::print_header("Figure 10: average task latency vs task count", args);

  std::vector<int> counts = {128, 256, 512, 1024, 2048, 4096, 8192};
  if (args.full) {
    counts.push_back(16384);
    counts.push_back(32768);
  }

  for (const char* wl : {"3DES", "MM"}) {
    Table table({"tasks", "Fused avg latency", "Pagoda avg latency",
                 "Fused/Pagoda"});
    for (const int n : counts) {
      workloads::WorkloadConfig wcfg = args.wcfg();
      wcfg.num_tasks = n;
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.collect_latencies = true;
      const Measurement fu = run_experiment(wl, "Fusion", wcfg, rcfg);
      const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);
      const double fu_avg = arithmetic_mean(fu.result.task_latency_us);
      const double pa_avg = arithmetic_mean(pa.result.task_latency_us);
      table.add_row({std::to_string(n), fmt_us(fu_avg), fmt_us(pa_avg),
                     fmt_x(fu_avg / pa_avg)});
    }
    std::printf("-- %s --\n", wl);
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: fused latency grows ~linearly with task count; "
      "Pagoda latency stays flat.\n");
  return 0;
}
