// Availability under fault injection: how much admitted work the cluster
// still delivers as the task-fault rate climbs, with and without retries,
// plus a mid-run node-crash scenario (with and without recovery).
//
//   fault_recovery [--tasks=N] [--seed=N] [--out=BENCH_fault.json]
//
// Sweep: task-fault rates 0 -> 0.6 x retry budget {0, 3} on a 2-GPU
// least-loaded cluster under open-loop Poisson arrivals. "Goodput" is the
// delivered fraction of the offered stream times the offered rate
// (availability x arrival rate) — elapsed-time throughput would conflate
// retry backoff tail with lost work. With budget 3 a request survives
// unless four independent attempts all fail (loss = p^4), so at p = 0.6
// retries must deliver >= 2x the no-retry goodput (0.87 vs 0.40 expected);
// the CHECK at the bottom enforces that margin for every seed.
//
// Emits a stable JSON artifact, byte-identical across reruns with the same
// flags — tools/check.sh diffs two runs.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "engine/session.h"
#include "fault/plan.h"
#include "harness/flags.h"
#include "obs/metrics.h"
#include "sim/process.h"

using namespace pagoda;

namespace {

struct Scenario {
  int gpus = 2;
  std::string policy = "least-loaded";
  double rate_per_sec = 300.0e3;
  std::string faults;  // FaultPlan spec
  int retry_budget = 0;
  sim::Duration task_timeout = 0;
  int requests = 0;
  std::uint64_t seed = 1;
};

struct Outcome {
  double availability = 0.0;  // completed / offered
  double goodput_rps = 0.0;   // availability x offered rate
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t retries = 0;
  std::int64_t redispatched = 0;
  std::int64_t injected_task_faults = 0;
  std::int64_t detected_node_deaths = 0;
  std::int64_t nodes_recovered = 0;
  double elapsed_ms = 0.0;
};

struct RunBox {
  static engine::SessionConfig clock_only() {
    engine::SessionConfig c;
    c.device = false;  // GpuNodes bring up their own device sub-sessions
    return c;
  }

  engine::Session session{clock_only()};
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher disp;
  sim::Time end_time = 0;
  bool done = false;

  static cluster::DispatcherConfig dispatcher_config(const Scenario& sc) {
    cluster::DispatcherConfig dc;
    std::string err;
    const auto plan = fault::FaultPlan::parse(sc.faults, &err);
    PAGODA_CHECK_MSG(plan.has_value(), "bad fault spec in bench scenario");
    dc.faults = *plan;
    if (dc.faults.seed == 0) dc.faults.seed = sc.seed;
    dc.retry.seed = dc.faults.seed;
    dc.retry.budget = sc.retry_budget;
    dc.task_timeout = sc.task_timeout;
    return dc;
  }

  explicit RunBox(const Scenario& sc)
      : fleet(sim, cluster::Cluster::homogeneous(sc.gpus)),
        disp(fleet, cluster::make_policy(sc.policy), dispatcher_config(sc)) {}
};

sim::Process source(RunBox& box, const Scenario& sc) {
  cluster::ArrivalConfig acfg;
  acfg.kind = cluster::ArrivalKind::Poisson;
  acfg.rate_per_sec = sc.rate_per_sec;
  cluster::ArrivalSequence seq(acfg, sc.seed);
  cluster::RequestProfile profile;  // uniform light requests, no SLO: the
  for (int i = 0; i < sc.requests; ++i) {  // sweep measures pure availability
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await box.sim.delay(gap);
    box.disp.offer(cluster::synth_request(profile, sc.seed, i));
  }
  box.disp.close();
}

sim::Process drainer(RunBox& box) {
  co_await box.disp.drain();
  box.end_time = box.sim.now();
  box.done = true;
}

Outcome run_scenario(const Scenario& sc) {
  RunBox box(sc);
  box.fleet.start();
  box.sim.spawn(source(box, sc));
  box.sim.spawn(drainer(box));
  box.sim.run_until(sim::seconds(120.0));
  PAGODA_CHECK_MSG(box.done, "fault scenario did not drain");

  const cluster::Dispatcher::Stats& st = box.disp.stats();
  // The exactly-once ledger must balance under every plan in the sweep.
  PAGODA_CHECK_MSG(st.completed + st.shed == st.admitted,
                   "request lost or double-resolved");
  PAGODA_CHECK_MSG(st.slot_releases == st.admitted, "slot ledger leaked");

  Outcome out;
  out.completed = st.completed;
  out.shed = st.shed;
  out.retries = st.retries;
  out.redispatched = st.redispatched;
  out.injected_task_faults = st.injected_task_faults;
  out.detected_node_deaths = st.detected_node_deaths;
  out.nodes_recovered = st.nodes_recovered;
  out.elapsed_ms = sim::to_milliseconds(box.end_time);
  if (st.offered > 0) {
    out.availability = static_cast<double>(st.completed) /
                       static_cast<double>(st.offered);
  }
  out.goodput_rps = out.availability * sc.rate_per_sec;
  box.fleet.shutdown();
  return out;
}

void write_outcome_json(std::ostream& os, const Outcome& o) {
  using obs::format_metric_double;
  os << "\"availability\": " << format_metric_double(o.availability)
     << ", \"goodput_rps\": " << format_metric_double(o.goodput_rps)
     << ", \"completed\": " << o.completed << ", \"shed\": " << o.shed
     << ", \"retries\": " << o.retries
     << ", \"redispatched\": " << o.redispatched
     << ", \"task_faults\": " << o.injected_task_faults
     << ", \"node_deaths\": " << o.detected_node_deaths
     << ", \"recovered\": " << o.nodes_recovered
     << ", \"elapsed_ms\": " << format_metric_double(o.elapsed_ms);
}

std::string fault_spec(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "task:%.2f", rate);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string bad = flags.unknown({"tasks", "seed", "out", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", bad.c_str());
    return 1;
  }
  if (flags.has("help")) {
    std::printf("fault_recovery [--tasks=N] [--seed=N] [--out=FILE]\n");
    return 0;
  }
  const int requests = static_cast<int>(flags.get_int("tasks", 2000));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  const std::string out_path = flags.get("out", "BENCH_fault.json");

  std::printf("=== availability under fault: %d requests/point, seed %llu "
              "===\n",
              requests, static_cast<unsigned long long>(seed));
  std::printf("%-10s %-8s %12s %12s %10s %10s\n", "fault", "budget", "avail",
              "goodput k/s", "retries", "shed");

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"fault_recovery\", \"requests\": " << requests
       << ", \"seed\": " << seed << ",\n  \"sweep\": [\n";

  const double rates[] = {0.0, 0.15, 0.3, 0.45, 0.6};
  double goodput_retry_at_max = 0.0;
  double goodput_noretry_at_max = 0.0;
  bool first = true;
  for (const double rate : rates) {
    for (const int budget : {0, 3}) {
      Scenario sc;
      sc.faults = rate > 0.0 ? fault_spec(rate) : std::string();
      sc.retry_budget = budget;
      sc.requests = requests;
      sc.seed = seed;
      const Outcome o = run_scenario(sc);
      std::printf("%-10.2f %-8d %12.3f %12.1f %10lld %10lld\n", rate, budget,
                  o.availability, o.goodput_rps / 1e3,
                  static_cast<long long>(o.retries),
                  static_cast<long long>(o.shed));
      if (rate == rates[4]) {
        if (budget == 3) goodput_retry_at_max = o.goodput_rps;
        if (budget == 0) goodput_noretry_at_max = o.goodput_rps;
      }
      if (!first) json << ",\n";
      first = false;
      json << "    {\"fault_rate\": " << obs::format_metric_double(rate)
           << ", \"budget\": " << budget << ", ";
      write_outcome_json(json, o);
      json << "}";
    }
  }
  json << "\n  ],\n  \"crash\": [\n";

  // Mid-run node crash on the 2-GPU fleet: the watchdog detects the death,
  // the dead node's in-flight work re-dispatches to the survivor, and (in
  // the recovery variant) the node returns to rotation. Either way NOTHING
  // may be lost: redispatch is budget-free, so with no other fault source
  // every admitted request completes.
  first = true;
  // Crash a third of the way through the arrival horizon so the node holds
  // in-flight work when it dies, whatever --tasks is.
  const long crash_us =
      static_cast<long>(1e6 * requests / (3.0 * 300.0e3));
  for (const bool recovers : {false, true}) {
    Scenario sc;
    char spec[64];
    if (recovers) {
      std::snprintf(spec, sizeof(spec), "crash:1:%ld:%ld", crash_us,
                    crash_us);
    } else {
      std::snprintf(spec, sizeof(spec), "crash:1:%ld", crash_us);
    }
    sc.faults = spec;
    sc.retry_budget = 3;
    sc.task_timeout = sim::microseconds(3000.0);
    sc.requests = requests;
    sc.seed = seed;
    const Outcome o = run_scenario(sc);
    std::printf("%-10s %-8d %12.3f %12.1f %10lld %10lld\n",
                recovers ? "crash+rec" : "crash", 3, o.availability,
                o.goodput_rps / 1e3, static_cast<long long>(o.redispatched),
                static_cast<long long>(o.shed));
    PAGODA_CHECK_MSG(o.detected_node_deaths == 1,
                     "watchdog must detect the crash exactly once");
    PAGODA_CHECK_MSG(o.nodes_recovered == (recovers ? 1 : 0),
                     "recovery count mismatch");
    PAGODA_CHECK_MSG(o.shed == 0 && o.availability >= 1.0,
                     "a node crash must not lose admitted work");
    if (!first) json << ",\n";
    first = false;
    json << "    {\"recovers\": " << (recovers ? "true" : "false") << ", ";
    write_outcome_json(json, o);
    json << "}";
  }
  json << "\n  ]\n}\n";

  const double ratio = goodput_noretry_at_max > 0.0
                           ? goodput_retry_at_max / goodput_noretry_at_max
                           : 0.0;
  std::printf("\ngoodput at fault rate %.2f: retry %.1f k/s vs no-retry "
              "%.1f k/s (%.2fx)\n",
              rates[4], goodput_retry_at_max / 1e3,
              goodput_noretry_at_max / 1e3, ratio);
  std::printf("-> %s\n", out_path.c_str());
  PAGODA_CHECK_MSG(ratio >= 2.0,
                   "retries must sustain >= 2x the no-retry goodput at the "
                   "top of the fault sweep");
  return 0;
}
