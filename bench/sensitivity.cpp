// Calibration-sensitivity sweep (threats-to-validity support for
// EXPERIMENTS.md): how do the headline geomeans move when the model's three
// main constants are varied?
//   (a) PCIe bandwidth: 8 / 12 / 16 GB/s
//   (b) kernel-launch cost: 2.5 / 5 / 10 us
//   (c) the stall multiplier of the kernel cost model is workload-embedded;
//       its proxy here is the HyperQ compute gap measured at two scales.
#include <vector>

#include "bench_common.h"
#include "common/stats.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

namespace {

double geomean_pagoda_over_hyperq(const BenchArgs& args,
                                  const baselines::RunConfig& rcfg) {
  std::vector<double> ratios;
  for (const char* wl : {"MB", "CONV", "MM", "3DES", "MPE"}) {
    const workloads::WorkloadConfig wcfg = args.wcfg();
    const Measurement hq = run_experiment(wl, "HyperQ", wcfg, rcfg);
    const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);
    ratios.push_back(speedup(hq, pa));
  }
  return geometric_mean(ratios);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/2048);
  bench::print_header(
      "Calibration sensitivity: Pagoda-over-HyperQ geomean (5 benchmarks)",
      args);

  {
    Table table({"PCIe bandwidth", "geomean Pagoda/HyperQ"});
    for (const double gbps : {8.0, 12.0, 16.0}) {
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.pcie.bandwidth_bytes_per_sec = gbps * 1e9;
      table.add_row({std::to_string(static_cast<int>(gbps)) + " GB/s",
                     fmt_x(geomean_pagoda_over_hyperq(args, rcfg))});
    }
    std::printf("-- (a) PCIe bandwidth --\n");
    table.print(std::cout);
    std::printf("\n");
  }

  {
    Table table({"kernel launch cost", "geomean Pagoda/HyperQ"});
    for (const double us : {2.5, 5.0, 10.0}) {
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.host.kernel_launch = sim::microseconds(us);
      char label[32];
      std::snprintf(label, sizeof(label), "%.1f us", us);
      table.add_row({label, fmt_x(geomean_pagoda_over_hyperq(args, rcfg))});
    }
    std::printf("-- (b) kernel-launch cost --\n");
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "Expected shape: the Pagoda advantage is robust (>1x everywhere) and "
      "grows with launch cost (HyperQ pays one serialized launch per task). "
      "It also grows with PCIe bandwidth: when copies stop being the shared "
      "bottleneck, HyperQ's launch path is exposed while Pagoda's cheaper "
      "spawn path keeps scaling.\n");
  return 0;
}
