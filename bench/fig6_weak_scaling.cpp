// Reproduces Figure 6: weak scaling with the number of tasks.
//
// Paper: 128 threads per task; execution time as task count grows from 64 to
// 32K for MB, CONV, DCT, 3DES and MPE. For low task counts no scheme
// occupies the GPU and HyperQ/GeMTC do fairly well; beyond ~512 tasks Pagoda
// pulls ahead on utilization and scales linearly.
#include <vector>

#include "bench_common.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/8192);
  bench::print_header("Figure 6: weak scaling with task count", args);

  std::vector<int> counts = {64, 128, 512, 2048, 8192};
  if (args.full) counts.push_back(32768);

  for (const char* wl : {"MB", "CONV", "DCT", "3DES", "MPE"}) {
    Table table({"tasks", "HyperQ", "GeMTC", "Pagoda", "HyperQ/Pagoda",
                 "GeMTC/Pagoda"});
    for (const int n : counts) {
      workloads::WorkloadConfig wcfg = args.wcfg();
      wcfg.num_tasks = n;
      const baselines::RunConfig rcfg = args.rcfg();
      const Measurement hq = run_experiment(wl, "HyperQ", wcfg, rcfg);
      const Measurement ge = run_experiment(wl, "GeMTC", wcfg, rcfg);
      const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);
      table.add_row({std::to_string(n), fmt_ms(hq.result.elapsed),
                     fmt_ms(ge.result.elapsed), fmt_ms(pa.result.elapsed),
                     fmt_x(speedup(hq, pa)), fmt_x(speedup(ge, pa))});
    }
    std::printf("-- %s --\n", wl);
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: ratios near (or below) 1 for small task counts, "
      "growing past 1 beyond ~512 tasks; Pagoda time scales ~linearly.\n");
  return 0;
}
