// Reproduces Figure 5: overall performance comparison.
//
// Paper: 32K tasks per benchmark (SLUD 273K), 128 threads per task,
// execution time includes data copies and compute. Speedups over sequential
// execution; Pagoda achieves geometric means of 5.70x over 20-core PThreads,
// 1.51x over CUDA-HyperQ, and 1.69x over GeMTC.
#include <vector>

#include "bench_common.h"
#include "common/stats.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/4096);
  bench::print_header("Figure 5: overall speedup over sequential execution",
                      args);

  const std::vector<std::string> runtimes = {"PThreads", "HyperQ", "GeMTC",
                                             "Pagoda"};
  Table table({"benchmark", "tasks", "PThreads", "HyperQ", "GeMTC", "Pagoda",
               "Pagoda time"});

  std::vector<double> vs_pthreads;
  std::vector<double> vs_hyperq;
  std::vector<double> vs_gemtc;

  for (const std::string_view wl : workloads::all_workload_names()) {
    workloads::WorkloadConfig wcfg = args.wcfg();
    if (wl == "SLUD") {
      // Paper: 273K tasks for SLUD; scale proportionally to the bench size.
      wcfg.num_tasks = args.full ? 273000 : args.tasks * 8;
    }
    const baselines::RunConfig rcfg = args.rcfg();

    const Measurement seq = run_experiment(wl, "Sequential", wcfg, rcfg);
    std::vector<std::string> row{std::string(wl),
                                 std::to_string(wcfg.num_tasks)};
    Measurement pagoda_m;
    double pthreads_time = 0;
    double hyperq_time = 0;
    double gemtc_time = 0;
    for (const std::string& rt : runtimes) {
      if (!runtime_supports(wl, rt, wcfg)) {
        row.push_back("n/a");
        continue;
      }
      const Measurement m = run_experiment(wl, rt, wcfg, rcfg);
      row.push_back(fmt_x(speedup(seq, m)));
      if (rt == "Pagoda") pagoda_m = m;
      if (rt == "PThreads") pthreads_time = static_cast<double>(m.result.elapsed);
      if (rt == "HyperQ") hyperq_time = static_cast<double>(m.result.elapsed);
      if (rt == "GeMTC") gemtc_time = static_cast<double>(m.result.elapsed);
    }
    row.push_back(fmt_ms(pagoda_m.result.elapsed));
    table.add_row(std::move(row));

    const auto p = static_cast<double>(pagoda_m.result.elapsed);
    if (pthreads_time > 0) vs_pthreads.push_back(pthreads_time / p);
    if (hyperq_time > 0) vs_hyperq.push_back(hyperq_time / p);
    if (gemtc_time > 0) vs_gemtc.push_back(gemtc_time / p);
  }

  table.print(std::cout);
  std::printf(
      "\nPagoda geometric-mean speedup: %.2fx over PThreads (paper: 5.70x), "
      "%.2fx over CUDA-HyperQ (paper: 1.51x), %.2fx over GeMTC (paper: "
      "1.69x)\n",
      geometric_mean(vs_pthreads), geometric_mean(vs_hyperq),
      geometric_mean(vs_gemtc));
  return 0;
}
