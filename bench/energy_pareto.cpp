// Energy/latency Pareto sweep over the power plane: the same diurnal
// request stream on a 4-node fleet, run once per power configuration.
//
//   energy_pareto [--tasks=N] [--seeds=N] [--seed=BASE] [--gpus=N]
//                 [--rate=REQ_PER_S] [--out=BENCH_power.json]
//
// Points, from "performance at any cost" to "joules at any cost":
//
//   always-max   — power metered, no adaptation (static governor, floor 0).
//                  Timing is bit-identical to a power-unaware run; this is
//                  the energy baseline every other point is judged against.
//   static-p1/2/3 — whole fleet pinned at a deeper P-state: cheaper per
//                  issued instruction, slower clock, longer queues.
//   dvfs         — per-node DVFS between P0 and the floor on issue
//                  utilization, C-states for idle SMMs, SLA-warning boost.
//   powercap     — dvfs plus a fleet-watt ceiling, fronted by the
//                  power-cap placement policy (admission refuses work that
//                  would bust the budget, so this point may shed).
//   energy-min   — energy-min packing placement + dvfs + S-state sleep for
//                  the idle tail of the fleet. The diurnal trough is where
//                  it earns its keep: surplus nodes sleep at ~1 W instead
//                  of idling at ~99 W.
//
// Traffic is diurnal MMPP-2 (peak/trough phases, equal-mean), every 4th
// request a small interactive one carrying an SLO — its p99 is the latency
// axis of the Pareto front, and S-state wake-ups land on it as the
// power_wakeup trace phase.
//
// CHECK-enforced for every seed: energy-min completes the identical
// per-class goodput as always-max (both are lossless by construction) while
// spending >= 1.3x fewer joules per completed request. The deeper static
// points and powercap are reported as data, not checked: their tradeoff is
// the point of the figure.
//
// Emits BENCH_power.json, byte-identical across reruns with the same flags
// (the check.sh determinism gate diffs two fresh runs).
#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "common/stats.h"
#include "engine/session.h"
#include "harness/flags.h"
#include "obs/metrics.h"
#include "power/governor.h"
#include "power/power_spec.h"
#include "sched/policy.h"
#include "sim/process.h"

using namespace pagoda;

namespace {

struct Point {
  const char* name;
  const char* placement;          // cluster placement policy
  power::GovernorKind governor;
  int p_floor;                    // deepest P-state the governor may use
  double cap_watts;               // powercap budget; 0 = uncapped
  bool manage_sleep;              // S-state management (energy-min pairing)
};

constexpr std::array<Point, 7> kPoints = {{
    {"always-max", "least-outstanding", power::GovernorKind::kStatic, 0, 0.0,
     false},
    {"static-p1", "least-outstanding", power::GovernorKind::kStatic, 1, 0.0,
     false},
    {"static-p2", "least-outstanding", power::GovernorKind::kStatic, 2, 0.0,
     false},
    {"static-p3", "least-outstanding", power::GovernorKind::kStatic, 3, 0.0,
     false},
    {"dvfs", "least-outstanding", power::GovernorKind::kDvfs, 3, 0.0, false},
    {"powercap", "power-cap", power::GovernorKind::kPowerCap, 3, 260.0,
     false},
    {"energy-min", "energy-min", power::GovernorKind::kDvfs, 3, 0.0, true},
}};

struct Scenario {
  Point point;
  int gpus = 4;
  int requests = 0;
  std::uint64_t seed = 1;
  double rate_per_sec = 0.0;
  cluster::RequestProfile interactive;
  cluster::RequestProfile batch;
};

struct Outcome {
  double elapsed_ms = 0.0;
  double energy_j = 0.0;
  double joules_per_request = 0.0;
  double avg_fleet_watts = 0.0;
  double inter_p99_us = 0.0;
  double batch_p99_us = 0.0;
  std::int64_t completed = 0;
  std::int64_t dropped = 0;
  std::int64_t inter_completed = 0;
  std::int64_t batch_completed = 0;
  std::uint64_t transitions = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t nodes_slept = 0;
};

struct RunBox {
  static engine::SessionConfig clock_only() {
    engine::SessionConfig c;
    c.device = false;  // each GpuNode brings up its own device sub-session
    return c;
  }

  engine::Session session{clock_only()};
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher disp;
  sim::Time end_time = 0;
  bool done = false;

  static std::vector<cluster::NodeConfig> node_configs(const Scenario& sc) {
    cluster::NodeConfig nc;
    nc.pcie.bandwidth_bytes_per_sec = 12.0e9;  // the paper's platform
    nc.pcie.latency = sim::microseconds(2.0);
    // A shallow TaskTable keeps the backlog in the dispatcher where
    // placement (and the governor's backlog signal) can see it.
    nc.pagoda.rows_per_column = 4;
    return std::vector<cluster::NodeConfig>(
        static_cast<std::size_t>(sc.gpus), nc);
  }

  static cluster::DispatcherConfig dispatcher_config(const Scenario& sc) {
    cluster::DispatcherConfig dc;
    dc.qos = true;  // per-class ledgers
    std::string err;
    power::PowerSpec spec = power::PowerSpec::default_spec();
    spec.p_floor = sc.point.p_floor;
    dc.power.spec = spec;
    dc.power.governor = sc.point.governor;
    dc.power.cap_watts = sc.point.cap_watts;
    dc.power.manage_sleep = sc.point.manage_sleep;
    return dc;
  }

  explicit RunBox(const Scenario& sc)
      : fleet(sim, node_configs(sc)),
        disp(fleet, cluster::make_policy(sc.point.placement),
             dispatcher_config(sc)) {}
};

/// Deterministic class interleave: every 4th request is interactive, so
/// every point sees the identical arrival trace for a given seed.
bool is_interactive(int index) { return index % 4 == 0; }

sim::Process source(RunBox& box, const Scenario& sc) {
  cluster::ArrivalConfig acfg;
  acfg.kind = cluster::ArrivalKind::Diurnal;
  acfg.rate_per_sec = sc.rate_per_sec;
  acfg.burst_factor = 8.0;                     // peak = 8x trough
  acfg.mean_on = sim::milliseconds(20.0);      // phase half-period
  cluster::ArrivalSequence seq(acfg, sc.seed);
  for (int i = 0; i < sc.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await box.sim.delay(gap);
    const cluster::RequestProfile& p =
        is_interactive(i) ? sc.interactive : sc.batch;
    box.disp.offer(cluster::synth_request(p, sc.seed, i));
  }
  box.disp.close();
}

sim::Process drainer(RunBox& box) {
  co_await box.disp.drain();
  box.end_time = box.sim.now();
  box.done = true;
}

Outcome run_point(const Scenario& sc) {
  RunBox box(sc);
  box.fleet.start();
  box.sim.spawn(source(box, sc));
  box.sim.spawn(drainer(box));
  box.sim.run_until(sim::seconds(600.0));
  PAGODA_CHECK_MSG(box.done, "energy point did not drain");

  Outcome out;
  out.elapsed_ms = sim::to_milliseconds(box.end_time);
  out.completed = box.disp.stats().completed;
  out.dropped = box.disp.stats().dropped;
  for (int i = 0; i < box.fleet.size(); ++i) {
    const power::NodePower* np = box.fleet.node(i).power();
    PAGODA_CHECK_MSG(np != nullptr, "power plane must be armed");
    out.energy_j += np->energy_joules(box.end_time);
    out.transitions += np->transitions();
    out.wakeups += np->wakeups();
  }
  if (out.completed > 0) {
    out.joules_per_request =
        out.energy_j / static_cast<double>(out.completed);
  }
  const double elapsed_s = sim::to_seconds(box.end_time);
  if (elapsed_s > 0.0) out.avg_fleet_watts = out.energy_j / elapsed_s;
  PAGODA_CHECK_MSG(box.disp.governor() != nullptr, "governor must run");
  out.nodes_slept = box.disp.governor()->stats().nodes_slept;

  const std::span<const double> inter =
      box.disp.class_latencies_us(sched::Class::kInteractive);
  const std::span<const double> batch =
      box.disp.class_latencies_us(sched::Class::kBatch);
  PAGODA_CHECK_MSG(!inter.empty() && !batch.empty(),
                   "both classes must complete work");
  out.inter_p99_us = percentile(inter, 99);
  out.batch_p99_us = percentile(batch, 99);
  out.inter_completed =
      box.disp.class_stats(sched::Class::kInteractive).completed;
  out.batch_completed = box.disp.class_stats(sched::Class::kBatch).completed;
  box.fleet.shutdown();
  return out;
}

void write_outcome_json(std::ostream& os, const Outcome& o) {
  using obs::format_metric_double;
  os << "\"joules_per_request\": " << format_metric_double(o.joules_per_request)
     << ", \"energy_j\": " << format_metric_double(o.energy_j)
     << ", \"avg_fleet_watts\": " << format_metric_double(o.avg_fleet_watts)
     << ", \"inter_p99_us\": " << format_metric_double(o.inter_p99_us)
     << ", \"batch_p99_us\": " << format_metric_double(o.batch_p99_us)
     << ", \"completed\": " << o.completed << ", \"dropped\": " << o.dropped
     << ", \"inter_completed\": " << o.inter_completed
     << ", \"batch_completed\": " << o.batch_completed
     << ", \"transitions\": " << o.transitions
     << ", \"wakeups\": " << o.wakeups
     << ", \"nodes_slept\": " << o.nodes_slept
     << ", \"elapsed_ms\": " << format_metric_double(o.elapsed_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string bad = flags.unknown(
      {"tasks", "seeds", "seed", "gpus", "rate", "out", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", bad.c_str());
    return 1;
  }
  if (flags.has("help")) {
    std::printf(
        "energy_pareto [--tasks=N] [--seeds=N] [--seed=BASE] [--gpus=N] "
        "[--rate=REQ_PER_S] [--out=FILE]\n");
    return 0;
  }
  const int requests = static_cast<int>(flags.get_int("tasks", 8192));
  const int num_seeds = static_cast<int>(flags.get_int("seeds", 3));
  PAGODA_CHECK_MSG(num_seeds >= 1, "--seeds must be >= 1");
  const int gpus = static_cast<int>(flags.get_int("gpus", 4));
  PAGODA_CHECK_MSG(gpus >= 2, "--gpus must be >= 2 (sleep needs a surplus)");
  const auto base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0xEC0));
  const std::string out_path = flags.get("out", "BENCH_power.json");

  // Fail fast on unwritable output paths, before any simulation runs.
  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "error: --out: cannot open output path '%s'\n",
                 out_path.c_str());
    return 2;
  }

  // Interactive: small, short, 5 ms SLO (wide enough to absorb a C-state
  // wake, tight enough that an S3 wake-up is visible as a violation).
  // Batch: ~20x the service demand, no deadline. The mean rate sits where
  // the diurnal trough packs onto one node and the peak needs most of the
  // fleet — the regime where sleep management pays.
  Scenario proto;
  proto.gpus = gpus;
  proto.requests = requests;
  proto.rate_per_sec = flags.get_double("rate", 100.0e3);
  PAGODA_CHECK_MSG(proto.rate_per_sec > 0.0, "--rate must be positive");
  proto.interactive.threads_per_task = 64;
  proto.interactive.compute_cycles = 6000.0;
  proto.interactive.stall_cycles = 12000.0;
  proto.interactive.h2d_bytes = 2048;
  proto.interactive.d2h_bytes = 512;
  proto.interactive.slo = sim::milliseconds(5.0);
  proto.interactive.cls = sched::Class::kInteractive;
  proto.batch.threads_per_task = 256;
  proto.batch.compute_cycles = 120000.0;
  proto.batch.stall_cycles = 240000.0;
  proto.batch.slo = 0;
  proto.batch.cls = sched::Class::kBatch;

  std::printf(
      "=== energy pareto: %d requests/run, %d gpus, %d seeds, base %llu ===\n",
      requests, gpus, num_seeds, static_cast<unsigned long long>(base_seed));
  std::printf("%-6s %-11s %10s %10s %10s %10s %8s %8s\n", "seed", "point",
              "J/req", "avg W", "int p99", "batch p99", "slept", "dropped");

  json << "{\n  \"bench\": \"energy_pareto\", \"requests\": " << requests
       << ", \"gpus\": " << gpus << ", \"seeds\": " << num_seeds
       << ", \"base_seed\": " << base_seed << ",\n  \"runs\": [\n";

  bool first = true;
  double worst_gain = 0.0;
  bool have_worst = false;
  for (int s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);
    std::array<Outcome, kPoints.size()> outs;
    for (std::size_t p = 0; p < kPoints.size(); ++p) {
      Scenario sc = proto;
      sc.point = kPoints[p];
      sc.seed = seed;
      outs[p] = run_point(sc);
      std::printf("%-6llu %-11s %9.2fmJ %9.1fW %8.1fus %8.1fus %8llu %8lld\n",
                  static_cast<unsigned long long>(seed), sc.point.name,
                  outs[p].joules_per_request * 1e3, outs[p].avg_fleet_watts,
                  outs[p].inter_p99_us, outs[p].batch_p99_us,
                  static_cast<unsigned long long>(outs[p].nodes_slept),
                  static_cast<long long>(outs[p].dropped));
      if (!first) json << ",\n";
      first = false;
      json << "    {\"seed\": " << seed << ", \"point\": \"" << sc.point.name
           << "\", ";
      write_outcome_json(json, outs[p]);
      json << "}";
    }
    const Outcome& always_max = outs[0];
    const Outcome& energy_min = outs[kPoints.size() - 1];
    // Equal per-class goodput: identical arrival trace, neither point drops
    // (unbounded queue, no cap), so completions must match exactly.
    PAGODA_CHECK_MSG(always_max.dropped == 0 && energy_min.dropped == 0,
                     "baseline and energy-min must be lossless");
    PAGODA_CHECK_MSG(
        energy_min.inter_completed == always_max.inter_completed &&
            energy_min.batch_completed == always_max.batch_completed,
        "per-class goodput must match the always-max baseline");
    const double gain =
        always_max.joules_per_request / energy_min.joules_per_request;
    if (!have_worst || gain < worst_gain) worst_gain = gain;
    have_worst = true;
    PAGODA_CHECK_MSG(gain >= 1.3,
                     "energy-min must spend >= 1.3x fewer joules per "
                     "request than always-max");
  }
  json << "\n  ],\n  \"worst_energy_gain\": "
       << obs::format_metric_double(worst_gain) << "\n}\n";

  std::printf("\nworst-seed energy-min gain vs always-max: %.2fx "
              "joules/request (floor 1.3x)\n",
              worst_gain);
  std::printf("-> %s\n", out_path.c_str());
  return 0;
}
