// Reproduces Figure 7: computation time vs. threads per task.
//
// Paper: 32K tasks, constant work per task redistributed over 32..512
// threads; no shared memory in any version (GeMTC lacks support); data-copy
// time excluded. Pagoda achieves 2.29x over HyperQ and 2.26x over GeMTC at
// 128 threads; its edge over HyperQ shrinks as threads/task grow (less
// underutilization to exploit); GeMTC is roughly flat (fixed total threads
// per SuperKernel batch); FB degrades at high thread counts (barrier cost).
#include <vector>

#include "bench_common.h"
#include "common/stats.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/4096);
  bench::print_header("Figure 7: compute time vs threads per task", args);

  const std::vector<int> thread_counts = {32, 64, 128, 256, 512};
  std::vector<double> hq_over_pagoda_at_128;
  std::vector<double> ge_over_pagoda_at_128;

  for (const char* wl :
       {"MB", "CONV", "DCT", "FB", "MM", "3DES", "MPE"}) {
    Table table({"threads", "HyperQ", "GeMTC", "Pagoda", "HyperQ/Pagoda",
                 "GeMTC/Pagoda"});
    for (const int threads : thread_counts) {
      workloads::WorkloadConfig wcfg = args.wcfg();
      wcfg.threads_per_task = threads;
      wcfg.use_shared_memory = false;  // §6.3: no shmem in any version
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.include_data_copies = false;  // compute time only
      const Measurement hq = run_experiment(wl, "HyperQ", wcfg, rcfg);
      const Measurement ge = run_experiment(wl, "GeMTC", wcfg, rcfg);
      const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);
      table.add_row({std::to_string(threads), fmt_ms(hq.result.elapsed),
                     fmt_ms(ge.result.elapsed), fmt_ms(pa.result.elapsed),
                     fmt_x(speedup(hq, pa)), fmt_x(speedup(ge, pa))});
      if (threads == 128) {
        hq_over_pagoda_at_128.push_back(speedup(hq, pa));
        ge_over_pagoda_at_128.push_back(speedup(ge, pa));
      }
    }
    std::printf("-- %s --\n", wl);
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "At 128 threads/task: Pagoda geomean %.2fx over HyperQ (paper: 2.29x), "
      "%.2fx over GeMTC (paper: 2.26x)\n",
      geometric_mean(hq_over_pagoda_at_128),
      geometric_mean(ge_over_pagoda_at_128));
  return 0;
}
