// Reproduces the §6.2 GeMTC configuration observation: "The default GeMTC
// design used 32 threads per SuperKernel threadblock, obtaining only 50%
// occupancy. We hence modified GeMTC to use more threads; from 64 threads
// onwards, GeMTC can obtain 100% occupancy."
//
// With 32-thread (1-warp) workers, the 32-blocks-per-SMM hardware cap
// limits residency to 32 of 64 warp slots; 64-thread workers already reach
// 32 x 2 = 64 warps.
#include "bench_common.h"

#include "gpu/occupancy.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/2048);
  bench::print_header("GeMTC SuperKernel worker size (paper §6.2)", args);

  Table table({"threads/worker", "theoretical occupancy", "workers",
               "GeMTC time", "vs 128-thr config"});
  double base_time = 0.0;
  std::vector<std::vector<std::string>> rows;
  for (const int tpb : {32, 64, 128, 256}) {
    const auto residency = gpu::max_residency(
        args.rcfg().spec, gpu::BlockFootprint::of(tpb, 32, 0));
    workloads::WorkloadConfig wcfg = args.wcfg();
    wcfg.threads_per_task = tpb;  // GeMTC: task == one worker threadblock
    wcfg.use_shared_memory = false;
    baselines::RunConfig rcfg = args.rcfg();
    rcfg.include_data_copies = false;
    const Measurement m = run_experiment("MB", "GeMTC", wcfg, rcfg);
    if (tpb == 128) base_time = static_cast<double>(m.result.elapsed);
    rows.push_back({std::to_string(tpb), fmt_pct(residency.occupancy),
                    std::to_string(residency.blocks_per_smm *
                                   args.rcfg().spec.num_smms),
                    fmt_ms(m.result.elapsed),
                    std::to_string(m.result.elapsed)});
  }
  for (auto& row : rows) {
    const double t = std::stod(row.back());
    row.back() = fmt_x(t / base_time);
    table.add_row(row);
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: 32-thread workers cap at 50%% occupancy (32-block "
      "hardware limit) and run slower; 64+ threads reach 100%%.\n");
  return 0;
}
