// Reproduces Table 5: Pagoda's software shared-memory management.
//
// Paper: 32K tasks; DCT with 64 threads/task, MM with 256 threads/task;
// compute time only; the baseline is the CUDA-HyperQ version WITH shared
// memory. Results: DCT 1.35x (shmem, 25% occupancy) vs 1.25x (no shmem,
// 97%); MM 1.51x (97%) vs 1.20x (97%). The shared-memory lease can reduce
// occupancy yet still win on memory-path speed — a benefit no static-fusion
// or batching runtime offers.
//
// Two scales are reported: the paper's input sizes (where, in this model,
// spawn overhead partially masks the kernel-level difference) and a
// GPU-bound scale (larger inputs) where the shared-memory variant's memory
// path dominates the comparison.
#include "bench_common.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

namespace {

void run_scale(const BenchArgs& args, const char* label, int dct_scale,
               int mm_scale) {
  std::printf("-- %s --\n", label);
  Table table({"benchmark", "threads", "variant", "Pagoda time",
               "speedup vs HyperQ(shmem)", "Pagoda occupancy"});
  for (const auto& [wl, threads, scale] :
       std::initializer_list<std::tuple<const char*, int, int>>{
           {"DCT", 64, dct_scale}, {"MM", 256, mm_scale}}) {
    workloads::WorkloadConfig base = args.wcfg();
    base.threads_per_task = threads;
    base.input_scale = scale;
    baselines::RunConfig rcfg = args.rcfg();
    rcfg.include_data_copies = false;  // compute time only

    workloads::WorkloadConfig with_shmem = base;
    with_shmem.use_shared_memory = true;
    workloads::WorkloadConfig without = base;
    without.use_shared_memory = false;

    const Measurement hq = run_experiment(wl, "HyperQ", with_shmem, rcfg);
    const Measurement pa_sh = run_experiment(wl, "Pagoda", with_shmem, rcfg);
    const Measurement pa_no = run_experiment(wl, "Pagoda", without, rcfg);

    table.add_row({wl, std::to_string(threads), "with shmem",
                   fmt_ms(pa_sh.result.elapsed), fmt_x(speedup(hq, pa_sh)),
                   fmt_pct(pa_sh.result.occupancy)});
    table.add_row({wl, std::to_string(threads), "no shmem",
                   fmt_ms(pa_no.result.elapsed), fmt_x(speedup(hq, pa_no)),
                   fmt_pct(pa_no.result.occupancy)});
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/4096);
  bench::print_header("Table 5: Pagoda with and without shared memory", args);

  run_scale(args, "paper input sizes (DCT 128x128, MM 64x64)", 0, 0);
  run_scale(args, "GPU-bound inputs (DCT 256x256, MM 128x128)", 256, 128);

  std::printf(
      "Paper: DCT 1.35x/25%% (shmem) vs 1.25x/97%% (no shmem); "
      "MM 1.51x/97%% vs 1.20x/97%%.\n");
  return 0;
}
