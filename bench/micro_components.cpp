// google-benchmark microbenchmarks for the performance-critical simulator
// and runtime components: the buddy shared-memory allocator, the event
// queue, processor-sharing resource, DES block encryption, and TaskTable
// scans. These guard the *wall-clock* cost of running the reproduction
// (virtual-time results are deterministic and benchmarked by the fig*
// binaries).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/session.h"
#include "pagoda/shmem_allocator.h"
#include "pagoda/task_table.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"
#include "workloads/des_core.h"

namespace {

using namespace pagoda;

void BM_BuddyAllocFree(benchmark::State& state) {
  runtime::ShmemAllocator alloc;
  const auto bytes = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    const auto off = alloc.allocate(bytes);
    benchmark::DoNotOptimize(off);
    if (off) alloc.deallocate(*off);
  }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(512)->Arg(2048)->Arg(8192)->Arg(32768);

void BM_BuddyChurn(benchmark::State& state) {
  runtime::ShmemAllocator alloc;
  SplitMix64 rng(1);
  std::vector<std::int32_t> live;
  for (auto _ : state) {
    if (live.size() < 8 && (rng.next() & 1)) {
      const auto off =
          alloc.allocate(static_cast<std::int32_t>(rng.next_in(1, 4096)));
      if (off) live.push_back(*off);
    } else if (!live.empty()) {
      alloc.deallocate(live.back());
      live.pop_back();
    }
  }
  for (const auto off : live) alloc.deallocate(off);
}
BENCHMARK(BM_BuddyChurn);

engine::SessionConfig clock_only() {
  engine::SessionConfig c;
  c.device = false;
  return c;
}

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    engine::Session session(clock_only());
    sim::Simulation& sim = session.sim();
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.after(i % 97, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_PsResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    engine::Session session(clock_only());
    sim::Simulation& sim = session.sim();
    sim::PsResource res(sim, 4.0, 1.0);
    int done = 0;
    for (int i = 0; i < 256; ++i) {
      res.submit(1.0 + (i % 5), [&done] { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PsResourceChurn);

void BM_DesBlock(benchmark::State& state) {
  const auto ks = workloads::des_key_schedule(0x133457799BBCDFF1ULL);
  std::uint64_t block = 0x0123456789ABCDEFULL;
  for (auto _ : state) {
    block = workloads::des_encrypt_block(block, ks);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_DesBlock);

void BM_TripleDesBlock(benchmark::State& state) {
  const auto key = workloads::triple_des_key(1, 2, 3);
  std::uint64_t block = 0x0123456789ABCDEFULL;
  for (auto _ : state) {
    block = workloads::triple_des_encrypt_block(block, key);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_TripleDesBlock);

void BM_TaskTableScan(benchmark::State& state) {
  runtime::TaskTable table(48, 32);
  // Mark a few entries busy so the scan does real work.
  for (int c = 0; c < 48; c += 3) table.at(c, c % 32).ready = 1;
  for (auto _ : state) {
    int free_count = 0;
    for (int c = 0; c < table.columns(); ++c) {
      for (int r = 0; r < table.rows(); ++r) {
        if (table.at(c, r).ready == runtime::kReadyFree) ++free_count;
      }
    }
    benchmark::DoNotOptimize(free_count);
  }
  state.SetItemsProcessed(state.iterations() * table.size());
}
BENCHMARK(BM_TaskTableScan);

}  // namespace

BENCHMARK_MAIN();
