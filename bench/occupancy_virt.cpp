// Virtual-resource occupancy benchmark (DESIGN.md §16): how much SMM
// occupancy and throughput the Zorua-style decoupling of declared vs used
// shared memory buys on an irregular workload.
//
//   occupancy_virt [--tasks=N] [--threads=N] [--input=SIDE] [--seeds=N]
//                  [--seed=BASE] [--spawners=N] [--oversub=F]
//                  [--out=BENCH_vres.json]
//
// The workload is irregular DCT: every task DECLARES the conservative 8 KB
// staging slab (the worst-case frame), but a task's frame side is drawn from
// [SIDE/2, 3*SIDE/2], so the band it actually touches is usually 2-4 KB.
// Under static reservation (--oversub=1.0) the declared footprint limits an
// MTB's 32 KB arena to 4 co-resident blocks no matter how small the frames
// are. With --oversub=F the scheduler admits declared footprints against
// F x arena and backs only the used bytes physically, spilling cold blocks
// to a PCIe-charged backing store on pressure.
//
// The device is narrowed to --smms SMMs (default 4; the full Titan X has
// 24) and host spawners are raised above the paper's two threads
// (--spawners, default 16). Both knobs exist for the same reason: the spawn
// API + PCIe protocol path caps the task arrival rate at ~1.7 tasks/us
// regardless of resources, and on 48 idle MTBs that stream never queues —
// every configuration measures the spawn rate, not the packing limit. On a
// narrow device the per-MTB arrival pressure exceeds the 4-block static
// reservation cap, so the shared-memory plane is what binds and the bench
// measures exactly the decoupling it is gating.
//
// CHECK-enforced, every seed:
//   * throughput at the gate factor (--oversub, default 1.5) >= 1.2x the
//     static-reservation baseline;
//   * achieved SMM occupancy at the gate factor strictly above baseline;
//   * a Compute-mode run at the gate factor passes CPU-reference
//     verification (run_experiment aborts on any output mismatch).
//
// Emits BENCH_vres.json, byte-identical across reruns with the same flags
// (the check.sh determinism gate diffs two fresh runs).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/alloc_tuning.h"
#include "common/check.h"
#include "gpu/occupancy.h"
#include "harness/calibration.h"
#include "harness/experiment.h"
#include "harness/flags.h"
#include "obs/collector.h"
#include "obs/metrics.h"

using namespace pagoda;

namespace {

struct Outcome {
  double oversub = 1.0;
  double elapsed_ms = 0.0;
  double throughput_ktasks_s = 0.0;
  double occupancy = 0.0;
  std::int64_t tasks = 0;
  std::int64_t vres_spills = 0;
  std::int64_t vres_reclaims = 0;
  std::int64_t vres_spill_bytes = 0;
  std::int64_t shmem_alloc_failures = 0;
  double shmem_external_frag = 0.0;
  std::int64_t shmem_internal_frag_bytes = 0;
};

struct BenchConfig {
  int tasks = 4096;
  int threads = 32;
  int input_side = 96;
  int spawners = 16;
  int smms = 4;
  std::uint64_t seed = 0;
};

Outcome run_once(const BenchConfig& bc, double oversub, gpu::ExecMode mode) {
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = bc.tasks;
  wcfg.threads_per_task = bc.threads;
  wcfg.input_scale = bc.input_side;
  wcfg.irregular_sizes = true;
  wcfg.seed = bc.seed;

  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.mode = mode;
  rcfg.spec.num_smms = bc.smms;
  rcfg.pagoda.oversub = oversub;
  rcfg.spawner_threads = bc.spawners;
  // The wire belongs to spills/reclaims and task-spawn protocol traffic:
  // bulk input copies would serialize every configuration on PCIe and mask
  // the resource-packing difference under measurement noise.
  rcfg.include_data_copies = false;

  obs::CollectorConfig ccfg;
  ccfg.sample_period = sim::microseconds(50.0);
  obs::Collector collector(ccfg);
  rcfg.collector = &collector;

  const harness::Measurement m =
      harness::run_experiment("DCT", "Pagoda", wcfg, rcfg);

  Outcome out;
  out.oversub = oversub;
  out.tasks = m.result.tasks;
  out.elapsed_ms = m.result.elapsed_ms();
  out.throughput_ktasks_s =
      static_cast<double>(m.result.tasks) / out.elapsed_ms;
  out.occupancy = m.result.occupancy;
  obs::MetricsRegistry metrics = m.metrics;  // reads may default-create
  out.vres_spills = metrics.counter("pagoda.vres.spills").value();
  out.vres_reclaims = metrics.counter("pagoda.vres.reclaims").value();
  out.vres_spill_bytes = metrics.counter("pagoda.vres.spill_bytes").value();
  out.shmem_alloc_failures =
      metrics.counter("pagoda.shmem.alloc_failures").value();
  out.shmem_external_frag =
      metrics.gauge("pagoda.shmem.external_frag").value();
  out.shmem_internal_frag_bytes =
      metrics.counter("pagoda.shmem.internal_frag_bytes").value();
  return out;
}

void write_outcome_json(std::ostream& os, std::uint64_t seed,
                        const Outcome& o) {
  using obs::format_metric_double;
  os << "    {\"seed\": " << seed
     << ", \"oversub\": " << format_metric_double(o.oversub)
     << ", \"elapsed_ms\": " << format_metric_double(o.elapsed_ms)
     << ", \"throughput_ktasks_s\": "
     << format_metric_double(o.throughput_ktasks_s)
     << ", \"occupancy\": " << format_metric_double(o.occupancy)
     << ", \"tasks\": " << o.tasks
     << ", \"vres_spills\": " << o.vres_spills
     << ", \"vres_reclaims\": " << o.vres_reclaims
     << ", \"vres_spill_bytes\": " << o.vres_spill_bytes
     << ", \"shmem_alloc_failures\": " << o.shmem_alloc_failures
     << ", \"shmem_external_frag\": "
     << format_metric_double(o.shmem_external_frag)
     << ", \"shmem_internal_frag_bytes\": " << o.shmem_internal_frag_bytes
     << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string bad = flags.unknown({"tasks", "threads", "input", "seeds",
                                         "seed", "spawners", "smms", "oversub",
                                         "out", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", bad.c_str());
    return 1;
  }
  if (flags.has("help")) {
    std::printf(
        "occupancy_virt [--tasks=N] [--threads=N] [--input=SIDE] "
        "[--seeds=N] [--seed=BASE] [--spawners=N] [--smms=N] [--oversub=F] "
        "[--out=FILE]\n");
    return 0;
  }
  common::tune_allocator_for_batch_runs();

  BenchConfig bc;
  bc.tasks = static_cast<int>(flags.get_int("tasks", 4096));
  bc.threads = static_cast<int>(flags.get_int("threads", 32));
  bc.input_side = static_cast<int>(flags.get_int("input", 96));
  bc.spawners = static_cast<int>(flags.get_int("spawners", 16));
  bc.smms = static_cast<int>(flags.get_int("smms", 4));
  PAGODA_CHECK_MSG(bc.smms >= 1, "--smms must be >= 1");
  const int num_seeds = static_cast<int>(flags.get_int("seeds", 2));
  PAGODA_CHECK_MSG(num_seeds >= 1, "--seeds must be >= 1");
  const auto base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  const double gate = flags.get_double("oversub", 1.5);
  PAGODA_CHECK_MSG(gate > 1.0, "--oversub must be > 1.0 (the gate compares "
                               "against the 1.0 static baseline)");
  const std::string out_path = flags.get("out", "BENCH_vres.json");

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "error: --out: cannot open output path '%s'\n",
                 out_path.c_str());
    return 2;
  }

  // The §2-style arithmetic for this workload: a 96-side frame declares
  // 8 KB but its staged band (side x 8 rows x 4 B = 3 KB) rounds to 4 KB,
  // so the model predicts 4 -> 6 co-resident blocks per MTB arena at 1.5x.
  const gpu::GpuSpec spec = gpu::GpuSpec::titan_x();
  gpu::BlockFootprint declared =
      gpu::BlockFootprint::of(bc.threads, 33, 8 * 1024);
  gpu::BlockFootprint used = declared;
  used.shared_mem_bytes = 4 * 1024;
  const gpu::OccupancyResult model_static =
      gpu::max_residency(spec, declared);
  const gpu::OccupancyResult model_virt =
      gpu::max_residency_virtual(spec, declared, used, gate);

  std::vector<double> factors = {1.0, 1.25, gate, 2.0};

  std::printf("=== occupancy under virtual resources: irregular DCT, "
              "%d tasks, %d threads/task, side ~[%d, %d], %d spawners, "
              "%d SMMs ===\n",
              bc.tasks, bc.threads, bc.input_side / 2, 3 * bc.input_side / 2,
              bc.spawners, bc.smms);
  std::printf("model: %d blocks/SMM declared-static -> %d at %.2fx "
              "(used 4 KB of 8 KB declared)\n\n",
              model_static.blocks_per_smm, model_virt.blocks_per_smm, gate);
  std::printf("%-8s %-8s %10s %12s %10s %8s %8s %8s\n", "seed", "oversub",
              "time", "ktasks/s", "occupancy", "spills", "reclaims",
              "allocfail");

  json << "{\n  \"bench\": \"occupancy_virt\", \"tasks\": " << bc.tasks
       << ", \"threads\": " << bc.threads << ", \"input\": " << bc.input_side
       << ", \"spawners\": " << bc.spawners << ", \"smms\": " << bc.smms
       << ", \"seeds\": " << num_seeds
       << ", \"base_seed\": " << base_seed
       << ", \"gate_oversub\": " << obs::format_metric_double(gate)
       << ",\n  \"model_blocks_static\": " << model_static.blocks_per_smm
       << ", \"model_blocks_virtual\": " << model_virt.blocks_per_smm
       << ",\n  \"runs\": [\n";

  bool first = true;
  double worst_gain = 0.0;
  double worst_occ_delta = 0.0;
  bool have_worst = false;
  for (int s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);
    bc.seed = seed;
    Outcome baseline;
    for (const double f : factors) {
      const Outcome o = run_once(bc, f, gpu::ExecMode::Model);
      std::printf("%-8llu %-8.2f %8.3fms %12.1f %9.2f%% %8lld %8lld %8lld\n",
                  static_cast<unsigned long long>(seed), f, o.elapsed_ms,
                  o.throughput_ktasks_s, o.occupancy * 100.0,
                  static_cast<long long>(o.vres_spills),
                  static_cast<long long>(o.vres_reclaims),
                  static_cast<long long>(o.shmem_alloc_failures));
      if (!first) json << ",\n";
      first = false;
      write_outcome_json(json, seed, o);
      if (f == 1.0) {
        baseline = o;
        continue;
      }
      if (f == gate) {
        const double gain = o.throughput_ktasks_s /
                            baseline.throughput_ktasks_s;
        const double occ_delta = o.occupancy - baseline.occupancy;
        PAGODA_CHECK_MSG(gain >= 1.2,
                         "the gate oversub factor must deliver >= 1.2x the "
                         "static-reservation throughput");
        PAGODA_CHECK_MSG(occ_delta > 0.0,
                         "the gate oversub factor must achieve strictly "
                         "higher SMM occupancy than static reservation");
        if (!have_worst || gain < worst_gain) worst_gain = gain;
        if (!have_worst || occ_delta < worst_occ_delta) {
          worst_occ_delta = occ_delta;
        }
        have_worst = true;
      }
    }
    // Compute-mode correctness at the gate factor: every task's output is
    // checked against the CPU reference inside run_experiment. Fewer tasks
    // keep the bench fast; the resource pressure is per-MTB, not per-total.
    BenchConfig verify_bc = bc;
    verify_bc.tasks = std::min(bc.tasks, 256);
    const Outcome v = run_once(verify_bc, gate, gpu::ExecMode::Compute);
    std::printf("%-8llu %-8s %8.3fms %12s %9.2f%% %8lld %8lld  "
                "(compute-verified)\n",
                static_cast<unsigned long long>(seed), "verify", v.elapsed_ms,
                "-", v.occupancy * 100.0,
                static_cast<long long>(v.vres_spills),
                static_cast<long long>(v.vres_reclaims));
  }

  json << "\n  ],\n  \"worst_gain\": "
       << obs::format_metric_double(worst_gain)
       << ",\n  \"worst_occupancy_delta\": "
       << obs::format_metric_double(worst_occ_delta) << "\n}\n";

  std::printf("\nworst-seed gain at %.2fx oversub: %.2fx throughput "
              "(floor 1.2x), worst occupancy delta +%.2f points "
              "(floor: strictly positive)\n",
              gate, worst_gain, worst_occ_delta * 100.0);
  std::printf("-> %s\n", out_path.c_str());
  return 0;
}
