// Reproduces Figure 9: static fusion vs. runtime schemes on irregular tasks.
//
// Paper: 32K tasks per benchmark (no SLUD — its task count is not known
// statically), pseudo-random input sizes. The fused kernel gives every
// sub-task 256 threads and the resource allocation of the most demanding
// task, and finishes with its longest sub-task; Pagoda/HyperQ pick 32-256
// threads per task dynamically. Pagoda achieves a geometric mean of 1.79x
// over static fusion.
#include <vector>

#include "bench_common.h"
#include "common/stats.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/4096);
  bench::print_header("Figure 9: static fusion vs runtime schemes, irregular "
                      "task sizes",
                      args);

  Table table({"benchmark", "Fusion", "HyperQ", "PThreads", "Pagoda",
               "Pagoda/Fusion"});
  std::vector<double> pagoda_over_fusion;

  for (const char* wl : {"MB", "CONV", "DCT", "FB", "BF", "MM", "3DES",
                         "MPE"}) {
    workloads::WorkloadConfig wcfg = args.wcfg();
    wcfg.irregular_sizes = true;
    wcfg.dynamic_threads = true;  // runtime schemes: 32-256 threads per task
    const baselines::RunConfig rcfg = args.rcfg();

    const Measurement seq = run_experiment(wl, "Sequential", wcfg, rcfg);
    const Measurement fu = run_experiment(wl, "Fusion", wcfg, rcfg);
    const Measurement hq = run_experiment(wl, "HyperQ", wcfg, rcfg);
    const Measurement pt = run_experiment(wl, "PThreads", wcfg, rcfg);
    const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);

    table.add_row({wl, fmt_x(speedup(seq, fu)), fmt_x(speedup(seq, hq)),
                   fmt_x(speedup(seq, pt)), fmt_x(speedup(seq, pa)),
                   fmt_x(speedup(fu, pa))});
    pagoda_over_fusion.push_back(speedup(fu, pa));
  }
  table.print(std::cout);
  std::printf(
      "\nPagoda geometric-mean speedup over static fusion: %.2fx "
      "(paper: 1.79x)\n",
      geometric_mean(pagoda_over_fusion));
  return 0;
}
