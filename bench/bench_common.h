// Shared setup for the per-figure bench binaries.
//
// Flags (all optional):
//   --tasks=N     tasks per benchmark (default: per-bench; paper uses 32K)
//   --full        use the paper's full task counts (32K; SLUD 273K)
//   --threads=N   threads per task (default 128, the paper's Fig 5 setting)
//   --seed=N      workload generation seed
//   --compute     run kernels in Compute mode (slow; verifies outputs)
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/alloc_tuning.h"
#include "harness/calibration.h"
#include "harness/experiment.h"
#include "harness/flags.h"

namespace pagoda::bench {

struct BenchArgs {
  harness::Flags flags;
  int tasks;
  int threads;
  bool full;
  std::uint64_t seed;
  gpu::ExecMode mode;

  BenchArgs(int argc, char** argv, int default_tasks)
      : flags(argc, argv),
        tasks(static_cast<int>(flags.get_int("tasks", default_tasks))),
        threads(static_cast<int>(flags.get_int("threads", 128))),
        full(flags.has("full")),
        seed(static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA))),
        mode(flags.has("compute") ? gpu::ExecMode::Compute
                                  : gpu::ExecMode::Model) {
    if (full) tasks = 32768;
    common::tune_allocator_for_batch_runs();
  }

  workloads::WorkloadConfig wcfg() const {
    workloads::WorkloadConfig w;
    w.num_tasks = tasks;
    w.threads_per_task = threads;
    w.seed = seed;
    w.mode = mode;
    return w;
  }

  baselines::RunConfig rcfg() const {
    baselines::RunConfig r = harness::paper_platform();
    r.mode = mode;
    return r;
  }
};

inline void print_header(const char* what, const BenchArgs& a) {
  std::printf("=== %s ===\n", what);
  std::printf("platform: Titan X model (24 SMMs x 64 warps, 1 GHz), "
              "PCIe 12 GB/s; tasks=%d threads/task=%d mode=%s\n\n",
              a.tasks, a.threads,
              a.mode == gpu::ExecMode::Model ? "model" : "compute");
}

}  // namespace pagoda::bench
