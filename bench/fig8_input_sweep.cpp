// Reproduces Figure 8: Pagoda-vs-HyperQ compute time across input sizes and
// threads per task (MM and CONV).
//
// Paper: 32K tasks, HyperQ uses 256-thread threadblocks; Pagoda wins for
// small thread counts at every input size, the benefit fades past ~512
// threads/task, and reappears at very large thread counts (e.g. CONV 256^2
// with 64K threads) where Pagoda's warp-level scheduling beats CUDA's
// threadblock-level scheduling (a new threadblock cannot launch until ALL
// warps of a previous one finish).
#include <vector>

#include "bench_common.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/256);
  // This sweep's tasks are up to 64Ki threads each; unlike the other
  // figures, --full extends the THREAD axis (the paper's 65536-thread
  // column) rather than the task count.
  if (args.full) args.tasks = static_cast<int>(args.flags.get_int("tasks", 256));
  bench::print_header(
      "Figure 8: Pagoda/HyperQ compute-speedup vs input size and threads",
      args);

  const std::vector<int> input_sizes = {16, 32, 64, 128, 256};
  std::vector<int> thread_counts = {256, 1024, 4096, 16384};
  if (args.full) thread_counts.push_back(65536);

  for (const char* wl : {"MM", "CONV"}) {
    std::vector<std::string> headers{"input"};
    for (const int t : thread_counts) headers.push_back(std::to_string(t) + " thr");
    Table table(headers);
    for (const int input : input_sizes) {
      std::vector<std::string> row{std::to_string(input) + "^2"};
      for (const int threads : thread_counts) {
        workloads::WorkloadConfig wcfg = args.wcfg();
        wcfg.input_scale = input;
        wcfg.threads_per_task = 256;  // threadblock size; more blocks = more threads
        wcfg.use_shared_memory = false;
        baselines::RunConfig rcfg = args.rcfg();
        rcfg.include_data_copies = false;

        // Express the total thread count: block size up to 1024 threads,
        // multiple 256-thread blocks beyond (HyperQ's configuration in the
        // paper uses 256-thread threadblocks).
        if (threads <= 256) {
          wcfg.threads_per_task = threads;
        } else {
          wcfg.threads_per_task = 256;
          wcfg.blocks_per_task = threads / 256;
        }
        const Measurement hq = run_experiment(wl, "HyperQ", wcfg, rcfg);
        const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);
        row.push_back(fmt_x(speedup(hq, pa)));
      }
      table.add_row(std::move(row));
    }
    std::printf("-- %s: HyperQ-time / Pagoda-time (>1 = Pagoda faster) --\n",
                wl);
    table.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
