// Elastic-fleet benchmark for the migration plane: live checkpoint/restore
// drains (migrate, not shed) plus the traffic-driven autoscaler, over a
// 16-node fleet.
//
//   elastic_fleet [--tasks=N] [--seeds=N] [--seed=BASE] [--gpus=N]
//                 [--rate=REQ_PER_S] [--out=BENCH_migrate.json]
//
// Two scenarios per seed:
//
//   rolling-resize — steady Poisson traffic while an explicit resize plan
//                    shrinks the fleet to a third of its size and grows it
//                    back. Every shrink drains one node at a time: in-flight
//                    attempts are checkpointed at their safe points
//                    (admitted-queued, H2D-staged, table-parked), charged an
//                    inter-node transfer on the PCIe layer, and restored on
//                    a surviving node as the SAME request. CHECK-enforced:
//                    nothing is lost (shed == dropped == 0, the exactly-once
//                    ledger balances), at least one attempt actually
//                    migrated, and availability — completions inside their
//                    SLO over everything offered — stays >= 99% through the
//                    resize.
//
//   diurnal day    — the same MMPP-2 peak/trough request stream run twice:
//                    once over the static full fleet (power metered, every
//                    node awake all day — the energy baseline) and once with
//                    the autoscaler, which drains + S-sleeps the surplus at
//                    the trough and wakes it for the peak. CHECK-enforced:
//                    identical per-class goodput (both runs are lossless by
//                    construction) and measurably fewer joules per request
//                    than the static fleet (>= 1.15x, every seed).
//
// Emits BENCH_migrate.json, byte-identical across reruns with the same
// flags (the check.sh determinism gate diffs two fresh runs).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "common/stats.h"
#include "engine/session.h"
#include "harness/flags.h"
#include "migrate/autoscaler.h"
#include "migrate/migrate.h"
#include "obs/metrics.h"
#include "power/governor.h"
#include "power/power_spec.h"
#include "sched/policy.h"
#include "sim/process.h"

using namespace pagoda;

namespace {

struct Scenario {
  int gpus = 16;
  int requests = 0;
  std::uint64_t seed = 1;
  double rate_per_sec = 0.0;
  bool diurnal = false;           // MMPP-2 peak/trough vs steady Poisson
  bool migrate = false;
  migrate::AutoscaleConfig autoscale{};  // armed() == false -> no resizer
  cluster::RequestProfile interactive;
  cluster::RequestProfile batch;
};

struct Outcome {
  double elapsed_ms = 0.0;
  double energy_j = 0.0;
  double joules_per_request = 0.0;
  double availability = 0.0;      // in-SLO completions / offered
  double inter_p99_us = 0.0;
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t dropped = 0;
  std::int64_t slo_violations = 0;
  std::int64_t migrated = 0;
  std::int64_t inter_completed = 0;
  std::int64_t batch_completed = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;
  std::uint64_t xfer_bytes = 0;
  std::uint64_t nodes_slept = 0;
  std::uint64_t nodes_woken = 0;
  std::uint64_t resize_events = 0;
};

struct RunBox {
  static engine::SessionConfig clock_only() {
    engine::SessionConfig c;
    c.device = false;  // each GpuNode brings up its own device sub-session
    return c;
  }

  engine::Session session{clock_only()};
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher disp;
  sim::Time end_time = 0;
  bool done = false;

  static std::vector<cluster::NodeConfig> node_configs(const Scenario& sc) {
    cluster::NodeConfig nc;
    nc.pcie.bandwidth_bytes_per_sec = 12.0e9;  // the paper's platform
    nc.pcie.latency = sim::microseconds(2.0);
    // A shallow TaskTable keeps the backlog in the dispatcher where both
    // placement and the autoscaler's pressure signal can see it — and gives
    // drains a populated table to checkpoint from.
    nc.pagoda.rows_per_column = 4;
    return std::vector<cluster::NodeConfig>(
        static_cast<std::size_t>(sc.gpus), nc);
  }

  static cluster::DispatcherConfig dispatcher_config(const Scenario& sc) {
    cluster::DispatcherConfig dc;
    dc.qos = true;  // per-class ledgers
    // Power plane always armed (static governor): the diurnal baseline is
    // "every node awake at P0 all day", so its joules are the yardstick the
    // autoscaled run is judged against.
    dc.power.spec = power::PowerSpec::default_spec();
    dc.power.governor = power::GovernorKind::kStatic;
    dc.migration.enabled = sc.migrate;
    dc.autoscale = sc.autoscale;
    return dc;
  }

  explicit RunBox(const Scenario& sc)
      : fleet(sim, node_configs(sc)),
        disp(fleet, cluster::make_policy("least-outstanding"),
             dispatcher_config(sc)) {}
};

/// Deterministic class interleave: every 4th request is interactive, so
/// every configuration sees the identical arrival trace for a given seed.
bool is_interactive(int index) { return index % 4 == 0; }

sim::Process source(RunBox& box, const Scenario& sc) {
  cluster::ArrivalConfig acfg;
  if (sc.diurnal) {
    acfg.kind = cluster::ArrivalKind::Diurnal;
    acfg.rate_per_sec = sc.rate_per_sec;
    acfg.burst_factor = 8.0;                 // peak = 8x trough
    acfg.mean_on = sim::milliseconds(20.0);  // phase half-period
  } else {
    acfg.kind = cluster::ArrivalKind::Poisson;
    acfg.rate_per_sec = sc.rate_per_sec;
  }
  cluster::ArrivalSequence seq(acfg, sc.seed);
  for (int i = 0; i < sc.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await box.sim.delay(gap);
    const cluster::RequestProfile& p =
        is_interactive(i) ? sc.interactive : sc.batch;
    box.disp.offer(cluster::synth_request(p, sc.seed, i));
  }
  box.disp.close();
}

sim::Process drainer(RunBox& box) {
  co_await box.disp.drain();
  box.end_time = box.sim.now();
  box.done = true;
}

Outcome run_scenario(const Scenario& sc) {
  RunBox box(sc);
  box.fleet.start();
  box.sim.spawn(source(box, sc));
  box.sim.spawn(drainer(box));
  box.sim.run_until(sim::seconds(600.0));
  PAGODA_CHECK_MSG(box.done, "elastic-fleet scenario did not drain");

  const cluster::Dispatcher::Stats& st = box.disp.stats();
  Outcome out;
  out.elapsed_ms = sim::to_milliseconds(box.end_time);
  out.offered = st.offered;
  out.completed = st.completed;
  out.shed = st.shed;
  out.dropped = st.dropped;
  out.slo_violations = st.slo_violations;
  out.migrated = st.migrated;
  // The exactly-once ledger must balance under migration exactly as it does
  // under faults: every admitted request resolves once, a migrated attempt
  // is the same request (no extra resolution, no budget charge).
  PAGODA_CHECK_MSG(st.slot_releases == st.completed + st.shed,
                   "slot ledger out of balance");
  PAGODA_CHECK_MSG(st.slot_releases == st.admitted,
                   "admitted requests must resolve exactly once");
  if (out.offered > 0) {
    out.availability =
        static_cast<double>(out.completed - out.slo_violations) /
        static_cast<double>(out.offered);
  }
  for (int i = 0; i < box.fleet.size(); ++i) {
    const power::NodePower* np = box.fleet.node(i).power();
    PAGODA_CHECK_MSG(np != nullptr, "power plane must be armed");
    out.energy_j += np->energy_joules(box.end_time);
  }
  if (out.completed > 0) {
    out.joules_per_request =
        out.energy_j / static_cast<double>(out.completed);
  }
  if (const migrate::MigrationManager* mm = box.disp.migration()) {
    out.checkpoints = mm->stats().checkpoints;
    out.restores = mm->stats().restores;
    out.xfer_bytes = mm->stats().xfer_bytes;
  }
  if (const migrate::Autoscaler* as = box.disp.autoscaler()) {
    out.nodes_slept = as->stats().nodes_slept;
    out.nodes_woken = as->stats().nodes_woken;
    out.resize_events = as->stats().resize_events;
  }
  const std::span<const double> inter =
      box.disp.class_latencies_us(sched::Class::kInteractive);
  if (!inter.empty()) out.inter_p99_us = percentile(inter, 99);
  out.inter_completed =
      box.disp.class_stats(sched::Class::kInteractive).completed;
  out.batch_completed = box.disp.class_stats(sched::Class::kBatch).completed;
  box.fleet.shutdown();
  return out;
}

void write_outcome_json(std::ostream& os, const Outcome& o) {
  using obs::format_metric_double;
  os << "\"joules_per_request\": " << format_metric_double(o.joules_per_request)
     << ", \"energy_j\": " << format_metric_double(o.energy_j)
     << ", \"availability\": " << format_metric_double(o.availability)
     << ", \"inter_p99_us\": " << format_metric_double(o.inter_p99_us)
     << ", \"offered\": " << o.offered << ", \"completed\": " << o.completed
     << ", \"shed\": " << o.shed << ", \"dropped\": " << o.dropped
     << ", \"slo_violations\": " << o.slo_violations
     << ", \"migrated\": " << o.migrated
     << ", \"checkpoints\": " << o.checkpoints
     << ", \"restores\": " << o.restores
     << ", \"xfer_bytes\": " << o.xfer_bytes
     << ", \"nodes_slept\": " << o.nodes_slept
     << ", \"nodes_woken\": " << o.nodes_woken
     << ", \"resize_events\": " << o.resize_events
     << ", \"inter_completed\": " << o.inter_completed
     << ", \"batch_completed\": " << o.batch_completed
     << ", \"elapsed_ms\": " << format_metric_double(o.elapsed_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string bad = flags.unknown(
      {"tasks", "seeds", "seed", "gpus", "rate", "out", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", bad.c_str());
    return 1;
  }
  if (flags.has("help")) {
    std::printf(
        "elastic_fleet [--tasks=N] [--seeds=N] [--seed=BASE] [--gpus=N] "
        "[--rate=REQ_PER_S] [--out=FILE]\n");
    return 0;
  }
  const int requests = static_cast<int>(flags.get_int("tasks", 6000));
  const int num_seeds = static_cast<int>(flags.get_int("seeds", 2));
  PAGODA_CHECK_MSG(num_seeds >= 1, "--seeds must be >= 1");
  const int gpus = static_cast<int>(flags.get_int("gpus", 16));
  PAGODA_CHECK_MSG(gpus >= 4, "--gpus must be >= 4 (the resize plan needs "
                              "a surplus to shrink away)");
  const auto base_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0xE1A5));
  const std::string out_path = flags.get("out", "BENCH_migrate.json");

  // Fail fast on unwritable output paths, before any simulation runs.
  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "error: --out: cannot open output path '%s'\n",
                 out_path.c_str());
    return 2;
  }

  // Interactive: small, short, 5 ms SLO — the availability numerator.
  // Batch: ~20x the service demand, no deadline; it is what actually sits
  // in TaskTables when a drain hits, so it is what migrates.
  Scenario proto;
  proto.gpus = gpus;
  proto.requests = requests;
  proto.rate_per_sec = flags.get_double("rate", 150.0e3);
  PAGODA_CHECK_MSG(proto.rate_per_sec > 0.0, "--rate must be positive");
  proto.interactive.threads_per_task = 64;
  proto.interactive.compute_cycles = 6000.0;
  proto.interactive.stall_cycles = 12000.0;
  proto.interactive.h2d_bytes = 2048;
  proto.interactive.d2h_bytes = 512;
  proto.interactive.slo = sim::milliseconds(5.0);
  proto.interactive.cls = sched::Class::kInteractive;
  proto.batch.threads_per_task = 256;
  proto.batch.compute_cycles = 120000.0;
  proto.batch.stall_cycles = 240000.0;
  proto.batch.slo = 0;
  proto.batch.cls = sched::Class::kBatch;

  std::printf(
      "=== elastic fleet: %d requests/run, %d gpus, %d seeds, base %llu "
      "===\n",
      requests, gpus, num_seeds, static_cast<unsigned long long>(base_seed));
  std::printf("%-6s %-14s %10s %10s %8s %8s %8s %8s\n", "seed", "scenario",
              "J/req", "avail", "migrated", "slept", "woken", "int p99");

  json << "{\n  \"bench\": \"elastic_fleet\", \"requests\": " << requests
       << ", \"gpus\": " << gpus << ", \"seeds\": " << num_seeds
       << ", \"base_seed\": " << base_seed << ",\n  \"runs\": [\n";

  bool first = true;
  double worst_gain = 0.0;
  double worst_avail = 1.0;
  bool have_worst = false;
  for (int s = 0; s < num_seeds; ++s) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);

    // --- rolling resize: steady traffic, shrink to a third, grow back ----
    Scenario resize = proto;
    resize.seed = seed;
    resize.diurnal = false;
    resize.migrate = true;
    // The plan's instants sit inside the steady stream (expected length
    // requests/rate): shrink one node at a time down to gpus/3 a fifth of
    // the way in, then restore the full fleet at 60%.
    const double expect_us =
        static_cast<double>(requests) / proto.rate_per_sec * 1e6;
    resize.autoscale.plan = {
        {sim::microseconds(0.2 * expect_us), gpus / 3},
        {sim::microseconds(0.6 * expect_us), gpus},
    };
    const Outcome rz = run_scenario(resize);
    std::printf("%-6llu %-14s %9.2fmJ %9.4f %8lld %8llu %8llu %7.1fus\n",
                static_cast<unsigned long long>(seed), "rolling-resize",
                rz.joules_per_request * 1e3, rz.availability,
                static_cast<long long>(rz.migrated),
                static_cast<unsigned long long>(rz.nodes_slept),
                static_cast<unsigned long long>(rz.nodes_woken),
                rz.inter_p99_us);
    PAGODA_CHECK_MSG(rz.shed == 0 && rz.dropped == 0,
                     "rolling resize must not lose a single request");
    PAGODA_CHECK_MSG(rz.checkpoints > 0 && rz.restores == rz.checkpoints,
                     "the resize must exercise live migration");
    PAGODA_CHECK_MSG(rz.resize_events == 2,
                     "both plan steps must fire");
    PAGODA_CHECK_MSG(rz.availability >= 0.99,
                     "availability must stay >= 99% through the resize");
    if (rz.availability < worst_avail) worst_avail = rz.availability;
    if (!first) json << ",\n";
    first = false;
    json << "    {\"seed\": " << seed << ", \"scenario\": \"rolling-resize\""
         << ", ";
    write_outcome_json(json, rz);
    json << "}";

    // --- diurnal day: static full fleet vs autoscaled ---------------------
    Scenario stat = proto;
    stat.seed = seed;
    stat.diurnal = true;
    const Outcome base = run_scenario(stat);

    Scenario elastic = stat;
    elastic.migrate = true;
    elastic.autoscale.enabled = true;
    elastic.autoscale.target_util = 0.60;
    elastic.autoscale.low_watermark = 0.30;
    elastic.autoscale.high_watermark = 0.85;
    elastic.autoscale.min_nodes = 2;
    const Outcome ela = run_scenario(elastic);

    for (const Outcome* o : {&base, &ela}) {
      const bool is_base = o == &base;
      std::printf("%-6llu %-14s %9.2fmJ %9.4f %8lld %8llu %8llu %7.1fus\n",
                  static_cast<unsigned long long>(seed),
                  is_base ? "static-fleet" : "autoscaled",
                  o->joules_per_request * 1e3, o->availability,
                  static_cast<long long>(o->migrated),
                  static_cast<unsigned long long>(o->nodes_slept),
                  static_cast<unsigned long long>(o->nodes_woken),
                  o->inter_p99_us);
      if (!first) json << ",\n";
      first = false;
      json << "    {\"seed\": " << seed << ", \"scenario\": \""
           << (is_base ? "static-fleet" : "autoscaled") << "\", ";
      write_outcome_json(json, *o);
      json << "}";
    }
    // Equal per-class goodput: identical arrival trace, neither run drops
    // (unbounded queue) nor sheds (migrate-not-shed), so completions must
    // match exactly.
    PAGODA_CHECK_MSG(base.shed == 0 && base.dropped == 0 && ela.shed == 0 &&
                         ela.dropped == 0,
                     "both diurnal runs must be lossless");
    PAGODA_CHECK_MSG(ela.inter_completed == base.inter_completed &&
                         ela.batch_completed == base.batch_completed,
                     "per-class goodput must match the static fleet");
    PAGODA_CHECK_MSG(ela.nodes_slept > 0,
                     "the autoscaler must sleep the diurnal trough");
    const double gain = base.joules_per_request / ela.joules_per_request;
    if (!have_worst || gain < worst_gain) worst_gain = gain;
    have_worst = true;
    PAGODA_CHECK_MSG(gain >= 1.15,
                     "the autoscaled day must spend measurably fewer joules "
                     "per request than the static full fleet");
  }
  json << "\n  ],\n  \"worst_energy_gain\": "
       << obs::format_metric_double(worst_gain)
       << ",\n  \"worst_resize_availability\": "
       << obs::format_metric_double(worst_avail) << "\n}\n";

  std::printf("\nworst-seed autoscale gain vs static fleet: %.2fx "
              "joules/request (floor 1.15x); worst resize availability "
              "%.4f (floor 0.99)\n",
              worst_gain, worst_avail);
  std::printf("-> %s\n", out_path.c_str());
  return 0;
}
