// Ablations of Pagoda's design choices (beyond the paper's figures):
//
//  (a) TaskTable rows per MTB — the paper picks 32 rows "for high
//      availability of tasks to schedule"; fewer rows force more frequent
//      aggregate copy-backs.
//  (b) Pipelined single-copy spawning vs the naive two-copy protocol that
//      §4.2.1 rejects (parameters first, then the ready flag, doubling the
//      per-task copy overhead).
//  (c) Batch-size sensitivity of Pagoda-Batching (between GeMTC-style
//      gating and fully continuous spawning).
#include <vector>

#include "bench_common.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/4096);
  bench::print_header("Pagoda design ablations (MM workload)", args);
  const char* wl = "MM";

  {
    std::printf("-- (a) TaskTable rows per MTB (paper: 32) --\n");
    Table table({"rows/column", "entries total", "time", "vs 32 rows"});
    double base = 0.0;
    for (const int rows : {4, 8, 16, 32, 64}) {
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.pagoda.rows_per_column = rows;
      const Measurement m = run_experiment(wl, "Pagoda", args.wcfg(), rcfg);
      if (rows == 32) base = static_cast<double>(m.result.elapsed);
      table.add_row({std::to_string(rows), std::to_string(rows * 48),
                     fmt_ms(m.result.elapsed),
                     base > 0 ? fmt_x(static_cast<double>(m.result.elapsed) /
                                      base)
                              : "-"});
    }
    // Recompute the "vs 32" column in a second pass for rows < 32 printed
    // before the base was known: rerun quickly.
    table.print(std::cout);
    std::printf("\n");
  }

  {
    std::printf("-- (b) spawn protocol: pipelined 1-copy vs naive 2-copy "
                "(§4.2.1) --\n");
    Table table({"protocol", "time", "entry copies"});
    for (const bool two_copy : {false, true}) {
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.pagoda.two_copy_spawn = two_copy;
      const Measurement m = run_experiment(wl, "Pagoda", args.wcfg(), rcfg);
      table.add_row({two_copy ? "2-copy (naive)" : "1-copy (pipelined)",
                     fmt_ms(m.result.elapsed),
                     two_copy ? "2 per task" : "1 per task"});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  {
    std::printf("-- (c) Pagoda-Batching batch size (0 dependence = "
                "continuous) --\n");
    Table table({"batch size", "time"});
    for (const int batch : {64, 256, 1024, 4096}) {
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.batch_size = batch;
      const Measurement m =
          run_experiment(wl, "PagodaBatching", args.wcfg(), rcfg);
      table.add_row({std::to_string(batch), fmt_ms(m.result.elapsed)});
    }
    const Measurement cont =
        run_experiment(wl, "Pagoda", args.wcfg(), args.rcfg());
    table.add_row({"continuous", fmt_ms(cont.result.elapsed)});
    table.print(std::cout);
    std::printf("\n");
  }

  {
    std::printf("-- (e) scheduler-warp cost sensitivity (scan/dispatch/"
                "alloc cycles x0.5 / x1 / x4) --\n");
    // §4.3: "task spawning and scheduling are high-overhead operations";
    // how much headroom does the end-to-end result have against heavier
    // scheduler warps?
    Table table({"scheduling cost scale", "spawn-bound (64^2)",
                 "GPU-bound (128^2, no copies)"});
    for (const double scale : {0.5, 1.0, 4.0}) {
      auto scaled = [&](baselines::RunConfig rcfg) {
        rcfg.pagoda.scan_pass_cycles *= scale;
        rcfg.pagoda.release_chain_cycles *= scale;
        rcfg.pagoda.dispatch_cycles_per_warp *= scale;
        rcfg.pagoda.shmem_alloc_cycles *= scale;
        rcfg.pagoda.shmem_sweep_cycles *= scale;
        rcfg.pagoda.barrier_mgmt_cycles *= scale;
        return rcfg;
      };
      const Measurement light =
          run_experiment(wl, "Pagoda", args.wcfg(), scaled(args.rcfg()));
      workloads::WorkloadConfig heavy_w = args.wcfg();
      heavy_w.input_scale = 128;
      baselines::RunConfig heavy_r = scaled(args.rcfg());
      heavy_r.include_data_copies = false;
      const Measurement heavy =
          run_experiment(wl, "Pagoda", heavy_w, heavy_r);
      char label[16];
      std::snprintf(label, sizeof(label), "x%.1f", scale);
      table.add_row({label, fmt_ms(light.result.elapsed),
                     fmt_ms(heavy.result.elapsed)});
    }
    table.print(std::cout);
    std::printf("Scheduler cycles contend with executor warps only when the "
                "SMM pipeline is the bottleneck; at spawn/copy-bound loads "
                "they are fully hidden (the pipelining of §4.3).\n\n");
  }

  {
    std::printf("-- (d) dispatch granularity: warp-level vs threadblock-"
                "level (§6.4) --\n");
    // Visible when executor warps are scarce relative to block size: use
    // 512-thread (16-warp) tasks so two blocks cannot co-reside in one
    // 31-executor MTB without warp-level streaming.
    workloads::WorkloadConfig wcfg = args.wcfg();
    wcfg.threads_per_task = 512;
    Table table({"granularity", "time"});
    for (const bool tb : {false, true}) {
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.include_data_copies = false;
      rcfg.pagoda.threadblock_granularity = tb;
      const Measurement m = run_experiment("MB", "Pagoda", wcfg, rcfg);
      table.add_row({tb ? "threadblock (CUDA rule)" : "warp (Pagoda)",
                     fmt_ms(m.result.elapsed)});
    }
    table.print(std::cout);
  }
  return 0;
}
