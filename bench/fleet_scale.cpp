// Fleet-scale sweep for the sharded simulation core: 1 -> 256 homogeneous
// nodes behind one dispatcher, measuring how far ONE simulated fleet can
// scale and what the worker pool buys on wall-clock.
//
//   fleet_scale [--tasks-per-node=N] [--threads=N] [--seed=N]
//               [--out=BENCH_fleet.json]
//
// Unlike every other bench, --threads here is the SIMULATION worker pool
// (the pagoda_cli --threads flag), not threads-per-task: each sweep point
// runs on the sequential sharded core, and the 64-node point runs again
// under --threads=N workers. The virtual-time outcome (completed count, end
// time) must be identical between the two; wall-clock is what changes. The
// JSON artifact carries both the stable simulated outcomes and the
// (machine-dependent) wall-clock milliseconds + speedup that
// tools/check.sh gates.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "engine/session.h"
#include "harness/flags.h"
#include "obs/metrics.h"
#include "sim/process.h"

using namespace pagoda;

namespace {

struct Outcome {
  double elapsed_ms = 0.0;       // virtual
  double wall_ms = 0.0;          // real
  std::int64_t completed = 0;
  double throughput_rps = 0.0;   // virtual
  std::uint64_t windows = 0;     // parallel windows run (0 = sequential)
  std::uint64_t window_events = 0;
  std::uint64_t posts = 0;
};

struct RunBox {
  static engine::SessionConfig clock_only(int threads) {
    engine::SessionConfig c;
    c.device = false;  // GpuNodes bring up their own device sub-sessions
    c.sim_threads = threads;
    return c;
  }

  engine::Session session;
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher disp;
  sim::Time end_time = 0;
  bool done = false;

  RunBox(int nodes, int threads, const cluster::NodeConfig& proto)
      : session(clock_only(threads)),
        fleet(sim, cluster::Cluster::homogeneous(nodes, proto)),
        disp(fleet, cluster::make_policy("round-robin"), [] {
          cluster::DispatcherConfig dc;
          return dc;
        }()) {}
};

sim::Process source(RunBox& box, const cluster::ArrivalConfig& acfg,
                    const cluster::RequestProfile& profile, int requests,
                    std::uint64_t seed) {
  cluster::ArrivalSequence seq(acfg, seed);
  for (int i = 0; i < requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await box.sim.delay(gap);
    box.disp.offer(cluster::synth_request(profile, seed, i));
  }
  box.disp.close();
}

sim::Process drainer(RunBox& box) {
  co_await box.disp.drain();
  box.end_time = box.sim.now();
  box.done = true;
}

Outcome run_point(int nodes, int threads, int requests, std::uint64_t seed) {
  cluster::NodeConfig proto;
  proto.pcie.bandwidth_bytes_per_sec = 12.0e9;  // the paper's platform
  proto.pcie.latency = sim::microseconds(2.0);

  cluster::RequestProfile profile;  // uniform, no SLO: pure throughput
  cluster::ArrivalConfig acfg;
  acfg.kind = cluster::ArrivalKind::Poisson;
  acfg.rate_per_sec = 200.0e3 * nodes;  // constant offered load per node

  RunBox box(nodes, threads, proto);
  box.fleet.start();
  box.sim.spawn(source(box, acfg, profile, requests, seed));
  box.sim.spawn(drainer(box));

  const auto wall_start = std::chrono::steady_clock::now();
  box.sim.run_until(sim::seconds(120.0));
  const auto wall_end = std::chrono::steady_clock::now();
  PAGODA_CHECK_MSG(box.done, "fleet point did not drain");

  Outcome o;
  o.elapsed_ms = sim::to_milliseconds(box.end_time);
  o.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  o.completed = box.disp.stats().completed;
  const double elapsed_s = sim::to_seconds(box.end_time);
  if (elapsed_s > 0.0) {
    o.throughput_rps = static_cast<double>(o.completed) / elapsed_s;
  }
  const sim::ShardStats& ss = box.sim.shard_stats();
  o.windows = ss.windows;
  o.window_events = ss.window_events;
  o.posts = ss.posts;
  box.fleet.shutdown();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Flags flags(argc, argv);
  const std::string bad =
      flags.unknown({"tasks-per-node", "threads", "seed", "out", "help"});
  if (!bad.empty()) {
    std::fprintf(stderr, "error: unknown argument '%s'\n", bad.c_str());
    return 1;
  }
  if (flags.has("help")) {
    std::printf(
        "fleet_scale [--tasks-per-node=N] [--threads=N] [--seed=N] "
        "[--out=FILE]\n");
    return 0;
  }
  const int per_node = static_cast<int>(flags.get_int("tasks-per-node", 64));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0x9A60DA));
  const std::string out_path = flags.get("out", "BENCH_fleet.json");
  PAGODA_CHECK_MSG(per_node > 0, "--tasks-per-node must be positive");
  PAGODA_CHECK_MSG(threads >= 1, "--threads must be >= 1");

  std::printf("=== fleet scale: %d requests/node, seed %llu ===\n", per_node,
              static_cast<unsigned long long>(seed));
  std::printf("%-6s %-8s %12s %12s %12s %10s\n", "nodes", "threads",
              "thr (k/s)", "sim (ms)", "wall (ms)", "windows");

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"fleet_scale\", \"tasks_per_node\": " << per_node
       << ", \"threads\": " << threads << ", \"seed\": " << seed
       << ",\n  \"sweep\": [\n";

  bool first = true;
  Outcome base64;  // the 64-node sequential point anchors the speedup
  for (const int nodes : {1, 4, 16, 64, 256}) {
    const Outcome o = run_point(nodes, 1, per_node * nodes, seed);
    if (nodes == 64) base64 = o;
    std::printf("%-6d %-8d %12.1f %12.1f %12.1f %10llu\n", nodes, 1,
                o.throughput_rps / 1e3, o.elapsed_ms, o.wall_ms,
                static_cast<unsigned long long>(o.windows));
    if (!first) json << ",\n";
    first = false;
    json << "    {\"nodes\": " << nodes << ", \"threads\": 1"
         << ", \"completed\": " << o.completed << ", \"sim_ms\": "
         << obs::format_metric_double(o.elapsed_ms)
         << ", \"wall_ms\": " << obs::format_metric_double(o.wall_ms) << "}";
  }

  // The worker-pool pass: same 64-node fleet, N-thread conservative-window
  // execution. Virtual-time outcomes must not move; wall-clock should.
  const Outcome par = run_point(64, threads, per_node * 64, seed);
  std::printf("%-6d %-8d %12.1f %12.1f %12.1f %10llu\n", 64, threads,
              par.throughput_rps / 1e3, par.elapsed_ms, par.wall_ms,
              static_cast<unsigned long long>(par.windows));
  PAGODA_CHECK_MSG(par.completed == base64.completed,
                   "worker pool changed the completed-request count");
  PAGODA_CHECK_MSG(par.elapsed_ms == base64.elapsed_ms,
                   "worker pool changed the virtual end time");
  const double speedup = par.wall_ms > 0.0 ? base64.wall_ms / par.wall_ms : 0.0;

  json << ",\n    {\"nodes\": 64, \"threads\": " << threads
       << ", \"completed\": " << par.completed << ", \"sim_ms\": "
       << obs::format_metric_double(par.elapsed_ms)
       << ", \"wall_ms\": " << obs::format_metric_double(par.wall_ms)
       << ", \"windows\": " << par.windows
       << ", \"window_events\": " << par.window_events
       << ", \"posts\": " << par.posts << "}";
  json << "\n  ],\n  \"speedup_64\": " << obs::format_metric_double(speedup)
       << "\n}\n";

  std::printf("\n64-node wall-clock: %.1f ms sequential, %.1f ms with %d "
              "threads (%.2fx); %llu windows, %llu window events, %llu "
              "cross-shard posts\n",
              base64.wall_ms, par.wall_ms, threads, speedup,
              static_cast<unsigned long long>(par.windows),
              static_cast<unsigned long long>(par.window_events),
              static_cast<unsigned long long>(par.posts));
  std::printf("-> %s\n", out_path.c_str());
  if (threads > 1) {
    PAGODA_CHECK_MSG(par.windows > 0,
                     "worker pool ran but no parallel window executed");
  }
  return 0;
}
