// Reproduces Table 3's workload-characterization columns: "% time spent in
// data copy (CUDA-HyperQ)" vs "% time spent in computation".
//
// Paper values: MB 24/76, FB 35/65, BF 13/87, CONV 30/70, DCT 81/19,
// MM 51/49, SLUD 3/97, 3DES 74/26.
//
// Measured as the PCIe wire occupancy of the busier direction relative to
// the end-to-end time (the copy engines run concurrently with compute, so
// the occupied fraction of the bottleneck wire IS the copy share of the
// run). The compute-only runtime is printed alongside.
#include <algorithm>

#include "bench_common.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/2048);
  bench::print_header(
      "Table 3: % time in data copy vs computation under CUDA-HyperQ", args);

  Table table({"benchmark", "copy %", "paper copy %", "total",
               "compute-only"});
  const std::pair<const char*, int> paper_copy[] = {
      {"MB", 24}, {"FB", 35},   {"BF", 13},   {"CONV", 30},
      {"DCT", 81}, {"MM", 51},  {"SLUD", 3},  {"3DES", 74}};
  for (const auto& [wl, paper_pct] : paper_copy) {
    const workloads::WorkloadConfig wcfg = args.wcfg();
    baselines::RunConfig with_copies = args.rcfg();
    baselines::RunConfig without = args.rcfg();
    without.include_data_copies = false;
    const Measurement total = run_experiment(wl, "HyperQ", wcfg, with_copies);
    const Measurement compute = run_experiment(wl, "HyperQ", wcfg, without);
    const double copy_frac =
        static_cast<double>(std::max(total.result.h2d_wire_busy,
                                     total.result.d2h_wire_busy)) /
        static_cast<double>(total.result.elapsed);
    table.add_row({wl, fmt_pct(copy_frac), fmt_pct(paper_pct / 100.0),
                   fmt_ms(total.result.elapsed),
                   fmt_ms(compute.result.elapsed)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: DCT and 3DES the most copy-bound; SLUD the least; "
      "the measured ordering should match the paper column.\n");
  return 0;
}
