// Reproduces Figure 11: the benefit decomposition of Pagoda's continuous
// spawning and concurrent, pipelined task processing.
//
// Paper: three schemes on 32K tasks of 128 threads —
//   GeMTC            (neither mechanism)
//   Pagoda-Batching  (concurrent scheduling, but batch-gated spawning with
//                     GeMTC's batch size)
//   Pagoda           (both: continuous spawning + pipelined processing)
// The GeMTC -> Pagoda-Batching gap isolates concurrent task scheduling; the
// Pagoda-Batching -> Pagoda gap isolates continuous, pipelined spawning.
// CONV benefits least from continuous spawning (regular, extremely short
// tasks); MPE benefits most (unbalanced tasks).
#include <vector>

#include "bench_common.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/4096);
  bench::print_header(
      "Figure 11: continuous spawning & pipelined processing benefits", args);

  Table table({"benchmark", "GeMTC", "Pagoda-Batching", "Pagoda",
               "Batching/GeMTC", "Pagoda/Batching", "Pagoda/GeMTC"});
  for (const char* wl :
       {"MB", "CONV", "FB", "BF", "3DES", "DCT", "MM", "MPE"}) {
    const workloads::WorkloadConfig wcfg = args.wcfg();
    const baselines::RunConfig rcfg = args.rcfg();
    const Measurement ge = run_experiment(wl, "GeMTC", wcfg, rcfg);
    const Measurement pb = run_experiment(wl, "PagodaBatching", wcfg, rcfg);
    const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);
    table.add_row({wl, fmt_ms(ge.result.elapsed), fmt_ms(pb.result.elapsed),
                   fmt_ms(pa.result.elapsed), fmt_x(speedup(ge, pb)),
                   fmt_x(speedup(pb, pa)), fmt_x(speedup(ge, pa))});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: Pagoda outperforms GeMTC in all cases; "
      "Batching/GeMTC isolates concurrent scheduling, Pagoda/Batching "
      "isolates continuous pipelined spawning (smallest for CONV, large for "
      "MPE).\n");
  return 0;
}
