// Architecture sweep (beyond the paper's figures): the paper validated the
// TaskTable's cross-PCIe visibility on two GPUs — Maxwell Titan X and
// Kepler Tesla K40 (§4.2.2). This bench runs the Fig 5-style comparison on
// both architecture models. The K40 has 15 SMXs (30 MTBs, 16 KB arenas) to
// the Titan X's 24 SMMs (48 MTBs, 32 KB arenas), so Pagoda's throughput
// scales with the device while the protocol stays unchanged.
#include "bench_common.h"

using namespace pagoda;
using namespace pagoda::harness;
using pagoda::bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args(argc, argv, /*default_tasks=*/2048);
  bench::print_header("Architecture sweep: Titan X vs Tesla K40", args);

  for (const auto& [label, spec] :
       std::initializer_list<std::pair<const char*, gpu::GpuSpec>>{
           {"Titan X (24 SMMs, 1 GHz)", gpu::GpuSpec::titan_x()},
           {"Tesla K40 (15 SMXs, 745 MHz)", gpu::GpuSpec::tesla_k40()}}) {
    std::printf("-- %s --\n", label);
    Table table({"benchmark", "HyperQ", "Pagoda", "HyperQ/Pagoda",
                 "Pagoda occupancy"});
    for (const char* wl : {"MB", "MM", "3DES", "MPE"}) {
      workloads::WorkloadConfig wcfg = args.wcfg();
      // K40 MTB arenas are 16 KB; keep shmem requests portable.
      wcfg.use_shared_memory = false;
      baselines::RunConfig rcfg = args.rcfg();
      rcfg.spec = spec;
      const Measurement hq = run_experiment(wl, "HyperQ", wcfg, rcfg);
      const Measurement pa = run_experiment(wl, "Pagoda", wcfg, rcfg);
      table.add_row({wl, fmt_ms(hq.result.elapsed),
                     fmt_ms(pa.result.elapsed), fmt_x(speedup(hq, pa)),
                     fmt_pct(pa.result.occupancy)});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("Expected shape: Pagoda's advantage holds on both devices; "
              "absolute times scale with SMM count and clock.\n");
  return 0;
}
