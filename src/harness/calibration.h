// Calibration constants, gathered in one place so EXPERIMENTS.md can discuss
// sensitivity honestly.
//
// Anchors (all from the paper's §6.1 setup or common CUDA-7.5-era
// measurements):
//   * Titan X: 24 SMMs x 128 cores at 1 GHz; PCIe 3.0 x16 ≈ 12 GB/s
//     effective per direction.
//   * cudaMemcpyAsync setup ≈ 3 us of CPU time; DMA transaction latency
//     ≈ 2 us; kernel launch ≈ 5 us.
//   * Xeon E5-2660: 2.6 GHz, ~2.3 sustained scalar IPC -> ~6 Gops/s/core.
//
// The default values live in the structs they configure (PcieConfig,
// HostCosts, CostModel, PagodaConfig, cpu_runtime.cpp); this header
// re-exports the experiment-wide bundle so benches share one source.
#pragma once

#include "baselines/task_runtime.h"

namespace pagoda::harness {

/// The paper's experimental platform (§6.1) as one RunConfig bundle.
inline baselines::RunConfig paper_platform() {
  baselines::RunConfig cfg;
  cfg.spec = gpu::GpuSpec::titan_x();
  cfg.pcie.bandwidth_bytes_per_sec = 12.0e9;
  cfg.pcie.latency = sim::microseconds(2.0);
  cfg.spawner_threads = 2;  // Fig 1a
  return cfg;
}

}  // namespace pagoda::harness
