// Minimal command-line flag parsing for the bench binaries:
//   --tasks=4096 --threads=128 --full --mode=compute --seed=7
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace pagoda::harness {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(std::string_view name) const {
    const std::string probe = "--" + std::string(name);
    for (const std::string& a : args_) {
      if (a == probe || a.rfind(probe + "=", 0) == 0) return true;
    }
    return false;
  }

  std::string get(std::string_view name, std::string_view def = "") const {
    const std::string probe = "--" + std::string(name) + "=";
    for (const std::string& a : args_) {
      if (a.rfind(probe, 0) == 0) return a.substr(probe.size());
    }
    return std::string(def);
  }

  std::int64_t get_int(std::string_view name, std::int64_t def) const {
    const std::string v = get(name);
    return v.empty() ? def : std::strtoll(v.c_str(), nullptr, 10);
  }

 private:
  std::vector<std::string> args_;
};

}  // namespace pagoda::harness
