// Minimal command-line flag parsing for the bench binaries:
//   --tasks=4096 --threads=128 --full --mode=compute --seed=7
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pagoda::harness {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(std::string_view name) const {
    const std::string probe = "--" + std::string(name);
    for (const std::string& a : args_) {
      if (a == probe || a.rfind(probe + "=", 0) == 0) return true;
    }
    return false;
  }

  std::string get(std::string_view name, std::string_view def = "") const {
    const std::string probe = "--" + std::string(name) + "=";
    for (const std::string& a : args_) {
      if (a.rfind(probe, 0) == 0) return a.substr(probe.size());
    }
    return std::string(def);
  }

  /// Integer flag value. The whole value must parse — `--tasks=12abc` is an
  /// error (exit 2), not 12. An absent flag or `--name=` yields `def`.
  std::int64_t get_int(std::string_view name, std::int64_t def) const {
    return strict_parse(name, def, [](const char* s, char** end) {
      return std::strtoll(s, end, 10);
    });
  }

  /// Floating-point flag value, with the same full-consumption rule.
  double get_double(std::string_view name, double def) const {
    return strict_parse(name, def,
                        [](const char* s, char** end) { return std::strtod(s, end); });
  }

  /// Enumerated string flag. The value must match one of `choices` exactly;
  /// for parameterized choices of the form "kind:ARG[...]" (e.g.
  /// "poisson:RATE"), a value whose kind — the part before the first ':' —
  /// matches is accepted too, leaving the argument tail for the caller's own
  /// parser. Anything else prints the valid choices and exits 2.
  std::string get_enum(std::string_view name, std::string_view def,
                       std::initializer_list<std::string_view> choices) const {
    return get_enum(name, def,
                    std::span<const std::string_view>(choices.begin(),
                                                      choices.size()));
  }

  std::string get_enum(std::string_view name, std::string_view def,
                       std::span<const std::string_view> choices) const {
    const std::string v = get(name, def);
    const std::string_view v_kind =
        std::string_view(v).substr(0, v.find(':'));
    for (const std::string_view c : choices) {
      if (v == c) return v;
      const std::string_view c_kind = c.substr(0, c.find(':'));
      if (c_kind.size() != c.size() && v_kind == c_kind) return v;
    }
    std::fprintf(stderr, "invalid value for --%.*s: '%s' (valid: ",
                 static_cast<int>(name.size()), name.data(), v.c_str());
    bool first = true;
    for (const std::string_view c : choices) {
      std::fprintf(stderr, "%s%.*s", first ? "" : ", ",
                   static_cast<int>(c.size()), c.data());
      first = false;
    }
    std::fprintf(stderr, ")\n");
    std::exit(2);
  }

  /// First argument that is not `--name` or `--name=value` for a name in
  /// `known` (including anything that is not a `--flag` at all); empty when
  /// every argument is recognized. Lets binaries reject typos instead of
  /// silently ignoring them.
  std::string unknown(std::initializer_list<std::string_view> known) const {
    for (const std::string& a : args_) {
      if (a.rfind("--", 0) != 0) return a;
      const std::size_t eq = a.find('=');
      const std::string_view name =
          std::string_view(a).substr(2, eq == std::string::npos
                                            ? std::string::npos
                                            : eq - 2);
      bool recognized = false;
      for (const std::string_view k : known) {
        if (name == k) {
          recognized = true;
          break;
        }
      }
      if (!recognized) return a;
    }
    return {};
  }

 private:
  /// Shared strict-parse core for the numeric getters: the whole value must
  /// be consumed by `parse` with errno clear, else exit 2.
  template <typename T, typename ParseFn>
  T strict_parse(std::string_view name, T def, ParseFn parse) const {
    const std::string v = get(name);
    if (v.empty()) return def;
    errno = 0;
    char* end = nullptr;
    const T parsed = parse(v.c_str(), &end);
    if (errno != 0 || end != v.c_str() + v.size()) bad_value(name, v);
    return parsed;
  }

  [[noreturn]] static void bad_value(std::string_view name,
                                     const std::string& value) {
    std::fprintf(stderr, "invalid value for --%.*s: '%s'\n",
                 static_cast<int>(name.size()), name.data(), value.c_str());
    std::exit(2);
  }

  std::vector<std::string> args_;
};

}  // namespace pagoda::harness
