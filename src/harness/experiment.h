// Experiment runner: (workload x runtime x config) -> measurement, plus the
// plain-text table printer the bench binaries use to emit paper-style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/task_runtime.h"
#include "obs/metrics.h"
#include "workloads/workload.h"

namespace pagoda::harness {

struct Measurement {
  std::string workload;
  std::string runtime;
  baselines::RunResult result;
  /// Snapshot of the run's metrics registry when the RunConfig carried an
  /// obs::Collector (empty otherwise). Includes a `task.latency_us` log2
  /// histogram when per-task latencies were collected.
  obs::MetricsRegistry metrics;
};

/// Generates the workload (applying per-runtime constraints: GeMTC gets the
/// no-shared-memory variants, per §6.2), runs it under the named runtime and
/// returns the measurement. Aborts if the runtime does not support the
/// workload — call runtime_supports() first for optional schemes.
Measurement run_experiment(std::string_view workload_name,
                           std::string_view runtime_name,
                           workloads::WorkloadConfig wcfg,
                           const baselines::RunConfig& rcfg);

/// Whether `runtime_name` can execute `workload_name` as configured
/// (e.g. GeMTC/Fusion cannot run SLUD).
bool runtime_supports(std::string_view workload_name,
                      std::string_view runtime_name,
                      workloads::WorkloadConfig wcfg);

/// Speedup of `m` over `base` on total time (the Fig 5/9 metric).
double speedup(const Measurement& base, const Measurement& m);

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_ms(sim::Duration d);
std::string fmt_x(double speedup);       // "5.70x"
std::string fmt_pct(double fraction);    // "16.7%"
std::string fmt_us(double microseconds);

}  // namespace pagoda::harness
