#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.h"
#include "obs/collector.h"

namespace pagoda::harness {

namespace {

workloads::WorkloadConfig adjust_for_runtime(std::string_view runtime_name,
                                             workloads::WorkloadConfig wcfg) {
  if (runtime_name == "GeMTC") {
    // "The GeMTC versions do not use shared memory, since GeMTC has no
    // support for it." (§6.2)
    wcfg.use_shared_memory = false;
  }
  return wcfg;
}

}  // namespace

bool runtime_supports(std::string_view workload_name,
                      std::string_view runtime_name,
                      workloads::WorkloadConfig wcfg) {
  auto rt = baselines::make_runtime(runtime_name);
  auto wl = workloads::make_workload(workload_name);
  // A small probe generation suffices for the structural checks.
  workloads::WorkloadConfig probe = adjust_for_runtime(runtime_name, wcfg);
  probe.num_tasks = std::min(probe.num_tasks, 64);
  probe.mode = gpu::ExecMode::Model;
  wl->generate(probe);
  return rt->supports(*wl);
}

Measurement run_experiment(std::string_view workload_name,
                           std::string_view runtime_name,
                           workloads::WorkloadConfig wcfg,
                           const baselines::RunConfig& rcfg) {
  auto rt = baselines::make_runtime(runtime_name);
  auto wl = workloads::make_workload(workload_name);
  wcfg = adjust_for_runtime(runtime_name, wcfg);
  wcfg.mode = rcfg.mode;
  wl->generate(wcfg);
  PAGODA_CHECK_MSG(rt->supports(*wl), "runtime does not support workload");

  Measurement m;
  m.workload = std::string(workload_name);
  m.runtime = std::string(runtime_name);
  m.result = rt->run(*wl, rcfg);
  PAGODA_CHECK_MSG(m.result.completed, "experiment did not complete in time");
  if (rcfg.mode == gpu::ExecMode::Compute) {
    PAGODA_CHECK_MSG(wl->verify(), "workload output verification failed");
  }
  if (rcfg.collector != nullptr) {
    obs::Histogram& h = rcfg.collector->metrics().histogram("task.latency_us");
    for (const double us : m.result.task_latency_us) h.add(us);
    m.metrics = rcfg.collector->metrics();
  }
  return m;
}

double speedup(const Measurement& base, const Measurement& m) {
  PAGODA_CHECK(m.result.elapsed > 0);
  return static_cast<double>(base.result.elapsed) /
         static_cast<double>(m.result.elapsed);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PAGODA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-');
    if (c + 1 < headers_.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_ms(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", sim::to_milliseconds(d));
  return buf;
}

std::string fmt_x(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", s);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fmt_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f us", us);
  return buf;
}

}  // namespace pagoda::harness
