// PCIe bus model: two directed links (H2D / D2H) plus a memcpy engine with
// real byte transport.
//
// Properties the Pagoda TaskTable design depends on (paper §4.2):
//  * Per-transaction setup latency dominates small copies — aggregated bulk
//    copies achieve far better effective bandwidth.
//  * The bus offers no atomics and no write-ordering guarantee *within* one
//    transaction: two fields copied in a single cudaMemcpy may become visible
//    to the GPU in any order. Transactions issued on the same CUDA stream
//    complete in order.
//
// The engine honors both: bytes land (and the completion fires) only when a
// transfer's time cost has elapsed, and copy_unordered() exposes the
// intra-transaction hazard by making payload bytes visible at a randomized
// intermediate time, which the TaskTable race test exercises.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>

#include "common/check.h"
#include "common/rng.h"
#include "sim/link.h"
#include "sim/simulation.h"

namespace pagoda::pcie {

enum class Direction { HostToDevice, DeviceToHost };

struct PcieConfig {
  /// Effective bandwidth per direction (PCIe 3.0 x16 ≈ 12 GB/s achievable).
  double bandwidth_bytes_per_sec = 12.0e9;
  /// Completion latency after a transfer's wire slot (DMA round trip).
  sim::Duration latency = sim::microseconds(2.0);
  /// Minimum wire occupancy per transaction (engine issue overhead);
  /// back-to-back small copies pipeline at this spacing.
  sim::Duration transaction_gap = sim::nanoseconds(500.0);
};

class PcieBus {
 public:
  PcieBus(sim::Simulation& sim, const PcieConfig& cfg)
      : sim_(&sim),
        h2d_(sim, cfg.bandwidth_bytes_per_sec, cfg.latency,
             cfg.transaction_gap),
        d2h_(sim, cfg.bandwidth_bytes_per_sec, cfg.latency,
             cfg.transaction_gap) {}

  sim::Link& link(Direction d) {
    return d == Direction::HostToDevice ? h2d_ : d2h_;
  }

  /// Timed copy with real byte transport: dst/src may be null (model mode,
  /// no data movement) or point to `bytes` valid bytes. Bytes land when the
  /// transfer completes, then on_done fires.
  void copy(Direction dir, void* dst, const void* src, std::size_t bytes,
            std::function<void()> on_done) {
    link(dir).transfer(static_cast<std::int64_t>(bytes),
                       [dst, src, bytes, fn = std::move(on_done)]() mutable {
                         if (dst != nullptr && src != nullptr && bytes > 0) {
                           std::memcpy(dst, src, bytes);
                         }
                         fn();
                       });
  }

  /// Fault-injection hook for *payload* transfers (the serving layer's data
  /// copies — never the TaskTable protocol stream): consulted once per
  /// checked copy at issue time; returning true marks that copy corrupt.
  /// The corrupt transfer still occupies its full wire slot (the bytes
  /// crossed the bus; the end-to-end CRC just failed), but the payload does
  /// NOT land, exactly like a DMA engine dropping a poisoned TLP.
  using TransferFaultFn = std::function<bool(Direction, std::int64_t bytes)>;
  void set_transfer_fault_fn(TransferFaultFn fn) { fault_fn_ = std::move(fn); }

  std::int64_t transfer_faults() const { return transfer_faults_; }

  /// Timed copy whose completion reports transfer integrity. With no fault
  /// hook armed this is exactly copy() (ok == true always) — same events,
  /// same wire accounting — so fault-free runs are byte-identical.
  void copy_checked(Direction dir, void* dst, const void* src,
                    std::size_t bytes, std::function<void(bool ok)> on_done) {
    bool ok = true;
    if (fault_fn_ && fault_fn_(dir, static_cast<std::int64_t>(bytes))) {
      ok = false;
      transfer_faults_ += 1;
    }
    link(dir).transfer(static_cast<std::int64_t>(bytes),
                       [dst, src, bytes, ok, fn = std::move(on_done)]() mutable {
                         if (ok && dst != nullptr && src != nullptr &&
                             bytes > 0) {
                           std::memcpy(dst, src, bytes);
                         }
                         fn(ok);
                       });
  }

  /// Awaitable form of copy().
  auto copy(Direction dir, void* dst, const void* src, std::size_t bytes) {
    struct Awaiter {
      PcieBus* bus;
      Direction dir;
      void* dst;
      const void* src;
      std::size_t bytes;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        bus->copy(dir, dst, src, bytes, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, dir, dst, src, bytes};
  }

  /// Copy that models the *absence* of intra-transaction write ordering: the
  /// second region's bytes may land before the first region's. Used by tests
  /// to demonstrate why a task's parameters and its ready flag cannot ride
  /// the same transaction (§4.2.1).
  void copy_two_regions_unordered(Direction dir, void* dst_a,
                                  const void* src_a, std::size_t bytes_a,
                                  void* dst_b, const void* src_b,
                                  std::size_t bytes_b, std::uint64_t seed,
                                  std::function<void()> on_done) {
    const std::size_t total = bytes_a + bytes_b;
    // Deterministically pick which region becomes visible first.
    const bool b_first = (hash_index(seed, reorder_counter_++) & 1) != 0;
    struct Shared {
      std::function<void()> done;
    };
    auto shared = std::make_shared<Shared>(Shared{std::move(on_done)});
    link(dir).transfer(
        static_cast<std::int64_t>(total),
        [=, this] {
          // Both regions land by completion; visibility order differed
          // mid-flight. Model the hazard: expose the "first" region at a
          // point strictly before the transaction completion.
          (void)this;
          if (dst_a && src_a) std::memcpy(dst_a, src_a, bytes_a);
          if (dst_b && src_b) std::memcpy(dst_b, src_b, bytes_b);
          shared->done();
        });
    // Mid-flight visibility: expose one region at half the wire time.
    const auto early = static_cast<sim::Duration>(
        link(dir).latency() +
        static_cast<sim::Duration>(1e12 * static_cast<double>(total) / 2.0 /
                                   link(dir).bandwidth()));
    sim_->after(early, [=] {
      if (b_first) {
        if (dst_b && src_b) std::memcpy(dst_b, src_b, bytes_b);
      } else {
        if (dst_a && src_a) std::memcpy(dst_a, src_a, bytes_a);
      }
    });
  }

 private:
  sim::Simulation* sim_;
  sim::Link h2d_;
  sim::Link d2h_;
  std::uint64_t reorder_counter_ = 0;
  TransferFaultFn fault_fn_;
  std::int64_t transfer_faults_ = 0;
};

}  // namespace pagoda::pcie
