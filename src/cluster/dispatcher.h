// The cluster dispatcher: one spawn-API front door over N per-device Pagoda
// runtimes.
//
// Request lifecycle (state machine; every admitted request walks it exactly
// once):
//
//   offer() ── queue bound exceeded ──> DROPPED  (counted as an SLO miss)
//      │
//      ▼ placement policy picks a node (at arrival, so load-aware policies
//      │ see queued work), node.outstanding++
//   QUEUED ── co_await node slot (backpressure: at most `capacity` requests
//      │      own TaskTable entries or copies per device)
//      ▼
//   COPYING ── H2D input copy on the node's data stream, skipped on a
//      │       data-affinity cache hit
//      ▼
//   EXECUTING ── runtime::task_spawn + GPU-side completion
//      ▼
//   DRAINING ── D2H output copy (if any)
//      ▼
//   DONE ── latency = now - arrival; SLO check; slot released exactly once;
//           node.outstanding--
//
// Admission control is two-layered: the per-node slot semaphore bounds
// in-flight work per device at its TaskTable size (backpressure), and the
// optional global queue bound converts overload into deterministic drops
// instead of an unbounded backlog — the open-loop analogue of a full accept
// queue.
//
// All accounting (latency percentiles, violation rate, per-device load
// imbalance) is virtual-time derived and exported into an
// obs::MetricsRegistry, so `--metrics` / `--profile` work unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/request.h"
#include "sim/sync.h"

namespace pagoda::obs {
class Collector;
class MetricsRegistry;
}  // namespace pagoda::obs

namespace pagoda::cluster {

struct DispatcherConfig {
  /// Admitted-but-unslotted requests allowed across the cluster before
  /// offers are dropped; 0 = unbounded (pure backpressure, no drops).
  int queue_limit = 0;
  /// Deadline applied to requests that don't carry their own; 0 = none.
  sim::Duration default_slo = 0;
  /// Host cost charged per input/output copy setup.
  host::HostCosts host{};
};

class Dispatcher {
 public:
  struct Stats {
    std::int64_t offered = 0;
    std::int64_t admitted = 0;
    std::int64_t dropped = 0;
    std::int64_t completed = 0;
    std::int64_t slo_violations = 0;  // late completions + drops
    std::int64_t affinity_hits = 0;   // H2D copies skipped
    std::int64_t h2d_bytes_copied = 0;
    std::int64_t slot_releases = 0;   // must equal admitted after drain()
  };

  Dispatcher(Cluster& cluster, std::unique_ptr<PlacementPolicy> policy,
             DispatcherConfig cfg = {});
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Offers a request at the current virtual time. Non-blocking: either
  /// admits (spawning the serving process) or drops under overload.
  void offer(Request r);

  /// Declares the arrival stream finished; drain() can then complete.
  void close();

  /// Waits until every admitted request reached DONE and close() was called.
  sim::Task<> drain();

  const Stats& stats() const { return stats_; }
  const PlacementPolicy& policy() const { return *policy_; }
  Cluster& cluster() { return *cluster_; }

  /// Node chosen for each admitted request, in admission order — the
  /// determinism tests compare this sequence across reruns.
  const std::vector<int>& placements() const { return placements_; }

  /// Attained latency (arrival -> output landed) per completed request, us,
  /// in completion order.
  std::span<const double> latencies_us() const { return latencies_us_; }

  /// Arrival/completion spans of completed requests (timeline export).
  struct Span {
    sim::Time arrival = 0;
    sim::Time done = 0;
  };
  std::span<const Span> spans() const { return spans_; }

  /// Requests admitted and not yet DONE, cluster-wide (sampler signal).
  int in_flight() const { return in_flight_; }

  /// Max-min spread of per-device completed counts over their mean
  /// (0 = perfectly balanced, 0 when nothing completed).
  double load_imbalance() const;

  /// Final counters + latency distribution into `m` under `cluster.*`.
  void export_metrics(obs::MetricsRegistry& m) const;

  /// Registers a passive per-tick sampler (queue depth, per-device
  /// outstanding) with the collector. Call before the run starts.
  void install_sampler(obs::Collector& collector);

 private:
  struct NodeState {
    std::unique_ptr<sim::Semaphore> slots;
    /// In-flight request records indexed by TaskTable entry (id-relative):
    /// entry reuse is safe because a record is erased at DONE, before the
    /// slot semaphore lets the next request claim the entry.
    struct Record {
      bool active = false;
      sim::Time arrival = 0;
      sim::Duration slo = 0;
      std::int64_t d2h_bytes = 0;
      double cost = 1.0;
    };
    std::vector<Record> records;
    /// Spawn activity signal for the node's flusher (see flush_timer()).
    std::uint64_t spawn_epoch = 0;
    std::unique_ptr<sim::Condition> activity;
  };

  sim::Simulation& sim() { return cluster_->sim(); }
  sim::Process serve(Request r, int node_index);
  /// Pagoda's release chain frees a TaskTable entry only when a successor
  /// spawns into the column or the CPU flushes. Under open-loop arrivals a
  /// lull would strand each node's most recent task forever, so this
  /// per-node process waits for spawn activity to go quiet and then plays
  /// the paper's CPU waiter (flush + lazy aggregate copy-backs) until the
  /// node drains.
  sim::Process flush_timer(int node_index);
  void on_task_complete(int node_index, runtime::TaskId id);
  void finalize(int node_index, NodeState::Record rec);

  Cluster* cluster_;
  std::unique_ptr<PlacementPolicy> policy_;
  DispatcherConfig cfg_;
  std::vector<NodeState> node_state_;
  Stats stats_;
  std::vector<int> placements_;
  std::vector<double> latencies_us_;
  std::vector<Span> spans_;
  int in_flight_ = 0;
  int backlog_ = 0;  // admitted, waiting for a node slot
  bool closed_ = false;
  sim::Condition drained_;
};

}  // namespace pagoda::cluster
