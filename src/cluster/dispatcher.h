// The cluster dispatcher: one spawn-API front door over N per-device Pagoda
// runtimes.
//
// Request lifecycle (state machine; every admitted request walks it to
// exactly one terminal state, DONE or SHED):
//
//   offer() ── queue bound exceeded / no healthy node ──> DROPPED
//      │
//      ▼ placement policy picks a healthy node (at arrival, so load-aware
//      │ policies see queued work), node.outstanding++
//   QUEUED ── co_await node slot (backpressure: at most `capacity` requests
//      │      own TaskTable entries or copies per device). A slot grant is
//      │      refused when the node died while queueing -> re-placed.
//      ▼
//   COPYING ── H2D input copy on the node's data stream, skipped on a
//      │       data-affinity cache hit. A corrupt transfer fails the attempt.
//      ▼
//   EXECUTING ── runtime::task_spawn + GPU-side completion, bounded by the
//      │         per-task deadline when one is configured. Injected task
//      │         faults, wedges, timeouts and node death fail the attempt.
//      ▼
//   DRAINING ── D2H output copy (if any)
//      ▼
//   DONE ── latency = now - arrival; SLO check; slot released exactly once;
//           node.outstanding--
//
//   failed attempt ── retry budget left, SLO not blown ──> deterministic
//      │              exponential backoff + jitter, then re-placed (QUEUED)
//      ▼ otherwise
//   SHED ── deliberate graceful degradation; counted, never silently lost.
//
// Fault plane (all off by default; a disabled plan leaves the event stream
// byte-identical to the pre-fault dispatcher):
//  * injection  — DispatcherConfig::faults (see fault/plan.h) arms task
//    faults, transfer corruption, slot wedges, bandwidth-degradation windows
//    and whole-node crashes, all decided by order-independent seeded hashes;
//  * detection  — per-attempt deadlines (task_timeout) plus a watchdog
//    process probing each node's MasterKernel heartbeat; a node whose
//    signature freezes while holding work is declared dead exactly once;
//  * recovery   — per-request retries with budget, re-dispatch of a dead
//    node's in-flight work to healthy peers (no budget charge), node
//    drain/reinstate lifecycle, and priority-aware shedding when capacity
//    shrinks. Recovery never throws: failures flow through
//    fault::FailureCause values (tools/check.sh greps for naked throws).
//
// Admission control is two-layered: the per-node slot queue bounds
// in-flight work per device at its TaskTable size (backpressure), and the
// optional global queue bound converts overload into deterministic drops
// instead of an unbounded backlog — the open-loop analogue of a full accept
// queue.
//
// QoS (see sched/policy.h): every ordering decision routes through one
// sched::Policy. The per-node slot queues are sched::ReadyQueues — under the
// default fifo policy they reproduce the legacy semaphore's event stream
// byte-for-byte; under priority/edf/wfq a released slot goes to the best
// parked request, and when the global queue bound is hit an urgent arrival
// may EVICT the policy-worst parked request (counted per class, resolved as
// a shed so the exactly-once ledger still balances). Admitted requests carry
// their class and absolute deadline on TaskParams, so the same policy also
// orders the MasterKernel's scheduler-warp claims GPU-side.
//
// All accounting (latency percentiles, violation rate, per-device load
// imbalance, fault.* counters) is virtual-time derived and exported into an
// obs::MetricsRegistry, so `--metrics` / `--profile` work unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "cluster/request.h"
#include "fault/fault.h"
#include "fault/plan.h"
#include "fault/retry.h"
#include "fault/watchdog.h"
#include "migrate/autoscaler.h"
#include "migrate/migrate.h"
#include "power/governor.h"
#include "sched/policy.h"
#include "sched/ready_queue.h"
#include "sim/sync.h"
#include "vres/resource_ledger.h"

namespace pagoda::obs {
class Collector;
class MetricsRegistry;
class RequestTracer;
}  // namespace pagoda::obs

namespace pagoda::cluster {

struct DispatcherConfig {
  /// Admitted-but-unslotted requests allowed across the cluster before
  /// offers are dropped; 0 = unbounded (pure backpressure, no drops).
  int queue_limit = 0;
  /// Deadline applied to requests that don't carry their own; 0 = none.
  sim::Duration default_slo = 0;
  /// Host cost charged per input/output copy setup.
  host::HostCosts host{};

  // --- fault plane (all disabled by default) ------------------------------
  /// What to inject; a default-constructed plan injects nothing.
  fault::FaultPlan faults{};
  /// Retry budget + backoff shape for failed attempts.
  fault::RetryConfig retry{};
  /// Per-attempt execution deadline measured from task spawn; 0 = none.
  /// Plans that can wedge or crash REQUIRE a deadline (checked at
  /// construction): a swallowed completion is otherwise unrecoverable.
  sim::Duration task_timeout = 0;
  /// Heartbeat probing cadence and death threshold.
  fault::WatchdogConfig watchdog{};

  // --- QoS scheduling (see sched/policy.h) --------------------------------
  /// Ordering policy for the per-node admission queues, shed/evict
  /// comparisons, and (via TaskParams tags) the GPU-side claim order.
  /// fifo reproduces the legacy semaphore byte-for-byte.
  sched::PolicyConfig sched{};
  /// Arms per-class sched.* metric/timeline export even under fifo (any
  /// non-fifo policy arms it implicitly). Off by default so default runs
  /// emit no new metric keys.
  bool qos = false;

  // --- power plane (off by default; see power/governor.h) -----------------
  /// With a spec set, the dispatcher attaches a power::NodePower to every
  /// node, runs the configured PowerGovernor, charges S-state wake-up
  /// latency to waiting requests, and exports power.* metrics. With the
  /// default (no spec) nothing is constructed and every existing output
  /// stays byte-identical.
  power::PlaneConfig power{};

  // --- migration plane (off by default; see migrate/migrate.h) -------------
  /// Enabled, drain_node() becomes migrate-not-shed: eligible in-flight
  /// attempts are checkpointed at their safe point, charged over the source
  /// node's link as the migrate_xfer trace phase, and re-placed as the SAME
  /// request (uid, arrival, attempt preserved — the exactly-once ledger and
  /// the per-class slices never notice the move).
  migrate::MigrationConfig migration{};
  /// Elastic fleet resizing (utilization-driven and/or an explicit resize
  /// plan). armed() requires BOTH the migration plane (shrink drains must
  /// not shed) and the power plane (parked nodes sleep in S-states), and is
  /// mutually exclusive with power.manage_sleep — one mover of S-states.
  migrate::AutoscaleConfig autoscale{};

  // --- virtual resource plane (off by default; see src/vres) ---------------
  /// TaskTable-slot oversubscription factor, mirrored from the nodes'
  /// PagodaConfig::oversub. > 1 arms virtual admission: each per-node slot
  /// queue is sized to floor(oversub x TaskTable entries), so admission
  /// backpressures on VIRTUAL capacity while the table itself stays
  /// physical (the extra admitted requests pipeline behind task_spawn).
  /// Exactly 1.0 (the default) leaves every event stream and metric dump
  /// byte-identical to the pre-vres dispatcher. < 1.0 is rejected.
  double oversub = 1.0;
};

class Dispatcher {
 public:
  struct Stats {
    std::int64_t offered = 0;
    std::int64_t admitted = 0;
    std::int64_t dropped = 0;     // refused at offer(); never admitted
    std::int64_t completed = 0;
    std::int64_t shed = 0;        // admitted, then deliberately failed
    std::int64_t slo_late = 0;    // completions past their deadline
    std::int64_t slo_violations = 0;  // slo_late + SLO-carrying drops/sheds
    std::int64_t affinity_hits = 0;   // H2D copies skipped
    std::int64_t h2d_bytes_copied = 0;
    /// Request-level exactly-once resolution count: == completed + shed,
    /// and == admitted after drain(), under every fault path.
    std::int64_t slot_releases = 0;
    /// Attempt-level semaphore grants (== slot_releases when faults are off;
    /// larger under retries — each extra attempt claims its own slot).
    std::int64_t slot_acquires = 0;
    // --- fault plane ------------------------------------------------------
    std::int64_t retries = 0;          // backoff retries (budget-charged)
    std::int64_t redispatched = 0;     // moved off a dead node (no charge)
    std::int64_t injected_task_faults = 0;
    std::int64_t injected_transfer_faults = 0;
    std::int64_t injected_wedges = 0;
    std::int64_t injected_crashes = 0;
    std::int64_t detected_timeouts = 0;
    std::int64_t detected_node_deaths = 0;
    std::int64_t nodes_recovered = 0;
    // --- QoS plane --------------------------------------------------------
    /// Parked requests displaced by a more urgent arrival (non-fifo only);
    /// every eviction also counts as a shed, so the ledger balances.
    std::int64_t evicted = 0;
    // --- power plane ------------------------------------------------------
    /// Requests that waited on an S-state -> active wake-up transition
    /// (their wait lands in the power.wakeup trace phase).
    std::int64_t power_wakeup_waits = 0;
    // --- migration plane --------------------------------------------------
    /// Attempts checkpointed off a draining node and restored into dispatch
    /// as the same request (no budget charge, no new uid).
    std::int64_t migrated = 0;
    /// Revoke raced a scheduler-warp claim and lost; the attempt ran to
    /// completion on the draining node instead.
    std::int64_t migrate_declined = 0;
    // --- virtual resource plane -------------------------------------------
    /// Slot grants issued beyond a node's physical TaskTable capacity
    /// (oversub > 1 only): admissions that rode purely virtual headroom.
    std::int64_t vres_over_admissions = 0;
  };

  /// Per-class slice of the ledger. The same exactly-once invariant holds
  /// classwise after drain(): slot_releases == completed + shed == admitted.
  struct ClassStats {
    std::int64_t offered = 0;
    std::int64_t admitted = 0;
    std::int64_t dropped = 0;
    std::int64_t completed = 0;
    std::int64_t shed = 0;
    std::int64_t evicted = 0;
    std::int64_t slo_late = 0;
    std::int64_t slot_releases = 0;
  };

  Dispatcher(Cluster& cluster, std::unique_ptr<PlacementPolicy> policy,
             DispatcherConfig cfg = {});
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Offers a request at the current virtual time. Non-blocking: either
  /// admits (spawning the serving process) or drops under overload.
  void offer(Request r);

  /// Declares the arrival stream finished; drain() can then complete.
  void close();

  /// Waits until every admitted request reached DONE or SHED and close()
  /// was called.
  sim::Task<> drain();

  // --- node lifecycle (administrative) ------------------------------------
  /// Stops placing new work on the node; in-flight work finishes normally.
  void drain_node(int node_index);
  /// Returns a drained (or recovered) node to service. No-op while the
  /// injection plane still has the node crashed.
  void reinstate_node(int node_index);

  const Stats& stats() const { return stats_; }
  const ClassStats& class_stats(sched::Class c) const {
    return cls_stats_[static_cast<std::size_t>(sched::index(c))];
  }
  /// Attained latency per completed request of one class, us.
  std::span<const double> class_latencies_us(sched::Class c) const {
    return cls_latencies_us_[static_cast<std::size_t>(sched::index(c))];
  }
  const sched::Policy& sched_policy() const { return sched_policy_; }
  const PlacementPolicy& policy() const { return *policy_; }
  Cluster& cluster() { return *cluster_; }

  /// Node chosen for each admitted request at ADMISSION, in admission order
  /// (retry re-placements are not recorded here) — the determinism tests
  /// compare this sequence across reruns.
  const std::vector<int>& placements() const { return placements_; }

  /// Attained latency (arrival -> output landed) per completed request, us,
  /// in completion order. Includes backoff + re-execution time of retries.
  std::span<const double> latencies_us() const { return latencies_us_; }

  /// Arrival/completion spans of completed requests (timeline export).
  struct Span {
    sim::Time arrival = 0;
    sim::Time done = 0;
  };
  std::span<const Span> spans() const { return spans_; }

  /// Requests admitted and not yet DONE/SHED, cluster-wide (sampler signal).
  int in_flight() const { return in_flight_; }

  /// Admitted requests still waiting for a node slot (governor signal).
  int queued_backlog() const { return backlog_; }

  /// Arrival stream closed and nothing in flight — the governor's periodic
  /// check stops rescheduling itself once this holds.
  bool idle() const { return closed_ && in_flight_ == 0; }

  /// The power governor, when the power plane is armed (nullptr otherwise).
  const power::PowerGovernor* governor() const { return governor_.get(); }
  bool power_armed() const { return power_armed_; }

  /// The migration plane, when armed (nullptr otherwise).
  const migrate::MigrationManager* migration() const {
    return migration_.get();
  }
  bool migrate_armed() const { return migrate_armed_; }
  /// Virtual slot admission active (cfg.oversub > 1).
  bool vres_armed() const { return vres_armed_; }
  /// The per-node virtual slot ledger (tests; valid for any node index).
  const vres::ResourceLedger& slot_ledger(int node_index) const {
    return node_state_[static_cast<std::size_t>(node_index)].slot_ledger;
  }
  /// The autoscaler, when armed (nullptr otherwise).
  const migrate::Autoscaler* autoscaler() const { return autoscaler_.get(); }

  /// Instantaneous fleet power draw (0 when the power plane is off).
  double fleet_watts() const;

  /// Free slot-semaphore capacity of a node; == node capacity after drain()
  /// once every grant has been returned (the chaos test pins this).
  std::int64_t free_slots(int node_index) const {
    return node_state_[static_cast<std::size_t>(node_index)]
        .slots->available();
  }

  /// The watchdog, when the fault plane is armed (nullptr otherwise).
  const fault::Watchdog* watchdog() const { return watchdog_.get(); }

  /// Max-min spread of per-device completed counts over their mean
  /// (0 = perfectly balanced, 0 when nothing completed).
  double load_imbalance() const;

  /// Final counters + latency distribution into `m` under `cluster.*`
  /// (plus `fault.*` when the fault plane is armed).
  void export_metrics(obs::MetricsRegistry& m) const;

  /// Registers a passive per-tick sampler (queue depth, per-device
  /// outstanding, heartbeats when faults are armed) with the collector.
  /// Call before the run starts.
  void install_sampler(obs::Collector& collector);

  /// Arms per-request causal tracing (--trace-spans). The tracer is owned
  /// by the caller and must outlive the run; nullptr disarms. Call before
  /// the run starts. Tracing is PASSIVE: every hook only records virtual
  /// timestamps, so an armed run's event stream is byte-identical to a
  /// disarmed one.
  void set_tracer(obs::RequestTracer* tracer);

 private:
  /// One placement of a request on one node. The request's identity (uid,
  /// arrival) is fixed at admission; `attempt` counts executions (1-based)
  /// and keys every fault/backoff decision.
  struct Attempt {
    Request r;
    sim::Time arrival = 0;
    int attempt = 1;
    std::uint64_t uid = 0;
  };

  struct NodeState {
    std::unique_ptr<sched::ReadyQueue> slots;
    /// In-flight request records indexed by TaskTable entry (id-relative):
    /// entry reuse is safe because a record is erased at resolution, before
    /// the slot semaphore lets the next request claim the entry.
    struct Record {
      bool active = false;
      std::uint64_t uid = 0;
      sim::EventId deadline = 0;  // 0 = none armed
      /// The spawned task's handle, kept so a migrate-not-shed drain can
      /// try_revoke the entry before a scheduler warp claims it.
      runtime::TaskHandle handle{};
      Attempt att;
    };
    std::vector<Record> records;
    /// Active records only — attempts spawned and still owed GPU progress.
    /// This is the watchdog's "holds work" signal, so wedged attempts are
    /// deliberately excluded: their GPU work already finished (the
    /// completion was swallowed), no further progress is expected, and
    /// counting them would turn every wedge on an idle node into a
    /// spurious node death before the task deadline could recover it.
    int tracked = 0;
    /// Spawn activity signal for the node's flusher (see flush_timer()).
    std::uint64_t spawn_epoch = 0;
    std::unique_ptr<sim::Condition> activity;
    /// Bumped by every migrate-not-shed drain of this node. serve()
    /// snapshots it at slot grant: a mismatch later means a drain began
    /// while the attempt was mid-flight (staging, spawning) and it must
    /// checkpoint itself — while an attempt RESTORED onto a still-draining
    /// node (the zero-loss fallback) sees equal epochs and runs in place.
    std::uint64_t drain_epoch = 0;
    /// Virtual slot accounting (oversub > 1 only; idle otherwise). A slot
    /// grant allocates SPILLED — admitted on virtual capacity, no physical
    /// entry yet; a landed task_spawn reclaims it to RESIDENT. The ledger's
    /// invariant (virtual == physical + spilled) holds at every transition,
    /// and peak_spilled() is the node's maximum over-admission depth. The
    /// physical cap is deliberately unbounded here: a slot stays RESIDENT
    /// through its output drain after the GPU already freed the entry, so
    /// the real physical bound is task_spawn backpressure, not the ledger.
    vres::ResourceLedger slot_ledger;
  };

  /// A wedged attempt: its TaskTable entry completed GPU-side but the
  /// completion was swallowed, so the entry may be reused while the attempt
  /// still awaits its deadline — it lives here, keyed by uid, not in
  /// records[]. (std::map: deterministic sweep order on node death.)
  struct Wedged {
    int node = -1;
    sim::EventId deadline = 0;
    Attempt att;
  };

  sim::Simulation& sim() { return cluster_->sim(); }
  bool fault_armed() const { return fault_armed_; }
  int healthy_nodes() const;

  sim::Process serve(Attempt a, int node_index);
  /// Pagoda's release chain frees a TaskTable entry only when a successor
  /// spawns into the column or the CPU flushes. Under open-loop arrivals a
  /// lull would strand each node's most recent task forever, so this
  /// per-node process waits for spawn activity to go quiet and then plays
  /// the paper's CPU waiter (flush + lazy aggregate copy-backs) until the
  /// node drains.
  sim::Process flush_timer(int node_index);
  /// Probes every non-dead node's liveness signature while work is in
  /// flight; parks when the cluster idles so it never keeps the event queue
  /// alive on its own.
  sim::Process watchdog_loop();
  sim::Process retry_later(Attempt a);

  /// The scheduling key for one placement attempt: class/deadline/cost from
  /// the request, seq freshly drawn so retries re-queue at the back.
  sched::SchedKey make_key(const Request& r, sim::Time arrival);
  /// Stamps the request's class/deadline onto its TaskParams so the GPU-side
  /// claim comparator sees them. Called once, at admission.
  void stamp_qos_tags(Request& r, sim::Time arrival) const;
  /// Non-fifo overload path: if the policy ranks the arrival ahead of the
  /// globally worst parked request, evict that request (it wakes and sheds)
  /// and return true so the arrival may be admitted in its place.
  bool try_evict_for(const Request& r);
  ClassStats& cstats(sched::Class c) {
    return cls_stats_[static_cast<std::size_t>(sched::index(c))];
  }

  void dispatch_attempt(Attempt a);
  void on_task_complete(int node_index, runtime::TaskId id);
  /// Claim-observer hook (tracing only): resolves the claimed TaskTable
  /// entry to its request uid and stamps the warp_wait -> exec boundary.
  void on_task_claimed(int node_index, runtime::TaskId id, sim::Time now);
  /// Vres-observer hook (tracing only): resolves the spilling/reclaiming
  /// task to its request uid and carves the transfer window out of the
  /// request's open phase interval.
  void on_task_vres(int node_index, runtime::TaskId id, sim::Time start,
                    sim::Time end, bool spill);
  // --- virtual slot ledger (no-ops unless vres_armed_) ---------------------
  void vres_slot_granted(NodeState& ns);
  void vres_slot_spawned(NodeState& ns);
  /// `spawned` selects which ledger state the released slot occupied.
  void vres_slot_freed(NodeState& ns, bool spawned);
  void on_deadline(int node_index, std::size_t idx, std::uint64_t uid);
  /// Attempt bookkeeping is already unwound (slot released, record erased)
  /// when this runs; it only un-counts node load and routes retry-vs-shed.
  void attempt_failed(int node_index, Attempt a, fault::FailureCause cause);
  void shed_request(Attempt a, fault::FailureCause cause);
  void finalize(int node_index, Attempt att);

  // --- migration plane ----------------------------------------------------
  /// Revokes one tracked record off a draining node: awaits the runtime's
  /// try_revoke race and, on a win, unwinds the record and checkpoints the
  /// attempt at the table-parked safe point. Re-validates the record around
  /// the await — completion, death sweep or timeout may resolve it first.
  sim::Process migrate_revoke(int node_index, std::size_t idx,
                              std::uint64_t uid);
  /// Checkpoints one captured attempt, charges its node-resident state over
  /// the source's D2H link (the migrate_xfer trace phase), round-trips the
  /// byte image (the image is load-bearing: restore reads IT, not the live
  /// attempt), and re-enters dispatch.
  sim::Process migrate_out(int source_node, Attempt a, migrate::SafePoint p);
  /// Re-places a restored attempt. Falls back to the still-serving source
  /// node when no peer is eligible (zero-loss: a drain must not shed), and
  /// sheds only when the source itself is gone (true capacity loss).
  void restore_attempt(Attempt a, int source_node);

  void inject_crash(const fault::CrashEvent& ev);
  void node_failed(int node_index);
  void recover_node(int node_index);
  void set_bandwidth_scale(int node_index, double scale);
  void fault_event(std::string_view name);
  /// State-transition edge hook (wired into every NodePower): cuts a
  /// collector sample exactly at the edge so idle-power residency windows
  /// are attributed precisely, and drops a timeline instant.
  void power_edge(sim::Time now);
  void maybe_drained();

  Cluster* cluster_;
  std::unique_ptr<PlacementPolicy> policy_;
  DispatcherConfig cfg_;
  bool fault_armed_ = false;
  bool qos_ = false;  // sched.* export + per-class timeline armed
  bool power_armed_ = false;  // power.* export + governor running
  bool migrate_armed_ = false;  // migrate-not-shed drains + migrate.* export
  bool vres_armed_ = false;  // virtual slot admission + vres.* export
  sched::Policy sched_policy_;
  std::uint64_t sched_seq_ = 0;  // global admission sequence (ties)
  std::vector<NodeState> node_state_;
  std::map<std::uint64_t, Wedged> wedged_;
  std::unique_ptr<fault::Watchdog> watchdog_;
  Stats stats_;
  std::array<ClassStats, sched::kNumClasses> cls_stats_{};
  std::array<std::vector<double>, sched::kNumClasses> cls_latencies_us_;
  std::array<int, sched::kNumClasses> cls_in_flight_{};
  std::vector<int> placements_;
  std::vector<double> latencies_us_;
  std::vector<Span> spans_;
  std::uint64_t next_uid_ = 0;
  int in_flight_ = 0;
  int backlog_ = 0;  // admitted, waiting for a node slot
  bool closed_ = false;
  /// First instant the run drained (close()d, nothing in flight); -1 while
  /// running. Power export extrapolates to THIS time, not sim().now():
  /// run_until() parks the clock at the time cap after the last event, and
  /// charging idle watts across that dead tail would corrupt every
  /// energy-per-request figure.
  sim::Time drained_at_ = -1;
  sim::Condition drained_;
  sim::Condition work_cv_;  // wakes the parked watchdog on new work
  obs::Collector* collector_ = nullptr;
  obs::RequestTracer* tracer_ = nullptr;  // nullptr = tracing disarmed
  int fault_track_ = -1;  // lazily interned timeline track
  int power_track_ = -1;  // lazily interned timeline track
  /// The governor's window onto this dispatcher (power plane only).
  std::unique_ptr<power::FleetControl> fleet_adapter_;
  std::unique_ptr<power::PowerGovernor> governor_;
  std::unique_ptr<migrate::MigrationManager> migration_;
  std::unique_ptr<migrate::Autoscaler> autoscaler_;
};

}  // namespace pagoda::cluster
