#include "cluster/dispatcher.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/check.h"
#include "common/stats.h"
#include "obs/collector.h"
#include "obs/metrics.h"
#include "obs/qos.h"
#include "obs/trace_span.h"
#include "sim/process.h"

namespace pagoda::cluster {

namespace {

std::string dev_key(int index, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "cluster.dev%02d.%s", index, suffix);
  return buf;
}

/// The governor's window onto the dispatcher: pure forwarding over the
/// public Dispatcher/Cluster/GpuNode surface, so src/power never depends on
/// src/cluster and the layering gate stays greppable.
class FleetAdapter final : public power::FleetControl {
 public:
  explicit FleetAdapter(Dispatcher& d) : d_(&d) {}
  int num_nodes() const override { return d_->cluster().size(); }
  power::NodePower* node_power(int node) override {
    return d_->cluster().node(node).power();
  }
  int node_outstanding(int node) const override {
    return d_->cluster().node(node).outstanding();
  }
  std::int64_t node_free_slots(int node) const override {
    return d_->free_slots(node);
  }
  std::int64_t node_capacity(int node) const override {
    return d_->cluster().node(node).capacity();
  }
  int queued_backlog() const override { return d_->queued_backlog(); }
  bool node_eligible(int node) const override {
    return d_->cluster().node(node).eligible();
  }
  bool idle() const override { return d_->idle(); }
  void quiesce_node(int node) override { d_->drain_node(node); }
  void restore_node(int node) override { d_->reinstate_node(node); }

 private:
  Dispatcher* d_;
};

}  // namespace

Dispatcher::Dispatcher(Cluster& cluster,
                       std::unique_ptr<PlacementPolicy> policy,
                       DispatcherConfig cfg)
    : cluster_(&cluster),
      policy_(std::move(policy)),
      cfg_(std::move(cfg)),
      sched_policy_(cfg_.sched),
      drained_(cluster.sim()),
      work_cv_(cluster.sim()) {
  PAGODA_CHECK_MSG(policy_ != nullptr, "Dispatcher needs a placement policy");
  fault_armed_ = cfg_.faults.enabled() || cfg_.task_timeout > 0;
  qos_ = cfg_.qos || cfg_.sched.kind != sched::PolicyKind::kFifo;
  PAGODA_CHECK_MSG(cfg_.oversub >= 1.0,
                   "oversub < 1 would silently strand physical capacity; "
                   "use a smaller TaskTable instead");
  vres_armed_ = cfg_.oversub > 1.0;
  node_state_.resize(static_cast<std::size_t>(cluster.size()));
  for (int i = 0; i < cluster.size(); ++i) {
    GpuNode& node = cluster.node(i);
    NodeState& ns = node_state_[static_cast<std::size_t>(i)];
    // Virtual admission: the slot queue backpressures on floor(oversub x
    // TaskTable entries), so up to (virtual - physical) extra requests per
    // node stage inputs and pipeline behind task_spawn instead of queueing
    // host-side. records[] stays PHYSICAL — only tasks that actually own a
    // table entry are tracked, so entry-indexed bookkeeping is unaffected
    // by over-admission.
    const int slot_capacity =
        vres_armed_ ? static_cast<int>(static_cast<double>(node.capacity()) *
                                       cfg_.oversub)
                    : node.capacity();
    ns.slots = std::make_unique<sched::ReadyQueue>(cluster.sim(),
                                                   slot_capacity,
                                                   sched_policy_);
    ns.records.resize(static_cast<std::size_t>(node.capacity()));
    if (vres_armed_) {
      ns.slot_ledger = vres::ResourceLedger(slot_capacity, /*physical=*/0);
    }
    ns.activity = std::make_unique<sim::Condition>(cluster.sim());
    node.rt().set_completion_observer(
        [this, i](runtime::TaskId id, sim::Time) { on_task_complete(i, id); });
    cluster.sim().spawn(flush_timer(i));
  }
  if (fault_armed_) {
    // Crash/wedge injection and the watchdog couple host and node state at
    // zero lookahead (a crash freezes node counters the instant it fires);
    // run those plans on the exact sequential driver.
    sim().require_serial("fault plan armed");
    PAGODA_CHECK_MSG(!cfg_.faults.needs_deadline() || cfg_.task_timeout > 0,
                     "fault plans with wedge/crash faults need a per-task "
                     "deadline (task_timeout / --task-timeout-us > 0): a "
                     "swallowed completion is otherwise unrecoverable");
    for (const fault::CrashEvent& ev : cfg_.faults.crashes) {
      PAGODA_CHECK_MSG(ev.node >= 0 && ev.node < cluster.size(),
                       "crash fault names a node outside the cluster");
      sim().at(ev.at, [this, ev] { inject_crash(ev); });
    }
    for (const fault::DegradeWindow& w : cfg_.faults.degrades) {
      PAGODA_CHECK_MSG(w.node < cluster.size(),
                       "degrade fault names a node outside the cluster");
      sim().at(w.at, [this, w] {
        fault_event("degrade");
        set_bandwidth_scale(w.node, w.factor);
      });
      sim().at(w.at + w.duration,
               [this, w] { set_bandwidth_scale(w.node, 1.0); });
    }
    if (cfg_.faults.transfer_fault_rate > 0.0) {
      for (int i = 0; i < cluster.size(); ++i) {
        // Per-node issue counter: the n-th payload transfer on node i
        // corrupts (or not) regardless of cross-node interleaving.
        cluster.node(i).session().pcie().set_transfer_fault_fn(
            [this, i, seq = std::uint64_t{0}](pcie::Direction,
                                              std::int64_t) mutable {
              return cfg_.faults.transfer_corrupts(i, seq++);
            });
      }
    }
    watchdog_ = std::make_unique<fault::Watchdog>(cfg_.watchdog,
                                                  cluster.size());
    sim().spawn(watchdog_loop());
  }
  power_armed_ = cfg_.power.enabled();
  if (power_armed_) {
    // P/C-state edges fire from node-side SMM transitions straight into the
    // governor's fleet view — another zero-lookahead coupling.
    sim().require_serial("power plane attached");
    const power::PowerSpec& spec = *cfg_.power.spec;
    for (int i = 0; i < cluster.size(); ++i) {
      GpuNode& node = cluster.node(i);
      std::vector<gpu::Smm*> smms;
      smms.reserve(static_cast<std::size_t>(node.device().num_smms()));
      for (int s = 0; s < node.device().num_smms(); ++s) {
        smms.push_back(&node.device().smm(s));
      }
      auto np =
          std::make_unique<power::NodePower>(sim(), spec, std::move(smms));
      np->set_on_transition([this](sim::Time now) { power_edge(now); });
      node.attach_power(std::move(np));
    }
    // Power-aware placement reads the same budget the powercap governor
    // enforces; a no-op for every other policy.
    policy_->set_power_cap(cfg_.power.cap_watts);
    fleet_adapter_ = std::make_unique<FleetAdapter>(*this);
    governor_ = std::make_unique<power::PowerGovernor>(sim(), cfg_.power,
                                                       *fleet_adapter_);
    governor_->start();
  }
  migrate_armed_ = cfg_.migration.enabled;
  if (migrate_armed_) {
    // A drain sweep revokes TaskTable entries and recalls queued waiters the
    // instant it fires — zero lookahead against the node's own events.
    sim().require_serial("migration plane armed");
    migration_ = std::make_unique<migrate::MigrationManager>(cfg_.migration);
  }
  if (cfg_.autoscale.armed()) {
    PAGODA_CHECK_MSG(migrate_armed_,
                     "autoscale/resize requires the migration plane "
                     "(--migrate): a shrink drain must migrate, not shed");
    PAGODA_CHECK_MSG(power_armed_,
                     "autoscale/resize requires the power plane (--power): "
                     "parked nodes sleep in S-states");
    PAGODA_CHECK_MSG(!cfg_.power.manage_sleep,
                     "autoscale and energy-min sleep management are mutually "
                     "exclusive movers of S-states: pick one");
    autoscaler_ = std::make_unique<migrate::Autoscaler>(sim(), cfg_.autoscale,
                                                        *fleet_adapter_);
    autoscaler_->start();
  }
}

sim::Process Dispatcher::flush_timer(int node_index) {
  GpuNode& node = cluster_->node(node_index);
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  const sim::Duration quiet = node.rt().config().wait_poll;
  while (true) {
    while (ns.spawn_epoch == 0) co_await ns.activity->wait();
    while (node.outstanding() > 0) {
      const std::uint64_t seen = ns.spawn_epoch;
      co_await sim().delay(quiet);
      if (ns.spawn_epoch == seen && node.outstanding() > 0) {
        // No spawn for a whole quiet period: the release chain has stalled.
        // wait_all flushes the stranded task and keeps playing lazy
        // aggregate copy-backs until this node's table drains.
        co_await node.rt().wait_all();
      }
    }
    if (closed_ && in_flight_ == 0) co_return;
    ns.spawn_epoch = 0;  // re-arm: sleep until the next spawn
  }
}

sim::Process Dispatcher::watchdog_loop() {
  while (true) {
    if (closed_ && in_flight_ == 0) co_return;
    if (in_flight_ == 0) {
      // Park: probing an idle cluster would keep the event queue alive
      // forever. offer() and the last resolution wake us.
      co_await work_cv_.wait();
      continue;
    }
    co_await sim().delay(cfg_.watchdog.probe_period);
    for (int i = 0; i < cluster_->size(); ++i) {
      GpuNode& node = cluster_->node(i);
      if (node.health() == fault::NodeHealth::kDead) continue;
      const fault::NodeSig sig{node.heartbeat(), node.visible_completed()};
      const bool has_work =
          node_state_[static_cast<std::size_t>(i)].tracked > 0;
      if (watchdog_->observe(i, sig, has_work)) node_failed(i);
    }
  }
}

sched::SchedKey Dispatcher::make_key(const Request& r, sim::Time arrival) {
  sched::SchedKey key;
  key.cls = r.cls;
  key.deadline = r.slo > 0 ? arrival + r.slo : 0;
  key.cost = r.cost;
  key.seq = sched_seq_++;
  return key;
}

void Dispatcher::stamp_qos_tags(Request& r, sim::Time arrival) const {
  r.params.sched_class = static_cast<std::uint8_t>(r.cls);
  r.params.deadline_us =
      r.slo > 0 ? sched::deadline_to_us(arrival + r.slo) : 0;
}

bool Dispatcher::try_evict_for(const Request& r) {
  // Prospective key for the arrival (seq after every parked waiter; WFQ tag
  // peeked without mutating, so a refused eviction leaves no trace).
  sched::SchedKey arrival;
  arrival.cls = r.cls;
  arrival.deadline = r.slo > 0 ? sim().now() + r.slo : 0;
  arrival.cost = r.cost;
  arrival.seq = sched_seq_;
  arrival.vtag = sched_policy_.peek_tag(r.cls);
  int victim_node = -1;
  const sched::SchedKey* victim = nullptr;
  for (int i = 0; i < cluster_->size(); ++i) {
    const sched::SchedKey* w =
        node_state_[static_cast<std::size_t>(i)].slots->worst();
    if (w == nullptr) continue;
    if (victim == nullptr || sched_policy_.before(*victim, *w)) {
      victim = w;
      victim_node = i;
    }
  }
  if (victim == nullptr || !sched_policy_.before(arrival, *victim)) {
    return false;
  }
  stats_.evicted += 1;
  cstats(victim->cls).evicted += 1;
  fault_event("evict");
  // The victim wakes with Grant::evicted, un-counts itself and sheds.
  node_state_[static_cast<std::size_t>(victim_node)].slots->evict_worst();
  return true;
}

void Dispatcher::offer(Request r) {
  PAGODA_CHECK_MSG(!closed_, "offer() after close()");
  stats_.offered += 1;
  cstats(r.cls).offered += 1;
  if (r.slo == 0) r.slo = cfg_.default_slo;
  if (cfg_.queue_limit > 0 && backlog_ >= cfg_.queue_limit) {
    // Admission control: a bounded backlog turns overload into determinate
    // outcomes. Under fifo the arrival is dropped; under a real policy the
    // arrival may instead displace the policy-worst parked request
    // (class-aware shedding — the backlog slot goes to the urgent class).
    if (sched_policy_.fifo() || !try_evict_for(r)) {
      stats_.dropped += 1;
      cstats(r.cls).dropped += 1;
      if (r.slo > 0) stats_.slo_violations += 1;
      // Dropped requests never consume a uid (that would shift the uid
      // stream of admitted requests and change seeded fault decisions);
      // the tracer keys them by offer ordinal instead.
      if (tracer_ != nullptr) tracer_->on_dropped(r.cls, r.slo, sim().now());
      return;
    }
  }
  const int node_index = policy_->pick(*cluster_, r);
  if (node_index < 0) {
    // Whole fleet dead or draining: refuse at the door rather than queue
    // onto capacity that may never come back.
    stats_.dropped += 1;
    cstats(r.cls).dropped += 1;
    if (r.slo > 0) stats_.slo_violations += 1;
    if (tracer_ != nullptr) tracer_->on_dropped(r.cls, r.slo, sim().now());
    return;
  }
  PAGODA_CHECK_MSG(node_index < cluster_->size(),
                   "placement policy returned a bad node index");
  stats_.admitted += 1;
  cstats(r.cls).admitted += 1;
  cls_in_flight_[static_cast<std::size_t>(sched::index(r.cls))] += 1;
  stamp_qos_tags(r, sim().now());
  Attempt a{std::move(r), sim().now(), 1, next_uid_++};
  if (tracer_ != nullptr) {
    tracer_->on_offered(a.uid, a.r.cls, a.r.slo, a.arrival);
  }
  placements_.push_back(node_index);
  cluster_->node(node_index).add_outstanding(a.r.cost);
  in_flight_ += 1;
  backlog_ += 1;
  work_cv_.notify_all();  // new work: un-park the watchdog
  sim().spawn(serve(std::move(a), node_index));
}

void Dispatcher::dispatch_attempt(Attempt a) {
  const int node_index = policy_->pick(*cluster_, a.r);
  if (node_index < 0) {
    // Capacity vanished between failure and re-placement.
    shed_request(std::move(a), fault::FailureCause::kNodeCrash);
    return;
  }
  PAGODA_CHECK_MSG(node_index < cluster_->size(),
                   "placement policy returned a bad node index");
  cluster_->node(node_index).add_outstanding(a.r.cost);
  backlog_ += 1;
  sim().spawn(serve(std::move(a), node_index));
}

sim::Process Dispatcher::serve(Attempt a, int node_index) {
  GpuNode& node = cluster_->node(node_index);
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  if (tracer_ != nullptr) tracer_->on_serve(a.uid, node_index, sim().now());

  // Backpressure: at most `capacity` requests per device own a TaskTable
  // entry or an input copy at once; the rest queue here, in policy order
  // (arrival order under fifo). The key draws a fresh seq per attempt so a
  // retry re-queues at the back exactly as the legacy semaphore did.
  const sched::ReadyQueue::Grant grant =
      co_await ns.slots->acquire(make_key(a.r, a.arrival));
  backlog_ -= 1;
  if (grant.evicted) {
    // Displaced by a more urgent arrival (try_evict_for): resolve as a shed
    // so the exactly-once ledger balances.
    if (tracer_ != nullptr) tracer_->on_admission_block(a.uid, sim().now());
    node.abandon_outstanding(a.r.cost);
    shed_request(std::move(a), fault::FailureCause::kEvicted);
    co_return;
  }
  if (!grant.granted) {
    if (migrate_armed_ && node.alive() &&
        node.health() == fault::NodeHealth::kDraining) {
      // Recalled ungranted by a migrate-not-shed drain's kick_waiters():
      // nothing of this attempt ever reached the node — checkpoint at the
      // queued safe point and re-place.
      node.abandon_outstanding(a.r.cost);
      sim().spawn(
          migrate_out(node_index, std::move(a), migrate::SafePoint::kQueued));
      co_return;
    }
    // The node died while this attempt queued: no slot was held. Re-place
    // on a healthy peer without charging the retry budget.
    if (tracer_ != nullptr) {
      tracer_->on_admission_block(a.uid, sim().now());
      tracer_->on_redispatch(a.uid);
    }
    node.abandon_outstanding(a.r.cost);
    stats_.redispatched += 1;
    fault_event("redispatch");
    dispatch_attempt(std::move(a));
    co_return;
  }
  stats_.slot_acquires += 1;
  vres_slot_granted(ns);
  const std::uint64_t drain_epoch0 = ns.drain_epoch;
  if (tracer_ != nullptr) tracer_->on_granted(a.uid, sim().now());

  if (power_armed_) {
    // The grant may have landed on a node still finishing its S-state
    // wake-up (the governor reinstates a waking sleeper immediately so
    // backlog can target it). The residual latency is real wait the
    // request experiences; it gets its own trace phase so --explain-slo can
    // attribute deadline misses to power management.
    const sim::Duration wake = node.power()->wake_remaining(sim().now());
    if (wake > 0) {
      stats_.power_wakeup_waits += 1;
      co_await sim().delay(wake);
      if (tracer_ != nullptr) tracer_->on_power_wake(a.uid, sim().now());
    }
  }

  if (a.r.h2d_bytes > 0) {
    const bool hit = a.r.data_key != 0 && node.cache_contains(a.r.data_key);
    if (hit) {
      stats_.affinity_hits += 1;
      node.cache_touch(a.r.data_key);  // a hit is a use: promote to MRU
    } else {
      co_await sim().delay(cfg_.host.memcpy_setup);
      auto trig = std::make_shared<sim::Trigger>(sim());
      bool copy_ok = true;  // lives on this frame, set before trig fires
      node.h2d_stream().memcpy_async_checked(
          pcie::Direction::HostToDevice, nullptr, nullptr,
          static_cast<std::size_t>(a.r.h2d_bytes), [trig, &copy_ok](bool ok) {
            copy_ok = ok;
            trig->fire();
          });
      co_await trig->wait();
      stats_.h2d_bytes_copied += a.r.h2d_bytes;  // wire was occupied either way
      if (tracer_ != nullptr) tracer_->on_h2d_done(a.uid, sim().now());
      if (node.health() == fault::NodeHealth::kDead) {
        // The node was declared dead while this copy was on the wire, after
        // the death sweep ran — this attempt is invisible to the sweep, so
        // it must re-place itself (again without charging the budget).
        if (tracer_ != nullptr) tracer_->on_redispatch(a.uid);
        ns.slots->release();
        vres_slot_freed(ns, /*spawned=*/false);
        node.abandon_outstanding(a.r.cost);
        stats_.redispatched += 1;
        fault_event("redispatch");
        dispatch_attempt(std::move(a));
        co_return;
      }
      if (!copy_ok) {
        stats_.injected_transfer_faults += 1;
        fault_event("transfer_fault");
        ns.slots->release();
        vres_slot_freed(ns, /*spawned=*/false);
        attempt_failed(node_index, std::move(a),
                       fault::FailureCause::kTransferFault);
        co_return;
      }
      if (a.r.data_key != 0) node.cache_insert(a.r.data_key);
    }
  }

  if (migrate_armed_ && node.alive() &&
      node.health() == fault::NodeHealth::kDraining &&
      ns.drain_epoch != drain_epoch0) {
    // A drain began while this attempt staged its input (wake-wait or H2D
    // window): the payload is node-resident but no TaskTable entry exists
    // yet. Checkpoint at the staged safe point instead of spawning into a
    // draining table. The epoch guard keeps an attempt RESTORED onto a
    // still-draining node (zero-loss fallback) from migrating forever.
    ns.slots->release();
    vres_slot_freed(ns, /*spawned=*/false);
    node.abandon_outstanding(a.r.cost);
    sim().spawn(
        migrate_out(node_index, std::move(a), migrate::SafePoint::kStaged));
    co_return;
  }

  const runtime::TaskHandle h = co_await node.rt().task_spawn(a.r.params);
  ns.spawn_epoch += 1;
  vres_slot_spawned(ns);
  ns.activity->notify_all();
  if (tracer_ != nullptr) tracer_->on_spawned(a.uid, sim().now());
  if (node.health() == fault::NodeHealth::kDead) {
    // Death was detected mid-spawn: the sweep never saw this attempt and
    // any completion of the spawned task will be swallowed. Re-place it;
    // the orphaned TaskTable entry resolves GPU-side on its own.
    if (tracer_ != nullptr) tracer_->on_redispatch(a.uid);
    ns.slots->release();
    vres_slot_freed(ns, /*spawned=*/true);
    node.abandon_outstanding(a.r.cost);
    stats_.redispatched += 1;
    fault_event("redispatch");
    dispatch_attempt(std::move(a));
    co_return;
  }
  const std::size_t idx =
      static_cast<std::size_t>(h.id - runtime::kFirstTaskId);
  NodeState::Record& rec = ns.records[idx];
  PAGODA_CHECK_MSG(!rec.active, "TaskTable entry reused while tracked");
  rec.active = true;
  rec.uid = a.uid;
  rec.handle = h;
  if (cfg_.task_timeout > 0) {
    rec.deadline =
        sim().after(cfg_.task_timeout, [this, node_index, idx, uid = a.uid] {
          on_deadline(node_index, idx, uid);
        });
  }
  rec.att = std::move(a);
  ns.tracked += 1;
  if (migrate_armed_ && node.alive() &&
      node.health() == fault::NodeHealth::kDraining &&
      ns.drain_epoch != drain_epoch0) {
    // The drain sweep ran while task_spawn was in flight and never saw this
    // record; revoke it the same way the sweep would have.
    sim().spawn(migrate_revoke(node_index, idx, rec.uid));
  }
}

void Dispatcher::on_task_complete(int node_index, runtime::TaskId id) {
  GpuNode& node = cluster_->node(node_index);
  // A crashed device keeps running internally but nothing it produces
  // reaches the host; the attempt is recovered by its deadline or by the
  // watchdog's node-death sweep.
  if (!node.alive()) return;
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  const std::size_t idx = static_cast<std::size_t>(id - runtime::kFirstTaskId);
  PAGODA_CHECK(idx < ns.records.size());
  if (!ns.records[idx].active) return;  // not a dispatcher task
  if (fault_armed_) {
    NodeState::Record& r = ns.records[idx];
    if (cfg_.faults.wedges(r.uid, r.att.attempt)) {
      // Slot wedge: the completion is swallowed. The TaskTable entry is
      // already free GPU-side and may be reused, so the attempt moves out
      // of records[] and waits for its deadline under its uid.
      Wedged w{node_index, r.deadline, std::move(r.att)};
      const std::uint64_t uid = r.uid;
      ns.records[idx] = NodeState::Record{};
      ns.tracked -= 1;  // GPU-side the work IS done; only the deadline is owed
      wedged_.emplace(uid, std::move(w));
      stats_.injected_wedges += 1;
      fault_event("wedge");
      return;
    }
    if (cfg_.faults.task_fails(r.uid, r.att.attempt)) {
      Attempt a = std::move(r.att);
      if (r.deadline != 0) sim().cancel(r.deadline);
      ns.records[idx] = NodeState::Record{};
      ns.tracked -= 1;
      stats_.injected_task_faults += 1;
      fault_event("task_fault");
      ns.slots->release();
      vres_slot_freed(ns, /*spawned=*/true);
      attempt_failed(node_index, std::move(a), fault::FailureCause::kTaskFault);
      return;
    }
  }
  NodeState::Record rec = std::move(ns.records[idx]);
  // Erase NOW: the GPU just freed the entry, so a successor may spawn into
  // it before this request's output copy drains.
  ns.records[idx] = NodeState::Record{};
  ns.tracked -= 1;
  if (rec.deadline != 0) sim().cancel(rec.deadline);
  if (tracer_ != nullptr) tracer_->on_exec_done(rec.uid, sim().now());

  if (rec.att.r.d2h_bytes > 0) {
    cluster_->node(node_index).d2h_stream().memcpy_async(
        pcie::Direction::DeviceToHost, nullptr, nullptr,
        static_cast<std::size_t>(rec.att.r.d2h_bytes),
        [this, node_index, att = std::move(rec.att)] {
          finalize(node_index, att);
        });
  } else {
    finalize(node_index, rec.att);
  }
}

void Dispatcher::on_task_claimed(int node_index, runtime::TaskId id,
                                 sim::Time now) {
  if (tracer_ == nullptr) return;
  // Claims on a crashed node are invisible to the host, exactly like its
  // completions; the attempt's time keeps accruing to its current phase
  // until a deadline or the death sweep resolves it.
  if (!cluster_->node(node_index).alive()) return;
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  const std::size_t idx = static_cast<std::size_t>(id - runtime::kFirstTaskId);
  if (idx >= ns.records.size() || !ns.records[idx].active) return;
  tracer_->on_claimed(ns.records[idx].uid, now);
}

void Dispatcher::on_task_vres(int node_index, runtime::TaskId id,
                              sim::Time start, sim::Time end, bool spill) {
  if (tracer_ == nullptr) return;
  if (!cluster_->node(node_index).alive()) return;
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  const std::size_t idx = static_cast<std::size_t>(id - runtime::kFirstTaskId);
  if (idx >= ns.records.size() || !ns.records[idx].active) return;
  if (spill) {
    tracer_->on_vres_spill(ns.records[idx].uid, start, end);
  } else {
    tracer_->on_vres_reclaim(ns.records[idx].uid, start, end);
  }
}

// --- virtual slot ledger ----------------------------------------------------

void Dispatcher::vres_slot_granted(NodeState& ns) {
  if (!vres_armed_) return;
  ns.slot_ledger.allocate_spilled(1);
  // The grant rode purely virtual headroom when more slots are out than the
  // table physically holds (the spilled depth is exactly that excess, since
  // resident slots never exceed spawned-and-undrained tasks).
  if (ns.slot_ledger.virtual_allocated() >
      static_cast<std::int64_t>(ns.records.size())) {
    stats_.vres_over_admissions += 1;
  }
}

void Dispatcher::vres_slot_spawned(NodeState& ns) {
  if (vres_armed_) ns.slot_ledger.reclaim(1);
}

void Dispatcher::vres_slot_freed(NodeState& ns, bool spawned) {
  if (!vres_armed_) return;
  if (spawned) {
    ns.slot_ledger.free_resident(1);
  } else {
    ns.slot_ledger.free_spilled(1);
  }
}

void Dispatcher::on_deadline(int node_index, std::size_t idx,
                             std::uint64_t uid) {
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  if (const auto it = wedged_.find(uid); it != wedged_.end()) {
    Attempt a = std::move(it->second.att);
    wedged_.erase(it);
    stats_.detected_timeouts += 1;
    fault_event("timeout");
    ns.slots->release();
    vres_slot_freed(ns, /*spawned=*/true);
    attempt_failed(node_index, std::move(a), fault::FailureCause::kTimeout);
    return;
  }
  NodeState::Record& rec = ns.records[idx];
  if (!rec.active || rec.uid != uid) return;  // already resolved; stale timer
  Attempt a = std::move(rec.att);
  ns.records[idx] = NodeState::Record{};
  ns.tracked -= 1;
  stats_.detected_timeouts += 1;
  fault_event("timeout");
  ns.slots->release();
  vres_slot_freed(ns, /*spawned=*/true);
  attempt_failed(node_index, std::move(a), fault::FailureCause::kTimeout);
}

void Dispatcher::attempt_failed(int node_index, Attempt a,
                                fault::FailureCause cause) {
  cluster_->node(node_index).abandon_outstanding(a.r.cost);
  const sim::Time now = sim().now();
  // Charge the in-progress phase up to the detection instant, so e.g. a
  // timeout's wait is attributed to the phase the attempt was stuck in.
  if (tracer_ != nullptr) tracer_->mark_progress(a.uid, now);
  const int healthy = healthy_nodes();
  const bool budget_left = a.attempt <= cfg_.retry.budget;
  const bool slo_blown = a.r.slo > 0 && now - a.arrival > a.r.slo;
  const bool degraded = healthy < cluster_->size();
  // Graceful degradation: give up on requests whose deadline is already
  // blown, and — while capacity is reduced — on the batch class, so the
  // surviving nodes' slots go to work that can still meet its SLO.
  if (!budget_left || slo_blown || healthy == 0 ||
      (degraded && a.r.cls == sched::Class::kBatch)) {
    shed_request(std::move(a), cause);
    return;
  }
  stats_.retries += 1;
  fault_event("retry");
  if (tracer_ != nullptr) tracer_->on_retry(a.uid);
  sim().spawn(retry_later(std::move(a)));
}

sim::Process Dispatcher::retry_later(Attempt a) {
  co_await sim().delay(fault::backoff(cfg_.retry, a.uid, a.attempt));
  a.attempt += 1;
  dispatch_attempt(std::move(a));
}

void Dispatcher::shed_request(Attempt a, fault::FailureCause cause) {
  stats_.shed += 1;
  stats_.slot_releases += 1;  // the request's exactly-once resolution
  ClassStats& cs = cstats(a.r.cls);
  cs.shed += 1;
  cs.slot_releases += 1;
  cls_in_flight_[static_cast<std::size_t>(sched::index(a.r.cls))] -= 1;
  if (a.r.slo > 0) stats_.slo_violations += 1;
  fault_event("shed");
  if (tracer_ != nullptr) {
    tracer_->on_terminal(a.uid,
                         cause == fault::FailureCause::kEvicted
                             ? obs::Terminal::kEvicted
                             : obs::Terminal::kShed,
                         fault::to_string(cause), sim().now(),
                         /*slo_late=*/false);
  }
  in_flight_ -= 1;
  maybe_drained();
}

void Dispatcher::finalize(int node_index, Attempt att) {
  const sim::Time now = sim().now();
  GpuNode& node = cluster_->node(node_index);
  node.remove_outstanding(att.r.cost);
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  ns.slots->release();
  vres_slot_freed(ns, /*spawned=*/true);
  stats_.slot_releases += 1;
  stats_.completed += 1;
  ClassStats& cs = cstats(att.r.cls);
  cs.completed += 1;
  cs.slot_releases += 1;
  cls_in_flight_[static_cast<std::size_t>(sched::index(att.r.cls))] -= 1;
  in_flight_ -= 1;

  const sim::Duration latency = now - att.arrival;
  latencies_us_.push_back(sim::to_microseconds(latency));
  cls_latencies_us_[static_cast<std::size_t>(sched::index(att.r.cls))]
      .push_back(sim::to_microseconds(latency));
  spans_.push_back(Span{att.arrival, now});
  const bool late = att.r.slo > 0 && latency > att.r.slo;
  if (late) {
    stats_.slo_violations += 1;
    stats_.slo_late += 1;
    cs.slo_late += 1;
    // SLAWarning: adaptive governors boost the fleet back to P0.
    if (governor_ != nullptr) governor_->on_sla_warning(now);
  }
  if (tracer_ != nullptr) {
    tracer_->on_terminal(att.uid, obs::Terminal::kCompleted, "", now, late);
  }

  maybe_drained();
}

void Dispatcher::maybe_drained() {
  if (closed_ && in_flight_ == 0) {
    if (drained_at_ < 0) drained_at_ = sim().now();
    drained_.notify_all();
    work_cv_.notify_all();  // let the watchdog loop observe the exit state
  }
}

void Dispatcher::close() {
  closed_ = true;
  work_cv_.notify_all();
  maybe_drained();  // an empty run drains at close()
}

sim::Task<> Dispatcher::drain() {
  while (!(closed_ && in_flight_ == 0)) co_await drained_.wait();
}

// --- fault plane ------------------------------------------------------------

int Dispatcher::healthy_nodes() const {
  int n = 0;
  for (int i = 0; i < cluster_->size(); ++i) {
    if (cluster_->node(i).eligible()) n += 1;
  }
  return n;
}

void Dispatcher::inject_crash(const fault::CrashEvent& ev) {
  GpuNode& node = cluster_->node(ev.node);
  if (!node.alive()) return;
  node.set_alive(false);
  stats_.injected_crashes += 1;
  fault_event("crash");
  if (ev.recovers) {
    sim().after(ev.recover_after, [this, n = ev.node] { recover_node(n); });
  }
}

void Dispatcher::node_failed(int node_index) {
  GpuNode& node = cluster_->node(node_index);
  node.set_health(fault::NodeHealth::kDead);
  node.cache_clear();  // its resident data died with it
  stats_.detected_node_deaths += 1;
  fault_event("node_dead");
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  // Refuse queued acquirers (they wake ungranted and re-place themselves)
  // and fail new acquires until recovery reopens the pool.
  ns.slots->close();
  // Sweep tracked in-flight attempts onto healthy peers, exactly once each,
  // without charging their retry budget — the requests did nothing wrong.
  for (std::size_t idx = 0; idx < ns.records.size(); ++idx) {
    NodeState::Record& rec = ns.records[idx];
    if (!rec.active) continue;
    if (rec.deadline != 0) sim().cancel(rec.deadline);
    Attempt a = std::move(rec.att);
    ns.records[idx] = NodeState::Record{};
    ns.tracked -= 1;
    ns.slots->release();
    vres_slot_freed(ns, /*spawned=*/true);
    node.abandon_outstanding(a.r.cost);
    stats_.redispatched += 1;
    fault_event("redispatch");
    if (tracer_ != nullptr) {
      // The time the attempt spent on the dead node stays charged to its
      // in-progress phase; what follows is re-placement queue wait.
      tracer_->mark_progress(a.uid, sim().now());
      tracer_->on_redispatch(a.uid);
    }
    dispatch_attempt(std::move(a));
  }
  for (auto it = wedged_.begin(); it != wedged_.end();) {
    if (it->second.node != node_index) {
      ++it;
      continue;
    }
    if (it->second.deadline != 0) sim().cancel(it->second.deadline);
    Attempt a = std::move(it->second.att);
    it = wedged_.erase(it);
    ns.slots->release();
    vres_slot_freed(ns, /*spawned=*/true);
    node.abandon_outstanding(a.r.cost);
    stats_.redispatched += 1;
    fault_event("redispatch");
    if (tracer_ != nullptr) {
      tracer_->mark_progress(a.uid, sim().now());
      tracer_->on_redispatch(a.uid);
    }
    dispatch_attempt(std::move(a));
  }
}

void Dispatcher::recover_node(int node_index) {
  GpuNode& node = cluster_->node(node_index);
  if (node.alive()) return;
  node.set_alive(true);
  node.set_health(fault::NodeHealth::kHealthy);
  node_state_[static_cast<std::size_t>(node_index)].slots->reopen();
  if (watchdog_) watchdog_->reset(node_index);
  stats_.nodes_recovered += 1;
  fault_event("node_recovered");
}

void Dispatcher::drain_node(int node_index) {
  GpuNode& node = cluster_->node(node_index);
  if (node.health() == fault::NodeHealth::kDead) return;
  node.set_health(fault::NodeHealth::kDraining);
  fault_event("drain_node");
  if (!migrate_armed_) return;
  // Migrate-not-shed: walk the node's safe points instead of waiting its
  // in-flight work out.
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  ns.drain_epoch += 1;
  // Queued attempts: wake every parked slot waiter ungranted while the
  // queue stays open (completions still release into it). serve() routes
  // the woken attempts to a kQueued checkpoint.
  ns.slots->kick_waiters();
  // Spawned-but-unclaimed attempts: race the scheduler warps host-side.
  // Claimed/executing tasks lose the race deterministically and run to
  // completion on this node — they are never checkpointed.
  for (std::size_t idx = 0; idx < ns.records.size(); ++idx) {
    if (!ns.records[idx].active) continue;
    sim().spawn(migrate_revoke(node_index, idx, ns.records[idx].uid));
  }
}

sim::Process Dispatcher::migrate_revoke(int node_index, std::size_t idx,
                                        std::uint64_t uid) {
  GpuNode& node = cluster_->node(node_index);
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  if (!ns.records[idx].active || ns.records[idx].uid != uid) co_return;
  const runtime::TaskHandle h = ns.records[idx].handle;
  const bool won = co_await node.rt().try_revoke(h);
  if (!won) {
    stats_.migrate_declined += 1;
    migration_->record_declined();
    co_return;
  }
  // Re-validate after the await: the death sweep may have redispatched the
  // attempt (and released its slot) while the revoke was on the wire — the
  // GPU entry is then an orphan the revoke harmlessly freed.
  NodeState::Record& rec = ns.records[idx];
  if (!rec.active || rec.uid != uid) co_return;
  if (rec.deadline != 0) sim().cancel(rec.deadline);
  Attempt a = std::move(rec.att);
  ns.records[idx] = NodeState::Record{};
  ns.tracked -= 1;
  ns.slots->release();
  vres_slot_freed(ns, /*spawned=*/true);
  node.abandon_outstanding(a.r.cost);
  sim().spawn(migrate_out(node_index, std::move(a),
                          migrate::SafePoint::kTableParked));
}

sim::Process Dispatcher::migrate_out(int source_node, Attempt a,
                                     migrate::SafePoint p) {
  const sim::Time now = sim().now();
  if (tracer_ != nullptr) tracer_->on_migrated(a.uid, now);
  fault_event("migrate");

  migrate::TaskCheckpoint cp;
  cp.uid = a.uid;
  cp.arrival = a.arrival;
  cp.attempt = a.attempt;
  cp.cls = a.r.cls;
  cp.slo = a.r.slo;
  cp.cost = a.r.cost;
  cp.h2d_bytes = a.r.h2d_bytes;
  cp.d2h_bytes = a.r.d2h_bytes;
  cp.data_key = a.r.data_key;
  cp.index = a.r.index;
  cp.params = a.r.params;
  cp.point = p;
  cp.source_node = source_node;

  // Serialize, then restore from the IMAGE — the byte format is
  // load-bearing, not decorative: a field the serializer drops would show
  // up as a corrupted restored request, not as silent luck.
  const std::vector<std::byte> image = migrate::serialize(cp);
  migrate::TaskCheckpoint restored;
  PAGODA_CHECK_MSG(migrate::deserialize(image, &restored),
                   "checkpoint image failed to round-trip");
  migration_->record_checkpoint(restored, image);

  // Pull the node-resident state (staged payload, revoked descriptor) back
  // over the source's D2H link: real wire time, charged to the request as
  // the migrate_xfer phase. A kQueued capture moved nothing onto the node,
  // so nothing rides the wire and the phase covers re-placement only.
  const std::int64_t wire = migrate::transfer_bytes(restored);
  if (wire > 0) {
    co_await sim().delay(cfg_.host.memcpy_setup);
    auto trig = std::make_shared<sim::Trigger>(sim());
    cluster_->node(source_node)
        .d2h_stream()
        .memcpy_async(pcie::Direction::DeviceToHost, nullptr, nullptr,
                      static_cast<std::size_t>(wire), [trig] { trig->fire(); });
    co_await trig->wait();
  }

  // Rebuild the attempt from the restored image; only the kernel pointer is
  // process-local and re-bound from the captured attempt (a real system
  // ships a symbol id).
  const gpu::KernelFn fn = a.r.params.fn;
  a.uid = restored.uid;
  a.arrival = restored.arrival;
  a.attempt = restored.attempt;
  a.r.cls = restored.cls;
  a.r.slo = restored.slo;
  a.r.cost = restored.cost;
  a.r.h2d_bytes = restored.h2d_bytes;
  a.r.d2h_bytes = restored.d2h_bytes;
  a.r.data_key = restored.data_key;
  a.r.index = restored.index;
  a.r.params = restored.params;
  a.r.params.fn = fn;
  restore_attempt(std::move(a), source_node);
}

void Dispatcher::restore_attempt(Attempt a, int source_node) {
  int node_index = policy_->pick(*cluster_, a.r);
  if (node_index < 0) {
    if (cluster_->node(source_node).alive()) {
      // No eligible peer, but the drain source still serves its in-flight
      // work: finish in place rather than shed. Zero-loss is the contract —
      // a drain is administrative, the request did nothing wrong.
      node_index = source_node;
    } else {
      // The source died too: genuine capacity loss, resolved as a shed so
      // the exactly-once ledger still balances.
      shed_request(std::move(a), fault::FailureCause::kNodeCrash);
      return;
    }
  }
  stats_.migrated += 1;
  migration_->record_restore();
  cluster_->node(node_index).add_outstanding(a.r.cost);
  backlog_ += 1;
  sim().spawn(serve(std::move(a), node_index));
}

void Dispatcher::reinstate_node(int node_index) {
  GpuNode& node = cluster_->node(node_index);
  if (!node.alive()) return;  // still crashed: recovery will reinstate
  node.set_health(fault::NodeHealth::kHealthy);
  if (watchdog_) watchdog_->reset(node_index);
  fault_event("reinstate_node");
}

void Dispatcher::set_bandwidth_scale(int node_index, double scale) {
  const auto apply = [scale](GpuNode& n) {
    pcie::PcieBus& bus = n.session().pcie();
    bus.link(pcie::Direction::HostToDevice).set_bandwidth_scale(scale);
    bus.link(pcie::Direction::DeviceToHost).set_bandwidth_scale(scale);
  };
  if (node_index < 0) {
    for (int i = 0; i < cluster_->size(); ++i) apply(cluster_->node(i));
  } else {
    apply(cluster_->node(node_index));
  }
}

void Dispatcher::fault_event(std::string_view name) {
  if (collector_ == nullptr || !collector_->timeline_enabled()) return;
  if (fault_track_ < 0) fault_track_ = collector_->timeline().track("fault");
  collector_->timeline().instant(fault_track_, name, sim().now());
}

// --- power plane ------------------------------------------------------------

double Dispatcher::fleet_watts() const {
  double w = 0.0;
  const sim::Time now = cluster_->sim().now();
  for (int i = 0; i < cluster_->size(); ++i) {
    if (const power::NodePower* np = cluster_->node(i).power()) {
      w += np->watts(now);
    }
  }
  return w;
}

void Dispatcher::power_edge(sim::Time now) {
  if (collector_ == nullptr) return;
  // Cut a sample exactly at the edge: a P/C/S transition is a step change
  // in power draw, and smearing it across a periodic sample window would
  // blur the residency attribution the energy tests decompose.
  collector_->edge_sample(now);
  if (collector_->timeline_enabled()) {
    if (power_track_ < 0) power_track_ = collector_->timeline().track("power");
    collector_->timeline().instant(power_track_, "transition", now);
  }
}

// --- accounting -------------------------------------------------------------

double Dispatcher::load_imbalance() const {
  std::int64_t lo = cluster_->node(0).completed();
  std::int64_t hi = lo;
  std::int64_t sum = 0;
  for (int i = 0; i < cluster_->size(); ++i) {
    const std::int64_t c = cluster_->node(i).completed();
    lo = std::min(lo, c);
    hi = std::max(hi, c);
    sum += c;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(cluster_->size());
  return static_cast<double>(hi - lo) / mean;
}

void Dispatcher::export_metrics(obs::MetricsRegistry& m) const {
  m.counter("cluster.requests.offered").set(stats_.offered);
  m.counter("cluster.requests.admitted").set(stats_.admitted);
  m.counter("cluster.requests.dropped").set(stats_.dropped);
  m.counter("cluster.requests.completed").set(stats_.completed);
  m.counter("cluster.requests.shed").set(stats_.shed);
  m.counter("cluster.slo.violations").set(stats_.slo_violations);
  m.counter("cluster.slo.late").set(stats_.slo_late);
  m.counter("cluster.affinity.hits").set(stats_.affinity_hits);
  m.counter("cluster.h2d.bytes_copied").set(stats_.h2d_bytes_copied);
  if (stats_.offered > 0) {
    m.gauge("cluster.slo.violation_rate")
        .set(static_cast<double>(stats_.slo_violations) /
             static_cast<double>(stats_.offered));
  }
  m.gauge("cluster.load_imbalance").set(load_imbalance());
  m.counter("cluster.gpus").set(cluster_->size());
  for (int i = 0; i < cluster_->size(); ++i) {
    m.counter(dev_key(i, "completed")).set(cluster_->node(i).completed());
  }
  if (!latencies_us_.empty()) {
    m.gauge("cluster.latency.mean_us").set(arithmetic_mean(latencies_us_));
    m.gauge("cluster.latency.p50_us").set(percentile(latencies_us_, 50));
    m.gauge("cluster.latency.p99_us").set(percentile(latencies_us_, 99));
    m.gauge("cluster.latency.p999_us").set(percentile(latencies_us_, 99.9));
    obs::Histogram& h = m.histogram("cluster.latency_us");
    for (const double v : latencies_us_) h.add(v);
  }
  if (qos_) {
    // Per-class ledger + latency tails, gated so default (non-QoS) runs
    // emit no sched.* keys and their metric JSON stays byte-identical.
    m.counter("sched.evicted").set(stats_.evicted);
    for (int c = 0; c < sched::kNumClasses; ++c) {
      const auto cls = static_cast<sched::Class>(c);
      const ClassStats& cs = cls_stats_[static_cast<std::size_t>(c)];
      obs::export_sched_counter(m, cls, "offered", cs.offered);
      obs::export_sched_counter(m, cls, "admitted", cs.admitted);
      obs::export_sched_counter(m, cls, "dropped", cs.dropped);
      obs::export_sched_counter(m, cls, "completed", cs.completed);
      obs::export_sched_counter(m, cls, "shed", cs.shed);
      obs::export_sched_counter(m, cls, "evicted", cs.evicted);
      obs::export_sched_counter(m, cls, "slo_late", cs.slo_late);
      obs::export_sched_latencies(
          m, cls, cls_latencies_us_[static_cast<std::size_t>(c)]);
    }
  }
  if (fault_armed_) {
    m.counter("fault.injected.task_faults").set(stats_.injected_task_faults);
    m.counter("fault.injected.transfer_faults")
        .set(stats_.injected_transfer_faults);
    m.counter("fault.injected.wedges").set(stats_.injected_wedges);
    m.counter("fault.injected.crashes").set(stats_.injected_crashes);
    m.counter("fault.detected.timeouts").set(stats_.detected_timeouts);
    m.counter("fault.detected.node_deaths").set(stats_.detected_node_deaths);
    m.counter("fault.retries").set(stats_.retries);
    m.counter("fault.redispatched").set(stats_.redispatched);
    m.counter("fault.nodes.recovered").set(stats_.nodes_recovered);
    m.counter("fault.slot_acquires").set(stats_.slot_acquires);
    if (watchdog_ != nullptr) {
      m.counter("fault.watchdog.probes").set(watchdog_->probes());
    }
  }
  if (power_armed_) {
    // Extrapolate to the drain instant, not the (possibly capped) clock.
    const sim::Time now =
        drained_at_ >= 0 ? drained_at_ : cluster_->sim().now();
    double fleet_watts_now = 0.0;
    double fleet_energy = 0.0;
    std::int64_t transitions = 0;
    std::int64_t wakeups = 0;
    for (int i = 0; i < cluster_->size(); ++i) {
      const power::NodePower* np = cluster_->node(i).power();
      if (np == nullptr) continue;
      const double e = np->energy_joules(now);
      fleet_watts_now += np->watts(now);
      fleet_energy += e;
      transitions += static_cast<std::int64_t>(np->transitions());
      wakeups += static_cast<std::int64_t>(np->wakeups());
      m.gauge(dev_key(i, "power.watts")).set(np->watts(now));
      m.gauge(dev_key(i, "power.energy_j")).set(e);
      m.counter(dev_key(i, "power.p_state")).set(np->p_state());
      m.counter(dev_key(i, "power.s_state")).set(np->s_state());
      m.gauge(dev_key(i, "power.awake_s"))
          .set(np->s_residency_seconds(0, now));
    }
    m.gauge("power.fleet.watts").set(fleet_watts_now);
    m.gauge("power.fleet.energy_j").set(fleet_energy);
    m.counter("power.transitions").set(transitions);
    m.counter("power.wakeups").set(wakeups);
    m.counter("power.wakeup_waits").set(stats_.power_wakeup_waits);
    if (stats_.completed > 0) {
      m.gauge("power.joules_per_request")
          .set(fleet_energy / static_cast<double>(stats_.completed));
    }
    if (governor_ != nullptr) {
      const power::PowerGovernor::Stats& gs = governor_->stats();
      m.counter("power.governor.checks")
          .set(static_cast<std::int64_t>(gs.checks));
      m.counter("power.governor.sla_warnings")
          .set(static_cast<std::int64_t>(gs.sla_warnings));
      m.counter("power.governor.nodes_slept")
          .set(static_cast<std::int64_t>(gs.nodes_slept));
      m.counter("power.governor.nodes_woken")
          .set(static_cast<std::int64_t>(gs.nodes_woken));
    }
  }
  if (migrate_armed_) {
    const migrate::MigrationManager::Stats& ms = migration_->stats();
    m.counter("migrate.checkpoints").set(ms.checkpoints);
    m.counter("migrate.checkpoints.queued").set(ms.queued);
    m.counter("migrate.checkpoints.staged").set(ms.staged);
    m.counter("migrate.checkpoints.table_parked").set(ms.table_parked);
    m.counter("migrate.restores").set(ms.restores);
    m.counter("migrate.declined").set(ms.declined);
    m.counter("migrate.xfer_bytes").set(ms.xfer_bytes);
    m.counter("migrate.image_bytes").set(ms.image_bytes);
    m.counter("migrate.migrated").set(stats_.migrated);
    if (autoscaler_ != nullptr) {
      const migrate::Autoscaler::Stats& as = autoscaler_->stats();
      m.counter("migrate.autoscale.checks")
          .set(static_cast<std::int64_t>(as.checks));
      m.counter("migrate.autoscale.nodes_slept")
          .set(static_cast<std::int64_t>(as.nodes_slept));
      m.counter("migrate.autoscale.nodes_woken")
          .set(static_cast<std::int64_t>(as.nodes_woken));
      m.counter("migrate.autoscale.drains_started")
          .set(static_cast<std::int64_t>(as.drains_started));
      m.counter("migrate.autoscale.drains_cancelled")
          .set(static_cast<std::int64_t>(as.drains_cancelled));
      m.counter("migrate.autoscale.resize_events")
          .set(static_cast<std::int64_t>(as.resize_events));
    }
  }
  if (vres_armed_) {
    // Gated like every other plane so oversub == 1 runs emit no vres.* keys
    // and their metric JSON stays byte-identical to the pre-vres build.
    std::int64_t virt_slots = 0;
    std::int64_t phys_slots = 0;
    std::int64_t over_peak = 0;
    std::int64_t spills = 0;
    std::int64_t reclaims = 0;
    std::int64_t spill_bytes = 0;
    std::int64_t reclaim_bytes = 0;
    for (int i = 0; i < cluster_->size(); ++i) {
      const NodeState& ns = node_state_[static_cast<std::size_t>(i)];
      virt_slots += ns.slot_ledger.virtual_capacity();
      phys_slots += static_cast<std::int64_t>(ns.records.size());
      over_peak = std::max(over_peak, ns.slot_ledger.peak_spilled());
      const runtime::MasterKernel& mk =
          cluster_->node(i).rt().master_kernel();
      spills += mk.vres_spills();
      reclaims += mk.vres_reclaims();
      spill_bytes += mk.vres_spill_bytes();
      reclaim_bytes += mk.vres_reclaim_bytes();
    }
    m.counter("vres.slots.virtual").set(virt_slots);
    m.counter("vres.slots.physical").set(phys_slots);
    m.counter("vres.slots.over_admissions").set(stats_.vres_over_admissions);
    m.counter("vres.slots.overadmission_peak").set(over_peak);
    m.counter("vres.shmem.spills").set(spills);
    m.counter("vres.shmem.reclaims").set(reclaims);
    m.counter("vres.shmem.spill_bytes").set(spill_bytes);
    m.counter("vres.shmem.reclaim_bytes").set(reclaim_bytes);
  }
}

void Dispatcher::set_tracer(obs::RequestTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  // Claim observers append to the shared tracer from node-side events.
  sim().require_serial("request tracer attached");
  for (int i = 0; i < cluster_->size(); ++i) {
    cluster_->node(i).rt().set_claim_observer(
        [this, i](runtime::TaskId id, sim::Time now) {
          on_task_claimed(i, id, now);
        });
    cluster_->node(i).rt().set_vres_observer(
        [this, i](runtime::TaskId id, sim::Time start, sim::Time end,
                  bool spill) { on_task_vres(i, id, start, end, spill); });
  }
}

void Dispatcher::install_sampler(obs::Collector& collector) {
  collector_ = &collector;
  collector.add_sampler(sim(), [this, &collector](sim::Time now) {
    obs::MetricsRegistry& m = collector.metrics();
    m.stat("cluster.in_flight").add(static_cast<double>(in_flight_));
    m.stat("cluster.backlog").add(static_cast<double>(backlog_));
    for (int i = 0; i < cluster_->size(); ++i) {
      m.stat(dev_key(i, "outstanding"))
          .add(static_cast<double>(cluster_->node(i).outstanding()));
    }
    if (fault_armed_) {
      // The watchdog's raw signal, recorded so a profile shows the flatline
      // of a crashed node next to the detection instant on the fault track.
      for (int i = 0; i < cluster_->size(); ++i) {
        m.stat(dev_key(i, "heartbeat"))
            .add(static_cast<double>(cluster_->node(i).heartbeat()));
      }
    }
    if (qos_) {
      for (int c = 0; c < sched::kNumClasses; ++c) {
        m.stat(obs::sched_key(static_cast<sched::Class>(c), "in_flight"))
            .add(static_cast<double>(
                cls_in_flight_[static_cast<std::size_t>(c)]));
      }
    }
    if (power_armed_) {
      m.stat("power.fleet.watts").add(fleet_watts());
    }
    if (collector.timeline_enabled()) {
      collector.timeline().counter("cluster.in_flight", now,
                                   static_cast<double>(in_flight_));
      collector.timeline().counter("cluster.backlog", now,
                                   static_cast<double>(backlog_));
      if (qos_) {
        for (int c = 0; c < sched::kNumClasses; ++c) {
          collector.timeline().counter(
              obs::sched_key(static_cast<sched::Class>(c), "in_flight"), now,
              static_cast<double>(cls_in_flight_[static_cast<std::size_t>(c)]));
        }
      }
      if (fault_armed_) {
        for (int i = 0; i < cluster_->size(); ++i) {
          collector.timeline().counter(
              dev_key(i, "heartbeat"), now,
              static_cast<double>(cluster_->node(i).heartbeat()));
        }
      }
      if (power_armed_) {
        collector.timeline().counter("power.fleet.watts", now, fleet_watts());
        for (int i = 0; i < cluster_->size(); ++i) {
          const power::NodePower* np = cluster_->node(i).power();
          if (np == nullptr) continue;
          collector.timeline().counter(dev_key(i, "power.watts"), now,
                                       np->watts(now));
          collector.timeline().counter(dev_key(i, "power.p_state"), now,
                                       static_cast<double>(np->p_state()));
          collector.timeline().counter(dev_key(i, "power.s_state"), now,
                                       static_cast<double>(np->s_state()));
        }
      }
    }
  });
}

}  // namespace pagoda::cluster
