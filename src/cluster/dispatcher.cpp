#include "cluster/dispatcher.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/check.h"
#include "common/stats.h"
#include "obs/collector.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace pagoda::cluster {

namespace {

std::string dev_key(int index, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "cluster.dev%02d.%s", index, suffix);
  return buf;
}

}  // namespace

Dispatcher::Dispatcher(Cluster& cluster,
                       std::unique_ptr<PlacementPolicy> policy,
                       DispatcherConfig cfg)
    : cluster_(&cluster),
      policy_(std::move(policy)),
      cfg_(cfg),
      drained_(cluster.sim()) {
  PAGODA_CHECK_MSG(policy_ != nullptr, "Dispatcher needs a placement policy");
  node_state_.resize(static_cast<std::size_t>(cluster.size()));
  for (int i = 0; i < cluster.size(); ++i) {
    GpuNode& node = cluster.node(i);
    NodeState& ns = node_state_[static_cast<std::size_t>(i)];
    ns.slots =
        std::make_unique<sim::Semaphore>(cluster.sim(), node.capacity());
    ns.records.resize(static_cast<std::size_t>(node.capacity()));
    ns.activity = std::make_unique<sim::Condition>(cluster.sim());
    node.rt().set_completion_observer(
        [this, i](runtime::TaskId id, sim::Time) { on_task_complete(i, id); });
    cluster.sim().spawn(flush_timer(i));
  }
}

sim::Process Dispatcher::flush_timer(int node_index) {
  GpuNode& node = cluster_->node(node_index);
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  const sim::Duration quiet = node.rt().config().wait_poll;
  while (true) {
    while (ns.spawn_epoch == 0) co_await ns.activity->wait();
    while (node.outstanding() > 0) {
      const std::uint64_t seen = ns.spawn_epoch;
      co_await sim().delay(quiet);
      if (ns.spawn_epoch == seen && node.outstanding() > 0) {
        // No spawn for a whole quiet period: the release chain has stalled.
        // wait_all flushes the stranded task and keeps playing lazy
        // aggregate copy-backs until this node's table drains.
        co_await node.rt().wait_all();
      }
    }
    if (closed_ && in_flight_ == 0) co_return;
    ns.spawn_epoch = 0;  // re-arm: sleep until the next spawn
  }
}

void Dispatcher::offer(Request r) {
  PAGODA_CHECK_MSG(!closed_, "offer() after close()");
  stats_.offered += 1;
  if (r.slo == 0) r.slo = cfg_.default_slo;
  if (cfg_.queue_limit > 0 && backlog_ >= cfg_.queue_limit) {
    // Admission control: a bounded backlog turns overload into determinate
    // drops. A dropped request never attains its deadline.
    stats_.dropped += 1;
    if (r.slo > 0) stats_.slo_violations += 1;
    return;
  }
  const int node_index = policy_->pick(*cluster_, r);
  PAGODA_CHECK_MSG(node_index >= 0 && node_index < cluster_->size(),
                   "placement policy returned a bad node index");
  stats_.admitted += 1;
  placements_.push_back(node_index);
  cluster_->node(node_index).add_outstanding(r.cost);
  in_flight_ += 1;
  backlog_ += 1;
  sim().spawn(serve(std::move(r), node_index));
}

sim::Process Dispatcher::serve(Request r, int node_index) {
  const sim::Time arrival = sim().now();
  GpuNode& node = cluster_->node(node_index);
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];

  // Backpressure: at most `capacity` requests per device own a TaskTable
  // entry or an input copy at once; the rest queue here, in FIFO order.
  co_await ns.slots->acquire();
  backlog_ -= 1;

  if (r.h2d_bytes > 0) {
    const bool hit = r.data_key != 0 && node.cache_contains(r.data_key);
    if (hit) {
      stats_.affinity_hits += 1;
    } else {
      co_await sim().delay(cfg_.host.memcpy_setup);
      auto trig = std::make_shared<sim::Trigger>(sim());
      node.h2d_stream().memcpy_async(
          pcie::Direction::HostToDevice, nullptr, nullptr,
          static_cast<std::size_t>(r.h2d_bytes), [trig] { trig->fire(); });
      co_await trig->wait();
      stats_.h2d_bytes_copied += r.h2d_bytes;
      if (r.data_key != 0) node.cache_insert(r.data_key);
    }
  }

  const runtime::TaskHandle h = co_await node.rt().task_spawn(r.params);
  ns.spawn_epoch += 1;
  ns.activity->notify_all();
  NodeState::Record& rec =
      ns.records[static_cast<std::size_t>(h.id - runtime::kFirstTaskId)];
  PAGODA_CHECK_MSG(!rec.active, "TaskTable entry reused while tracked");
  rec.active = true;
  rec.arrival = arrival;
  rec.slo = r.slo;
  rec.d2h_bytes = r.d2h_bytes;
  rec.cost = r.cost;
}

void Dispatcher::on_task_complete(int node_index, runtime::TaskId id) {
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  const std::size_t idx = static_cast<std::size_t>(id - runtime::kFirstTaskId);
  PAGODA_CHECK(idx < ns.records.size());
  NodeState::Record rec = ns.records[idx];
  if (!rec.active) return;  // not a dispatcher task (foreign spawner)
  // Erase NOW: the GPU just freed the entry, so a successor may spawn into
  // it before this request's output copy drains.
  ns.records[idx] = NodeState::Record{};

  if (rec.d2h_bytes > 0) {
    cluster_->node(node_index).d2h_stream().memcpy_async(
        pcie::Direction::DeviceToHost, nullptr, nullptr,
        static_cast<std::size_t>(rec.d2h_bytes),
        [this, node_index, rec] { finalize(node_index, rec); });
  } else {
    finalize(node_index, rec);
  }
}

void Dispatcher::finalize(int node_index, NodeState::Record rec) {
  const sim::Time now = sim().now();
  GpuNode& node = cluster_->node(node_index);
  node.remove_outstanding(rec.cost);
  NodeState& ns = node_state_[static_cast<std::size_t>(node_index)];
  ns.slots->release();
  stats_.slot_releases += 1;
  stats_.completed += 1;
  in_flight_ -= 1;

  const sim::Duration latency = now - rec.arrival;
  latencies_us_.push_back(sim::to_microseconds(latency));
  spans_.push_back(Span{rec.arrival, now});
  if (rec.slo > 0 && latency > rec.slo) stats_.slo_violations += 1;

  if (closed_ && in_flight_ == 0) drained_.notify_all();
}

void Dispatcher::close() { closed_ = true; }

sim::Task<> Dispatcher::drain() {
  while (!(closed_ && in_flight_ == 0)) co_await drained_.wait();
}

double Dispatcher::load_imbalance() const {
  std::int64_t lo = cluster_->node(0).completed();
  std::int64_t hi = lo;
  std::int64_t sum = 0;
  for (int i = 0; i < cluster_->size(); ++i) {
    const std::int64_t c = cluster_->node(i).completed();
    lo = std::min(lo, c);
    hi = std::max(hi, c);
    sum += c;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(cluster_->size());
  return static_cast<double>(hi - lo) / mean;
}

void Dispatcher::export_metrics(obs::MetricsRegistry& m) const {
  m.counter("cluster.requests.offered").set(stats_.offered);
  m.counter("cluster.requests.admitted").set(stats_.admitted);
  m.counter("cluster.requests.dropped").set(stats_.dropped);
  m.counter("cluster.requests.completed").set(stats_.completed);
  m.counter("cluster.slo.violations").set(stats_.slo_violations);
  m.counter("cluster.affinity.hits").set(stats_.affinity_hits);
  m.counter("cluster.h2d.bytes_copied").set(stats_.h2d_bytes_copied);
  if (stats_.offered > 0) {
    m.gauge("cluster.slo.violation_rate")
        .set(static_cast<double>(stats_.slo_violations) /
             static_cast<double>(stats_.offered));
  }
  m.gauge("cluster.load_imbalance").set(load_imbalance());
  m.counter("cluster.gpus").set(cluster_->size());
  for (int i = 0; i < cluster_->size(); ++i) {
    m.counter(dev_key(i, "completed")).set(cluster_->node(i).completed());
  }
  if (!latencies_us_.empty()) {
    m.gauge("cluster.latency.mean_us").set(arithmetic_mean(latencies_us_));
    m.gauge("cluster.latency.p50_us").set(percentile(latencies_us_, 50));
    m.gauge("cluster.latency.p99_us").set(percentile(latencies_us_, 99));
    m.gauge("cluster.latency.p999_us").set(percentile(latencies_us_, 99.9));
    obs::Histogram& h = m.histogram("cluster.latency_us");
    for (const double v : latencies_us_) h.add(v);
  }
}

void Dispatcher::install_sampler(obs::Collector& collector) {
  collector.add_sampler(sim(), [this, &collector](sim::Time now) {
    obs::MetricsRegistry& m = collector.metrics();
    m.stat("cluster.in_flight").add(static_cast<double>(in_flight_));
    m.stat("cluster.backlog").add(static_cast<double>(backlog_));
    for (int i = 0; i < cluster_->size(); ++i) {
      m.stat(dev_key(i, "outstanding"))
          .add(static_cast<double>(cluster_->node(i).outstanding()));
    }
    if (collector.timeline_enabled()) {
      collector.timeline().counter("cluster.in_flight", now,
                                   static_cast<double>(in_flight_));
      collector.timeline().counter("cluster.backlog", now,
                                   static_cast<double>(backlog_));
    }
  });
}

}  // namespace pagoda::cluster
