#include "cluster/cluster.h"

#include "common/check.h"

namespace pagoda::cluster {

GpuNode::GpuNode(sim::Simulation& sim, const NodeConfig& cfg, int index)
    : index_(index),
      cfg_(cfg),
      shard_(sim.current_shard()),
      session_(sim,
               [&] {
                 engine::SessionConfig sc;
                 sc.spec = cfg.spec;
                 sc.pcie = cfg.pcie;
                 sc.host = cfg.host;
                 sc.pagoda_runtime = true;
                 sc.pagoda = cfg.pagoda;
                 return sc;
               }()),
      pipe_(session_, {.h2d_streams = 1, .d2h_streams = 1}) {}

void GpuNode::cache_insert(std::uint64_t key) {
  if (cfg_.cache_keys <= 0) return;
  if (const auto it = resident_index_.find(key);
      it != resident_index_.end()) {
    // Re-inserting resident data is a use: promote to most-recently-used.
    resident_lru_.splice(resident_lru_.end(), resident_lru_, it->second);
    return;
  }
  if (static_cast<int>(resident_lru_.size()) >= cfg_.cache_keys) {
    resident_index_.erase(resident_lru_.front());
    resident_lru_.pop_front();
  }
  resident_lru_.push_back(key);
  resident_index_.emplace(key, std::prev(resident_lru_.end()));
}

void GpuNode::cache_touch(std::uint64_t key) {
  if (const auto it = resident_index_.find(key);
      it != resident_index_.end()) {
    resident_lru_.splice(resident_lru_.end(), resident_lru_, it->second);
  }
}

void GpuNode::cache_clear() {
  resident_lru_.clear();
  resident_index_.clear();
}

Cluster::Cluster(sim::Simulation& sim, const std::vector<NodeConfig>& nodes)
    : sim_(&sim) {
  PAGODA_CHECK_MSG(!nodes.empty(), "a cluster needs at least one GPU");
  // One event shard per node (shard 0 stays the host/dispatcher shard). All
  // the device-internal traffic of node i then lives on shard 1+i, which is
  // what lets the coordinator drain nodes concurrently. When sharding is
  // disabled the call is a no-op and the scopes degrade to the host shard.
  sim.configure_shards(static_cast<int>(nodes.size()));
  nodes_.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    sim::Simulation::ShardScope scope(sim,
                                      static_cast<sim::ShardId>(1 + i));
    nodes_.push_back(
        std::make_unique<GpuNode>(sim, nodes[i], static_cast<int>(i)));
  }
}

void Cluster::start() {
  for (auto& n : nodes_) {
    sim::Simulation::ShardScope scope(*sim_, n->shard());
    n->session().start();
  }
}

void Cluster::shutdown() {
  for (auto& n : nodes_) {
    sim::Simulation::ShardScope scope(*sim_, n->shard());
    n->session().shutdown();
  }
}

double Cluster::executor_busy_warp_seconds() const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    total += n->rt().master_kernel().executor_busy_warp_seconds();
  }
  return total;
}

int Cluster::total_executor_warps() const {
  int total = 0;
  for (const auto& n : nodes_) total += n->executor_warp_capacity();
  return total;
}

std::vector<NodeConfig> Cluster::homogeneous(int n, NodeConfig proto) {
  PAGODA_CHECK(n >= 1);
  return std::vector<NodeConfig>(static_cast<std::size_t>(n), proto);
}

}  // namespace pagoda::cluster
