#include "cluster/traffic.h"

#include <charconv>
#include <cmath>

#include "common/check.h"

namespace pagoda::cluster {

namespace {

/// Full-consumption double parse; nullopt on garbage or empty input.
std::optional<double> parse_double(std::string_view s) {
  double v = 0.0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return v;
}

}  // namespace

std::optional<ArrivalConfig> ArrivalConfig::parse(std::string_view spec) {
  ArrivalConfig cfg;
  if (spec == "closed") return cfg;

  const std::size_t colon = spec.find(':');
  const std::string_view kind = spec.substr(0, colon);
  if (kind != "poisson" && kind != "bursty" && kind != "diurnal") {
    return std::nullopt;
  }
  if (colon == std::string_view::npos) return std::nullopt;  // rate required

  std::string_view rest = spec.substr(colon + 1);
  const std::size_t colon2 = rest.find(':');
  const std::optional<double> rate = parse_double(rest.substr(0, colon2));
  if (!rate.has_value() || *rate <= 0.0) return std::nullopt;
  cfg.rate_per_sec = *rate;

  if (kind == "poisson") {
    if (colon2 != std::string_view::npos) return std::nullopt;
    cfg.kind = ArrivalKind::Poisson;
    return cfg;
  }
  if (kind == "diurnal") {
    cfg.kind = ArrivalKind::Diurnal;
    cfg.burst_factor = 4.0;
    cfg.mean_on = sim::milliseconds(20.0);
    if (colon2 != std::string_view::npos) {
      const std::string_view rest2 = rest.substr(colon2 + 1);
      const std::size_t colon3 = rest2.find(':');
      const std::optional<double> factor =
          parse_double(rest2.substr(0, colon3));
      if (!factor.has_value() || *factor <= 1.0) return std::nullopt;
      cfg.burst_factor = *factor;
      if (colon3 != std::string_view::npos) {
        const std::optional<double> on_us =
            parse_double(rest2.substr(colon3 + 1));
        if (!on_us.has_value() || *on_us <= 0.0) return std::nullopt;
        cfg.mean_on = sim::microseconds(*on_us);
      }
    }
    return cfg;
  }
  cfg.kind = ArrivalKind::Bursty;
  if (colon2 != std::string_view::npos) {
    const std::optional<double> factor = parse_double(rest.substr(colon2 + 1));
    if (!factor.has_value() || *factor <= 1.0) return std::nullopt;
    cfg.burst_factor = *factor;
  }
  return cfg;
}

std::string_view ArrivalConfig::choices() {
  return "closed, poisson:RATE, bursty:RATE[:FACTOR], "
         "diurnal:RATE[:FACTOR[:ON_US]]  (RATE in requests/s; FACTOR > 1; "
         "ON_US = mean phase length in us)";
}

ArrivalSequence::ArrivalSequence(const ArrivalConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  if (cfg_.kind != ArrivalKind::Closed) {
    PAGODA_CHECK_MSG(cfg_.rate_per_sec > 0.0, "arrival rate must be positive");
  }
}

double ArrivalSequence::exp_sample(double mean) {
  return -mean * std::log(1.0 - rng_.next_double());
}

sim::Duration ArrivalSequence::next_gap() {
  switch (cfg_.kind) {
    case ArrivalKind::Closed:
      return 0;
    case ArrivalKind::Poisson:
      return sim::seconds(exp_sample(1.0 / cfg_.rate_per_sec));
    case ArrivalKind::Bursty: {
      // ON/OFF modulated Poisson: arrivals at burst_factor x the mean rate
      // during ON phases; the 1/factor duty cycle restores the mean.
      const double on_rate = cfg_.rate_per_sec * cfg_.burst_factor;
      const sim::Duration mean_on = cfg_.mean_on;
      const sim::Duration mean_off = static_cast<sim::Duration>(
          static_cast<double>(mean_on) * (cfg_.burst_factor - 1.0));
      sim::Duration gap = 0;
      while (true) {
        if (on_left_ <= 0) {
          gap += static_cast<sim::Duration>(
              exp_sample(static_cast<double>(mean_off)));
          on_left_ = static_cast<sim::Duration>(
              exp_sample(static_cast<double>(mean_on)));
        }
        const auto arrival =
            static_cast<sim::Duration>(sim::seconds(exp_sample(1.0 / on_rate)));
        if (arrival <= on_left_) {
          on_left_ -= arrival;
          return gap + arrival;
        }
        gap += on_left_;
        on_left_ = 0;
      }
    }
    case ArrivalKind::Diurnal: {
      // Day/night modulated Poisson: exponential-length peak and trough
      // phases of equal mean length; the peak rate is factor x the trough
      // rate, both scaled so the long-run mean stays rate_per_sec:
      //   (peak + trough) / 2 == rate,  peak == factor * trough.
      const double peak_rate = cfg_.rate_per_sec * 2.0 * cfg_.burst_factor /
                               (cfg_.burst_factor + 1.0);
      const double trough_rate = peak_rate / cfg_.burst_factor;
      sim::Duration gap = 0;
      while (true) {
        if (phase_left_ <= 0) {
          in_peak_ = !in_peak_;
          phase_left_ = static_cast<sim::Duration>(
              exp_sample(static_cast<double>(cfg_.mean_on)));
        }
        const double rate = in_peak_ ? peak_rate : trough_rate;
        const auto arrival =
            static_cast<sim::Duration>(sim::seconds(exp_sample(1.0 / rate)));
        sim::Duration& res = in_peak_ ? peak_time_ : trough_time_;
        if (arrival <= phase_left_) {
          phase_left_ -= arrival;
          res += arrival;
          return gap + arrival;
        }
        gap += phase_left_;
        res += phase_left_;
        phase_left_ = 0;
      }
    }
  }
  return 0;
}

gpu::KernelCoro service_kernel(gpu::WarpCtx& ctx) {
  const auto& a = ctx.args_as<ServiceArgs>();
  ctx.charge(a.compute_cycles);
  ctx.charge_stall(a.stall_cycles);
  co_return;
}

Request synth_request(const RequestProfile& p, std::uint64_t seed, int index) {
  SplitMix64 rng(hash_index(seed, static_cast<std::uint64_t>(index)));
  double scale = 0.5 + rng.next_double();  // uniform in [0.5, 1.5)
  if (p.heavy_fraction > 0.0 && rng.next_double() < p.heavy_fraction) {
    scale *= p.heavy_multiplier;
  }
  Request r;
  r.index = index;
  r.params.fn = service_kernel;
  r.params.threads_per_block = p.threads_per_task;
  r.params.set_args(ServiceArgs{p.compute_cycles * scale,
                                p.stall_cycles * scale});
  // Service-demand hint for load-aware placement: warps occupied x relative
  // cycle scale.
  r.cost = scale * (static_cast<double>(p.threads_per_task) / 32.0);
  r.h2d_bytes = p.h2d_bytes;
  r.d2h_bytes = p.d2h_bytes;
  if (p.num_keys > 0) {
    // Keys are 1-based so key 0 keeps meaning "unkeyed".
    r.data_key = 1 + rng.next_below(static_cast<std::uint64_t>(p.num_keys));
  }
  r.slo = p.slo;
  r.cls = p.cls;
  return r;
}

}  // namespace pagoda::cluster
