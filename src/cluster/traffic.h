// Open-loop traffic for the cluster serving layer.
//
// ArrivalConfig/ArrivalSequence model how requests arrive:
//   closed         — no pacing; every request is offered back-to-back (the
//                    throughput-bench configuration).
//   poisson:RATE   — exponential inter-arrival gaps at RATE requests/s.
//   bursty:RATE[:FACTOR] — an ON/OFF modulated Poisson process (MMPP-2):
//                    exponential ON and OFF phases; arrivals only during ON
//                    at FACTOR x the mean rate, with the duty cycle chosen
//                    so the long-run mean stays RATE. FACTOR defaults to 8.
//   diurnal:RATE[:FACTOR[:ON_US]] — day/night modulated Poisson (MMPP-2
//                    with two nonzero rates): exponential peak and trough
//                    phases of equal mean length ON_US, peak rate FACTOR x
//                    the trough rate, both scaled so the long-run mean stays
//                    RATE. The trough still trickles (unlike bursty's
//                    silence), so energy-min placement can pack the fleet at
//                    night without starving. FACTOR defaults to 4, ON_US to
//                    20000 (20 ms phases).
//
// RequestProfile synthesizes the requests themselves (service demand, copy
// volumes, data keys, optional heavy tail) for benches and tests that don't
// want a full workloads::Workload. Everything is SplitMix64-seeded, so a
// (config, seed) pair replays the identical arrival trace byte-for-byte.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "cluster/request.h"
#include "common/rng.h"
#include "common/time_types.h"
#include "gpu/kernel.h"

namespace pagoda::cluster {

enum class ArrivalKind { Closed, Poisson, Bursty, Diurnal };

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::Closed;
  /// Long-run mean arrival rate (requests/s); ignored for Closed.
  double rate_per_sec = 0.0;
  /// Bursty: ON-phase rate multiplier (duty cycle = 1/factor).
  /// Diurnal: peak-to-trough rate ratio (phases have equal mean length).
  double burst_factor = 8.0;
  /// Bursty: mean ON-phase length; the mean OFF length follows from the
  /// duty cycle as mean_on * (factor - 1).
  /// Diurnal: mean length of BOTH the peak and the trough phase.
  sim::Duration mean_on = sim::microseconds(200.0);

  /// Parses "closed", "poisson:RATE", "bursty:RATE[:FACTOR]" or
  /// "diurnal:RATE[:FACTOR[:ON_US]]". nullopt on malformed input.
  static std::optional<ArrivalConfig> parse(std::string_view spec);
  /// Valid forms, for CLI error messages.
  static std::string_view choices();
};

/// Deterministic inter-arrival gap stream for one ArrivalConfig.
class ArrivalSequence {
 public:
  ArrivalSequence(const ArrivalConfig& cfg, std::uint64_t seed);
  /// Gap before the next arrival (0 for Closed).
  sim::Duration next_gap();

  /// Fraction of generated time spent in the high-rate phase (Diurnal
  /// only; 0 before any gap was drawn). Long-run it converges to 0.5 —
  /// the duty-cycle occupancy the MMPP tests check statistically.
  double on_fraction() const {
    const auto total = static_cast<double>(peak_time_ + trough_time_);
    return total > 0.0 ? static_cast<double>(peak_time_) / total : 0.0;
  }

 private:
  ArrivalConfig cfg_;
  SplitMix64 rng_;
  sim::Duration on_left_ = 0;  // remaining ON-phase time (Bursty)
  sim::Duration phase_left_ = 0;  // remaining current-phase time (Diurnal)
  bool in_peak_ = false;          // Diurnal phase flag (first toggle -> peak)
  sim::Duration peak_time_ = 0;   // generated time per phase (Diurnal)
  sim::Duration trough_time_ = 0;
  double exp_sample(double mean);
};

/// Kernel arguments for the synthetic service kernel: pure cycle charges.
struct ServiceArgs {
  double compute_cycles = 0.0;
  double stall_cycles = 0.0;
};

/// The synthetic serving kernel: charges ServiceArgs to the pipeline.
gpu::KernelCoro service_kernel(gpu::WarpCtx& ctx);

/// Shape of synthesized requests.
struct RequestProfile {
  int threads_per_task = 128;
  double compute_cycles = 6000.0;
  double stall_cycles = 12000.0;
  /// Heavy tail: this fraction of requests carries `heavy_multiplier` x the
  /// nominal service demand (the skewed scenario where load-aware placement
  /// beats round-robin).
  double heavy_fraction = 0.0;
  double heavy_multiplier = 16.0;
  std::int64_t h2d_bytes = 4096;
  std::int64_t d2h_bytes = 1024;
  /// >0: draw data_key from this many distinct keys (affinity traffic);
  /// 0 leaves requests unkeyed.
  int num_keys = 0;
  sim::Duration slo = 0;
  /// QoS class stamped on every synthesized request (see sched/policy.h).
  sched::Class cls = sched::Class::kStandard;
};

/// Synthesizes request `index` of the profile. The per-request randomness is
/// hashed from (seed, index), so requests are reproducible independent of
/// generation order.
Request synth_request(const RequestProfile& p, std::uint64_t seed, int index);

}  // namespace pagoda::cluster
