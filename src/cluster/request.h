// One serving request: a narrow task plus the cluster-level envelope the
// Pagoda runtime itself never sees (arrival time, data key, SLO deadline).
#pragma once

#include <cstdint>

#include "common/time_types.h"
#include "pagoda/task_table.h"
#include "sched/policy.h"

namespace pagoda::cluster {

struct Request {
  runtime::TaskParams params;
  /// Input/output copy volumes charged on the chosen node's data streams.
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  /// Identity of the request's input data. Requests sharing a key read the
  /// same buffer; a node that already holds it resident skips the H2D copy.
  /// 0 = unkeyed (always copied, never cached).
  std::uint64_t data_key = 0;
  /// Attained-latency deadline measured from arrival; 0 = no SLO.
  sim::Duration slo = 0;
  /// Caller-supplied service-demand estimate in abstract work units (for a
  /// synthetic request: warps x relative cycle scale). Real serving front
  /// ends know this hint too (batch size, sequence length, image area);
  /// load-aware placement uses it to see work skew that per-node request
  /// counts cannot.
  double cost = 1.0;
  /// QoS service class (see sched/policy.h). Drives admission/claim order
  /// under non-fifo policies, and graceful degradation: when cluster
  /// capacity shrinks (a node died and its work is being re-absorbed),
  /// batch-class requests are shed on first failure instead of retried.
  sched::Class cls = sched::Class::kStandard;
  /// Caller-assigned index (workload task id, packet number, ...).
  int index = -1;
};

}  // namespace pagoda::cluster
