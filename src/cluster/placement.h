// Pluggable placement policies: given the cluster's current load, pick the
// GPU a request runs on. Decisions happen at admission time (arrival order),
// are purely functions of simulation state, and therefore replay
// byte-identically for a fixed seed — the policy-determinism test pins this.
//
//   round-robin        — rotate over nodes, blind to load. The baseline.
//   least-outstanding  — fewest placed-but-unfinished requests; ties break
//                        to the lowest node index.
//   least-loaded       — occupancy-aware: executor-warp busy fraction plus
//                        outstanding work normalized by the node's executor
//                        capacity (so a Tesla K40 absorbs proportionally
//                        less than a Titan X). Reads the same passive
//                        MasterKernel signals the obs::Collector samples.
//   data-affinity      — route keyed requests to the node already holding
//                        their input (else a stable home node), avoiding
//                        redundant H2D copies; falls back to
//                        least-outstanding when the target saturates or the
//                        request is unkeyed.
//   power-cap          — least-loaded, but refuses admission outright (-1,
//                        a deterministic drop) while instantaneous fleet
//                        power sits at/above the configured watt budget:
//                        admission backpressure as the cap enforcement of
//                        last resort. Uncapped (or with the power plane
//                        off) it behaves exactly like least-loaded.
//   energy-min         — pack onto the fewest awake nodes: lowest-index
//                        eligible node with TaskTable headroom wins, so the
//                        governor can drain + sleep the idle tail of the
//                        fleet. Reduces to lowest-index packing when the
//                        power plane is off.
//   vres-aware         — virtual-resource headroom: maximize virtual slot
//                        headroom (floor(oversub x TaskTable) minus
//                        outstanding) discounted by the node's current
//                        spill-backing-store depth, so oversubscribed nodes
//                        absorb extra work until spill pressure makes a
//                        cooler peer cheaper. Reduces to least-outstanding
//                        headroom at oversub == 1.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "cluster/cluster.h"
#include "cluster/request.h"

namespace pagoda::cluster {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string_view name() const = 0;
  /// Node index for this request, or -1 when no eligible (healthy) node
  /// exists — the dispatcher then drops/sheds. Must not mutate the cluster.
  virtual int pick(const Cluster& cluster, const Request& r) = 0;
  /// Fleet-watt budget for power-aware policies (0 = uncapped). The
  /// dispatcher forwards --power-cap-watts here; a no-op for every policy
  /// that doesn't read fleet power.
  virtual void set_power_cap(double) {}
};

/// Factory by policy name; nullptr for an unknown name.
std::unique_ptr<PlacementPolicy> make_policy(std::string_view name);

/// Every valid `make_policy` name (for CLI help and sweeps).
std::span<const std::string_view> all_policy_names();

}  // namespace pagoda::cluster
