// Pluggable placement policies: given the cluster's current load, pick the
// GPU a request runs on. Decisions happen at admission time (arrival order),
// are purely functions of simulation state, and therefore replay
// byte-identically for a fixed seed — the policy-determinism test pins this.
//
//   round-robin        — rotate over nodes, blind to load. The baseline.
//   least-outstanding  — fewest placed-but-unfinished requests; ties break
//                        to the lowest node index.
//   least-loaded       — occupancy-aware: executor-warp busy fraction plus
//                        outstanding work normalized by the node's executor
//                        capacity (so a Tesla K40 absorbs proportionally
//                        less than a Titan X). Reads the same passive
//                        MasterKernel signals the obs::Collector samples.
//   data-affinity      — route keyed requests to the node already holding
//                        their input (else a stable home node), avoiding
//                        redundant H2D copies; falls back to
//                        least-outstanding when the target saturates or the
//                        request is unkeyed.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "cluster/cluster.h"
#include "cluster/request.h"

namespace pagoda::cluster {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string_view name() const = 0;
  /// Node index for this request, or -1 when no eligible (healthy) node
  /// exists — the dispatcher then drops/sheds. Must not mutate the cluster.
  virtual int pick(const Cluster& cluster, const Request& r) = 0;
};

/// Factory by policy name; nullptr for an unknown name.
std::unique_ptr<PlacementPolicy> make_policy(std::string_view name);

/// Every valid `make_policy` name (for CLI help and sweeps).
std::span<const std::string_view> all_policy_names();

}  // namespace pagoda::cluster
