// Multi-GPU cluster: N simulated devices — possibly heterogeneous — each
// with its own PCIe link, MasterKernel and Pagoda runtime, all driven by ONE
// Simulation so cross-device timing stays globally ordered and deterministic.
//
// A GpuNode is the dispatcher's unit of placement. Besides the device and
// runtime it carries:
//  * dedicated H2D/D2H data streams (task inputs/outputs never contend with
//    the runtime's TaskTable stream for issue order, only for wire time);
//  * load counters the placement policies read (outstanding request count,
//    outstanding service demand, executor-warp busy fraction — the same
//    passive signals the obs::Collector samplers record);
//  * a bounded LRU cache of resident data keys, the substrate for the
//    data-affinity policy (a hit skips the request's H2D input copy).
//
// The Cluster owns the nodes and nothing else: arrival processes, placement
// and SLO accounting live in dispatcher.h / traffic.h / placement.h.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/session.h"
#include "engine/stage_pipeline.h"
#include "fault/fault.h"
#include "gpu/device.h"
#include "gpu/stream.h"
#include "host/host_api.h"
#include "pagoda/master_kernel.h"
#include "pagoda/runtime.h"
#include "pcie/pcie_bus.h"
#include "power/power_model.h"
#include "sim/simulation.h"

namespace pagoda::cluster {

/// Per-device configuration. Each node gets its own PCIe link (its own
/// slot), so a copy bound on one device never steals wire time from another.
struct NodeConfig {
  gpu::GpuSpec spec = gpu::GpuSpec::titan_x();
  pcie::PcieConfig pcie{};
  host::HostCosts host{};
  runtime::PagodaConfig pagoda{};
  /// Data keys the node can hold resident (LRU eviction); 0 disables the
  /// affinity cache entirely.
  int cache_keys = 64;
};

class GpuNode {
 public:
  GpuNode(sim::Simulation& sim, const NodeConfig& cfg, int index);
  GpuNode(const GpuNode&) = delete;
  GpuNode& operator=(const GpuNode&) = delete;

  int index() const { return index_; }
  /// The simulation shard this node's events live on (kHostShard when the
  /// simulation runs unsharded). Recorded at construction: the Cluster
  /// builds node i inside ShardScope(sim, 1 + i).
  sim::ShardId shard() const { return shard_; }
  /// The node's engine session (shares the cluster-wide Simulation). The
  /// cluster driver attaches observability through it, per node prefix.
  engine::Session& session() { return session_; }
  gpu::Device& device() { return session_.device(); }
  runtime::Runtime& rt() { return session_.rt(); }
  const NodeConfig& config() const { return cfg_; }
  gpu::Stream& h2d_stream() { return pipe_.h2d_stream(0); }
  gpu::Stream& d2h_stream() { return pipe_.d2h_stream(0); }

  // --- load signals for placement policies ------------------------------
  /// Requests placed on this node and not yet finalized (queued for a
  /// TaskTable slot, copying, executing, or draining their output copy).
  int outstanding() const { return outstanding_; }
  /// TaskTable entries on this device — the node's physical admission
  /// capacity. Routed through the runtime's capacity accessor: layers above
  /// src/pagoda never read the table structure directly.
  int capacity() const { return session_.rt().table_capacity(); }
  /// Admission capacity the dispatcher is allowed to oversubscribe: virtual
  /// TaskTable slots = floor(oversub x physical entries). Equals capacity()
  /// at oversub == 1, so un-virtualized runs are untouched.
  int virtual_capacity() const {
    return static_cast<int>(static_cast<double>(capacity()) *
                            session_.rt().config().oversub);
  }
  /// Bytes of virtual shared memory currently spilled to the backing store —
  /// the spill-pressure signal the vres-aware placement policy reads. 0
  /// unless the node runs with oversub > 1.
  std::int64_t vres_spilled_bytes() const {
    return session_.rt().master_kernel().vres_spilled_bytes_in_use();
  }
  /// Executor warps across all MTBs (relative device muscle; a Tesla K40
  /// node has fewer than a Titan X node).
  int executor_warp_capacity() const {
    return session_.rt().master_kernel().num_mtbs() *
           runtime::MasterKernel::kExecutorWarps;
  }
  /// Fraction of executor warps currently running task work — the same
  /// passive read the obs sampler records as `pagoda.executors.busy`.
  double busy_executor_fraction() const {
    return static_cast<double>(
               session_.rt().master_kernel().busy_executor_warps()) /
           static_cast<double>(executor_warp_capacity());
  }

  /// Sum of the service-demand estimates (Request::cost) of outstanding
  /// requests — the work-aware companion to outstanding().
  double outstanding_work() const { return outstanding_work_; }

  // --- dispatcher bookkeeping -------------------------------------------
  void add_outstanding(double cost) {
    outstanding_ += 1;
    outstanding_work_ += cost;
  }
  void remove_outstanding(double cost) {
    outstanding_ -= 1;
    outstanding_work_ -= cost;
    completed_ += 1;
  }
  /// Un-counts an attempt that failed (fault/timeout/crash) without
  /// recording a completion — load signals shrink, completed() does not grow.
  void abandon_outstanding(double cost) {
    outstanding_ -= 1;
    outstanding_work_ -= cost;
  }
  std::int64_t completed() const { return completed_; }

  // --- fault plane ------------------------------------------------------
  /// Injection-side ground truth: false once a crash fault fired. A dead
  /// device keeps simulating internally (the MasterKernel is unreachable,
  /// not paused) but nothing it produces reaches the host — the dispatcher
  /// swallows its completions until the watchdog notices and recovery runs.
  bool alive() const { return alive_; }
  void set_alive(bool v) {
    if (!v && alive_) {
      // Crash: snapshot the host-visible liveness signature. The device
      // keeps simulating, but the host's reads of its counters freeze here
      // — exactly the flatline the watchdog detects.
      frozen_heartbeat_ = session_.rt().master_kernel().heartbeats();
      frozen_completed_ = session_.rt().master_kernel().tasks_completed();
    }
    alive_ = v;
  }

  /// Detection-side view maintained by the dispatcher (watchdog verdicts +
  /// administrative drain). Placement only uses this: between crash and
  /// detection a node still *looks* healthy and keeps receiving requests,
  /// which then fail via their task deadline — exactly the real-world gap.
  fault::NodeHealth health() const { return health_; }
  void set_health(fault::NodeHealth h) { health_ = h; }
  /// Whether placement may target this node.
  bool eligible() const { return health_ == fault::NodeHealth::kHealthy; }

  /// MasterKernel liveness signature for the watchdog (pure host-side read;
  /// frozen at the crash instant while the node is down).
  std::int64_t heartbeat() const {
    return alive_ ? session_.rt().master_kernel().heartbeats()
                  : frozen_heartbeat_;
  }
  std::int64_t visible_completed() const {
    return alive_ ? session_.rt().master_kernel().tasks_completed()
                  : frozen_completed_;
  }

  // --- power plane (attached by the dispatcher when --power is set) ------
  /// The node's power model; nullptr when the power plane is off. All state
  /// transitions go through src/power (the governor) — everything here and
  /// in placement only READS watts/energy/residency and wake latencies.
  power::NodePower* power() { return power_.get(); }
  const power::NodePower* power() const { return power_.get(); }
  void attach_power(std::unique_ptr<power::NodePower> p) {
    power_ = std::move(p);
  }

  // --- data-affinity cache ----------------------------------------------
  /// Whether `key` is resident. Pure read (placement probes every node per
  /// request; observation must not mutate recency).
  bool cache_contains(std::uint64_t key) const {
    return resident_index_.count(key) > 0;
  }
  /// Marks `key` resident; when full, evicts the least-recently-used key in
  /// O(1) via the intrusive list index. Inserting a resident key promotes
  /// it to most-recently-used. No-op when the cache is disabled.
  void cache_insert(std::uint64_t key);
  /// Promotes a resident key to most-recently-used (called on a read hit).
  /// No-op when absent.
  void cache_touch(std::uint64_t key);
  /// Drops every resident key (node-death recovery: the data died with it).
  void cache_clear();

 private:
  int index_;
  NodeConfig cfg_;
  sim::ShardId shard_;
  engine::Session session_;
  engine::StagePipeline pipe_;  // the node's dedicated H2D/D2H data streams
  std::unique_ptr<power::NodePower> power_;  // nullptr = power plane off
  bool alive_ = true;
  fault::NodeHealth health_ = fault::NodeHealth::kHealthy;
  std::int64_t frozen_heartbeat_ = 0;
  std::int64_t frozen_completed_ = 0;
  int outstanding_ = 0;
  double outstanding_work_ = 0.0;
  std::int64_t completed_ = 0;
  /// LRU order, front = least recently used; resident_index_ holds each
  /// key's list position so promotion and eviction are O(1) splices.
  std::list<std::uint64_t> resident_lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      resident_index_;
};

class Cluster {
 public:
  Cluster(sim::Simulation& sim, const std::vector<NodeConfig>& nodes);

  /// Launches every node's MasterKernel / terminates them all.
  void start();
  void shutdown();

  sim::Simulation& sim() { return *sim_; }
  const sim::Simulation& sim() const { return *sim_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  GpuNode& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  const GpuNode& node(int i) const {
    return *nodes_[static_cast<std::size_t>(i)];
  }

  /// Sum of per-node executor-warp busy integrals (warp·seconds); cluster
  /// occupancy is this / (elapsed · Σ executor capacity).
  double executor_busy_warp_seconds() const;
  int total_executor_warps() const;

  /// n identical nodes (the homogeneous scaling-sweep configuration).
  static std::vector<NodeConfig> homogeneous(int n, NodeConfig proto = {});

 private:
  sim::Simulation* sim_;
  std::vector<std::unique_ptr<GpuNode>> nodes_;
};

}  // namespace pagoda::cluster
