#include "cluster/placement.h"

#include <array>

#include "common/rng.h"

namespace pagoda::cluster {
namespace {

/// Lowest-index *eligible* node minimizing outstanding requests; -1 when the
/// whole fleet is dead/draining. With every node healthy (the fault-free
/// case) this reduces exactly to the original scan from node 0.
int least_outstanding_node(const Cluster& cluster) {
  int best = -1;
  for (int i = 0; i < cluster.size(); ++i) {
    if (!cluster.node(i).eligible()) continue;
    if (best < 0 ||
        cluster.node(i).outstanding() < cluster.node(best).outstanding()) {
      best = i;
    }
  }
  return best;
}

class RoundRobin final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "round-robin"; }
  int pick(const Cluster& cluster, const Request&) override {
    // Skip ineligible nodes, at most one full rotation. The cursor advances
    // once per probe so a fault-free pick is byte-identical to the original.
    for (int probes = 0; probes < cluster.size(); ++probes) {
      const int n = next_++ % cluster.size();
      if (cluster.node(n).eligible()) return n;
    }
    return -1;
  }

 private:
  int next_ = 0;
};

class LeastOutstanding final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "least-outstanding"; }
  int pick(const Cluster& cluster, const Request&) override {
    return least_outstanding_node(cluster);
  }
};

/// Current executor occupancy plus outstanding service demand per unit of
/// executor capacity. Demand uses the requests' cost estimates, not their
/// count: under a skewed workload a node stuck behind one 100x-wide
/// request scores far above a peer holding the same number of small ones,
/// which a pure count (least-outstanding) cannot see.
double loaded_score(const GpuNode& node) {
  return node.busy_executor_fraction() +
         node.outstanding_work() /
             static_cast<double>(node.executor_warp_capacity());
}

/// Lowest-index eligible node minimizing loaded_score; -1 when none.
int least_loaded_node(const Cluster& cluster) {
  int best = -1;
  double best_score = 0.0;
  for (int i = 0; i < cluster.size(); ++i) {
    if (!cluster.node(i).eligible()) continue;
    const double s = loaded_score(cluster.node(i));
    if (best < 0 || s < best_score) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

class LeastLoaded final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "least-loaded"; }
  int pick(const Cluster& cluster, const Request&) override {
    return least_loaded_node(cluster);
  }
};

class DataAffinity final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "data-affinity"; }
  int pick(const Cluster& cluster, const Request& r) override {
    if (r.data_key == 0) return least_outstanding_node(cluster);
    // A node already holding the data wins outright (no copy at all).
    for (int i = 0; i < cluster.size(); ++i) {
      if (cluster.node(i).eligible() &&
          cluster.node(i).cache_contains(r.data_key)) {
        return i;
      }
    }
    // Cold key: a stable home node, so future requests for the same key hit.
    const int home =
        static_cast<int>(hash_index(0xAFF1D17AULL, r.data_key) %
                         static_cast<std::uint64_t>(cluster.size()));
    // Saturated or unhealthy home: spill to the least-outstanding node
    // rather than queue behind a full TaskTable or target a dead device (the
    // spill target caches the key, so the key's home effectively migrates).
    if (!cluster.node(home).eligible() ||
        cluster.node(home).outstanding() >= cluster.node(home).capacity()) {
      return least_outstanding_node(cluster);
    }
    return home;
  }
};

class PowerCapPolicy final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "power-cap"; }
  void set_power_cap(double watts) override { cap_watts_ = watts; }
  int pick(const Cluster& cluster, const Request&) override {
    // Admission backpressure: while instantaneous fleet power sits at or
    // above the budget, refuse the request outright (a deterministic drop)
    // rather than add load the cap cannot absorb. Pure read — watts() is
    // an extrapolating accessor, so probing never perturbs the run.
    if (cap_watts_ > 0.0) {
      const sim::Time now = cluster.sim().now();
      double fleet_watts = 0.0;
      bool metered = false;
      for (int i = 0; i < cluster.size(); ++i) {
        if (const power::NodePower* np = cluster.node(i).power()) {
          fleet_watts += np->watts(now);
          metered = true;
        }
      }
      if (metered && fleet_watts >= cap_watts_) return -1;
    }
    return least_loaded_node(cluster);
  }

 private:
  double cap_watts_ = 0.0;  // 0 = uncapped: behaves like least-loaded
};

class EnergyMin final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "energy-min"; }
  int pick(const Cluster& cluster, const Request&) override {
    // Pack onto the fewest awake nodes: the lowest-index eligible node with
    // TaskTable headroom wins, leaving the fleet's tail idle so the
    // governor can drain + sleep it. Sleeping nodes are draining and thus
    // ineligible until the governor reinstates them.
    for (int i = 0; i < cluster.size(); ++i) {
      const GpuNode& node = cluster.node(i);
      if (!node.eligible()) continue;
      if (node.outstanding() < node.capacity()) return i;
    }
    // Every eligible node is saturated: queue on the least backed-up one.
    return least_outstanding_node(cluster);
  }
};

class VresAware final : public PlacementPolicy {
 public:
  std::string_view name() const override { return "vres-aware"; }
  int pick(const Cluster& cluster, const Request&) override {
    // Score = virtual slot headroom minus expected spill cost. Headroom is
    // measured against VIRTUAL capacity (floor(oversub x TaskTable)), so an
    // oversubscribed node keeps absorbing work past its physical table —
    // but each byte it currently holds in the spill backing store predicts
    // reclaim traffic the next resident block will pay, and discounts the
    // node accordingly. At oversub == 1 every node has zero spilled bytes
    // and this reduces to least-outstanding headroom (ties to the lowest
    // index, like every other scan here).
    int best = -1;
    double best_score = 0.0;
    for (int i = 0; i < cluster.size(); ++i) {
      const GpuNode& node = cluster.node(i);
      if (!node.eligible()) continue;
      const double headroom =
          static_cast<double>(node.virtual_capacity() - node.outstanding());
      const double spill_penalty =
          static_cast<double>(node.vres_spilled_bytes()) / kBytesPerSlot;
      const double s = headroom - spill_penalty;
      if (best < 0 || s > best_score) {
        best = i;
        best_score = s;
      }
    }
    return best;
  }

 private:
  /// One virtual slot of headroom offsets this many spilled bytes — a full
  /// MTB arena's worth, i.e. a node drowning in spilled state must hold a
  /// whole arena of backing-store bytes to forfeit one slot of headroom.
  static constexpr double kBytesPerSlot = 32.0 * 1024.0;
};

constexpr std::array<std::string_view, 7> kPolicyNames = {
    "round-robin", "least-outstanding", "least-loaded",
    "data-affinity", "power-cap",        "energy-min",
    "vres-aware"};

}  // namespace

std::unique_ptr<PlacementPolicy> make_policy(std::string_view name) {
  if (name == "round-robin") return std::make_unique<RoundRobin>();
  if (name == "least-outstanding") return std::make_unique<LeastOutstanding>();
  if (name == "least-loaded") return std::make_unique<LeastLoaded>();
  if (name == "data-affinity") return std::make_unique<DataAffinity>();
  if (name == "power-cap") return std::make_unique<PowerCapPolicy>();
  if (name == "energy-min") return std::make_unique<EnergyMin>();
  if (name == "vres-aware") return std::make_unique<VresAware>();
  return nullptr;
}

std::span<const std::string_view> all_policy_names() { return kPolicyNames; }

}  // namespace pagoda::cluster
