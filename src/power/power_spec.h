// Power/energy tables for the modeled GPU fleet, in the spirit of the
// cloudsim_eec machine-class format: per-performance-state (P-state) clock
// scales, dynamic energy and static power; per-idle-state (C-state) power and
// wake latencies for SMMs; per-sleep-state (S-state) power and wake latencies
// for whole GpuNodes.
//
// State indexing convention (matches ACPI naming):
//   P0..P3  — P0 fastest (construction clock), deeper = slower + cheaper.
//   C0..C3  — C0 active; deeper = lower idle power, longer wake-up.
//   S0..S3  — S0 awake; deeper = lower node sleep power, longer wake-up.
//
// The plane is strictly opt-in: an empty spec string on the config path means
// no PowerSpec is constructed and no hook is installed anywhere.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "common/time_types.h"

namespace pagoda::power {

inline constexpr int kNumPStates = 4;
inline constexpr int kNumCStates = 4;
inline constexpr int kNumSStates = 4;

struct PowerSpec {
  // --- P-states (per-node DVFS domain across all SMMs) --------------------
  /// Clock/issue-rate multiplier vs the GpuSpec clock. p_clock_scale[0]
  /// must be exactly 1.0 so P0 reproduces the power-off timing bit-exactly.
  std::array<double, kNumPStates> p_clock_scale{1.0, 0.8, 0.6, 0.4};
  /// Dynamic energy per issued warp-instruction (joules). Scales roughly
  /// with V^2 alongside frequency, so deeper P-states are superlinearly
  /// cheaper per unit of work.
  std::array<double, kNumPStates> p_dynamic_joules{1.6e-12, 1.3e-12, 1.0e-12,
                                                   0.8e-12};
  /// SMM static (leakage + clock-tree) power while active (C0), watts.
  std::array<double, kNumPStates> p_static_watts{3.3, 2.8, 2.3, 1.8};

  // --- C-states (per-SMM idle states) -------------------------------------
  /// SMM power while parked in C1..C3 (index 0 unused: C0 power is the
  /// P-state static power above).
  std::array<double, kNumCStates> c_watts{0.0, 1.2, 0.4, 0.1};
  /// Wake-up latency charged before the first issue after leaving C1..C3.
  std::array<sim::Duration, kNumCStates> c_wake{0, sim::microseconds(1),
                                                sim::microseconds(10),
                                                sim::microseconds(50)};

  // --- S-states (whole-node sleep) ----------------------------------------
  /// Uncore/board power while the node is awake, on top of SMM power.
  double node_base_watts = 20.0;
  /// Whole-node power while asleep in S1..S3 (replaces base + all SMMs).
  std::array<double, kNumSStates> s_watts{0.0, 15.0, 5.0, 1.0};
  /// Wake-up latency from S1..S3 back to serving.
  std::array<sim::Duration, kNumSStates> s_wake{0, sim::microseconds(500),
                                                sim::milliseconds(2),
                                                sim::milliseconds(10)};

  /// Deepest (slowest) P-state a governor may select; also the fixed state
  /// of the `static` governor. 0 = always max performance.
  int p_floor = 0;

  /// The built-in Titan-X-flavored table above (TDP-scale ~250 W/node).
  static PowerSpec default_spec() { return PowerSpec{}; }

  /// Parses `--power` grammar: "default" | "default:floor=N" (N in 0..3).
  /// Returns nullopt and fills *error with a one-line message on bad input.
  static std::optional<PowerSpec> parse(std::string_view text,
                                        std::string* error);

  /// Grammar summary for --help / validation errors.
  static const char* grammar() { return "default[:floor=N]  (N in 0..3)"; }
};

}  // namespace pagoda::power
