#include "power/power_model.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pagoda::power {

// --- SmmPower ---------------------------------------------------------------

SmmPower::SmmPower(sim::Simulation& sim, const PowerSpec& spec, gpu::Smm& smm)
    : sim_(&sim), spec_(&spec), smm_(&smm) {
  last_touch_ = sim.now();
  busy_snap_ = smm.pipeline().busy_work_seconds();
  smm.set_issue_wake_gate(
      [this](sim::Time now) { return wake_for_issue(now); });
}

void SmmPower::touch(sim::Time now) {
  PAGODA_CHECK(now >= last_touch_);
  const double dt = sim::to_seconds(now - last_touch_);
  if (dt > 0.0) {
    energy_ += row_watts() * dt;
    if (off_) {
      off_res_ += dt;
    } else if (c_ > 0) {
      c_res_[static_cast<std::size_t>(c_)] += dt;
    } else {
      c0_res_[static_cast<std::size_t>(p_)] += dt;
    }
  }
  const double busy_now = smm_->pipeline().busy_work_seconds();
  const double d_work = busy_now - busy_snap_;
  if (d_work > 0.0) {
    dyn_work_[static_cast<std::size_t>(p_)] += d_work;
    energy_ += d_work * spec_->p_dynamic_joules[static_cast<std::size_t>(p_)];
  }
  busy_snap_ = busy_now;
  last_touch_ = now;
}

void SmmPower::set_p_state(int p, sim::Time now) {
  PAGODA_CHECK(p >= 0 && p < kNumPStates);
  if (p == p_) return;
  touch(now);
  p_ = p;
  ++transitions_;
  // The DVFS domain retimes in-flight issue work at the new rate.
  smm_->set_clock_scale(spec_->p_clock_scale[static_cast<std::size_t>(p)]);
}

bool SmmPower::step_c_deeper(sim::Time now) {
  if (off_ || busy(now)) return false;
  if (c_ + 1 >= kNumCStates) return false;
  touch(now);
  ++c_;
  ++transitions_;
  if (on_edge_ && *on_edge_) (*on_edge_)(now);
  return true;
}

void SmmPower::set_node_asleep(bool asleep, sim::Time now) {
  if (asleep == off_) return;
  touch(now);
  off_ = asleep;
  ++transitions_;
  // NodePower fires the shared edge notification once per node transition.
}

sim::Duration SmmPower::wake_for_issue(sim::Time now) {
  if (off_) return 0;  // node-level S wake-up is charged by the dispatcher
  if (c_ > 0) {
    touch(now);
    const sim::Duration d = spec_->c_wake[static_cast<std::size_t>(c_)];
    c_ = 0;
    ++transitions_;
    // The wake-up window is charged at active (C0) power — the clock tree
    // is already spinning back up.
    wake_until_ = now + d;
    if (on_edge_ && *on_edge_) (*on_edge_)(now);
    return d;
  }
  return wake_until_ > now ? wake_until_ - now : 0;
}

double SmmPower::energy_joules(sim::Time now) const {
  const double dt = sim::to_seconds(now - last_touch_);
  const double d_work = smm_->pipeline().busy_work_seconds() - busy_snap_;
  double e = energy_ + row_watts() * dt;
  if (d_work > 0.0) {
    e += d_work * spec_->p_dynamic_joules[static_cast<std::size_t>(p_)];
  }
  return e;
}

double SmmPower::watts(sim::Time now) const {
  (void)now;
  double w = row_watts();
  if (!off_ && c_ == 0) {
    const sim::PsResource& pipe =
        const_cast<gpu::Smm*>(smm_)->pipeline();
    const double n = static_cast<double>(pipe.active_jobs());
    const double issue_rate =
        std::min(pipe.capacity(), n * pipe.max_job_rate());
    w += issue_rate * spec_->p_dynamic_joules[static_cast<std::size_t>(p_)];
  }
  return w;
}

double SmmPower::c0_residency_seconds(int p, sim::Time now) const {
  double r = c0_res_[static_cast<std::size_t>(p)];
  if (!off_ && c_ == 0 && p == p_) r += sim::to_seconds(now - last_touch_);
  return r;
}

double SmmPower::c_residency_seconds(int c, sim::Time now) const {
  double r = c_res_[static_cast<std::size_t>(c)];
  if (!off_ && c_ == c && c > 0) r += sim::to_seconds(now - last_touch_);
  return r;
}

double SmmPower::off_residency_seconds(sim::Time now) const {
  double r = off_res_;
  if (off_) r += sim::to_seconds(now - last_touch_);
  return r;
}

double SmmPower::issued_work(int p, sim::Time now) const {
  (void)now;
  double w = dyn_work_[static_cast<std::size_t>(p)];
  if (p == p_) {
    const double d = smm_->pipeline().busy_work_seconds() - busy_snap_;
    if (d > 0.0) w += d;
  }
  return w;
}

// --- NodePower --------------------------------------------------------------

NodePower::NodePower(sim::Simulation& sim, const PowerSpec& spec,
                     std::vector<gpu::Smm*> smms)
    : sim_(&sim), spec_(spec) {
  PAGODA_CHECK_MSG(spec_.p_clock_scale[0] == 1.0,
                   "P0 must preserve the construction clock exactly");
  last_touch_ = sim.now();
  smms_.reserve(smms.size());
  for (gpu::Smm* s : smms) {
    auto sp = std::make_unique<SmmPower>(sim, spec_, *s);
    sp->set_edge_hook(&on_transition_);
    smms_.push_back(std::move(sp));
  }
}

void NodePower::touch(sim::Time now) {
  PAGODA_CHECK(now >= last_touch_);
  const double dt = sim::to_seconds(now - last_touch_);
  if (dt > 0.0) {
    uncore_energy_ += uncore_watts() * dt;
    s_res_[static_cast<std::size_t>(s_)] += dt;
  }
  last_touch_ = now;
}

void NodePower::set_p_state(int p) {
  PAGODA_CHECK(p >= 0 && p < kNumPStates);
  if (p == p_) return;
  const sim::Time now = sim_->now();
  touch(now);
  p_ = p;
  ++transitions_;
  for (auto& sp : smms_) sp->set_p_state(p, now);
  notify(now);
}

void NodePower::enter_sleep(int s) {
  PAGODA_CHECK(s >= 1 && s < kNumSStates);
  if (s_ == s) return;
  const sim::Time now = sim_->now();
  touch(now);
  s_ = s;
  ++transitions_;
  for (auto& sp : smms_) sp->set_node_asleep(true, now);
  notify(now);
}

void NodePower::begin_wake() {
  if (s_ == 0) return;
  const sim::Time now = sim_->now();
  touch(now);
  wake_until_ = now + spec_.s_wake[static_cast<std::size_t>(s_)];
  s_ = 0;
  ++transitions_;
  ++wakeups_;
  for (auto& sp : smms_) sp->set_node_asleep(false, now);
  notify(now);
}

double NodePower::energy_joules(sim::Time now) const {
  double e = uncore_energy_ + uncore_watts() * sim::to_seconds(now - last_touch_);
  for (const auto& sp : smms_) e += sp->energy_joules(now);
  return e;
}

double NodePower::watts(sim::Time now) const {
  double w = uncore_watts();
  for (const auto& sp : smms_) w += sp->watts(now);
  return w;
}

double NodePower::s_residency_seconds(int s, sim::Time now) const {
  double r = s_res_[static_cast<std::size_t>(s)];
  if (s == s_) r += sim::to_seconds(now - last_touch_);
  return r;
}

double NodePower::c_residency_seconds(int c, sim::Time now) const {
  double r = 0.0;
  for (const auto& sp : smms_) {
    r += c == 0 ? 0.0 : sp->c_residency_seconds(c, now);
  }
  return r;
}

double NodePower::issued_work(sim::Time now) const {
  double w = 0.0;
  for (const auto& sp : smms_) {
    for (int p = 0; p < kNumPStates; ++p) w += sp->issued_work(p, now);
  }
  return w;
}

double NodePower::issue_capacity() const {
  double c = 0.0;
  for (const auto& sp : smms_) c += sp->issue_capacity();
  return c;
}

std::uint64_t NodePower::transitions() const {
  std::uint64_t t = transitions_;
  for (const auto& sp : smms_) t += sp->transitions();
  return t;
}

void NodePower::set_on_transition(std::function<void(sim::Time)> cb) {
  on_transition_ = std::move(cb);
}

}  // namespace pagoda::power
