#include "power/governor.h"

#include <array>

#include "common/check.h"

namespace pagoda::power {

namespace {

constexpr std::array<std::string_view, 3> kGovernorNames = {"static", "dvfs",
                                                            "powercap"};

// Issue-utilization thresholds for the adaptive step decisions.
constexpr double kStepUpUtil = 0.70;    // above: one P-state faster
constexpr double kStepDownUtil = 0.25;  // below: one P-state deeper
constexpr int kSlaHoldChecks = 4;       // checks pinned at P0 after a warning
constexpr int kSleepState = 3;          // S-state used for parked nodes

}  // namespace

std::span<const std::string_view> all_governor_names() {
  return kGovernorNames;
}

std::optional<GovernorKind> parse_governor(std::string_view name) {
  if (name == "static") return GovernorKind::kStatic;
  if (name == "dvfs") return GovernorKind::kDvfs;
  if (name == "powercap") return GovernorKind::kPowerCap;
  return std::nullopt;
}

std::string_view governor_name(GovernorKind k) {
  return kGovernorNames[static_cast<std::size_t>(k)];
}

std::string_view governor_description(GovernorKind k) {
  switch (k) {
    case GovernorKind::kStatic:
      return "pin every node at the P-state floor; no adaptation";
    case GovernorKind::kDvfs:
      return "issue-utilization DVFS + C-state parking; P0 boost on SLA "
             "warnings";
    case GovernorKind::kPowerCap:
      return "dvfs plus a fleet-watt ceiling (emptiest node steps deeper)";
  }
  return "";
}

PowerGovernor::PowerGovernor(sim::Simulation& sim, PlaneConfig cfg,
                             FleetControl& fleet)
    : sim_(&sim), cfg_(std::move(cfg)), fleet_(&fleet) {
  PAGODA_CHECK_MSG(cfg_.enabled(), "governor requires a power spec");
  PAGODA_CHECK(cfg_.period > 0);
  last_issued_.assign(static_cast<std::size_t>(fleet_->num_nodes()), 0.0);
}

void PowerGovernor::start() {
  PAGODA_CHECK_MSG(!started_, "governor started twice");
  started_ = true;
  // Initial P-state: the static governor pins the floor; adaptive governors
  // start at P0 and step down as utilization allows.
  const int p0 = cfg_.governor == GovernorKind::kStatic ? deepest_p() : 0;
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    fleet_->node_power(i)->set_p_state(p0);
  }
  // A static governor without sleep management needs no control loop at all.
  if (cfg_.governor == GovernorKind::kStatic && !cfg_.manage_sleep) return;
  last_check_ = sim_->now();
  schedule_tick();
}

void PowerGovernor::schedule_tick() {
  sim_->after(cfg_.period, [this] {
    if (fleet_->idle()) return;  // stream closed + drained: stop for good
    periodic_check(sim_->now());
    schedule_tick();
  });
}

void PowerGovernor::on_sla_warning(sim::Time now) {
  (void)now;
  ++stats_.sla_warnings;
  if (cfg_.governor == GovernorKind::kStatic) return;
  sla_hold_ = kSlaHoldChecks;
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    NodePower* np = fleet_->node_power(i);
    if (!np->asleep()) np->set_p_state(0);
  }
}

void PowerGovernor::periodic_check(sim::Time now) {
  ++stats_.checks;
  if (cfg_.governor != GovernorKind::kStatic) check_dvfs(now);
  if (cfg_.governor == GovernorKind::kPowerCap && cfg_.cap_watts > 0.0) {
    check_power_cap(now);
  }
  if (cfg_.manage_sleep) check_sleep(now);
  if (sla_hold_ > 0) --sla_hold_;
  last_check_ = now;
}

void PowerGovernor::check_dvfs(sim::Time now) {
  const double dt = sim::to_seconds(now - last_check_);
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    NodePower* np = fleet_->node_power(i);
    const double issued = np->issued_work(now);
    const double delta = issued - last_issued_[static_cast<std::size_t>(i)];
    last_issued_[static_cast<std::size_t>(i)] = issued;
    if (np->asleep()) continue;
    // C-state parking: every idle SMM steps one level deeper per check; the
    // issue wake gate pops it back to C0 (charging the wake-up latency) the
    // moment work arrives.
    for (int s = 0; s < np->num_smms(); ++s) {
      np->smm_power(s).step_c_deeper(now);
    }
    if (dt <= 0.0) continue;
    const double cap = np->issue_capacity();
    const double util = cap > 0.0 ? delta / (dt * cap) : 0.0;
    const int p = np->p_state();
    if (util > kStepUpUtil && p > 0) {
      np->set_p_state(p - 1);
    } else if (util < kStepDownUtil && p < deepest_p() && sla_hold_ == 0) {
      np->set_p_state(p + 1);
    }
  }
}

void PowerGovernor::check_power_cap(sim::Time now) {
  // While the fleet exceeds the cap, step the awake node with the least
  // outstanding work (ties to the lowest index) one P-state deeper.
  while (fleet_watts(now) > cfg_.cap_watts) {
    int victim = -1;
    for (int i = 0; i < fleet_->num_nodes(); ++i) {
      NodePower* np = fleet_->node_power(i);
      if (np->asleep() || np->p_state() >= deepest_p()) continue;
      if (victim < 0 ||
          fleet_->node_outstanding(i) < fleet_->node_outstanding(victim)) {
        victim = i;
      }
    }
    if (victim < 0) break;  // everyone already at the floor
    fleet_->node_power(victim)->set_p_state(
        fleet_->node_power(victim)->p_state() + 1);
  }
}

void PowerGovernor::check_sleep(sim::Time now) {
  (void)now;
  const int backlog = fleet_->queued_backlog();
  int awake = 0;
  int lowest_awake = -1;
  std::int64_t awake_free_slots = 0;
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    if (fleet_->node_power(i)->asleep()) continue;
    ++awake;
    if (lowest_awake < 0) lowest_awake = i;
    if (fleet_->node_eligible(i)) {
      awake_free_slots += fleet_->node_free_slots(i);
    }
  }
  // Wake: queued work with zero awake headroom -> bring back the
  // lowest-index sleeper. Its S->active latency lands on the waiting
  // requests as the power.wakeup trace phase.
  if (backlog > 0 && awake_free_slots == 0) {
    for (int i = 0; i < fleet_->num_nodes(); ++i) {
      NodePower* np = fleet_->node_power(i);
      if (!np->asleep()) continue;
      np->begin_wake();
      fleet_->restore_node(i);
      ++stats_.nodes_woken;
      return;  // one node per check: ramp deterministically
    }
    return;
  }
  // Sleep: with no backlog, park every idle surplus node (highest index
  // first), always keeping the lowest-index node awake.
  if (backlog > 0) return;
  for (int i = fleet_->num_nodes() - 1; i >= 0 && awake > 1; --i) {
    NodePower* np = fleet_->node_power(i);
    if (np->asleep() || i == lowest_awake) continue;
    if (fleet_->node_outstanding(i) > 0) continue;
    fleet_->quiesce_node(i);
    np->enter_sleep(kSleepState);
    ++stats_.nodes_slept;
    --awake;
  }
}

void sleep_drained_node(FleetControl& fleet, int node, int s_state) {
  NodePower* np = fleet.node_power(node);
  PAGODA_CHECK_MSG(np != nullptr, "sleep verb on a node without a power model");
  PAGODA_CHECK_MSG(fleet.node_outstanding(node) == 0,
                   "sleep verb on a node still holding work: drain it first");
  np->enter_sleep(s_state);
}

void wake_node(FleetControl& fleet, int node) {
  NodePower* np = fleet.node_power(node);
  PAGODA_CHECK_MSG(np != nullptr, "wake verb on a node without a power model");
  np->begin_wake();
  fleet.restore_node(node);
}

bool node_asleep(FleetControl& fleet, int node) {
  const NodePower* np = fleet.node_power(node);
  return np != nullptr && np->asleep();
}

double PowerGovernor::fleet_watts(sim::Time now) const {
  double w = 0.0;
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    w += fleet_->node_power(i)->watts(now);
  }
  return w;
}

}  // namespace pagoda::power
