#include "power/power_spec.h"

namespace pagoda::power {

namespace {

bool parse_floor(std::string_view text, int* out) {
  if (text.empty() || text.size() > 1) return false;
  const char c = text[0];
  if (c < '0' || c > '9') return false;
  const int v = c - '0';
  if (v >= kNumPStates) return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<PowerSpec> PowerSpec::parse(std::string_view text,
                                          std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<PowerSpec> {
    if (error) *error = why + " (grammar: " + grammar() + ")";
    return std::nullopt;
  };
  std::string_view head = text;
  std::string_view rest;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    head = text.substr(0, colon);
    rest = text.substr(colon + 1);
  }
  if (head != "default") {
    return fail("unknown power spec '" + std::string(head) + "'");
  }
  PowerSpec spec = default_spec();
  if (!rest.empty() || text.find(':') != std::string_view::npos) {
    constexpr std::string_view kFloor = "floor=";
    if (rest.substr(0, kFloor.size()) != kFloor ||
        !parse_floor(rest.substr(kFloor.size()), &spec.p_floor)) {
      return fail("bad power spec option '" + std::string(rest) + "'");
    }
  }
  return spec;
}

}  // namespace pagoda::power
