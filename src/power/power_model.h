// Edge-integrated power/energy model for one SMM and one GpuNode.
//
// Accounting follows the PsResource discipline: every *state transition*
// charges the elapsed interval to the outgoing state (touch), while every
// *read* extrapolates to `now` without mutating — so merely observing a run
// (collector samples, placement probes) cannot perturb its event stream.
//
// Energy is accumulated incrementally at each edge AND independently
// decomposable from the exported residency/issue tables:
//
//   node energy == Σ_s  s_residency[s]   · s_watts[s]          (asleep)
//               +  awake_residency       · node_base_watts     (uncore)
//               +  Σ_smm Σ_p c0_residency[p] · p_static_watts[p]
//               +  Σ_smm Σ_{c>0} c_residency[c] · c_watts[c]
//               +  Σ_smm Σ_p issued_work[p]    · p_dynamic_joules[p]
//
// tests/power_test.cpp pins this conservation invariant across seeds,
// including mid-window transitions.
//
// State mutation discipline: only this library (governor included) may move
// P/C/S states — tools/check.sh greps the rest of the tree for the mutator
// names. Everything outside reads watts/energy/residency or the wake gates.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/smm.h"
#include "power/power_spec.h"
#include "sim/simulation.h"

namespace pagoda::power {

/// Power state of one SMM: a P-state (shared, per-node DVFS domain), a
/// C-state (private idle depth), and an "off" override while the node
/// sleeps. Installs itself as the Smm's issue wake gate so leaving C1..C3
/// charges the configured wake-up latency on the sim clock.
class SmmPower {
 public:
  SmmPower(sim::Simulation& sim, const PowerSpec& spec, gpu::Smm& smm);

  int p_state() const { return p_; }
  int c_state() const { return c_; }
  bool node_asleep() const { return off_; }

  /// Pipeline has queued work, or a C-state wake-up is still in flight.
  bool busy(sim::Time now) const {
    return smm_->pipeline().active_jobs() > 0 || wake_until_ >= now;
  }

  // --- governor-side mutations (src/power only; see layering gate) --------
  void set_p_state(int p, sim::Time now);
  /// Parks one level deeper (C0->C1->C2->C3). Refused while busy or off.
  bool step_c_deeper(sim::Time now);
  /// Node-sleep override: while set, this SMM draws 0 W (the node-level
  /// S-state power covers the whole package).
  void set_node_asleep(bool asleep, sim::Time now);

  /// The Smm issue gate: on the first issue out of C1..C3, transitions to
  /// C0 and returns the wake-up latency to charge; returns the remaining
  /// latency while a wake-up is already in flight, else 0.
  sim::Duration wake_for_issue(sim::Time now);

  // --- read-only accounting (extrapolating, non-mutating) -----------------
  double energy_joules(sim::Time now) const;
  double watts(sim::Time now) const;  // static row + instantaneous dynamic
  /// Seconds spent active (C0) at P-state p.
  double c0_residency_seconds(int p, sim::Time now) const;
  /// Seconds spent parked in C-state c (c >= 1).
  double c_residency_seconds(int c, sim::Time now) const;
  /// Seconds spent powered off under node sleep.
  double off_residency_seconds(sim::Time now) const;
  /// Warp-instructions issued while at P-state p.
  double issued_work(int p, sim::Time now) const;
  /// Issue capacity (warp-instructions/second) at the current P-state.
  double issue_capacity() const { return smm_->pipeline().capacity(); }
  std::uint64_t transitions() const { return transitions_; }

  /// Wired by the owning NodePower: points at its on_transition callback so
  /// C-state edges (wake-ups, deeper parks) fire the same edge sampler.
  void set_edge_hook(const std::function<void(sim::Time)>* hook) {
    on_edge_ = hook;
  }

 private:
  /// Charges [last_touch_, now] to the current state row and attributes the
  /// pipeline's issue delta to the current P-state. Called at every edge.
  void touch(sim::Time now);
  double row_watts() const {
    if (off_) return 0.0;
    if (c_ > 0) return spec_->c_watts[static_cast<std::size_t>(c_)];
    return spec_->p_static_watts[static_cast<std::size_t>(p_)];
  }

  sim::Simulation* sim_;
  const PowerSpec* spec_;
  gpu::Smm* smm_;

  int p_ = 0;
  int c_ = 0;
  bool off_ = false;
  sim::Time wake_until_ = -1;  // C-state wake-up in flight until this time
  sim::Time last_touch_ = 0;

  double energy_ = 0.0;  // joules charged through last_touch_
  double busy_snap_ = 0.0;  // pipeline busy_work_seconds at last touch
  std::array<double, kNumPStates> c0_res_{};   // active seconds per P
  std::array<double, kNumCStates> c_res_{};    // parked seconds per C (c>=1)
  double off_res_ = 0.0;                       // node-sleep seconds
  std::array<double, kNumPStates> dyn_work_{};  // issued work per P
  std::uint64_t transitions_ = 0;
  const std::function<void(sim::Time)>* on_edge_ = nullptr;
};

/// Power state of one GpuNode: the per-node DVFS domain (one P-state across
/// all SMMs), the node S-state, and the uncore energy account. Owns one
/// SmmPower per SMM.
class NodePower {
 public:
  NodePower(sim::Simulation& sim, const PowerSpec& spec,
            std::vector<gpu::Smm*> smms);

  const PowerSpec& spec() const { return spec_; }
  int p_state() const { return p_; }
  int s_state() const { return s_; }
  bool asleep() const { return s_ > 0; }
  int num_smms() const { return static_cast<int>(smms_.size()); }
  SmmPower& smm_power(int i) { return *smms_[static_cast<std::size_t>(i)]; }
  const SmmPower& smm_power(int i) const {
    return *smms_[static_cast<std::size_t>(i)];
  }

  // --- governor-side mutations (src/power only) ---------------------------
  /// Moves the whole DVFS domain; rescales every SMM issue pipeline and the
  /// stall clock. p is clamped to [0, spec.p_floor] by callers.
  void set_p_state(int p);
  /// Puts the node to sleep in S-state s (1..3). The caller must have
  /// drained it (no outstanding work) first.
  void enter_sleep(int s);
  /// Starts the S->S0 wake-up; until it completes, wake_remaining() reports
  /// the residual latency the dispatcher charges to waiting requests.
  void begin_wake();

  /// Residual S-state wake-up latency at `now` (0 when awake and settled).
  sim::Duration wake_remaining(sim::Time now) const {
    return wake_until_ > now ? wake_until_ - now : 0;
  }

  // --- read-only accounting (extrapolating, non-mutating) -----------------
  double energy_joules(sim::Time now) const;
  double watts(sim::Time now) const;
  /// Seconds awake (s == 0) or asleep in S-state s (s >= 1).
  double s_residency_seconds(int s, sim::Time now) const;
  /// Per-node totals over all SMMs.
  double c_residency_seconds(int c, sim::Time now) const;
  double issued_work(sim::Time now) const;
  /// Sum of SMM issue capacities at the current P-state (for utilization).
  double issue_capacity() const;
  std::uint64_t transitions() const;
  std::uint64_t wakeups() const { return wakeups_; }

  /// Fired (at the transition edge) on every P/S change and every SmmPower
  /// C change, AFTER the state moved — the dispatcher points this at the
  /// collector's edge sampler so idle-residency windows are cut exactly at
  /// the edges.
  void set_on_transition(std::function<void(sim::Time)> cb);

 private:
  void touch(sim::Time now);
  void notify(sim::Time now) {
    if (on_transition_) on_transition_(now);
  }
  double uncore_watts() const {
    return s_ > 0 ? spec_.s_watts[static_cast<std::size_t>(s_)]
                  : spec_.node_base_watts;
  }

  sim::Simulation* sim_;
  PowerSpec spec_;
  std::vector<std::unique_ptr<SmmPower>> smms_;

  int p_ = 0;
  int s_ = 0;
  sim::Time wake_until_ = -1;
  sim::Time last_touch_ = 0;
  double uncore_energy_ = 0.0;
  std::array<double, kNumSStates> s_res_{};  // [0] = awake seconds
  std::uint64_t transitions_ = 0;
  std::uint64_t wakeups_ = 0;
  std::function<void(sim::Time)> on_transition_;
};

}  // namespace pagoda::power
