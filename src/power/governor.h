// PowerGovernor: the deterministic fleet power control loop, in the spirit
// of cloudsim_eec's Scheduler (PeriodicCheck + SLAWarning hooks).
//
// src/power is the ONLY mover of P/C/S states (tools/check.sh greps the
// rest of the tree for the mutator names): the governor moves them directly,
// and external fleet orchestrators (the migrate autoscaler) go through the
// sleep_drained_node/wake_node verbs below. It observes the fleet through the
// FleetControl interface — implemented by the cluster dispatcher — so this
// library depends on sim/gpu only, never on src/cluster.
//
// PeriodicCheck runs on a fixed virtual-time cadence and self-terminates
// when the fleet reports idle (arrival stream closed, nothing in flight), so
// it never keeps the event queue alive on its own. All decisions are pure
// functions of simulation state: runs replay byte-identically.
//
//   static    — pin every node at the P-state floor; no adaptation. floor=0
//               is the "always-max-performance" baseline (timing identical
//               to the power-off path, energy merely metered).
//   dvfs      — per-node DVFS on issue utilization (step faster above 70%,
//               deeper below 25%, never below the floor), C-state stepping
//               for idle SMMs, all-P0 boost after an SLAWarning.
//   powercap  — dvfs plus a fleet-watt ceiling: while instantaneous fleet
//               power exceeds the cap, the emptiest node steps deeper.
//
// Sleep management (energy-min placement) is orthogonal to the governor
// kind: when armed, idle surplus nodes are quiesced via the PR 4 drain
// lifecycle and put into a deep S-state; a queued backlog with zero awake
// headroom wakes the lowest-index sleeper (its wake-up latency is charged
// to the waiting requests as the power.wakeup trace phase).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "power/power_model.h"
#include "power/power_spec.h"
#include "sim/simulation.h"

namespace pagoda::power {

enum class GovernorKind { kStatic, kDvfs, kPowerCap };

/// Valid `--governor` names, in display order.
std::span<const std::string_view> all_governor_names();
std::optional<GovernorKind> parse_governor(std::string_view name);
std::string_view governor_name(GovernorKind k);
/// One-line description for --list-policies.
std::string_view governor_description(GovernorKind k);

/// Everything the dispatcher needs to hand the power plane; lives here so
/// config structs outside src/power never name a power-state mutator.
struct PlaneConfig {
  /// nullopt = power plane off: no model, no governor, no hooks — the
  /// default path stays byte-identical.
  std::optional<PowerSpec> spec;
  GovernorKind governor = GovernorKind::kStatic;
  /// Fleet-watt ceiling for the powercap governor and the power-cap
  /// placement policy; 0 = uncapped.
  double cap_watts = 0.0;
  /// Arms S-state sleep management (set by the energy-min placement path).
  bool manage_sleep = false;
  /// PeriodicCheck cadence.
  sim::Duration period = sim::microseconds(50);

  bool enabled() const { return spec.has_value(); }
};

/// The governor's window onto the fleet, implemented by the dispatcher.
/// Mutation verbs here are node *lifecycle* (drain/reinstate), not power
/// state — power state moves only through NodePower, by the governor.
class FleetControl {
 public:
  virtual ~FleetControl() = default;
  virtual int num_nodes() const = 0;
  /// nullptr for a node without a power model (never, once armed).
  virtual NodePower* node_power(int node) = 0;
  virtual int node_outstanding(int node) const = 0;
  virtual std::int64_t node_free_slots(int node) const = 0;
  /// Total slot capacity of the node (free + held); the autoscaler's
  /// utilization denominator.
  virtual std::int64_t node_capacity(int node) const = 0;
  /// Admitted requests still waiting for a node slot.
  virtual int queued_backlog() const = 0;
  /// Whether placement may target the node (healthy, not draining/dead).
  virtual bool node_eligible(int node) const = 0;
  /// Arrival stream closed and nothing in flight — the tick stops.
  virtual bool idle() const = 0;
  virtual void quiesce_node(int node) = 0;
  virtual void restore_node(int node) = 0;
};

/// S-state verbs for fleet orchestrators hosted outside src/power (the
/// migrate autoscaler): tools/check.sh pins every NodePower mutator name to
/// this directory, so the verbs live here, as thin as the governor's own
/// sleep path. Sleeping assumes the caller already drained the node (it
/// aborts otherwise); waking restores the node into placement and lets its
/// residual wake-up latency land on waiting requests as the power_wakeup
/// trace phase.
void sleep_drained_node(FleetControl& fleet, int node, int s_state);
void wake_node(FleetControl& fleet, int node);
/// Whether the node is in an S-state (false when it has no power model).
bool node_asleep(FleetControl& fleet, int node);

class PowerGovernor {
 public:
  struct Stats {
    std::uint64_t checks = 0;
    std::uint64_t sla_warnings = 0;
    std::uint64_t nodes_slept = 0;
    std::uint64_t nodes_woken = 0;
  };

  PowerGovernor(sim::Simulation& sim, PlaneConfig cfg, FleetControl& fleet);

  /// Applies the initial P-state and (for adaptive kinds) starts the
  /// PeriodicCheck ticker. Call once, before the run starts.
  void start();

  /// SLAWarning hook: the dispatcher reports every completion that missed
  /// its deadline; adaptive governors boost the whole fleet to P0 and hold
  /// it there for a few checks.
  void on_sla_warning(sim::Time now);

  const Stats& stats() const { return stats_; }
  const PlaneConfig& config() const { return cfg_; }

 private:
  void schedule_tick();
  void periodic_check(sim::Time now);
  void check_dvfs(sim::Time now);
  void check_power_cap(sim::Time now);
  void check_sleep(sim::Time now);
  double fleet_watts(sim::Time now) const;
  int deepest_p() const { return cfg_.spec->p_floor; }

  sim::Simulation* sim_;
  PlaneConfig cfg_;
  FleetControl* fleet_;
  Stats stats_;
  int sla_hold_ = 0;  // checks left at forced P0 after an SLA warning
  std::vector<double> last_issued_;  // per-node issue integral at last check
  sim::Time last_check_ = 0;
  bool started_ = false;
};

}  // namespace pagoda::power
