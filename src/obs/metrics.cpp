#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace pagoda::obs {

void Histogram::add(double x) {
  PAGODA_CHECK_MSG(x >= 0.0 && std::isfinite(x),
                   "histogram values must be finite and non-negative");
  int b = 0;
  if (x >= 1.0) {
    b = 1 + std::min(kBuckets - 2, std::ilogb(x));
  }
  buckets_[b] += 1;
  count_ += 1;
}

int Histogram::max_bucket() const {
  for (int b = kBuckets - 1; b >= 0; --b) {
    if (buckets_[b] > 0) return b;
  }
  return -1;
}

std::int64_t MetricsRegistry::counter_value(std::string_view name,
                                            std::int64_t def) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? def : it->second.value();
}

double MetricsRegistry::gauge_value(std::string_view name, double def) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? def : it->second.value();
}

double MetricsRegistry::stat_mean(std::string_view name, double def) const {
  const auto it = stats_.find(std::string(name));
  return it == stats_.end() ? def : it->second.stats().mean();
}

double MetricsRegistry::stat_max(std::string_view name, double def) const {
  const auto it = stats_.find(std::string(name));
  return it == stats_.end() ? def : it->second.stats().max();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  stats_.clear();
  histograms_.clear();
}

std::string format_metric_double(double v) {
  // Normalize the zero sign so -0.0 and 0.0 snapshot identically.
  if (v == 0.0) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << c.value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << format_metric_double(g.value());
  }
  os << (first ? "}" : "\n  }") << ",\n  \"stats\": {";
  first = true;
  for (const auto& [name, s] : stats_) {
    const RunningStats& rs = s.stats();
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": {\"count\": " << rs.count()
       << ", \"mean\": " << format_metric_double(rs.mean())
       << ", \"min\": " << format_metric_double(rs.min())
       << ", \"max\": " << format_metric_double(rs.max())
       << ", \"stddev\": " << format_metric_double(rs.stddev()) << "}";
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": {\"count\": " << h.count() << ", \"buckets\": [";
    const int hi = h.max_bucket();
    for (int b = 0; b <= hi; ++b) {
      os << (b ? ", " : "") << h.bucket(b);
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

void MetricsRegistry::write_text(std::ostream& os) const {
  auto pad = [&os](std::string_view name) {
    os << "  " << name;
    for (std::size_t i = name.size(); i < 40; ++i) os << ' ';
  };
  if (!counters_.empty()) {
    os << "counters\n";
    for (const auto& [name, c] : counters_) {
      pad(name);
      os << c.value() << '\n';
    }
  }
  if (!gauges_.empty()) {
    os << "gauges\n";
    for (const auto& [name, g] : gauges_) {
      pad(name);
      os << format_metric_double(g.value()) << '\n';
    }
  }
  if (!stats_.empty()) {
    os << "sampled stats (mean / min / max / stddev / n)\n";
    for (const auto& [name, s] : stats_) {
      const RunningStats& rs = s.stats();
      pad(name);
      os << format_metric_double(rs.mean()) << " / "
         << format_metric_double(rs.min()) << " / "
         << format_metric_double(rs.max()) << " / "
         << format_metric_double(rs.stddev()) << " / " << rs.count() << '\n';
    }
  }
  if (!histograms_.empty()) {
    os << "histograms (log2 buckets)\n";
    for (const auto& [name, h] : histograms_) {
      pad(name);
      os << "n=" << h.count() << " [";
      const int hi = h.max_bucket();
      for (int b = 0; b <= hi; ++b) os << (b ? " " : "") << h.bucket(b);
      os << "]\n";
    }
  }
}

}  // namespace pagoda::obs
