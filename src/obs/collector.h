// The Collector ties the metrics registry and the timeline to a running
// simulation: drivers attach the structures they own (Device, Pagoda
// Runtime, CpuCluster) and the Collector installs read-only observers plus a
// periodic sampler process that rides the virtual clock.
//
// Invariants the whole observability layer depends on:
//  * Sampling is PASSIVE. The sampler event and every observer only read
//    simulation state; they never signal, allocate simulated resources or
//    advance any process. A run with a Collector attached is event-for-event
//    identical to the same run without one.
//  * Everything recorded derives from virtual time, so two identically
//    seeded runs produce byte-identical snapshots (the determinism test
//    pins this).
//
// Multi-GPU runs attach each device/runtime pair with a distinct name
// prefix ("dev00." ...): per-device series and counters keep their usual
// names under that prefix, so one registry snapshot covers a whole cluster.
// The empty prefix is the single-GPU spelling and keeps the historical
// metric names unchanged.
//
// Lifecycle: construct -> attach_*() while the drivers build their run state
// -> (simulation runs; sampler ticks) -> finish(end_time, tasks) BEFORE the
// Simulation is destroyed. A Collector serves exactly one run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace_span.h"
#include "pagoda/trace.h"
#include "sim/simulation.h"

namespace pagoda::gpu {
class Device;
}
namespace pagoda::host {
class CpuCluster;
}
namespace pagoda::runtime {
class Runtime;
}

namespace pagoda::obs {

struct CollectorConfig {
  /// Sampler cadence (virtual time) for occupancy/utilization/queue-depth
  /// series. The sampler stops by itself when the event queue drains.
  sim::Duration sample_period = sim::microseconds(20.0);
  /// Record spans + counter tracks for a Chrome/Perfetto profile.
  bool timeline = false;
  /// Record the Pagoda protocol event trace (implied by `timeline` for
  /// Pagoda runs; also used standalone by `pagoda_cli --trace`).
  bool trace = false;
  /// Record per-request causal span trees (cluster runs only; armed by
  /// `pagoda_cli --trace-spans`). Costs nothing when off: the dispatcher
  /// never sees a tracer and every existing output stays byte-identical.
  bool spans = false;
};

class Collector {
 public:
  explicit Collector(CollectorConfig cfg = {});
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  bool timeline_enabled() const { return cfg_.timeline; }
  bool trace_enabled() const { return cfg_.trace || cfg_.timeline; }
  bool spans_enabled() const { return cfg_.spans; }
  /// The per-request causal tracer armed by `spans`. The cluster driver
  /// hands it to the Dispatcher; finish() folds it into the timeline when
  /// both are enabled.
  RequestTracer& request_tracer() { return tracer_; }
  const RequestTracer& request_tracer() const { return tracer_; }
  /// The Pagoda protocol trace recorded when trace_enabled(). Valid for the
  /// Collector's lifetime. Only the default-prefix ("") runtime feeds it —
  /// TaskIds from different devices would collide in one recorder.
  const runtime::TraceRecorder& trace() const { return trace_; }

  // --- driver hooks --------------------------------------------------------
  /// Installs SMM/PCIe/dispatcher samplers and observers for one device.
  /// Call before the workload starts (time 0); once per (device, prefix).
  /// Metric and track names gain `prefix` verbatim ("" for single-GPU runs,
  /// "dev00." etc. for cluster nodes).
  void attach_device(gpu::Device& dev, std::string prefix = "");

  /// Adds TaskTable / MasterKernel / shmem sampling for one runtime, under
  /// `prefix`; wires the protocol trace recorder into the runtime when
  /// tracing is on (default prefix only).
  void attach_pagoda(runtime::Runtime& rt, std::string prefix = "");

  /// CPU-pool sampling for the host-only baselines.
  void attach_cpu(sim::Simulation& sim, const host::CpuCluster& cpu);

  /// Extension hook: `fn(now)` runs on every sampler tick, after the
  /// built-in samplers. Must observe only (the passivity invariant applies).
  /// Higher layers (the cluster dispatcher) record their own series here
  /// without obs depending on them.
  void add_sampler(sim::Simulation& sim, std::function<void(sim::Time)> fn);

  /// One executed task interval on the generic "tasks" track (timeline
  /// only). Ignores incomplete intervals (start or end unset).
  void task_span(sim::Time start, sim::Time end);

  /// Immediate out-of-band sample at a state-transition edge (power
  /// P/C/S-state changes): records the same series a periodic tick would,
  /// right at the edge, so step changes are never smeared across a sample
  /// window. Passive like the tick; the periodic cadence is unaffected.
  /// No-op before the sampler is attached or after finish().
  void edge_sample(sim::Time now);

  /// Finalizes the run: stops the sampler, snapshots the end-of-run gauges
  /// and counters and converts the protocol trace into timeline spans. Must
  /// run before the attached Simulation is destroyed; `end_time` is the
  /// driver's recorded completion time (virtual).
  void finish(sim::Time end_time, std::int64_t tasks);
  bool finished() const { return finished_; }

 private:
  struct DeviceSlot {
    gpu::Device* dev = nullptr;
    std::string prefix;
    // Windowed-delta state for rate series.
    std::vector<double> prev_smm_busy;  // busy_work_seconds per SMM
    std::int64_t prev_h2d_bytes = 0;
    std::int64_t prev_d2h_bytes = 0;
    // Interned timeline handles (valid when timeline_enabled()).
    Timeline::TrackId track_h2d = 0;
    Timeline::TrackId track_d2h = 0;
    Timeline::TrackId track_grids = 0;
  };
  struct RuntimeSlot {
    runtime::Runtime* rt = nullptr;
    std::string prefix;
  };

  void ensure_sampler(sim::Simulation& sim);
  void schedule_tick();
  void tick();
  void sample(sim::Time now);
  void sample_device(DeviceSlot& slot, sim::Time now, double window);
  void sample_runtime(RuntimeSlot& slot, sim::Time now);
  void finish_device(DeviceSlot& slot, double elapsed, sim::Time end_time);
  void finish_runtime(RuntimeSlot& slot, double elapsed);
  const RuntimeSlot* runtime_for_prefix(const std::string& prefix) const;
  std::string key(const std::string& prefix, const char* name) const {
    return prefix + name;
  }

  CollectorConfig cfg_;
  MetricsRegistry metrics_;
  Timeline timeline_;
  runtime::TraceRecorder trace_;
  RequestTracer tracer_;

  sim::Simulation* sim_ = nullptr;
  std::vector<DeviceSlot> devices_;
  std::vector<RuntimeSlot> runtimes_;
  const host::CpuCluster* cpu_ = nullptr;
  std::vector<std::function<void(sim::Time)>> extra_samplers_;

  sim::EventId tick_event_ = 0;
  sim::Time last_sample_ = 0;
  bool finished_ = false;

  Timeline::TrackId track_tasks_ = 0;
};

}  // namespace pagoda::obs
