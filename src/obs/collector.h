// The Collector ties the metrics registry and the timeline to a running
// simulation: drivers attach the structures they own (Device, Pagoda
// Runtime, CpuCluster) and the Collector installs read-only observers plus a
// periodic sampler process that rides the virtual clock.
//
// Invariants the whole observability layer depends on:
//  * Sampling is PASSIVE. The sampler event and every observer only read
//    simulation state; they never signal, allocate simulated resources or
//    advance any process. A run with a Collector attached is event-for-event
//    identical to the same run without one.
//  * Everything recorded derives from virtual time, so two identically
//    seeded runs produce byte-identical snapshots (the determinism test
//    pins this).
//
// Lifecycle: construct -> attach_*() while the drivers build their run state
// -> (simulation runs; sampler ticks) -> finish(end_time, tasks) BEFORE the
// Simulation is destroyed. A Collector serves exactly one run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_types.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "pagoda/trace.h"
#include "sim/simulation.h"

namespace pagoda::gpu {
class Device;
}
namespace pagoda::host {
class CpuCluster;
}
namespace pagoda::runtime {
class Runtime;
}

namespace pagoda::obs {

struct CollectorConfig {
  /// Sampler cadence (virtual time) for occupancy/utilization/queue-depth
  /// series. The sampler stops by itself when the event queue drains.
  sim::Duration sample_period = sim::microseconds(20.0);
  /// Record spans + counter tracks for a Chrome/Perfetto profile.
  bool timeline = false;
  /// Record the Pagoda protocol event trace (implied by `timeline` for
  /// Pagoda runs; also used standalone by `pagoda_cli --trace`).
  bool trace = false;
};

class Collector {
 public:
  explicit Collector(CollectorConfig cfg = {});
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  bool timeline_enabled() const { return cfg_.timeline; }
  bool trace_enabled() const { return cfg_.trace || cfg_.timeline; }
  /// The Pagoda protocol trace recorded when trace_enabled(). Valid for the
  /// Collector's lifetime.
  const runtime::TraceRecorder& trace() const { return trace_; }

  // --- driver hooks --------------------------------------------------------
  /// Installs SMM/PCIe/dispatcher samplers and observers. Call once, before
  /// the workload starts (time 0).
  void attach_device(gpu::Device& dev);

  /// Adds TaskTable / MasterKernel / shmem sampling; wires the protocol
  /// trace recorder into the runtime when tracing is on.
  void attach_pagoda(runtime::Runtime& rt);

  /// CPU-pool sampling for the host-only baselines.
  void attach_cpu(sim::Simulation& sim, const host::CpuCluster& cpu);

  /// One executed task interval on the generic "tasks" track (timeline
  /// only). Ignores incomplete intervals (start or end unset).
  void task_span(sim::Time start, sim::Time end);

  /// Finalizes the run: stops the sampler, snapshots the end-of-run gauges
  /// and counters and converts the protocol trace into timeline spans. Must
  /// run before the attached Simulation is destroyed; `end_time` is the
  /// driver's recorded completion time (virtual).
  void finish(sim::Time end_time, std::int64_t tasks);
  bool finished() const { return finished_; }

 private:
  void ensure_sampler(sim::Simulation& sim);
  void schedule_tick();
  void tick();
  void sample(sim::Time now);

  CollectorConfig cfg_;
  MetricsRegistry metrics_;
  Timeline timeline_;
  runtime::TraceRecorder trace_;

  sim::Simulation* sim_ = nullptr;
  gpu::Device* dev_ = nullptr;
  runtime::Runtime* rt_ = nullptr;
  const host::CpuCluster* cpu_ = nullptr;

  sim::EventId tick_event_ = 0;
  sim::Time last_sample_ = 0;
  bool finished_ = false;

  // Windowed-delta state for rate series.
  std::vector<double> prev_smm_busy_;   // busy_work_seconds per SMM
  std::int64_t prev_h2d_bytes_ = 0;
  std::int64_t prev_d2h_bytes_ = 0;

  // Interned timeline handles (valid when timeline_enabled()).
  Timeline::TrackId track_tasks_ = 0;
  Timeline::TrackId track_h2d_ = 0;
  Timeline::TrackId track_d2h_ = 0;
  Timeline::TrackId track_grids_ = 0;
};

}  // namespace pagoda::obs
