#include "obs/timeline.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "obs/metrics.h"

namespace pagoda::obs {

Timeline::TrackId Timeline::track(std::string_view name) {
  if (const auto it = track_index_.find(name); it != track_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<TrackId>(track_names_.size());
  track_names_.emplace_back(name);
  track_index_.emplace(std::string(name), id);
  return id;
}

int Timeline::intern(std::string_view name) {
  if (const auto it = name_index_.find(name); it != name_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(std::string(name), id);
  return id;
}

void Timeline::span(TrackId t, std::string_view name, sim::Time start,
                    sim::Time end) {
  PAGODA_CHECK_MSG(end >= start, "timeline span with negative duration");
  spans_.push_back(Span{t, intern(name), start, end});
}

void Timeline::instant(TrackId t, std::string_view name, sim::Time time) {
  instants_.push_back(Instant{t, intern(name), time});
}

void Timeline::counter(std::string_view series, sim::Time time, double value) {
  PAGODA_CHECK_MSG(value >= 0.0, "counter-track values must be non-negative");
  const int id = intern(series);
  // Samples of one series must ride the virtual clock forward.
  auto [it, inserted] = counter_last_time_.try_emplace(id, time);
  if (!inserted) {
    PAGODA_CHECK_MSG(time >= it->second,
                     "counter samples must be monotone in time");
    it->second = time;
  }
  counter_samples_.push_back(CounterSample{id, time, value});
}

void Timeline::clear() {
  spans_.clear();
  instants_.clear();
  counter_samples_.clear();
  counter_last_time_.clear();
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Timeline::write_chrome_trace(std::ostream& os) const {
  os << "[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Thread-name metadata so tracks render with their names.
  for (std::size_t t = 0; t < track_names_.size(); ++t) {
    comma();
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << t
       << R"(,"args":{"name":)";
    write_json_string(os, track_names_[t]);
    os << "}}";
  }
  for (const Span& s : spans_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(s.name));
    os << R"(,"ph":"X","ts":)" << format_metric_double(sim::to_microseconds(s.start))
       << R"(,"dur":)" << format_metric_double(sim::to_microseconds(s.end - s.start))
       << R"(,"pid":0,"tid":)" << s.track << "}";
  }
  for (const Instant& i : instants_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(i.name));
    os << R"(,"ph":"i","s":"t","ts":)"
       << format_metric_double(sim::to_microseconds(i.time)) << R"(,"pid":0,"tid":)"
       << i.track << "}";
  }
  for (const CounterSample& c : counter_samples_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(c.series));
    os << R"(,"ph":"C","ts":)" << format_metric_double(sim::to_microseconds(c.time))
       << R"(,"pid":0,"args":{"value":)" << format_metric_double(c.value) << "}}";
  }
  os << "]\n";
}

void Timeline::write_csv(std::ostream& os) const {
  os << "time_us,kind,track,name,value\n";
  for (const Span& s : spans_) {
    os << sim::to_microseconds(s.start) << ",span,"
       << track_names_[static_cast<std::size_t>(s.track)] << ','
       << name_of(s.name) << ',' << sim::to_microseconds(s.end - s.start)
       << '\n';
  }
  for (const Instant& i : instants_) {
    os << sim::to_microseconds(i.time) << ",instant,"
       << track_names_[static_cast<std::size_t>(i.track)] << ','
       << name_of(i.name) << ",\n";
  }
  for (const CounterSample& c : counter_samples_) {
    os << sim::to_microseconds(c.time) << ",counter,," << name_of(c.series)
       << ',' << format_metric_double(c.value) << '\n';
  }
}

}  // namespace pagoda::obs
