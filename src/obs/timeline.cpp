#include "obs/timeline.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "obs/metrics.h"

namespace pagoda::obs {

Timeline::TrackId Timeline::track(std::string_view name) {
  if (const auto it = track_index_.find(name); it != track_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<TrackId>(track_names_.size());
  track_names_.emplace_back(name);
  track_index_.emplace(std::string(name), id);
  return id;
}

int Timeline::intern(std::string_view name) {
  if (const auto it = name_index_.find(name); it != name_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(std::string(name), id);
  return id;
}

bool Timeline::admit() {
  if (num_events() < max_events_) return true;
  dropped_events_ += 1;
  return false;
}

void Timeline::span(TrackId t, std::string_view name, sim::Time start,
                    sim::Time end) {
  PAGODA_CHECK_MSG(end >= start, "timeline span with negative duration");
  if (!admit()) return;
  spans_.push_back(Span{t, intern(name), start, end});
}

void Timeline::instant(TrackId t, std::string_view name, sim::Time time) {
  if (!admit()) return;
  instants_.push_back(Instant{t, intern(name), time});
}

void Timeline::counter(std::string_view series, sim::Time time, double value) {
  PAGODA_CHECK_MSG(value >= 0.0, "counter-track values must be non-negative");
  if (!admit()) return;
  const int id = intern(series);
  // Samples of one series must ride the virtual clock forward.
  auto [it, inserted] = counter_last_time_.try_emplace(id, time);
  if (!inserted) {
    PAGODA_CHECK_MSG(time >= it->second,
                     "counter samples must be monotone in time");
    it->second = time;
  }
  counter_samples_.push_back(CounterSample{id, time, value});
}

void Timeline::flow(TrackId t, std::string_view name, std::uint64_t id,
                    sim::Time time, bool start) {
  if (!admit()) return;
  flows_.push_back(Flow{t, intern(name), id, time, start});
}

void Timeline::async_span(std::string_view name, std::uint64_t id,
                          sim::Time start, sim::Time end,
                          std::string_view args_json) {
  PAGODA_CHECK_MSG(end >= start, "timeline async span with negative duration");
  if (!admit()) return;
  async_spans_.push_back(AsyncSpan{
      intern(name), args_json.empty() ? -1 : intern(args_json), id, start,
      end});
}

void Timeline::clear() {
  spans_.clear();
  instants_.clear();
  counter_samples_.clear();
  counter_last_time_.clear();
  flows_.clear();
  async_spans_.clear();
  dropped_events_ = 0;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Timeline::write_chrome_trace(std::ostream& os) const {
  os << "[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Thread-name metadata so tracks render with their names.
  for (std::size_t t = 0; t < track_names_.size(); ++t) {
    comma();
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << t
       << R"(,"args":{"name":)";
    write_json_string(os, track_names_[t]);
    os << "}}";
  }
  for (const Span& s : spans_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(s.name));
    os << R"(,"ph":"X","ts":)" << format_metric_double(sim::to_microseconds(s.start))
       << R"(,"dur":)" << format_metric_double(sim::to_microseconds(s.end - s.start))
       << R"(,"pid":0,"tid":)" << s.track << "}";
  }
  for (const Instant& i : instants_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(i.name));
    os << R"(,"ph":"i","s":"t","ts":)"
       << format_metric_double(sim::to_microseconds(i.time)) << R"(,"pid":0,"tid":)"
       << i.track << "}";
  }
  for (const CounterSample& c : counter_samples_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(c.series));
    os << R"(,"ph":"C","ts":)" << format_metric_double(sim::to_microseconds(c.time))
       << R"(,"pid":0,"args":{"value":)" << format_metric_double(c.value) << "}}";
  }
  for (const Flow& f : flows_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(f.name));
    os << R"(,"cat":"flow","ph":")" << (f.start ? 's' : 'f') << '"';
    if (!f.start) os << R"(,"bp":"e")";
    os << R"(,"id":)" << f.id << R"(,"ts":)"
       << format_metric_double(sim::to_microseconds(f.time))
       << R"(,"pid":0,"tid":)" << f.track << "}";
  }
  for (const AsyncSpan& a : async_spans_) {
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(a.name));
    os << R"(,"cat":"request","ph":"b","id":)" << a.id << R"(,"ts":)"
       << format_metric_double(sim::to_microseconds(a.start))
       << R"(,"pid":0,"tid":0)";
    if (a.args >= 0) os << R"(,"args":)" << name_of(a.args);
    os << "}";
    comma();
    os << R"({"name":)";
    write_json_string(os, name_of(a.name));
    os << R"(,"cat":"request","ph":"e","id":)" << a.id << R"(,"ts":)"
       << format_metric_double(sim::to_microseconds(a.end))
       << R"(,"pid":0,"tid":0})";
  }
  os << "]\n";
}

void Timeline::write_csv(std::ostream& os) const {
  os << "time_us,kind,track,name,value\n";
  for (const Span& s : spans_) {
    os << sim::to_microseconds(s.start) << ",span,"
       << track_names_[static_cast<std::size_t>(s.track)] << ','
       << name_of(s.name) << ',' << sim::to_microseconds(s.end - s.start)
       << '\n';
  }
  for (const Instant& i : instants_) {
    os << sim::to_microseconds(i.time) << ",instant,"
       << track_names_[static_cast<std::size_t>(i.track)] << ','
       << name_of(i.name) << ",\n";
  }
  for (const CounterSample& c : counter_samples_) {
    os << sim::to_microseconds(c.time) << ",counter,," << name_of(c.series)
       << ',' << format_metric_double(c.value) << '\n';
  }
}

}  // namespace pagoda::obs
