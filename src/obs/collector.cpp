#include "obs/collector.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "gpu/device.h"
#include "host/host_api.h"
#include "pagoda/runtime.h"

namespace pagoda::obs {

namespace {

std::string smm_key(const std::string& prefix, int index, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "gpu.smm%02d.%s", index, suffix);
  return prefix + buf;
}

}  // namespace

Collector::Collector(CollectorConfig cfg) : cfg_(cfg) {
  PAGODA_CHECK(cfg_.sample_period > 0);
}

void Collector::ensure_sampler(sim::Simulation& sim) {
  if (sim_ != nullptr) {
    PAGODA_CHECK_MSG(sim_ == &sim, "Collector attached to two simulations");
    return;
  }
  sim_ = &sim;
  // Timeline spans and protocol traces record the exact pop order of
  // same-timestamp events from observers that fire on node shards; only the
  // sequential driver reproduces that order bit-for-bit, so these modes pin
  // the simulation to it. Metrics-only collection reads node counters from
  // the host phase (workers parked, barrier-ordered) and stays parallel.
  if (cfg_.timeline || trace_enabled() || cfg_.spans) {
    sim.require_serial("observability timeline/trace recording");
  }
  last_sample_ = sim.now();
  if (cfg_.timeline) track_tasks_ = timeline_.track("tasks");
  schedule_tick();
}

void Collector::schedule_tick() {
  tick_event_ = sim_->after(cfg_.sample_period, [this] { tick(); });
}

void Collector::tick() {
  tick_event_ = 0;
  if (finished_) return;
  // The tick was the last pending event: the run has drained (no process can
  // wake without an event), so stop sampling instead of ticking forever.
  // Skipping the sample keeps every recorded time <= the run's end time.
  if (sim_->pending_events() == 0) return;
  sample(sim_->now());
  schedule_tick();
}

void Collector::edge_sample(sim::Time now) {
  if (sim_ == nullptr || finished_) return;
  sample(now);
}

void Collector::sample(sim::Time now) {
  const double window = sim::to_seconds(now - last_sample_);
  last_sample_ = now;

  for (DeviceSlot& slot : devices_) sample_device(slot, now, window);
  for (RuntimeSlot& slot : runtimes_) sample_runtime(slot, now);

  if (cpu_ != nullptr) {
    metrics_.stat("cpu.active_tasks")
        .add(static_cast<double>(cpu_->active_tasks()));
    if (cfg_.timeline) {
      timeline_.counter("cpu.active_tasks", now,
                        static_cast<double>(cpu_->active_tasks()));
    }
  }

  for (const auto& fn : extra_samplers_) fn(now);
}

void Collector::sample_device(DeviceSlot& slot, sim::Time now, double window) {
  gpu::Device& dev = *slot.dev;
  int resident_total = 0;
  double util_sum = 0.0;
  for (int i = 0; i < dev.num_smms(); ++i) {
    gpu::Smm& smm = dev.smm(i);
    const int resident = smm.resident_warps();
    resident_total += resident;
    metrics_.stat(smm_key(slot.prefix, i, "resident_warps"))
        .add(static_cast<double>(resident));
    const double busy = smm.pipeline().busy_work_seconds();
    const auto u = static_cast<std::size_t>(i);
    const double util =
        window > 0.0 ? (busy - slot.prev_smm_busy[u]) /
                           (smm.pipeline().capacity() * window)
                     : 0.0;
    slot.prev_smm_busy[u] = busy;
    metrics_.stat(smm_key(slot.prefix, i, "issue_utilization")).add(util);
    util_sum += util;
  }
  const double util_mean = util_sum / static_cast<double>(dev.num_smms());
  metrics_.stat(key(slot.prefix, "gpu.resident_warps"))
      .add(static_cast<double>(resident_total));
  metrics_.stat(key(slot.prefix, "gpu.issue_utilization")).add(util_mean);

  const auto unplaced = dev.dispatcher().unplaced_blocks();
  metrics_.stat(key(slot.prefix, "gpu.launch_queue.unplaced_blocks"))
      .add(static_cast<double>(unplaced));

  sim::Link& h2d = dev.pcie().link(pcie::Direction::HostToDevice);
  sim::Link& d2h = dev.pcie().link(pcie::Direction::DeviceToHost);
  const double h2d_gbps =
      window > 0.0 ? static_cast<double>(h2d.bytes_transferred() -
                                         slot.prev_h2d_bytes) /
                         window / 1e9
                   : 0.0;
  const double d2h_gbps =
      window > 0.0 ? static_cast<double>(d2h.bytes_transferred() -
                                         slot.prev_d2h_bytes) /
                         window / 1e9
                   : 0.0;
  slot.prev_h2d_bytes = h2d.bytes_transferred();
  slot.prev_d2h_bytes = d2h.bytes_transferred();
  metrics_.stat(key(slot.prefix, "pcie.h2d.gbps")).add(h2d_gbps);
  metrics_.stat(key(slot.prefix, "pcie.d2h.gbps")).add(d2h_gbps);

  if (cfg_.timeline) {
    timeline_.counter(key(slot.prefix, "gpu.resident_warps"), now,
                      static_cast<double>(resident_total));
    timeline_.counter(key(slot.prefix, "gpu.issue_utilization"), now,
                      util_mean);
    timeline_.counter(key(slot.prefix, "gpu.launch_queue.unplaced_blocks"),
                      now, static_cast<double>(unplaced));
    timeline_.counter(key(slot.prefix, "pcie.h2d.gbps"), now, h2d_gbps);
    timeline_.counter(key(slot.prefix, "pcie.d2h.gbps"), now, d2h_gbps);
  }
}

void Collector::sample_runtime(RuntimeSlot& slot, sim::Time now) {
  runtime::Runtime& rt = *slot.rt;
  const runtime::TaskTable& table = rt.gpu_table();
  int free = 0;
  int params_copied = 0;
  int scheduling = 0;
  int chained = 0;
  for (int c = 0; c < table.columns(); ++c) {
    for (int r = 0; r < table.rows(); ++r) {
      const std::int32_t ready = table.at(c, r).ready;
      if (ready == runtime::kReadyFree) {
        free += 1;
      } else if (ready == runtime::kReadyParamsCopied) {
        params_copied += 1;
      } else if (ready == runtime::kReadyScheduling) {
        scheduling += 1;
      } else {
        chained += 1;  // carries a predecessor TaskId (spawn pipeline)
      }
    }
  }
  const int fill = table.size() - free;
  metrics_.stat(key(slot.prefix, "pagoda.tasktable.fill"))
      .add(static_cast<double>(fill));
  metrics_.stat(key(slot.prefix, "pagoda.tasktable.free"))
      .add(static_cast<double>(free));
  metrics_.stat(key(slot.prefix, "pagoda.tasktable.params_copied"))
      .add(static_cast<double>(params_copied));
  metrics_.stat(key(slot.prefix, "pagoda.tasktable.scheduling"))
      .add(static_cast<double>(scheduling));
  metrics_.stat(key(slot.prefix, "pagoda.tasktable.chained"))
      .add(static_cast<double>(chained));

  const runtime::MasterKernel& mk = rt.master_kernel();
  metrics_.stat(key(slot.prefix, "pagoda.executors.busy"))
      .add(static_cast<double>(mk.busy_executor_warps()));
  metrics_.stat(key(slot.prefix, "pagoda.shmem.bytes_in_use"))
      .add(static_cast<double>(mk.shmem_bytes_in_use()));

  if (cfg_.timeline) {
    timeline_.counter(key(slot.prefix, "pagoda.tasktable.fill"), now,
                      static_cast<double>(fill));
    timeline_.counter(key(slot.prefix, "pagoda.executors.busy"), now,
                      static_cast<double>(mk.busy_executor_warps()));
    timeline_.counter(key(slot.prefix, "pagoda.shmem.bytes_in_use"), now,
                      static_cast<double>(mk.shmem_bytes_in_use()));
  }
}

void Collector::attach_device(gpu::Device& dev, std::string prefix) {
  for (const DeviceSlot& s : devices_) {
    PAGODA_CHECK_MSG(s.dev != &dev, "device attached twice");
    PAGODA_CHECK_MSG(s.prefix != prefix, "device prefix attached twice");
  }
  ensure_sampler(dev.sim());
  DeviceSlot slot;
  slot.dev = &dev;
  slot.prefix = std::move(prefix);
  slot.prev_smm_busy.assign(static_cast<std::size_t>(dev.num_smms()), 0.0);
  slot.prev_h2d_bytes =
      dev.pcie().link(pcie::Direction::HostToDevice).bytes_transferred();
  slot.prev_d2h_bytes =
      dev.pcie().link(pcie::Direction::DeviceToHost).bytes_transferred();

  if (cfg_.timeline) {
    slot.track_h2d = timeline_.track(key(slot.prefix, "pcie.h2d"));
    slot.track_d2h = timeline_.track(key(slot.prefix, "pcie.d2h"));
    slot.track_grids = timeline_.track(key(slot.prefix, "gpu.grids"));
    const Timeline::TrackId track_h2d = slot.track_h2d;
    const Timeline::TrackId track_d2h = slot.track_d2h;
    const Timeline::TrackId track_grids = slot.track_grids;
    dev.pcie()
        .link(pcie::Direction::HostToDevice)
        .set_observer([this, track_h2d](const sim::Link::TransferRecord& t) {
          timeline_.span(track_h2d, "copy", t.wire_start, t.wire_end);
        });
    dev.pcie()
        .link(pcie::Direction::DeviceToHost)
        .set_observer([this, track_d2h](const sim::Link::TransferRecord& t) {
          timeline_.span(track_d2h, "copy", t.wire_start, t.wire_end);
        });
    dev.dispatcher().set_grid_observer(
        [this, track_grids](const gpu::BlockDispatcher::GridRecord& g) {
          timeline_.span(track_grids, "grid", g.launched, g.completed);
        });
  }
  devices_.push_back(std::move(slot));
}

void Collector::attach_pagoda(runtime::Runtime& rt, std::string prefix) {
  for (const RuntimeSlot& s : runtimes_) {
    PAGODA_CHECK_MSG(s.rt != &rt, "Pagoda runtime attached twice");
    PAGODA_CHECK_MSG(s.prefix != prefix, "runtime prefix attached twice");
  }
  ensure_sampler(rt.device().sim());
  if (trace_enabled() && prefix.empty()) rt.set_trace_recorder(&trace_);
  runtimes_.push_back(RuntimeSlot{&rt, std::move(prefix)});
}

void Collector::attach_cpu(sim::Simulation& sim, const host::CpuCluster& cpu) {
  PAGODA_CHECK_MSG(cpu_ == nullptr, "CPU cluster attached twice");
  ensure_sampler(sim);
  cpu_ = &cpu;
}

void Collector::add_sampler(sim::Simulation& sim,
                            std::function<void(sim::Time)> fn) {
  ensure_sampler(sim);
  extra_samplers_.push_back(std::move(fn));
}

void Collector::task_span(sim::Time start, sim::Time end) {
  if (!cfg_.timeline) return;
  if (start < 0 || end < start) return;
  timeline_.span(track_tasks_, "task", start, end);
}

const Collector::RuntimeSlot* Collector::runtime_for_prefix(
    const std::string& prefix) const {
  for (const RuntimeSlot& s : runtimes_) {
    if (s.prefix == prefix) return &s;
  }
  return nullptr;
}

void Collector::finish_device(DeviceSlot& slot, double elapsed,
                              sim::Time end_time) {
  gpu::Device& dev = *slot.dev;
  sim::Link& h2d = dev.pcie().link(pcie::Direction::HostToDevice);
  sim::Link& d2h = dev.pcie().link(pcie::Direction::DeviceToHost);
  metrics_.counter(key(slot.prefix, "pcie.h2d.bytes"))
      .set(h2d.bytes_transferred());
  metrics_.counter(key(slot.prefix, "pcie.h2d.transfers"))
      .set(h2d.transfers_completed());
  metrics_.counter(key(slot.prefix, "pcie.d2h.bytes"))
      .set(d2h.bytes_transferred());
  metrics_.counter(key(slot.prefix, "pcie.d2h.transfers"))
      .set(d2h.transfers_completed());
  if (elapsed > 0.0) {
    metrics_.gauge(key(slot.prefix, "pcie.h2d.achieved_gbps"))
        .set(static_cast<double>(h2d.bytes_transferred()) / elapsed / 1e9);
    metrics_.gauge(key(slot.prefix, "pcie.d2h.achieved_gbps"))
        .set(static_cast<double>(d2h.bytes_transferred()) / elapsed / 1e9);
    metrics_.gauge(key(slot.prefix, "pcie.h2d.wire_utilization"))
        .set(sim::to_seconds(h2d.busy_time()) / elapsed);
    metrics_.gauge(key(slot.prefix, "pcie.d2h.wire_utilization"))
        .set(sim::to_seconds(d2h.busy_time()) / elapsed);
  }
  metrics_.counter(key(slot.prefix, "gpu.grids_launched"))
      .set(dev.dispatcher().grids_launched());
  metrics_.counter(key(slot.prefix, "gpu.blocks_started"))
      .set(dev.dispatcher().blocks_started());

  // Achieved occupancy over [0, end_time]. For Pagoda the MasterKernel owns
  // every warp slot, so residency is meaningless — use the executor-warp
  // busy integral instead, as the paper's occupancy numbers do.
  if (elapsed > 0.0) {
    const double capacity =
        static_cast<double>(dev.spec().max_resident_warps());
    double occupancy = 0.0;
    const RuntimeSlot* rt_slot = runtime_for_prefix(slot.prefix);
    if (rt_slot != nullptr) {
      occupancy = rt_slot->rt->master_kernel().executor_busy_warp_seconds() /
                  (elapsed * capacity);
    } else {
      // Extrapolate residency to end_time, not sim.now(): after the event
      // queue drains the clock sits at the run's time cap, and runtimes
      // whose warps are still resident at the end (GeMTC's persistent
      // workers) would integrate residency across the whole cap.
      double resident_seconds = 0.0;
      for (int i = 0; i < dev.num_smms(); ++i) {
        resident_seconds += dev.smm(i).resident_warp_seconds_at(end_time);
      }
      occupancy = resident_seconds / (elapsed * capacity);
    }
    metrics_.gauge(key(slot.prefix, "gpu.occupancy.achieved")).set(occupancy);
  }
}

void Collector::finish_runtime(RuntimeSlot& slot, double elapsed) {
  runtime::Runtime& rt = *slot.rt;
  const runtime::Runtime::Stats& st = rt.stats();
  metrics_.counter(key(slot.prefix, "pagoda.tasks_spawned"))
      .set(st.tasks_spawned);
  metrics_.counter(key(slot.prefix, "pagoda.entry_copies"))
      .set(st.entry_copies);
  metrics_.counter(key(slot.prefix, "pagoda.aggregate_copybacks"))
      .set(st.aggregate_copybacks);
  metrics_.counter(key(slot.prefix, "pagoda.single_copybacks"))
      .set(st.single_copybacks);
  metrics_.counter(key(slot.prefix, "pagoda.flushes")).set(st.flushes);

  const runtime::MasterKernel& mk = rt.master_kernel();
  metrics_.counter(key(slot.prefix, "pagoda.tasks_scheduled"))
      .set(mk.tasks_scheduled());
  metrics_.counter(key(slot.prefix, "pagoda.tasks_completed"))
      .set(mk.tasks_completed());
  metrics_.counter(key(slot.prefix, "pagoda.warps_dispatched"))
      .set(mk.warps_dispatched());
  metrics_.counter(key(slot.prefix, "pagoda.shmem.allocs"))
      .set(mk.shmem_alloc_successes());
  metrics_.counter(key(slot.prefix, "pagoda.shmem.alloc_failures"))
      .set(mk.shmem_alloc_failures());
  metrics_.counter(key(slot.prefix, "pagoda.shmem.sweeps"))
      .set(mk.shmem_sweeps());
  metrics_.counter(key(slot.prefix, "pagoda.shmem.blocks_swept"))
      .set(mk.shmem_blocks_swept());
  metrics_.gauge(key(slot.prefix, "pagoda.shmem.peak_bytes"))
      .set(static_cast<double>(mk.shmem_peak_arena_bytes()));
  if (rt.config().oversub > 1.0) {
    // Virtual-resource plane. The fragmentation gauges ride the same arming
    // as the vres counters: un-virtualized runs emit no new metric keys, so
    // every pinned golden stays byte-identical.
    metrics_.gauge(key(slot.prefix, "pagoda.shmem.external_frag"))
        .set(mk.shmem_external_frag());
    metrics_.counter(key(slot.prefix, "pagoda.shmem.internal_frag_bytes"))
        .set(mk.shmem_internal_frag_bytes());
    metrics_.counter(key(slot.prefix, "pagoda.vres.spills"))
        .set(mk.vres_spills());
    metrics_.counter(key(slot.prefix, "pagoda.vres.reclaims"))
        .set(mk.vres_reclaims());
    metrics_.counter(key(slot.prefix, "pagoda.vres.spill_bytes"))
        .set(mk.vres_spill_bytes());
    metrics_.counter(key(slot.prefix, "pagoda.vres.reclaim_bytes"))
        .set(mk.vres_reclaim_bytes());
    metrics_.counter(key(slot.prefix, "pagoda.vres.spilled_bytes_final"))
        .set(mk.vres_spilled_bytes_in_use());
  }
  if (elapsed > 0.0) {
    metrics_.gauge(key(slot.prefix, "pagoda.sched.busy_fraction"))
        .set(mk.scheduler_busy_seconds() /
             (elapsed * static_cast<double>(mk.num_mtbs())));
    const double per_mtb_capacity =
        elapsed * static_cast<double>(runtime::MasterKernel::kExecutorWarps);
    double total_busy = 0.0;
    for (int m = 0; m < mk.num_mtbs(); ++m) {
      const double busy = mk.executor_busy_warp_seconds(m);
      total_busy += busy;
      metrics_.stat(key(slot.prefix, "pagoda.mtb.executor_utilization"))
          .add(busy / per_mtb_capacity);
    }
    metrics_.gauge(key(slot.prefix, "pagoda.executors.utilization"))
        .set(total_busy /
             (per_mtb_capacity * static_cast<double>(mk.num_mtbs())));
  }

  // Final TaskTable state census (usually all free on a completed run).
  const runtime::TaskTable& table = rt.gpu_table();
  int free = 0;
  int params_copied = 0;
  int scheduling = 0;
  int chained = 0;
  for (int c = 0; c < table.columns(); ++c) {
    for (int r = 0; r < table.rows(); ++r) {
      const std::int32_t ready = table.at(c, r).ready;
      if (ready == runtime::kReadyFree) {
        free += 1;
      } else if (ready == runtime::kReadyParamsCopied) {
        params_copied += 1;
      } else if (ready == runtime::kReadyScheduling) {
        scheduling += 1;
      } else {
        chained += 1;
      }
    }
  }
  metrics_.counter(key(slot.prefix, "pagoda.tasktable.final.free")).set(free);
  metrics_.counter(key(slot.prefix, "pagoda.tasktable.final.params_copied"))
      .set(params_copied);
  metrics_.counter(key(slot.prefix, "pagoda.tasktable.final.scheduling"))
      .set(scheduling);
  metrics_.counter(key(slot.prefix, "pagoda.tasktable.final.chained"))
      .set(chained);

  if (cfg_.timeline && slot.prefix.empty()) {
    const Timeline::TrackId spawn_track = timeline_.track("pagoda.spawn");
    const Timeline::TrackId exec_track = timeline_.track("pagoda.tasks");
    for (const runtime::TraceRecorder::TaskTimeline& t : trace_.timelines()) {
      if (!t.complete()) continue;
      timeline_.span(spawn_track, "spawn", t.spawned, t.entry_copied);
      timeline_.span(exec_track, "task", t.scheduled, t.completed);
    }
  }
}

void Collector::finish(sim::Time end_time, std::int64_t tasks) {
  PAGODA_CHECK_MSG(!finished_, "Collector finished twice");
  finished_ = true;
  if (sim_ != nullptr && tick_event_ != 0) {
    sim_->cancel(tick_event_);
    tick_event_ = 0;
  }

  const double elapsed = sim::to_seconds(end_time);
  metrics_.gauge("run.elapsed_ms").set(sim::to_milliseconds(end_time));
  metrics_.counter("run.tasks").set(tasks);

  for (DeviceSlot& slot : devices_) finish_device(slot, elapsed, end_time);
  for (RuntimeSlot& slot : runtimes_) finish_runtime(slot, elapsed);

  if (cfg_.spans && cfg_.timeline) tracer_.export_to_timeline(timeline_);
  if (cfg_.timeline) {
    // Buffer-cap accounting: dropped events are counted, never silent. Only
    // timeline runs emit the key, so metric goldens stay byte-identical.
    metrics_.counter("timeline.dropped_events")
        .set(timeline_.dropped_events());
  }

  if (cpu_ != nullptr && elapsed > 0.0) {
    metrics_.gauge("cpu.busy_fraction")
        .set(cpu_->busy_core_seconds() /
             (elapsed * static_cast<double>(cpu_->cores())));
  }
}

}  // namespace pagoda::obs
