// Latency attribution over causal request records: critical paths, dominant
// phases, and the per-class/per-phase tables printed by tools/trace_report.
//
// Two entry points share the semantics:
//  * native helpers over RequestTracer::Record (integer picoseconds) used by
//    the tracer's JSON dump and the tests;
//  * AttributionReport over RequestSummary (double microseconds, string
//    labels) used by the offline analyzer, which only has the parsed dump.
// Both define "dominant phase" identically: the largest bucket, earliest
// bucket order winning ties, so attribution is deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_span.h"

namespace pagoda::obs {

/// Index of the largest bucket (ties -> lowest index); -1 when every bucket
/// is zero (an instantaneously resolved request).
int dominant_phase_index(const std::array<double, kNumPhases>& buckets_us);

/// The record's time-ordered phase chain with adjacent same-phase intervals
/// coalesced: the critical path of a single-lane request (a request is never
/// in two phases at once, so the ordered chain IS the critical path).
std::vector<std::pair<Phase, sim::Duration>> critical_path(
    const RequestTracer::Record& r);

/// One parsed request from a --trace-spans dump.
struct RequestSummary {
  std::uint64_t uid = 0;
  std::string cls;
  std::string terminal;
  std::string cause;
  double e2e_us = 0.0;
  double slo_us = 0.0;
  bool slo_late = false;
  int attempts = 0;
  std::array<double, kNumPhases> buckets_us{};
  /// (phase index, dur_us) chain, as dumped under "critical_path".
  std::vector<std::pair<int, double>> path;
};

/// A parsed drop entry (requests refused at admission).
struct DropSummary {
  std::string cls;
  double slo_us = 0.0;
};

class AttributionReport {
 public:
  void add(RequestSummary s) { requests_.push_back(std::move(s)); }
  void add_dropped(DropSummary d) { dropped_.push_back(std::move(d)); }
  bool empty() const { return requests_.empty() && dropped_.empty(); }
  std::size_t num_requests() const { return requests_.size(); }

  /// Checks the attribution invariant (buckets sum to e2e up to dump
  /// rounding) for every request; on failure writes a diagnostic to `err`.
  bool validate(std::string* err) const;

  /// Per-class blocks: request count, mean e2e, and each phase's total,
  /// mean and share of the class's end-to-end time; then an "all" block.
  void write_phase_table(std::ostream& os) const;

  /// The k slowest requests by e2e, with their critical paths.
  void write_top_k(std::ostream& os, int k) const;

  /// One line per SLO-relevant casualty naming its dominant phase:
  /// completed-late requests, shed/evicted requests carrying an SLO, and a
  /// per-class drop summary (a drop's dominant phase is admission_block by
  /// definition — it was refused at admission).
  void write_explain_slo(std::ostream& os) const;

 private:
  std::vector<RequestSummary> requests_;
  std::vector<DropSummary> dropped_;
};

}  // namespace pagoda::obs
