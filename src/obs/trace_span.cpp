#include "obs/trace_span.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace pagoda::obs {

RequestTracer::Live* RequestTracer::find(std::uint64_t uid) {
  const auto it = live_.find(uid);
  return it == live_.end() ? nullptr : &it->second;
}

void RequestTracer::mark(Live& l, Phase p, sim::Time now) {
  const sim::Duration d = now - l.last;
  PAGODA_CHECK_MSG(d >= 0, "request tracer hooks must ride the clock forward");
  l.rec.buckets[static_cast<std::size_t>(p)] += d;
  if (d > 0) {
    l.rec.spans.push_back(PhaseSpan{l.rec.attempts, p, l.node, l.last, now});
  }
  l.last = now;
}

void RequestTracer::on_offered(std::uint64_t uid, sched::Class cls,
                               sim::Duration slo, sim::Time now) {
  offer_ordinal_ += 1;
  Live l;
  l.rec.uid = uid;
  l.rec.cls = cls;
  l.rec.slo = slo;
  l.rec.arrival = now;
  l.last = now;
  l.next = Phase::kQueueWait;
  const auto [it, inserted] = live_.emplace(uid, std::move(l));
  PAGODA_CHECK_MSG(inserted, "duplicate request uid offered to the tracer");
  (void)it;
}

void RequestTracer::on_dropped(sched::Class cls, sim::Duration slo,
                               sim::Time now) {
  dropped_.push_back(Drop{offer_ordinal_, cls, slo, now});
  offer_ordinal_ += 1;
}

void RequestTracer::on_serve(std::uint64_t uid, int node, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  // The gap since the previous mark is queue wait (or backoff wait when the
  // hop follows a budget-charged retry); the new hop starts here.
  mark(*l, l->next, now);
  l->rec.attempts += 1;
  l->node = node;
  l->next = Phase::kSchedWait;
}

void RequestTracer::on_admission_block(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, Phase::kAdmissionBlock, now);
  l->next = Phase::kQueueWait;
}

void RequestTracer::on_granted(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, Phase::kSchedWait, now);
  l->next = Phase::kH2d;
}

void RequestTracer::on_power_wake(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  // The grant already closed kSchedWait; the wait since then was the serving
  // node finishing its S-state wake. H2D starts after it, tiling preserved.
  mark(*l, Phase::kPowerWakeup, now);
  l->next = Phase::kH2d;
}

void RequestTracer::on_h2d_done(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, Phase::kH2d, now);
  l->next = Phase::kTableWait;
}

void RequestTracer::on_spawned(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, Phase::kTableWait, now);
  l->next = Phase::kWarpWait;
}

void RequestTracer::on_claimed(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  // Defensive: a recovered node can replay a claim for a TaskTable entry
  // whose record has moved on; only a hop actually awaiting its claim marks.
  if (l->next != Phase::kWarpWait) return;
  mark(*l, Phase::kWarpWait, now);
  l->next = Phase::kExec;
}

void RequestTracer::on_vres_spill(std::uint64_t uid, sim::Time start,
                                  sim::Time end) {
  Live* l = find(uid);
  if (l == nullptr) return;
  // Carve [start, end) out of the open interval: time up to `start` stays in
  // the pending phase, the transfer window lands in the vres bucket, and the
  // pending phase resumes at `end` (l->next is untouched).
  mark(*l, l->next, start);
  mark(*l, Phase::kVresSpill, end);
}

void RequestTracer::on_vres_reclaim(std::uint64_t uid, sim::Time start,
                                    sim::Time end) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, l->next, start);
  mark(*l, Phase::kVresReclaim, end);
}

void RequestTracer::on_exec_done(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, Phase::kExec, now);
  l->next = Phase::kD2h;
}

void RequestTracer::mark_progress(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, l->next, now);
}

void RequestTracer::on_retry(std::uint64_t uid) {
  Live* l = find(uid);
  if (l == nullptr) return;
  l->next = Phase::kRetryBackoff;
}

void RequestTracer::on_redispatch(std::uint64_t uid) {
  Live* l = find(uid);
  if (l == nullptr) return;
  l->next = Phase::kQueueWait;
}

void RequestTracer::on_migrated(std::uint64_t uid, sim::Time now) {
  Live* l = find(uid);
  if (l == nullptr) return;
  mark(*l, l->next, now);
  l->next = Phase::kMigrateXfer;
}

void RequestTracer::on_terminal(std::uint64_t uid, Terminal t,
                                std::string_view cause, sim::Time now,
                                bool slo_late) {
  const auto it = live_.find(uid);
  if (it == live_.end()) return;
  Live& l = it->second;
  mark(l, l.next, now);  // residual of the in-progress phase
  l.rec.done = now;
  l.rec.terminal = t;
  l.rec.cause = std::string(cause);
  l.rec.slo_late = slo_late;
  sim::Duration sum = 0;
  for (const sim::Duration b : l.rec.buckets) sum += b;
  PAGODA_CHECK_MSG(sum == l.rec.done - l.rec.arrival,
                   "phase buckets must tile the request's e2e latency");
  done_.push_back(std::move(l.rec));
  live_.erase(it);
}

// --- JSON dump --------------------------------------------------------------

namespace {

std::string us(sim::Time t) {
  return format_metric_double(sim::to_microseconds(t));
}

void write_record(std::ostream& os, const RequestTracer::Record& r) {
  os << "{\"uid\":" << r.uid << ",\"class\":\"" << sched::to_string(r.cls)
     << "\",\"terminal\":\"" << to_string(r.terminal) << "\",\"cause\":\""
     << r.cause << "\",\"arrival_us\":" << us(r.arrival)
     << ",\"done_us\":" << us(r.done)
     << ",\"e2e_us\":" << us(r.done - r.arrival)
     << ",\"slo_us\":" << us(r.slo)
     << ",\"slo_late\":" << (r.slo_late ? 1 : 0)
     << ",\"attempts\":" << r.attempts << ",\"buckets_us\":{";
  for (int p = 0; p < kNumPhases; ++p) {
    if (p > 0) os << ',';
    os << '"' << to_string(static_cast<Phase>(p)) << "\":"
       << us(r.buckets[static_cast<std::size_t>(p)]);
  }
  os << "},\"critical_path\":[";
  const auto path = critical_path(r);
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) os << ',';
    os << "[\"" << to_string(path[i].first) << "\"," << us(path[i].second)
       << ']';
  }
  os << "],\"spans\":[";
  for (std::size_t i = 0; i < r.spans.size(); ++i) {
    const RequestTracer::PhaseSpan& s = r.spans[i];
    if (i > 0) os << ',';
    os << "{\"id\":"
       << span_id(r.uid, s.attempt, 1 + static_cast<int>(s.phase))
       << ",\"attempt\":" << s.attempt << ",\"phase\":\""
       << to_string(s.phase) << "\",\"node\":" << s.node
       << ",\"start_us\":" << us(s.start)
       << ",\"dur_us\":" << us(s.end - s.start) << '}';
  }
  os << "]}";
}

}  // namespace

void RequestTracer::write_json(std::ostream& os) const {
  std::vector<const Record*> order;
  order.reserve(done_.size());
  for (const Record& r : done_) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const Record* a, const Record* b) { return a->uid < b->uid; });
  std::int64_t completed = 0, shed = 0, evicted = 0, slo_late = 0;
  os << "{\n\"format\":\"pagoda-trace-spans-v1\",\n\"requests\":[";
  for (std::size_t i = 0; i < order.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_record(os, *order[i]);
    switch (order[i]->terminal) {
      case Terminal::kCompleted: completed += 1; break;
      case Terminal::kShed: shed += 1; break;
      case Terminal::kEvicted: evicted += 1; break;
    }
    if (order[i]->slo_late) slo_late += 1;
  }
  os << "\n],\n\"dropped\":[";
  for (std::size_t i = 0; i < dropped_.size(); ++i) {
    const Drop& d = dropped_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "{\"ordinal\":" << d.ordinal << ",\"class\":\""
       << sched::to_string(d.cls) << "\",\"slo_us\":" << us(d.slo)
       << ",\"at_us\":" << us(d.at) << '}';
  }
  os << "\n],\n\"summary\":{\"requests\":" << done_.size()
     << ",\"completed\":" << completed << ",\"shed\":" << shed
     << ",\"evicted\":" << evicted
     << ",\"dropped\":" << dropped_.size()
     << ",\"slo_late\":" << slo_late
     << ",\"unresolved\":" << live_.size() << "}\n}\n";
}

// --- Perfetto export --------------------------------------------------------

void RequestTracer::export_to_timeline(Timeline& tl) const {
  // Stable track set: one per node seen, in node order, interned up front so
  // track ids don't depend on which request resolved first.
  int max_node = -1;
  for (const Record& r : done_) {
    for (const PhaseSpan& s : r.spans) max_node = std::max(max_node, s.node);
  }
  std::vector<Timeline::TrackId> node_track;
  for (int n = 0; n <= max_node; ++n) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "req.dev%02d", n);
    node_track.push_back(tl.track(buf));
  }
  const Timeline::TrackId pre_track = tl.track("req.unplaced");
  const auto track_of = [&](int node) {
    return node < 0 ? pre_track : node_track[static_cast<std::size_t>(node)];
  };

  std::vector<const Record*> order;
  order.reserve(done_.size());
  for (const Record& r : done_) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const Record* a, const Record* b) { return a->uid < b->uid; });

  char name[64];
  for (const Record* rp : order) {
    const Record& r = *rp;
    // Request-level async span with attribution args.
    std::snprintf(name, sizeof(name), "req %llu",
                  static_cast<unsigned long long>(r.uid));
    std::string args = "{\"class\":\"";
    args += sched::to_string(r.cls);
    args += "\",\"terminal\":\"";
    args += to_string(r.terminal);
    args += "\",\"slo_us\":" + us(r.slo) + ",\"attempts\":" +
            std::to_string(r.attempts) + "}";
    tl.async_span(name, r.uid, r.arrival, r.done, args);

    // Per-hop root slices with nested phase children; flow arrows join the
    // end of one hop to the start of the next (possibly on another node).
    std::size_t i = 0;
    std::int32_t prev_attempt = 0;
    sim::Time prev_end = 0;
    int prev_node = -1;
    while (i < r.spans.size()) {
      const std::int32_t attempt = r.spans[i].attempt;
      const int node = r.spans[i].node;
      std::size_t j = i;
      while (j < r.spans.size() && r.spans[j].attempt == attempt &&
             r.spans[j].node == node) {
        ++j;
      }
      const sim::Time start = r.spans[i].start;
      const sim::Time end = r.spans[j - 1].end;
      std::snprintf(name, sizeof(name), "req %llu #%d",
                    static_cast<unsigned long long>(r.uid), attempt);
      tl.span(track_of(node), name, start, end);
      for (std::size_t k = i; k < j; ++k) {
        tl.span(track_of(node), to_string(r.spans[k].phase), r.spans[k].start,
                r.spans[k].end);
      }
      if (prev_attempt != 0) {
        const std::uint64_t id = span_id(r.uid, prev_attempt, 0);
        tl.flow(track_of(prev_node), "req", id, prev_end, /*start=*/true);
        tl.flow(track_of(node), "req", id, start, /*start=*/false);
      }
      prev_attempt = attempt;
      prev_end = end;
      prev_node = node;
      i = j;
    }
  }
}

}  // namespace pagoda::obs
