// Generic runtime timeline: duration spans, instant events and counter
// tracks, emitted by *every* runtime (not just Pagoda) and exported as
// Chrome trace-event JSON (open in chrome://tracing or ui.perfetto.dev).
//
// The timeline is a passive append-only sink, like pagoda::runtime's
// TraceRecorder but runtime-agnostic:
//   * spans   — named intervals on named tracks (task execution, kernel
//               grids, memcpys, scheduler activity). Tracks map to Chrome
//               "threads"; a metadata event names each one.
//   * instants — point events on a track (protocol steps).
//   * counters — named time series rendered by Perfetto as counter tracks
//               (occupancy per SMM, PCIe bandwidth, TaskTable fill,
//               shared-memory usage).
//
// Everything is keyed by interned ids and recorded in insertion order; with
// a deterministic simulation the serialized output is byte-stable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time_types.h"

namespace pagoda::obs {

class Timeline {
 public:
  using TrackId = int;

  /// Interns a track (Chrome "thread") by name; same name, same id.
  TrackId track(std::string_view name);

  /// A named interval [start, end] on a track.
  void span(TrackId track, std::string_view name, sim::Time start,
            sim::Time end);

  /// A point event on a track.
  void instant(TrackId track, std::string_view name, sim::Time time);

  /// One sample of a counter series. Values must be non-negative and sample
  /// times non-decreasing per series (the samplers ride the virtual clock,
  /// so this holds by construction; the writer asserts it).
  void counter(std::string_view series, sim::Time time, double value);

  /// One endpoint of a flow arrow (Chrome "s"/"f" events) bound to the
  /// slice enclosing `time` on `track`. `start` emits the arrow tail.
  void flow(TrackId track, std::string_view name, std::uint64_t id,
            sim::Time time, bool start);

  /// A named interval on its own async row, grouped by `id` (Chrome
  /// nestable "b"/"e" events). `args_json` is a pre-rendered JSON object
  /// attached to the begin event ("" for none).
  void async_span(std::string_view name, std::uint64_t id, sim::Time start,
                  sim::Time end, std::string_view args_json = {});

  std::size_t num_spans() const { return spans_.size(); }
  std::size_t num_instants() const { return instants_.size(); }
  std::size_t num_counter_samples() const { return counter_samples_.size(); }
  std::size_t num_flows() const { return flows_.size(); }
  std::size_t num_async_spans() const { return async_spans_.size(); }
  std::size_t num_tracks() const { return track_names_.size(); }
  bool empty() const {
    return spans_.empty() && instants_.empty() && counter_samples_.empty() &&
           flows_.empty() && async_spans_.empty();
  }
  void clear();

  /// Hard cap on buffered events (spans + instants + counter samples +
  /// flows + async spans) so long cluster runs can't grow the trace buffer
  /// unboundedly. Events past the cap are dropped AND counted — never
  /// silently lost; the Collector exports the count as
  /// `timeline.dropped_events`.
  static constexpr std::size_t kDefaultMaxEvents = 1u << 21;  // ~2M events
  void set_max_events(std::size_t n) { max_events_ = n; }
  std::size_t max_events() const { return max_events_; }
  std::int64_t dropped_events() const { return dropped_events_; }
  std::size_t num_events() const {
    return spans_.size() + instants_.size() + counter_samples_.size() +
           flows_.size() + async_spans_.size();
  }

  /// Chrome trace-event JSON: thread-name metadata, "X" duration slices,
  /// "i" instants and "C" counter events. Timestamps in microseconds.
  void write_chrome_trace(std::ostream& os) const;

  /// CSV dump: time_us,kind(span|instant|counter),track,name,dur_us|value
  void write_csv(std::ostream& os) const;

  // --- introspection for tests --------------------------------------------
  struct Span {
    TrackId track;
    int name;  // interned
    sim::Time start;
    sim::Time end;
  };
  struct Instant {
    TrackId track;
    int name;
    sim::Time time;
  };
  struct CounterSample {
    int series;  // interned counter-series name
    sim::Time time;
    double value;
  };
  struct Flow {
    TrackId track;
    int name;  // interned
    std::uint64_t id;
    sim::Time time;
    bool start;
  };
  struct AsyncSpan {
    int name;  // interned
    int args;  // interned args JSON; -1 = none
    std::uint64_t id;
    sim::Time start;
    sim::Time end;
  };
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Flow>& flows() const { return flows_; }
  const std::vector<AsyncSpan>& async_spans() const { return async_spans_; }
  const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }
  std::string_view name_of(int interned) const { return names_[static_cast<std::size_t>(interned)]; }
  std::string_view track_name(TrackId t) const {
    return track_names_[static_cast<std::size_t>(t)];
  }
  std::string_view series_name(int interned) const {
    return name_of(interned);
  }

 private:
  int intern(std::string_view name);
  /// True when there is room for one more event; counts the drop otherwise.
  bool admit();

  std::vector<std::string> track_names_;
  std::map<std::string, TrackId, std::less<>> track_index_;
  std::vector<std::string> names_;  // interned span/instant/series names
  std::map<std::string, int, std::less<>> name_index_;
  /// Last sample time per counter series, for the monotonicity check.
  std::map<int, sim::Time> counter_last_time_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> counter_samples_;
  std::vector<Flow> flows_;
  std::vector<AsyncSpan> async_spans_;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::int64_t dropped_events_ = 0;
};

}  // namespace pagoda::obs
