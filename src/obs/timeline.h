// Generic runtime timeline: duration spans, instant events and counter
// tracks, emitted by *every* runtime (not just Pagoda) and exported as
// Chrome trace-event JSON (open in chrome://tracing or ui.perfetto.dev).
//
// The timeline is a passive append-only sink, like pagoda::runtime's
// TraceRecorder but runtime-agnostic:
//   * spans   — named intervals on named tracks (task execution, kernel
//               grids, memcpys, scheduler activity). Tracks map to Chrome
//               "threads"; a metadata event names each one.
//   * instants — point events on a track (protocol steps).
//   * counters — named time series rendered by Perfetto as counter tracks
//               (occupancy per SMM, PCIe bandwidth, TaskTable fill,
//               shared-memory usage).
//
// Everything is keyed by interned ids and recorded in insertion order; with
// a deterministic simulation the serialized output is byte-stable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time_types.h"

namespace pagoda::obs {

class Timeline {
 public:
  using TrackId = int;

  /// Interns a track (Chrome "thread") by name; same name, same id.
  TrackId track(std::string_view name);

  /// A named interval [start, end] on a track.
  void span(TrackId track, std::string_view name, sim::Time start,
            sim::Time end);

  /// A point event on a track.
  void instant(TrackId track, std::string_view name, sim::Time time);

  /// One sample of a counter series. Values must be non-negative and sample
  /// times non-decreasing per series (the samplers ride the virtual clock,
  /// so this holds by construction; the writer asserts it).
  void counter(std::string_view series, sim::Time time, double value);

  std::size_t num_spans() const { return spans_.size(); }
  std::size_t num_instants() const { return instants_.size(); }
  std::size_t num_counter_samples() const { return counter_samples_.size(); }
  std::size_t num_tracks() const { return track_names_.size(); }
  bool empty() const {
    return spans_.empty() && instants_.empty() && counter_samples_.empty();
  }
  void clear();

  /// Chrome trace-event JSON: thread-name metadata, "X" duration slices,
  /// "i" instants and "C" counter events. Timestamps in microseconds.
  void write_chrome_trace(std::ostream& os) const;

  /// CSV dump: time_us,kind(span|instant|counter),track,name,dur_us|value
  void write_csv(std::ostream& os) const;

  // --- introspection for tests --------------------------------------------
  struct Span {
    TrackId track;
    int name;  // interned
    sim::Time start;
    sim::Time end;
  };
  struct Instant {
    TrackId track;
    int name;
    sim::Time time;
  };
  struct CounterSample {
    int series;  // interned counter-series name
    sim::Time time;
    double value;
  };
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }
  std::string_view name_of(int interned) const { return names_[static_cast<std::size_t>(interned)]; }
  std::string_view track_name(TrackId t) const {
    return track_names_[static_cast<std::size_t>(t)];
  }
  std::string_view series_name(int interned) const {
    return name_of(interned);
  }

 private:
  int intern(std::string_view name);

  std::vector<std::string> track_names_;
  std::map<std::string, TrackId, std::less<>> track_index_;
  std::vector<std::string> names_;  // interned span/instant/series names
  std::map<std::string, int, std::less<>> name_index_;
  /// Last sample time per counter series, for the monotonicity check.
  std::map<int, sim::Time> counter_last_time_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> counter_samples_;
};

}  // namespace pagoda::obs
