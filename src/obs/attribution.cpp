#include "obs/attribution.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace pagoda::obs {

int dominant_phase_index(const std::array<double, kNumPhases>& buckets_us) {
  int best = -1;
  double best_v = 0.0;
  for (int p = 0; p < kNumPhases; ++p) {
    const double v = buckets_us[static_cast<std::size_t>(p)];
    if (v > best_v) {
      best_v = v;
      best = p;
    }
  }
  return best;
}

std::vector<std::pair<Phase, sim::Duration>> critical_path(
    const RequestTracer::Record& r) {
  std::vector<std::pair<Phase, sim::Duration>> path;
  for (const RequestTracer::PhaseSpan& s : r.spans) {
    if (!path.empty() && path.back().first == s.phase) {
      path.back().second += s.end - s.start;
    } else {
      path.emplace_back(s.phase, s.end - s.start);
    }
  }
  return path;
}

namespace {

const char* phase_name(int p) {
  // to_string returns views of string literals, so data() is NUL-terminated.
  return to_string(static_cast<Phase>(p)).data();
}

struct ClassAgg {
  std::int64_t n = 0;
  double e2e_us = 0.0;
  std::array<double, kNumPhases> buckets_us{};
};

void write_class_block(std::ostream& os, const std::string& name,
                       const ClassAgg& a) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "class=%-12s requests=%lld mean_e2e_us=%.3f\n", name.c_str(),
                static_cast<long long>(a.n),
                a.n > 0 ? a.e2e_us / static_cast<double>(a.n) : 0.0);
  os << buf;
  os << "  phase            total_us       mean_us    share\n";
  for (int p = 0; p < kNumPhases; ++p) {
    const double total = a.buckets_us[static_cast<std::size_t>(p)];
    const double mean = a.n > 0 ? total / static_cast<double>(a.n) : 0.0;
    const double share = a.e2e_us > 0.0 ? 100.0 * total / a.e2e_us : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-14s %11.3f %13.3f  %6.2f%%\n",
                  phase_name(p), total, mean, share);
    os << buf;
  }
}

}  // namespace

bool AttributionReport::validate(std::string* err) const {
  for (const RequestSummary& r : requests_) {
    double sum = 0.0;
    for (const double b : r.buckets_us) sum += b;
    // The dump rounds through %.9g: allow only that rounding, scaled to the
    // magnitudes involved.
    const double tol = 1e-6 * std::max(1.0, std::abs(r.e2e_us)) + 1e-3;
    if (std::abs(sum - r.e2e_us) > tol) {
      if (err != nullptr) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "uid=%llu: phase buckets sum to %.6f us but e2e is "
                      "%.6f us",
                      static_cast<unsigned long long>(r.uid), sum, r.e2e_us);
        *err = buf;
      }
      return false;
    }
  }
  return true;
}

void AttributionReport::write_phase_table(std::ostream& os) const {
  std::map<std::string, ClassAgg> by_class;
  ClassAgg all;
  for (const RequestSummary& r : requests_) {
    ClassAgg& a = by_class[r.cls];
    for (ClassAgg* agg : {&a, &all}) {
      agg->n += 1;
      agg->e2e_us += r.e2e_us;
      for (int p = 0; p < kNumPhases; ++p) {
        agg->buckets_us[static_cast<std::size_t>(p)] +=
            r.buckets_us[static_cast<std::size_t>(p)];
      }
    }
  }
  os << "== per-class per-phase attribution ==\n";
  for (const auto& [name, agg] : by_class) write_class_block(os, name, agg);
  if (by_class.size() > 1) write_class_block(os, "all", all);
}

void AttributionReport::write_top_k(std::ostream& os, int k) const {
  std::vector<const RequestSummary*> order;
  order.reserve(requests_.size());
  for (const RequestSummary& r : requests_) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const RequestSummary* a, const RequestSummary* b) {
              if (a->e2e_us != b->e2e_us) return a->e2e_us > b->e2e_us;
              return a->uid < b->uid;  // deterministic tie-break
            });
  if (k < 0) k = 0;
  const std::size_t n =
      std::min(order.size(), static_cast<std::size_t>(k));
  os << "== top " << n << " slowest requests ==\n";
  char buf[200];
  for (std::size_t i = 0; i < n; ++i) {
    const RequestSummary& r = *order[i];
    std::snprintf(buf, sizeof(buf),
                  "uid=%llu class=%s terminal=%s%s%s e2e_us=%.3f slo_us=%.3f "
                  "attempts=%d\n",
                  static_cast<unsigned long long>(r.uid), r.cls.c_str(),
                  r.terminal.c_str(), r.cause.empty() ? "" : " cause=",
                  r.cause.c_str(), r.e2e_us, r.slo_us, r.attempts);
    os << buf;
    os << "  critical path:";
    if (r.path.empty()) os << " (instantaneous)";
    for (std::size_t j = 0; j < r.path.size(); ++j) {
      if (j > 0) os << " ->";
      std::snprintf(buf, sizeof(buf), " %s %.3f", phase_name(r.path[j].first),
                    r.path[j].second);
      os << buf;
    }
    os << '\n';
  }
}

void AttributionReport::write_explain_slo(std::ostream& os) const {
  os << "== explain-slo ==\n";
  char buf[200];
  std::int64_t casualties = 0;
  for (const RequestSummary& r : requests_) {
    const bool late = r.slo_late;
    const bool failed_with_slo = r.terminal != "completed" && r.slo_us > 0.0;
    if (!late && !failed_with_slo) continue;
    casualties += 1;
    const int dom = dominant_phase_index(r.buckets_us);
    const double share =
        dom >= 0 && r.e2e_us > 0.0
            ? 100.0 * r.buckets_us[static_cast<std::size_t>(dom)] / r.e2e_us
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "uid=%llu class=%s terminal=%s%s%s e2e_us=%.3f slo_us=%.3f "
                  "dominant=%s (%.1f%%)\n",
                  static_cast<unsigned long long>(r.uid), r.cls.c_str(),
                  r.terminal.c_str(), r.cause.empty() ? "" : " cause=",
                  r.cause.c_str(), r.e2e_us, r.slo_us,
                  dom >= 0 ? phase_name(dom) : "none", share);
    os << buf;
  }
  std::map<std::string, std::int64_t> drops;
  for (const DropSummary& d : dropped_) drops[d.cls] += 1;
  for (const auto& [cls, n] : drops) {
    casualties += n;
    std::snprintf(buf, sizeof(buf),
                  "dropped class=%s count=%lld dominant=admission_block "
                  "(refused at admission)\n",
                  cls.c_str(), static_cast<long long>(n));
    os << buf;
  }
  if (casualties == 0) os << "no SLO casualties: every request met its SLO\n";
}

}  // namespace pagoda::obs
