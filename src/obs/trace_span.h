// Causal request tracing: one span tree per cluster request, carried from
// Dispatcher admission through ReadyQueue wait, placement, PCIe H2D,
// TaskTable residency, warp claim, execution, D2H and every fault
// retry/eviction/shed.
//
// The tracer is a PASSIVE recorder, like the rest of obs: every hook only
// copies simulation state (virtual timestamps, uids, class tags) into plain
// vectors — it never signals, allocates simulated resources or advances a
// process, so an armed run is event-for-event identical to a disarmed one
// and the dump is byte-stable across reruns.
//
// Phase accounting is a tiling state machine: each hook charges the interval
// since the previous hook to exactly one Phase bucket, in integer
// picoseconds, so for every terminal request
//
//     sum(buckets) == done - arrival        (checked at resolution)
//
// holds EXACTLY — attribution can never leak or double-count time.
//
// Span identity is structural, never wall clock:
//
//     span_id(uid, attempt, code) == uid<<16 | attempt<<8 | code
//
// where `attempt` is the 1-based placement hop (retries AND budget-free
// redispatches each start a new hop) and `code` is 0 for the hop's root span
// or 1+Phase for a phase child. The request-level flow id is the uid itself.
// Two identically seeded runs therefore emit identical ids.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time_types.h"
#include "sched/policy.h"

namespace pagoda::obs {

class Timeline;

/// Where a request's latency can go. Bucket order is the wire order of the
/// JSON dump and the column order of trace_report tables.
enum class Phase : std::uint8_t {
  kQueueWait = 0,    // offer/redispatch accepted -> serving process runs
  kAdmissionBlock,   // slot park that ended WITHOUT a grant (evict/refusal)
  kSchedWait,        // slot park that ended in a grant (policy queue wait)
  kH2d,              // input staging: memcpy setup + wire (0 on cache hit)
  kTableWait,        // task_spawn: TaskTable entry wait + spawn protocol
  kWarpWait,         // spawn returned -> scheduler warp claimed the entry
  kExec,             // claim -> host-visible completion (or fault detection)
  kD2h,              // output drain
  kRetryBackoff,     // deterministic backoff before a budget-charged retry
  kPowerWakeup,      // node was asleep at grant time: S-state wake latency
  kMigrateXfer,      // drain-migration: checkpoint transfer + re-placement
  kVresSpill,        // oversub > 1: cold-victim eviction to the backing store
  kVresReclaim,      // oversub > 1: spilled block pulled back on touch
};
inline constexpr int kNumPhases = 13;

constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kAdmissionBlock: return "admission_block";
    case Phase::kSchedWait: return "sched_wait";
    case Phase::kH2d: return "h2d";
    case Phase::kTableWait: return "table_wait";
    case Phase::kWarpWait: return "warp_wait";
    case Phase::kExec: return "exec";
    case Phase::kD2h: return "d2h";
    case Phase::kRetryBackoff: return "retry_backoff";
    case Phase::kPowerWakeup: return "power_wakeup";
    case Phase::kMigrateXfer: return "migrate_xfer";
    case Phase::kVresSpill: return "vres_spill";
    case Phase::kVresReclaim: return "vres_reclaim";
  }
  return "?";
}

/// Terminal state of an admitted request (drops are refused before
/// admission and recorded separately — they never owned a span tree).
enum class Terminal : std::uint8_t { kCompleted = 0, kShed, kEvicted };

constexpr std::string_view to_string(Terminal t) {
  switch (t) {
    case Terminal::kCompleted: return "completed";
    case Terminal::kShed: return "shed";
    case Terminal::kEvicted: return "evicted";
  }
  return "?";
}

/// Deterministic span id; see the header comment. code 0 = hop root,
/// 1+static_cast<int>(Phase) = phase child.
constexpr std::uint64_t span_id(std::uint64_t uid, int attempt, int code) {
  return (uid << 16) |
         (static_cast<std::uint64_t>(attempt & 0xFF) << 8) |
         static_cast<std::uint64_t>(code & 0xFF);
}

class RequestTracer {
 public:
  /// One phase interval of one placement hop. Zero-duration intervals add
  /// 0 to their bucket and emit no span.
  struct PhaseSpan {
    std::int32_t attempt = 0;  // 1-based placement hop
    Phase phase = Phase::kQueueWait;
    std::int32_t node = -1;    // node serving the hop (-1 before placement)
    sim::Time start = 0;
    sim::Time end = 0;
  };

  /// A resolved request: the complete causal record.
  struct Record {
    std::uint64_t uid = 0;
    sched::Class cls = sched::Class::kStandard;
    sim::Duration slo = 0;  // 0 = no deadline
    sim::Time arrival = 0;
    sim::Time done = 0;
    Terminal terminal = Terminal::kCompleted;
    std::string cause;       // fault cause label for shed/evicted, else ""
    bool slo_late = false;   // completed past its deadline
    std::int32_t attempts = 0;  // placement hops (retries + redispatches)
    std::array<sim::Duration, kNumPhases> buckets{};
    std::vector<PhaseSpan> spans;  // in start order (the hooks ride the clock)
  };

  /// A request refused at offer(): no uid was ever assigned (assigning one
  /// would shift the uid stream of admitted requests and change seeded
  /// fault/backoff decisions), so drops are keyed by their offer ordinal.
  struct Drop {
    std::int64_t ordinal = 0;  // 0-based index in the offer stream
    sched::Class cls = sched::Class::kStandard;
    sim::Duration slo = 0;
    sim::Time at = 0;
  };

  // --- dispatcher hooks (all passive; see dispatcher.cpp call sites) -------
  void on_offered(std::uint64_t uid, sched::Class cls, sim::Duration slo,
                  sim::Time now);
  void on_dropped(sched::Class cls, sim::Duration slo, sim::Time now);
  /// A serving process started running on `node`: a new placement hop.
  void on_serve(std::uint64_t uid, int node, sim::Time now);
  /// The slot park ended without a grant (eviction or closed-queue refusal).
  void on_admission_block(std::uint64_t uid, sim::Time now);
  void on_granted(std::uint64_t uid, sim::Time now);
  /// The interval since the grant was spent waiting for the serving node to
  /// finish an S-state wake (power plane). Charged to kPowerWakeup; the
  /// request then proceeds to H2D as usual, so the tiling stays exact.
  void on_power_wake(std::uint64_t uid, sim::Time now);
  void on_h2d_done(std::uint64_t uid, sim::Time now);
  void on_spawned(std::uint64_t uid, sim::Time now);
  /// GPU-side scheduler warp claimed the entry (via the claim observer).
  void on_claimed(std::uint64_t uid, sim::Time now);
  /// A vres spill/reclaim transfer occupied [start, end) of this request's
  /// current phase (via the vres observer; oversub > 1 only). The window is
  /// carved out of the open interval — [last, start) stays in the pending
  /// phase, [start, end) lands in the vres bucket, and the open interval
  /// resumes at `end` — so the tiling invariant is preserved exactly.
  void on_vres_spill(std::uint64_t uid, sim::Time start, sim::Time end);
  void on_vres_reclaim(std::uint64_t uid, sim::Time start, sim::Time end);
  /// Host-visible GPU completion (before the D2H drain).
  void on_exec_done(std::uint64_t uid, sim::Time now);
  /// Charges the in-progress phase up to `now` without advancing the state
  /// machine: failure detection and node-death sweeps use this, so e.g. a
  /// timeout's wait lands in the phase the attempt was actually stuck in.
  void mark_progress(std::uint64_t uid, sim::Time now);
  /// The next interval is a budget-charged backoff.
  void on_retry(std::uint64_t uid);
  /// The next interval is a budget-free re-placement queue wait.
  void on_redispatch(std::uint64_t uid);
  /// The attempt is being migrated off a draining node: charges the
  /// in-progress phase up to `now`, then attributes everything until the
  /// next hop's on_serve (checkpoint transfer + re-placement) to
  /// migrate_xfer. The tiling invariant is untouched — migration inserts a
  /// phase interval, never a gap.
  void on_migrated(std::uint64_t uid, sim::Time now);
  /// Exactly-once resolution; moves the record to the terminal set and
  /// checks the bucket-sum invariant.
  void on_terminal(std::uint64_t uid, Terminal t, std::string_view cause,
                   sim::Time now, bool slo_late);

  // --- results -------------------------------------------------------------
  /// Terminal records in resolution order.
  const std::vector<Record>& records() const { return done_; }
  const std::vector<Drop>& drops() const { return dropped_; }
  /// Admitted requests not yet resolved (0 after a drained run).
  std::size_t live() const { return live_.size(); }

  /// Byte-stable JSON dump (--trace-spans=FILE): requests sorted by uid,
  /// all doubles through format_metric_double, times in microseconds.
  void write_json(std::ostream& os) const;

  /// Perfetto export: per-node tracks of nested hop/phase slices, flow
  /// arrows joining consecutive hops of one request across node tracks, and
  /// one request-level async span per record carrying class/SLO args.
  void export_to_timeline(Timeline& tl) const;

 private:
  struct Live {
    Record rec;
    sim::Time last = 0;   // previous mark: the open interval's start
    Phase next = Phase::kQueueWait;  // phase the open interval belongs to
    std::int32_t node = -1;
  };

  Live* find(std::uint64_t uid);
  void mark(Live& l, Phase p, sim::Time now);

  std::map<std::uint64_t, Live> live_;
  std::vector<Record> done_;
  std::vector<Drop> dropped_;
  std::int64_t offer_ordinal_ = 0;
};

}  // namespace pagoda::obs
