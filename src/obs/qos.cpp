#include "obs/qos.h"

#include <cstdio>

#include "common/stats.h"
#include "obs/metrics.h"

namespace pagoda::obs {

std::string sched_key(sched::Class cls, const char* name) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "sched.%.*s.%s",
                static_cast<int>(to_string(cls).size()),
                to_string(cls).data(), name);
  return buf;
}

void export_sched_counter(MetricsRegistry& m, sched::Class cls,
                          const char* name, std::int64_t value) {
  m.counter(sched_key(cls, name)).set(value);
}

void export_sched_latencies(MetricsRegistry& m, sched::Class cls,
                            std::span<const double> latencies_us) {
  if (latencies_us.empty()) return;
  m.gauge(sched_key(cls, "latency.mean_us"))
      .set(arithmetic_mean(latencies_us));
  m.gauge(sched_key(cls, "latency.p50_us")).set(percentile(latencies_us, 50));
  m.gauge(sched_key(cls, "latency.p99_us")).set(percentile(latencies_us, 99));
  Histogram& h = m.histogram(sched_key(cls, "latency_us"));
  for (const double v : latencies_us) h.add(v);
}

}  // namespace pagoda::obs
