// Deterministic metrics registry: named counters, gauges, sampled stats and
// log2-bucketed histograms, snapshotted to a stable-ordered JSON/text report.
//
// Every value in the registry derives exclusively from virtual simulation
// time and workload state, so two runs with the same seed and configuration
// produce byte-identical snapshots — the registry doubles as a regression
// oracle, not just a debugging aid. To keep that guarantee, instruments must
// never record wall-clock time, pointers, or container iteration order of
// unordered containers.
//
// Instrument kinds:
//   Counter    — monotonically increasing int64 (events, bytes, retries)
//   Gauge      — a point-in-time double set by the instrumented code
//   Stat       — a RunningStats over samples (mean/min/max/stddev); the
//                occupancy/utilization samplers feed these
//   Histogram  — log2-bucketed distribution of non-negative values
//                (task latencies, copy sizes)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.h"

namespace pagoda::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  std::int64_t value() const { return value_; }
  void set(std::int64_t v) { value_ = v; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Sampled statistic: the samplers call add() on every tick; the snapshot
/// reports count/mean/min/max/stddev ("mean/peak resident warps").
class Stat {
 public:
  void add(double x) { rs_.add(x); }
  void merge(const Stat& o) { rs_.merge(o.rs_); }
  const RunningStats& stats() const { return rs_; }

 private:
  RunningStats rs_;
};

/// log2-bucketed histogram of non-negative values: bucket b counts samples
/// in [2^(b-1), 2^b) (bucket 0 holds values < 1).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(double x);
  std::int64_t count() const { return count_; }
  std::int64_t bucket(int b) const { return buckets_[b]; }
  int max_bucket() const;  // highest non-empty bucket index, -1 when empty

 private:
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t count_ = 0;
};

/// The registry itself. Name-keyed, ordered maps everywhere so the snapshot
/// is stable. Copyable: the harness snapshots a registry per experiment.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) { return counters_[std::string(name)]; }
  Gauge& gauge(std::string_view name) { return gauges_[std::string(name)]; }
  Stat& stat(std::string_view name) { return stats_[std::string(name)]; }
  Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }

  bool has_counter(std::string_view name) const {
    return counters_.count(std::string(name)) > 0;
  }
  bool has_gauge(std::string_view name) const {
    return gauges_.count(std::string(name)) > 0;
  }
  bool has_stat(std::string_view name) const {
    return stats_.count(std::string(name)) > 0;
  }

  /// Value lookups for report columns; `def` when the name is absent.
  std::int64_t counter_value(std::string_view name, std::int64_t def = 0) const;
  double gauge_value(std::string_view name, double def = 0.0) const;
  /// Mean / max of a sampled stat.
  double stat_mean(std::string_view name, double def = 0.0) const;
  double stat_max(std::string_view name, double def = 0.0) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && stats_.empty() &&
           histograms_.empty();
  }
  void clear();

  /// Stable-ordered JSON snapshot: keys sorted lexicographically, doubles
  /// printed with a fixed format — byte-identical across identical runs.
  void write_json(std::ostream& os) const;

  /// Human-readable fixed-width report (the `pagoda_cli --metrics` output).
  void write_text(std::ostream& os) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Stat> stats_;
  std::map<std::string, Histogram> histograms_;
};

/// Formats a double the way the registry snapshot does (shortest round-trip
/// via %.9g). Exposed so tests can pin the formatting contract.
std::string format_metric_double(double v);

}  // namespace pagoda::obs
