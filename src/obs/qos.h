// Per-class `sched.*` metric naming and export helpers.
//
// Every layer that reports QoS scheduling state (the cluster dispatcher
// today) uses the same key scheme — "sched.<class>.<name>" — so profiles
// from different runtimes line up. Export is opt-in: callers only emit
// sched.* keys when QoS is armed, keeping default runs' metric JSON
// byte-identical to the pre-sched layout.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "sched/policy.h"

namespace pagoda::obs {

class MetricsRegistry;

/// Canonical per-class key: "sched.interactive.completed" etc.
std::string sched_key(sched::Class cls, const char* name);

/// Sets the counter sched_key(cls, name) to `value`.
void export_sched_counter(MetricsRegistry& m, sched::Class cls,
                          const char* name, std::int64_t value);

/// Exports a class's attained-latency distribution: mean/p50/p99 gauges and
/// a log2 histogram under sched_key(cls, "latency_us"). No-op when empty.
void export_sched_latencies(MetricsRegistry& m, sched::Class cls,
                            std::span<const double> latencies_us);

}  // namespace pagoda::obs
