// QoS scheduling policy layer: the single owner of every ordering decision.
//
// Each queue in the stack (cluster admission, host spawn batches, MasterKernel
// scheduler-warp claims) used to bake in its own FIFO order. This layer
// extracts the decision into a pluggable Policy so one flag switches the
// whole stack:
//
//   fifo      arrival order (default; reproduces the legacy queues exactly)
//   priority  strict classes: interactive > standard > batch, FIFO within
//   edf       earliest absolute deadline first; no deadline ranks last
//   wfq       deterministic weighted-fair across classes (start-time fair
//             queueing: virtual start tags, lowest tag served first)
//
// Determinism: policies are pure functions of (key fields, admission order).
// Ties always break on SchedKey::seq — a caller-supplied monotonic sequence —
// so no policy ever depends on pointer values, wall clock, or hash order.
// WFQ's virtual-time state advances only in admit()/served(), both of which
// are invoked at deterministic simulation points.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/time_types.h"

namespace pagoda::sched {

/// Service class of a request/task. Lower enum value = more latency
/// sensitive. The numeric values are the on-descriptor encoding
/// (TaskParams::sched_class), so they are part of the spawn ABI: do not
/// renumber.
enum class Class : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,  // default for untagged work
  kBatch = 2,
};

inline constexpr int kNumClasses = 3;

constexpr int index(Class c) { return static_cast<int>(c); }

constexpr std::string_view to_string(Class c) {
  switch (c) {
    case Class::kInteractive: return "interactive";
    case Class::kStandard: return "standard";
    case Class::kBatch: return "batch";
  }
  return "?";
}

/// Decodes a raw descriptor byte; out-of-range values clamp to kBatch so a
/// corrupted tag degrades service instead of escalating it.
constexpr Class class_from_raw(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(kNumClasses)
             ? Class::kBatch
             : static_cast<Class>(raw);
}

std::optional<Class> parse_class(std::string_view name);

enum class PolicyKind : std::uint8_t { kFifo, kPriority, kEdf, kWfq };

constexpr std::string_view to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kPriority: return "priority";
    case PolicyKind::kEdf: return "edf";
    case PolicyKind::kWfq: return "wfq";
  }
  return "?";
}

std::optional<PolicyKind> parse_policy_kind(std::string_view name);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kFifo;
  /// WFQ per-class weights, indexed by Class. Share of service is
  /// weight[c] / sum(weights) when every class is backlogged.
  std::array<double, kNumClasses> weights{4.0, 2.0, 1.0};
};

/// Everything a policy may order on. Callers fill the fields they know;
/// unknown fields keep their defaults and the policy degrades gracefully
/// (e.g. edf with deadline == 0 ranks after every dated key).
struct SchedKey {
  Class cls = Class::kStandard;
  /// Absolute deadline (sim::Time); 0 = none.
  sim::Time deadline = 0;
  /// Service demand estimate in arbitrary-but-consistent units (WFQ only).
  double cost = 1.0;
  /// Monotonic admission sequence; the final tie-break under every policy.
  std::uint64_t seq = 0;
  /// WFQ virtual start tag, stamped by Policy::admit(). Not caller-set.
  double vtag = 0.0;
};

/// A scheduling policy instance. Stateless for fifo/priority/edf; WFQ keeps
/// per-class virtual-finish times, so give each independent queue domain its
/// own Policy (the dispatcher holds one, each MTB holds one).
class Policy {
 public:
  Policy() = default;
  explicit Policy(const PolicyConfig& cfg);

  PolicyKind kind() const { return cfg_.kind; }
  /// True when the policy is arrival-order: callers may keep their legacy
  /// fast path (and byte-identical event order) without consulting before().
  bool fifo() const { return cfg_.kind == PolicyKind::kFifo; }

  /// Stamps the key's WFQ virtual start tag (no-op for other policies).
  /// Call once per key, in arrival order, before any before() comparison.
  void admit(SchedKey& key);

  /// Advances WFQ virtual time past the served key (no-op otherwise).
  /// Call when a key is actually granted service.
  void served(const SchedKey& key);

  /// Strict weak order: true when `a` must be served before `b`.
  bool before(const SchedKey& a, const SchedKey& b) const;

  /// The WFQ start tag a key of class `cls` would receive if admitted now;
  /// lets callers compare a prospective arrival against parked keys without
  /// mutating state. Returns 0 for non-WFQ policies.
  double peek_tag(Class cls) const;

  /// Serve order for a batch: admits each key in index order, then returns
  /// the indices stable-sorted by before(). The caller claims in the
  /// returned order and reports each claim via served().
  std::vector<int> order(std::span<SchedKey> keys);

 private:
  PolicyConfig cfg_{};
  // WFQ (start-time fair queueing) state.
  double vtime_ = 0.0;
  std::array<double, kNumClasses> last_finish_{};
};

/// Encodes an absolute sim-time deadline into the 32-bit microsecond field
/// carried on TaskParams (saturating; 0 stays "no deadline").
std::uint32_t deadline_to_us(sim::Time deadline);

/// Decodes TaskParams::deadline_us back to an absolute sim::Time (0 -> 0).
sim::Time deadline_from_us(std::uint32_t us);

}  // namespace pagoda::sched
