// Policy-ordered counting slot queue: the admission queue of the stack.
//
// ReadyQueue is sim::Semaphore with a Policy deciding which parked waiter a
// released slot goes to. Under the fifo policy it reproduces the semaphore's
// event order byte-for-byte: same fast path in await_ready, same deque-order
// wakeups on close(), same defer_resume handoff — only the struct carrying
// the grant result differs, which is invisible to the simulator.
//
// Extensions over the semaphore:
//   - acquire(key) carries a SchedKey; release() grants the best parked key
//     per Policy::before (WFQ tags are stamped at admit time, in arrival
//     order, so the tag sequence is interleaving-independent).
//   - evict_worst(): wakes the policy-worst waiter with Grant::evicted set,
//     letting the dispatcher shed a parked batch request to admit a more
//     urgent arrival (class-aware shedding). Never used under fifo.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "common/check.h"
#include "sched/policy.h"
#include "sim/simulation.h"

namespace pagoda::sched {

class ReadyQueue {
 public:
  struct Grant {
    bool granted = false;  // slot held; caller must release() eventually
    bool evicted = false;  // woken by evict_worst(), not close()
  };

  ReadyQueue(sim::Simulation& sim, std::int64_t slots, Policy& policy)
      : sim_(&sim), policy_(&policy), count_(slots) {
    PAGODA_CHECK(slots >= 0);
  }
  ReadyQueue(const ReadyQueue&) = delete;
  ReadyQueue& operator=(const ReadyQueue&) = delete;
  ~ReadyQueue() {
    for (const Waiter& w : waiters_) w.handle.destroy();
  }

  auto acquire(SchedKey key) {
    struct Awaiter {
      ReadyQueue* q;
      SchedKey key;
      Grant grant{};
      bool await_ready() noexcept {
        q->policy_->admit(key);
        if (q->closed_) return true;  // grant.granted stays false
        if (q->count_ > 0 && q->waiters_.empty()) {
          --q->count_;
          grant.granted = true;
          q->policy_->served(key);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        q->waiters_.push_back(Waiter{h, &grant, key});
      }
      Grant await_resume() const noexcept { return grant; }
    };
    return Awaiter{this, key};
  }

  void release() {
    if (!waiters_.empty()) {
      const std::size_t i = best_index();
      const Waiter w = waiters_[i];
      waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
      w.grant->granted = true;
      policy_->served(w.key);
      sim_->defer_resume(w.handle);
    } else {
      ++count_;
    }
  }

  /// Wakes every parked acquirer ungranted (in arrival order, matching
  /// Semaphore::close) and fails later acquires until reopen(). Outstanding
  /// grants still release() into count_, so the pool is whole at reopen().
  void close() {
    closed_ = true;
    std::deque<Waiter> woken;
    woken.swap(waiters_);
    for (const Waiter& w : woken) sim_->defer_resume(w.handle);
  }

  void reopen() { closed_ = false; }
  bool closed() const { return closed_; }

  /// Wakes every parked acquirer ungranted (arrival order, like close())
  /// WITHOUT closing the queue: later acquires still succeed. The
  /// migrate-not-shed drain uses this to recall queued attempts — the woken
  /// callers see granted=false, evicted=false and checkpoint themselves
  /// while the queue stays open for the drain's own completions to release
  /// into.
  void kick_waiters() {
    std::deque<Waiter> woken;
    woken.swap(waiters_);
    for (const Waiter& w : woken) sim_->defer_resume(w.handle);
  }

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  /// The policy-worst parked key (the one every other waiter beats), or
  /// nullptr when nothing is parked. Valid until the next queue mutation.
  const SchedKey* worst() const {
    if (waiters_.empty()) return nullptr;
    return &waiters_[worst_index()].key;
  }

  /// Wakes the policy-worst waiter with granted=false, evicted=true.
  void evict_worst() {
    PAGODA_CHECK_MSG(!waiters_.empty(), "evict_worst on empty ReadyQueue");
    const std::size_t i = worst_index();
    const Waiter w = waiters_[i];
    waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
    w.grant->evicted = true;
    sim_->defer_resume(w.handle);
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    Grant* grant;  // lives in the suspended awaiter frame
    SchedKey key;
  };

  std::size_t best_index() const {
    if (policy_->fifo()) return 0;  // deque front == oldest seq
    std::size_t best = 0;
    for (std::size_t i = 1; i < waiters_.size(); ++i) {
      if (policy_->before(waiters_[i].key, waiters_[best].key)) best = i;
    }
    return best;
  }

  std::size_t worst_index() const {
    std::size_t worst = 0;
    for (std::size_t i = 1; i < waiters_.size(); ++i) {
      if (policy_->before(waiters_[worst].key, waiters_[i].key)) worst = i;
    }
    return worst;
  }

  sim::Simulation* sim_;
  Policy* policy_;
  std::int64_t count_;
  bool closed_ = false;
  std::deque<Waiter> waiters_;
};

}  // namespace pagoda::sched
