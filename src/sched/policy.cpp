#include "sched/policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace pagoda::sched {

namespace {

/// EDF rank: a missing deadline (0) sorts after every dated key.
constexpr sim::Time edf_rank(sim::Time deadline) {
  return deadline == 0 ? std::numeric_limits<sim::Time>::max() : deadline;
}

}  // namespace

std::optional<Class> parse_class(std::string_view name) {
  for (int i = 0; i < kNumClasses; ++i) {
    const Class c = static_cast<Class>(i);
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

std::optional<PolicyKind> parse_policy_kind(std::string_view name) {
  for (const PolicyKind k : {PolicyKind::kFifo, PolicyKind::kPriority,
                             PolicyKind::kEdf, PolicyKind::kWfq}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

Policy::Policy(const PolicyConfig& cfg) : cfg_(cfg) {
  for (const double w : cfg_.weights) {
    PAGODA_CHECK_MSG(w > 0.0 && std::isfinite(w),
                     "sched weights must be positive finite");
  }
}

void Policy::admit(SchedKey& key) {
  if (cfg_.kind != PolicyKind::kWfq) return;
  // Start-time fair queueing: start tag = max(virtual time, the class's last
  // finish tag); the class's next finish tag advances by cost / weight.
  const int c = index(key.cls);
  key.vtag = std::max(vtime_, last_finish_[c]);
  last_finish_[c] = key.vtag + key.cost / cfg_.weights[c];
}

void Policy::served(const SchedKey& key) {
  if (cfg_.kind != PolicyKind::kWfq) return;
  vtime_ = std::max(vtime_, key.vtag);
}

bool Policy::before(const SchedKey& a, const SchedKey& b) const {
  switch (cfg_.kind) {
    case PolicyKind::kFifo:
      return a.seq < b.seq;
    case PolicyKind::kPriority:
      if (a.cls != b.cls) return index(a.cls) < index(b.cls);
      return a.seq < b.seq;
    case PolicyKind::kEdf: {
      const sim::Time ra = edf_rank(a.deadline);
      const sim::Time rb = edf_rank(b.deadline);
      if (ra != rb) return ra < rb;
      return a.seq < b.seq;
    }
    case PolicyKind::kWfq:
      if (a.vtag != b.vtag) return a.vtag < b.vtag;
      return a.seq < b.seq;
  }
  return a.seq < b.seq;
}

double Policy::peek_tag(Class cls) const {
  if (cfg_.kind != PolicyKind::kWfq) return 0.0;
  return std::max(vtime_, last_finish_[index(cls)]);
}

std::vector<int> Policy::order(std::span<SchedKey> keys) {
  std::vector<int> idx(keys.size());
  std::iota(idx.begin(), idx.end(), 0);
  if (fifo()) return idx;  // arrival order, no tag churn
  for (SchedKey& k : keys) admit(k);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return before(keys[static_cast<std::size_t>(a)],
                  keys[static_cast<std::size_t>(b)]);
  });
  return idx;
}

std::uint32_t deadline_to_us(sim::Time deadline) {
  if (deadline <= 0) return 0;
  const double us = sim::to_microseconds(deadline);
  const double max32 = static_cast<double>(
      std::numeric_limits<std::uint32_t>::max());
  if (us >= max32) return std::numeric_limits<std::uint32_t>::max();
  // Round up so an encoded deadline is never earlier than the real one, and
  // never collides with the 0 = "none" encoding.
  const auto enc = static_cast<std::uint32_t>(std::ceil(us));
  return enc == 0 ? 1 : enc;
}

sim::Time deadline_from_us(std::uint32_t us) {
  if (us == 0) return 0;
  return sim::microseconds(static_cast<double>(us));
}

}  // namespace pagoda::sched
