#include "sim/shard_coordinator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pagoda::sim {

ShardCoordinator::ShardCoordinator(Simulation& sim, int threads)
    : sim_(&sim) {
  PAGODA_CHECK(threads >= 2);
  const int spawn = threads - 1;
  workers_.reserve(static_cast<std::size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ShardCoordinator::~ShardCoordinator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardCoordinator::run_until(Time cap) {
  Simulation& sim = *sim_;
  for (;;) {
    const EventKey host = sim.shards_[0]->queue.next_key();
    EventKey node_min;
    for (std::size_t i = 1; i < sim.shards_.size(); ++i) {
      const EventKey k = sim.shards_[i]->queue.next_key();
      if (k < node_min) node_min = k;
    }
    const bool host_due = host.valid() && host.at <= cap;
    const bool node_due = node_min.valid() && node_min.at <= cap;
    if (!host_due && !node_due) return;
    if (host_due && host < node_min) {
      // Serial host phase: the host holds the globally least key, every
      // node shard is parked strictly behind it.
      sim.step_shard(*sim.shards_[0]);
      stats_.serial_events += 1;
      continue;
    }
    // Parallel window up to the host head (or the cap boundary). cap is
    // far below kTimeMax in practice (run() passes kTimeMax - 1), so the
    // +1 cannot overflow.
    EventKey cut = host;
    if (!cut.valid() || cut.at > cap) cut = EventKey{cap + 1, 0};
    run_window(cut);
  }
}

void ShardCoordinator::run_window(const EventKey& cut) {
  Simulation& sim = *sim_;
  active_.clear();
  for (std::size_t i = 1; i < sim.shards_.size(); ++i) {
    const EventKey k = sim.shards_[i]->queue.next_key();
    if (k.valid() && k < cut) active_.push_back(static_cast<ShardId>(i));
  }
  if (active_.empty()) return;  // nothing strictly below the cut
  for (const ShardId id : active_) {
    Simulation::Shard& s = *sim.shards_[id];
    // Disjoint per-shard sequence ranges, carved in shard order from the
    // global counter: deterministic regardless of worker interleaving, and
    // all larger than every previously stamped sequence.
    s.window_seq = sim.next_seq_;
    s.window_seq_end = sim.next_seq_ + kWindowSpan;
    sim.next_seq_ += kWindowSpan;
    s.stop = false;
    s.post_order = 0;
    s.drained = 0;
  }
  stats_.windows += 1;
  if (active_.size() == 1 || workers_.empty()) {
    for (const ShardId id : active_) drain(*sim.shards_[id], cut);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      cut_ = cut;
      next_claim_.store(0, std::memory_order_relaxed);
      busy_workers_ = static_cast<int>(workers_.size());
      gen_ += 1;
    }
    cv_work_.notify_all();
    drain_claimed();  // the coordinating thread is a worker too
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return busy_workers_ == 0; });
  }
  for (const ShardId id : active_) {
    Simulation::Shard& s = *sim.shards_[id];
    stats_.window_events += s.drained;
    if (s.stop) stats_.window_stops += 1;
  }
  merge_outboxes();
}

void ShardCoordinator::drain_claimed() {
  for (;;) {
    const std::size_t i = next_claim_.fetch_add(1, std::memory_order_relaxed);
    if (i >= active_.size()) return;
    drain(*sim_->shards_[active_[i]], cut_);
  }
}

void ShardCoordinator::drain(Simulation::Shard& s, const EventKey& cut) {
  internal::set_window_shard(&s);
  for (;;) {
    const EventKey k = s.queue.next_key();
    if (!k.valid() || !(k < cut)) break;
    EventQueue::Popped e = s.queue.pop();
    s.now = e.at;
    e.run();
    s.drained += 1;
    if (s.stop) break;  // posted cross-shard: the host may react at s.now
  }
  internal::set_window_shard(nullptr);
}

void ShardCoordinator::merge_outboxes() {
  Simulation& sim = *sim_;
  merge_buf_.clear();
  for (const ShardId id : active_) {
    Simulation::Shard& s = *sim.shards_[id];
    for (Simulation::Post& p : s.outbox) merge_buf_.push_back(std::move(p));
    s.outbox.clear();
  }
  if (merge_buf_.empty()) return;
  std::sort(merge_buf_.begin(), merge_buf_.end(),
            [](const Simulation::Post& a, const Simulation::Post& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.src != b.src) return a.src < b.src;
              return a.order < b.order;
            });
  for (Simulation::Post& p : merge_buf_) {
    Simulation::Shard& tgt = *sim.shards_[p.target];
    // The window cut is the host head key, so a shard may drain past the
    // time of another shard's post. A post must still never land behind its
    // TARGET's drained point — that would run the target's clock backwards
    // and silently reorder against the sequential schedule. Fail loudly;
    // a plane that needs such a zero-lookahead coupling must declare
    // Simulation::require_serial().
    PAGODA_CHECK_MSG(p.at >= tgt.now,
                     "cross-shard post merged into the target shard's past "
                     "(causality violation: the window cut outran this "
                     "coupling's lookahead)");
    if (p.resume) {
      tgt.queue.schedule_resume(p.at, p.resume, sim.next_seq_++);
    } else {
      tgt.queue.schedule(p.at, std::move(p.fn), sim.next_seq_++);
    }
    stats_.posts += 1;
  }
}

void ShardCoordinator::worker_main() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || gen_ != seen; });
    if (stop_) return;
    seen = gen_;
    lk.unlock();
    drain_claimed();
    lk.lock();
    busy_workers_ -= 1;
    if (busy_workers_ == 0) cv_done_.notify_all();
  }
}

}  // namespace pagoda::sim
