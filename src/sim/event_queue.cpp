#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace pagoda::sim {

namespace {

/// Explicit EventId decomposition for the cancel path. An id encodes
/// (slot+1, generation); both halves must check out against the live slab
/// state before a cancel may touch anything.
struct DecodedId {
  std::uint32_t slot;
  std::uint32_t gen;
};

DecodedId decode(EventId id) {
  return DecodedId{
      static_cast<std::uint32_t>((id >> 32) - 1),
      static_cast<std::uint32_t>(id & 0xFFFFFFFFu),
  };
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  PAGODA_CHECK_MSG(nodes_.size() < kMaxSlots,
                   "event slab exceeded the shard-taggable slot range");
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Node& n = nodes_[slot];
  n.live = false;
  n.gen += 1;  // invalidates any heap key AND any EventId still referencing
               // this slot — the cornerstone of double-cancel safety
  n.fn = nullptr;
  n.resume = nullptr;
  free_slots_.push_back(slot);
}

EventId EventQueue::push(Time at, std::uint32_t slot, std::uint64_t seq) {
  Node& n = nodes_[slot];
  n.live = true;
  heap_.push(HeapItem{at, seq, slot, n.gen});
  live_ += 1;
  return (static_cast<EventId>(slot) + 1) << 32 | n.gen;
}

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  return schedule(at, std::move(fn), next_seq_++);
}

EventId EventQueue::schedule_resume(Time at, std::coroutine_handle<> h) {
  return schedule_resume(at, h, next_seq_++);
}

EventId EventQueue::schedule(Time at, std::function<void()> fn,
                             std::uint64_t seq) {
  const std::uint32_t slot = acquire_slot();
  nodes_[slot].fn = std::move(fn);
  return push(at, slot, seq);
}

EventId EventQueue::schedule_resume(Time at, std::coroutine_handle<> h,
                                    std::uint64_t seq) {
  const std::uint32_t slot = acquire_slot();
  nodes_[slot].resume = h;
  return push(at, slot, seq);
}

bool EventQueue::cancel(EventId id) {
  if (id == 0) return false;
  const DecodedId d = decode(id);
  // Reject ids that never came from this queue (or predate a slab reset).
  if (d.slot >= nodes_.size()) return false;
  Node& n = nodes_[d.slot];
  // Generation check, explicitly spelled out:
  //  * !live          — the slot is on the free list; the event this id
  //                     referred to already fired or was already cancelled.
  //  * gen mismatch   — the slot was RELEASED AND REUSED since this id was
  //                     issued; a live event occupies it, but it is someone
  //                     else's. Cancelling it here would be the classic
  //                     double-cancel-across-slab-reuse bug.
  // Only a live slot whose current generation equals the id's generation
  // still refers to the event the caller scheduled.
  if (!n.live) return false;
  if (n.gen != d.gen) return false;
  release_slot(d.slot);  // the stale heap key is skimmed later
  live_ -= 1;
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.top();
    const Node& n = nodes_[top.slot];
    if (n.live && n.gen == top.gen) return;
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->skim();
  return heap_.empty() ? kTimeMax : heap_.top().at;
}

EventKey EventQueue::next_key() const {
  auto* self = const_cast<EventQueue*>(this);
  self->skim();
  if (heap_.empty()) return EventKey{};
  return EventKey{heap_.top().at, heap_.top().seq};
}

EventQueue::Popped EventQueue::pop() {
  skim();
  PAGODA_CHECK_MSG(!heap_.empty(), "pop on empty queue");
  const HeapItem top = heap_.top();
  heap_.pop();
  Node& n = nodes_[top.slot];
  Popped p{top.at, std::move(n.fn), n.resume};
  release_slot(top.slot);
  live_ -= 1;
  return p;
}

}  // namespace pagoda::sim
