#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace pagoda::sim {

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // An entry is live iff its id is in pending_; cancelled entries stay in the
  // heap until they bubble to the top, where skim() drops them.
  return pending_.erase(id) > 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->skim();
  return heap_.empty() ? kTimeMax : heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  skim();
  PAGODA_CHECK_MSG(!heap_.empty(), "pop on empty queue");
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(e.id);
  return Popped{e.at, std::move(e.fn)};
}

}  // namespace pagoda::sim
