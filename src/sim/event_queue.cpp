#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace pagoda::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Node& n = nodes_[slot];
  n.live = false;
  n.gen += 1;  // invalidates any heap key still referencing this slot
  n.fn = nullptr;
  n.resume = nullptr;
  free_slots_.push_back(slot);
}

EventId EventQueue::push(Time at, std::uint32_t slot) {
  Node& n = nodes_[slot];
  n.live = true;
  heap_.push(HeapItem{at, next_seq_++, slot, n.gen});
  live_ += 1;
  return (static_cast<EventId>(slot) + 1) << 32 | n.gen;
}

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  const std::uint32_t slot = acquire_slot();
  nodes_[slot].fn = std::move(fn);
  return push(at, slot);
}

EventId EventQueue::schedule_resume(Time at, std::coroutine_handle<> h) {
  const std::uint32_t slot = acquire_slot();
  nodes_[slot].resume = h;
  return push(at, slot);
}

bool EventQueue::cancel(EventId id) {
  if (id == 0) return false;
  const auto slot = static_cast<std::uint32_t>((id >> 32) - 1);
  const auto gen = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (slot >= nodes_.size()) return false;
  Node& n = nodes_[slot];
  if (!n.live || n.gen != gen) return false;
  release_slot(slot);  // the stale heap key is skimmed later
  live_ -= 1;
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.top();
    const Node& n = nodes_[top.slot];
    if (n.live && n.gen == top.gen) return;
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->skim();
  return heap_.empty() ? kTimeMax : heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  skim();
  PAGODA_CHECK_MSG(!heap_.empty(), "pop on empty queue");
  const HeapItem top = heap_.top();
  heap_.pop();
  Node& n = nodes_[top.slot];
  Popped p{top.at, std::move(n.fn), n.resume};
  release_slot(top.slot);
  live_ -= 1;
  return p;
}

}  // namespace pagoda::sim
