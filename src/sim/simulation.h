// The simulation kernel: a virtual clock driving the event queue.
//
// Everything in the Pagoda reproduction — host CPU threads, PCIe transfers,
// GPU scheduler warps and executor warps — is a coroutine process advanced by
// one Simulation instance. The simulation is single-threaded and
// deterministic: same inputs, same event trace, same timings.
#pragma once

#include <coroutine>
#include <functional>

#include "common/time_types.h"
#include "sim/event_queue.h"
#include "sim/joinable.h"

namespace pagoda::sim {

class Process;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedules fn at absolute time t (must be >= now()).
  EventId at(Time t, std::function<void()> fn);

  /// Schedules fn after duration d (>= 0).
  EventId after(Duration d, std::function<void()> fn);

  /// Schedules fn at the current time, after already-pending same-time events.
  EventId defer(std::function<void()> fn);

  // Resume fast paths: same scheduling semantics as at/after/defer, but the
  // event stores the bare coroutine handle — no callable object. Every wake
  // path in the simulator (delay, sync primitives, process joins) goes
  // through these.
  EventId at_resume(Time t, std::coroutine_handle<> h);
  EventId after_resume(Duration d, std::coroutine_handle<> h);
  EventId defer_resume(std::coroutine_handle<> h);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Starts a coroutine process. The process body begins executing at now()
  /// (after currently pending same-time events). Returns a handle on which
  /// other processes can `co_await handle.join()`.
  Joinable spawn(Process p);

  /// Awaitable: suspends the awaiting process for duration d.
  /// Usage inside a Process coroutine: `co_await sim.delay(d);`
  auto delay(Duration d) {
    struct Awaiter {
      Simulation* sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->after_resume(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Runs until the event queue drains. Returns the final time.
  Time run();

  /// Runs events with timestamp <= t, then sets now() = t.
  void run_until(Time t);

  /// Runs a single event if one exists; returns false when drained.
  bool step();

  std::size_t pending_events() const { return queue_.size(); }

 private:
  Time now_ = 0;
  EventQueue queue_;
};

}  // namespace pagoda::sim
