// The simulation kernel: a virtual clock driving partitioned event queues.
//
// Everything in the Pagoda reproduction — host CPU threads, PCIe transfers,
// GPU scheduler warps and executor warps — is a coroutine process advanced by
// one Simulation instance. Runs are deterministic: same inputs, same event
// trace, same timings, regardless of sharding or worker threads.
//
// Sharding model (see src/sim/shard.h and DESIGN.md §14):
//
//  * Default (unsharded) — one shard, one queue: the historical
//    single-threaded simulator, bit-for-bit.
//  * Sharded sequential (configure_shards(), worker_threads == 1) — one
//    queue per shard, but every schedule stamps ONE global sequence counter
//    and the driver pops the globally least (time, seq) head. Execution
//    order is therefore EXACTLY the single-queue order; sharding is a
//    storage partition and a determinism proof, not a behavior change.
//  * Sharded parallel (set_worker_threads(N>1)) — a conservative-lookahead
//    window loop (ShardCoordinator): whenever the host shard holds the
//    globally least key the coordinator runs host events serially (they may
//    touch any shard — all others are parked strictly behind them); when
//    node shards lead, workers drain each node shard's events up to the
//    host head key in parallel. Node events may only touch their own
//    shard's state; anything host-facing goes through invoke_on/resume_on/
//    defer_on, which post a (timestamp, src_shard, src_seq)-stamped message
//    merged deterministically at the window barrier — and stop the posting
//    shard's drain so the host's reaction can never land in its past.
//
// Planes that couple shards at zero lookahead (the obs timeline/tracer, the
// power plane's edge sampling, fault plans) call require_serial(): windows
// are disabled and the run follows the sharded-sequential order exactly.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/time_types.h"
#include "sim/event_queue.h"
#include "sim/joinable.h"
#include "sim/shard.h"

namespace pagoda::sim {

class Process;
class ShardCoordinator;

class Simulation {
 public:
  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  // The unsharded single-queue simulator is the hot path for every
  // single-device experiment (fig5_overall schedules tens of millions of
  // events); each of the accessors below therefore branches on multi_shard_
  // inline and touches only now_/host_/next_seq_ in that case — no TLS
  // window lookup, no shard indirection, no out-of-line call. The sharded
  // variants carry the full routing logic in simulation.cpp.

  /// Current virtual time. Inside a parallel window this is the executing
  /// shard's local clock (shards run ahead independently within the
  /// window); everywhere else it is the global clock.
  Time now() const { return multi_shard_ ? sharded_now() : now_; }

  /// Schedules fn at absolute time t (must be >= now()).
  EventId at(Time t, std::function<void()> fn) {
    if (multi_shard_) return sharded_at(t, std::move(fn));
    PAGODA_CHECK_MSG(t >= now_, "cannot schedule events in the past");
    return host_->queue.schedule(t, std::move(fn), next_seq_++);
  }

  /// Schedules fn after duration d (>= 0).
  EventId after(Duration d, std::function<void()> fn) {
    PAGODA_CHECK_MSG(d >= 0, "negative delay");
    return at(now() + d, std::move(fn));
  }

  /// Schedules fn at the current time, after already-pending same-time events.
  EventId defer(std::function<void()> fn) { return at(now(), std::move(fn)); }

  // Resume fast paths: same scheduling semantics as at/after/defer, but the
  // event stores the bare coroutine handle — no callable object. Every wake
  // path in the simulator (delay, sync primitives, process joins) goes
  // through these.
  EventId at_resume(Time t, std::coroutine_handle<> h) {
    if (multi_shard_) return sharded_at_resume(t, h);
    PAGODA_CHECK_MSG(t >= now_, "cannot schedule events in the past");
    return host_->queue.schedule_resume(t, h, next_seq_++);
  }
  EventId after_resume(Duration d, std::coroutine_handle<> h) {
    PAGODA_CHECK_MSG(d >= 0, "negative delay");
    return at_resume(now() + d, h);
  }
  EventId defer_resume(std::coroutine_handle<> h) {
    return at_resume(now(), h);
  }

  bool cancel(EventId id) {
    // Unsharded ids carry no shard tag; they go straight to the host queue
    // (whose generation check rejects stale or foreign ids).
    return multi_shard_ ? sharded_cancel(id) : host_->queue.cancel(id);
  }

  /// Starts a coroutine process. The process body begins executing at now()
  /// (after currently pending same-time events) on the current shard, which
  /// becomes the process's home shard. Returns a handle on which other
  /// processes can `co_await handle.join()`.
  Joinable spawn(Process p);

  /// Awaitable: suspends the awaiting process for duration d.
  /// Usage inside a Process coroutine: `co_await sim.delay(d);`
  auto delay(Duration d) {
    struct Awaiter {
      Simulation* sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->after_resume(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Runs until every event queue drains. Returns the final time.
  Time run();

  /// Runs events with timestamp <= t, then sets now() = t.
  void run_until(Time t);

  /// Runs a single event if one exists; returns false when drained. Always
  /// follows the global (time, seq) merge order, even when sharded.
  bool step();

  std::size_t pending_events() const;

  // --- sharding ------------------------------------------------------------

  /// Partitions the simulation into 1 host shard + `node_shards` node
  /// shards. Must be called before any event is scheduled (the Cluster
  /// constructor calls it before building nodes). No-op when sharding was
  /// disabled via set_sharding_enabled(false).
  void configure_shards(int node_shards);
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Opt out of sharding entirely (the `--sim-core=global` escape hatch the
  /// equivalence soak compares against). Must precede configure_shards().
  void set_sharding_enabled(bool enabled) { sharding_enabled_ = enabled; }
  bool sharding_enabled() const { return sharding_enabled_; }

  /// Worker pool size for parallel windows. 1 (default) = sequential
  /// sharded execution; N > 1 enables the window loop when shards exist and
  /// no plane demanded serial order.
  void set_worker_threads(int n);
  int worker_threads() const { return worker_threads_; }

  /// Declares that this run contains a coupling the window loop cannot
  /// reorder around (timeline observers, power edges, fault plans). The
  /// first caller's reason is kept for diagnostics; parallel windows are
  /// disabled, execution follows the exact sequential merge order.
  void require_serial(const char* why);
  const char* serial_reason() const { return serial_reason_; }

  /// Shard of the code currently executing (event body, construction scope)
  /// — and therefore the home shard given to anything it spawns.
  ShardId current_shard() const {
    return multi_shard_ ? sharded_current_shard() : kHostShard;
  }

  /// True while the calling thread is draining a shard inside a parallel
  /// window (always false in sequential modes). Sync primitives use this to
  /// reject couplings the window loop cannot reorder around.
  bool in_parallel_window() const {
    return multi_shard_ && window_shard() != nullptr;
  }

  /// RAII construction/call scope: objects built and events scheduled while
  /// a scope is active home onto its shard. The Cluster wraps each
  /// GpuNode's construction and start in one.
  class ShardScope {
   public:
    ShardScope(Simulation& sim, ShardId s);
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;
    ~ShardScope();

   private:
    Simulation* sim_;
    ShardId prev_;
  };

  // --- typed cross-shard channels ------------------------------------------
  // The only legal ways for a node-shard event to reach another shard. In
  // sequential modes they collapse to the historical direct behavior
  // (byte-identical schedules); inside a parallel window a cross-shard call
  // becomes a post on the shard's outbox, merged at the window barrier in
  // deterministic (time, src_shard, src_seq) order.

  /// Resumes `h` on its home shard at the current time (defer semantics).
  /// Returns the event id, or 0 when the wake was posted cross-shard
  /// (posted wakes are not cancellable — no caller cancels wakes).
  EventId resume_on(ShardId home, std::coroutine_handle<> h);

  /// Defers `fn` onto `home` at the current time.
  void defer_on(ShardId home, std::function<void()> fn);

  /// Runs `fn` against `target`'s state: immediately (synchronously) when
  /// that is safe — sequential modes, or already on `target` — otherwise as
  /// a posted message. The MasterKernel routes its completion observer
  /// (host dispatcher state) through this.
  void invoke_on(ShardId target, std::function<void()> fn);

  /// Window/merge statistics (zeroes until a parallel run happened).
  const ShardStats& shard_stats() const;

  // --- internal (public for the coordinator and the thread-local context) --
  struct Post {
    Time at;
    ShardId target;
    ShardId src;
    std::uint64_t order;  // per-shard post index within the window
    std::function<void()> fn;
    std::coroutine_handle<> resume = nullptr;
  };
  struct Shard {
    EventQueue queue;
    ShardId id = 0;
    Time now = 0;  ///< local clock; == global clock outside windows
    // Parallel-window state (touched only by the draining worker / the
    // coordinator at barriers):
    std::uint64_t window_seq = 0;
    std::uint64_t window_seq_end = 0;
    std::uint64_t post_order = 0;
    bool stop = false;  ///< posted this window — drain must halt
    std::uint64_t drained = 0;  ///< events run this window (stats fold)
    std::vector<Post> outbox;
  };

 private:
  friend class ShardCoordinator;

  static constexpr int kShardShift = 32 + EventQueue::kSlotBits;

  // Sharded slow paths behind the inline multi_shard_ branch above.
  Time sharded_now() const;
  EventId sharded_at(Time t, std::function<void()> fn);
  EventId sharded_at_resume(Time t, std::coroutine_handle<> h);
  bool sharded_cancel(EventId id);
  ShardId sharded_current_shard() const;

  Shard& shard(ShardId s) { return *shards_[s]; }
  Shard* window_shard() const;  ///< TLS; non-null inside a parallel window
  EventId compose(ShardId s, EventId queue_id) const {
    return queue_id == 0
               ? 0
               : queue_id | (static_cast<EventId>(s) << kShardShift);
  }
  std::uint64_t window_seq(Shard& s);
  void step_shard(Shard& s);  ///< pop + run one event of s (serial context)
  bool parallel_eligible() const;
  ShardCoordinator& coordinator();

  Time now_ = 0;
  ShardId cur_shard_ = kHostShard;
  std::uint64_t next_seq_ = 1;  ///< global schedule counter (serial contexts)
  Shard* host_ = nullptr;       ///< cached shards_[0] for the inline fast path
  bool multi_shard_ = false;    ///< true once configure_shards grew shards
  std::vector<std::unique_ptr<Shard>> shards_;
  bool sharding_enabled_ = true;
  int worker_threads_ = 1;
  const char* serial_reason_ = nullptr;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

namespace internal {
/// Binds/clears the calling thread's active window shard (coordinator use).
void set_window_shard(Simulation::Shard* s);
}  // namespace internal

}  // namespace pagoda::sim
