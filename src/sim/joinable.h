// Shared completion state of a process and the copyable join handle.
//
// Split from process.h so that Simulation::spawn can return a Joinable
// without a circular include (process.h needs simulation.h for awaits).
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "sim/shard.h"

namespace pagoda::sim {

class Simulation;

/// The shard whose context is currently executing on `sim` (kHostShard when
/// sim is null). Out-of-line so this header stays independent of
/// simulation.h (which includes it).
ShardId current_shard_of(const Simulation* sim);

/// Completion state shared between a (self-destroying) process frame and any
/// outstanding Process tokens / join handles. `home` is the shard the
/// process was spawned on; joiners record their own home so completion can
/// wake each of them on the right shard.
struct ProcessState {
  Simulation* sim = nullptr;
  bool spawned = false;
  bool done = false;
  ShardId home = kHostShard;
  struct Joiner {
    std::coroutine_handle<> handle;
    ShardId home;
  };
  std::vector<Joiner> joiners;
};

/// Copyable handle for awaiting completion of a spawned process.
class Joinable {
 public:
  Joinable() = default;
  explicit Joinable(std::shared_ptr<ProcessState> st) : state_(std::move(st)) {}

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_->done; }

  /// Awaitable: suspends the caller until the process completes. Completes
  /// immediately when the process already finished.
  auto join() const {
    struct Awaiter {
      std::shared_ptr<ProcessState> st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) {
        st->joiners.push_back(
            ProcessState::Joiner{h, current_shard_of(st->sim)});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<ProcessState> state_;
};

}  // namespace pagoda::sim
