#include "sim/ps_resource.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace pagoda::sim {

namespace {
// Tolerance (in work units) when matching completions against virtual time;
// absorbs floating-point drift from incremental V updates.
constexpr double kWorkEpsilon = 1e-6;
}  // namespace

PsResource::PsResource(Simulation& sim, double capacity, double max_job_rate)
    : sim_(&sim),
      capacity_(capacity),
      max_job_rate_(max_job_rate),
      base_capacity_(capacity),
      base_max_job_rate_(max_job_rate) {
  PAGODA_CHECK(capacity > 0.0);
  PAGODA_CHECK(max_job_rate > 0.0);
  last_update_ = sim.now();
}

void PsResource::set_rate_scale(double scale) {
  PAGODA_CHECK(scale > 0.0);
  if (scale == rate_scale_) return;
  // Charge elapsed time at the outgoing rate, then switch. Rates are always
  // derived from the construction-time bases so scale 1.0 is bit-exact.
  advance_virtual_time();
  rate_scale_ = scale;
  capacity_ = base_capacity_ * scale;
  max_job_rate_ = base_max_job_rate_ * scale;
  reschedule_completion();
}

double PsResource::current_rate() const {
  const auto n = static_cast<double>(heap_.size());
  if (n == 0.0) return 0.0;
  return std::min(max_job_rate_, capacity_ / n);
}

void PsResource::advance_virtual_time() {
  const Time now = sim_->now();
  if (now == last_update_) return;
  const double dt = to_seconds(now - last_update_);
  const double n = static_cast<double>(heap_.size());
  const double rate = current_rate();
  virtual_time_ += rate * dt;
  busy_integral_ += std::min(capacity_, n * max_job_rate_) * dt;
  job_integral_ += n * dt;
  last_update_ = now;
}

void PsResource::submit(double work, std::function<void()> on_done) {
  PAGODA_CHECK(work >= 0.0);
  if (work == 0.0) {
    sim_->defer(std::move(on_done));
    return;
  }
  advance_virtual_time();
  heap_.push(Job{virtual_time_ + work, next_seq_++, std::move(on_done)});
  reschedule_completion();
}

void PsResource::reschedule_completion() {
  if (completion_event_ != 0) {
    sim_->cancel(completion_event_);
    completion_event_ = 0;
  }
  if (heap_.empty()) return;
  const double rate = current_rate();
  PAGODA_CHECK(rate > 0.0);
  const double remaining_work =
      std::max(0.0, heap_.top().finish_v - virtual_time_);
  const double dt_seconds = remaining_work / rate;
  const auto dt = static_cast<Duration>(std::ceil(dt_seconds * 1e12));
  completion_event_ = sim_->after(dt, [this] { on_completion_event(); });
}

void PsResource::on_completion_event() {
  completion_event_ = 0;
  advance_virtual_time();
  // Pop every job whose service is complete (ties complete together, e.g.,
  // equal-work jobs submitted at the same instant). The staging vector is a
  // reused member; callbacks only run after re-arming, and nothing re-enters
  // this method synchronously (completions fire from the event queue only).
  done_scratch_.clear();
  while (!heap_.empty() &&
         heap_.top().finish_v <= virtual_time_ + kWorkEpsilon) {
    done_scratch_.push_back(std::move(const_cast<Job&>(heap_.top()).on_done));
    heap_.pop();
  }
  // Integer-time rounding can fire the event one tick early, before the top
  // job's virtual finish time; in that case just re-arm.
  reschedule_completion();
  for (auto& fn : done_scratch_) fn();
}

// The read-side accessors must NOT advance the internal accumulators:
// re-anchoring virtual_time_ at an observation point changes the rounding of
// subsequent incremental updates, so a run that is merely *observed* (e.g.
// by the obs sampler) would diverge by picoseconds from an unobserved one.
// Extrapolate the integral to `now` without mutating instead.

double PsResource::busy_work_seconds() const {
  const double dt = to_seconds(sim_->now() - last_update_);
  const double n = static_cast<double>(heap_.size());
  return busy_integral_ + std::min(capacity_, n * max_job_rate_) * dt;
}

double PsResource::job_seconds() const {
  const double dt = to_seconds(sim_->now() - last_update_);
  return job_integral_ + static_cast<double>(heap_.size()) * dt;
}

}  // namespace pagoda::sim
