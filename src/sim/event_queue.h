// Time-ordered event queue with stable FIFO ordering and cancellation.
//
// Events scheduled at the same timestamp fire in schedule order (FIFO), which
// makes simulations deterministic and lets protocol code rely on "signal then
// observe" sequencing within a timestep.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time_types.h"

namespace pagoda::sim {

/// Handle to a scheduled event, usable for cancellation. Id 0 is never issued.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventId schedule(Time at, std::function<void()> fn);

  /// Cancels a pending event. Returns true if the event was still pending;
  /// cancelling an already-fired or unknown id is a harmless no-op returning
  /// false (this is the convenient semantics for timeout races).
  bool cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event; kTimeMax when empty.
  Time next_time() const;

  struct Popped {
    Time at;
    std::function<void()> fn;
  };

  /// Pops the earliest event without running it — the caller advances the
  /// clock first so the callback observes the correct current time.
  /// Precondition: !empty().
  Popped pop();

 private:
  struct Entry {
    Time at;
    EventId id;  // monotonically increasing => FIFO tie-break
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  /// Drops cancelled entries from the top of the heap.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> pending_;  // ids scheduled and not yet fired/cancelled
  EventId next_id_ = 1;
};

}  // namespace pagoda::sim
