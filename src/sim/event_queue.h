// Time-ordered event queue with stable FIFO ordering and cancellation.
//
// Determinism contract: events scheduled at the same timestamp fire in
// schedule order (FIFO). The tie-break is an explicit monotonically
// increasing sequence number stamped on every schedule — NOT the EventId,
// which packs a pooled slot index and its reuse generation and is therefore
// not ordered. Protocol code relies on this "signal then observe" sequencing
// within a timestep; it is also what makes whole runs bit-reproducible.
//
// Sharded simulations keep one EventQueue per shard and merge heads by the
// exposed (time, seq) key. The sequence number can therefore be supplied by
// the caller: the Simulation stamps a single global counter across all shard
// queues in sequential modes (so the merged order is exactly the historical
// single-queue order), and disjoint per-window ranges under the worker pool.
// The internal counter remains for standalone use (tests, direct users).
//
// Storage is pooled: event bodies live in a slab of reusable nodes (a free
// list recycles slots), and the heap orders small POD keys. Steady-state
// scheduling therefore performs no per-event heap allocation — the
// pre-pool implementation paid one hash-set node per event for the
// cancellation index alone. Cancellation is O(1): the slot is released
// immediately (bumping its generation) and the stale heap key is dropped
// when it reaches the top.
//
// The resume fast path (`schedule_resume`) stores a bare coroutine handle
// instead of a std::function — the simulator's hottest events (delays,
// deferred wakeups) carry no closure at all.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time_types.h"

namespace pagoda::sim {

/// Handle to a scheduled event, usable for cancellation. Packs
/// (slot+1) << 32 | generation; id 0 is never issued. The top bits above
/// kSlotBits stay zero so a Simulation can tag the owning shard there.
using EventId = std::uint64_t;

/// Merge key of a pending event. Total order (at, seq); two events never
/// share a seq within one Simulation, so comparisons are never ambiguous.
struct EventKey {
  Time at = kTimeMax;
  std::uint64_t seq = ~std::uint64_t{0};

  bool operator<(const EventKey& o) const {
    if (at != o.at) return at < o.at;
    return seq < o.seq;
  }
  bool operator<=(const EventKey& o) const { return !(o < *this); }
  bool valid() const { return at != kTimeMax || seq != ~std::uint64_t{0}; }
};

class EventQueue {
 public:
  /// Slot indices are bounded so EventIds leave room for a shard tag: bits
  /// [32, 32+kSlotBits) hold slot+1, bits [0,32) the generation, and bits
  /// [32+kSlotBits, 64) are free for the owner. 2^21 simultaneously pending
  /// events per shard is far beyond anything the simulator reaches.
  static constexpr int kSlotBits = 21;
  static constexpr std::uint64_t kMaxSlots = (1ull << kSlotBits) - 2;

  EventId schedule(Time at, std::function<void()> fn);
  /// Fast path for "resume this coroutine at t": no callable is stored.
  EventId schedule_resume(Time at, std::coroutine_handle<> h);

  // Explicit-seq variants for sharded owners (see file comment). seq values
  // must be unique per queue; relative order within a queue must be
  // monotone in schedule time for the FIFO contract to hold.
  EventId schedule(Time at, std::function<void()> fn, std::uint64_t seq);
  EventId schedule_resume(Time at, std::coroutine_handle<> h,
                          std::uint64_t seq);

  /// Cancels a pending event. Returns true if the event was still pending;
  /// cancelling an already-fired, already-cancelled or unknown id is a
  /// harmless no-op returning false (the convenient semantics for timeout
  /// races). Robust against slab reuse: the id carries the generation the
  /// slot had when the event was scheduled, and a slot's generation is
  /// bumped on every release, so a stale id can never cancel the unrelated
  /// event that now occupies the recycled slot (pinned by
  /// EventCancelSlabReuse in tests/shard_test.cpp).
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; kTimeMax when empty.
  Time next_time() const;

  /// Full merge key of the earliest pending event; an invalid() key when
  /// empty. Sharded owners merge queue heads on this.
  EventKey next_key() const;

  struct Popped {
    Time at;
    std::function<void()> fn;        // empty for resume events
    std::coroutine_handle<> resume;  // null for callback events

    /// Runs whichever body this event carries.
    void run() {
      if (resume) {
        resume.resume();
      } else {
        fn();
      }
    }
  };

  /// Pops the earliest event without running it — the caller advances the
  /// clock first so the callback observes the correct current time.
  /// Precondition: !empty().
  Popped pop();

 private:
  /// Pooled event body. `gen` counts slot reuses; a heap key whose
  /// generation mismatches its slot's is stale (cancelled or already fired)
  /// and is skimmed off the top.
  struct Node {
    std::function<void()> fn;
    std::coroutine_handle<> resume = nullptr;
    std::uint32_t gen = 0;
    bool live = false;
  };

  /// POD heap key: 24 bytes, ordered by (at, seq).
  struct HeapItem {
    Time at;
    std::uint64_t seq;   // explicit FIFO tie-break (see file comment)
    std::uint32_t slot;
    std::uint32_t gen;
    bool operator>(const HeapItem& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  EventId push(Time at, std::uint32_t slot, std::uint64_t seq);

  /// Drops stale (cancelled/fired) keys from the top of the heap.
  void skim();

  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace pagoda::sim
