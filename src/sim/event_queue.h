// Time-ordered event queue with stable FIFO ordering and cancellation.
//
// Determinism contract: events scheduled at the same timestamp fire in
// schedule order (FIFO). The tie-break is an explicit monotonically
// increasing sequence number stamped on every schedule — NOT the EventId,
// which packs a pooled slot index and its reuse generation and is therefore
// not ordered. Protocol code relies on this "signal then observe" sequencing
// within a timestep; it is also what makes whole runs bit-reproducible.
//
// Storage is pooled: event bodies live in a slab of reusable nodes (a free
// list recycles slots), and the heap orders small POD keys. Steady-state
// scheduling therefore performs no per-event heap allocation — the
// pre-pool implementation paid one hash-set node per event for the
// cancellation index alone. Cancellation is O(1): the slot is released
// immediately (bumping its generation) and the stale heap key is dropped
// when it reaches the top.
//
// The resume fast path (`schedule_resume`) stores a bare coroutine handle
// instead of a std::function — the simulator's hottest events (delays,
// deferred wakeups) carry no closure at all.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time_types.h"

namespace pagoda::sim {

/// Handle to a scheduled event, usable for cancellation. Packs
/// (slot+1) << 32 | generation; id 0 is never issued.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventId schedule(Time at, std::function<void()> fn);

  /// Fast path for "resume this coroutine at t": no callable is stored.
  EventId schedule_resume(Time at, std::coroutine_handle<> h);

  /// Cancels a pending event. Returns true if the event was still pending;
  /// cancelling an already-fired or unknown id is a harmless no-op returning
  /// false (this is the convenient semantics for timeout races).
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; kTimeMax when empty.
  Time next_time() const;

  struct Popped {
    Time at;
    std::function<void()> fn;        // empty for resume events
    std::coroutine_handle<> resume;  // null for callback events

    /// Runs whichever body this event carries.
    void run() {
      if (resume) {
        resume.resume();
      } else {
        fn();
      }
    }
  };

  /// Pops the earliest event without running it — the caller advances the
  /// clock first so the callback observes the correct current time.
  /// Precondition: !empty().
  Popped pop();

 private:
  /// Pooled event body. `gen` counts slot reuses; a heap key whose
  /// generation mismatches its slot's is stale (cancelled or already fired)
  /// and is skimmed off the top.
  struct Node {
    std::function<void()> fn;
    std::coroutine_handle<> resume = nullptr;
    std::uint32_t gen = 0;
    bool live = false;
  };

  /// POD heap key: 24 bytes, ordered by (at, seq).
  struct HeapItem {
    Time at;
    std::uint64_t seq;   // explicit FIFO tie-break (see file comment)
    std::uint32_t slot;
    std::uint32_t gen;
    bool operator>(const HeapItem& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  EventId push(Time at, std::uint32_t slot);

  /// Drops stale (cancelled/fired) keys from the top of the heap.
  void skim();

  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace pagoda::sim
