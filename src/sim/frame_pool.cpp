#include "sim/frame_pool.h"

#include <new>

namespace pagoda::sim {

#ifndef PAGODA_FRAME_POOL_DISABLED

namespace {

// Buckets are kGranule-sized steps up to kGranule * kBuckets (2 KiB); the
// simulator's frames (Process/Task bodies) all land well inside that.
constexpr std::size_t kGranule = 64;
constexpr std::size_t kBuckets = 32;

struct FreeNode {
  FreeNode* next;
};

struct Pool {
  FreeNode* buckets[kBuckets] = {};

  ~Pool() {
    for (FreeNode* head : buckets) {
      while (head != nullptr) {
        FreeNode* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }
};

thread_local Pool tls_pool;

}  // namespace

void* frame_alloc(std::size_t bytes) {
  const std::size_t b = (bytes + kGranule - 1) / kGranule;
  if (b == 0 || b > kBuckets) return ::operator new(bytes);
  FreeNode*& head = tls_pool.buckets[b - 1];
  if (head != nullptr) {
    FreeNode* n = head;
    head = n->next;
    return n;
  }
  return ::operator new(b * kGranule);
}

void frame_free(void* p, std::size_t bytes) noexcept {
  const std::size_t b = (bytes + kGranule - 1) / kGranule;
  if (b == 0 || b > kBuckets) {
    ::operator delete(p);
    return;
  }
  auto* n = static_cast<FreeNode*>(p);
  n->next = tls_pool.buckets[b - 1];
  tls_pool.buckets[b - 1] = n;
}

#else  // PAGODA_FRAME_POOL_DISABLED

void* frame_alloc(std::size_t bytes) { return ::operator new(bytes); }
void frame_free(void* p, std::size_t) noexcept { ::operator delete(p); }

#endif

}  // namespace pagoda::sim
