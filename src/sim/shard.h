// Shard identities for the partitioned simulation core.
//
// A shard is an independent event domain: shard 0 ("the host shard") carries
// every host-side process (dispatchers, arrival sources, samplers, data-copy
// chains), and each GpuNode owns one shard for its device-internal events
// (MasterKernel scheduler/executor warps, SMM execution timers, runtime
// protocol streams). Cross-shard interactions travel through typed posts
// (see Simulation::invoke_on / resume_on / defer_on) that stamp a
// deterministic (timestamp, src_shard, src_seq) merge key, so the merged
// order is independent of worker-thread interleaving.
//
// Shard 0 always exists; a Simulation without configure_shards() is the
// single-shard legacy build and behaves exactly as before this layer.
#pragma once

#include <cstdint>

#include "common/time_types.h"

namespace pagoda::sim {

/// Index of an event shard within one Simulation. Shard 0 is the host shard.
using ShardId = std::uint16_t;

inline constexpr ShardId kHostShard = 0;

/// EventIds reserve 10 bits for the owning shard: 1 host + up to 1022 nodes,
/// comfortably above the 256-node fleet target.
inline constexpr int kMaxShards = 1023;

/// Counters the coordinator keeps per run; exposed for tests and the
/// fleet_scale bench (they prove windows actually parallelize).
struct ShardStats {
  std::uint64_t windows = 0;          ///< parallel windows executed
  std::uint64_t window_events = 0;    ///< events run inside windows
  std::uint64_t serial_events = 0;    ///< events run in host/serial phases
  std::uint64_t posts = 0;            ///< cross-shard messages merged
  std::uint64_t window_stops = 0;     ///< drains cut short by a post
};

}  // namespace pagoda::sim
