// Coroutine process type for the simulator.
//
// A Process is a fire-and-forget coroutine whose suspension points are
// virtual-time awaits (sim.delay, Condition::wait, PsResource::execute, ...).
// The coroutine frame destroys itself when the body finishes; the Process
// object is a lightweight token passed to Simulation::spawn, which returns a
// Joinable for awaiting completion. Dropping tokens/handles never cancels the
// process.
//
// Process bodies must only capture state that outlives the process; the
// simulator is single-threaded so no locking is involved.
#pragma once

#include <coroutine>
#include <memory>
#include <utility>

#include "common/check.h"
#include "sim/frame_pool.h"
#include "sim/joinable.h"
#include "sim/simulation.h"

namespace pagoda::sim {

class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type : PooledFrame {
    std::shared_ptr<ProcessState> state = std::make_shared<ProcessState>();

    Process get_return_object() {
      return Process(Handle::from_promise(*this), state);
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(Handle h) noexcept {
        // Keep the shared state alive past frame destruction.
        std::shared_ptr<ProcessState> st = h.promise().state;
        st->done = true;
        if (!st->joiners.empty()) {
          PAGODA_CHECK(st->sim != nullptr);
          for (const ProcessState::Joiner& j : st->joiners) {
            st->sim->resume_on(j.home, j.handle);
          }
          st->joiners.clear();
        }
        h.destroy();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  Process(Process&& o) noexcept
      : handle_(std::exchange(o.handle_, {})), state_(std::move(o.state_)) {}
  Process& operator=(Process&&) = delete;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ~Process() {
    // A token for a process that was never spawned owns the frame.
    if (handle_ && state_ && !state_->spawned) handle_.destroy();
  }

  bool done() const { return state_->done; }

  Joinable joinable() const { return Joinable(state_); }

 private:
  friend class Simulation;
  Process(Handle h, std::shared_ptr<ProcessState> s)
      : handle_(h), state_(std::move(s)) {}

  Handle handle_;
  std::shared_ptr<ProcessState> state_;
};

}  // namespace pagoda::sim
