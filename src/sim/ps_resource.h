// Processor-sharing resource with an optional per-job rate cap.
//
// Models a server of total capacity C (work-units per second) shared equally
// among its n active jobs, where each job's service rate is additionally
// capped at r_max:   rate(t) = min(r_max, C / n(t)).
//
// Two instantiations cover the whole reproduction:
//   * An SMM's issue pipeline: C = 4 warp-instructions/cycle, r_max = 1
//     (one warp cannot issue faster than one instruction per cycle; four
//     warp schedulers saturate at >= 4 runnable warps).
//   * A PCIe direction: C = r_max = link bandwidth (a lone transfer uses the
//     full link; concurrent transfers share it).
//
// Because the rate is identical for every active job, completions can be
// tracked exactly in "virtual service time" V(t) with dV/dt = rate(t): a job
// enqueued at V0 with w work units finishes when V = V0 + w. Each membership
// change advances V and re-schedules the single pending completion event —
// O(log n) per event via a min-heap on finish-V.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time_types.h"
#include "sim/simulation.h"

namespace pagoda::sim {

class PsResource {
 public:
  /// capacity and max_job_rate are in work-units per second.
  PsResource(Simulation& sim, double capacity, double max_job_rate);

  /// Starts a job of `work` units; on_done fires at its completion time.
  /// Zero-work jobs complete via a deferred event at the current time.
  void submit(double work, std::function<void()> on_done);

  /// Awaitable form: `co_await res.execute(work);` suspends the calling
  /// process until the work completes.
  auto execute(double work) {
    struct Awaiter {
      PsResource* res;
      double work;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        res->submit(work, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, work};
  }

  int active_jobs() const { return static_cast<int>(heap_.size()); }

  /// Scales capacity and per-job rate cap to `scale` x their construction
  /// values (DVFS: a P-state change retimes in-flight work). Safe mid-run:
  /// virtual time is advanced at the old rate before the switch and the
  /// pending completion is re-scheduled at the new rate. A scale of 1.0
  /// restores the constructed rates exactly (no drift from repeated calls).
  void set_rate_scale(double scale);

  double rate_scale() const { return rate_scale_; }

  /// ∫ utilized-capacity dt in work-unit·seconds, where utilized capacity is
  /// min(C, n·r_max). Used for occupancy/utilization reporting.
  double busy_work_seconds() const;

  /// ∫ n(t) dt in job·seconds (time-average active jobs = this / elapsed).
  double job_seconds() const;

  double capacity() const { return capacity_; }
  double max_job_rate() const { return max_job_rate_; }

 private:
  struct Job {
    double finish_v;
    std::uint64_t seq;  // FIFO tie-break for equal finish_v
    std::function<void()> on_done;
    bool operator>(const Job& o) const {
      if (finish_v != o.finish_v) return finish_v > o.finish_v;
      return seq > o.seq;
    }
  };

  double current_rate() const;  // per-job service rate, work-units/second
  void advance_virtual_time();
  void reschedule_completion();
  void on_completion_event();

  Simulation* sim_;
  double capacity_;
  double max_job_rate_;
  const double base_capacity_;      // construction-time capacity
  const double base_max_job_rate_;  // construction-time per-job cap
  double rate_scale_ = 1.0;

  std::priority_queue<Job, std::vector<Job>, std::greater<>> heap_;
  double virtual_time_ = 0.0;  // accumulated per-job service, work-units
  Time last_update_ = 0;
  EventId completion_event_ = 0;
  std::uint64_t next_seq_ = 1;

  double busy_integral_ = 0.0;  // work-unit·seconds of utilized capacity
  double job_integral_ = 0.0;   // job·seconds

  /// Completion-callback staging, reused across completion events so the
  /// hot path (every SMM instruction segment, every PCIe transfer) does not
  /// allocate a fresh vector per completion.
  std::vector<std::function<void()>> done_scratch_;
};

}  // namespace pagoda::sim
