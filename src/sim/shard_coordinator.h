// Conservative-lookahead coordinator for sharded parallel execution.
//
// The window loop (run_until):
//
//   1. Compare the host shard's head key against every node shard's head.
//   2. Host leads -> run host events serially. Host events have full
//      cross-shard freedom: every node shard is parked strictly BEHIND the
//      host key, so reads and writes into node state observe exactly the
//      sequential-order view.
//   3. A node shard leads -> open a parallel window with cut = the host
//      head key. Workers drain each node shard's events with key < cut.
//      Node events touch only their own shard; the natural lookahead is the
//      PCIe/link latency (transfer completions are scheduled at least one
//      link latency ahead of issue), and anything host-facing becomes a
//      post that also stops the shard's drain for this window.
//   4. Barrier. Merge every shard's outbox in (time, src_shard, src_seq)
//      order onto the target queues, stamping fresh global sequence
//      numbers. Repeat.
//
// Determinism: the window structure, per-window sequence ranges and merge
// order depend only on event content — never on thread scheduling — so any
// N >= 2 produces the identical event order, and that order matches
// sequential sharded execution except for same-timestamp ties between
// independent shards (which commute; the equivalence soak pins byte-equal
// output across all three modes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/shard.h"
#include "sim/simulation.h"

namespace pagoda::sim {

class ShardCoordinator {
 public:
  /// Spawns `threads - 1` workers (the coordinating thread is the Nth).
  ShardCoordinator(Simulation& sim, int threads);
  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;
  ~ShardCoordinator();

  /// Runs events with timestamp <= cap in window/serial phases.
  void run_until(Time cap);

  const ShardStats& stats() const { return stats_; }

 private:
  /// Sequence numbers one shard may stamp inside a single window. Carved
  /// from the global counter per shard per window; a shard scheduling more
  /// than this in one window trips a check.
  static constexpr std::uint64_t kWindowSpan = 1ull << 20;

  void run_window(const EventKey& cut);
  void drain(Simulation::Shard& s, const EventKey& cut);
  void drain_claimed();  ///< claim shards off active_ until exhausted
  void merge_outboxes();
  void worker_main();

  Simulation* sim_;
  ShardStats stats_;

  // Window publication. All fields below are written by the coordinator
  // under mu_ before bumping gen_; workers observe them after waking.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t gen_ = 0;
  int busy_workers_ = 0;
  bool stop_ = false;
  EventKey cut_;
  std::vector<ShardId> active_;
  std::atomic<std::size_t> next_claim_{0};

  std::vector<Simulation::Post> merge_buf_;
  std::vector<std::thread> workers_;
};

}  // namespace pagoda::sim
