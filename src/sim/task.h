// Awaitable sub-task coroutine: a lazily-started coroutine that resumes its
// awaiter on completion (symmetric transfer). Used to write multi-step async
// API calls (e.g. pagoda::Runtime::task_spawn) that host Processes co_await.
//
// Usage:
//   sim::Task<int> api_call();                // definition uses co_await
//   sim::Process host() { int r = co_await api_call(); ... }
//
// A Task must be awaited exactly once; the frame is destroyed when the Task
// object (a temporary in the co_await expression, alive until the full
// expression ends — i.e., past resumption) goes out of scope.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/frame_pool.h"

namespace pagoda::sim {

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      std::coroutine_handle<> c = h.promise().continuation;
      return c ? c : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct PromiseBase : PooledFrame {
    std::coroutine_handle<> continuation;
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { std::terminate(); }
  };

  struct promise_type : PromiseBase {
    T value{};
    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;  // start the task now
  }
  T await_resume() { return std::move(handle_.promise().value); }

 private:
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      std::coroutine_handle<> c = h.promise().continuation;
      return c ? c : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type : PooledFrame {
    std::coroutine_handle<> continuation;
    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() const noexcept {}

 private:
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

}  // namespace pagoda::sim
