// Size-bucketed free-list allocator for coroutine frames.
//
// The simulator creates and destroys millions of short-lived coroutine
// frames (sim::Process bodies, sim::Task<> API calls); under the default
// allocator every one is a malloc/free pair, which dominates host wall-clock
// at 32K-task scale. Frames recycle through per-size free lists instead:
// steady state performs no heap allocation at all.
//
// The pool is thread_local, which stays correct under the sharded worker
// pool (ShardCoordinator): a coroutine frame is only allocated and freed by
// whichever thread is executing its shard's events at that moment, and
// cross-window migration just means a frame allocated from one thread's pool
// is returned to another's — each list only ever sees frames with matching
// bucket sizes, and no list is touched concurrently. It is compiled out
// entirely under sanitizers (ASan keeps use-after-free of coroutine frames
// detectable — a recycled frame would otherwise mask UAF as silent
// corruption — and TSan sees every frame as a fresh allocation).
#pragma once

#include <cstddef>

namespace pagoda::sim {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PAGODA_FRAME_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PAGODA_FRAME_POOL_DISABLED 1
#endif
#endif

/// Allocates a coroutine frame of `bytes`; pooled for small sizes,
/// ::operator new beyond the largest bucket.
void* frame_alloc(std::size_t bytes);
/// Returns a frame to its bucket (sizes must match frame_alloc's).
void frame_free(void* p, std::size_t bytes) noexcept;

/// Mixin: a promise type inheriting this allocates its frame from the pool.
struct PooledFrame {
  static void* operator new(std::size_t bytes) { return frame_alloc(bytes); }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    frame_free(p, bytes);
  }
};

}  // namespace pagoda::sim
