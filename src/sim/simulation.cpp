#include "sim/simulation.h"

#include <utility>

#include "common/check.h"
#include "sim/process.h"

namespace pagoda::sim {

EventId Simulation::at(Time t, std::function<void()> fn) {
  PAGODA_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  return queue_.schedule(t, std::move(fn));
}

EventId Simulation::after(Duration d, std::function<void()> fn) {
  PAGODA_CHECK_MSG(d >= 0, "negative delay");
  return queue_.schedule(now_ + d, std::move(fn));
}

EventId Simulation::defer(std::function<void()> fn) {
  return queue_.schedule(now_, std::move(fn));
}

EventId Simulation::at_resume(Time t, std::coroutine_handle<> h) {
  PAGODA_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  return queue_.schedule_resume(t, h);
}

EventId Simulation::after_resume(Duration d, std::coroutine_handle<> h) {
  PAGODA_CHECK_MSG(d >= 0, "negative delay");
  return queue_.schedule_resume(now_ + d, h);
}

EventId Simulation::defer_resume(std::coroutine_handle<> h) {
  return queue_.schedule_resume(now_, h);
}

Joinable Simulation::spawn(Process p) {
  PAGODA_CHECK_MSG(!p.state_->spawned, "process spawned twice");
  p.state_->sim = this;
  p.state_->spawned = true;
  defer_resume(p.handle_);
  return Joinable(p.state_);
}

Time Simulation::run() {
  while (step()) {
  }
  return now_;
}

void Simulation::run_until(Time t) {
  PAGODA_CHECK(t >= now_);
  while (queue_.next_time() <= t) {
    step();
  }
  now_ = t;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  EventQueue::Popped e = queue_.pop();
  now_ = e.at;
  e.run();
  return true;
}

}  // namespace pagoda::sim
