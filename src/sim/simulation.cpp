#include "sim/simulation.h"

#include <utility>

#include "common/check.h"
#include "sim/process.h"

namespace pagoda::sim {

EventId Simulation::at(Time t, std::function<void()> fn) {
  PAGODA_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  return queue_.schedule(t, std::move(fn));
}

EventId Simulation::after(Duration d, std::function<void()> fn) {
  PAGODA_CHECK_MSG(d >= 0, "negative delay");
  return queue_.schedule(now_ + d, std::move(fn));
}

EventId Simulation::defer(std::function<void()> fn) {
  return queue_.schedule(now_, std::move(fn));
}

Joinable Simulation::spawn(Process p) {
  PAGODA_CHECK_MSG(!p.state_->spawned, "process spawned twice");
  p.state_->sim = this;
  p.state_->spawned = true;
  const Process::Handle h = p.handle_;
  defer([h] { h.resume(); });
  return Joinable(p.state_);
}

Time Simulation::run() {
  while (step()) {
  }
  return now_;
}

void Simulation::run_until(Time t) {
  PAGODA_CHECK(t >= now_);
  while (queue_.next_time() <= t) {
    step();
  }
  now_ = t;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  EventQueue::Popped e = queue_.pop();
  now_ = e.at;
  e.fn();
  return true;
}

}  // namespace pagoda::sim
