#include "sim/simulation.h"

#include <utility>

#include "common/check.h"
#include "sim/process.h"
#include "sim/shard_coordinator.h"

namespace pagoda::sim {

namespace {

/// Set for the duration of one shard drain inside a parallel window; null on
/// the coordinator thread and in every sequential mode. One simulation runs
/// per thread at a time, so a bare pointer suffices.
thread_local Simulation::Shard* t_window_shard = nullptr;

const ShardStats kNoStats{};

}  // namespace

Simulation::Simulation() {
  auto host = std::make_unique<Shard>();
  host->id = kHostShard;
  shards_.push_back(std::move(host));
  host_ = shards_[0].get();
}

Simulation::~Simulation() = default;

Simulation::Shard* Simulation::window_shard() const {
  Simulation::Shard* s = t_window_shard;
  // A stale pointer from another Simulation is impossible: the coordinator
  // clears the TLS before its barrier completes.
  return s;
}

Time Simulation::sharded_now() const {
  const Shard* w = window_shard();
  return w != nullptr ? w->now : now_;
}

std::uint64_t Simulation::window_seq(Shard& s) {
  PAGODA_CHECK_MSG(s.window_seq < s.window_seq_end,
                   "shard exhausted its window sequence range");
  return s.window_seq++;
}

EventId Simulation::sharded_at(Time t, std::function<void()> fn) {
  if (Shard* w = window_shard()) {
    PAGODA_CHECK_MSG(t >= w->now, "cannot schedule events in the past");
    return compose(w->id, w->queue.schedule(t, std::move(fn), window_seq(*w)));
  }
  PAGODA_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  Shard& tgt = shard(cur_shard_);
  PAGODA_CHECK_MSG(t >= tgt.now,
                   "scheduling into a shard's drained past (a parallel "
                   "window ran this shard ahead of the scheduling time)");
  return compose(cur_shard_, tgt.queue.schedule(t, std::move(fn), next_seq_++));
}

EventId Simulation::sharded_at_resume(Time t, std::coroutine_handle<> h) {
  if (Shard* w = window_shard()) {
    PAGODA_CHECK_MSG(t >= w->now, "cannot schedule events in the past");
    return compose(w->id, w->queue.schedule_resume(t, h, window_seq(*w)));
  }
  PAGODA_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  Shard& tgt = shard(cur_shard_);
  PAGODA_CHECK_MSG(t >= tgt.now,
                   "scheduling into a shard's drained past (a parallel "
                   "window ran this shard ahead of the scheduling time)");
  return compose(cur_shard_, tgt.queue.schedule_resume(t, h, next_seq_++));
}

bool Simulation::sharded_cancel(EventId id) {
  if (id == 0) return false;
  const auto s = static_cast<ShardId>(id >> kShardShift);
  const EventId qid = id & ((EventId{1} << kShardShift) - 1);
  PAGODA_CHECK_MSG(s < shards_.size(), "cancel with a foreign event id");
  if (Shard* w = window_shard()) {
    // Inside a window a worker may only touch its own shard's queue.
    PAGODA_CHECK_MSG(s == w->id,
                     "cross-shard cancel from inside a parallel window");
  }
  return shard(s).queue.cancel(qid);
}

Joinable Simulation::spawn(Process p) {
  PAGODA_CHECK_MSG(!p.state_->spawned, "process spawned twice");
  p.state_->sim = this;
  p.state_->spawned = true;
  p.state_->home = current_shard();
  defer_resume(p.handle_);
  return Joinable(p.state_);
}

// --- sharding ---------------------------------------------------------------

void Simulation::configure_shards(int node_shards) {
  if (!sharding_enabled_ || node_shards <= 0) return;
  PAGODA_CHECK_MSG(shards_.size() == 1,
                   "configure_shards may only grow a fresh simulation");
  PAGODA_CHECK_MSG(1 + node_shards <= kMaxShards, "too many shards");
  for (int i = 0; i < node_shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->id = static_cast<ShardId>(1 + i);
    s->now = now_;
    shards_.push_back(std::move(s));
  }
  multi_shard_ = true;
}

void Simulation::set_worker_threads(int n) {
  PAGODA_CHECK_MSG(n >= 1, "worker pool needs at least one thread");
  PAGODA_CHECK_MSG(coordinator_ == nullptr,
                   "worker pool already running; set threads before the run");
  worker_threads_ = n;
}

void Simulation::require_serial(const char* why) {
  if (serial_reason_ == nullptr) serial_reason_ = why;
}

ShardId Simulation::sharded_current_shard() const {
  const Shard* w = window_shard();
  return w != nullptr ? w->id : cur_shard_;
}

Simulation::ShardScope::ShardScope(Simulation& sim, ShardId s)
    : sim_(&sim), prev_(sim.cur_shard_) {
  PAGODA_CHECK_MSG(t_window_shard == nullptr,
                   "ShardScope inside a parallel window");
  // With sharding disabled (or fewer shards than nodes) scopes degrade to
  // the host shard: everything still runs, just unsharded.
  sim.cur_shard_ =
      s < sim.shards_.size() ? s : kHostShard;
}

Simulation::ShardScope::~ShardScope() { sim_->cur_shard_ = prev_; }

// --- typed cross-shard channels ---------------------------------------------

EventId Simulation::resume_on(ShardId home, std::coroutine_handle<> h) {
  PAGODA_CHECK_MSG(home < shards_.size(), "resume_on unknown shard");
  if (Shard* w = window_shard()) {
    if (home == w->id) {
      return compose(home,
                     w->queue.schedule_resume(w->now, h, window_seq(*w)));
    }
    w->outbox.push_back(Post{w->now, home, w->id, w->post_order++, {}, h});
    w->stop = true;
    return 0;
  }
  Shard& tgt = shard(home);
  PAGODA_CHECK_MSG(now_ >= tgt.now,
                   "cross-shard wake into the target shard's drained past "
                   "(causality violation: a parallel window outran this "
                   "coupling's lookahead)");
  return compose(home, tgt.queue.schedule_resume(now_, h, next_seq_++));
}

void Simulation::defer_on(ShardId home, std::function<void()> fn) {
  PAGODA_CHECK_MSG(home < shards_.size(), "defer_on unknown shard");
  if (Shard* w = window_shard()) {
    if (home == w->id) {
      w->queue.schedule(w->now, std::move(fn), window_seq(*w));
      return;
    }
    w->outbox.push_back(
        Post{w->now, home, w->id, w->post_order++, std::move(fn), nullptr});
    w->stop = true;
    return;
  }
  Shard& tgt = shard(home);
  PAGODA_CHECK_MSG(now_ >= tgt.now,
                   "cross-shard defer into the target shard's drained past "
                   "(causality violation: a parallel window outran this "
                   "coupling's lookahead)");
  tgt.queue.schedule(now_, std::move(fn), next_seq_++);
}

void Simulation::invoke_on(ShardId target, std::function<void()> fn) {
  PAGODA_CHECK_MSG(target < shards_.size(), "invoke_on unknown shard");
  Shard* w = window_shard();
  if (w == nullptr || target == w->id) {
    // Sequential context (all shards coherent) or same shard: the
    // historical direct call.
    fn();
    return;
  }
  w->outbox.push_back(
      Post{w->now, target, w->id, w->post_order++, std::move(fn), nullptr});
  w->stop = true;
}

const ShardStats& Simulation::shard_stats() const {
  return coordinator_ != nullptr ? coordinator_->stats() : kNoStats;
}

// --- drivers ----------------------------------------------------------------

void Simulation::step_shard(Shard& s) {
  EventQueue::Popped e = s.queue.pop();
  now_ = e.at;
  s.now = e.at;
  const ShardId prev = cur_shard_;
  cur_shard_ = s.id;
  e.run();
  cur_shard_ = prev;
}

bool Simulation::step() {
  if (shards_.size() == 1) {  // the unsharded fast path — byte-for-byte legacy
    Shard& s = *shards_[0];
    if (s.queue.empty()) return false;
    step_shard(s);
    return true;
  }
  Shard* best = nullptr;
  EventKey best_key;
  for (auto& sp : shards_) {
    const EventKey k = sp->queue.next_key();
    if (k.valid() && (best == nullptr || k < best_key)) {
      best = sp.get();
      best_key = k;
    }
  }
  if (best == nullptr) return false;
  step_shard(*best);
  return true;
}

bool Simulation::parallel_eligible() const {
  return worker_threads_ > 1 && shards_.size() > 1 &&
         serial_reason_ == nullptr;
}

ShardCoordinator& Simulation::coordinator() {
  if (coordinator_ == nullptr) {
    coordinator_ = std::make_unique<ShardCoordinator>(*this, worker_threads_);
  }
  return *coordinator_;
}

Time Simulation::run() {
  if (parallel_eligible()) {
    coordinator().run_until(kTimeMax - 1);
    Time last = now_;
    for (auto& s : shards_) last = s->now > last ? s->now : last;
    now_ = last;
    for (auto& s : shards_) s->now = last;
    return now_;
  }
  while (step()) {
  }
  return now_;
}

void Simulation::run_until(Time t) {
  PAGODA_CHECK(t >= now_);
  if (parallel_eligible()) {
    coordinator().run_until(t);
  } else {
    if (shards_.size() == 1) {
      Shard& s = *shards_[0];
      while (s.queue.next_time() <= t) step_shard(s);
    } else {
      for (;;) {
        Shard* best = nullptr;
        EventKey best_key;
        for (auto& sp : shards_) {
          const EventKey k = sp->queue.next_key();
          if (k.valid() && (best == nullptr || k < best_key)) {
            best = sp.get();
            best_key = k;
          }
        }
        if (best == nullptr || best_key.at > t) break;
        step_shard(*best);
      }
    }
  }
  now_ = t;
  for (auto& s : shards_) s->now = t;
}

std::size_t Simulation::pending_events() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->queue.size();
  return n;
}

ShardId current_shard_of(const Simulation* sim) {
  return sim != nullptr ? sim->current_shard() : kHostShard;
}

namespace internal {
void set_window_shard(Simulation::Shard* s) { t_window_shard = s; }
}  // namespace internal

}  // namespace pagoda::sim
