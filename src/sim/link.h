// A directed DMA-engine link: FIFO wire service plus pipelined completion
// latency. The building block for the PCIe model.
//
// Real PCIe DMA has one copy engine per direction: transfers are serviced
// strictly in issue order, each occupying the wire for
// max(bytes/bandwidth, transaction_gap), and the data lands a fixed latency
// after its wire slot ends. Crucially the latency *pipelines*: back-to-back
// small copies complete at gap spacing, not latency spacing — this is what
// makes Pagoda's one-small-memcpy-per-task spawn path fast, while each
// isolated copy still observes the full round-trip latency (§4.2's
// "handshaking is expensive").
#pragma once

#include <functional>

#include "common/check.h"
#include "common/time_types.h"
#include "sim/simulation.h"

namespace pagoda::sim {

class Link {
 public:
  /// bandwidth in bytes/second; latency from wire-slot end to completion;
  /// transaction_gap is the minimum wire occupancy per transfer.
  Link(Simulation& sim, double bandwidth_bytes_per_sec, Duration latency,
       Duration transaction_gap = 0)
      : sim_(&sim),
        bandwidth_(bandwidth_bytes_per_sec),
        latency_(latency),
        gap_(transaction_gap) {
    PAGODA_CHECK(bandwidth_bytes_per_sec > 0.0);
  }

  /// A completed transfer, as reported to the observer hook: wire slot
  /// [wire_start, wire_end], bytes landed (and on_done fired) at `complete`.
  struct TransferRecord {
    std::int64_t bytes = 0;
    Time wire_start = 0;
    Time wire_end = 0;
    Time complete = 0;
  };

  /// Observability hook: invoked at each transfer's completion time. Used by
  /// obs::Collector to emit memcpy spans; nullptr (default) disables it.
  void set_observer(std::function<void(const TransferRecord&)> obs) {
    observer_ = std::move(obs);
  }

  /// Starts a transfer of `bytes`; on_done fires when the last byte lands.
  /// Transfers on one link complete in issue order (FIFO engine).
  void transfer(std::int64_t bytes, std::function<void()> on_done) {
    PAGODA_CHECK(bytes >= 0);
    const Time start = std::max(sim_->now(), next_free_);
    const auto wire = std::max(
        gap_, static_cast<Duration>(static_cast<double>(bytes) * 1e12 /
                                    (bandwidth_ * bandwidth_scale_)));
    next_free_ = start + wire;
    busy_integral_ += wire;
    transfers_started_ += 1;
    bytes_transferred_ += bytes;
    in_flight_ += 1;
    const Time complete = next_free_ + latency_;
    sim_->at(complete, [this, bytes, start, wire_end = next_free_, complete,
                        fn = std::move(on_done)] {
      in_flight_ -= 1;
      transfers_completed_ += 1;
      if (observer_) observer_(TransferRecord{bytes, start, wire_end, complete});
      fn();
    });
  }

  /// Awaitable form for processes.
  auto transfer(std::int64_t bytes) {
    struct Awaiter {
      Link* link;
      std::int64_t bytes;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        link->transfer(bytes, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, bytes};
  }

  Duration latency() const { return latency_; }
  double bandwidth() const { return bandwidth_; }

  /// Transient degradation (fault injection): scales the effective bandwidth
  /// of transfers issued while the scale is in force. 1.0 = nominal; e.g.
  /// 0.25 models a link retraining at quarter width. Transfers already on
  /// the wire keep their original service time.
  void set_bandwidth_scale(double scale) {
    PAGODA_CHECK(scale > 0.0);
    bandwidth_scale_ = scale;
  }
  double bandwidth_scale() const { return bandwidth_scale_; }

  /// Total wire-occupied time so far (utilization = this / elapsed).
  Duration busy_time() const { return busy_integral_; }

  /// When the engine can accept the next transfer.
  Time next_free_time() const { return next_free_; }

  // --- observability counters ---------------------------------------------
  std::int64_t transfers_started() const { return transfers_started_; }
  std::int64_t transfers_completed() const { return transfers_completed_; }
  std::int64_t bytes_transferred() const { return bytes_transferred_; }
  int in_flight() const { return in_flight_; }

 private:
  Simulation* sim_;
  double bandwidth_;
  double bandwidth_scale_ = 1.0;
  Duration latency_;
  Duration gap_;
  Time next_free_ = 0;
  Duration busy_integral_ = 0;
  std::int64_t transfers_started_ = 0;
  std::int64_t transfers_completed_ = 0;
  std::int64_t bytes_transferred_ = 0;
  int in_flight_ = 0;
  std::function<void(const TransferRecord&)> observer_;
};

}  // namespace pagoda::sim
