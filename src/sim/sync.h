// Virtual-time synchronization primitives for simulation processes.
//
//  - Condition: broadcast/one wakeup, with optional timeout (the Pagoda
//    `wait`/`waitAll` copy-back timeout is built on this).
//  - Trigger:   one-shot latch; waits complete immediately once fired.
//  - Semaphore: counting semaphore (used for resource slots like HyperQ's
//    32 hardware connections).
//
// All primitives follow CP.42 ("don't wait without a condition"): waiters of
// Condition must re-check their predicate in a loop, since wakeups are
// broadcast-style and a notified waiter resumes at the same virtual time as
// other activity.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.h"
#include "sim/simulation.h"

namespace pagoda::sim {

class Condition {
 public:
  explicit Condition(Simulation& sim) : sim_(&sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Destroys still-parked waiter frames so persistent processes (device
  /// pumps, scheduler warps) don't leak when a simulation is torn down.
  ~Condition() {
    for (Waiter& w : waiters_) {
      if (w.timeout_event != 0) sim_->cancel(w.timeout_event);
      w.handle.destroy();
    }
  }

  /// Awaitable: park until notify_one/notify_all.
  auto wait() {
    struct Awaiter {
      Condition* cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cv->waiters_.push_back(Waiter{cv->next_id_++, h, 0, nullptr,
                                      cv->sim_->current_shard()});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Awaitable: park until notified or until `d` elapses.
  /// `co_await cv.wait_for(d)` yields true if notified, false on timeout.
  auto wait_for(Duration d) {
    struct Awaiter {
      Condition* cv;
      Duration d;
      bool notified = false;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        const std::uint64_t id = cv->next_id_++;
        const EventId ev = cv->sim_->after(d, [cv = cv, id, h] {
          cv->drop_waiter(id);
          h.resume();
        });
        cv->waiters_.push_back(
            Waiter{id, h, ev, &notified, cv->sim_->current_shard()});
      }
      bool await_resume() const noexcept { return notified; }
    };
    return Awaiter{this, d};
  }

  void notify_all() {
    std::vector<Waiter> woken;
    woken.swap(waiters_);
    wake(woken);
  }

  void notify_one() {
    if (waiters_.empty()) return;
    std::vector<Waiter> woken;
    woken.push_back(waiters_.front());
    waiters_.erase(waiters_.begin());
    wake(woken);
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::uint64_t id;
    std::coroutine_handle<> handle;
    EventId timeout_event;     // 0 if untimed
    bool* notified_flag;       // lives in the suspended awaiter frame
    ShardId home;              // shard the waiter suspended on; wakes land
                               // back there (cross-shard wakes become posts)
  };

  void wake(std::vector<Waiter>& woken) {
    for (Waiter& w : woken) {
      if (w.timeout_event != 0) {
        // The timeout event lives on the waiter's home shard. A cross-shard
        // notify from inside a parallel window cannot cancel it (the queue
        // belongs to another worker), and deferring the cancel to the merge
        // would race the timeout itself — so a timed wait notified across
        // shards is only defined under the serial order. Fail with the real
        // story instead of the generic cross-shard-cancel check.
        PAGODA_CHECK_MSG(
            !sim_->in_parallel_window() || w.home == sim_->current_shard(),
            "cross-shard notify of a timed Condition waiter inside a "
            "parallel window; a plane mixing wait_for() with cross-shard "
            "notifies must declare Simulation::require_serial()");
        sim_->cancel(w.timeout_event);
      }
      if (w.notified_flag != nullptr) *w.notified_flag = true;
      sim_->resume_on(w.home, w.handle);
    }
  }

  void drop_waiter(std::uint64_t id) {
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i].id == id) {
        waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    PAGODA_CHECK_MSG(false, "timeout fired for unknown condition waiter");
  }

  Simulation* sim_;
  std::vector<Waiter> waiters_;
  std::uint64_t next_id_ = 1;
};

/// One-shot latch. fire() releases all current and future waiters.
class Trigger {
 public:
  explicit Trigger(Simulation& sim) : sim_(&sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;
  ~Trigger() {
    for (const Waiter& w : waiters_) w.handle.destroy();
  }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (const Waiter& w : waiters_) {
      sim_->resume_on(w.home, w.handle);
    }
    waiters_.clear();
    for (Callback& cb : callbacks_) {
      sim_->defer_on(cb.home, std::move(cb.fn));
    }
    callbacks_.clear();
  }

  bool fired() const { return fired_; }

  /// Runs fn (deferred) when the trigger fires; immediately if already fired.
  void call_on_fire(std::function<void()> fn) {
    if (fired_) {
      sim_->defer(std::move(fn));
    } else {
      callbacks_.push_back(Callback{std::move(fn), sim_->current_shard()});
    }
  }

  auto wait() {
    struct Awaiter {
      Trigger* t;
      bool await_ready() const noexcept { return t->fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        t->waiters_.push_back(Waiter{h, t->sim_->current_shard()});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    ShardId home;
  };
  struct Callback {
    std::function<void()> fn;
    ShardId home;
  };

  Simulation* sim_;
  bool fired_ = false;
  std::vector<Waiter> waiters_;
  std::vector<Callback> callbacks_;
};

/// Counting semaphore with FIFO grant order.
///
/// acquire() yields true when a slot was granted. A semaphore can be
/// close()d — used by the fault layer to model a resource pool whose backing
/// node died: every parked acquirer wakes with false (no slot held), and
/// later acquires return false immediately until reopen(). Callers that
/// never close (the common case) can ignore the result; the grant then is
/// unconditional and behavior is identical to a plain counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::int64_t initial)
      : sim_(&sim), count_(initial) {
    PAGODA_CHECK(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;
  ~Semaphore() {
    for (const Waiter& w : waiters_) w.handle.destroy();
  }

  auto acquire() {
    struct Awaiter {
      Semaphore* s;
      bool granted = false;
      bool await_ready() noexcept {
        if (s->closed_) return true;  // granted stays false
        if (s->count_ > 0 && s->waiters_.empty()) {
          --s->count_;
          granted = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s->waiters_.push_back(Waiter{h, &granted, s->sim_->current_shard()});
      }
      bool await_resume() const noexcept { return granted; }
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      const Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.granted = true;
      sim_->resume_on(w.home, w.handle);
    } else {
      ++count_;
    }
  }

  /// Wakes every parked acquirer with granted == false and fails subsequent
  /// acquires until reopen(). Slots already granted stay granted; their
  /// releases accumulate in count_ as usual, so the pool is whole again at
  /// reopen() once every outstanding grant has been returned.
  void close() {
    closed_ = true;
    std::deque<Waiter> woken;
    woken.swap(waiters_);
    for (const Waiter& w : woken) sim_->resume_on(w.home, w.handle);
  }

  void reopen() { closed_ = false; }
  bool closed() const { return closed_; }

  std::int64_t available() const { return count_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool* granted;  // lives in the suspended awaiter frame
    ShardId home;   // shard the acquirer suspended on
  };

  Simulation* sim_;
  std::int64_t count_;
  bool closed_ = false;
  std::deque<Waiter> waiters_;
};

}  // namespace pagoda::sim
