// FaultPlan: the deterministic fault plane.
//
// A plan is parsed once from a compact spec string (the pagoda_cli --faults=
// value) and then consulted through pure decision functions. Every decision
// is a stateless hash of (plan seed, salt, stable key) — never generator
// state threaded through the run — so the injected fault set is independent
// of event interleaving: request 17's third attempt fails (or not)
// regardless of what the other requests are doing. That property is what
// makes "same seed + same plan -> byte-identical metrics" testable.
//
// Spec grammar (comma-separated items; fields colon-separated; times in µs):
//   task:P                      per-attempt task-kernel failure probability
//   xfer:P                      per-payload-copy transfer fault probability
//   wedge:P                     per-attempt slot wedge (completion swallowed;
//                               only the task deadline recovers it)
//   crash:NODE:T[:RECOVER]      node NODE dies at T µs; optionally comes
//                               back RECOVER µs later (drain/reinstate)
//   degrade:T:DUR:FACTOR[:NODE] PCIe bandwidth scaled by FACTOR during
//                               [T, T+DUR) µs on NODE (all nodes if omitted)
//   seed:N                      decision seed (default 0: derive from run)
// Example: --faults=task:0.01,crash:1:2000:3000,degrade:500:1000:0.25
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"

namespace pagoda::fault {

struct CrashEvent {
  int node = -1;
  sim::Time at = 0;
  bool recovers = false;
  sim::Duration recover_after = 0;
};

struct DegradeWindow {
  sim::Time at = 0;
  sim::Duration duration = 0;
  double factor = 1.0;
  int node = -1;  // -1: every node
};

class FaultPlan {
 public:
  /// Parses a spec string. Returns nullopt and fills *error on bad input.
  /// An empty spec parses to a disabled plan.
  static std::optional<FaultPlan> parse(const std::string& spec,
                                        std::string* error);

  /// True if any fault source is armed; a disabled plan must inject nothing.
  bool enabled() const {
    return task_fault_rate > 0.0 || transfer_fault_rate > 0.0 ||
           wedge_rate > 0.0 || !crashes.empty() || !degrades.empty();
  }

  /// True if the plan can strand an attempt with no completion event
  /// (wedge or crash) — such plans require a per-task deadline to recover.
  bool needs_deadline() const {
    return wedge_rate > 0.0 || !crashes.empty();
  }

  // --- decision functions (pure, order-independent) ------------------------
  /// Does attempt `attempt` of request `uid` suffer a task-kernel fault?
  bool task_fails(std::uint64_t uid, int attempt) const {
    return decide(kTaskSalt, attempt_key(uid, attempt), task_fault_rate);
  }

  /// Does attempt `attempt` of request `uid` wedge (completion swallowed)?
  bool wedges(std::uint64_t uid, int attempt) const {
    return decide(kWedgeSalt, attempt_key(uid, attempt), wedge_rate);
  }

  /// Does the `seq`-th payload transfer on `node` corrupt? The caller keeps
  /// a per-node issue counter so the key is stable under interleaving.
  bool transfer_corrupts(int node, std::uint64_t seq) const {
    return decide(kXferSalt ^ (static_cast<std::uint64_t>(node) << 32), seq,
                  transfer_fault_rate);
  }

  double task_fault_rate = 0.0;
  double transfer_fault_rate = 0.0;
  double wedge_rate = 0.0;
  std::vector<CrashEvent> crashes;
  std::vector<DegradeWindow> degrades;
  std::uint64_t seed = 0;

 private:
  static constexpr std::uint64_t kTaskSalt = 0x7A5CF001ULL;
  static constexpr std::uint64_t kWedgeSalt = 0x7A5CF002ULL;
  static constexpr std::uint64_t kXferSalt = 0x7A5CF003ULL;

  /// Attempts are numbered from 1; 63 retries per request is far beyond any
  /// sane budget, so uid*64+attempt keys never collide.
  static constexpr std::uint64_t attempt_key(std::uint64_t uid, int attempt) {
    return uid * 64 + static_cast<std::uint64_t>(attempt);
  }

  bool decide(std::uint64_t salt, std::uint64_t key, double rate) const {
    if (rate <= 0.0) return false;
    const std::uint64_t h = hash_index(seed ^ salt, key);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
  }
};

}  // namespace pagoda::fault
