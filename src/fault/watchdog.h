// Host-side node watchdog: a pure detection state machine.
//
// The dispatcher probes each node at a fixed cadence while it has work in
// flight. A probe samples the node's liveness signature — the MasterKernel
// heartbeat counter plus completion count (see MasterKernel::heartbeats())
// — and feeds it to observe(). A node whose signature freezes across
// miss_threshold consecutive probes *while it holds in-flight work* is
// declared dead; the transition is reported exactly once so the dispatcher
// can run node-failure recovery exactly once.
//
// The state machine holds no reference to the simulation: probing cadence
// and sampling live in the dispatcher, which keeps this unit-testable with
// hand-fed signatures and guarantees observation itself emits no events.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/time_types.h"

namespace pagoda::fault {

/// Liveness signature sampled from a node at probe time.
struct NodeSig {
  std::int64_t heartbeat = 0;
  std::int64_t completed = 0;

  bool operator==(const NodeSig& o) const {
    return heartbeat == o.heartbeat && completed == o.completed;
  }
};

struct WatchdogConfig {
  sim::Duration probe_period = sim::microseconds(200.0);
  /// Consecutive frozen probes (with work in flight) before declaring death.
  int miss_threshold = 3;
};

class Watchdog {
 public:
  Watchdog(const WatchdogConfig& cfg, int num_nodes);

  /// Feed one probe of `node`. `has_work` is whether the dispatcher has
  /// attempts in flight on the node — an idle node's frozen signature is
  /// healthy, not dead. Returns true exactly on the transition to dead.
  bool observe(int node, const NodeSig& sig, bool has_work);

  /// Reinstates a node (recovery / drain-undo): clears dead state + misses.
  void reset(int node);

  bool dead(int node) const { return nodes_[idx(node)].dead; }
  int misses(int node) const { return nodes_[idx(node)].misses; }
  std::int64_t probes() const { return probes_; }
  std::int64_t deaths_detected() const { return deaths_; }
  const WatchdogConfig& config() const { return cfg_; }

 private:
  struct NodeState {
    NodeSig last;
    int misses = 0;
    bool dead = false;
    bool seen = false;
  };

  std::size_t idx(int node) const {
    PAGODA_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
    return static_cast<std::size_t>(node);
  }

  WatchdogConfig cfg_;
  std::vector<NodeState> nodes_;
  std::int64_t probes_ = 0;
  std::int64_t deaths_ = 0;
};

}  // namespace pagoda::fault
