#include "fault/watchdog.h"

namespace pagoda::fault {

Watchdog::Watchdog(const WatchdogConfig& cfg, int num_nodes) : cfg_(cfg) {
  PAGODA_CHECK(cfg.miss_threshold >= 1);
  PAGODA_CHECK(cfg.probe_period > 0);
  PAGODA_CHECK(num_nodes >= 1);
  nodes_.resize(static_cast<std::size_t>(num_nodes));
}

bool Watchdog::observe(int node, const NodeSig& sig, bool has_work) {
  NodeState& st = nodes_[idx(node)];
  probes_ += 1;
  if (st.dead) return false;  // already declared; transition fires once
  const bool frozen = st.seen && sig == st.last;
  st.last = sig;
  st.seen = true;
  if (frozen && has_work) {
    st.misses += 1;
    if (st.misses >= cfg_.miss_threshold) {
      st.dead = true;
      deaths_ += 1;
      return true;
    }
  } else {
    st.misses = 0;
  }
  return false;
}

void Watchdog::reset(int node) {
  NodeState& st = nodes_[idx(node)];
  st.misses = 0;
  st.dead = false;
  st.seen = false;
}

}  // namespace pagoda::fault
