// Fault-plane vocabulary shared by injection, detection and recovery.
//
// Design rule (enforced by a grep gate in tools/check.sh): recovery paths
// never throw. An attempt that fails produces a FailureCause routed through
// the dispatcher's retry/shed machinery; PAGODA_CHECK remains reserved for
// genuine invariant violations (simulator bugs), not injected faults.
#pragma once

namespace pagoda::fault {

/// Why an attempt (one placement of a request on one node) did not complete.
enum class FailureCause {
  kNone = 0,       // attempt succeeded
  kTaskFault,      // task kernel produced a poisoned result (ECC-style)
  kTransferFault,  // PCIe payload copy failed end-to-end integrity
  kTimeout,        // per-task execution deadline expired (wedge or crash)
  kNodeCrash,      // node declared dead while the attempt was in flight
  kEvicted,        // displaced from the admission queue by a more urgent
                   // arrival under a non-FIFO scheduling policy
};

constexpr const char* to_string(FailureCause c) {
  switch (c) {
    case FailureCause::kNone: return "none";
    case FailureCause::kTaskFault: return "task_fault";
    case FailureCause::kTransferFault: return "transfer_fault";
    case FailureCause::kTimeout: return "timeout";
    case FailureCause::kNodeCrash: return "node_crash";
    case FailureCause::kEvicted: return "evicted";
  }
  return "?";
}

/// Result of one attempt, as seen by the recovery layer.
struct AttemptOutcome {
  bool ok = true;
  FailureCause cause = FailureCause::kNone;

  static constexpr AttemptOutcome success() { return {true, FailureCause::kNone}; }
  static constexpr AttemptOutcome failure(FailureCause c) { return {false, c}; }
};

/// Detected health of a node, as maintained by the dispatcher's watchdog.
/// Distinct from the injection-side ground truth (GpuNode::alive): between a
/// crash being injected and the watchdog noticing, a node is !alive yet
/// still kHealthy — requests placed in that window fail via their deadline.
enum class NodeHealth {
  kHealthy = 0,
  kDraining,  // administratively draining: finishes in-flight, takes no new
  kDead,      // watchdog-declared failed; in-flight work was redispatched
};

constexpr const char* to_string(NodeHealth h) {
  switch (h) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kDraining: return "draining";
    case NodeHealth::kDead: return "dead";
  }
  return "?";
}

}  // namespace pagoda::fault
