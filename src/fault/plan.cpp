#include "fault/plan.h"

#include <cstdlib>
#include <sstream>

namespace pagoda::fault {
namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, delim)) out.push_back(item);
  return out;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_int(const std::string& s, int* out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, &v) || v > 1u << 20) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_rate(const std::vector<std::string>& f, const char* what,
                double* out, std::string* error) {
  double p = 0.0;
  if (f.size() != 2 || !parse_double(f[1], &p) || p < 0.0 || p > 1.0) {
    *error = std::string(what) + " wants " + what +
             ":P with P a probability in [0,1], got '" +
             (f.size() > 1 ? f[1] : "") + "'";
    return false;
  }
  *out = p;
  return true;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& item : split(spec, ',')) {
    const std::vector<std::string> f = split(item, ':');
    if (f.empty() || f[0].empty()) {
      *error = "empty fault item in '" + spec + "'";
      return std::nullopt;
    }
    const std::string& kind = f[0];
    if (kind == "task") {
      if (!parse_rate(f, "task", &plan.task_fault_rate, error))
        return std::nullopt;
    } else if (kind == "xfer") {
      if (!parse_rate(f, "xfer", &plan.transfer_fault_rate, error))
        return std::nullopt;
    } else if (kind == "wedge") {
      if (!parse_rate(f, "wedge", &plan.wedge_rate, error))
        return std::nullopt;
    } else if (kind == "crash") {
      CrashEvent ev;
      double at_us = 0.0;
      double recover_us = 0.0;
      if (f.size() < 3 || f.size() > 4 || !parse_int(f[1], &ev.node) ||
          !parse_double(f[2], &at_us) || at_us < 0.0 ||
          (f.size() == 4 && (!parse_double(f[3], &recover_us) ||
                             recover_us <= 0.0))) {
        *error = "crash wants crash:NODE:T_US[:RECOVER_US] with T_US >= 0 "
                 "and RECOVER_US > 0, got '" + item + "'";
        return std::nullopt;
      }
      ev.at = sim::microseconds(at_us);
      if (f.size() == 4) {
        ev.recovers = true;
        ev.recover_after = sim::microseconds(recover_us);
      }
      plan.crashes.push_back(ev);
    } else if (kind == "degrade") {
      DegradeWindow w;
      double at_us = 0.0;
      double dur_us = 0.0;
      if (f.size() < 4 || f.size() > 5 || !parse_double(f[1], &at_us) ||
          at_us < 0.0 || !parse_double(f[2], &dur_us) || dur_us <= 0.0 ||
          !parse_double(f[3], &w.factor) || w.factor <= 0.0 ||
          w.factor > 1.0 || (f.size() == 5 && !parse_int(f[4], &w.node))) {
        *error = "degrade wants degrade:T_US:DUR_US:FACTOR[:NODE] with "
                 "DUR_US > 0 and FACTOR in (0,1], got '" + item + "'";
        return std::nullopt;
      }
      w.at = sim::microseconds(at_us);
      w.duration = sim::microseconds(dur_us);
      plan.degrades.push_back(w);
    } else if (kind == "seed") {
      if (f.size() != 2 || !parse_u64(f[1], &plan.seed)) {
        *error = "seed wants seed:N with N a nonnegative integer, got '" +
                 item + "'";
        return std::nullopt;
      }
    } else {
      *error = "unknown fault kind '" + kind +
               "' (valid: task, xfer, wedge, crash, degrade, seed)";
      return std::nullopt;
    }
  }
  return plan;
}

}  // namespace pagoda::fault
