// Deterministic exponential backoff with jitter.
//
// Backoff delays are a pure function of (seed, request uid, attempt number):
// nominal delay doubles per attempt up to a cap, then a deterministic jitter
// factor in (1-jitter, 1] de-synchronizes retries that failed together (the
// classic thundering-herd fix) without introducing run-to-run variance.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/time_types.h"

namespace pagoda::fault {

struct RetryConfig {
  /// Retries per request beyond the first attempt; 0 disables retry.
  int budget = 3;
  sim::Duration base = sim::microseconds(50.0);
  double multiplier = 2.0;
  sim::Duration max = sim::microseconds(5000.0);
  /// Jitter width: the nominal delay is scaled by a factor drawn
  /// deterministically from (1-jitter, 1]. 0 disables jitter.
  double jitter = 0.5;
  std::uint64_t seed = 0;
};

/// Delay before attempt `attempt`+1, after attempt `attempt` (1-based)
/// failed. Pure: same (config, uid, attempt) -> same delay, always.
inline sim::Duration backoff(const RetryConfig& cfg, std::uint64_t uid,
                             int attempt) {
  double nominal = static_cast<double>(cfg.base);
  for (int i = 1; i < attempt; ++i) {
    nominal *= cfg.multiplier;
    if (nominal >= static_cast<double>(cfg.max)) break;
  }
  if (nominal > static_cast<double>(cfg.max))
    nominal = static_cast<double>(cfg.max);
  if (cfg.jitter > 0.0) {
    const std::uint64_t h = hash_index(cfg.seed ^ 0x7A5CF004ULL,
                                       uid * 64 + static_cast<std::uint64_t>(attempt));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    nominal *= 1.0 - cfg.jitter * u;
  }
  return static_cast<sim::Duration>(nominal);
}

}  // namespace pagoda::fault
