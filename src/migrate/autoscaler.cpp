#include "migrate/autoscaler.h"

#include <charconv>

#include "common/check.h"

namespace pagoda::migrate {

namespace {

bool parse_double(std::string_view s, double* out) {
  const char* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc{} && p == end;
}

bool parse_i64(std::string_view s, std::int64_t* out) {
  const char* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc{} && p == end;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t at = s.find(sep);
    parts.push_back(s.substr(0, at));
    if (at == std::string_view::npos) break;
    s.remove_prefix(at + 1);
  }
  return parts;
}

}  // namespace

std::optional<AutoscaleConfig> parse_autoscale_spec(std::string_view spec,
                                                    std::string* error) {
  PAGODA_CHECK(error != nullptr);
  const std::vector<std::string_view> parts = split(spec, ':');
  AutoscaleConfig cfg;
  cfg.enabled = true;
  if (parts.size() != 1 && parts.size() != 3 && parts.size() != 4) {
    *error = "expected UTIL[:LOW:HIGH[:MIN]]";
    return std::nullopt;
  }
  if (!parse_double(parts[0], &cfg.target_util)) {
    *error = "bad target utilization";
    return std::nullopt;
  }
  if (parts.size() >= 3) {
    if (!parse_double(parts[1], &cfg.low_watermark) ||
        !parse_double(parts[2], &cfg.high_watermark)) {
      *error = "bad watermark";
      return std::nullopt;
    }
  } else {
    // Derive a symmetric band around the target.
    cfg.low_watermark = cfg.target_util * 0.5;
    cfg.high_watermark = (1.0 + cfg.target_util) * 0.5;
  }
  if (parts.size() == 4) {
    std::int64_t min_nodes = 0;
    if (!parse_i64(parts[3], &min_nodes) || min_nodes < 1) {
      *error = "bad min-nodes (must be >= 1)";
      return std::nullopt;
    }
    cfg.min_nodes = static_cast<int>(min_nodes);
  }
  if (!(cfg.target_util > 0.0 && cfg.target_util < 1.0)) {
    *error = "target utilization must be in (0, 1)";
    return std::nullopt;
  }
  if (!(cfg.low_watermark >= 0.0 && cfg.low_watermark < cfg.high_watermark &&
        cfg.high_watermark <= 1.0)) {
    *error = "watermarks must satisfy 0 <= LOW < HIGH <= 1";
    return std::nullopt;
  }
  return cfg;
}

std::optional<std::vector<ResizeStep>> parse_resize_spec(std::string_view spec,
                                                         std::string* error) {
  PAGODA_CHECK(error != nullptr);
  std::vector<ResizeStep> plan;
  for (std::string_view item : split(spec, ',')) {
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      *error = "expected AT_US:NODES[,AT_US:NODES...]";
      return std::nullopt;
    }
    std::int64_t at_us = 0;
    std::int64_t target = 0;
    if (!parse_i64(item.substr(0, colon), &at_us) || at_us < 0) {
      *error = "bad resize instant (microseconds, >= 0)";
      return std::nullopt;
    }
    if (!parse_i64(item.substr(colon + 1), &target) || target < 1) {
      *error = "bad resize target (nodes, >= 1)";
      return std::nullopt;
    }
    ResizeStep step;
    step.at = sim::microseconds(at_us);
    step.target = static_cast<int>(target);
    if (!plan.empty() && step.at <= plan.back().at) {
      *error = "resize instants must be strictly increasing";
      return std::nullopt;
    }
    plan.push_back(step);
  }
  if (plan.empty()) {
    *error = "empty resize plan";
    return std::nullopt;
  }
  return plan;
}

Autoscaler::Autoscaler(sim::Simulation& sim, AutoscaleConfig cfg,
                       power::FleetControl& fleet)
    : sim_(&sim), cfg_(std::move(cfg)), fleet_(&fleet) {
  PAGODA_CHECK_MSG(cfg_.armed(), "autoscaler constructed but not armed");
  PAGODA_CHECK(cfg_.period > 0);
  PAGODA_CHECK(cfg_.min_nodes >= 1);
  PAGODA_CHECK(cfg_.up_ticks >= 1 && cfg_.down_ticks >= 1);
  pending_sleep_.assign(static_cast<std::size_t>(fleet_->num_nodes()), false);
}

void Autoscaler::start() {
  PAGODA_CHECK_MSG(!started_, "autoscaler started twice");
  started_ = true;
  schedule_tick();
}

void Autoscaler::schedule_tick() {
  sim_->after(cfg_.period, [this] {
    if (fleet_->idle()) return;  // stream closed + drained: stop for good
    periodic_check(sim_->now());
    schedule_tick();
  });
}

int Autoscaler::serving_nodes() const {
  int n = 0;
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    if (power::node_asleep(*fleet_, i)) continue;
    if (pending_sleep_[static_cast<std::size_t>(i)]) continue;
    ++n;
  }
  return n;
}

void Autoscaler::finish_pending_sleeps() {
  // A quiesced node goes to sleep only once the drain-migration has emptied
  // it — the sleep verb itself insists on zero outstanding work.
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    if (!pending_sleep_[static_cast<std::size_t>(i)]) continue;
    if (fleet_->node_outstanding(i) != 0) continue;
    power::sleep_drained_node(*fleet_, i, cfg_.sleep_state);
    pending_sleep_[static_cast<std::size_t>(i)] = false;
    ++stats_.nodes_slept;
  }
}

int Autoscaler::desired_nodes() const {
  const int num = fleet_->num_nodes();
  const int serving = serving_nodes();
  int desired = serving;
  if (plan_target_ >= 0) {
    desired = plan_target_;
  } else if (cfg_.enabled) {
    if (hot_ticks_ >= cfg_.up_ticks) {
      desired = serving + 1;
    } else if (cold_ticks_ >= cfg_.down_ticks) {
      desired = serving - 1;
    }
  }
  if (desired < cfg_.min_nodes) desired = cfg_.min_nodes;
  if (desired > num) desired = num;
  return desired;
}

void Autoscaler::periodic_check(sim::Time now) {
  ++stats_.checks;
  finish_pending_sleeps();

  // Plan steps snap the desired size and silence the hysteresis counters.
  while (next_step_ < cfg_.plan.size() && cfg_.plan[next_step_].at <= now) {
    plan_target_ = cfg_.plan[next_step_].target;
    ++next_step_;
    ++stats_.resize_events;
    hot_ticks_ = 0;
    cold_ticks_ = 0;
  }

  if (cfg_.enabled && plan_target_ < 0) {
    // Pressure = held slots plus the admitted backlog still waiting for
    // one, over the serving capacity; the backlog term is what lets a
    // saturated fleet (util pinned at 1.0) keep asking for more nodes.
    std::int64_t held = 0;
    std::int64_t capacity = 0;
    for (int i = 0; i < fleet_->num_nodes(); ++i) {
      if (power::node_asleep(*fleet_, i)) continue;
      if (pending_sleep_[static_cast<std::size_t>(i)]) continue;
      held += fleet_->node_outstanding(i);
      capacity += fleet_->node_capacity(i);
    }
    const double util =
        capacity > 0
            ? static_cast<double>(held + fleet_->queued_backlog()) /
                  static_cast<double>(capacity)
            : 1.0;
    if (util > cfg_.high_watermark) {
      ++hot_ticks_;
      cold_ticks_ = 0;
    } else if (util < cfg_.low_watermark) {
      ++cold_ticks_;
      hot_ticks_ = 0;
    } else {
      hot_ticks_ = 0;
      cold_ticks_ = 0;
    }
  }

  const int serving = serving_nodes();
  const int desired = desired_nodes();
  if (desired > serving) {
    grow_one();
    hot_ticks_ = 0;
  } else if (desired < serving) {
    shrink_one();
    cold_ticks_ = 0;
  }
  // One action per check: the fleet rolls toward the target, it never steps.
}

void Autoscaler::grow_one() {
  // Prefer cancelling an in-progress drain: the node is warm and already
  // holds whatever work the migration sweep has not yet moved — restoring
  // it must NOT resurrect shed slots or double-reinstate (the PR 4 x PR 7
  // seam the regression test pins).
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    if (!pending_sleep_[static_cast<std::size_t>(i)]) continue;
    pending_sleep_[static_cast<std::size_t>(i)] = false;
    fleet_->restore_node(i);
    ++stats_.drains_cancelled;
    return;
  }
  for (int i = 0; i < fleet_->num_nodes(); ++i) {
    if (!power::node_asleep(*fleet_, i)) continue;
    power::wake_node(*fleet_, i);
    ++stats_.nodes_woken;
    return;
  }
}

void Autoscaler::shrink_one() {
  // Victim: the highest-index healthy serving node. Quiescing routes
  // through the dispatcher's drain lifecycle, which (with the migration
  // plane armed) checkpoints the node's eligible attempts onto the rest of
  // the fleet instead of waiting them out.
  for (int i = fleet_->num_nodes() - 1; i >= 0; --i) {
    if (power::node_asleep(*fleet_, i)) continue;
    if (pending_sleep_[static_cast<std::size_t>(i)]) continue;
    if (!fleet_->node_eligible(i)) continue;
    fleet_->quiesce_node(i);
    pending_sleep_[static_cast<std::size_t>(i)] = true;
    ++stats_.drains_started;
    return;
  }
}

}  // namespace pagoda::migrate
