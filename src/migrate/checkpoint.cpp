#include "migrate/checkpoint.h"

#include <bit>
#include <cstring>
#include <type_traits>

#include "common/check.h"

namespace pagoda::migrate {

namespace {

constexpr std::uint32_t kMagic = 0x50474d31;  // "PGM1"
constexpr std::uint16_t kVersion = 1;

// FNV-1a, 64-bit: stable across platforms, no seeding, byte-order free.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = kFnvOffset;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(&out) {}
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    // Canonical little-endian regardless of host order.
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(le_byte(raw, i, sizeof(T)));
    }
  }
  void put_bytes(const std::byte* p, std::size_t n) {
    out_->insert(out_->end(), p, p + n);
  }

 private:
  static std::byte le_byte(const std::byte* raw, std::size_t i, std::size_t n) {
    if constexpr (std::endian::native == std::endian::big) {
      return raw[n - 1 - i];
    } else {
      (void)n;
      return raw[i];
    }
  }
  std::vector<std::byte>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> in) : in_(in) {}
  template <typename T>
  bool get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > in_.size()) return false;
    std::byte raw[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      if constexpr (std::endian::native == std::endian::big) {
        raw[sizeof(T) - 1 - i] = in_[pos_ + i];
      } else {
        raw[i] = in_[pos_ + i];
      }
    }
    std::memcpy(v, raw, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool get_bytes(std::byte* p, std::size_t n) {
    if (pos_ + n > in_.size()) return false;
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::byte> serialize(const TaskCheckpoint& cp) {
  PAGODA_CHECK_MSG(cp.params.args_size >= 0 &&
                       cp.params.args_size <=
                           static_cast<std::int32_t>(runtime::kMaxArgBytes),
                   "checkpoint carries an oversized argument blob");
  std::vector<std::byte> out;
  out.reserve(96 + static_cast<std::size_t>(cp.params.args_size));
  Writer w(out);
  w.put(kMagic);
  w.put(kVersion);
  // Ledger identity.
  w.put(cp.uid);
  w.put(cp.arrival);
  w.put(cp.attempt);
  // Request envelope.
  w.put(static_cast<std::uint8_t>(cp.cls));
  w.put(cp.slo);
  w.put(cp.cost);
  w.put(cp.h2d_bytes);
  w.put(cp.d2h_bytes);
  w.put(cp.data_key);
  w.put(cp.index);
  // Task descriptor. The kernel ref serializes as a zero symbol slot — a
  // pointer would be run-dependent bytes; the restoring host re-binds it.
  w.put(std::uint64_t{0});
  w.put(cp.params.num_blocks);
  w.put(cp.params.threads_per_block);
  w.put(cp.params.shared_mem_bytes);
  w.put(static_cast<std::uint8_t>(cp.params.needs_sync ? 1 : 0));
  w.put(cp.params.sched_class);
  w.put(cp.params.deadline_us);
  w.put(cp.params.args_size);
  w.put_bytes(cp.params.args.data(),
              static_cast<std::size_t>(cp.params.args_size));
  // Capture context.
  w.put(static_cast<std::uint8_t>(cp.point));
  w.put(cp.source_node);
  w.put(fnv1a(out));
  return out;
}

bool deserialize(std::span<const std::byte> image, TaskCheckpoint* out) {
  PAGODA_CHECK(out != nullptr);
  if (image.size() < sizeof(std::uint64_t)) return false;
  const std::size_t body = image.size() - sizeof(std::uint64_t);
  Reader digest_r(image.subspan(body));
  std::uint64_t digest = 0;
  if (!digest_r.get(&digest) || digest != fnv1a(image.first(body))) {
    return false;
  }
  Reader r(image.first(body));
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  if (!r.get(&magic) || magic != kMagic) return false;
  if (!r.get(&version) || version != kVersion) return false;
  TaskCheckpoint cp;
  std::uint8_t cls = 0, needs_sync = 0, point = 0;
  std::uint64_t fn_slot = 0;
  if (!r.get(&cp.uid) || !r.get(&cp.arrival) || !r.get(&cp.attempt) ||
      !r.get(&cls) || !r.get(&cp.slo) || !r.get(&cp.cost) ||
      !r.get(&cp.h2d_bytes) || !r.get(&cp.d2h_bytes) || !r.get(&cp.data_key) ||
      !r.get(&cp.index) || !r.get(&fn_slot) || !r.get(&cp.params.num_blocks) ||
      !r.get(&cp.params.threads_per_block) ||
      !r.get(&cp.params.shared_mem_bytes) || !r.get(&needs_sync) ||
      !r.get(&cp.params.sched_class) || !r.get(&cp.params.deadline_us) ||
      !r.get(&cp.params.args_size)) {
    return false;
  }
  if (cp.params.args_size < 0 ||
      cp.params.args_size > static_cast<std::int32_t>(runtime::kMaxArgBytes)) {
    return false;
  }
  if (!r.get_bytes(cp.params.args.data(),
                   static_cast<std::size_t>(cp.params.args_size))) {
    return false;
  }
  if (!r.get(&point) || !r.get(&cp.source_node)) return false;
  if (r.pos() != body) return false;  // trailing garbage
  if (cls >= sched::kNumClasses || point > 2) return false;
  cp.cls = static_cast<sched::Class>(cls);
  cp.params.needs_sync = needs_sync != 0;
  cp.params.fn = nullptr;
  cp.point = static_cast<SafePoint>(point);
  *out = cp;
  return true;
}

std::int64_t transfer_bytes(const TaskCheckpoint& cp) {
  switch (cp.point) {
    case SafePoint::kQueued:
      // Nothing ever reached the node: the descriptor lives host-side and
      // re-placement is pure bookkeeping.
      return 0;
    case SafePoint::kStaged:
      return cp.h2d_bytes;
    case SafePoint::kTableParked:
      return cp.h2d_bytes +
             static_cast<std::int64_t>(runtime::kEntryCopyBytes);
  }
  return 0;
}

std::uint64_t image_digest(std::span<const std::byte> image) {
  if (image.size() < sizeof(std::uint64_t)) return 0;
  std::uint64_t digest = 0;
  std::memcpy(&digest, image.data() + image.size() - sizeof(std::uint64_t),
              sizeof(digest));
  return digest;
}

}  // namespace pagoda::migrate
