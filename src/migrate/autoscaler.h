// Autoscaler: a traffic-driven fleet resizer behind the power plane's
// FleetControl window, built like the governors — a deterministic
// PeriodicCheck on a fixed virtual-time cadence whose decisions are pure
// functions of simulation state.
//
// Two drive modes, composable:
//
//   utilization  target-utilization with hysteresis. util = outstanding /
//                capacity over serving nodes; `up_ticks` consecutive checks
//                above the high watermark grow the fleet by one node,
//                `down_ticks` below the low watermark shrink it by one.
//                Asymmetric on purpose: waking is cheap and latency-critical,
//                sleeping costs a drain-migration, so scale-up reacts fast
//                and scale-down waits out noise.
//
//   plan         an explicit rolling-resize schedule (`--resize=AT:NODES`):
//                at each step's instant the desired fleet size snaps to the
//                target and the hysteresis counters reset. Used by the
//                elastic_fleet bench's resize scenario and by operators
//                rehearsing a maintenance window.
//
// Shrinking is migrate-not-shed: the victim (highest-index serving node) is
// quiesced through the PR 4 drain lifecycle, the dispatcher's migration
// plane checkpoints its eligible attempts onto other nodes, and only once
// the node reports zero outstanding work does the autoscaler put it into its
// S-state via the power::sleep_drained_node verb. One resize action per
// check: the fleet rolls, it never steps.
//
// Growing prefers cancelling an in-progress drain (the node is still warm;
// restore_node simply re-opens placement) over waking a sleeper — this is
// also the seam the PR 4 x PR 7 regression test pins: a wake arriving while
// a drain is still in flight must not double-reinstate the node.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "power/governor.h"
#include "sim/simulation.h"

namespace pagoda::migrate {

/// One step of an explicit rolling-resize plan.
struct ResizeStep {
  sim::Time at = 0;   // virtual-time instant the step takes effect
  int target = 0;     // desired number of serving nodes
};

struct AutoscaleConfig {
  /// Arms utilization-driven scaling. A pure plan run (resize rehearsal)
  /// leaves this false and only follows `plan`.
  bool enabled = false;
  double target_util = 0.60;     // informational midpoint of the band
  double high_watermark = 0.85;  // util above this counts toward scale-up
  double low_watermark = 0.30;   // util below this counts toward scale-down
  int up_ticks = 2;              // consecutive hot checks before growing
  int down_ticks = 6;            // consecutive cold checks before shrinking
  int min_nodes = 1;             // never shrink below this
  int sleep_state = 3;           // S-state for parked nodes
  sim::Duration period = sim::microseconds(50);
  /// Explicit resize schedule, strictly increasing `at`.
  std::vector<ResizeStep> plan;

  bool armed() const { return enabled || !plan.empty(); }
};

/// `--autoscale=UTIL[:LOW:HIGH[:MIN]]` -> config with enabled=true.
/// Returns nullopt (with a message in *error) on a malformed spec.
std::optional<AutoscaleConfig> parse_autoscale_spec(std::string_view spec,
                                                    std::string* error);

/// `--resize=AT_US:NODES[,AT_US:NODES...]` -> plan steps. Instants must be
/// strictly increasing and targets >= 1.
std::optional<std::vector<ResizeStep>> parse_resize_spec(std::string_view spec,
                                                         std::string* error);

class Autoscaler {
 public:
  struct Stats {
    std::uint64_t checks = 0;
    std::uint64_t nodes_slept = 0;
    std::uint64_t nodes_woken = 0;
    std::uint64_t drains_started = 0;
    /// Scale-up cancelled an in-progress drain instead of waking a sleeper.
    std::uint64_t drains_cancelled = 0;
    std::uint64_t resize_events = 0;  // plan steps applied
  };

  Autoscaler(sim::Simulation& sim, AutoscaleConfig cfg,
             power::FleetControl& fleet);

  /// Starts the PeriodicCheck ticker (and schedules the plan steps). Call
  /// once, before the run starts. The ticker self-terminates when the fleet
  /// reports idle.
  void start();

  const Stats& stats() const { return stats_; }
  const AutoscaleConfig& config() const { return cfg_; }
  /// Nodes currently serving traffic (awake and not draining toward sleep).
  int serving_nodes() const;

 private:
  void schedule_tick();
  void periodic_check(sim::Time now);
  void finish_pending_sleeps();
  int desired_nodes() const;
  void grow_one();
  void shrink_one();

  sim::Simulation* sim_;
  AutoscaleConfig cfg_;
  power::FleetControl* fleet_;
  Stats stats_;
  /// Nodes quiesced by this autoscaler and still draining toward sleep.
  std::vector<bool> pending_sleep_;
  int hot_ticks_ = 0;
  int cold_ticks_ = 0;
  /// Desired size pinned by the most recent plan step; <0 = no plan active,
  /// utilization drives.
  int plan_target_ = -1;
  std::size_t next_step_ = 0;
  bool started_ = false;
};

}  // namespace pagoda::migrate
