// MigrationManager: configuration and accounting for migrate-not-shed
// drains.
//
// PR 4's drain lifecycle stops placing new work on a node and lets in-flight
// work finish. With the migration plane armed, drain_node() instead walks
// the node's safe points — kicks parked slot waiters ungranted, revokes
// unclaimed TaskTable entries host-side — and every captured attempt is
// checkpointed (see checkpoint.h), its node-resident state pulled back over
// the source's D2H link (charged to the requests as the migrate_xfer trace
// phase), and re-placed through the ordinary placement policy as the SAME
// request: same uid, same arrival, same attempt count, so the exactly-once
// ledger and the per-class ClassStats never notice the move.
//
// The capture/restore mechanics live in the dispatcher (it owns the
// attempts); this class owns the decision inputs and the migrate.* counters,
// so src/cluster stays the only layer that touches request state and
// src/migrate stays free of cluster types.
#pragma once

#include <cstdint>

#include "migrate/checkpoint.h"

namespace pagoda::migrate {

struct MigrationConfig {
  /// Arms migrate-not-shed drains. Off by default: drain keeps its PR 4
  /// finish-in-place semantics and every existing output stays
  /// byte-identical.
  bool enabled = false;
};

class MigrationManager {
 public:
  struct Stats {
    std::int64_t checkpoints = 0;  // attempts captured at any safe point
    std::int64_t queued = 0;
    std::int64_t staged = 0;
    std::int64_t table_parked = 0;
    std::int64_t restores = 0;  // checkpoints re-entered dispatch
    /// Revokes that lost the race to a scheduler-warp claim: the attempt
    /// runs to completion on the draining node instead.
    std::int64_t declined = 0;
    std::int64_t xfer_bytes = 0;       // total migrate_xfer wire bytes
    std::int64_t image_bytes = 0;      // total checkpoint image bytes
    std::uint64_t image_digest = 0;    // XOR of per-image digests
  };

  explicit MigrationManager(MigrationConfig cfg) : cfg_(cfg) {}

  const MigrationConfig& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }

  /// One attempt captured: counts the safe point and the transfer charge.
  void record_checkpoint(const TaskCheckpoint& cp,
                         std::span<const std::byte> image) {
    stats_.checkpoints += 1;
    switch (cp.point) {
      case SafePoint::kQueued: stats_.queued += 1; break;
      case SafePoint::kStaged: stats_.staged += 1; break;
      case SafePoint::kTableParked: stats_.table_parked += 1; break;
    }
    stats_.xfer_bytes += transfer_bytes(cp);
    stats_.image_bytes += static_cast<std::int64_t>(image.size());
    stats_.image_digest ^= migrate::image_digest(image);
  }

  void record_restore() { stats_.restores += 1; }
  void record_declined() { stats_.declined += 1; }

 private:
  MigrationConfig cfg_;
  Stats stats_;
};

}  // namespace pagoda::migrate
