// TaskCheckpoint: the serialized image of one not-yet-claimed placement
// attempt, captured at a well-defined safe point of the dispatcher's request
// state machine and restored — as the SAME request — into another node's
// dispatch flow.
//
// What makes narrow tasks cheap to migrate is that the host runtime already
// owns the complete descriptor: TaskParams (kernel ref, geometry, argument
// blob, QoS tags), the request envelope (payload sizes, data key, SLO,
// cost), and the ledger identity (uid, arrival, attempt). A checkpoint is a
// straight serialization of that state — no GPU context, register file or
// shared memory is ever captured, because the safe points are exactly the
// states in which the task has not been claimed by a scheduler warp:
//
//   kQueued       parked on the node's slot ReadyQueue; nothing staged.
//   kStaged       H2D input copy landed; no TaskTable entry yet.
//   kTableParked  spawned into the TaskTable and revoked host-side before
//                 any scheduler warp claimed the entry.
//
// Claimed/executing attempts are never checkpointed — they run to completion
// or take the existing retry/redispatch paths.
//
// The byte image is deterministic and byte-stable: fixed field order, fixed
// widths, little-endian, no pointers (the kernel ref is a symbol slot the
// restoring host re-binds), trailing FNV-1a digest. Two checkpoints of the
// same attempt state serialize to identical bytes, so the image size — the
// quantity the PCIe layer charges as the migrate_xfer phase — is a pure
// function of simulation state and every migration replays identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/time_types.h"
#include "pagoda/task_table.h"
#include "sched/policy.h"

namespace pagoda::migrate {

/// Where in the request state machine the attempt was captured.
enum class SafePoint : std::uint8_t {
  kQueued = 0,      // admitted, parked on the slot queue
  kStaged = 1,      // input payload staged on the source node
  kTableParked = 2  // TaskTable entry revoked before a warp claimed it
};

constexpr std::string_view to_string(SafePoint p) {
  switch (p) {
    case SafePoint::kQueued: return "queued";
    case SafePoint::kStaged: return "staged";
    case SafePoint::kTableParked: return "table_parked";
  }
  return "?";
}

/// The in-memory checkpoint. `fn` is process-local and deliberately excluded
/// from the byte image (a real system ships a kernel symbol id and re-binds
/// it at restore; the restoring dispatcher re-injects the pointer the same
/// way).
struct TaskCheckpoint {
  // --- ledger identity: restore re-enters as the SAME request ------------
  std::uint64_t uid = 0;
  std::int64_t arrival = 0;  // sim::Time, admission instant
  std::int32_t attempt = 1;  // 1-based; migration never charges the budget
  // --- request envelope --------------------------------------------------
  sched::Class cls = sched::Class::kStandard;
  std::int64_t slo = 0;  // sim::Duration
  double cost = 0.0;
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  std::uint64_t data_key = 0;
  std::int32_t index = 0;
  // --- task descriptor ---------------------------------------------------
  runtime::TaskParams params{};
  // --- capture context ---------------------------------------------------
  SafePoint point = SafePoint::kQueued;
  std::int32_t source_node = -1;
};

/// Serializes to the canonical byte image (header, fields in declaration
/// order, argument blob truncated to args_size, FNV-1a digest).
std::vector<std::byte> serialize(const TaskCheckpoint& cp);

/// Restores from a byte image. Returns false on a malformed image (bad
/// magic/version, short buffer, digest mismatch); `out` is untouched then.
/// `out->params.fn` is left null — the caller re-binds the kernel ref.
bool deserialize(std::span<const std::byte> image, TaskCheckpoint* out);

/// The wire bytes a migration moves off the source node: the checkpoint
/// image itself plus whatever state was node-resident at the safe point
/// (staged input payload; the revoked TaskTable descriptor). A kQueued
/// attempt never put state on the node, so only host-side work moves and
/// nothing is charged to the link.
std::int64_t transfer_bytes(const TaskCheckpoint& cp);

/// Deterministic digest of an image (the serializer's trailing word;
/// exported under migrate.* so two runs can be diffed by value).
std::uint64_t image_digest(std::span<const std::byte> image);

}  // namespace pagoda::migrate
