// The virtual-resource ledger (Zorua-style decoupling; see DESIGN.md §16).
//
// One ResourceLedger tracks a single resource dimension (shared-memory bytes
// of one MTB arena, TaskTable slots of one node, register budget of one MTB)
// as a population of live *virtual* allocations, each of which is in exactly
// one of two states:
//
//   resident — backed by the physical resource right now;
//   spilled  — evicted to the (PCIe-charged) backing store.
//
// The load-bearing invariant, asserted by the 50-seed soak in
// tests/vres_test.cpp at every transition:
//
//     virtual_allocated() == physical_allocated() + spilled()
//
// i.e. every virtual byte is either physically backed or spilled — never
// both, never neither. The ledger is pure bookkeeping: it never touches the
// buddy tree or the simulation clock. VirtualShmem drives it for shared
// memory; the cluster Dispatcher drives one per node for TaskTable slots
// (where "spilled" means admitted-on-virtual-capacity but not yet holding a
// physical table entry).
//
// A second, independent dimension — the *declared* charge against the
// oversubscribed capacity (`oversub x physical`) — is tracked by the caller
// (VirtualShmem charges pow2(declared) there while backing only pow2(used)
// physically), because declared and backed bytes differ by design; mixing
// them into one counter would break the invariant above.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace pagoda::vres {

class ResourceLedger {
 public:
  /// `virtual_capacity` bounds virtual_allocated(); `physical_capacity`
  /// bounds physical_allocated(). Capacities <= 0 mean "unbounded" (the
  /// caller enforces its own limit, as VirtualShmem does via the buddy).
  explicit ResourceLedger(std::int64_t virtual_capacity = 0,
                          std::int64_t physical_capacity = 0)
      : virtual_capacity_(virtual_capacity),
        physical_capacity_(physical_capacity) {}

  // --- transitions --------------------------------------------------------
  /// New virtual allocation, born resident (the normal allocate path).
  void allocate_resident(std::int64_t amount) {
    check_amount(amount);
    virtual_allocated_ += amount;
    physical_allocated_ += amount;
    check_caps();
    peaks();
  }

  /// New virtual allocation, born spilled (e.g. a slot admitted on virtual
  /// capacity before any physical table entry backs it).
  void allocate_spilled(std::int64_t amount) {
    check_amount(amount);
    virtual_allocated_ += amount;
    spilled_ += amount;
    check_caps();
    peaks();
  }

  /// resident -> spilled (eviction to the backing store).
  void spill(std::int64_t amount) {
    check_amount(amount);
    PAGODA_CHECK_MSG(physical_allocated_ >= amount,
                     "vres ledger: spilling more than is resident");
    physical_allocated_ -= amount;
    spilled_ += amount;
    spills_ += 1;
    spill_amount_total_ += amount;
    peaks();
  }

  /// spilled -> resident (reclaim on next touch).
  void reclaim(std::int64_t amount) {
    check_amount(amount);
    PAGODA_CHECK_MSG(spilled_ >= amount,
                     "vres ledger: reclaiming more than is spilled");
    spilled_ -= amount;
    physical_allocated_ += amount;
    reclaims_ += 1;
    reclaim_amount_total_ += amount;
    check_caps();
    peaks();
  }

  /// Frees a resident allocation (the sweep path).
  void free_resident(std::int64_t amount) {
    check_amount(amount);
    PAGODA_CHECK_MSG(physical_allocated_ >= amount,
                     "vres ledger: freeing more than is resident");
    physical_allocated_ -= amount;
    virtual_allocated_ -= amount;
    PAGODA_CHECK(virtual_allocated_ >= 0);
  }

  /// Frees a spilled allocation without reclaiming it first (a block that
  /// dies in the backing store, or a shed slot that never went physical).
  void free_spilled(std::int64_t amount) {
    check_amount(amount);
    PAGODA_CHECK_MSG(spilled_ >= amount,
                     "vres ledger: freeing more spilled than exists");
    spilled_ -= amount;
    virtual_allocated_ -= amount;
    PAGODA_CHECK(virtual_allocated_ >= 0);
  }

  // --- admission queries --------------------------------------------------
  bool fits_virtual(std::int64_t amount) const {
    return virtual_capacity_ <= 0 ||
           virtual_allocated_ + amount <= virtual_capacity_;
  }
  bool fits_physical(std::int64_t amount) const {
    return physical_capacity_ <= 0 ||
           physical_allocated_ + amount <= physical_capacity_;
  }

  // --- state --------------------------------------------------------------
  std::int64_t virtual_allocated() const { return virtual_allocated_; }
  std::int64_t physical_allocated() const { return physical_allocated_; }
  std::int64_t spilled() const { return spilled_; }
  std::int64_t virtual_capacity() const { return virtual_capacity_; }
  std::int64_t physical_capacity() const { return physical_capacity_; }

  /// The invariant every transition must preserve; property tests call this
  /// after each step. Returns false instead of aborting.
  bool check_invariant() const {
    return virtual_allocated_ == physical_allocated_ + spilled_ &&
           virtual_allocated_ >= 0 && physical_allocated_ >= 0 &&
           spilled_ >= 0 &&
           (virtual_capacity_ <= 0 ||
            virtual_allocated_ <= virtual_capacity_) &&
           (physical_capacity_ <= 0 ||
            physical_allocated_ <= physical_capacity_);
  }

  // --- lifetime counters (observability) ----------------------------------
  std::int64_t spills() const { return spills_; }
  std::int64_t reclaims() const { return reclaims_; }
  std::int64_t spill_amount_total() const { return spill_amount_total_; }
  std::int64_t reclaim_amount_total() const { return reclaim_amount_total_; }
  std::int64_t peak_virtual() const { return peak_virtual_; }
  std::int64_t peak_spilled() const { return peak_spilled_; }

 private:
  static void check_amount(std::int64_t amount) {
    PAGODA_CHECK_MSG(amount > 0, "vres ledger: non-positive amount");
  }
  void check_caps() const {
    PAGODA_CHECK_MSG(virtual_capacity_ <= 0 ||
                         virtual_allocated_ <= virtual_capacity_,
                     "vres ledger: virtual capacity exceeded");
    PAGODA_CHECK_MSG(physical_capacity_ <= 0 ||
                         physical_allocated_ <= physical_capacity_,
                     "vres ledger: physical capacity exceeded");
  }
  void peaks() {
    peak_virtual_ = std::max(peak_virtual_, virtual_allocated_);
    peak_spilled_ = std::max(peak_spilled_, spilled_);
  }

  std::int64_t virtual_capacity_;
  std::int64_t physical_capacity_;
  std::int64_t virtual_allocated_ = 0;
  std::int64_t physical_allocated_ = 0;
  std::int64_t spilled_ = 0;
  std::int64_t spills_ = 0;
  std::int64_t reclaims_ = 0;
  std::int64_t spill_amount_total_ = 0;
  std::int64_t reclaim_amount_total_ = 0;
  std::int64_t peak_virtual_ = 0;
  std::int64_t peak_spilled_ = 0;
};

}  // namespace pagoda::vres
