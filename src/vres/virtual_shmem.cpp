#include "vres/virtual_shmem.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace pagoda::vres {

VirtualShmem::VirtualShmem(std::span<std::byte> arena, double oversub,
                           std::int32_t granularity)
    : phys_(static_cast<std::int32_t>(arena.size()), granularity),
      arena_(arena),
      oversub_(oversub),
      virtualized_(oversub > 1.0),
      virtual_capacity_(static_cast<std::int64_t>(
          static_cast<double>(arena.size()) * oversub)),
      ledger_(/*virtual_capacity=*/0,
              /*physical_capacity=*/static_cast<std::int64_t>(arena.size())) {
  PAGODA_CHECK_MSG(oversub >= 1.0, "oversubscription factor must be >= 1.0");
}

VirtualShmem::VAlloc& VirtualShmem::at(std::int32_t vid) {
  const auto it = live_.find(vid);
  PAGODA_CHECK_MSG(it != live_.end(), "unknown virtual shmem allocation");
  return it->second;
}

std::int32_t VirtualShmem::pick_victim() const {
  std::int32_t victim = -1;
  std::uint64_t coldest = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [vid, a] : live_) {
    if (!a.resident || a.pinned || a.deferred) continue;
    if (a.last_touch < coldest) {  // strict <: ties keep the lowest vid
      coldest = a.last_touch;
      victim = vid;
    }
  }
  return victim;
}

std::int64_t VirtualShmem::spill_one(std::int32_t vid) {
  VAlloc& a = at(vid);
  PAGODA_CHECK(a.resident && !a.pinned && !a.deferred);
  a.backing.resize(static_cast<std::size_t>(a.used_rounded));
  std::memcpy(a.backing.data(), arena_.data() + a.offset,
              static_cast<std::size_t>(a.used_rounded));
  phys_.deallocate(a.offset);
  a.offset = -1;
  a.resident = false;
  ledger_.spill(a.used_rounded);
  return a.used_rounded;
}

std::optional<VirtualShmem::AllocResult> VirtualShmem::allocate(
    std::int32_t declared_bytes, std::int32_t used_bytes) {
  if (!virtualized_) {
    // Passthrough: the exact legacy call, declared bytes, used hint ignored.
    const auto offset = phys_.allocate(declared_bytes);
    if (!offset.has_value()) return std::nullopt;
    AllocResult r;
    r.offset = *offset;
    return r;
  }

  PAGODA_CHECK(declared_bytes > 0);
  const std::int32_t declared_rounded = phys_.block_size_for(declared_bytes);
  // Virtual backpressure first: a full virtual arena is "arena full" at
  // factor oversub — the scheduler warp waits exactly as it does today.
  if (virtual_in_use_ + declared_rounded > virtual_capacity_) {
    return std::nullopt;
  }
  const std::int32_t used =
      used_bytes > 0 ? std::min(used_bytes, declared_bytes) : declared_bytes;

  AllocResult r;
  for (;;) {
    const auto offset = phys_.allocate(used);
    if (offset.has_value()) {
      const std::int32_t vid = next_vid_++;
      VAlloc a;
      a.declared_rounded = declared_rounded;
      a.used_rounded = phys_.block_size_for(used);
      a.offset = *offset;
      a.resident = true;
      a.last_touch = ++clock_;
      live_.emplace(vid, std::move(a));
      virtual_in_use_ += declared_rounded;
      ledger_.allocate_resident(phys_.block_size_for(used));
      r.offset = *offset;
      r.vid = vid;
      return r;
    }
    // Physical pressure: evict the coldest unpinned resident and retry.
    // Buddy coalescing may need several evictions before a block of this
    // size materializes.
    const std::int32_t victim = pick_victim();
    if (victim < 0) return std::nullopt;  // everything pinned: caller waits
    r.spills += 1;
    r.spilled_bytes += spill_one(victim);
  }
}

std::optional<VirtualShmem::TouchResult> VirtualShmem::touch(
    std::int32_t vid) {
  PAGODA_CHECK_MSG(virtualized_, "touch() is a virtualized-mode operation");
  VAlloc& a = at(vid);
  a.last_touch = ++clock_;
  TouchResult t;
  if (a.resident) {
    a.pinned = true;
    t.offset = a.offset;
    return t;
  }
  // Reclaim from the backing store. The executor may sweep deferred marks
  // here: in the event-driven simulation the sweep cannot race the scheduler
  // warp's allocations (events are atomic) and the caller charges the sweep
  // cycles to its own pipeline; see DESIGN.md §16 for the discipline note.
  for (;;) {
    const auto offset = phys_.allocate(a.used_rounded);
    if (offset.has_value()) {
      std::memcpy(arena_.data() + *offset, a.backing.data(),
                  static_cast<std::size_t>(a.used_rounded));
      a.backing.clear();
      a.backing.shrink_to_fit();
      a.offset = *offset;
      a.resident = true;
      a.pinned = true;
      ledger_.reclaim(a.used_rounded);
      t.offset = *offset;
      t.reclaimed = true;
      t.reclaimed_bytes = a.used_rounded;
      return t;
    }
    if (!deferred_vids_.empty()) {
      t.swept += sweep_virtual();
      continue;
    }
    const std::int32_t victim = pick_victim();
    if (victim < 0) return std::nullopt;  // all pinned: wait for completions
    t.spills += 1;
    t.spilled_bytes += spill_one(victim);
  }
}

void VirtualShmem::mark_for_deallocation(std::int32_t offset,
                                         std::int32_t vid) {
  if (!virtualized_) {
    phys_.mark_for_deallocation(offset);
    return;
  }
  VAlloc& a = at(vid);
  // Pinned-since-touch means a completed block is always resident here.
  PAGODA_CHECK_MSG(a.resident, "deferred-freeing a spilled allocation");
  PAGODA_CHECK(!a.deferred);
  a.pinned = false;
  a.deferred = true;
  deferred_vids_.push_back(vid);
}

int VirtualShmem::sweep_virtual() {
  int freed = 0;
  for (const std::int32_t vid : deferred_vids_) {
    VAlloc& a = at(vid);
    phys_.deallocate(a.offset);
    ledger_.free_resident(a.used_rounded);
    virtual_in_use_ -= a.declared_rounded;
    PAGODA_CHECK(virtual_in_use_ >= 0);
    live_.erase(vid);
    freed += 1;
  }
  deferred_vids_.clear();
  vsweeps_ += 1;
  vblocks_swept_ += freed;
  return freed;
}

int VirtualShmem::sweep_deferred() {
  if (!virtualized_) return phys_.sweep_deferred();
  return sweep_virtual();
}

bool VirtualShmem::has_deferred() const {
  if (!virtualized_) return phys_.has_deferred();
  return !deferred_vids_.empty();
}

}  // namespace pagoda::vres
