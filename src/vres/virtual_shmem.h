// VirtualShmem: the virtual-resource facade over the buddy ShmemAllocator
// (DESIGN.md §16).
//
// Every MTB owns one VirtualShmem in front of its physical arena. Two modes:
//
//  * oversub == 1.0 (default) — pure passthrough. Every call delegates to
//    the unchanged buddy allocator with the *declared* byte count: identical
//    allocate/fail/sweep sequences, identical offsets, no extra state, no
//    events. Byte-identical behavior is by construction, not by testing.
//
//  * oversub > 1.0 — virtualized. A task's threadblock charges
//    pow2(declared) bytes against a virtual arena of `oversub x arena`
//    bytes, but is physically backed with only pow2(used) bytes (the
//    TaskParams::shmem_used_256 hint; == declared when absent). When the
//    physical buddy is exhausted, the coldest unpinned resident allocation
//    spills to a per-allocation backing store (bytes copied out, buddy block
//    freed; the wire time is charged by the caller at PCIe rate) and
//    reclaims on next touch. Pinning is touch-scoped: a block is pinned from
//    the first executor-warp touch until its deferred-deallocation mark, so
//    a spilled block can never be one whose warps are between a touch and
//    completion — reclaimed offsets are stable for the whole execution.
//
// The facade owns the virtual->physical mapping and the spill victim
// selection (deterministic LRU over a monotonically increasing touch
// sequence; ties break toward the lowest vid). The buddy tree itself is
// unchanged. The ResourceLedger invariant
//     virtual == physical + spilled   (in backed bytes)
// holds across every transition; tests/vres_test.cpp soaks it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "pagoda/shmem_allocator.h"
#include "vres/resource_ledger.h"

namespace pagoda::vres {

class VirtualShmem {
 public:
  /// `arena` is the MTB's backing byte array; the physical buddy manages
  /// exactly arena.size() bytes. `oversub` >= 1.0 scales the virtual arena.
  VirtualShmem(std::span<std::byte> arena, double oversub,
               std::int32_t granularity = 512);

  bool virtualized() const { return virtualized_; }
  double oversub() const { return oversub_; }
  std::int32_t arena_bytes() const { return phys_.arena_bytes(); }
  std::int64_t virtual_arena_bytes() const { return virtual_capacity_; }

  struct AllocResult {
    std::int32_t offset = -1;       // physical offset (valid while resident)
    std::int32_t vid = -1;          // virtual allocation id; -1 = passthrough
    int spills = 0;                 // victims evicted to make room
    std::int64_t spilled_bytes = 0; // physical bytes moved to backing store
  };

  /// Allocates a threadblock's shared memory. Passthrough: exactly
  /// ShmemAllocator::allocate(declared). Virtualized: charges
  /// pow2(declared) virtually and pow2(used) physically, spilling cold
  /// unpinned residents on physical pressure. nullopt = no room (the
  /// scheduler warp waits, as it does today on a full arena).
  std::optional<AllocResult> allocate(std::int32_t declared_bytes,
                                      std::int32_t used_bytes);

  struct TouchResult {
    std::int32_t offset = -1;
    bool reclaimed = false;          // was spilled; bytes copied back in
    std::int64_t reclaimed_bytes = 0;
    int spills = 0;                  // victims evicted to make room
    std::int64_t spilled_bytes = 0;
    int swept = 0;                   // deferred blocks swept to make room
  };

  /// Executor-warp touch (virtualized mode only): bumps the LRU clock, pins
  /// the allocation, and reclaims it from the backing store if spilled.
  /// nullopt = no physical room even after sweeping and spilling every
  /// eligible victim (the executor waits for a completion and retries).
  std::optional<TouchResult> touch(std::int32_t vid);

  /// Executor-side deferred free (Algorithm 1 line 22). Passthrough frees by
  /// offset; virtualized mode unpins and defers by vid.
  void mark_for_deallocation(std::int32_t offset, std::int32_t vid = -1);

  /// Scheduler-side sweep of every deferred free; returns blocks freed.
  int sweep_deferred();
  bool has_deferred() const;

  // --- forwarded physical-arena observability ----------------------------
  std::int32_t allocated_bytes() const { return phys_.allocated_bytes(); }
  std::int32_t peak_allocated_bytes() const {
    return phys_.peak_allocated_bytes();
  }
  std::int64_t alloc_successes() const { return phys_.alloc_successes(); }
  std::int64_t alloc_failures() const { return phys_.alloc_failures(); }
  std::int64_t sweeps() const {
    return virtualized_ ? vsweeps_ : phys_.sweeps();
  }
  std::int64_t blocks_swept() const {
    return virtualized_ ? vblocks_swept_ : phys_.blocks_swept();
  }
  /// The unchanged buddy backend (fragmentation gauges live there).
  const runtime::ShmemAllocator& physical() const { return phys_; }

  // --- virtual-plane observability ---------------------------------------
  /// Declared bytes currently charged against the virtual arena.
  std::int64_t virtual_bytes_in_use() const { return virtual_in_use_; }
  std::int64_t spilled_bytes_in_use() const { return ledger_.spilled(); }
  std::int64_t spills() const { return ledger_.spills(); }
  std::int64_t reclaims() const { return ledger_.reclaims(); }
  std::int64_t spill_bytes_total() const {
    return ledger_.spill_amount_total();
  }
  std::int64_t reclaim_bytes_total() const {
    return ledger_.reclaim_amount_total();
  }
  const ResourceLedger& ledger() const { return ledger_; }

  /// Live virtual allocations (resident + spilled), virtualized mode only.
  int live_allocations() const { return static_cast<int>(live_.size()); }

 private:
  struct VAlloc {
    std::int32_t declared_rounded = 0;  // pow2(declared), virtual charge
    std::int32_t used_rounded = 0;      // pow2(used), physical backing
    std::int32_t offset = -1;           // valid while resident
    bool resident = false;
    bool pinned = false;
    bool deferred = false;
    std::uint64_t last_touch = 0;
    std::vector<std::byte> backing;     // holds the bytes while spilled
  };

  VAlloc& at(std::int32_t vid);
  /// Coldest unpinned, undeferred resident allocation, or -1.
  std::int32_t pick_victim() const;
  /// Spills `vid` to its backing store; returns the physical bytes freed.
  std::int64_t spill_one(std::int32_t vid);
  int sweep_virtual();

  runtime::ShmemAllocator phys_;
  std::span<std::byte> arena_;
  double oversub_;
  bool virtualized_;
  std::int64_t virtual_capacity_;
  std::int64_t virtual_in_use_ = 0;
  std::uint64_t clock_ = 0;
  std::int32_t next_vid_ = 0;
  // std::map (not unordered_map): victim selection scans the live set, so
  // iteration order must be deterministic across libraries and runs.
  std::map<std::int32_t, VAlloc> live_;
  std::vector<std::int32_t> deferred_vids_;
  std::int64_t vsweeps_ = 0;
  std::int64_t vblocks_swept_ = 0;
  ResourceLedger ledger_;
};

}  // namespace pagoda::vres
