// The uniform measurement every execution scheme reports (formerly
// baselines::RunResult; moved down so the engine can assemble it).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_types.h"

namespace pagoda::engine {

struct RunResult {
  bool completed = false;
  sim::Duration elapsed = 0;
  std::int64_t tasks = 0;
  /// Spawn-to-completion latency per task, microseconds (when collected).
  std::vector<double> task_latency_us;
  /// Achieved occupancy: time-averaged warps doing *task work* over the
  /// device warp capacity.
  double occupancy = 0.0;

  /// PCIe wire occupancy per direction (copy-boundedness diagnostics; the
  /// Table 3 "% time spent in data copy" analysis).
  sim::Duration h2d_wire_busy = 0;
  sim::Duration d2h_wire_busy = 0;

  double elapsed_ms() const { return sim::to_milliseconds(elapsed); }
};

}  // namespace pagoda::engine
