#include "engine/stage_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "sim/joinable.h"
#include "sim/sync.h"

namespace pagoda::engine {

StagePipeline::StagePipeline(Session& session, const Config& cfg)
    : sim_(&session.sim()),
      host_(session.config().host),
      spawner_threads_(cfg.spawner_threads) {
  PAGODA_CHECK_MSG(
      session.has_device() || (cfg.h2d_streams == 0 && cfg.d2h_streams == 0),
      "stream pools need a device");
  for (int s = 0; s < cfg.h2d_streams; ++s) {
    h2d_pool_.emplace_back(session.device());
  }
  for (int s = 0; s < cfg.d2h_streams; ++s) {
    d2h_pool_.emplace_back(session.device());
  }
}

sim::Task<> StagePipeline::copy_staged(gpu::Stream& s, pcie::Direction dir,
                                       std::int64_t bytes,
                                       std::function<void()> on_done) {
  co_await sim_->delay(host_.memcpy_setup);
  s.memcpy_async(dir, nullptr, nullptr, static_cast<std::size_t>(bytes),
                 std::move(on_done));
}

sim::Task<> StagePipeline::copy_sync(gpu::Stream& s, pcie::Direction dir,
                                     std::int64_t bytes) {
  co_await sim_->delay(host_.memcpy_setup);
  sim::Trigger landed(*sim_);
  s.memcpy_async(dir, nullptr, nullptr, static_cast<std::size_t>(bytes),
                 [&landed] { landed.fire(); });
  co_await landed.wait();
}

sim::Task<> StagePipeline::launch_cost() {
  co_await sim_->delay(host_.kernel_launch);
}

std::vector<int> StagePipeline::wave_members(
    std::span<const workloads::TaskSpec> tasks, int wave) {
  std::vector<int> members;
  for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
    if (tasks[static_cast<std::size_t>(i)].wave == wave) members.push_back(i);
  }
  return members;
}

sim::Task<> StagePipeline::fan_out(std::span<const int> indices,
                                   const SliceFn& slice) {
  std::vector<sim::Joinable> joins;
  const auto nsp = static_cast<std::size_t>(spawner_threads_);
  const std::size_t per = (indices.size() + nsp - 1) / nsp;
  for (std::size_t s = 0; s < nsp; ++s) {
    const std::size_t lo = s * per;
    if (lo >= indices.size()) break;
    const std::size_t hi = std::min(indices.size(), lo + per);
    joins.push_back(sim_->spawn(slice(indices.subspan(lo, hi - lo))));
  }
  for (const sim::Joinable& j : joins) co_await j.join();
}

sim::Task<> StagePipeline::run_waves(std::span<const workloads::TaskSpec> tasks,
                                     int waves, const WavePlan& plan) {
  for (int wave = 0; wave < waves; ++wave) {
    const std::vector<int> members = wave_members(tasks, wave);
    const std::size_t chunk = plan.chunk_size > 0
                                  ? static_cast<std::size_t>(plan.chunk_size)
                                  : members.size();
    for (std::size_t lo = 0; lo < members.size(); lo += chunk) {
      const std::size_t hi = std::min(members.size(), lo + chunk);
      co_await fan_out(std::span<const int>(members.data() + lo, hi - lo),
                       plan.slice);
      if (plan.after_chunk) co_await plan.after_chunk();
    }
    if (plan.after_wave) co_await plan.after_wave();
  }
}

}  // namespace pagoda::engine
