// engine::Session — the one construction path for a simulated run.
//
// Every execution scheme in the reproduction needs the same bring-up:
// a Simulation (the virtual clock), usually a Device on it, optionally the
// Pagoda Runtime on the device, optionally a host CPU pool, and — when the
// run is observed — the obs::Collector attachments, in a fixed order.
// Before this layer existed each driver in src/baselines re-implemented that
// lifecycle by hand (and src/cluster a third way); a Session owns it once.
//
// Construction order is part of the determinism contract: the Session builds
// Device -> Runtime -> CpuCluster and attaches the collector as
// device, then runtime, then cpu — the order the original drivers used — so
// a ported driver schedules byte-for-byte the same event sequence.
//
// Two ownership modes:
//  * Session(cfg)        — owns its Simulation (single-device drivers).
//  * Session(sim, cfg)   — shares an external Simulation (cluster GpuNodes,
//    examples that co-schedule several sessions on one clock).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "gpu/device.h"
#include "gpu/gpu_spec.h"
#include "host/host_api.h"
#include "pagoda/runtime.h"
#include "pcie/pcie_bus.h"
#include "sim/simulation.h"

namespace pagoda::obs {
class Collector;
}

namespace pagoda::engine {

struct SessionConfig {
  gpu::GpuSpec spec = gpu::GpuSpec::titan_x();
  pcie::PcieConfig pcie{};
  host::HostCosts host{};
  /// Build a gpu::Device. Off for CPU-only or clock-only sessions.
  bool device = true;
  /// Build the Pagoda runtime::Runtime on the device (implies device).
  bool pagoda_runtime = false;
  /// Runtime configuration; PagodaConfig::mode carries the ExecMode.
  runtime::PagodaConfig pagoda{};
  /// Build a host::CpuCluster with this many cores (0 = none).
  int cpu_cores = 0;
  double cpu_core_ops_per_sec = 0.0;
  /// Worker threads for the sharded simulation core (only meaningful for an
  /// OWNING session whose Simulation later grows shards — i.e. the cluster
  /// driver's clock-only session). 1 = sequential-sharded, the default.
  int sim_threads = 1;
  /// When false the owned Simulation ignores configure_shards and runs the
  /// historical single global event queue (--sim-core=global).
  bool sim_sharding = true;
  /// When set, the constructor attaches everything it builds (see
  /// attach_collector). Multi-session drivers leave this null and attach
  /// later, at the point their pre-port code did.
  obs::Collector* collector = nullptr;
  /// Metric/track name prefix ("" single device, "dev00." cluster nodes).
  std::string collector_prefix;
};

class Session {
 public:
  explicit Session(const SessionConfig& cfg);
  Session(sim::Simulation& sim, const SessionConfig& cfg);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  sim::Simulation& sim() { return *sim_; }
  const SessionConfig& config() const { return cfg_; }

  // Accessors are const-qualified but hand out mutable references, like
  // unique_ptr: constness of the Session means "the component set is fixed",
  // not "the components are immutable".
  bool has_device() const { return dev_ != nullptr; }
  gpu::Device& device() const;
  bool has_rt() const { return rt_ != nullptr; }
  runtime::Runtime& rt() const;
  /// The device's PCIe bus (requires a device); used by the fault layer to
  /// arm per-node transfer-fault hooks and bandwidth-degradation windows.
  pcie::PcieBus& pcie() const { return device().pcie(); }
  bool has_cpu() const { return cpu_ != nullptr; }
  host::CpuCluster& cpu() const;
  obs::Collector* collector() const { return collector_; }

  /// Attaches whatever this session built to `c` (device, then runtime,
  /// then cpu — the canonical order). Called by the constructor when the
  /// config carries a collector; callable exactly once per session.
  void attach_collector(obs::Collector& c, const std::string& prefix = "");

  /// Launches the Pagoda MasterKernel (no-op without a runtime).
  void start();
  /// Terminates the MasterKernel; idempotent, implied by destruction.
  void shutdown();

  /// Runs the virtual clock up to `cap` and returns it.
  sim::Simulation& run_until(sim::Duration cap) {
    sim_->run_until(cap);
    return *sim_;
  }

 private:
  void build(const SessionConfig& cfg);

  SessionConfig cfg_;
  std::unique_ptr<sim::Simulation> owned_sim_;
  sim::Simulation* sim_ = nullptr;
  std::unique_ptr<gpu::Device> dev_;
  std::unique_ptr<runtime::Runtime> rt_;
  std::unique_ptr<host::CpuCluster> cpu_;
  obs::Collector* collector_ = nullptr;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace pagoda::engine
