#include "engine/session.h"

#include "common/check.h"
#include "obs/collector.h"

namespace pagoda::engine {

Session::Session(const SessionConfig& cfg)
    : cfg_(cfg), owned_sim_(std::make_unique<sim::Simulation>()) {
  sim_ = owned_sim_.get();
  sim_->set_sharding_enabled(cfg.sim_sharding);
  if (cfg.sim_threads > 1) sim_->set_worker_threads(cfg.sim_threads);
  build(cfg);
}

Session::Session(sim::Simulation& sim, const SessionConfig& cfg)
    : cfg_(cfg), sim_(&sim) {
  build(cfg);
}

Session::~Session() { shutdown(); }

void Session::build(const SessionConfig& cfg) {
  if (cfg.device || cfg.pagoda_runtime) {
    dev_ = std::make_unique<gpu::Device>(*sim_, cfg.spec, cfg.pcie);
  }
  if (cfg.pagoda_runtime) {
    rt_ = std::make_unique<runtime::Runtime>(*dev_, cfg.host, cfg.pagoda);
  }
  if (cfg.cpu_cores > 0) {
    cpu_ = std::make_unique<host::CpuCluster>(*sim_, cfg.cpu_cores,
                                              cfg.cpu_core_ops_per_sec);
  }
  if (cfg.collector != nullptr) {
    attach_collector(*cfg.collector, cfg.collector_prefix);
  }
}

gpu::Device& Session::device() const {
  PAGODA_CHECK_MSG(dev_ != nullptr, "session built without a device");
  return *dev_;
}

runtime::Runtime& Session::rt() const {
  PAGODA_CHECK_MSG(rt_ != nullptr, "session built without a Pagoda runtime");
  return *rt_;
}

host::CpuCluster& Session::cpu() const {
  PAGODA_CHECK_MSG(cpu_ != nullptr, "session built without a CPU pool");
  return *cpu_;
}

void Session::attach_collector(obs::Collector& c, const std::string& prefix) {
  PAGODA_CHECK_MSG(collector_ == nullptr,
                   "session already attached to a collector");
  collector_ = &c;
  if (dev_ != nullptr) c.attach_device(*dev_, prefix);
  if (rt_ != nullptr) c.attach_pagoda(*rt_, prefix);
  if (cpu_ != nullptr) c.attach_cpu(*sim_, *cpu_);
}

void Session::start() {
  if (rt_ == nullptr || started_) return;
  started_ = true;
  rt_->start();
}

void Session::shutdown() {
  if (rt_ == nullptr || !started_ || shut_down_) return;
  shut_down_ = true;
  rt_->shutdown();
}

}  // namespace pagoda::engine
