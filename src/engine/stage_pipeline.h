// engine::StagePipeline — the per-task H2D -> execute -> D2H flow every
// driver plays, factored once.
//
// A pipeline owns the copy-stream pools and exposes the three things the
// pre-port drivers each re-implemented by hand:
//
//  * copy stages — `copy_staged` (pay the host memcpy-setup cost, then queue
//    the transfer fire-and-forget, optionally with a landing callback: the
//    HyperQ per-task and Pagoda data-path flavor) and `copy_sync` (setup,
//    transfer, await: the GeMTC/Fusion bulk flavor);
//  * wave orchestration — `wave_members` / `fan_out` / `run_waves` replicate
//    the dependency-wave chunk/spawner-split/join loop with per-stage hooks
//    (`WavePlan::slice` is the execute stage; `after_chunk` / `after_wave`
//    are the batch and SLUD gates);
//  * stream pools — round-robin `h2d_stream(i)` / `d2h_stream(i)` access;
//    a zero-sized D2H pool aliases the H2D pool (HyperQ's one-stream-per-
//    task semantics).
//
// Everything here is event-for-event identical to the code it replaced:
// the helpers are lazy sim::Task<>s (awaiting one is symmetric transfer,
// no scheduled events), and stream construction is pure host state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "engine/session.h"
#include "gpu/stream.h"
#include "sim/process.h"
#include "sim/task.h"
#include "workloads/workload.h"

namespace pagoda::engine {

class StagePipeline {
 public:
  struct Config {
    /// Input-copy stream pool size (0 = no streams; compute-only drivers).
    int h2d_streams = 0;
    /// Output-copy pool size; 0 aliases the H2D pool, so a task's input
    /// copy, kernel and output copy serialize on one stream.
    int d2h_streams = 0;
    /// Host threads the wave fan-out splits task slices over.
    int spawner_threads = 1;
  };

  /// Streams live on the session's device; a device-less session only
  /// supports the wave-orchestration half (pool sizes must be 0).
  StagePipeline(Session& session, const Config& cfg);

  sim::Simulation& sim() { return *sim_; }
  int spawner_threads() const { return spawner_threads_; }

  gpu::Stream& h2d_stream(std::size_t key) {
    return h2d_pool_[key % h2d_pool_.size()];
  }
  gpu::Stream& d2h_stream(std::size_t key) {
    std::deque<gpu::Stream>& pool = d2h_pool_.empty() ? h2d_pool_ : d2h_pool_;
    return pool[key % pool.size()];
  }

  // --- copy and launch stages --------------------------------------------
  /// Staged async copy: host memcpy-setup cost, then the transfer queues on
  /// `s` fire-and-forget. `on_done` (optional) runs when the bytes land.
  sim::Task<> copy_staged(gpu::Stream& s, pcie::Direction dir,
                          std::int64_t bytes,
                          std::function<void()> on_done = nullptr);
  /// Blocking bulk copy: setup cost, transfer, await completion.
  sim::Task<> copy_sync(gpu::Stream& s, pcie::Direction dir,
                        std::int64_t bytes);
  /// The host-side kernel-launch cost (driver lock excluded — schemes that
  /// serialize launches hold their own lock around this).
  sim::Task<> launch_cost();

  // --- wave orchestration ------------------------------------------------
  /// Task indices of one dependency wave, in task order.
  static std::vector<int> wave_members(
      std::span<const workloads::TaskSpec> tasks, int wave);

  /// The execute stage: one slice process per spawner thread, fed the task
  /// indices that thread owns.
  using SliceFn = std::function<sim::Process(std::span<const int>)>;
  /// A gate run between stages (batch gates, SLUD wave barriers, stream
  /// synchronization).
  using GateFn = std::function<sim::Task<>()>;

  /// Splits `indices` into spawner_threads contiguous slices, spawns one
  /// slice process each, and joins them in order.
  sim::Task<> fan_out(std::span<const int> indices, const SliceFn& slice);

  struct WavePlan {
    SliceFn slice;
    /// Tasks per chunk inside a wave (batch-gated schemes); 0 = the whole
    /// wave is one chunk.
    int chunk_size = 0;
    /// Runs after each chunk's fan-out joins (may be empty).
    GateFn after_chunk;
    /// Runs after every wave, including empty ones (may be empty).
    GateFn after_wave;
  };

  /// The canonical flow: for each of `waves` dependency waves, chunk its
  /// members, fan each chunk over the spawner threads, and run the gates.
  sim::Task<> run_waves(std::span<const workloads::TaskSpec> tasks, int waves,
                        const WavePlan& plan);

 private:
  sim::Simulation* sim_;
  host::HostCosts host_;
  int spawner_threads_;
  std::deque<gpu::Stream> h2d_pool_;
  std::deque<gpu::Stream> d2h_pool_;
};

}  // namespace pagoda::engine
