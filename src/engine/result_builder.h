// engine::ResultBuilder — uniform RunResult assembly.
//
// Drivers record per-task start/end marks while the simulation runs, then
// hand the builder their completion state; assemble() derives latencies,
// emits the collector task spans and finalizes the collector — the ~40 lines
// every pre-port driver duplicated. The assembly order is fixed (wire-busy,
// occupancy, latencies, spans, collector finish) and matches the original
// drivers, so observed runs stay byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_types.h"
#include "engine/run_result.h"
#include "engine/session.h"

namespace pagoda::engine {

class ResultBuilder {
 public:
  /// `num_tasks` sizes the per-task mark arrays (0 for drivers that supply
  /// latencies wholesale, like the cluster dispatcher).
  explicit ResultBuilder(int num_tasks);

  // --- during the run ----------------------------------------------------
  void mark_start(int idx, sim::Time t) {
    starts_[static_cast<std::size_t>(idx)] = t;
  }
  void mark_end(int idx, sim::Time t) {
    ends_[static_cast<std::size_t>(idx)] = t;
  }
  sim::Time start_of(int idx) const {
    return starts_[static_cast<std::size_t>(idx)];
  }
  sim::Time end_of(int idx) const {
    return ends_[static_cast<std::size_t>(idx)];
  }

  // --- after the run -----------------------------------------------------
  /// Completion state: whether the driver finished before the time cap, and
  /// its recorded end time.
  void complete(bool done, sim::Time end_time);
  sim::Time end_time() const { return end_time_; }

  /// Accumulates both PCIe wire-busy integrals from a device (call once per
  /// device; cluster drivers call it per node).
  void wires_from(gpu::Device& dev);

  /// Occupancy sources — call exactly one.
  /// Whole-device resident-warp occupancy (HyperQ, Fusion).
  void occupancy_device(gpu::Device& dev);
  /// Pagoda executor-warp occupancy over [0, end_time].
  void occupancy_executors(runtime::Runtime& rt, const gpu::GpuSpec& spec);
  /// Precomputed busy-warp integral (GeMTC's in-driver accounting, cluster
  /// fleet sums): busy warp-seconds over end_time * warp_capacity.
  void occupancy_integral(double busy_warp_seconds, double warp_capacity);

  /// Every task shares one interval (static fusion: a task's result is only
  /// available when the whole fused kernel retires). Emits a single span.
  void uniform_interval(sim::Time start, sim::Time end);

  /// Wholesale latencies (cluster dispatcher) — replaces the mark arrays.
  void set_latencies(std::vector<double> latency_us);
  /// Extra span emitted ahead of the per-task marks (cluster request spans).
  void add_span(sim::Time start, sim::Time end);

  /// Overrides RunResult::tasks (default: the mark-array size).
  void set_tasks(std::int64_t tasks);

  /// Assembles the RunResult: latencies (when collected), collector task
  /// spans and Collector::finish. Call once, after the marks are final and
  /// before the Session's Simulation dies.
  RunResult assemble(bool collect_latencies, obs::Collector* collector);

 private:
  std::vector<sim::Time> starts_;
  std::vector<sim::Time> ends_;
  std::vector<std::pair<sim::Time, sim::Time>> extra_spans_;
  std::vector<double> latencies_;
  bool wholesale_latencies_ = false;
  bool uniform_ = false;
  sim::Time uniform_start_ = 0;
  sim::Time uniform_end_ = 0;
  std::int64_t tasks_override_ = -1;
  sim::Time end_time_ = 0;
  RunResult res_;
};

}  // namespace pagoda::engine
