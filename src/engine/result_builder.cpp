#include "engine/result_builder.h"

#include <utility>

#include "common/check.h"
#include "obs/collector.h"

namespace pagoda::engine {

ResultBuilder::ResultBuilder(int num_tasks)
    : starts_(static_cast<std::size_t>(num_tasks), 0),
      ends_(static_cast<std::size_t>(num_tasks), 0) {}

void ResultBuilder::complete(bool done, sim::Time end_time) {
  res_.completed = done;
  res_.elapsed = end_time;
  end_time_ = end_time;
}

void ResultBuilder::wires_from(gpu::Device& dev) {
  res_.h2d_wire_busy +=
      dev.pcie().link(pcie::Direction::HostToDevice).busy_time();
  res_.d2h_wire_busy +=
      dev.pcie().link(pcie::Direction::DeviceToHost).busy_time();
}

void ResultBuilder::occupancy_device(gpu::Device& dev) {
  res_.occupancy = dev.achieved_occupancy();
}

void ResultBuilder::occupancy_executors(runtime::Runtime& rt,
                                        const gpu::GpuSpec& spec) {
  occupancy_integral(rt.master_kernel().executor_busy_warp_seconds(),
                     static_cast<double>(spec.max_resident_warps()));
}

void ResultBuilder::occupancy_integral(double busy_warp_seconds,
                                       double warp_capacity) {
  const double elapsed_s = sim::to_seconds(end_time_);
  if (elapsed_s > 0.0) {
    res_.occupancy = busy_warp_seconds / (elapsed_s * warp_capacity);
  }
}

void ResultBuilder::uniform_interval(sim::Time start, sim::Time end) {
  uniform_ = true;
  uniform_start_ = start;
  uniform_end_ = end;
}

void ResultBuilder::set_latencies(std::vector<double> latency_us) {
  wholesale_latencies_ = true;
  latencies_ = std::move(latency_us);
}

void ResultBuilder::add_span(sim::Time start, sim::Time end) {
  extra_spans_.emplace_back(start, end);
}

void ResultBuilder::set_tasks(std::int64_t tasks) { tasks_override_ = tasks; }

RunResult ResultBuilder::assemble(bool collect_latencies,
                                  obs::Collector* collector) {
  const auto n = static_cast<int>(starts_.size());
  res_.tasks = tasks_override_ >= 0 ? tasks_override_
                                    : static_cast<std::int64_t>(n);
  if (collect_latencies) {
    if (wholesale_latencies_) {
      res_.task_latency_us = std::move(latencies_);
    } else if (uniform_) {
      res_.task_latency_us.assign(
          static_cast<std::size_t>(n),
          sim::to_microseconds(uniform_end_ - uniform_start_));
    } else {
      res_.task_latency_us.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        res_.task_latency_us.push_back(
            sim::to_microseconds(end_of(i) - start_of(i)));
      }
    }
  }
  if (collector != nullptr) {
    for (const auto& [s, e] : extra_spans_) collector->task_span(s, e);
    if (uniform_) {
      collector->task_span(uniform_start_, uniform_end_);
    } else {
      for (int i = 0; i < n; ++i) {
        collector->task_span(start_of(i), end_of(i));
      }
    }
    collector->finish(end_time_, res_.tasks);
  }
  return std::move(res_);
}

}  // namespace pagoda::engine
