#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pagoda {

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    PAGODA_CHECK_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double std_deviation(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = arithmetic_mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n_a = static_cast<double>(count_);
  const auto n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n_total = n_a + n_b;
  mean_ += delta * n_b / n_total;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n_total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace pagoda
