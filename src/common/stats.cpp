#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pagoda {

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    PAGODA_CHECK_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double std_deviation(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = arithmetic_mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

}  // namespace pagoda
