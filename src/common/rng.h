// Deterministic pseudo-random number generation for workload synthesis.
//
// All workload generators derive their streams from SplitMix64 so that every
// benchmark and test is reproducible bit-for-bit regardless of platform or
// standard-library implementation (std::mt19937 distributions are not
// portable across library vendors).
#pragma once

#include <cstdint>

namespace pagoda {

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream. Good enough
/// for workload-shape synthesis; not for cryptography.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Stateless hash of an index into a 64-bit value; used to give per-item
/// deterministic randomness without carrying generator state.
constexpr std::uint64_t hash_index(std::uint64_t seed, std::uint64_t index) {
  SplitMix64 g(seed ^ (index * 0xD1B54A32D192ED03ULL + 0x9E3779B97F4A7C15ULL));
  return g.next();
}

}  // namespace pagoda
