#include "common/alloc_tuning.h"

#include <cstdlib>  // defines __GLIBC__ on glibc platforms

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace pagoda::common {

void tune_allocator_for_batch_runs() {
#if defined(__GLIBC__)
  // 1 GiB thresholds: workload buffers (tens to hundreds of MB) stay on the
  // main heap and survive free() for the next experiment instead of being
  // munmapped and re-faulted in.
  constexpr int kLarge = 1 << 30;
  mallopt(M_MMAP_THRESHOLD, kLarge);
  mallopt(M_TRIM_THRESHOLD, kLarge);
#endif
}

}  // namespace pagoda::common
