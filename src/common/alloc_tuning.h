// Process-wide allocator tuning for batch simulation runs.
//
// A single experiment allocates a few hundred MB of workload buffers, frees
// them, and the next experiment allocates again. With glibc's defaults every
// large buffer is a fresh mmap/munmap pair and every re-touch a page fault,
// so multi-experiment binaries (bench sweeps, `--runtime=all`) spend more
// wall-clock in the kernel than in the simulator. Raising the mmap/trim
// thresholds keeps freed arenas cached in the allocator across experiments.
#pragma once

namespace pagoda::common {

/// Call once near the top of main() in binaries that run many experiments
/// back to back. Idempotent; a no-op on non-glibc platforms.
void tune_allocator_for_batch_runs();

}  // namespace pagoda::common
