// Lightweight runtime-checked assertions, active in all build types.
//
// Simulator correctness depends on internal invariants (event ordering,
// resource conservation, protocol state machines); violating them silently
// would corrupt results, so checks stay on in release builds. The cost is
// negligible next to the event-queue work they guard.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pagoda {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pagoda

#define PAGODA_CHECK(expr)                                         \
  (static_cast<bool>(expr)                                         \
       ? void(0)                                                   \
       : ::pagoda::check_fail(#expr, __FILE__, __LINE__, ""))

#define PAGODA_CHECK_MSG(expr, msg)                                \
  (static_cast<bool>(expr)                                         \
       ? void(0)                                                   \
       : ::pagoda::check_fail(#expr, __FILE__, __LINE__, (msg)))
