// Small statistics helpers used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pagoda {

/// Geometric mean of strictly positive values. Returns 0 for an empty span.
double geometric_mean(std::span<const double> values);

/// Arithmetic mean. Returns 0 for an empty span.
double arithmetic_mean(std::span<const double> values);

/// Population standard deviation. Returns 0 for spans of size < 2.
double std_deviation(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation on a copy of the data.
double percentile(std::span<const double> values, double p);

/// Online accumulator for min/max/mean/variance without storing samples.
/// Uses Welford's algorithm; merge() combines independent accumulators
/// (e.g. per-MTB metric streams) via the parallel variant (Chan et al.).
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator into this one, as if every sample of `other`
  /// had been add()ed here.
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

  /// Population variance / standard deviation; 0 for counts < 2.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pagoda
