// Small statistics helpers used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pagoda {

/// Geometric mean of strictly positive values. Returns 0 for an empty span.
double geometric_mean(std::span<const double> values);

/// Arithmetic mean. Returns 0 for an empty span.
double arithmetic_mean(std::span<const double> values);

/// Population standard deviation. Returns 0 for spans of size < 2.
double std_deviation(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation on a copy of the data.
double percentile(std::span<const double> values, double p);

/// Online accumulator for min/max/mean/count without storing samples.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pagoda
