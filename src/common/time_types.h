// Virtual-time representation for the discrete-event simulator.
//
// Time is an integer count of picoseconds. Integer time keeps the simulation
// deterministic across platforms and makes exact event-time comparisons safe.
// One GPU cycle at 1 GHz is 1000 ps, so sub-cycle resolution is available for
// processor-sharing completions, PCIe byte times, and the like.
#pragma once

#include <cstdint>
#include <limits>

namespace pagoda::sim {

/// Virtual simulation time in picoseconds since simulation start.
using Time = std::int64_t;

/// A duration in picoseconds (same representation as Time).
using Duration = std::int64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

constexpr Duration picoseconds(std::int64_t n) { return n; }
constexpr Duration nanoseconds(double n) {
  return static_cast<Duration>(n * 1e3);
}
constexpr Duration microseconds(double n) {
  return static_cast<Duration>(n * 1e6);
}
constexpr Duration milliseconds(double n) {
  return static_cast<Duration>(n * 1e9);
}
constexpr Duration seconds(double n) { return static_cast<Duration>(n * 1e12); }

constexpr double to_seconds(Duration d) { return static_cast<double>(d) * 1e-12; }
constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) * 1e-9;
}
constexpr double to_microseconds(Duration d) {
  return static_cast<double>(d) * 1e-6;
}
constexpr double to_nanoseconds(Duration d) {
  return static_cast<double>(d) * 1e-3;
}

}  // namespace pagoda::sim
