// Host-side CUDA API cost model.
//
// The paper's workloads are dominated by many small API interactions
// (taskSpawn copies, cudaMemcpyAsync per task, kernel launches), so the
// host-side driver costs matter as much as the wire time. Values are the
// commonly measured CUDA 7.5-era overheads; they live here (and in
// harness/calibration.h) so EXPERIMENTS.md can discuss sensitivity.
#pragma once

#include <functional>

#include "common/time_types.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"

namespace pagoda::host {

struct HostCosts {
  /// CPU time for one cudaLaunchKernel driver call.
  sim::Duration kernel_launch = sim::microseconds(5.0);
  /// CPU time to set up one cudaMemcpyAsync (independent of size).
  sim::Duration memcpy_setup = sim::microseconds(3.0);
  /// CPU time for a cudaMalloc/cudaFree pair, amortized per call.
  sim::Duration malloc_cost = sim::microseconds(10.0);
  /// CPU time to poll a device flag / cudaEventQuery.
  sim::Duration event_query = sim::microseconds(1.0);
  /// CPU time for Pagoda's host-side taskSpawn bookkeeping (find a free
  /// TaskTable entry, fill parameters) — tens of nanoseconds of memory
  /// writes plus function-call overhead.
  sim::Duration task_spawn_fill = sim::nanoseconds(300.0);
};

/// A 20-core CPU for the PThreads baseline (2x Intel Xeon E5-2660, 10 cores
/// each at 2.6 GHz). Tasks execute serially on one core; the pool is a
/// processor-sharing resource with per-job cap = 1 core.
class CpuCluster {
 public:
  CpuCluster(sim::Simulation& sim, int cores, double core_ops_per_sec)
      : cores_(cores),
        core_ops_per_sec_(core_ops_per_sec),
        pool_(sim, core_ops_per_sec * cores, core_ops_per_sec) {}

  /// Awaitable: runs `ops` scalar operations on one core of the pool.
  auto run(double ops) { return pool_.execute(ops); }
  void run_async(double ops, std::function<void()> on_done) {
    pool_.submit(ops, std::move(on_done));
  }

  int cores() const { return cores_; }
  double core_ops_per_sec() const { return core_ops_per_sec_; }
  double busy_core_seconds() const {
    return pool_.busy_work_seconds() / core_ops_per_sec_;
  }
  /// Tasks currently executing or queued on the pool (observability).
  int active_tasks() const { return pool_.active_jobs(); }

 private:
  int cores_;
  double core_ops_per_sec_;
  sim::PsResource pool_;
};

}  // namespace pagoda::host
