// Cycle-cost constants used by task kernels when charging work to the SMM
// pipeline model.
//
// Each operation has an *issue* cost (cycles of pipeline occupancy, shared
// among runnable warps at 4 warp-instructions/cycle) and memory operations
// additionally have a *stall* cost (latency that elapses concurrently across
// warps). The split is what makes occupancy matter in the model: a lone
// narrow kernel is stall-bound (it cannot hide latency), while a fully
// occupied SMM overlaps stalls and becomes issue-bound — the premise of the
// paper's §2.
//
// Values are deliberately coarse: the reproduction targets the *shape* of
// the paper's results (who wins, by what factor, where crossovers fall),
// which is governed by occupancy and scheduling, not instruction accuracy.
// The stall numbers assume moderate memory-level parallelism inside a warp's
// access stream (amortized DRAM latency per access, not the raw ~400 cycles).
#pragma once

namespace pagoda::gpu {

struct CostModel {
  /// Cycles per arithmetic warp instruction (FMA, add, compare).
  double alu = 1.0;

  /// Issue cycles per 32-wide coalesced global-memory access.
  double global_access = 2.0;
  /// Amortized stall cycles per coalesced global access.
  double global_stall = 24.0;

  /// Issue cycles per uncoalesced / irregular global access (replays).
  double global_access_irregular = 8.0;
  /// Amortized stall cycles per irregular access.
  double global_stall_irregular = 64.0;

  /// Cycles per shared-memory access (bank-conflict-free, no stall).
  double shared_access = 1.0;

  /// Special-function (exp/sin/rsqrt) op cost.
  double sfu = 4.0;

  /// Integer/logic op cost (3DES S-box shuffling etc.).
  double logic = 1.0;
};

inline constexpr CostModel kDefaultCostModel{};

}  // namespace pagoda::gpu
