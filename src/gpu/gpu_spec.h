// Architectural parameters of the modeled GPU.
//
// Defaults describe the NVIDIA Maxwell Titan X used in the paper (§2):
// 24 SMMs, 128 CUDA cores each, 64 warp slots/SMM, 32 threads/warp, 96 KB
// shared memory/SMM, 64 K 32-bit registers/SMM, <= 32 resident threadblocks
// and <= 2048 resident threads per SMM, 1 GHz clock.
#pragma once

#include <cstdint>

namespace pagoda::gpu {

struct GpuSpec {
  int num_smms = 24;
  int warps_per_smm = 64;
  int lanes_per_warp = 32;
  int max_blocks_per_smm = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_smm = 2048;
  std::int64_t shared_mem_per_smm = 96 * 1024;
  std::int64_t registers_per_smm = 64 * 1024;
  double clock_hz = 1.0e9;

  /// Warp-instructions issued per cycle per SMM (Maxwell: 4 warp schedulers).
  double issue_width = 4.0;

  /// Hardware work queues usable for concurrent kernels (HyperQ).
  int hyperq_connections = 32;

  /// The Titan X configuration the paper evaluates on.
  static GpuSpec titan_x() { return GpuSpec{}; }

  /// The Tesla K40 the paper cross-checked TaskTable visibility on
  /// (Kepler: 15 SMX, 48 KB default shared memory, 745 MHz boost clock).
  static GpuSpec tesla_k40() {
    GpuSpec s;
    s.num_smms = 15;
    s.shared_mem_per_smm = 48 * 1024;
    s.clock_hz = 0.745e9;
    s.max_blocks_per_smm = 16;
    return s;
  }

  int max_resident_warps() const { return num_smms * warps_per_smm; }
  int threads_per_smm_cap() const { return max_threads_per_smm; }
  double cycles_per_second() const { return clock_hz; }
};

}  // namespace pagoda::gpu
