// One Streaming Multiprocessor (SMM): issue pipeline + resource accounting.
//
// The issue pipeline is a processor-sharing resource: capacity = issue_width
// warp-instructions per cycle (4 on Maxwell — four warp schedulers), per-warp
// cap = 1 instruction per cycle. With >= 4 runnable warps the SMM is
// saturated; with fewer, warps run at full rate but capacity idles — that is
// precisely the underutilization narrow tasks cause.
//
// Resource accounting covers the four occupancy limiters of §2: warp slots
// (64), threadblock slots (32), shared memory (96 KB) and registers (64 K).
// The native block scheduler reserves whole threadblocks; Pagoda's
// MasterKernel instead reserves everything once (two 32-warp MTBs) and
// virtualizes from there.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/check.h"
#include "gpu/gpu_spec.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"

namespace pagoda::gpu {

/// Resource footprint of one threadblock for native scheduling.
struct BlockFootprint {
  int threads = 0;
  int warps = 0;
  std::int64_t shared_mem_bytes = 0;
  std::int64_t registers = 0;  // total for the block = regs/thread * threads

  static BlockFootprint of(int threads_per_block, int regs_per_thread,
                           std::int64_t shared_mem_bytes) {
    BlockFootprint f;
    f.threads = threads_per_block;
    f.warps = (threads_per_block + 31) / 32;
    f.shared_mem_bytes = shared_mem_bytes;
    f.registers =
        static_cast<std::int64_t>(regs_per_thread) * threads_per_block;
    return f;
  }
};

class Smm {
 public:
  Smm(sim::Simulation& sim, const GpuSpec& spec, int index)
      : sim_(&sim),
        spec_(&spec),
        index_(index),
        pipeline_(sim, spec.issue_width * spec.clock_hz, spec.clock_hz),
        free_warps_(spec.warps_per_smm),
        free_blocks_(spec.max_blocks_per_smm),
        free_threads_(spec.max_threads_per_smm),
        free_shared_mem_(spec.shared_mem_per_smm),
        free_registers_(spec.registers_per_smm) {}
  Smm(const Smm&) = delete;
  Smm& operator=(const Smm&) = delete;

  int index() const { return index_; }

  /// The issue pipeline; work units are cycles of warp instructions.
  /// (PsResource uses work-units/second, so submit cycles directly — the
  /// capacity was scaled by clock_hz in the constructor.)
  sim::PsResource& pipeline() { return pipeline_; }

  /// Awaitable: execute `cycles` of warp-issue work on this SMM.
  auto execute(double cycles) {
    struct Awaiter {
      Smm* smm;
      double cycles;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        smm->submit_issue(cycles, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, cycles};
  }

  /// Callback form of execute(); consults the wake gate (if any) before
  /// handing the work to the issue pipeline. With no gate installed this is
  /// exactly pipeline().submit — the default path is untouched.
  void submit_issue(double cycles, std::function<void()> on_done) {
    if (wake_gate_) {
      const sim::Duration d = wake_gate_(sim_->now());
      if (d > 0) {
        sim_->after(d, [this, cycles, done = std::move(on_done)]() mutable {
          pipeline_.submit(cycles, std::move(done));
        });
        return;
      }
    }
    pipeline_.submit(cycles, std::move(on_done));
  }

  // --- power plane hooks (passive unless the power plane installs them) ----

  /// DVFS scale applied to the issue pipeline; 1.0 when the power plane is
  /// off. Stall delays in the timing model divide by this.
  double clock_scale() const { return pipeline_.rate_scale(); }

  /// Rescales issue capacity + per-warp cap (P-state change). Only the power
  /// plane calls this; scale 1.0 restores construction rates bit-exactly.
  void set_clock_scale(double scale) { pipeline_.set_rate_scale(scale); }

  /// Gate consulted before every issue submission. Returns the extra latency
  /// (picoseconds) to charge before the work may enter the pipeline — the
  /// power plane uses it to charge C-state wake-up transitions. Null (the
  /// default) means no gate and an unchanged issue path.
  void set_issue_wake_gate(std::function<sim::Duration(sim::Time)> gate) {
    wake_gate_ = std::move(gate);
  }

  // --- native threadblock residency --------------------------------------
  bool can_fit(const BlockFootprint& f) const {
    return free_warps_ >= f.warps && free_blocks_ >= 1 &&
           free_threads_ >= f.threads &&
           free_shared_mem_ >= f.shared_mem_bytes &&
           free_registers_ >= f.registers;
  }

  void reserve(const BlockFootprint& f) {
    PAGODA_CHECK_MSG(can_fit(f), "reserve without can_fit");
    free_warps_ -= f.warps;
    free_blocks_ -= 1;
    free_threads_ -= f.threads;
    free_shared_mem_ -= f.shared_mem_bytes;
    free_registers_ -= f.registers;
    touch_occupancy(sim_->now());
  }

  void release(const BlockFootprint& f) {
    free_warps_ += f.warps;
    free_blocks_ += 1;
    free_threads_ += f.threads;
    free_shared_mem_ += f.shared_mem_bytes;
    free_registers_ += f.registers;
    PAGODA_CHECK(free_warps_ <= spec_->warps_per_smm);
    PAGODA_CHECK(free_blocks_ <= spec_->max_blocks_per_smm);
    PAGODA_CHECK(free_threads_ <= spec_->max_threads_per_smm);
    PAGODA_CHECK(free_shared_mem_ <= spec_->shared_mem_per_smm);
    PAGODA_CHECK(free_registers_ <= spec_->registers_per_smm);
    touch_occupancy(sim_->now());
  }

  int free_warps() const { return free_warps_; }
  int resident_warps() const { return spec_->warps_per_smm - free_warps_; }
  std::int64_t free_shared_mem() const { return free_shared_mem_; }

  /// ∫ resident-warp dt, for achieved-occupancy reporting.
  double resident_warp_seconds() const { return resident_integral_current(); }

  /// Residency integral extrapolated to `at` without mutating any state.
  /// `at` must not precede the last reserve/release; reads clamped to it.
  double resident_warp_seconds_at(sim::Time at) const {
    const sim::Time t = at > last_touch_ ? at : last_touch_;
    return resident_integral_ + static_cast<double>(resident_warps_prev_) *
                                    sim::to_seconds(t - last_touch_);
  }

  /// Integrates the occupancy over the elapsed interval (at the previous
  /// residency) and snapshots the current residency. Called internally on
  /// every reserve/release and by readers before reporting.
  void touch_occupancy(sim::Time now) {
    resident_integral_ += static_cast<double>(resident_warps_prev_) *
                          sim::to_seconds(now - last_touch_);
    last_touch_ = now;
    resident_warps_prev_ = resident_warps();
  }

 private:
  double resident_integral_current() const { return resident_integral_; }

  sim::Simulation* sim_;
  const GpuSpec* spec_;
  int index_;
  sim::PsResource pipeline_;

  int free_warps_;
  int free_blocks_;
  int free_threads_;
  std::int64_t free_shared_mem_;
  std::int64_t free_registers_;

  double resident_integral_ = 0.0;
  sim::Time last_touch_ = 0;
  int resident_warps_prev_ = 0;

  std::function<sim::Duration(sim::Time)> wake_gate_;  // null = no gate
};

}  // namespace pagoda::gpu
