// Warp-granularity kernel coroutines: the simulator's equivalent of CUDA
// __device__ task functions.
//
// One coroutine instance executes one *warp* of a kernel in SIMT lockstep,
// iterating its (up to 32) lanes internally. The coroutine suspends at
// syncBlock() barriers; between suspensions it accumulates a cycle charge
// that the driving runtime (Pagoda executor warp or the native threadblock
// scheduler) turns into time on the SMM issue pipeline.
//
// Kernels perform real computation when ctx.mode == ExecMode::Compute (used
// by tests and examples, verified against CPU references) and charge
// identical cycle counts analytically when mode == ExecMode::Model (used by
// the 32K-task benchmark sweeps). A dedicated test asserts the two modes
// produce identical timing.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <span>
#include <utility>

#include "common/check.h"
#include "gpu/cost_model.h"
#include "sim/frame_pool.h"

namespace pagoda::gpu {

enum class ExecMode : std::uint8_t {
  Compute,  // real math + cycle charges
  Model,    // cycle charges only; loop bodies elided
};

class WarpCtx;

/// A kernel body: invoked once per warp; must consume its WarpCtx only while
/// running (the runtime owns it).
class [[nodiscard]] KernelCoro {
 public:
  struct promise_type : sim::PooledFrame {
    KernelCoro get_return_object() {
      return KernelCoro(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  KernelCoro(KernelCoro&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  KernelCoro& operator=(KernelCoro&& o) noexcept {
    if (this != &o) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  KernelCoro(const KernelCoro&) = delete;
  KernelCoro& operator=(const KernelCoro&) = delete;
  ~KernelCoro() {
    if (handle_) handle_.destroy();
  }

  bool done() const { return !handle_ || handle_.done(); }

  /// Resumes the warp until the next barrier or completion.
  void resume() {
    PAGODA_CHECK_MSG(handle_ && !handle_.done(), "resuming a finished warp");
    handle_.resume();
  }

 private:
  explicit KernelCoro(Handle h) : handle_(h) {}
  Handle handle_;
};

using KernelFn = KernelCoro (*)(WarpCtx&);

/// Per-warp execution context handed to kernel bodies. Provides the Pagoda
/// GPU-side API of Table 1 — getTid (via tid()), syncBlock(), getSMPtr (via
/// shared_mem()) — plus lane iteration and cycle charging.
class WarpCtx {
 public:
  // --- identity / geometry ---------------------------------------------
  int warp_in_task = 0;       // warp index across the whole task
  int block_index = 0;        // threadblock index within the task
  int warp_in_block = 0;      // warp index within the threadblock
  int threads_per_block = 0;
  int num_blocks = 0;
  ExecMode mode = ExecMode::Compute;

  /// Kernel arguments (points into the task's parameter blob).
  const void* args = nullptr;

  /// Shared memory for this warp's threadblock (empty if none requested).
  std::span<std::byte> shared_mem;

  template <typename T>
  const T& args_as() const {
    return *static_cast<const T*>(args);
  }

  template <typename T>
  std::span<T> shared_as() const {
    return {reinterpret_cast<T*>(shared_mem.data()),
            shared_mem.size() / sizeof(T)};
  }

  // --- Pagoda GPU-side API ----------------------------------------------
  /// Task-global thread id of a lane, as returned by getTid() in the paper:
  /// derived from the warp id the scheduler stored in the WarpTable.
  int tid(int lane) const { return warp_in_task * 32 + lane; }

  /// Number of active lanes in this warp (tail warps of a block may be
  /// partially populated).
  int active_lanes() const {
    const int remaining = threads_per_block - warp_in_block * 32;
    return remaining >= 32 ? 32 : (remaining > 0 ? remaining : 0);
  }

  /// syncBlock(): threadblock-wide barrier. `co_await ctx.sync_block();`
  /// suspends the warp; the runtime resumes it when all warps of the block
  /// have arrived.
  auto sync_block() {
    struct Awaiter {
      WarpCtx* ctx;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<>) noexcept {
        ctx->at_barrier_ = true;
      }
      void await_resume() const noexcept { ctx->at_barrier_ = false; }
    };
    return Awaiter{this};
  }

  // --- cost accounting ---------------------------------------------------
  /// Adds `cycles` of warp-issue work to the current segment. Issue work
  /// contends for the SMM pipeline (4 warp-instructions/cycle shared by all
  /// runnable warps).
  void charge(double cycles) { pending_cycles_ += cycles; }

  /// Adds `cycles` of memory-stall time to the current segment. Stall time
  /// elapses concurrently across warps — it is what high occupancy hides and
  /// what makes a lone narrow kernel latency-bound (§2 of the paper).
  void charge_stall(double cycles) { pending_stall_cycles_ += cycles; }

  /// Takes and clears the accumulated issue charge (runtime-side).
  double take_charge() { return std::exchange(pending_cycles_, 0.0); }

  /// Takes and clears the accumulated stall charge (runtime-side).
  double take_stall() { return std::exchange(pending_stall_cycles_, 0.0); }

  /// True when the last suspension was a syncBlock (vs completion).
  bool at_barrier() const { return at_barrier_; }

  /// True when the kernel should execute real loop bodies.
  bool compute() const { return mode == ExecMode::Compute; }

  const CostModel& costs() const { return *costs_; }
  void set_costs(const CostModel* costs) { costs_ = costs; }

 private:
  double pending_cycles_ = 0.0;
  double pending_stall_cycles_ = 0.0;
  bool at_barrier_ = false;
  const CostModel* costs_ = &kDefaultCostModel;
};

/// Result of driving a warp for one segment.
struct SegmentResult {
  double cycles = 0.0;        // issue work (contends for the pipeline)
  double stall_cycles = 0.0;  // memory latency (overlaps across warps)
  bool at_barrier = false;    // false => warp finished the kernel
};

/// Resumes `warp` until its next barrier or completion and collects the
/// cycle charges for the segment.
inline SegmentResult run_segment(KernelCoro& warp, WarpCtx& ctx) {
  warp.resume();
  return SegmentResult{ctx.take_charge(), ctx.take_stall(), !warp.done()};
}

}  // namespace pagoda::gpu
