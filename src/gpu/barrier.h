// Virtual-time threadblock barrier.
//
// Used by the native threadblock scheduler for __syncthreads semantics, and
// by Pagoda's named-barrier pool (§5.2) where a barrier id from a fixed pool
// of 16 per MTB is leased to each synchronizing threadblock.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "sim/simulation.h"

namespace pagoda::gpu {

/// A generation-counting barrier for a fixed number of participants.
/// Participants are simulation processes (executor warps / warp runners).
class BlockBarrier {
 public:
  explicit BlockBarrier(sim::Simulation& sim, int participants = 0)
      : sim_(&sim), participants_(participants) {}
  BlockBarrier(const BlockBarrier&) = delete;
  BlockBarrier& operator=(const BlockBarrier&) = delete;
  ~BlockBarrier() {
    for (std::coroutine_handle<> h : waiters_) h.destroy();
  }

  /// (Re)arms the barrier for a new threadblock. Requires no parked waiters.
  void reset(int participants) {
    PAGODA_CHECK_MSG(waiters_.empty(), "resetting barrier with parked warps");
    participants_ = participants;
    arrived_ = 0;
  }

  int participants() const { return participants_; }

  /// Awaitable: the calling warp arrives; the last arrival releases all.
  /// `co_await barrier.arrive_and_wait();`
  auto arrive_and_wait() {
    struct Awaiter {
      BlockBarrier* b;
      bool await_ready() const noexcept {
        PAGODA_CHECK(b->participants_ > 0);
        if (b->arrived_ + 1 == b->participants_) {
          // Last arrival: release everyone, don't suspend.
          b->arrived_ = 0;
          for (std::coroutine_handle<> h : b->waiters_) {
            b->sim_->defer_resume(h);
          }
          b->waiters_.clear();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++b->arrived_;
        b->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  sim::Simulation* sim_;
  int participants_;
  int arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace pagoda::gpu
