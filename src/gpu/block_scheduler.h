// Native hardware threadblock dispatcher — the GPU's built-in scheduler used
// by the CUDA-HyperQ and static-fusion baselines (Pagoda bypasses it by
// keeping one persistent MasterKernel resident).
//
// Fidelity points (paper §6.4):
//  * Threadblocks of a grid are placed in order on any SMM with room for the
//    block's full footprint (warps, threads, block slot, shared mem, regs).
//  * A threadblock's resources are released only when ALL of its warps have
//    finished — "CUDA prohibits a new threadblock from launching until all
//    warps of the previous threadblock finish" — which is what Pagoda's
//    warp-level scheduling beats at large thread counts (Fig 8).
//  * Grids from concurrently launched kernels backfill leftover resources in
//    launch order (concurrent kernel execution).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "gpu/barrier.h"
#include "gpu/gpu_spec.h"
#include "gpu/launch.h"
#include "gpu/smm.h"
#include "sim/process.h"
#include "sim/simulation.h"

namespace pagoda::gpu {

class BlockDispatcher {
 public:
  BlockDispatcher(sim::Simulation& sim, const GpuSpec& spec)
      : sim_(&sim), spec_(spec) {}
  BlockDispatcher(const BlockDispatcher&) = delete;
  BlockDispatcher& operator=(const BlockDispatcher&) = delete;

  void attach(const std::vector<std::unique_ptr<Smm>>& smms) {
    smms_.clear();
    for (const auto& s : smms) smms_.push_back(s.get());
  }

  /// Launches a grid. The returned execution's `done` trigger fires when the
  /// last threadblock retires.
  KernelExecutionPtr launch(KernelLaunchParams p);

  /// Number of grids with unplaced threadblocks.
  std::size_t pending_grids() const { return active_.size(); }

  // --- observability ------------------------------------------------------
  /// A retired grid, as reported to the observer hook at completion.
  struct GridRecord {
    std::int64_t grid_id = 0;
    sim::Time launched = 0;
    sim::Time completed = 0;
    int num_blocks = 0;
    int threads_per_block = 0;
  };
  /// Invoked when a grid's last threadblock retires (obs::Collector emits
  /// kernel spans from this); nullptr disables it.
  void set_grid_observer(std::function<void(const GridRecord&)> obs) {
    grid_observer_ = std::move(obs);
  }

  std::int64_t grids_launched() const { return grids_launched_; }
  std::int64_t blocks_started() const { return blocks_started_; }
  std::int64_t blocks_finished() const { return blocks_finished_; }
  /// Threadblocks currently resident across all SMMs (TB-slot occupancy).
  int resident_blocks() const { return resident_blocks_; }
  /// Threadblocks of pending grids not yet placed (launch queue depth).
  std::int64_t unplaced_blocks() const;

 private:
  struct BlockRun {
    KernelExecutionPtr exec;
    Smm* smm = nullptr;
    int block_index = 0;
    BlockFootprint footprint;
    BlockBarrier barrier;
    std::vector<std::byte> shared_mem;
    int warps_remaining = 0;
    BlockRun(sim::Simulation& sim, int participants)
        : barrier(sim, participants) {}
  };

  void try_place();
  Smm* pick_smm(const BlockFootprint& f);
  void start_block(const KernelExecutionPtr& e, Smm& smm, int block_index);
  sim::Process warp_runner(std::shared_ptr<BlockRun> run, int warp_in_block);
  void finish_block(const std::shared_ptr<BlockRun>& run);

  sim::Simulation* sim_;
  GpuSpec spec_;
  std::vector<Smm*> smms_;
  std::deque<KernelExecutionPtr> active_;  // grids with unplaced blocks
  bool placing_ = false;                   // re-entrancy guard

  std::int64_t grids_launched_ = 0;
  std::int64_t blocks_started_ = 0;
  std::int64_t blocks_finished_ = 0;
  int resident_blocks_ = 0;
  std::function<void(const GridRecord&)> grid_observer_;
};

}  // namespace pagoda::gpu
