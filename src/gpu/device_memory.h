// Device (global) memory model.
//
// Device memory is backed by host allocations so kernels can compute real
// results; the simulator separately charges transfer time for PCIe copies.
// A DeviceArena hands out DeviceBuffer handles, tracks outstanding bytes, and
// enforces the card's capacity (12 GB on the Titan X).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"

namespace pagoda::gpu {

/// An owning device allocation, movable, freed on destruction (RAII —
/// cudaMalloc/cudaFree pairs are implicit).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  std::size_t size() const { return bytes_ ? bytes_->size() : 0; }
  bool valid() const { return bytes_ != nullptr; }

  std::byte* data() { return bytes_->data(); }
  const std::byte* data() const { return bytes_->data(); }

  template <typename T>
  std::span<T> as() {
    PAGODA_CHECK(valid());
    return {reinterpret_cast<T*>(bytes_->data()), size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    PAGODA_CHECK(valid());
    return {reinterpret_cast<const T*>(bytes_->data()), size() / sizeof(T)};
  }

 private:
  friend class DeviceArena;
  struct Deleter {
    std::int64_t* outstanding;
    void operator()(std::vector<std::byte>* v) const {
      *outstanding -= static_cast<std::int64_t>(v->size());
      delete v;
    }
  };
  std::unique_ptr<std::vector<std::byte>, Deleter> bytes_;
};

class DeviceArena {
 public:
  explicit DeviceArena(std::int64_t capacity_bytes)
      : capacity_(capacity_bytes) {}
  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// cudaMalloc equivalent: zero-initialized device allocation.
  DeviceBuffer allocate(std::size_t bytes) {
    PAGODA_CHECK_MSG(outstanding_ + static_cast<std::int64_t>(bytes) <=
                         capacity_,
                     "device out of memory");
    outstanding_ += static_cast<std::int64_t>(bytes);
    DeviceBuffer buf;
    buf.bytes_ = {new std::vector<std::byte>(bytes),
                  DeviceBuffer::Deleter{&outstanding_}};
    return buf;
  }

  std::int64_t outstanding_bytes() const { return outstanding_; }
  std::int64_t capacity() const { return capacity_; }

 private:
  std::int64_t capacity_;
  std::int64_t outstanding_ = 0;
};

}  // namespace pagoda::gpu
