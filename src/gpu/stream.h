// CUDA-like streams: per-stream FIFO ordering of memcpys, kernels and
// events; independent streams proceed concurrently (HyperQ connections).
//
// Issue semantics match the hardware: consecutive same-direction memcpys
// are handed straight to the DMA engine (whose FIFO preserves intra-stream
// order), so they pipeline at engine speed; a kernel, event, or a memcpy in
// the opposite direction waits until every previously issued op of the
// stream has completed (cross-engine stream ordering).
//
// The HyperQ baseline follows the paper's setup: 32 streams with
// CUDA_DEVICE_MAX_CONNECTIONS=32, tasks issued round-robin — at most 32
// kernels concurrently resident, exactly the limit §2 analyzes.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>

#include "common/check.h"
#include "gpu/device.h"
#include "gpu/launch.h"
#include "pcie/pcie_bus.h"
#include "sim/sync.h"

namespace pagoda::gpu {

class Stream {
 public:
  explicit Stream(Device& dev) : dev_(&dev) {}
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues an async memcpy (cudaMemcpyAsync). dst/src may be null when
  /// the caller only wants the timing (Model mode).
  void memcpy_async(pcie::Direction dir, void* dst, const void* src,
                    std::size_t bytes) {
    memcpy_async(dir, dst, src, bytes, nullptr);
  }

  /// As above, with a completion callback fired after the bytes land.
  void memcpy_async(pcie::Direction dir, void* dst, const void* src,
                    std::size_t bytes, std::function<void()> on_done) {
    Op op;
    op.is_memcpy = true;
    op.dir = dir;
    op.start = [this, dir, dst, src, bytes,
                cb = std::move(on_done)](std::function<void()> done) {
      dev_->pcie().copy(dir, dst, src, bytes,
                        [cb, done = std::move(done)] {
                          if (cb) cb();
                          done();
                        });
    };
    ops_.push_back(std::move(op));
    pump();
  }

  /// Checked variant: completion reports transfer integrity via the bus's
  /// fault hook (see PcieBus::copy_checked). Without a hook armed this is
  /// event-for-event identical to memcpy_async.
  void memcpy_async_checked(pcie::Direction dir, void* dst, const void* src,
                            std::size_t bytes,
                            std::function<void(bool ok)> on_done) {
    Op op;
    op.is_memcpy = true;
    op.dir = dir;
    op.start = [this, dir, dst, src, bytes,
                cb = std::move(on_done)](std::function<void()> done) {
      dev_->pcie().copy_checked(dir, dst, src, bytes,
                                [cb, done = std::move(done)](bool ok) {
                                  if (cb) cb(ok);
                                  done();
                                });
    };
    ops_.push_back(std::move(op));
    pump();
  }

  /// Enqueues a kernel launch; the stream advances when the grid retires.
  /// Returns a trigger that fires at grid completion (cudaEvent-like).
  std::shared_ptr<sim::Trigger> kernel_async(KernelLaunchParams p) {
    auto trig = std::make_shared<sim::Trigger>(dev_->sim());
    auto params = std::make_shared<KernelLaunchParams>(std::move(p));
    Op op;
    op.start = [this, trig, params](std::function<void()> done) {
      KernelExecutionPtr exec = dev_->dispatcher().launch(std::move(*params));
      exec->done.call_on_fire([trig, done = std::move(done), exec] {
        trig->fire();
        done();
      });
    };
    ops_.push_back(std::move(op));
    pump();
    return trig;
  }

  /// Enqueues a host-visible completion marker (cudaEventRecord):
  /// fires once every previously enqueued op has completed.
  std::shared_ptr<sim::Trigger> record_event() {
    auto trig = std::make_shared<sim::Trigger>(dev_->sim());
    Op op;
    op.start = [trig](std::function<void()> done) {
      trig->fire();
      done();
    };
    ops_.push_back(std::move(op));
    pump();
    return trig;
  }

  /// Awaitable: completes when all work enqueued so far has finished
  /// (cudaStreamSynchronize).
  auto synchronize() {
    struct Awaiter {
      Stream* stream;
      std::shared_ptr<sim::Trigger> trig;
      bool await_ready() {
        if (stream->idle()) return true;
        trig = stream->record_event();
        return trig->fired();
      }
      void await_suspend(std::coroutine_handle<> h) {
        trig->call_on_fire([h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, nullptr};
  }

  bool idle() const {
    return !exclusive_busy_ && inflight_copies_ == 0 && ops_.empty();
  }

 private:
  struct Op {
    bool is_memcpy = false;
    pcie::Direction dir = pcie::Direction::HostToDevice;
    /// Starts the operation; must invoke `done` exactly once at completion.
    std::function<void(std::function<void()>)> start;
  };

  void pump() {
    while (!ops_.empty()) {
      Op& front = ops_.front();
      if (front.is_memcpy &&
          !exclusive_busy_ &&
          (inflight_copies_ == 0 || front.dir == inflight_dir_)) {
        // Same-direction copy run: hand to the DMA engine immediately; its
        // FIFO preserves the stream's order, so copies pipeline.
        inflight_dir_ = front.dir;
        inflight_copies_ += 1;
        Op op = std::move(front);
        ops_.pop_front();
        op.start([this] {
          inflight_copies_ -= 1;
          pump();
        });
        continue;
      }
      // Kernel, event, or direction change: wait for every previously
      // issued op to complete, then run exclusively.
      if (exclusive_busy_ || inflight_copies_ > 0) return;
      Op op = std::move(front);
      ops_.pop_front();
      exclusive_busy_ = true;
      op.start([this] {
        exclusive_busy_ = false;
        pump();
      });
      return;
    }
  }

  Device* dev_;
  std::deque<Op> ops_;
  int inflight_copies_ = 0;
  pcie::Direction inflight_dir_ = pcie::Direction::HostToDevice;
  bool exclusive_busy_ = false;
};

}  // namespace pagoda::gpu
