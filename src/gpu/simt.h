// SIMT kernel-authoring helpers.
//
// Task kernels follow a common shape: a grid-stride loop over N elements,
// executed for real in Compute mode and charged analytically in both modes.
// These helpers capture that shape so kernels stay small and their charges
// stay consistent:
//
//   gpu::KernelCoro my_kernel(gpu::WarpCtx& ctx) {
//     const auto& args = ctx.args_as<MyArgs>();
//     simt::charge_elements(ctx, args.n, /*issue=*/12.0, /*stall=*/24.0);
//     simt::for_each_element(ctx, args.n, [&](int i) {
//       args.out[i] = f(args.in[i]);
//     });
//     co_return;
//   }
//
// charge_elements charges per *warp iteration* (one warp instruction covers
// 32 lanes); for_each_element only runs its body in Compute mode.
#pragma once

#include <utility>

#include "gpu/kernel.h"

namespace pagoda::gpu::simt {

/// Total threads across the task's grid.
inline int total_threads(const WarpCtx& ctx) {
  return ctx.threads_per_block * ctx.num_blocks;
}

/// Number of grid-stride iterations this warp performs over [0, n): the
/// iteration count of its lowest lane (the slowest lane bound, which is what
/// the warp's lockstep execution pays for).
inline int warp_iterations(const WarpCtx& ctx, int n) {
  const int stride = total_threads(ctx);
  const int first = ctx.tid(0);
  if (first >= n) return 0;
  return (n - first + stride - 1) / stride;
}

/// Charges `issue_per_iter` pipeline cycles and `stall_per_iter` latency
/// cycles for every grid-stride warp iteration over [0, n).
inline void charge_elements(WarpCtx& ctx, int n, double issue_per_iter,
                            double stall_per_iter) {
  const int iters = warp_iterations(ctx, n);
  ctx.charge(iters * issue_per_iter);
  ctx.charge_stall(iters * stall_per_iter);
}

/// Runs fn(i) for every element i in [0, n) owned by this warp's lanes
/// under the grid-stride decomposition — Compute mode only (Model mode
/// elides the bodies; charges must come from charge_elements).
template <typename Fn>
inline void for_each_element(WarpCtx& ctx, int n, Fn&& fn) {
  if (!ctx.compute()) return;
  const int stride = total_threads(ctx);
  for (int lane = 0; lane < 32; ++lane) {
    for (int i = ctx.tid(lane); i < n; i += stride) {
      fn(i);
    }
  }
}

/// As for_each_element, but iterates regardless of mode (for kernels whose
/// bookkeeping must run even in Model mode).
template <typename Fn>
inline void for_each_element_always(WarpCtx& ctx, int n, Fn&& fn) {
  const int stride = total_threads(ctx);
  for (int lane = 0; lane < 32; ++lane) {
    for (int i = ctx.tid(lane); i < n; i += stride) {
      fn(i);
    }
  }
}

}  // namespace pagoda::gpu::simt
