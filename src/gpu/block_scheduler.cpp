#include "gpu/block_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace pagoda::gpu {

KernelExecutionPtr BlockDispatcher::launch(KernelLaunchParams p) {
  PAGODA_CHECK_MSG(p.fn != nullptr, "kernel launch without a function");
  PAGODA_CHECK_MSG(p.threads_per_block >= 1 &&
                       p.threads_per_block <= spec_.max_threads_per_block,
                   "invalid threadblock size");
  auto exec = std::make_shared<KernelExecution>(*sim_, std::move(p));
  exec->grid_id = grids_launched_++;
  exec->launched = sim_->now();
  if (exec->params.num_blocks == 0) {
    exec->done.fire();
    return exec;
  }
  const BlockFootprint f = exec->params.footprint();
  PAGODA_CHECK_MSG(f.warps <= spec_.warps_per_smm &&
                       f.shared_mem_bytes <= spec_.shared_mem_per_smm &&
                       f.registers <= spec_.registers_per_smm,
                   "threadblock footprint exceeds SMM resources");
  active_.push_back(exec);
  try_place();
  return exec;
}

Smm* BlockDispatcher::pick_smm(const BlockFootprint& f) {
  // Balance by residency: pick the fitting SMM with the most free warps.
  Smm* best = nullptr;
  for (Smm* s : smms_) {
    if (!s->can_fit(f)) continue;
    if (best == nullptr || s->free_warps() > best->free_warps()) best = s;
  }
  return best;
}

void BlockDispatcher::try_place() {
  // finish_block() calls back into try_place(); flatten the recursion.
  if (placing_) return;
  placing_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    // Grids dispatch in launch order; later grids backfill what earlier
    // grids cannot use (concurrent kernel execution).
    for (auto it = active_.begin(); it != active_.end();) {
      KernelExecutionPtr& e = *it;
      const BlockFootprint f = e->params.footprint();
      while (!e->all_placed()) {
        Smm* smm = pick_smm(f);
        if (smm == nullptr) break;
        start_block(e, *smm, e->next_block++);
        progress = true;
      }
      if (e->all_placed()) {
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
  }
  placing_ = false;
}

void BlockDispatcher::start_block(const KernelExecutionPtr& e, Smm& smm,
                                  int block_index) {
  const KernelLaunchParams& p = e->params;
  const BlockFootprint f = p.footprint();
  smm.reserve(f);
  blocks_started_ += 1;
  resident_blocks_ += 1;

  auto run = std::make_shared<BlockRun>(*sim_, p.warps_per_block());
  run->exec = e;
  run->smm = &smm;
  run->block_index = block_index;
  run->footprint = f;
  run->warps_remaining = p.warps_per_block();
  if (p.shared_mem_bytes > 0) {
    run->shared_mem.resize(static_cast<std::size_t>(p.shared_mem_bytes));
  }
  for (int w = 0; w < p.warps_per_block(); ++w) {
    sim_->spawn(warp_runner(run, w));
  }
}

sim::Process BlockDispatcher::warp_runner(std::shared_ptr<BlockRun> run,
                                          int warp_in_block) {
  const KernelLaunchParams& p = run->exec->params;
  WarpCtx ctx;
  ctx.warp_in_task = run->block_index * p.warps_per_block() + warp_in_block;
  ctx.block_index = run->block_index;
  ctx.warp_in_block = warp_in_block;
  ctx.threads_per_block = p.threads_per_block;
  ctx.num_blocks = p.num_blocks;
  ctx.mode = p.mode;
  ctx.args = p.args.data();
  ctx.shared_mem = std::span<std::byte>(run->shared_mem);
  ctx.set_costs(p.costs);

  KernelCoro coro = p.fn(ctx);
  while (true) {
    const SegmentResult seg = run_segment(coro, ctx);
    if (seg.stall_cycles > 0.0) {
      co_await sim_->delay(static_cast<sim::Duration>(
          seg.stall_cycles * 1e12 / spec_.clock_hz));
    }
    if (seg.cycles > 0.0) co_await run->smm->execute(seg.cycles);
    if (!seg.at_barrier) break;
    co_await run->barrier.arrive_and_wait();
  }
  run->warps_remaining -= 1;
  if (run->warps_remaining == 0) finish_block(run);
}

void BlockDispatcher::finish_block(const std::shared_ptr<BlockRun>& run) {
  run->smm->release(run->footprint);
  blocks_finished_ += 1;
  resident_blocks_ -= 1;
  KernelExecution& e = *run->exec;
  e.blocks_finished += 1;
  if (e.finished()) {
    if (grid_observer_) {
      grid_observer_(GridRecord{e.grid_id, e.launched, sim_->now(),
                                e.params.num_blocks,
                                e.params.threads_per_block});
    }
    e.done.fire();
  }
  try_place();
}

std::int64_t BlockDispatcher::unplaced_blocks() const {
  std::int64_t n = 0;
  for (const KernelExecutionPtr& e : active_) {
    n += e->params.num_blocks - e->next_block;
  }
  return n;
}

}  // namespace pagoda::gpu
