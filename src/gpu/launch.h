// Kernel launch descriptors and in-flight grid state for the native path.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "gpu/cost_model.h"
#include "gpu/kernel.h"
#include "gpu/smm.h"
#include "sim/sync.h"

namespace pagoda::gpu {

/// Parameters of one native kernel launch (<<<grid, block, shmem>>> plus the
/// per-thread register count the compiler would have assigned).
struct KernelLaunchParams {
  KernelFn fn = nullptr;
  std::vector<std::byte> args;  // copied at launch, CUDA-style
  int threads_per_block = 0;
  int num_blocks = 1;
  int regs_per_thread = 32;
  std::int64_t shared_mem_bytes = 0;
  ExecMode mode = ExecMode::Compute;
  const CostModel* costs = &kDefaultCostModel;

  BlockFootprint footprint() const {
    return BlockFootprint::of(threads_per_block, regs_per_thread,
                              shared_mem_bytes);
  }
  int warps_per_block() const { return (threads_per_block + 31) / 32; }

  template <typename T>
  static std::vector<std::byte> pack_args(const T& value) {
    std::vector<std::byte> blob(sizeof(T));
    std::memcpy(blob.data(), &value, sizeof(T));
    return blob;
  }
};

/// One in-flight grid. Lives from launch until all threadblocks retire.
class KernelExecution {
 public:
  KernelExecution(sim::Simulation& sim, KernelLaunchParams p)
      : params(std::move(p)), done(sim) {}

  KernelLaunchParams params;
  sim::Trigger done;        // fires when the last threadblock retires
  int next_block = 0;       // next threadblock index to place
  int blocks_finished = 0;
  std::int64_t grid_id = 0;   // launch-order id (observability)
  sim::Time launched = 0;     // when the dispatcher accepted the grid

  bool all_placed() const { return next_block >= params.num_blocks; }
  bool finished() const { return blocks_finished >= params.num_blocks; }
};

using KernelExecutionPtr = std::shared_ptr<KernelExecution>;

}  // namespace pagoda::gpu
