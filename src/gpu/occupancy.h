// Theoretical occupancy calculator (§2 of the paper).
//
// Occupancy = resident warps / maximum resident warps (64 per SMM). The
// resident-threadblock count per SMM is limited by four factors: block
// slots, warp slots / threads, shared memory, registers. This reproduces the
// paper's §2 arithmetic (one 256-thread task => 0.52%; 32 HyperQ tasks =>
// 16.67%) and the Table 5 occupancy column.
#pragma once

#include <algorithm>
#include <cstdint>

#include "gpu/gpu_spec.h"
#include "gpu/smm.h"

namespace pagoda::gpu {

struct OccupancyResult {
  int blocks_per_smm = 0;   // max resident threadblocks per SMM
  int warps_per_smm = 0;    // resident warps per SMM at that block count
  double occupancy = 0.0;   // resident warps / warp slots, per SMM
};

/// Maximum residency for a kernel whose blocks have footprint `f`.
inline OccupancyResult max_residency(const GpuSpec& spec,
                                     const BlockFootprint& f) {
  OccupancyResult r;
  if (f.warps == 0) return r;
  int by_blocks = spec.max_blocks_per_smm;
  int by_warps = spec.warps_per_smm / f.warps;
  int by_threads = spec.max_threads_per_smm / std::max(1, f.threads);
  int by_shmem = f.shared_mem_bytes > 0
                     ? static_cast<int>(spec.shared_mem_per_smm /
                                        f.shared_mem_bytes)
                     : spec.max_blocks_per_smm;
  int by_regs = f.registers > 0 ? static_cast<int>(spec.registers_per_smm /
                                                   f.registers)
                                : spec.max_blocks_per_smm;
  r.blocks_per_smm = std::max(
      0, std::min({by_blocks, by_warps, by_threads, by_shmem, by_regs}));
  r.warps_per_smm = r.blocks_per_smm * f.warps;
  r.occupancy = static_cast<double>(r.warps_per_smm) /
                static_cast<double>(spec.warps_per_smm);
  return r;
}

/// Maximum residency under virtual-resource oversubscription (DESIGN.md
/// §16): the declared footprint is charged against `oversub x` the physical
/// shmem/register capacity, while the physical capacity only has to hold the
/// *used* footprint. Block/warp/thread slots stay physical — they cannot be
/// virtualized. With oversub == 1 and used == declared this reduces exactly
/// to max_residency(spec, declared).
inline OccupancyResult max_residency_virtual(const GpuSpec& spec,
                                             const BlockFootprint& declared,
                                             const BlockFootprint& used,
                                             double oversub) {
  OccupancyResult r;
  if (declared.warps == 0) return r;
  const auto scaled = [oversub](std::int64_t capacity) {
    return static_cast<std::int64_t>(static_cast<double>(capacity) * oversub);
  };
  const int by_blocks = spec.max_blocks_per_smm;
  const int by_warps = spec.warps_per_smm / declared.warps;
  const int by_threads =
      spec.max_threads_per_smm / std::max(1, declared.threads);
  // Virtual limits (declared vs oversubscribed capacity) and physical
  // limits (used vs real capacity): the binding constraint is the min.
  const int by_shmem_virt =
      declared.shared_mem_bytes > 0
          ? static_cast<int>(scaled(spec.shared_mem_per_smm) /
                             declared.shared_mem_bytes)
          : spec.max_blocks_per_smm;
  const int by_shmem_phys =
      used.shared_mem_bytes > 0
          ? static_cast<int>(spec.shared_mem_per_smm / used.shared_mem_bytes)
          : spec.max_blocks_per_smm;
  const int by_regs_virt =
      declared.registers > 0
          ? static_cast<int>(scaled(spec.registers_per_smm) /
                             declared.registers)
          : spec.max_blocks_per_smm;
  const int by_regs_phys =
      used.registers > 0
          ? static_cast<int>(spec.registers_per_smm / used.registers)
          : spec.max_blocks_per_smm;
  r.blocks_per_smm = std::max(
      0, std::min({by_blocks, by_warps, by_threads, by_shmem_virt,
                   by_shmem_phys, by_regs_virt, by_regs_phys}));
  r.warps_per_smm = r.blocks_per_smm * declared.warps;
  r.occupancy = static_cast<double>(r.warps_per_smm) /
                static_cast<double>(spec.warps_per_smm);
  return r;
}

/// Device-wide occupancy of `concurrent_blocks` resident blocks of footprint
/// `f` spread over all SMMs (the §2 narrow-task arithmetic).
inline double device_occupancy(const GpuSpec& spec, const BlockFootprint& f,
                               std::int64_t concurrent_blocks) {
  const std::int64_t resident_warps = concurrent_blocks * f.warps;
  return static_cast<double>(resident_warps) /
         static_cast<double>(spec.max_resident_warps());
}

}  // namespace pagoda::gpu
