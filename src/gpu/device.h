// The modeled GPU: SMMs, device memory, PCIe endpoints and the native
// threadblock dispatcher, all driven by one Simulation.
#pragma once

#include <memory>
#include <vector>

#include "gpu/block_scheduler.h"
#include "gpu/device_memory.h"
#include "gpu/gpu_spec.h"
#include "gpu/smm.h"
#include "pcie/pcie_bus.h"
#include "sim/simulation.h"

namespace pagoda::gpu {

class Device {
 public:
  Device(sim::Simulation& sim, GpuSpec spec,
         pcie::PcieConfig pcie_cfg = pcie::PcieConfig{},
         std::int64_t memory_bytes = 12LL * 1024 * 1024 * 1024)
      : sim_(&sim),
        spec_(spec),
        arena_(memory_bytes),
        bus_(sim, pcie_cfg),
        dispatcher_(sim, spec) {
    smms_.reserve(static_cast<std::size_t>(spec_.num_smms));
    for (int i = 0; i < spec_.num_smms; ++i) {
      smms_.push_back(std::make_unique<Smm>(sim, spec_, i));
    }
    dispatcher_.attach(smms_);
  }
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  sim::Simulation& sim() { return *sim_; }
  const GpuSpec& spec() const { return spec_; }
  Smm& smm(int i) { return *smms_[static_cast<std::size_t>(i)]; }
  int num_smms() const { return spec_.num_smms; }
  DeviceArena& memory() { return arena_; }
  pcie::PcieBus& pcie() { return bus_; }
  BlockDispatcher& dispatcher() { return dispatcher_; }

  /// Achieved occupancy over [0, now]: time-averaged resident warps divided
  /// by the device's warp capacity.
  double achieved_occupancy() {
    double resident_seconds = 0.0;
    for (auto& s : smms_) {
      s->touch_occupancy(sim_->now());
      resident_seconds += s->resident_warp_seconds();
    }
    const double elapsed = sim::to_seconds(sim_->now());
    if (elapsed <= 0.0) return 0.0;
    return resident_seconds /
           (elapsed * static_cast<double>(spec_.max_resident_warps()));
  }

 private:
  sim::Simulation* sim_;
  GpuSpec spec_;
  std::vector<std::unique_ptr<Smm>> smms_;
  DeviceArena arena_;
  pcie::PcieBus bus_;
  BlockDispatcher dispatcher_;
};

}  // namespace pagoda::gpu
