// Image Convolution (CONV): 5x5 filter over one 128x128 image per task
// (Table 3), the blur/edge-detect building block from the CUDA SDK samples.
// Regular, extremely short-running tasks — the paper notes CONV benefits
// least from continuous spawning (Fig 11) for exactly that reason.
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gpu/simt.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr int kDefaultSide = 128;
constexpr int kK = 5;  // filter side
constexpr int kHalo = kK / 2;

struct ConvArgs {
  const float* in;      // side*side
  const float* filter;  // kK*kK
  float* out;           // side*side
  std::int32_t side;
};

double issue_per_pixel() { return kK * kK * 2.0 + 6.0; }
double stall_per_pixel(const gpu::CostModel&) {
  // Window loads + accumulator chain: ~2x the issue time per pixel.
  return 2.0 * issue_per_pixel();
}

float conv_pixel(const ConvArgs& a, int x, int y) {
  float acc = 0.0f;
  for (int dy = -kHalo; dy <= kHalo; ++dy) {
    for (int dx = -kHalo; dx <= kHalo; ++dx) {
      const int sx = x + dx;
      const int sy = y + dy;
      if (sx < 0 || sy < 0 || sx >= a.side || sy >= a.side) continue;
      acc += a.in[sy * a.side + sx] *
             a.filter[(dy + kHalo) * kK + (dx + kHalo)];
    }
  }
  return acc;
}

gpu::KernelCoro conv_kernel(gpu::WarpCtx& ctx) {
  const ConvArgs& a = ctx.args_as<ConvArgs>();
  const int pixels = a.side * a.side;
  gpu::simt::charge_elements(ctx, pixels, issue_per_pixel(),
                             stall_per_pixel(ctx.costs()));
  gpu::simt::for_each_element(ctx, pixels, [&](int i) {
    a.out[i] = conv_pixel(a, i % a.side, i / a.side);
  });
  co_return;
}

class ConvolutionWorkload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "CONV",
                          .irregular = false,
                          .may_use_shared = false,
                          .needs_sync = false,
                          .default_registers = 25};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    SplitMix64 rng(cfg.seed);
    const int side = cfg.input_scale > 0 ? cfg.input_scale : kDefaultSide;
    side_ = side;
    const int pixels = side * side;
    const auto n = static_cast<std::size_t>(cfg.num_tasks);
    inputs_.resize(n * static_cast<std::size_t>(pixels));
    for (auto& v : inputs_) v = static_cast<float>(rng.next_double());
    filter_.resize(kK * kK);
    for (auto& v : filter_) v = static_cast<float>(rng.next_double()) / (kK * kK);
    outputs_.assign(inputs_.size(), 0.0f);

    tasks_.clear();
    tasks_.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      ConvArgs args{};
      args.in = inputs_.data() + t * static_cast<std::size_t>(pixels);
      args.filter = filter_.data();
      args.out = outputs_.data() + t * static_cast<std::size_t>(pixels);
      args.side = side;

      TaskSpec spec;
      spec.params.fn = conv_kernel;
      spec.params.threads_per_block = cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      spec.h2d_bytes = static_cast<std::int64_t>(pixels) * 4;
      spec.d2h_bytes = static_cast<std::int64_t>(pixels) * 4;
      spec.cpu_ops = static_cast<double>(pixels) * issue_per_pixel();
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override { outputs_.assign(outputs_.size(), 0.0f); }

  bool verify() const override {
    for (const TaskSpec& spec : tasks_) {
      ConvArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(ConvArgs));
      for (int y = 0; y < args.side; ++y) {
        for (int x = 0; x < args.side; ++x) {
          const float want = conv_pixel(args, x, y);
          const float got = args.out[y * args.side + x];
          if (std::abs(got - want) > 1e-4f * (1.0f + std::abs(want))) {
            return false;
          }
        }
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  int side_ = kDefaultSide;
  std::vector<float> inputs_;
  std::vector<float> filter_;
  std::vector<float> outputs_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_convolution() {
  return std::make_unique<ConvolutionWorkload>();
}

}  // namespace pagoda::workloads
