#include "workloads/des_core.h"

#include "common/check.h"

namespace pagoda::workloads {
namespace {

// FIPS 46-3 tables. Bit numbering follows the standard (1-based, MSB first).

constexpr std::array<int, 64> kIp = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::array<int, 64> kFp = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::array<int, 48> kE = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::array<int, 32> kP = {16, 7,  20, 21, 29, 12, 28, 17,
                                    1,  15, 23, 26, 5,  18, 31, 10,
                                    2,  8,  24, 14, 32, 27, 3,  9,
                                    19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::array<int, 56> kPc1 = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::array<int, 48> kPc2 = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::array<int, 16> kShifts = {1, 1, 2, 2, 2, 2, 2, 2,
                                         1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// Applies a bit-selection table: output bit i (MSB-first, n bits total)
/// takes input bit table[i] (1-based from MSB of a w-bit word).
template <std::size_t N>
constexpr std::uint64_t permute(std::uint64_t in, const std::array<int, N>& table,
                                int in_width) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < N; ++i) {
    const int bit = table[i];
    const std::uint64_t sel = (in >> (in_width - bit)) & 1ULL;
    out = (out << 1) | sel;
  }
  return out;
}

std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey) {
  const std::uint64_t expanded = permute(r, kE, 32);  // 48 bits
  const std::uint64_t x = expanded ^ subkey;
  std::uint32_t s_out = 0;
  for (int box = 0; box < 8; ++box) {
    const auto six =
        static_cast<std::uint32_t>((x >> (42 - 6 * box)) & 0x3F);
    // Row = outer two bits, column = inner four.
    const std::uint32_t row = ((six & 0x20) >> 4) | (six & 1);
    const std::uint32_t col = (six >> 1) & 0xF;
    s_out = (s_out << 4) | kSbox[box][row * 16 + col];
  }
  return static_cast<std::uint32_t>(permute(s_out, kP, 32));
}

}  // namespace

DesKeySchedule des_key_schedule(std::uint64_t key) {
  const std::uint64_t pc1 = permute(key, kPc1, 64);  // 56 bits
  std::uint32_t c = static_cast<std::uint32_t>(pc1 >> 28) & 0x0FFFFFFF;
  std::uint32_t d = static_cast<std::uint32_t>(pc1) & 0x0FFFFFFF;
  DesKeySchedule ks{};
  for (int round = 0; round < 16; ++round) {
    const int s = kShifts[static_cast<std::size_t>(round)];
    c = ((c << s) | (c >> (28 - s))) & 0x0FFFFFFF;
    d = ((d << s) | (d >> (28 - s))) & 0x0FFFFFFF;
    const std::uint64_t cd =
        (static_cast<std::uint64_t>(c) << 28) | static_cast<std::uint64_t>(d);
    ks[static_cast<std::size_t>(round)] = permute(cd, kPc2, 56);  // 48 bits
  }
  return ks;
}

namespace {
std::uint64_t des_rounds(std::uint64_t block, const DesKeySchedule& ks,
                         bool decrypt) {
  const std::uint64_t ip = permute(block, kIp, 64);
  std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(ip);
  for (int round = 0; round < 16; ++round) {
    const std::size_t k =
        decrypt ? static_cast<std::size_t>(15 - round)
                : static_cast<std::size_t>(round);
    const std::uint32_t next_r = l ^ feistel(r, ks[k]);
    l = r;
    r = next_r;
  }
  // Final swap: R16 L16, then FP.
  const std::uint64_t pre_out =
      (static_cast<std::uint64_t>(r) << 32) | static_cast<std::uint64_t>(l);
  return permute(pre_out, kFp, 64);
}
}  // namespace

std::uint64_t des_encrypt_block(std::uint64_t block, const DesKeySchedule& ks) {
  return des_rounds(block, ks, /*decrypt=*/false);
}

std::uint64_t des_decrypt_block(std::uint64_t block, const DesKeySchedule& ks) {
  return des_rounds(block, ks, /*decrypt=*/true);
}

TripleDesKey triple_des_key(std::uint64_t key1, std::uint64_t key2,
                            std::uint64_t key3) {
  return TripleDesKey{des_key_schedule(key1), des_key_schedule(key2),
                      des_key_schedule(key3)};
}

std::uint64_t triple_des_encrypt_block(std::uint64_t block,
                                       const TripleDesKey& key) {
  return des_encrypt_block(
      des_decrypt_block(des_encrypt_block(block, key.k1), key.k2), key.k3);
}

std::uint64_t triple_des_decrypt_block(std::uint64_t block,
                                       const TripleDesKey& key) {
  return des_decrypt_block(
      des_encrypt_block(des_decrypt_block(block, key.k3), key.k2), key.k1);
}

void triple_des_encrypt_ecb(std::span<const std::uint64_t> in,
                            std::span<std::uint64_t> out,
                            const TripleDesKey& key) {
  PAGODA_CHECK(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = triple_des_encrypt_block(in[i], key);
  }
}

void triple_des_decrypt_ecb(std::span<const std::uint64_t> in,
                            std::span<std::uint64_t> out,
                            const TripleDesKey& key) {
  PAGODA_CHECK(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = triple_des_decrypt_block(in[i], key);
  }
}

}  // namespace pagoda::workloads
