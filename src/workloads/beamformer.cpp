// BeamFormer (BF): StreamIt-style beam forming — per-channel FIR filtering
// followed by a weighted coherent sum across channels. Each independently
// arriving signal beam is one narrow task (Table 4).
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gpu/simt.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr int kDefaultWidth = 2048;
constexpr int kChannels = 4;
constexpr int kTaps = 64;

struct BfArgs {
  const float* signals;   // kChannels * width, channel-major
  const float* fir;       // kChannels * kTaps
  const float* weights;   // kChannels
  float* out;             // width
  std::int32_t width;
};

double issue_per_elem() { return kChannels * (2.0 * kTaps + 4.0); }
double stall_per_elem(const gpu::CostModel&) {
  // FIR accumulator chains per channel: ~2x issue.
  return 2.0 * issue_per_elem();
}

float bf_element(const BfArgs& a, int i) {
  float acc = 0.0f;
  for (int c = 0; c < kChannels; ++c) {
    const float* sig = a.signals + static_cast<std::ptrdiff_t>(c) * a.width;
    const float* fir = a.fir + static_cast<std::ptrdiff_t>(c) * kTaps;
    float filtered = 0.0f;
    for (int k = 0; k < kTaps; ++k) {
      if (i - k >= 0) filtered += sig[i - k] * fir[k];
    }
    acc += a.weights[c] * filtered;
  }
  return acc;
}

gpu::KernelCoro bf_kernel(gpu::WarpCtx& ctx) {
  const BfArgs& a = ctx.args_as<BfArgs>();
  gpu::simt::charge_elements(ctx, a.width, issue_per_elem(),
                             stall_per_elem(ctx.costs()));
  gpu::simt::for_each_element(ctx, a.width,
                              [&](int i) { a.out[i] = bf_element(a, i); });
  co_return;
}

class BeamFormerWorkload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "BF",
                          .irregular = false,
                          .may_use_shared = false,
                          .needs_sync = false,
                          .default_registers = 34};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    SplitMix64 rng(cfg.seed);
    const int base_width = cfg.input_scale > 0 ? cfg.input_scale : kDefaultWidth;
    const auto n = static_cast<std::size_t>(cfg.num_tasks);
    widths_.resize(n);
    std::size_t total = 0;
    for (std::size_t t = 0; t < n; ++t) {
      int w = base_width;
      if (cfg.irregular_sizes) {
        w = static_cast<int>(base_width * (0.25 + 1.5 * rng.next_double()));
        w = ((w + 63) / 64) * 64;
      }
      widths_[t] = w;
      total += static_cast<std::size_t>(w);
    }
    signals_.resize(total * kChannels);
    for (auto& v : signals_) v = static_cast<float>(rng.next_double()) - 0.5f;
    fir_.resize(kChannels * kTaps);
    for (auto& v : fir_) v = static_cast<float>(rng.next_double()) * 0.1f;
    weights_.resize(kChannels);
    for (auto& v : weights_) v = static_cast<float>(rng.next_double());
    outputs_.assign(total, 0.0f);

    tasks_.clear();
    tasks_.reserve(n);
    std::size_t off = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const int w = widths_[t];
      BfArgs args{};
      args.signals = signals_.data() + off * kChannels;
      args.fir = fir_.data();
      args.weights = weights_.data();
      args.out = outputs_.data() + off;
      args.width = w;
      off += static_cast<std::size_t>(w);

      TaskSpec spec;
      spec.params.fn = bf_kernel;
      spec.params.threads_per_block =
          cfg.dynamic_threads
              ? dynamic_thread_count(cfg.threads_per_task,
                                     static_cast<double>(w) / base_width)
              : cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      // Per task only the new signal block crosses PCIe (Table 3: BF is 13%
      // copy); channel state and FIR weights are device-resident.
      spec.h2d_bytes = static_cast<std::int64_t>(w) * 4;
      spec.d2h_bytes = static_cast<std::int64_t>(w) * 4;
      spec.cpu_ops = static_cast<double>(w) * issue_per_elem();
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override { outputs_.assign(outputs_.size(), 0.0f); }

  bool verify() const override {
    for (const TaskSpec& spec : tasks_) {
      BfArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(BfArgs));
      for (int i = 0; i < args.width; ++i) {
        const float want = bf_element(args, i);
        if (std::abs(args.out[i] - want) > 1e-4f * (1.0f + std::abs(want))) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  std::vector<int> widths_;
  std::vector<float> signals_;
  std::vector<float> fir_;
  std::vector<float> weights_;
  std::vector<float> outputs_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_beamformer() {
  return std::make_unique<BeamFormerWorkload>();
}

}  // namespace pagoda::workloads
