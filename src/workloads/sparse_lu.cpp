// Sparse LU Decomposition (SLUD): multifrontal sparse factorization from the
// Barcelona OpenMP Task Suite (Table 4). The matrix is divided into small
// dense frontal matrices; factoring one front is one narrow task.
//
// The defining property for the paper: the task count is NOT known
// statically — fronts become ready as their children in the elimination
// tree finish, so tasks are generated in dependency *waves*. GeMTC and
// static fusion need a predefined task count and cannot run SLUD (§6.2).
//
// Compute mode factors real diagonally-dominant fronts (in-place Doolittle
// LU, no pivoting needed) and verify() checks L·U against a regenerated A.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr int kDefaultFront = 32;  // 32x32 matrices (Table 3)

struct LuArgs {
  float* m;  // n*n, factored in place (L below diagonal, U on/above)
  std::int32_t n;
  std::uint64_t gen_seed;  // regenerates A for verification
};

double lu_issue(int n) {
  // A multifrontal front task is dominated by the trailing-submatrix update
  // (bmod: ~2 n^3 MACs) plus the block factorization (~2/3 n^3) and
  // assembly traffic.
  return 2.0 * n * n * n + 2.0 / 3.0 * n * n * n + 4.0 * n * n;
}
double lu_stall(const gpu::CostModel&, int n) {
  // Pivot-row broadcast and trailing-update dependency chains: ~2x issue.
  return 2.0 * lu_issue(n) / 32.0;
}

void fill_front(float* m, int n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int i = 0; i < n * n; ++i) {
    m[i] = static_cast<float>(rng.next_double()) - 0.5f;
  }
  for (int i = 0; i < n; ++i) m[i * n + i] += static_cast<float>(n);
}

void lu_factor_inplace(float* m, int n) {
  for (int k = 0; k < n; ++k) {
    const float pivot = m[k * n + k];
    for (int i = k + 1; i < n; ++i) {
      m[i * n + k] /= pivot;
      const float lik = m[i * n + k];
      for (int j = k + 1; j < n; ++j) {
        m[i * n + j] -= lik * m[k * n + j];
      }
    }
  }
}

gpu::KernelCoro lu_kernel(gpu::WarpCtx& ctx) {
  const LuArgs& a = ctx.args_as<LuArgs>();
  // The factorization's outer loop is sequential; threads parallelize the
  // trailing-submatrix update. Charge the whole front to the warp team.
  const int warps = (ctx.threads_per_block * ctx.num_blocks + 31) / 32;
  ctx.charge(lu_issue(a.n) / (32.0 * warps));
  ctx.charge_stall(lu_stall(ctx.costs(), a.n) / warps);
  if (ctx.compute() && ctx.warp_in_task == 0) {
    // One representative performs the in-place factorization (the simulator
    // runs warps sequentially within an event, so electing warp 0 is both
    // correct and race-free).
    lu_factor_inplace(a.m, a.n);
  }
  co_return;
}

class SparseLuWorkload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "SLUD",
                          .irregular = true,
                          .may_use_shared = false,
                          .needs_sync = false,
                          .default_registers = 17};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    SplitMix64 rng(cfg.seed);
    const int base_n = cfg.input_scale > 0 ? cfg.input_scale : kDefaultFront;
    const auto count = static_cast<std::size_t>(cfg.num_tasks);

    // Elimination-tree waves: roughly half the remaining fronts per level
    // (leaf-heavy, like a multifrontal tree).
    std::vector<int> wave_of(count);
    {
      std::size_t assigned = 0;
      int wave = 0;
      std::size_t remaining = count;
      while (assigned < count) {
        std::size_t in_wave = remaining - remaining / 2;
        if (in_wave == 0) in_wave = 1;
        for (std::size_t i = 0; i < in_wave && assigned < count; ++i) {
          wave_of[assigned++] = wave;
        }
        remaining -= std::min(in_wave, remaining);
        ++wave;
      }
    }

    ns_.resize(count);
    std::size_t total_elems = 0;
    for (std::size_t t = 0; t < count; ++t) {
      // Fronts shrink toward the tree root but vary irregularly.
      int n = base_n / 2 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(base_n)));
      n = std::max(8, (n / 8) * 8);
      ns_[t] = n;
      total_elems += static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    }
    fronts_.resize(total_elems);
    seeds_.resize(count);

    tasks_.clear();
    tasks_.reserve(count);
    std::size_t off = 0;
    for (std::size_t t = 0; t < count; ++t) {
      const int n = ns_[t];
      seeds_[t] = rng.next();
      fill_front(fronts_.data() + off, n, seeds_[t]);

      LuArgs args{};
      args.m = fronts_.data() + off;
      args.n = n;
      args.gen_seed = seeds_[t];
      off += static_cast<std::size_t>(n) * static_cast<std::size_t>(n);

      TaskSpec spec;
      spec.params.fn = lu_kernel;
      spec.params.threads_per_block =
          cfg.dynamic_threads
              ? dynamic_thread_count(cfg.threads_per_task,
                                     static_cast<double>(n) / base_n)
              : cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      // The factorization works on device-resident fronts; only small
      // descriptors cross PCIe (why SLUD is 3% copy in Table 3).
      spec.h2d_bytes = 256;
      spec.d2h_bytes = 64;
      spec.cpu_ops = lu_issue(n);
      spec.wave = wave_of[t];
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override {
    std::size_t off = 0;
    for (std::size_t t = 0; t < ns_.size(); ++t) {
      const int n = ns_[t];
      fill_front(fronts_.data() + off, n, seeds_[t]);
      off += static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    }
  }

  bool verify() const override {
    for (const TaskSpec& spec : tasks_) {
      LuArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(LuArgs));
      const int n = args.n;
      std::vector<float> a_orig(static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(n));
      fill_front(a_orig.data(), n, args.gen_seed);
      // Check L·U == A element-wise.
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          float acc = 0.0f;
          const int kmax = std::min(i, j);
          for (int k = 0; k <= kmax; ++k) {
            const float lik = (k == i) ? 1.0f : args.m[i * n + k];
            const float ukj = args.m[k * n + j];
            acc += lik * ukj;
          }
          const float want = a_orig[static_cast<std::size_t>(i * n + j)];
          if (std::abs(acc - want) > 1e-2f * (1.0f + std::abs(want))) {
            return false;
          }
        }
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  std::vector<int> ns_;
  std::vector<std::uint64_t> seeds_;
  std::vector<float> fronts_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_sparse_lu() {
  return std::make_unique<SparseLuWorkload>();
}

}  // namespace pagoda::workloads
