// MatrixMul (MM): one small dense multiplication per task (64x64 default) —
// the earthquake-engineering-simulator behaviour of Table 4, refactored from
// the CUDA SDK sample.
//
// Variants (Table 5): the tiled shared-memory kernel stages 16x16 tiles of A
// and B (2 KB), cutting global traffic 16x at the cost of a shmem lease and
// syncBlock per tile step; the naive kernel streams B column-wise from
// global memory with poor locality.
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr int kDefaultN = 64;
constexpr int kTile = 16;
constexpr std::int32_t kShmemBytes = 2 * kTile * kTile * 4;  // 2 KB

struct MmArgs {
  const float* a;
  const float* b;
  float* c;
  std::int32_t n;
  std::int32_t use_shmem;
};

double issue_per_elem(int n, bool shmem) {
  const double mac = 2.0 * n;
  const double mem = shmem ? (2.0 * n / kTile) * 2.0 + 2.0 * n  // shared reads
                           : 2.0 * n * 1.5;                     // global reads
  return mac + mem;
}
double stall_per_elem(const gpu::CostModel&, int n, bool shmem) {
  // Tiled: global traffic cut kTile-fold, stalls mostly hidden by the tile
  // reuse (~1.5x issue). Naive: column-strided B loads miss constantly
  // (~4x issue).
  return shmem ? 1.5 * issue_per_elem(n, true) : 4.0 * issue_per_elem(n, false);
}

gpu::KernelCoro mm_kernel(gpu::WarpCtx& ctx) {
  const MmArgs& a = ctx.args_as<MmArgs>();
  const bool shmem = a.use_shmem != 0;
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  const int elems = a.n * a.n;
  int mine = 0;
  for (int i = ctx.tid(0); i < elems; i += total_threads) ++mine;

  if (shmem) {
    // Tile loop: each of the n/kTile steps stages two tiles then syncs.
    const int steps = (a.n + kTile - 1) / kTile;
    for (int s = 0; s < steps; ++s) {
      ctx.charge(2.0 * kTile * ctx.costs().global_access / 4.0);
      ctx.charge_stall(ctx.costs().global_stall);
      co_await ctx.sync_block();
      ctx.charge(mine * issue_per_elem(a.n, true) / steps);
      co_await ctx.sync_block();
    }
    ctx.charge_stall(mine * stall_per_elem(ctx.costs(), a.n, true));
  } else {
    ctx.charge(mine * issue_per_elem(a.n, false));
    ctx.charge_stall(mine * stall_per_elem(ctx.costs(), a.n, false));
  }

  if (ctx.compute()) {
    for (int lane = 0; lane < 32; ++lane) {
      for (int i = ctx.tid(lane); i < elems; i += total_threads) {
        const int row = i / a.n;
        const int col = i % a.n;
        float acc = 0.0f;
        for (int k = 0; k < a.n; ++k) {
          acc += a.a[row * a.n + k] * a.b[k * a.n + col];
        }
        a.c[i] = acc;
      }
    }
  }
  co_return;
}

class MatMulWorkload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "MM",
                          .irregular = false,
                          .may_use_shared = true,
                          .needs_sync = true,
                          .default_registers = 30};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    SplitMix64 rng(cfg.seed);
    const int base_n = cfg.input_scale > 0 ? cfg.input_scale : kDefaultN;
    const auto count = static_cast<std::size_t>(cfg.num_tasks);
    ns_.resize(count);
    std::size_t total_elems = 0;
    for (std::size_t t = 0; t < count; ++t) {
      int n = base_n;
      if (cfg.irregular_sizes) {
        // Different-but-small matrix sizes per task (Table 4's simulator).
        n = static_cast<int>(base_n * (0.5 + rng.next_double()));
        n = ((n + 7) / 8) * 8;
      }
      ns_[t] = n;
      total_elems += static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    }
    a_.resize(total_elems);
    b_.resize(total_elems);
    for (auto& v : a_) v = static_cast<float>(rng.next_double()) - 0.5f;
    for (auto& v : b_) v = static_cast<float>(rng.next_double()) - 0.5f;
    c_.assign(total_elems, 0.0f);

    tasks_.clear();
    tasks_.reserve(count);
    std::size_t off = 0;
    for (std::size_t t = 0; t < count; ++t) {
      const int n = ns_[t];
      MmArgs args{};
      args.a = a_.data() + off;
      args.b = b_.data() + off;
      args.c = c_.data() + off;
      args.n = n;
      args.use_shmem = cfg.use_shared_memory ? 1 : 0;
      off += static_cast<std::size_t>(n) * static_cast<std::size_t>(n);

      TaskSpec spec;
      spec.params.fn = mm_kernel;
      spec.params.threads_per_block =
          cfg.dynamic_threads
              ? dynamic_thread_count(cfg.threads_per_task,
                                     static_cast<double>(n) / base_n)
              : cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.needs_sync = cfg.use_shared_memory;
      spec.params.shared_mem_bytes = cfg.use_shared_memory ? kShmemBytes : 0;
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      spec.h2d_bytes = static_cast<std::int64_t>(n) * n * 4 * 2;
      spec.d2h_bytes = static_cast<std::int64_t>(n) * n * 4;
      spec.cpu_ops = static_cast<double>(n) * n * (2.0 * n + 4.0);
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override { c_.assign(c_.size(), 0.0f); }

  bool verify() const override {
    for (const TaskSpec& spec : tasks_) {
      MmArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(MmArgs));
      for (int row = 0; row < args.n; ++row) {
        for (int col = 0; col < args.n; ++col) {
          float want = 0.0f;
          for (int k = 0; k < args.n; ++k) {
            want += args.a[row * args.n + k] * args.b[k * args.n + col];
          }
          const float got = args.c[row * args.n + col];
          if (std::abs(got - want) > 1e-3f * (1.0f + std::abs(want))) {
            return false;
          }
        }
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  std::vector<int> ns_;
  std::vector<float> a_;
  std::vector<float> b_;
  std::vector<float> c_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_matmul() {
  return std::make_unique<MatMulWorkload>();
}

}  // namespace pagoda::workloads
