// Internal per-benchmark factory functions (see workload.h::make_workload).
#pragma once

#include <memory>

#include "workloads/workload.h"

namespace pagoda::workloads {

std::unique_ptr<Workload> make_mandelbrot();
std::unique_ptr<Workload> make_filterbank();
std::unique_ptr<Workload> make_beamformer();
std::unique_ptr<Workload> make_convolution();
std::unique_ptr<Workload> make_dct8x8();
std::unique_ptr<Workload> make_matmul();
std::unique_ptr<Workload> make_sparse_lu();
std::unique_ptr<Workload> make_triple_des();
std::unique_ptr<Workload> make_mpe();

}  // namespace pagoda::workloads
