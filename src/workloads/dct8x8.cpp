// DCT8x8 (DCT): JPEG-style 8x8 block DCT over one 128x128 image per task
// (CUDA SDK dct8x8 sample; Table 4's surveillance-camera scenario).
//
// Two kernel variants (Table 5):
//  * shared-memory: image slabs staged in shared memory; global traffic is
//    2 accesses/pixel and the task requests an 8 KB block + syncBlock. The
//    8 KB request limits MTB co-residency — the paper reports 25% occupancy
//    for this variant, traded against the faster memory path.
//  * no-shared-memory: every DCT pass touches global memory (6 accesses/
//    pixel with heavier stalls), no shmem request, 97% occupancy.
// Both variants compute the same function: per 8x8 block B = C·A·Cᵀ.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr int kDefaultSide = 128;
constexpr std::int32_t kShmemBytes = 8 * 1024;

struct DctArgs {
  const float* in;
  float* out;
  std::int32_t side;
  std::int32_t use_shmem;  // charge profile selector
};

/// 8-point DCT-II basis, c[k][x] = s(k) cos((2x+1)kπ/16).
const std::array<std::array<float, 8>, 8>& dct_basis() {
  static const auto basis = [] {
    std::array<std::array<float, 8>, 8> c{};
    for (int k = 0; k < 8; ++k) {
      const double s = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        c[static_cast<std::size_t>(k)][static_cast<std::size_t>(x)] =
            static_cast<float>(
                s * std::cos((2.0 * x + 1.0) * k * 3.14159265358979323846 /
                             16.0));
      }
    }
    return c;
  }();
  return basis;
}

/// DCT of the 8x8 block at (bx, by): out = C·A·Cᵀ.
void dct_block(const DctArgs& a, int bx, int by, float* dst) {
  const auto& c = dct_basis();
  float tmp[8][8];
  // Rows: tmp = A·Cᵀ  (tmp[y][k] = Σ_x A[y][x]·C[k][x])
  for (int y = 0; y < 8; ++y) {
    for (int k = 0; k < 8; ++k) {
      float acc = 0.0f;
      for (int x = 0; x < 8; ++x) {
        acc += a.in[(by * 8 + y) * a.side + bx * 8 + x] *
               c[static_cast<std::size_t>(k)][static_cast<std::size_t>(x)];
      }
      tmp[y][k] = acc;
    }
  }
  // Columns: out[k][l] = Σ_y C[k][y]·tmp[y][l]
  for (int k = 0; k < 8; ++k) {
    for (int l = 0; l < 8; ++l) {
      float acc = 0.0f;
      for (int y = 0; y < 8; ++y) {
        acc += c[static_cast<std::size_t>(k)][static_cast<std::size_t>(y)] *
               tmp[y][l];
      }
      dst[k * 8 + l] = acc;
    }
  }
}

// Per-8x8-block costs: 2 passes of 8x8x8 MACs.
double issue_per_block(bool shmem) {
  const double mac = 2.0 * 512.0 * 2.0;
  const double mem = shmem ? 64.0 * 2.0 /*coalesced global*/ + 128.0 /*shared*/
                           : 64.0 * 6.0;
  return mac + mem;
}
double stall_per_block(const gpu::CostModel&, bool shmem) {
  // Shared-memory staging removes the per-pass global round-trips; the
  // no-shmem variant stalls on global memory every pass.
  return shmem ? 1.5 * issue_per_block(true) : 3.0 * issue_per_block(false);
}

gpu::KernelCoro dct_kernel(gpu::WarpCtx& ctx) {
  const DctArgs& a = ctx.args_as<DctArgs>();
  const bool shmem = a.use_shmem != 0;
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  const int blocks = (a.side / 8) * (a.side / 8);
  int mine = 0;
  for (int b = ctx.tid(0); b < blocks; b += total_threads) ++mine;
  if (shmem) {
    // Stage the slab: coalesced loads into shared memory, then sync.
    ctx.charge(mine * 64.0 * ctx.costs().global_access / 8.0);
    ctx.charge_stall(mine * ctx.costs().global_stall);
    co_await ctx.sync_block();
  }
  ctx.charge(mine * issue_per_block(shmem));
  ctx.charge_stall(mine * stall_per_block(ctx.costs(), shmem));
  if (ctx.compute()) {
    const int blocks_per_row = a.side / 8;
    for (int lane = 0; lane < 32; ++lane) {
      for (int b = ctx.tid(lane); b < blocks; b += total_threads) {
        float dst[64];
        dct_block(a, b % blocks_per_row, b / blocks_per_row, dst);
        const int bx = b % blocks_per_row;
        const int by = b / blocks_per_row;
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            a.out[(by * 8 + y) * a.side + bx * 8 + x] = dst[y * 8 + x];
          }
        }
      }
    }
  }
  co_return;
}

class Dct8x8Workload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "DCT",
                          .irregular = false,
                          .may_use_shared = true,
                          .needs_sync = true,
                          .default_registers = 33};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    SplitMix64 rng(cfg.seed);
    const int base_side = cfg.input_scale > 0 ? cfg.input_scale : kDefaultSide;
    side_ = base_side;
    const auto n = static_cast<std::size_t>(cfg.num_tasks);
    // Per-task image sides. Irregular mode varies the camera resolution per
    // task (different-but-small frames, like MM's matrix sweep) while every
    // task keeps DECLARING the full 8 KB slab — the conservative worst-case
    // reservation. The actually-touched slab is one 8-row band, side*8*4
    // bytes, and the used-footprint hint exposes exactly that gap to the
    // virtual resource plane: at --oversub > 1 the MasterKernel backs only
    // the band physically and co-schedules more blocks per MTB.
    sides_.resize(n);
    std::size_t total_pixels = 0;
    for (std::size_t t = 0; t < n; ++t) {
      int side = base_side;
      if (cfg.irregular_sizes) {
        side = static_cast<int>(base_side * (0.5 + rng.next_double()));
        side = std::max(8, ((side + 7) / 8) * 8);
      }
      sides_[t] = side;
      total_pixels += static_cast<std::size_t>(side) *
                      static_cast<std::size_t>(side);
    }
    inputs_.resize(total_pixels);
    for (auto& v : inputs_) v = static_cast<float>(rng.next_double()) * 255.0f;
    outputs_.assign(inputs_.size(), 0.0f);

    tasks_.clear();
    tasks_.reserve(n);
    std::size_t offset = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const int side = sides_[t];
      const int pixels = side * side;
      DctArgs args{};
      args.in = inputs_.data() + offset;
      args.out = outputs_.data() + offset;
      args.side = side;
      args.use_shmem = cfg.use_shared_memory ? 1 : 0;
      offset += static_cast<std::size_t>(pixels);

      TaskSpec spec;
      spec.params.fn = dct_kernel;
      spec.params.threads_per_block = cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.needs_sync = cfg.use_shared_memory;
      spec.params.shared_mem_bytes = cfg.use_shared_memory ? kShmemBytes : 0;
      if (cfg.use_shared_memory) {
        // One staged band of the image: side pixels x 8 rows x 4 bytes,
        // always a multiple of 256 since side is a multiple of 8. Capped at
        // the declared slab for large frames (the kernel stages in chunks).
        spec.params.shmem_used_256 = static_cast<std::uint8_t>(
            std::min(side * 8 * 4, kShmemBytes) / 256);
      }
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      spec.h2d_bytes = static_cast<std::int64_t>(pixels) * 4;
      spec.d2h_bytes = static_cast<std::int64_t>(pixels) * 4;
      spec.cpu_ops = static_cast<double>(pixels) / 64.0 *
                     issue_per_block(/*shmem=*/true);
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override { outputs_.assign(outputs_.size(), 0.0f); }

  bool verify() const override {
    for (const TaskSpec& spec : tasks_) {
      DctArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(DctArgs));
      const int blocks_per_row = args.side / 8;
      float dst[64];
      for (int b = 0; b < blocks_per_row * blocks_per_row; ++b) {
        dct_block(args, b % blocks_per_row, b / blocks_per_row, dst);
        const int bx = b % blocks_per_row;
        const int by = b / blocks_per_row;
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            const float got = args.out[(by * 8 + y) * args.side + bx * 8 + x];
            const float want = dst[y * 8 + x];
            if (std::abs(got - want) > 1e-3f * (1.0f + std::abs(want))) {
              return false;
            }
          }
        }
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  int side_ = kDefaultSide;
  std::vector<int> sides_;
  std::vector<float> inputs_;
  std::vector<float> outputs_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_dct8x8() {
  return std::make_unique<Dct8x8Workload>();
}

}  // namespace pagoda::workloads
