// A real software DES / Triple-DES (EDE3) implementation.
//
// The paper's 3DES benchmark encrypts network packets (FIPS 46-3); this is a
// straightforward table-driven implementation — correct, not constant-time,
// exactly what a benchmark kernel needs. Validated against FIPS test vectors
// in tests/des_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace pagoda::workloads {

/// Expanded key schedule: 16 round keys of 48 bits each.
using DesKeySchedule = std::array<std::uint64_t, 16>;

/// Builds the key schedule from a 64-bit key (parity bits ignored).
DesKeySchedule des_key_schedule(std::uint64_t key);

/// Encrypts/decrypts one 64-bit block.
std::uint64_t des_encrypt_block(std::uint64_t block, const DesKeySchedule& ks);
std::uint64_t des_decrypt_block(std::uint64_t block, const DesKeySchedule& ks);

/// Triple-DES EDE: E(k3, D(k2, E(k1, block))).
struct TripleDesKey {
  DesKeySchedule k1, k2, k3;
};
TripleDesKey triple_des_key(std::uint64_t key1, std::uint64_t key2,
                            std::uint64_t key3);
std::uint64_t triple_des_encrypt_block(std::uint64_t block,
                                       const TripleDesKey& key);
std::uint64_t triple_des_decrypt_block(std::uint64_t block,
                                       const TripleDesKey& key);

/// ECB over a buffer of whole 8-byte blocks (the parallel-friendly mode the
/// benchmark uses: each GPU thread owns a disjoint set of blocks).
void triple_des_encrypt_ecb(std::span<const std::uint64_t> in,
                            std::span<std::uint64_t> out,
                            const TripleDesKey& key);
void triple_des_decrypt_ecb(std::span<const std::uint64_t> in,
                            std::span<std::uint64_t> out,
                            const TripleDesKey& key);

}  // namespace pagoda::workloads
