// The benchmark-workload abstraction (paper Tables 3 & 4).
//
// A Workload owns its input/output buffers and produces one TaskSpec per
// narrow task. Runtimes (Pagoda, HyperQ, GeMTC, static fusion, PThreads)
// consume TaskSpecs uniformly; the harness charges each task's H2D/D2H data
// volume and the CPU baseline consumes its scalar op count.
//
// Execution modes:
//  * ExecMode::Compute — kernels perform the real math (results verifiable
//    against the CPU reference via verify()).
//  * ExecMode::Model   — identical control flow and *identical cycle
//    charges*, loop bodies elided (used for the 32K-task sweeps).
// All cycle charges come from analytic formulas evaluated in both modes, so
// timing is mode-independent by construction (asserted by a test).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gpu/kernel.h"
#include "pagoda/task_table.h"

namespace pagoda::workloads {

/// Everything a runtime needs to execute one narrow task.
struct TaskSpec {
  runtime::TaskParams params;  // kernel fn, dims, shmem, sync flag, args
  int regs_per_thread = 32;    // native-launch register footprint (Table 3)
  std::int64_t h2d_bytes = 0;  // per-task input copy volume
  std::int64_t d2h_bytes = 0;  // per-task output copy volume
  double cpu_ops = 0.0;        // scalar op count for the PThreads baseline
  /// Dependency wave (SLUD): tasks of wave w may only spawn after every
  /// task of wave w-1 finished — the dynamic task structure that batch
  /// systems cannot express. 0 for independent tasks.
  int wave = 0;
};

struct WorkloadConfig {
  int num_tasks = 1024;
  int threads_per_task = 128;
  std::uint64_t seed = 0x9A60DAULL;
  gpu::ExecMode mode = gpu::ExecMode::Model;
  /// DCT/MM: build the shared-memory kernel variant (Table 5).
  bool use_shared_memory = true;
  /// Fig 9: pseudo-random input sizes per task (irregular workloads).
  bool irregular_sizes = false;
  /// Fig 9: pick each task's thread count from its input size (32–256
  /// threads), as the runtime schemes can but static fusion cannot.
  bool dynamic_threads = false;
  /// Fig 7/8: when > 0, overrides the per-task input scale (task "input
  /// size" such as image width; workload-specific meaning).
  int input_scale = 0;
  /// Fig 8: threadblocks per task (total threads = threads_per_task x
  /// blocks_per_task; the per-task work is redistributed, not multiplied).
  int blocks_per_task = 1;
};

struct WorkloadTraits {
  std::string_view name;
  bool irregular = false;        // Table 3 "Task Type"
  bool may_use_shared = false;   // Table 3 "May benefit from shared memory"
  bool needs_sync = false;       // Table 3 "Requires threadblock sync"
  int default_registers = 32;    // Table 3 "Default Register Count"
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual WorkloadTraits traits() const = 0;

  /// (Re)builds inputs and task list for the given configuration, then
  /// caches derived task-list properties (dependency-wave depth). Not
  /// virtual so the cache cannot be bypassed; subclasses implement
  /// do_generate().
  void generate(const WorkloadConfig& cfg);

  virtual std::span<const TaskSpec> tasks() const = 0;

  /// Deepest TaskSpec::wave over tasks() (0 for independent-task
  /// workloads). Cached by generate(): runtimes consult this per run —
  /// supports() checks, wave-loop bounds — and must not rescan the task
  /// list each time.
  int max_wave() const { return max_wave_; }

  /// Clears outputs so a second run can be verified independently.
  virtual void reset_outputs() = 0;

  /// After a Compute-mode run: checks outputs against the CPU reference.
  /// Returns true when every task's output matches.
  virtual bool verify() const = 0;

  std::string_view name() const { return traits().name; }

  /// Total data volumes and CPU ops over all tasks (for reporting).
  std::int64_t total_h2d_bytes() const;
  std::int64_t total_d2h_bytes() const;
  double total_cpu_ops() const;

 protected:
  /// Subclass hook: rebuild inputs and the task list.
  virtual void do_generate(const WorkloadConfig& cfg) = 0;

 private:
  int max_wave_ = 0;
};

/// Thread count for a task whose input is `size_ratio` times the nominal
/// size: proportional, warp-granular, clamped to [32, 256] (the Fig 9
/// dynamic-thread-selection range).
inline int dynamic_thread_count(int base_threads, double size_ratio) {
  int t = static_cast<int>(static_cast<double>(base_threads) * size_ratio);
  t = ((t + 31) / 32) * 32;
  if (t < 32) t = 32;
  if (t > 256) t = 256;
  return t;
}

/// Factory by benchmark acronym: MB, FB, BF, CONV, DCT, MM, SLUD, 3DES, MPE.
std::unique_ptr<Workload> make_workload(std::string_view name);

/// All benchmark acronyms in the paper's Figure 5 order.
std::span<const std::string_view> all_workload_names();

}  // namespace pagoda::workloads
