#include "workloads/workload.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "workloads/factories.h"

namespace pagoda::workloads {

void Workload::generate(const WorkloadConfig& cfg) {
  do_generate(cfg);
  max_wave_ = 0;
  for (const TaskSpec& t : tasks()) max_wave_ = std::max(max_wave_, t.wave);
}

std::int64_t Workload::total_h2d_bytes() const {
  std::int64_t total = 0;
  for (const TaskSpec& t : tasks()) total += t.h2d_bytes;
  return total;
}

std::int64_t Workload::total_d2h_bytes() const {
  std::int64_t total = 0;
  for (const TaskSpec& t : tasks()) total += t.d2h_bytes;
  return total;
}

double Workload::total_cpu_ops() const {
  double total = 0;
  for (const TaskSpec& t : tasks()) total += t.cpu_ops;
  return total;
}

namespace {
constexpr std::array<std::string_view, 9> kNames = {
    "MB", "FB", "BF", "CONV", "DCT", "MM", "SLUD", "3DES", "MPE"};
}

std::span<const std::string_view> all_workload_names() { return kNames; }

std::unique_ptr<Workload> make_workload(std::string_view name) {
  if (name == "MB") return make_mandelbrot();
  if (name == "FB") return make_filterbank();
  if (name == "BF") return make_beamformer();
  if (name == "CONV") return make_convolution();
  if (name == "DCT") return make_dct8x8();
  if (name == "MM") return make_matmul();
  if (name == "SLUD") return make_sparse_lu();
  if (name == "3DES") return make_triple_des();
  if (name == "MPE") return make_mpe();
  PAGODA_CHECK_MSG(false, "unknown workload name");
}

}  // namespace pagoda::workloads
