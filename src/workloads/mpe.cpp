// MPE: the paper's multi-programmed environment benchmark (Table 4) —
// four heterogeneous applications generating narrow tasks asynchronously:
// 3DES and Mandelbrot (irregular computation), FilterBank (threadblock
// synchronization) and MatrixMul (shared memory). 8K tasks each by default
// (32K total); tasks are interleaved round-robin so the runtimes see a
// genuinely mixed stream.
#include <memory>
#include <vector>

#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

class MpeWorkload final : public Workload {
 public:
  MpeWorkload() {
    subs_.push_back(make_triple_des());
    subs_.push_back(make_mandelbrot());
    subs_.push_back(make_filterbank());
    subs_.push_back(make_matmul());
  }

  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "MPE",
                          .irregular = true,
                          .may_use_shared = true,
                          .needs_sync = true,
                          .default_registers = 30};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    const int per_sub = std::max(1, cfg.num_tasks / static_cast<int>(subs_.size()));
    tasks_.clear();
    for (std::size_t s = 0; s < subs_.size(); ++s) {
      WorkloadConfig sub_cfg = cfg;
      sub_cfg.num_tasks = per_sub;
      sub_cfg.seed = cfg.seed + 0x517E * (s + 1);
      subs_[s]->generate(sub_cfg);
    }
    // Round-robin interleave: the task stream alternates applications.
    tasks_.reserve(static_cast<std::size_t>(per_sub) * subs_.size());
    for (int i = 0; i < per_sub; ++i) {
      for (const auto& sub : subs_) {
        tasks_.push_back(sub->tasks()[static_cast<std::size_t>(i)]);
      }
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override {
    for (const auto& sub : subs_) sub->reset_outputs();
  }

  bool verify() const override {
    for (const auto& sub : subs_) {
      if (!sub->verify()) return false;
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<Workload>> subs_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_mpe() { return std::make_unique<MpeWorkload>(); }

}  // namespace pagoda::workloads
