// FilterBank (FB): StreamIt-style multi-stage signal filter (paper Fig 1c).
//
// Stages per task, separated by syncBlock(): convolve with H, down-sample,
// up-sample, convolve with F. Each task processes one signal of width 2K
// (Table 3); processing one radio's signal is one narrow task.
#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "gpu/simt.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr int kDefaultWidth = 2048;
constexpr int kTaps = 32;      // N_col in the paper's kernel
constexpr int kDownFactor = 8;  // N_samp

struct FbArgs {
  const float* r;      // input signal (width)
  const float* h;      // filter H (kTaps)
  const float* f;      // filter F (kTaps)
  float* vect_h;       // scratch: H-convolved (width)
  float* vect_dn;      // scratch: down-sampled (width/kDownFactor)
  float* vect_up;      // scratch: up-sampled (width)
  float* vect_f;       // output (width)
  std::int32_t width;
};

// Per-element costs: a kTaps-long MAC loop with mostly-cached loads.
double conv_issue_per_elem() { return 2.0 * kTaps + 6.0; }
double conv_stall_per_elem(const gpu::CostModel&) {
  // Accumulator dependency chain + window loads: ~2x the issue time.
  return 2.0 * conv_issue_per_elem();
}

gpu::KernelCoro fb_kernel(gpu::WarpCtx& ctx) {
  const FbArgs& a = ctx.args_as<FbArgs>();
  const int n = a.width;
  const int n_dn = n / kDownFactor;

  // Stage 1: convolve H.
  gpu::simt::charge_elements(ctx, n, conv_issue_per_elem(),
                             conv_stall_per_elem(ctx.costs()));
  gpu::simt::for_each_element(ctx, n, [&](int i) {
    float acc = 0.0f;
    for (int k = 0; k < kTaps; ++k) {
      if (i - k >= 0) acc += a.r[i - k] * a.h[k];
    }
    a.vect_h[i] = acc;
  });
  co_await ctx.sync_block();

  // Stage 2: down-sample.
  gpu::simt::charge_elements(ctx, n_dn, 4.0, 8.0);
  ctx.charge_stall(ctx.costs().global_stall);
  gpu::simt::for_each_element(ctx, n_dn, [&](int i) {
    a.vect_dn[i] = a.vect_h[i * kDownFactor];
  });
  co_await ctx.sync_block();

  // Stage 3: up-sample (zero-stuffing).
  gpu::simt::charge_elements(ctx, n, 3.0, 6.0);
  ctx.charge_stall(ctx.costs().global_stall);
  gpu::simt::for_each_element(ctx, n, [&](int i) {
    a.vect_up[i] = (i % kDownFactor == 0) ? a.vect_dn[i / kDownFactor] : 0.0f;
  });
  co_await ctx.sync_block();

  // Stage 4: convolve F.
  gpu::simt::charge_elements(ctx, n, conv_issue_per_elem(),
                             conv_stall_per_elem(ctx.costs()));
  gpu::simt::for_each_element(ctx, n, [&](int i) {
    float acc = 0.0f;
    for (int k = 0; k < kTaps; ++k) {
      if (i - k >= 0) acc += a.f[k] * a.vect_up[i - k];
    }
    a.vect_f[i] = acc;
  });
  co_return;
}

void fb_reference(const FbArgs& a, std::vector<float>& out) {
  const int n = a.width;
  const int n_dn = n / kDownFactor;
  std::vector<float> vh(static_cast<std::size_t>(n));
  std::vector<float> vdn(static_cast<std::size_t>(n_dn));
  std::vector<float> vup(static_cast<std::size_t>(n));
  out.assign(static_cast<std::size_t>(n), 0.0f);
  for (int i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (int k = 0; k < kTaps; ++k) {
      if (i - k >= 0) acc += a.r[i - k] * a.h[k];
    }
    vh[static_cast<std::size_t>(i)] = acc;
  }
  for (int i = 0; i < n_dn; ++i) vdn[static_cast<std::size_t>(i)] = vh[static_cast<std::size_t>(i * kDownFactor)];
  for (int i = 0; i < n; ++i) {
    vup[static_cast<std::size_t>(i)] =
        (i % kDownFactor == 0) ? vdn[static_cast<std::size_t>(i / kDownFactor)] : 0.0f;
  }
  for (int i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (int k = 0; k < kTaps; ++k) {
      if (i - k >= 0) acc += a.f[k] * vup[i - k];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
}

class FilterBankWorkload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "FB",
                          .irregular = false,
                          .may_use_shared = false,
                          .needs_sync = true,
                          .default_registers = 21};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    SplitMix64 rng(cfg.seed);
    const int base_width = cfg.input_scale > 0 ? cfg.input_scale : kDefaultWidth;
    const auto n = static_cast<std::size_t>(cfg.num_tasks);
    widths_.resize(n);
    std::size_t total_width = 0;
    for (std::size_t t = 0; t < n; ++t) {
      int w = base_width;
      if (cfg.irregular_sizes) {
        // Pseudo-random sizes (Fig 9): x0.25 .. x1.75, multiple of 64.
        w = static_cast<int>(base_width * (0.25 + 1.5 * rng.next_double()));
        w = ((w + 63) / 64) * 64;
      }
      widths_[t] = w;
      total_width += static_cast<std::size_t>(w);
    }
    inputs_.resize(total_width);
    for (auto& v : inputs_) v = static_cast<float>(rng.next_double()) - 0.5f;
    filters_h_.resize(kTaps);
    filters_f_.resize(kTaps);
    for (int k = 0; k < kTaps; ++k) {
      filters_h_[static_cast<std::size_t>(k)] = static_cast<float>(rng.next_double());
      filters_f_[static_cast<std::size_t>(k)] = static_cast<float>(rng.next_double());
    }
    scratch_.assign(total_width * 3 + total_width / kDownFactor, 0.0f);
    outputs_.assign(total_width, 0.0f);

    tasks_.clear();
    tasks_.reserve(n);
    std::size_t off = 0;
    std::size_t scratch_off = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const int w = widths_[t];
      FbArgs args{};
      args.r = inputs_.data() + off;
      args.h = filters_h_.data();
      args.f = filters_f_.data();
      args.vect_h = scratch_.data() + scratch_off;
      args.vect_dn = scratch_.data() + scratch_off + w;
      args.vect_up = scratch_.data() + scratch_off + w + w / kDownFactor;
      args.vect_f = outputs_.data() + off;
      args.width = w;
      scratch_off += static_cast<std::size_t>(2 * w + w / kDownFactor);
      off += static_cast<std::size_t>(w);

      TaskSpec spec;
      spec.params.fn = fb_kernel;
      spec.params.threads_per_block =
          cfg.dynamic_threads
              ? dynamic_thread_count(cfg.threads_per_task,
                                     static_cast<double>(w) / base_width)
              : cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.needs_sync = true;
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      spec.h2d_bytes = static_cast<std::int64_t>(w) * 4 + 2 * kTaps * 4;
      spec.d2h_bytes = static_cast<std::int64_t>(w) * 4;
      spec.cpu_ops = static_cast<double>(w) * (2 * conv_issue_per_elem() + 7);
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override { outputs_.assign(outputs_.size(), 0.0f); }

  bool verify() const override {
    std::vector<float> ref;
    for (const TaskSpec& spec : tasks_) {
      FbArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(FbArgs));
      fb_reference(args, ref);
      for (int i = 0; i < args.width; ++i) {
        const float got = args.vect_f[i];
        const float want = ref[static_cast<std::size_t>(i)];
        if (std::abs(got - want) > 1e-4f * (1.0f + std::abs(want))) return false;
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  std::vector<int> widths_;
  std::vector<float> inputs_;
  std::vector<float> filters_h_;
  std::vector<float> filters_f_;
  std::vector<float> scratch_;
  std::vector<float> outputs_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_filterbank() {
  return std::make_unique<FilterBankWorkload>();
}

}  // namespace pagoda::workloads
