// 3DES: Triple-DES encryption of network packets (FIPS 46-3, Table 4).
// Routers encrypt packets as they arrive; one packet is one narrow task.
// Packet sizes follow a NetBench-like heavy-tailed mix between 2 KB and
// 64 KB, making the workload irregular. Threads stripe over a packet's
// 8-byte blocks (ECB — the parallel-friendly mode).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "workloads/des_core.h"
#include "gpu/simt.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr std::int64_t kMinPacket = 2 * 1024;
constexpr std::int64_t kMaxPacket = 64 * 1024;

// Software 3DES on a GPU thread: 48 Feistel rounds per 8-byte block with
// precomputed SP tables (the usual GPU formulation: ~6 ops/round).
// Calibrated against Table 3's 74%-copy characterization — the kernel is
// light relative to moving the packet across PCIe twice.
constexpr double kIssuePerBlock = 300.0;

struct DesArgs {
  const std::uint64_t* in;   // packet blocks
  std::uint64_t* out;
  const TripleDesKey* key;   // lives in the workload (device-constant-like)
  std::int32_t num_blocks;   // packet size / 8
};

gpu::KernelCoro des_kernel(gpu::WarpCtx& ctx) {
  const DesArgs& a = ctx.args_as<DesArgs>();
  // The SP-table lookups form a dependency chain through the 48 rounds:
  // ~2x the issue time of the round function.
  gpu::simt::charge_elements(
      ctx, a.num_blocks, kIssuePerBlock + 2.0 * ctx.costs().global_access,
      2.0 * kIssuePerBlock);
  gpu::simt::for_each_element(ctx, a.num_blocks, [&](int b) {
    a.out[b] = triple_des_encrypt_block(a.in[b], *a.key);
  });
  co_return;
}

/// NetBench-like packet-size draw: uniform across the paper's 2 KB-64 KB
/// range (mean ~33 KB — heavy enough that encryption is copy-bound under
/// HyperQ, per Table 3's 74% characterization).
std::int64_t draw_packet_bytes(SplitMix64& rng, std::int64_t min_bytes,
                               std::int64_t max_bytes) {
  const double v = static_cast<double>(min_bytes) +
                   (static_cast<double>(max_bytes - min_bytes)) *
                       rng.next_double();
  auto bytes = static_cast<std::int64_t>(v);
  bytes = (bytes / 8) * 8;
  return std::clamp(bytes, min_bytes, max_bytes);
}

class TripleDesWorkload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "3DES",
                          .irregular = true,
                          .may_use_shared = false,
                          .needs_sync = false,
                          .default_registers = 26};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    SplitMix64 rng(cfg.seed);
    key_ = triple_des_key(rng.next(), rng.next(), rng.next());
    const auto count = static_cast<std::size_t>(cfg.num_tasks);
    std::int64_t max_bytes = kMaxPacket;
    std::int64_t min_bytes = kMinPacket;
    if (cfg.input_scale > 0) {
      min_bytes = max_bytes = (static_cast<std::int64_t>(cfg.input_scale) / 8) * 8;
    }

    sizes_.resize(count);
    std::size_t total_blocks = 0;
    for (std::size_t t = 0; t < count; ++t) {
      sizes_[t] = draw_packet_bytes(rng, min_bytes, max_bytes);
      total_blocks += static_cast<std::size_t>(sizes_[t] / 8);
    }
    const bool keep_data = cfg.mode == gpu::ExecMode::Compute;
    // Model mode runs 32K tasks x up to 64KB: skip the (gigabytes of)
    // payload and keep timing only.
    in_.assign(keep_data ? total_blocks : 0, 0);
    out_.assign(keep_data ? total_blocks : 0, 0);
    if (keep_data) {
      for (auto& b : in_) b = rng.next();
    }

    tasks_.clear();
    tasks_.reserve(count);
    std::size_t off = 0;
    for (std::size_t t = 0; t < count; ++t) {
      const auto blocks = static_cast<std::int32_t>(sizes_[t] / 8);
      DesArgs args{};
      args.in = keep_data ? in_.data() + off : nullptr;
      args.out = keep_data ? out_.data() + off : nullptr;
      args.key = &key_;
      args.num_blocks = blocks;
      off += static_cast<std::size_t>(blocks);

      TaskSpec spec;
      spec.params.fn = des_kernel;
      spec.params.threads_per_block =
          cfg.dynamic_threads
              ? dynamic_thread_count(
                    cfg.threads_per_task,
                    static_cast<double>(sizes_[t]) / (16 * 1024))
              : cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      spec.h2d_bytes = sizes_[t];
      spec.d2h_bytes = sizes_[t];
      spec.cpu_ops = static_cast<double>(blocks) * kIssuePerBlock;
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override { out_.assign(out_.size(), 0); }

  bool verify() const override {
    if (cfg_.mode != gpu::ExecMode::Compute) return true;
    for (const TaskSpec& spec : tasks_) {
      DesArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(DesArgs));
      for (std::int32_t b = 0; b < args.num_blocks; ++b) {
        // Round-trip: decrypting the ciphertext must recover the plaintext
        // (and the ciphertext must differ — catches identity "encryption").
        if (args.out[b] == args.in[b]) return false;
        if (triple_des_decrypt_block(args.out[b], key_) != args.in[b]) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  TripleDesKey key_{};
  std::vector<std::int64_t> sizes_;
  std::vector<std::uint64_t> in_;
  std::vector<std::uint64_t> out_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_triple_des() {
  return std::make_unique<TripleDesWorkload>();
}

}  // namespace pagoda::workloads
