// Mandelbrot (MB): fractal rendering, one 64x64 image per task (Table 4).
//
// Per-pixel iteration counts vary wildly — the canonical irregular narrow
// task. Each task renders a different region of the set (derived from the
// seed), so tasks have different total work.
//
// Cost model: a warp's 32 lanes diverge on escape iteration; SIMT executes
// until the slowest lane escapes, so the warp charge uses a per-32-pixel-
// group iteration budget. The budget is synthetic (hash-derived, matching
// the irregular distribution) so Model and Compute modes charge identically;
// Compute mode additionally renders the true escape counts, verified against
// the CPU reference.
#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "workloads/factories.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

constexpr int kDefaultSide = 64;
constexpr int kMaxIter = 1024;
constexpr double kOpsPerIter = 7.0;  // 2 muls, 3 adds, compare, loop

struct MbArgs {
  std::int32_t* out;       // width*height escape counts
  std::int32_t width;
  std::int32_t height;
  double center_x;
  double center_y;
  double span;
  std::uint64_t iter_seed;  // per-task synthetic-iteration stream
};

/// Synthetic iteration budget for a 32-pixel group: irregular across tasks
/// (base in [96, 992]) and across groups within a task (x0.5 .. x1.5).
double group_iters(std::uint64_t iter_seed, int group) {
  const std::uint64_t h = hash_index(iter_seed, static_cast<std::uint64_t>(group));
  const double base = 96.0 + static_cast<double>(iter_seed % 897);
  const double jitter =
      0.5 + static_cast<double>(h % 1024) / 1024.0;  // [0.5, 1.5)
  const double iters = base * jitter;
  return iters > kMaxIter ? kMaxIter : iters;
}

/// True escape count for one pixel (shared by kernel and CPU reference).
std::int32_t mandelbrot_pixel(double cx, double cy) {
  double zx = 0.0;
  double zy = 0.0;
  int iter = 0;
  while (iter < kMaxIter && zx * zx + zy * zy <= 4.0) {
    const double nzx = zx * zx - zy * zy + cx;
    zy = 2.0 * zx * zy + cy;
    zx = nzx;
    ++iter;
  }
  return iter;
}

void pixel_coords(const MbArgs& a, int px, double& cx, double& cy) {
  const int x = px % a.width;
  const int y = px / a.width;
  cx = a.center_x + a.span * (static_cast<double>(x) / a.width - 0.5);
  cy = a.center_y + a.span * (static_cast<double>(y) / a.height - 0.5);
}

gpu::KernelCoro mb_kernel(gpu::WarpCtx& ctx) {
  const MbArgs& a = ctx.args_as<MbArgs>();
  const int total_threads = ctx.threads_per_block * ctx.num_blocks;
  const int pixels = a.width * a.height;
  for (int base = ctx.warp_in_task * 32; base < pixels;
       base += total_threads) {
    const int group = base / 32;
    const double iters = group_iters(a.iter_seed, group);
    ctx.charge(iters * kOpsPerIter + ctx.costs().global_access);
    // Dependent FMA chain at ILP ~1: each iteration stalls on the previous
    // result for ~2x its issue time (Maxwell ALU latency ~6 cycles).
    ctx.charge_stall(iters * kOpsPerIter * 2.0 + ctx.costs().global_stall);
    if (ctx.compute()) {
      for (int lane = 0; lane < 32; ++lane) {
        const int px = base + lane;
        if (px >= pixels) break;
        double cx = 0.0;
        double cy = 0.0;
        pixel_coords(a, px, cx, cy);
        a.out[px] = mandelbrot_pixel(cx, cy);
      }
    }
  }
  co_return;
}

class MandelbrotWorkload final : public Workload {
 public:
  WorkloadTraits traits() const override {
    return WorkloadTraits{.name = "MB",
                          .irregular = true,
                          .may_use_shared = false,
                          .needs_sync = false,
                          .default_registers = 28};
  }

  void do_generate(const WorkloadConfig& cfg) override {
    cfg_ = cfg;
    const int side = cfg.input_scale > 0 ? cfg.input_scale : kDefaultSide;
    side_ = side;
    const int pixels = side * side;
    const auto n = static_cast<std::size_t>(cfg.num_tasks);
    outputs_.assign(n * static_cast<std::size_t>(pixels), -1);
    tasks_.clear();
    tasks_.reserve(n);
    SplitMix64 rng(cfg.seed);
    for (int t = 0; t < cfg.num_tasks; ++t) {
      MbArgs args{};
      args.out = outputs_.data() + static_cast<std::size_t>(t) * pixels;
      args.width = side;
      args.height = side;
      // Random window over an interesting band of the set.
      args.center_x = -0.7 + 0.6 * (rng.next_double() - 0.5);
      args.center_y = 0.3 * (rng.next_double() - 0.5);
      args.span = 0.02 + 0.3 * rng.next_double();
      args.iter_seed = rng.next();

      TaskSpec spec;
      spec.params.fn = mb_kernel;
      spec.params.threads_per_block = cfg.threads_per_task;
      spec.params.num_blocks = cfg.blocks_per_task;
      spec.params.set_args(args);
      spec.regs_per_thread = traits().default_registers;
      spec.h2d_bytes = 64;  // the region descriptor
      spec.d2h_bytes = static_cast<std::int64_t>(pixels) * 4;
      double ops = 0.0;
      for (int g = 0; g < (pixels + 31) / 32; ++g) {
        ops += 32.0 * group_iters(args.iter_seed, g) * kOpsPerIter;
      }
      spec.cpu_ops = ops;
      tasks_.push_back(spec);
    }
  }

  std::span<const TaskSpec> tasks() const override { return tasks_; }

  void reset_outputs() override {
    outputs_.assign(outputs_.size(), -1);
  }

  bool verify() const override {
    const int pixels = side_ * side_;
    for (const TaskSpec& spec : tasks_) {
      MbArgs args{};
      std::memcpy(&args, spec.params.args.data(), sizeof(MbArgs));
      for (int px = 0; px < pixels; ++px) {
        double cx = 0.0;
        double cy = 0.0;
        pixel_coords(args, px, cx, cy);
        if (args.out[px] != mandelbrot_pixel(cx, cy)) return false;
      }
    }
    return true;
  }

 private:
  WorkloadConfig cfg_;
  int side_ = kDefaultSide;
  std::vector<std::int32_t> outputs_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace

std::unique_ptr<Workload> make_mandelbrot() {
  return std::make_unique<MandelbrotWorkload>();
}

}  // namespace pagoda::workloads
