#include "pagoda/runtime.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace pagoda::runtime {

namespace {

// Construction-order uid. Deterministic: drivers build their runtimes
// single-threaded, in a fixed order, before the simulation runs.
std::uint64_t next_runtime_uid() {
  static std::uint64_t counter = 0;
  return ++counter;
}

}  // namespace

Runtime::Runtime(gpu::Device& dev, host::HostCosts host_costs,
                 PagodaConfig cfg)
    : dev_(dev),
      uid_(next_runtime_uid()),
      hc_(host_costs),
      cfg_(cfg),
      cpu_table_(dev.num_smms() * MasterKernel::kMtbsPerSmm,
                 cfg.rows_per_column),
      gpu_table_(dev.num_smms() * MasterKernel::kMtbsPerSmm,
                 cfg.rows_per_column),
      generation_(static_cast<std::size_t>(cpu_table_.size()), 0),
      mk_(dev, gpu_table_, cfg_),
      table_stream_(dev),
      spawn_lock_(dev.sim(), 1),
      staging_(static_cast<std::size_t>(cpu_table_.size())) {}

Runtime::~Runtime() { shutdown(); }

void Runtime::start() { mk_.start(); }

void Runtime::shutdown() { mk_.shutdown(); }

void Runtime::validate(const TaskParams& p, const gpu::GpuSpec& spec) {
  PAGODA_CHECK_MSG(p.fn != nullptr, "taskSpawn: null kernel pointer");
  PAGODA_CHECK_MSG(p.num_blocks >= 1, "taskSpawn: need at least 1 threadblock");
  PAGODA_CHECK_MSG(
      p.threads_per_block >= 1 &&
          p.threads_per_block <= spec.max_threads_per_block,
      "taskSpawn: threads per block out of range");
  PAGODA_CHECK_MSG(p.shared_mem_bytes >= 0 &&
                       p.shared_mem_bytes <=
                           MasterKernel::arena_bytes_for(spec),
                   "taskSpawn: shared memory exceeds the MTB arena");
  PAGODA_CHECK_MSG(
      !p.needs_sync ||
          p.warps_per_block() <= MasterKernel::kExecutorWarps,
      "taskSpawn: a synchronizing threadblock needs all its warps resident "
      "in one MTB (max 31 warps = 992 threads)");
  PAGODA_CHECK_MSG(p.args_size >= 0 &&
                       p.args_size <= static_cast<std::int32_t>(kMaxArgBytes),
                   "taskSpawn: argument blob too large");
  PAGODA_CHECK_MSG(
      p.shmem_used_256 == 0 || p.shmem_used_bytes() <= p.shared_mem_bytes,
      "taskSpawn: used shared memory exceeds the declared footprint");
  PAGODA_CHECK_MSG(p.shared_mem_bytes > 0 || p.shmem_used_256 == 0,
                   "taskSpawn: used-shmem hint without declared shared memory");
}

int Runtime::scan_cpu_for_free() {
  // Walk entries round-robin across *columns* first: consecutive spawns land
  // in different MTBs, so their scheduler warps work concurrently (§4.3).
  const int n = cpu_table_.size();
  const int cols = cpu_table_.columns();
  const int rows = cpu_table_.rows();
  for (int step = 0; step < n; ++step) {
    const int pos = (cursor_ + step) % n;
    const int col = pos % cols;
    const int row = pos / cols;
    const int idx = col * rows + row;
    const TaskId id = static_cast<TaskId>(idx) + kFirstTaskId;
    if (cpu_table_.by_id(id).ready == kReadyFree) {
      cursor_ = (pos + 1) % n;
      return idx;
    }
  }
  return -1;
}

sim::Task<TaskHandle> Runtime::task_spawn(TaskParams params) {
  validate(params, dev_.spec());
  PAGODA_CHECK_MSG(mk_.running(), "taskSpawn before Runtime::start()");
  // Host-side costs paid outside the critical section so spawner threads
  // overlap: entry search/fill bookkeeping plus the cudaMemcpyAsync setup
  // for the entry copy issued below.
  co_await sim().delay(hc_.task_spawn_fill + hc_.memcpy_setup);

  co_await spawn_lock_.acquire();
  int idx = scan_cpu_for_free();
  while (idx < 0) {
    // All CPU-side ready fields are non-zero: lazy aggregate copy-back
    // (§4.2, "Lazy Aggregate TaskTable Updates").
    co_await flush_last_locked();
    co_await copy_back_all_locked();
    idx = scan_cpu_for_free();
    if (idx < 0) co_await sim().delay(cfg_.wait_poll);
  }

  const TaskId id = static_cast<TaskId>(idx) + kFirstTaskId;
  TaskEntry& entry = cpu_table_.by_id(id);
  entry.params = params;
  entry.sched = 0;
  generation_[static_cast<std::size_t>(idx)] += 1;
  const std::uint64_t gen = generation_[static_cast<std::size_t>(idx)];
  stats_.tasks_spawned += 1;
  trace(TraceKind::kSpawned, id);

  if (cfg_.two_copy_spawn) {
    // §4.2.1 ablation: copy the parameters, then (stream-ordered, so the
    // parameters are guaranteed to land first) a second transaction sets
    // the task schedulable. Two memcpys per task instead of one.
    entry.ready = kReadyParamsCopied;
    co_await copy_entry_to_gpu_locked(id);
    entry.ready = kReadyScheduling;
    entry.sched = 1;
    co_await sim().delay(hc_.memcpy_setup);
    co_await copy_entry_to_gpu_locked(id);
  } else {
    entry.ready = last_spawned_.has_value() ? *last_spawned_
                                            : kReadyParamsCopied;
    last_spawned_ = id;
    co_await copy_entry_to_gpu_locked(id);
  }
  spawn_lock_.release();
  co_return TaskHandle{id, gen, uid_};
}

sim::Task<> Runtime::copy_entry_to_gpu_locked(TaskId id) {
  // One cudaMemcpyAsync per spawned task (steady state) on the spawn
  // stream; stream order is what makes the ready-field pipelining sound.
  // (The host-side setup cost is charged by the caller, outside the lock
  // where possible.) The entry is snapshotted per transaction — pageable
  // cudaMemcpyAsync staging semantics — so a later host-side update of the
  // same entry (e.g. the two-copy ablation's flag write, or a flush) cannot
  // retroactively change bytes of a copy already in flight.
  TaskEntry* dst = &gpu_table_.by_id(id);
  auto snapshot = std::make_shared<TaskEntry>(cpu_table_.by_id(id));
  table_stream_.memcpy_async(pcie::Direction::HostToDevice, dst,
                             snapshot.get(), kEntryCopyBytes,
                             [this, id, snapshot] { mk_.on_entry_copied(id); });
  stats_.entry_copies += 1;
  co_return;
}

sim::Task<> Runtime::flush_last_locked() {
  // Single attempt: read the last task's GPU state; if (-1, 0) — parameters
  // landed, not yet released — release it by writing (1, 1).
  if (!last_spawned_.has_value()) co_return;
  const TaskId id = *last_spawned_;
  co_await copy_back_entry_locked(id);
  const std::size_t idx = static_cast<std::size_t>(id - kFirstTaskId);
  if (staging_[idx].ready == kReadyParamsCopied && staging_[idx].sched == 0) {
    TaskEntry& entry = cpu_table_.by_id(id);
    entry.ready = kReadyScheduling;
    entry.sched = 1;
    last_spawned_.reset();
    stats_.flushes += 1;
    trace(TraceKind::kFlushed, id);
    co_await sim().delay(hc_.memcpy_setup);
    co_await copy_entry_to_gpu_locked(id);
  }
  // Any other state: the entry's own H2D copy has not landed yet, or a
  // successor released it already; retry on the caller's next poll.
}

sim::Task<> Runtime::copy_back_all_locked() {
  stats_.aggregate_copybacks += 1;
  const std::vector<std::uint64_t> gens = generation_;
  co_await sim().delay(hc_.memcpy_setup);
  auto trig = std::make_shared<sim::Trigger>(sim());
  table_stream_.memcpy_async(
      pcie::Direction::DeviceToHost, staging_.data(), &gpu_table_.by_id(kFirstTaskId),
      staging_.size() * sizeof(TaskEntry), [trig] { trig->fire(); });
  co_await trig->wait();
  // Apply: only transitions to Free, and only for entries the host did not
  // re-spawn into while the copy was in flight.
  for (int idx = 0; idx < cpu_table_.size(); ++idx) {
    const auto u = static_cast<std::size_t>(idx);
    if (gens[u] != generation_[u]) continue;
    TaskEntry& ce = cpu_table_.by_id(static_cast<TaskId>(idx) + kFirstTaskId);
    if (ce.ready != kReadyFree && staging_[u].ready == kReadyFree) {
      ce.ready = kReadyFree;
      trace(TraceKind::kCopyBack, static_cast<TaskId>(idx) + kFirstTaskId);
    }
  }
}

sim::Task<> Runtime::copy_back_entry_locked(TaskId id) {
  stats_.single_copybacks += 1;
  const std::size_t idx = static_cast<std::size_t>(id - kFirstTaskId);
  const std::uint64_t gen = generation_[idx];
  co_await sim().delay(hc_.memcpy_setup);
  auto trig = std::make_shared<sim::Trigger>(sim());
  table_stream_.memcpy_async(pcie::Direction::DeviceToHost, &staging_[idx],
                                &gpu_table_.by_id(id), sizeof(TaskEntry),
                                [trig] { trig->fire(); });
  co_await trig->wait();
  if (gen == generation_[idx] && staging_[idx].ready == kReadyFree) {
    TaskEntry& ce = cpu_table_.by_id(id);
    if (ce.ready != kReadyFree) {
      ce.ready = kReadyFree;
      trace(TraceKind::kCopyBack, id);
    }
  }
}

bool Runtime::is_done_cpu_view(const TaskHandle& h) const {
  PAGODA_CHECK_MSG(h.owner == uid_,
                   "TaskHandle presented to a Runtime that did not issue it");
  PAGODA_CHECK(cpu_table_.valid_id(h.id));
  const std::size_t idx = static_cast<std::size_t>(h.id - kFirstTaskId);
  // Recycled handle (a later spawn reused the entry): the original task is
  // necessarily done — the entry could only be reissued after it freed — so
  // report done WITHOUT consulting the entry, which now describes a
  // different, possibly still-running task. Cluster-level retries depend on
  // wait() never blocking on a successor's completion here.
  if (generation_[idx] != h.generation) return true;
  return cpu_table_.by_id(h.id).ready == kReadyFree;
}

bool Runtime::check(const TaskHandle& h) const { return is_done_cpu_view(h); }

sim::Task<> Runtime::wait(TaskHandle h) {
  while (true) {
    co_await sim().delay(hc_.event_query);
    if (is_done_cpu_view(h)) co_return;
    // Timeout path: flush the last task (it may be the one waited on) and
    // force a copy-back of the involved entry.
    co_await spawn_lock_.acquire();
    co_await flush_last_locked();
    co_await copy_back_entry_locked(h.id);
    spawn_lock_.release();
    if (is_done_cpu_view(h)) co_return;
    co_await sim().delay(cfg_.wait_poll);
  }
}

sim::Task<std::size_t> Runtime::wait_any(std::vector<TaskHandle> handles) {
  PAGODA_CHECK_MSG(!handles.empty(), "wait_any on an empty handle set");
  while (true) {
    co_await sim().delay(hc_.event_query);
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (is_done_cpu_view(handles[i])) co_return i;
    }
    // Timeout path, as in wait(): flush the last task and refresh the CPU
    // view of the whole table (any of the handles may have finished).
    co_await spawn_lock_.acquire();
    co_await flush_last_locked();
    co_await copy_back_all_locked();
    spawn_lock_.release();
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (is_done_cpu_view(handles[i])) co_return i;
    }
    co_await sim().delay(cfg_.wait_poll);
  }
}

sim::Task<bool> Runtime::try_revoke(TaskHandle h) {
  PAGODA_CHECK_MSG(h.owner == uid_,
                   "TaskHandle presented to a Runtime that did not issue it");
  PAGODA_CHECK(cpu_table_.valid_id(h.id));
  co_await spawn_lock_.acquire();
  const std::size_t idx = static_cast<std::size_t>(h.id - kFirstTaskId);
  if (generation_[idx] != h.generation ||
      cpu_table_.by_id(h.id).ready == kReadyFree) {
    // Recycled or already observed finished: nothing left to revoke.
    stats_.revoke_declines += 1;
    spawn_lock_.release();
    co_return false;
  }
  // The revoke rides the table stream like a spawn copy: one entry-sized
  // H2D transaction whose landing instant is where the decision is taken.
  // A scratch entry (not the live GPU slot) carries the write so a lost
  // race never clobbers a claimed task's descriptor.
  co_await sim().delay(hc_.memcpy_setup);
  const TaskId id = h.id;
  auto scratch = std::make_shared<TaskEntry>();
  auto won = std::make_shared<bool>(false);
  auto trig = std::make_shared<sim::Trigger>(sim());
  table_stream_.memcpy_async(
      pcie::Direction::HostToDevice, scratch.get(), scratch.get(),
      kEntryCopyBytes, [this, id, won, trig] {
        TaskEntry& ge = gpu_table_.by_id(id);
        const bool released_unclaimed =
            ge.ready == kReadyScheduling && ge.sched == 1;
        const bool parked_last = ge.ready == kReadyParamsCopied &&
                                 ge.sched == 0 && last_spawned_.has_value() &&
                                 *last_spawned_ == id;
        if (released_unclaimed || parked_last) {
          ge.ready = kReadyFree;
          ge.sched = 0;
          if (parked_last) last_spawned_.reset();
          *won = true;
        }
        trig->fire();
      });
  stats_.entry_copies += 1;
  co_await trig->wait();
  if (*won) {
    cpu_table_.by_id(h.id).ready = kReadyFree;
    generation_[idx] += 1;  // the revoked handle must report done, not alias
    stats_.revokes += 1;
    trace(TraceKind::kRevoked, h.id);
  } else {
    stats_.revoke_declines += 1;
  }
  spawn_lock_.release();
  co_return *won;
}

sim::Task<> Runtime::wait_all() {
  while (true) {
    co_await spawn_lock_.acquire();
    co_await flush_last_locked();
    co_await copy_back_all_locked();
    bool all_done = !last_spawned_.has_value();
    if (all_done) {
      for (int idx = 0; idx < cpu_table_.size(); ++idx) {
        if (cpu_table_.by_id(static_cast<TaskId>(idx) + kFirstTaskId).ready !=
            kReadyFree) {
          all_done = false;
          break;
        }
      }
    }
    spawn_lock_.release();
    if (all_done) co_return;
    co_await sim().delay(cfg_.wait_poll);
  }
}

}  // namespace pagoda::runtime
