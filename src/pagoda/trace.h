// Runtime tracing: a per-task event timeline recorded from the host and
// GPU sides of the Pagoda runtime.
//
// Tracing serves two purposes in this repository: observability for users
// of the runtime (the pagoda_cli tool dumps timelines as CSV), and
// verification — the protocol's per-task lifecycle
//
//   Spawned -> EntryCopied -> Released -> Scheduled -> Completed
//
// is a strict temporal order that tests assert over randomized runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/time_types.h"
#include "pagoda/task_table.h"

namespace pagoda::runtime {

enum class TraceKind : std::uint8_t {
  kSpawned,       // host: taskSpawn filled a TaskTable entry
  kEntryCopied,   // the entry's H2D copy landed on the GPU
  kReleased,      // scheduler warp set the entry to (1,1) via the chain,
                  // or the host flushed it
  kScheduled,     // scheduler warp claimed the sched flag (Algo 1 line 14)
  kWarpDispatched,  // pSched placed one warp (aux = executor slot)
  kCompleted,     // last warp cleared the ready field
  kCopyBack,      // host copy-back observed the entry free
  kFlushed,       // host flush released the last task
  kRevoked,       // host revoked a spawned-but-unclaimed entry (migration)
};

std::string_view trace_kind_name(TraceKind kind);

struct TraceEvent {
  sim::Time time = 0;
  TraceKind kind = TraceKind::kSpawned;
  TaskId task = 0;
  std::int32_t aux = 0;  // kind-specific (e.g. executor slot, MTB column)
};

/// Append-only event sink. Not thread-safe (the simulator is
/// single-threaded); cheap enough to leave enabled for moderate task counts.
class TraceRecorder {
 public:
  void record(sim::Time time, TraceKind kind, TaskId task,
              std::int32_t aux = 0) {
    events_.push_back(TraceEvent{time, kind, task, aux});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one task, in record order.
  std::vector<TraceEvent> for_task(TaskId task) const;

  /// CSV dump: time_us,kind,task,aux
  void write_csv(std::ostream& os) const;

  /// Chrome trace-event JSON (open in chrome://tracing or Perfetto):
  /// each task becomes a duration slice from spawn to completion on a
  /// per-MTB-column row, with instant events for the protocol steps.
  void write_chrome_trace(std::ostream& os) const;

  /// Per-task lifecycle summary: spawn-to-completion and phase breakdown.
  /// Optional phases (warp dispatch, flush, copy-back) are -1 when the
  /// corresponding event was not recorded for this task instance.
  struct TaskTimeline {
    TaskId task = 0;
    sim::Time spawned = -1;
    sim::Time entry_copied = -1;
    sim::Time released = -1;
    sim::Time scheduled = -1;
    sim::Time completed = -1;
    sim::Time first_warp_dispatch = -1;  // first pSched placement
    sim::Time last_warp_dispatch = -1;   // last pSched placement
    sim::Time flushed = -1;     // host flush released this task (not chain)
    sim::Time copy_back = -1;   // host copy-back first observed entry free
    int warps_dispatched = 0;   // pSched placements recorded for this task
    bool complete() const {
      return spawned >= 0 && entry_copied >= 0 && released >= 0 &&
             scheduled >= 0 && completed >= 0;
    }
    bool was_flushed() const { return flushed >= 0; }
    bool ordered() const {
      if (!(spawned <= entry_copied && entry_copied <= released &&
            released <= scheduled && scheduled <= completed)) {
        return false;
      }
      // Warp dispatch happens while the entry is claimed by the scheduler.
      if (first_warp_dispatch >= 0 &&
          !(scheduled <= first_warp_dispatch &&
            first_warp_dispatch <= last_warp_dispatch &&
            last_warp_dispatch <= completed)) {
        return false;
      }
      // A flush can only release an entry the GPU already holds.
      if (flushed >= 0 && !(entry_copied <= flushed && flushed <= scheduled)) {
        return false;
      }
      // The host can observe the entry free only after the GPU freed it.
      if (copy_back >= 0 && !(completed <= copy_back)) return false;
      return true;
    }
  };

  /// Builds timelines for every spawned task instance, in spawn order.
  /// (A recycled TaskTable entry produces a new timeline per generation.)
  std::vector<TaskTimeline> timelines() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace pagoda::runtime
