// The Pagoda runtime: public host-side API (paper Table 1) plus the
// CPU half of the TaskTable spawning protocol (§4.2).
//
//   CUDA                       Pagoda (this API)
//   kernel<<<...>>>            task_spawn(params)        -> TaskHandle
//   cudaEventSynchronize       wait(handle)
//   cudaEventQuery             check(handle)
//   cudaDeviceSynchronize      wait_all()
//   threadIdx                  WarpCtx::tid(lane)     (GPU side)
//   __syncthreads              co_await ctx.sync_block()
//   __shared__                 ctx.shared_mem / getSMPtr
//
// Host-side protocol highlights, all per the paper:
//  * task_spawn finds a CPU TaskTable entry with a cleared ready field,
//    fills the parameters, writes ready = (id of the previously spawned
//    task, or -1 for the first), clears sched, and issues exactly ONE H2D
//    entry copy on the spawn stream. The previous task is thereby released
//    for scheduling only after its parameters are guaranteed complete
//    (stream ordering), sidestepping PCIe's lack of intra-transaction write
//    ordering.
//  * When no free entry exists, the CPU performs a lazy *aggregate*
//    copy-back of the whole GPU table (one bulk D2H — much better PCIe
//    efficiency than per-entry reads) to discover finished tasks.
//  * wait/wait_all poll with a timeout, forcing entry copy-backs, and flush
//    the last spawned task (set its state to (1,1)) so the final task is
//    never stranded.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gpu/device.h"
#include "gpu/stream.h"
#include "host/host_api.h"
#include "pagoda/master_kernel.h"
#include "pagoda/task_table.h"
#include "sim/task.h"

namespace pagoda::runtime {

/// Handle returned by task_spawn. The generation disambiguates recycled
/// TaskTable entries and the owner uid pins the handle to the Runtime that
/// issued it (host-side bookkeeping only; the wire protocol is unchanged
/// from the paper). A handle whose entry has been recycled reports done —
/// it never aliases the later task now occupying the entry — and a handle
/// presented to a different Runtime (a multi-GPU routing bug) aborts.
struct TaskHandle {
  TaskId id = 0;
  std::uint64_t generation = 0;
  std::uint64_t owner = 0;
  bool valid() const { return id >= kFirstTaskId; }
};

class Runtime {
 public:
  struct Stats {
    std::int64_t tasks_spawned = 0;
    std::int64_t entry_copies = 0;      // H2D, one per task in steady state
    std::int64_t aggregate_copybacks = 0;
    std::int64_t single_copybacks = 0;
    std::int64_t flushes = 0;
    std::int64_t revokes = 0;          // try_revoke won the race
    std::int64_t revoke_declines = 0;  // task claimed/chained/finished first
  };

  Runtime(gpu::Device& dev, host::HostCosts host_costs = {},
          PagodaConfig cfg = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Launches the MasterKernel (acquires the whole GPU).
  void start();
  /// Terminates the MasterKernel and releases the GPU.
  void shutdown();

  // --- Table 1: CPU-side API ---------------------------------------------
  /// Spawns a task; non-blocking w.r.t. task execution, but may wait for a
  /// free TaskTable entry when all are busy. Call from a host Process:
  /// `TaskHandle h = co_await rt.task_spawn(params);`
  sim::Task<TaskHandle> task_spawn(TaskParams params);

  /// Waits until the given task has finished.
  sim::Task<> wait(TaskHandle h);

  /// Returns the task's status from the CPU-side view (may lag the GPU until
  /// the next copy-back — the paper's check has the same semantics).
  bool check(const TaskHandle& h) const;

  /// Waits until every spawned task has finished.
  sim::Task<> wait_all();

  /// Extension beyond the paper's Table 1: waits until at least one of the
  /// given tasks has finished; returns the index of a finished handle.
  /// Useful for work-stealing host loops over heterogeneous task groups.
  sim::Task<std::size_t> wait_any(std::vector<TaskHandle> handles);

  /// Extension for live migration: attempts to pull a spawned task back off
  /// the GPU before any scheduler warp claims it. Issues ONE entry-sized H2D
  /// transaction on the table stream; stream ordering guarantees that by its
  /// landing instant every earlier spawn copy (this entry's own, and any
  /// successor's release pointer) has landed, so the GPU-side state examined
  /// there is current. The entry is freed — true — only when it is
  ///   (ready==1, sched==1)  released but unclaimed (its predecessor-release
  ///                         pointer, if any, was already consumed), or
  ///   (ready==-1, sched==0) parameters landed, not yet released, AND it is
  ///                         still last_spawned_ (no successor names it; the
  ///                         host forgets it so a flush cannot resurrect it).
  /// Every other state declines — false — and the task runs to completion:
  /// claimed entries are executing, a ready>1 entry anchors a pending
  /// release chain, and a free entry already finished. A successful revoke
  /// bumps the entry's generation, so the original handle reports done.
  sim::Task<bool> try_revoke(TaskHandle h);

  const Stats& stats() const { return stats_; }
  const MasterKernel& master_kernel() const { return mk_; }

  /// Instrumentation: invoked at GPU-side completion of every task.
  void set_completion_observer(MasterKernel::CompletionObserver obs) {
    mk_.set_completion_observer(std::move(obs));
  }

  /// Instrumentation: invoked when a scheduler warp claims a task.
  void set_claim_observer(MasterKernel::ClaimObserver obs) {
    mk_.set_claim_observer(std::move(obs));
  }

  /// Instrumentation: invoked after every vres spill/reclaim transfer
  /// (oversub > 1 only; never fires at oversub == 1).
  void set_vres_observer(MasterKernel::VresObserver obs) {
    mk_.set_vres_observer(std::move(obs));
  }

  /// Optional event tracing (host + GPU sides). Owned by the caller; must
  /// outlive the Runtime. nullptr disables tracing.
  void set_trace_recorder(TraceRecorder* trace) {
    trace_ = trace;
    mk_.set_trace_recorder(trace);
  }
  gpu::Device& device() { return dev_; }
  /// Identity stamped into every TaskHandle this Runtime issues; wait/check
  /// abort on a handle carrying a different uid.
  std::uint64_t uid() const { return uid_; }
  const PagodaConfig& config() const { return cfg_; }
  /// Physical TaskTable capacity (entries). Layers above src/pagoda reason
  /// about capacity through this (or a virtual scaling of it) rather than
  /// reading the table structure directly.
  int table_capacity() const { return cpu_table_.size(); }
  const TaskTable& cpu_table() const { return cpu_table_; }
  /// GPU-side mirror of the TaskTable (observability: per-state occupancy
  /// and spawn-pipeline depth are read from here, never written).
  const TaskTable& gpu_table() const { return gpu_table_; }

  /// Validation used by task_spawn; exposed for tests.
  static void validate(const TaskParams& p, const gpu::GpuSpec& spec);

 private:
  sim::Simulation& sim() { return dev_.sim(); }
  int scan_cpu_for_free();
  bool is_done_cpu_view(const TaskHandle& h) const;

  // All *_locked members require spawn_lock_ held.
  sim::Task<> flush_last_locked();
  sim::Task<> copy_back_all_locked();
  sim::Task<> copy_back_entry_locked(TaskId id);
  sim::Task<> copy_entry_to_gpu_locked(TaskId id);

  gpu::Device& dev_;
  std::uint64_t uid_;
  host::HostCosts hc_;
  PagodaConfig cfg_;
  TaskTable cpu_table_;
  TaskTable gpu_table_;
  std::vector<std::uint64_t> generation_;
  MasterKernel mk_;
  /// All TaskTable traffic (H2D entry copies AND D2H status copy-backs)
  /// rides one stream. Stream ordering is load-bearing twice over: (a) a
  /// task's predecessor-release pointer is only valid because the
  /// predecessor's copy completed earlier on the stream, and (b) a status
  /// copy-back executes only after every previously issued spawn copy has
  /// landed — otherwise the CPU could read a stale ready==0 for a task whose
  /// spawn copy is still in flight and wrongly free its entry.
  gpu::Stream table_stream_;
  sim::Semaphore spawn_lock_;    // serializes spawner/waiter critical sections
  std::optional<TaskId> last_spawned_;  // task awaiting release by successor
  int cursor_ = 0;
  Stats stats_;
  TraceRecorder* trace_ = nullptr;

  void trace(TraceKind kind, TaskId task, std::int32_t aux = 0) {
    if (trace_ != nullptr) trace_->record(sim().now(), kind, task, aux);
  }
  std::vector<TaskEntry> staging_;  // D2H landing area for copy-backs
};

}  // namespace pagoda::runtime
