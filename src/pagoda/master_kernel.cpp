#include "pagoda/master_kernel.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/check.h"

namespace pagoda::runtime {

std::int32_t MasterKernel::arena_bytes_for(const gpu::GpuSpec& spec) {
  const auto third =
      static_cast<std::uint32_t>(spec.shared_mem_per_smm / 3);
  return static_cast<std::int32_t>(std::bit_floor(third));
}

MasterKernel::MasterKernel(gpu::Device& dev, TaskTable& gpu_table,
                           const PagodaConfig& cfg)
    : dev_(dev),
      gpu_table_(gpu_table),
      cfg_(cfg),
      arena_bytes_(arena_bytes_for(dev.spec())) {
  PAGODA_CHECK_MSG(gpu_table.columns() ==
                       dev.num_smms() * kMtbsPerSmm,
                   "TaskTable must have one column per MTB");
}

MasterKernel::~MasterKernel() {
  if (running_) shutdown();
}

sim::Duration MasterKernel::stall_to_time(double cycles) const {
  return static_cast<sim::Duration>(cycles * 1e12 / dev_.spec().clock_hz);
}

sim::Duration MasterKernel::vres_xfer_time(std::int64_t bytes) const {
  return static_cast<sim::Duration>(static_cast<double>(bytes) * 1e12 /
                                    (cfg_.vres_spill_gbps * 1e9));
}

void MasterKernel::touch_busy(Mtb& mtb, int delta) {
  const sim::Time now = dev_.sim().now();
  busy_integral_ += static_cast<double>(busy_warps_) *
                    sim::to_seconds(now - busy_last_touch_);
  busy_last_touch_ = now;
  busy_warps_ += delta;
  mtb.busy_integral += static_cast<double>(mtb.busy_warps) *
                       sim::to_seconds(now - mtb.busy_last_touch);
  mtb.busy_last_touch = now;
  mtb.busy_warps += delta;
}

double MasterKernel::executor_busy_warp_seconds() const {
  const sim::Time now = dev_.sim().now();
  return busy_integral_ + static_cast<double>(busy_warps_) *
                              sim::to_seconds(now - busy_last_touch_);
}

double MasterKernel::executor_busy_warp_seconds(int mtb_index) const {
  PAGODA_CHECK(mtb_index >= 0 &&
               mtb_index < static_cast<int>(mtbs_.size()));
  const Mtb& mtb = *mtbs_[static_cast<std::size_t>(mtb_index)];
  const sim::Time now = dev_.sim().now();
  return mtb.busy_integral + static_cast<double>(mtb.busy_warps) *
                                 sim::to_seconds(now - mtb.busy_last_touch);
}

sim::Task<> MasterKernel::sched_charge(Mtb& mtb, double cycles) {
  sched_cycles_ += cycles;
  co_await mtb.smm->execute(cycles);
}

double MasterKernel::scheduler_busy_seconds() const {
  return sched_cycles_ / dev_.spec().clock_hz;
}

int MasterKernel::free_executor_slots() const {
  int n = 0;
  for (const auto& mtb : mtbs_) n += mtb->free_slots;
  return n;
}

std::int64_t MasterKernel::shmem_bytes_in_use() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.allocated_bytes();
  return n;
}

std::int32_t MasterKernel::shmem_peak_arena_bytes() const {
  std::int32_t peak = 0;
  for (const auto& mtb : mtbs_) {
    peak = std::max(peak, mtb->shmem.peak_allocated_bytes());
  }
  return peak;
}

std::int64_t MasterKernel::shmem_alloc_successes() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.alloc_successes();
  return n;
}

std::int64_t MasterKernel::shmem_alloc_failures() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.alloc_failures();
  return n;
}

std::int64_t MasterKernel::shmem_sweeps() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.sweeps();
  return n;
}

double MasterKernel::shmem_external_frag() const {
  double worst = 1.0;
  for (const auto& mtb : mtbs_) {
    worst = std::min(worst, mtb->shmem.physical().external_fragmentation());
  }
  return worst;
}

std::int64_t MasterKernel::shmem_internal_frag_bytes() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) {
    n += mtb->shmem.physical().internal_frag_bytes();
  }
  return n;
}

std::int64_t MasterKernel::vres_spills() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.spills();
  return n;
}

std::int64_t MasterKernel::vres_reclaims() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.reclaims();
  return n;
}

std::int64_t MasterKernel::vres_spill_bytes() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.spill_bytes_total();
  return n;
}

std::int64_t MasterKernel::vres_reclaim_bytes() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.reclaim_bytes_total();
  return n;
}

std::int64_t MasterKernel::vres_virtual_bytes_in_use() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.virtual_bytes_in_use();
  return n;
}

std::int64_t MasterKernel::vres_spilled_bytes_in_use() const {
  std::int64_t n = 0;
  for (const auto& mtb : mtbs_) n += mtb->shmem.spilled_bytes_in_use();
  return n;
}

void MasterKernel::start() {
  PAGODA_CHECK_MSG(!started_, "MasterKernel started twice");
  started_ = true;
  running_ = true;
  const gpu::BlockFootprint mtb_footprint =
      gpu::BlockFootprint::of(/*threads_per_block=*/kWarpsPerMtb * 32,
                              /*regs_per_thread=*/32, arena_bytes_);
  const int num_mtbs = dev_.num_smms() * kMtbsPerSmm;
  mtbs_.reserve(static_cast<std::size_t>(num_mtbs));
  // Virtual register budget per MTB: oversub x this MTB's share of the
  // SMM register file (passive at oversub == 1 — never charged).
  const auto reg_share =
      static_cast<std::int64_t>(dev_.spec().registers_per_smm) / kMtbsPerSmm;
  const std::int64_t reg_virtual = static_cast<std::int64_t>(
      static_cast<double>(reg_share) * cfg_.oversub);
  for (int m = 0; m < num_mtbs; ++m) {
    auto mtb = std::make_unique<Mtb>(dev_.sim(), cfg_.rows_per_column,
                                     arena_bytes_, cfg_, reg_virtual);
    mtb->index = m;
    mtb->column = m;
    mtb->smm = &dev_.smm(m / kMtbsPerSmm);
    PAGODA_CHECK_MSG(mtb->smm->can_fit(mtb_footprint),
                     "GPU cannot host the MasterKernel (resources busy?)");
    mtb->smm->reserve(mtb_footprint);
    mtbs_.push_back(std::move(mtb));
  }
  for (auto& mtb : mtbs_) {
    dev_.sim().spawn(scheduler_warp(*mtb));
    for (int s = 0; s < kExecutorWarps; ++s) {
      dev_.sim().spawn(executor_warp(*mtb, s));
    }
  }
}

void MasterKernel::shutdown() {
  if (!running_) return;
  running_ = false;
  const gpu::BlockFootprint mtb_footprint =
      gpu::BlockFootprint::of(kWarpsPerMtb * 32, 32, arena_bytes_);
  for (auto& mtb : mtbs_) {
    // Leave parked warps parked: with running_ false nothing re-arms them,
    // and the Condition destructors reclaim the suspended frames. Notifying
    // here instead would move the handles into resume events that never run
    // (drivers shut down after the event queue has drained), leaking every
    // warp frame.
    mtb->smm->release(mtb_footprint);
  }
}

void MasterKernel::on_entry_copied(TaskId id) {
  if (!running_) return;
  trace(TraceKind::kEntryCopied, id);
  wake_scheduler(mtb_of_column(gpu_table_.column_of(id)));
  if (const auto it = waiting_successor_column_.find(id);
      it != waiting_successor_column_.end()) {
    const int col = it->second;
    waiting_successor_column_.erase(it);
    wake_scheduler(mtb_of_column(col));
  }
}

// --- scheduler warp (Algorithm 1, lines 2-28) -------------------------------

sim::Process MasterKernel::scheduler_warp(Mtb& mtb) {
  while (running_) {
    const std::uint64_t seq = mtb.sched_seq;
    heartbeats_ += 1;
    const bool progress = co_await scan_once(mtb);
    if (!running_) break;
    if (!progress && mtb.sched_seq == seq) {
      co_await mtb.sched_cv.wait();
    }
  }
}

sim::Task<bool> MasterKernel::scan_once(Mtb& mtb) {
  bool progress = false;
  // Cost of one pass over the column: the scheduler warp's 32 threads scan
  // the 32 rows in parallel.
  co_await sched_charge(mtb, cfg_.scan_pass_cycles);
  for (int row = 0; row < cfg_.rows_per_column && running_; ++row) {
    TaskEntry& entry = gpu_table_.at(mtb.column, row);

    // Lines 5-13: a ready field holding a taskId releases the *previous*
    // task — its parameters are known complete because its copy transaction
    // preceded this entry's on the stream.
    if (entry.ready > kReadyScheduling) {
      const TaskId prev_id = entry.ready;
      TaskEntry& prev = gpu_table_.by_id(prev_id);
      if (prev.ready == kReadyParamsCopied) {
        co_await sched_charge(mtb, cfg_.release_chain_cycles);
        prev.ready = kReadyScheduling;
        prev.sched = 1;
        entry.ready = kReadyParamsCopied;
        entry.sched = 0;
        trace(TraceKind::kReleased, prev_id, mtb.column);
        // prev may live in another MTB's column: wake its scheduler warp.
        wake_scheduler(mtb_of_column(gpu_table_.column_of(prev_id)));
        // This entry just reached (-1, 0); its own successor (if already
        // copied) can now be processed.
        const TaskId my_id = gpu_table_.id_of(mtb.column, row);
        if (const auto it = waiting_successor_column_.find(my_id);
            it != waiting_successor_column_.end()) {
          const int col = it->second;
          waiting_successor_column_.erase(it);
          wake_scheduler(mtb_of_column(col));
        }
        progress = true;
      } else {
        // The previous task is not yet in (-1, 0): the paper's polling
        // scheduler retries (threadfence + continue); register for a wake
        // when it transitions.
        waiting_successor_column_[prev_id] = mtb.column;
      }
    }

    // Lines 14-28: claim an entry whose sched flag is set. Under fifo the
    // claim happens here, inline, in raw row-scan order — the paper's
    // behavior, preserved byte-for-byte. Other policies only collect the
    // claimable rows; the ordered claim pass below decides the order.
    if (entry.sched == 1) {
      if (mtb.claim_policy.fifo()) {
        entry.sched = 0;
        trace(TraceKind::kScheduled, gpu_table_.id_of(mtb.column, row),
              mtb.column);
        if (claim_observer_) {
          claim_observer_(gpu_table_.id_of(mtb.column, row), dev_.sim().now());
        }
        co_await schedule_entry(mtb, row);
        progress = true;
      } else {
        mtb.claim_rows.push_back(row);
      }
    }
  }
  if (!mtb.claim_rows.empty()) {
    const bool claimed = co_await claim_in_policy_order(mtb);
    progress = progress || claimed;
  }
  co_return progress;
}

sched::SchedKey MasterKernel::claim_key(const Mtb& mtb, int row) const {
  const TaskParams& p = gpu_table_.at(mtb.column, row).params;
  sched::SchedKey key;
  key.cls = sched::class_from_raw(p.sched_class);
  key.deadline = sched::deadline_from_us(p.deadline_us);
  key.cost = static_cast<double>(p.warps_total());
  // Row index stands in for arrival sequence: ties reproduce raw scan order.
  key.seq = static_cast<std::uint64_t>(row);
  return key;
}

// The non-fifo claim path: order this pass's claimable rows through the
// policy comparator, then claim them one by one. schedule_entry may block
// (pSched waits for executor warps), during which an entry can be resolved
// by a release chain on another warp — hence the sched == 1 re-check per
// claim. The selection itself is charged claim_select_cycles once per pass,
// identically in Model and Compute modes, so timing stays mode-independent.
sim::Task<bool> MasterKernel::claim_in_policy_order(Mtb& mtb) {
  co_await sched_charge(mtb, cfg_.claim_select_cycles);
  std::vector<sched::SchedKey> keys;
  keys.reserve(mtb.claim_rows.size());
  for (const int row : mtb.claim_rows) keys.push_back(claim_key(mtb, row));
  const std::vector<int> order = mtb.claim_policy.order(keys);
  std::vector<int> rows;
  rows.swap(mtb.claim_rows);
  bool progress = false;
  for (const int i : order) {
    if (!running_) break;
    const int row = rows[static_cast<std::size_t>(i)];
    TaskEntry& entry = gpu_table_.at(mtb.column, row);
    if (entry.sched != 1) continue;  // resolved while a prior claim awaited
    entry.sched = 0;
    mtb.claim_policy.served(keys[static_cast<std::size_t>(i)]);
    trace(TraceKind::kScheduled, gpu_table_.id_of(mtb.column, row),
          mtb.column);
    if (claim_observer_) {
      claim_observer_(gpu_table_.id_of(mtb.column, row), dev_.sim().now());
    }
    co_await schedule_entry(mtb, row);
    progress = true;
  }
  co_return progress;
}

sim::Task<> MasterKernel::schedule_entry(Mtb& mtb, int row) {
  TaskEntry& entry = gpu_table_.at(mtb.column, row);
  const TaskParams& p = entry.params;
  PAGODA_CHECK_MSG(p.fn != nullptr, "scheduling an entry without a kernel");
  mtb.done_ctr[static_cast<std::size_t>(row)] = p.warps_total();
  tasks_scheduled_ += 1;

  if (cfg_.oversub > 1.0) {
    // Virtual register admission: claims defer (wait, never spill) while
    // the oversubscribed budget is exhausted; freed at task completion.
    const std::int64_t reg_need =
        static_cast<std::int64_t>(p.regs_used_per_thread()) *
        p.threads_per_block * p.num_blocks;
    while (running_ && !mtb.regs.fits_virtual(reg_need)) {
      const std::uint64_t seq = mtb.sched_seq;
      if (mtb.sched_seq == seq) co_await mtb.sched_cv.wait();
    }
    if (!running_) co_return;
    mtb.regs.allocate_resident(reg_need);
  }

  if (p.shared_mem_bytes > 0 || p.needs_sync) {
    // Lines 17-26: per-threadblock scheduling with barrier/shared-memory
    // leases.
    for (int j = 0; j < p.num_blocks && running_; ++j) {
      auto block = std::make_shared<BlockState>();
      block->warps_remaining = p.warps_per_block();
      if (p.needs_sync) {
        // getBarId(): lease a named barrier, waiting for one to recycle if
        // all 16 are in use.
        while (running_ && !mtb.barriers.has_free()) {
          const std::uint64_t seq = mtb.sched_seq;
          if (mtb.sched_seq == seq) co_await mtb.sched_cv.wait();
        }
        if (!running_) co_return;
        block->bar_id = mtb.barriers.acquire(p.warps_per_block());
        co_await sched_charge(mtb, cfg_.barrier_mgmt_cycles);
      }
      if (p.shared_mem_bytes > 0) {
        // Lines 20-24: sweep deferred deallocations, then try to allocate;
        // block until a marked region frees enough space.
        while (running_) {
          if (mtb.shmem.has_deferred()) {
            shmem_blocks_swept_ += mtb.shmem.sweep_deferred();
            co_await sched_charge(mtb, cfg_.shmem_sweep_cycles);
          }
          const std::uint64_t seq = mtb.sched_seq;
          const auto res =
              mtb.shmem.allocate(p.shared_mem_bytes, p.shmem_used_bytes());
          co_await sched_charge(mtb, cfg_.shmem_alloc_cycles);
          if (res.has_value()) {
            if (res->spilled_bytes > 0) {
              // Cold victims were evicted to the backing store to make room:
              // the PCIe-rate transfer is charged to the incoming task (the
              // trigger), bracketed for the tracer's vres_spill phase.
              const sim::Time spill_start = dev_.sim().now();
              co_await dev_.sim().delay(vres_xfer_time(res->spilled_bytes));
              if (vres_observer_) {
                vres_observer_(gpu_table_.id_of(mtb.column, row), spill_start,
                               dev_.sim().now(), /*spill=*/true);
              }
            }
            block->sm_offset = res->offset;
            block->sm_bytes = p.shared_mem_bytes;
            block->vid = res->vid;
            break;
          }
          if (!mtb.shmem.has_deferred() && mtb.sched_seq == seq) {
            co_await mtb.sched_cv.wait();
          }
        }
        if (!running_) co_return;
      }
      co_await psched(mtb, row, j * p.warps_per_block(), p.warps_per_block(),
                      block);
    }
  } else {
    // Line 28: no leases needed; place all warps of the task as slots free.
    co_await psched(mtb, row, 0, p.warps_total(), nullptr);
  }
}

sim::Task<> MasterKernel::psched(Mtb& mtb, int row, int base_warp, int count,
                                 std::shared_ptr<BlockState> block) {
  int scheduled = 0;
  while (scheduled < count && running_) {
    const std::uint64_t seq = mtb.sched_seq;
    // §6.4 ablation: CUDA-style threadblock-granularity dispatch waits for
    // the whole block's worth of free executor warps before placing any.
    // (Tasks wider than one MTB's 31 executors stream in MTB-sized groups —
    // waiting for more slots than exist would deadlock.)
    const int group = std::min(count - scheduled, kExecutorWarps);
    if (cfg_.threadblock_granularity && mtb.free_slots < group) {
      if (mtb.sched_seq == seq) co_await mtb.sched_cv.wait();
      continue;
    }
    int placed = 0;
    for (int s = 0; s < kExecutorWarps && scheduled < count; ++s) {
      WarpSlot& slot = mtb.warp_table[static_cast<std::size_t>(s)];
      if (slot.exec) continue;
      slot.warp_id = base_warp + scheduled;
      slot.entry_row = row;
      slot.sm_index = block ? block->sm_offset : -1;
      slot.bar_id = block ? block->bar_id : -1;
      slot.block = block;
      slot.exec = true;  // set last: the executor reads fields after this
      mtb.free_slots -= 1;
      scheduled += 1;
      placed += 1;
      trace(TraceKind::kWarpDispatched, gpu_table_.id_of(mtb.column, row), s);
    }
    if (placed > 0) {
      warps_dispatched_ += placed;
      co_await sched_charge(mtb, cfg_.dispatch_cycles_per_warp * placed);
      mtb.exec_cv.notify_all();
      continue;
    }
    // No free executor warps: block until one frees (Algorithm 2's outer
    // while loop — the scheduler warp is busy on this task meanwhile).
    if (mtb.sched_seq == seq) co_await mtb.sched_cv.wait();
  }
}

sim::Task<> MasterKernel::ensure_resident(Mtb& mtb, WarpSlot& slot) {
  while (running_) {
    const std::uint64_t seq = mtb.sched_seq;
    const auto t = mtb.shmem.touch(slot.block->vid);
    if (t.has_value()) {
      if (t->swept > 0) {
        // The reclaim swept deferred marks to make room. Executor-side
        // sweeping deviates from the paper's scheduler-warp-only discipline;
        // it is race-free here because simulation events are atomic, and the
        // cycles are charged to this warp's own pipeline (DESIGN.md §16).
        shmem_blocks_swept_ += t->swept;
        co_await mtb.smm->execute(cfg_.shmem_sweep_cycles);
        wake_scheduler(mtb);  // freed virtual capacity: let claims retry
      }
      if (t->reclaimed || t->spilled_bytes > 0) {
        const sim::Time start = dev_.sim().now();
        co_await dev_.sim().delay(
            vres_xfer_time(t->reclaimed_bytes + t->spilled_bytes));
        if (vres_observer_) {
          vres_observer_(gpu_table_.id_of(mtb.column, slot.entry_row), start,
                         dev_.sim().now(), /*spill=*/!t->reclaimed);
        }
      }
      slot.sm_index = t->offset;
      slot.block->sm_offset = t->offset;
      co_return;
    }
    // No physical room and every resident block is pinned (executing):
    // wait for a completion to free capacity, then retry.
    if (mtb.sched_seq == seq) co_await mtb.sched_cv.wait();
  }
}

// --- executor warps (Algorithm 1, lines 29-43) -------------------------------

sim::Process MasterKernel::executor_warp(Mtb& mtb, int slot_index) {
  WarpSlot& slot = mtb.warp_table[static_cast<std::size_t>(slot_index)];
  while (running_) {
    if (!slot.exec) {
      co_await mtb.exec_cv.wait();
      continue;
    }
    TaskEntry& entry = gpu_table_.at(mtb.column, slot.entry_row);
    const TaskParams& p = entry.params;
    if (cfg_.oversub > 1.0 && slot.block && slot.block->sm_bytes > 0) {
      // Reclaim-on-touch: pins the block (it can no longer spill until its
      // deferred-deallocation mark) and pulls it back from the backing
      // store if a colder allocation's pressure evicted it. Runs before
      // touch_busy so reclaim waits never inflate the occupancy integral.
      co_await ensure_resident(mtb, slot);
      if (!running_) break;
    }
    touch_busy(mtb, +1);

    gpu::WarpCtx ctx;
    ctx.warp_in_task = slot.warp_id;
    ctx.block_index = slot.warp_id / p.warps_per_block();
    ctx.warp_in_block = slot.warp_id % p.warps_per_block();
    ctx.threads_per_block = p.threads_per_block;
    ctx.num_blocks = p.num_blocks;
    ctx.mode = cfg_.mode;
    ctx.set_costs(cfg_.costs);
    ctx.args = p.args.data();
    if (slot.sm_index >= 0 && slot.block && slot.block->sm_bytes > 0) {
      ctx.shared_mem = std::span<std::byte>(
          mtb.arena.data() + slot.sm_index,
          static_cast<std::size_t>(slot.block->sm_bytes));
    }

    // Line 33: the warp executes the task kernel as a subroutine.
    gpu::KernelCoro coro = p.fn(ctx);
    while (true) {
      const gpu::SegmentResult seg = gpu::run_segment(coro, ctx);
      if (seg.stall_cycles > 0.0) {
        // Stalls are counted in cycles, so a DVFS-scaled clock stretches
        // them too (divide by 1.0 is exact when the power plane is off).
        co_await dev_.sim().delay(
            stall_to_time(seg.stall_cycles / mtb.smm->clock_scale()));
      }
      if (seg.cycles > 0.0) co_await mtb.smm->execute(seg.cycles);
      if (!seg.at_barrier) break;
      PAGODA_CHECK_MSG(slot.bar_id >= 0,
                       "syncBlock() in a task spawned without the sync flag");
      co_await mtb.barriers.barrier(slot.bar_id).arrive_and_wait();
    }

    // Lines 34-43: completion bookkeeping.
    std::shared_ptr<BlockState> block = std::move(slot.block);
    if (block != nullptr) {
      block->warps_remaining -= 1;
      if (block->warps_remaining == 0) {  // lastWarpInBlock()
        if (block->sm_offset >= 0) {
          mtb.shmem.mark_for_deallocation(block->sm_offset, block->vid);
        }
        if (block->bar_id >= 0) {
          mtb.barriers.release(block->bar_id);
        }
      }
    }
    const int row = slot.entry_row;
    mtb.done_ctr[static_cast<std::size_t>(row)] -= 1;
    PAGODA_CHECK(mtb.done_ctr[static_cast<std::size_t>(row)] >= 0);
    if (mtb.done_ctr[static_cast<std::size_t>(row)] == 0) {
      if (cfg_.oversub > 1.0) {
        mtb.regs.free_resident(
            static_cast<std::int64_t>(p.regs_used_per_thread()) *
            p.threads_per_block * p.num_blocks);
      }
      entry.ready = kReadyFree;  // frees the entry; the CPU learns lazily
      tasks_completed_ += 1;
      heartbeats_ += 1;
      trace(TraceKind::kCompleted, gpu_table_.id_of(mtb.column, row),
            mtb.column);
      if (completion_observer_) {
        // The observer mutates host-side (dispatcher) state. Under the
        // sharded worker pool this executor event runs on the node's shard,
        // so the call crosses shards through the typed channel: sequential
        // modes invoke it synchronously (the historical behavior,
        // byte-identical), parallel windows post it to the host shard in
        // deterministic merge order.
        const runtime::TaskId done_id = gpu_table_.id_of(mtb.column, row);
        const sim::Time done_at = dev_.sim().now();
        dev_.sim().invoke_on(sim::kHostShard, [this, done_id, done_at] {
          completion_observer_(done_id, done_at);
        });
      }
    }
    touch_busy(mtb, -1);
    slot.exec = false;
    slot.entry_row = -1;
    slot.sm_index = -1;
    slot.bar_id = -1;
    mtb.free_slots += 1;
    wake_scheduler(mtb);  // pSched may be waiting for a free warp
  }
}

}  // namespace pagoda::runtime
