// The TaskTable (paper §4.2): the mirrored CPU/GPU structure through which
// tasks are spawned.
//
// Layout: one column per MTB (MasterKernel threadblock); 32 rows per column.
// Each entry holds the task descriptor fields of §4.2 — (1) #threadblocks,
// (2) threads per threadblock, (3) kernel pointer, (4) shared-memory bytes
// per threadblock, (5) sync flag, (6) task inputs (parameter blob),
// (7) ready field, (8) sched flag.
//
// Ready-field encodings (§4.2.2, Fig 2):
//    0  — entry free / task finished
//   -1  — parameters copied, awaiting release by a successor spawn or flush
//    1  — task is being considered for scheduling on the GPU
//   >1  — a taskID: the *previous* task (whose parameters are known complete
//         because its copy transaction preceded this one on the stream) can
//         be released for scheduling. This indirection is what lets Pagoda
//         pay exactly one cudaMemcpy per task despite PCIe's lack of
//         intra-transaction write ordering.
//
// The same TaskTable type instantiates both mirrors; the Runtime owns one
// CPU-side and one GPU-side instance and moves entries between them through
// the PCIe model.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "gpu/kernel.h"

namespace pagoda::runtime {

/// Task identifier handed back by taskSpawn. Values >= 2 so the encodings
/// 0 / -1 / 1 of the ready field stay unambiguous.
using TaskId = std::int32_t;
inline constexpr TaskId kFirstTaskId = 2;

/// Maximum parameter-blob size copied into a TaskTable entry.
inline constexpr std::size_t kMaxArgBytes = 192;

/// Ready-field named states.
inline constexpr std::int32_t kReadyFree = 0;
inline constexpr std::int32_t kReadyParamsCopied = -1;
inline constexpr std::int32_t kReadyScheduling = 1;

/// Fields 1–6: what taskSpawn supplies, plus the QoS tags the sched layer
/// orders on. The tags live in what used to be padding holes (after
/// needs_sync and after args_size, before the alignas(16) blob), so
/// sizeof(TaskParams) — and therefore kEntryCopyBytes and every PCIe copy
/// charge — is unchanged from the untagged layout.
struct TaskParams {
  gpu::KernelFn fn = nullptr;
  std::int32_t num_blocks = 1;
  std::int32_t threads_per_block = 0;
  std::int32_t shared_mem_bytes = 0;
  bool needs_sync = false;
  /// QoS class (sched::Class numeric encoding; 1 = standard). Ordering
  /// decisions on this byte belong to sched::Policy, never to callers.
  std::uint8_t sched_class = 1;
  /// Virtual-resource hints (DESIGN.md §16), in the two remaining padding
  /// bytes so sizeof(TaskParams) is unchanged. Both are ignored unless the
  /// runtime runs oversubscribed (--oversub > 1):
  /// actually-used shared memory per threadblock in 256-byte units (0 =
  /// uses the full declared shared_mem_bytes), ...
  std::uint8_t shmem_used_256 = 0;
  /// ... and actually-used registers per thread (0 = the declared budget).
  std::uint8_t regs_used = 0;
  std::int32_t args_size = 0;
  /// Absolute deadline in microseconds of sim time (0 = none); encoded via
  /// sched::deadline_to_us. 32 bits outlast the 3600 s run cap.
  std::uint32_t deadline_us = 0;
  alignas(16) std::array<std::byte, kMaxArgBytes> args{};

  int warps_per_block() const { return (threads_per_block + 31) / 32; }
  int warps_total() const { return warps_per_block() * num_blocks; }

  /// Shared-memory bytes a threadblock actually touches (the physical
  /// backing under oversubscription); == declared when no hint is set.
  std::int32_t shmem_used_bytes() const {
    return shmem_used_256 > 0 ? static_cast<std::int32_t>(shmem_used_256) * 256
                              : shared_mem_bytes;
  }
  /// Registers per thread actually used; defaults to the MTB's 32-register
  /// budget when no hint is set.
  int regs_used_per_thread() const { return regs_used > 0 ? regs_used : 32; }

  template <typename T>
  void set_args(const T& value) {
    static_assert(sizeof(T) <= kMaxArgBytes,
                  "kernel arguments exceed the TaskTable parameter blob");
    static_assert(std::is_trivially_copyable_v<T>);
    args_size = sizeof(T);
    std::memcpy(args.data(), &value, sizeof(T));
  }
};

/// Fields 1–8: a full TaskTable entry.
struct TaskEntry {
  TaskParams params;
  std::int32_t ready = kReadyFree;
  std::int32_t sched = 0;
};

/// The size charged for one entry copy over PCIe.
inline constexpr std::size_t kEntryCopyBytes = sizeof(TaskEntry);

class TaskTable {
 public:
  TaskTable(int columns, int rows)
      : columns_(columns),
        rows_(rows),
        entries_(static_cast<std::size_t>(columns) *
                 static_cast<std::size_t>(rows)) {
    PAGODA_CHECK(columns > 0 && rows > 0);
  }

  int columns() const { return columns_; }
  int rows() const { return rows_; }
  int size() const { return columns_ * rows_; }

  TaskEntry& at(int column, int row) {
    PAGODA_CHECK(column >= 0 && column < columns_ && row >= 0 && row < rows_);
    return entries_[static_cast<std::size_t>(column) *
                        static_cast<std::size_t>(rows_) +
                    static_cast<std::size_t>(row)];
  }
  const TaskEntry& at(int column, int row) const {
    return const_cast<TaskTable*>(this)->at(column, row);
  }

  /// TaskIds enumerate entries column-major, offset so that every id >= 2.
  TaskId id_of(int column, int row) const {
    return static_cast<TaskId>(column * rows_ + row) + kFirstTaskId;
  }
  int column_of(TaskId id) const { return (id - kFirstTaskId) / rows_; }
  int row_of(TaskId id) const { return (id - kFirstTaskId) % rows_; }
  bool valid_id(TaskId id) const {
    return id >= kFirstTaskId && id < kFirstTaskId + size();
  }
  TaskEntry& by_id(TaskId id) {
    PAGODA_CHECK_MSG(valid_id(id), "bad task id");
    return entries_[static_cast<std::size_t>(id - kFirstTaskId)];
  }
  const TaskEntry& by_id(TaskId id) const {
    return const_cast<TaskTable*>(this)->by_id(id);
  }

 private:
  int columns_;
  int rows_;
  std::vector<TaskEntry> entries_;
};

}  // namespace pagoda::runtime
