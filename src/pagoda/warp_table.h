// The per-MTB WarpTable (paper Table 2) and per-threadblock bookkeeping.
#pragma once

#include <cstdint>
#include <memory>

namespace pagoda::runtime {

/// State shared by the warps of one scheduled threadblock: used to detect
/// the "last warp in block" that marks shared memory for deallocation and
/// releases the named barrier (Algorithm 1, lines 35–39).
struct BlockState {
  int warps_remaining = 0;
  std::int32_t sm_offset = -1;   // shared-memory block offset, -1 = none
  std::int32_t sm_bytes = 0;
  std::int32_t bar_id = -1;      // named barrier id, -1 = none
  /// Virtual shared-memory allocation id (oversubscribed mode only, -1
  /// otherwise). Authoritative over sm_offset there: a spilled block's
  /// offset moves on reclaim, and executor warps refresh it via touch().
  std::int32_t vid = -1;
};

/// One executor-warp slot (paper Table 2).
struct WarpSlot {
  /// Warp ID within the current task; generates thread IDs in getTid().
  std::int32_t warp_id = 0;
  /// Row of the TaskTable entry (in this MTB's column) being executed.
  std::int32_t entry_row = -1;
  /// Shared-memory starting offset for the warp's threadblock.
  std::int32_t sm_index = -1;
  /// Named barrier ID to synchronize on (tasks with the sync flag only).
  std::int32_t bar_id = -1;
  /// Set by the scheduler warp to start execution; doubles as the
  /// free/busy query flag.
  bool exec = false;

  /// Implementation bookkeeping (not part of the paper's table): the
  /// threadblock this warp belongs to.
  std::shared_ptr<BlockState> block;
};

}  // namespace pagoda::runtime
