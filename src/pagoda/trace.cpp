#include "pagoda/trace.h"

#include <ostream>
#include <unordered_map>

namespace pagoda::runtime {

std::string_view trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSpawned: return "spawned";
    case TraceKind::kEntryCopied: return "entry_copied";
    case TraceKind::kReleased: return "released";
    case TraceKind::kScheduled: return "scheduled";
    case TraceKind::kWarpDispatched: return "warp_dispatched";
    case TraceKind::kCompleted: return "completed";
    case TraceKind::kCopyBack: return "copy_back";
    case TraceKind::kFlushed: return "flushed";
    case TraceKind::kRevoked: return "revoked";
  }
  return "?";
}

std::vector<TraceEvent> TraceRecorder::for_task(TaskId task) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.task == task) out.push_back(e);
  }
  return out;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time_us,kind,task,aux\n";
  for (const TraceEvent& e : events_) {
    os << sim::to_microseconds(e.time) << ',' << trace_kind_name(e.kind)
       << ',' << e.task << ',' << e.aux << '\n';
  }
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  // Chrome trace-event format: JSON array of events. Durations ("X") for
  // task lifetimes; instants ("i") for protocol steps. Timestamps in us.
  os << "[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const TaskTimeline& t : timelines()) {
    if (!t.complete()) continue;
    comma();
    os << R"({"name":"task )" << t.task << R"(","ph":"X","ts":)"
       << sim::to_microseconds(t.spawned) << R"(,"dur":)"
       << sim::to_microseconds(t.completed - t.spawned)
       << R"(,"pid":0,"tid":)" << t.task << "}";
  }
  for (const TraceEvent& e : events_) {
    comma();
    os << R"({"name":")" << trace_kind_name(e.kind)
       << R"(","ph":"i","s":"t","ts":)" << sim::to_microseconds(e.time)
       << R"(,"pid":0,"tid":)" << e.task << "}";
  }
  os << "]\n";
}

std::vector<TraceRecorder::TaskTimeline> TraceRecorder::timelines() const {
  std::vector<TaskTimeline> out;
  // Entry reuse: a new kSpawned on the same TaskId starts a new timeline.
  std::unordered_map<TaskId, std::size_t> open;
  // Copy-backs land after completion closed the timeline; route them to the
  // most recently completed instance of the id.
  std::unordered_map<TaskId, std::size_t> last_completed;
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceKind::kSpawned) {
      TaskTimeline t;
      t.task = e.task;
      t.spawned = e.time;
      open[e.task] = out.size();
      out.push_back(t);
      continue;
    }
    if (e.kind == TraceKind::kCopyBack) {
      const auto done = last_completed.find(e.task);
      if (done != last_completed.end()) {
        TaskTimeline& t = out[done->second];
        if (t.copy_back < 0) t.copy_back = e.time;
      }
      continue;
    }
    const auto it = open.find(e.task);
    if (it == open.end()) continue;
    TaskTimeline& t = out[it->second];
    switch (e.kind) {
      case TraceKind::kEntryCopied:
        if (t.entry_copied < 0) t.entry_copied = e.time;
        break;
      case TraceKind::kFlushed:
        if (t.flushed < 0) t.flushed = e.time;
        [[fallthrough]];  // a flush IS the release of the last task
      case TraceKind::kReleased:
        if (t.released < 0) t.released = e.time;
        break;
      case TraceKind::kScheduled:
        if (t.scheduled < 0) t.scheduled = e.time;
        break;
      case TraceKind::kWarpDispatched:
        if (t.first_warp_dispatch < 0) t.first_warp_dispatch = e.time;
        t.last_warp_dispatch = e.time;
        t.warps_dispatched += 1;
        break;
      case TraceKind::kCompleted:
        t.completed = e.time;
        last_completed[e.task] = it->second;
        open.erase(it);
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace pagoda::runtime
