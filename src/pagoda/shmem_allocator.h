// Buddy-system shared-memory allocator (paper §5.1).
//
// Each MTB reserves a 32 KB shared-memory arena at startup and sub-allocates
// it to the threadblocks of tasks it schedules. Blocks are nodes of a
// complete binary tree stored as an array (itself small enough to live in
// shared memory on the real GPU): the root is the whole arena, each level
// halves the block size, leaves are 512-byte blocks. For the 32 KB arena
// that is 64 leaves and 127 nodes.
//
// Marking discipline (paper Figs 3–4): allocating a node marks it AND all of
// its ancestors and descendants; the data-structure invariant is that a
// marked node implies a marked parent. A node is allocatable iff it is
// unmarked. Deallocation unmarks the node and its descendants, then walks up
// unmarking each parent whose other child is also unmarked.
//
// Deallocation is deferred (Algorithm 1, line 22): executor warps cannot
// free shared memory themselves (they might race the scheduler warp's
// allocations), so the last warp of a threadblock *marks* its region for
// deallocation and the scheduler warp sweeps the marks before any new
// allocation attempt.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"

namespace pagoda::runtime {

class ShmemAllocator {
 public:
  /// arena_bytes must be a power-of-two multiple of granularity.
  explicit ShmemAllocator(std::int32_t arena_bytes = 32 * 1024,
                          std::int32_t granularity = 512);

  /// Attempts to allocate `bytes` (rounded up to a power-of-two block, min
  /// granularity). Returns the byte offset of the block, or nullopt when no
  /// free block of that size exists. Does NOT sweep deferred frees — call
  /// sweep_deferred() first, as the scheduler warp does.
  std::optional<std::int32_t> allocate(std::int32_t bytes);

  /// Immediately frees the block at `offset` (must be an allocated block's
  /// starting offset).
  void deallocate(std::int32_t offset);

  /// Defers freeing of the block at `offset` (executor-warp side).
  void mark_for_deallocation(std::int32_t offset);

  /// Frees every deferred block (scheduler-warp side). Returns how many
  /// blocks were freed.
  int sweep_deferred();

  bool has_deferred() const { return !deferred_.empty(); }

  std::int32_t arena_bytes() const { return arena_bytes_; }
  std::int32_t granularity() const { return granularity_; }
  std::int32_t allocated_bytes() const { return allocated_bytes_; }
  int node_count() const { return static_cast<int>(marked_.size()); }

  // --- observability counters (buddy-arena pressure) ----------------------
  /// High-water mark of allocated_bytes() over the arena's lifetime.
  std::int32_t peak_allocated_bytes() const { return peak_allocated_bytes_; }
  /// allocate() calls that succeeded / returned nullopt (the scheduler warp
  /// retries after a sweep or a deferred free — each retry counts again).
  std::int64_t alloc_successes() const { return alloc_successes_; }
  std::int64_t alloc_failures() const { return alloc_failures_; }
  /// sweep_deferred() invocations and total blocks they freed.
  std::int64_t sweeps() const { return sweeps_; }
  std::int64_t blocks_swept() const { return blocks_swept_; }
  int deferred_count() const { return static_cast<int>(deferred_.size()); }

  // --- fragmentation (the counters above can't tell "full" from
  // --- "fragmented") ------------------------------------------------------
  /// Internal fragmentation: total bytes lost to power-of-two rounding over
  /// every successful allocate() (requested vs block_size_for), cumulative.
  std::int64_t internal_frag_bytes() const { return internal_frag_bytes_; }
  /// Largest currently allocatable block (the biggest unmarked node), 0 when
  /// the arena is fully allocated.
  std::int32_t largest_free_block() const;
  /// External-fragmentation gauge: largest free block / total free bytes.
  /// 1.0 = all free space is one contiguous buddy block (or the arena is
  /// full, trivially unfragmented); lower values mean free space exists but
  /// is scattered across buddies.
  double external_fragmentation() const;

  /// Smallest power-of-two block size >= bytes (>= granularity).
  std::int32_t block_size_for(std::int32_t bytes) const;

  /// Verifies the paper's data-structure invariant — a marked node implies
  /// a marked parent — plus internal bookkeeping consistency. Used by
  /// property tests; returns false instead of aborting.
  bool check_invariants() const;

 private:
  int levels() const { return levels_; }
  std::int32_t level_block_size(int level) const {
    return arena_bytes_ >> level;
  }
  int level_of_size(std::int32_t block_size) const;
  int first_node_of_level(int level) const { return (1 << level) - 1; }
  int nodes_in_level(int level) const { return 1 << level; }
  std::int32_t offset_of_node(int node, int level) const {
    return (node - first_node_of_level(level)) * level_block_size(level);
  }

  void mark_descendants(int node, bool mark);

  std::int32_t arena_bytes_;
  std::int32_t granularity_;
  int levels_;                 // tree has levels_ + 1 levels (root = level 0)
  std::vector<bool> marked_;   // node -> allocated?
  std::vector<std::int32_t> alloc_size_at_offset_;  // per-leaf-offset block size
  std::vector<std::int32_t> deferred_;              // offsets awaiting free
  std::int32_t allocated_bytes_ = 0;
  std::int32_t peak_allocated_bytes_ = 0;
  std::int64_t alloc_successes_ = 0;
  std::int64_t alloc_failures_ = 0;
  std::int64_t sweeps_ = 0;
  std::int64_t blocks_swept_ = 0;
  std::int64_t internal_frag_bytes_ = 0;
};

}  // namespace pagoda::runtime
