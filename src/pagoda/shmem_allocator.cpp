#include "pagoda/shmem_allocator.h"

#include <algorithm>
#include <bit>

namespace pagoda::runtime {

ShmemAllocator::ShmemAllocator(std::int32_t arena_bytes,
                               std::int32_t granularity)
    : arena_bytes_(arena_bytes), granularity_(granularity) {
  PAGODA_CHECK(arena_bytes > 0 && granularity > 0);
  PAGODA_CHECK_MSG(std::has_single_bit(static_cast<std::uint32_t>(arena_bytes)),
                   "arena must be a power of two");
  PAGODA_CHECK_MSG(
      std::has_single_bit(static_cast<std::uint32_t>(granularity)),
      "granularity must be a power of two");
  PAGODA_CHECK(arena_bytes >= granularity);
  levels_ = std::countr_zero(static_cast<std::uint32_t>(arena_bytes)) -
            std::countr_zero(static_cast<std::uint32_t>(granularity));
  // Complete binary tree with levels_+1 levels: 2^(levels_+1) - 1 nodes.
  // For 32 KB / 512 B: levels_ = 6, 127 nodes — the paper's "128 nodes,
  // small enough to fit in the shared memory".
  marked_.assign((1u << (levels_ + 1)) - 1, false);
  alloc_size_at_offset_.assign(
      static_cast<std::size_t>(arena_bytes / granularity), 0);
}

std::int32_t ShmemAllocator::block_size_for(std::int32_t bytes) const {
  PAGODA_CHECK(bytes > 0);
  const auto needed = static_cast<std::uint32_t>(
      bytes < granularity_ ? granularity_ : bytes);
  return static_cast<std::int32_t>(std::bit_ceil(needed));
}

int ShmemAllocator::level_of_size(std::int32_t block_size) const {
  PAGODA_CHECK(block_size <= arena_bytes_);
  return std::countr_zero(static_cast<std::uint32_t>(arena_bytes_)) -
         std::countr_zero(static_cast<std::uint32_t>(block_size));
}

void ShmemAllocator::mark_descendants(int node, bool mark) {
  const int n = static_cast<int>(marked_.size());
  const int left = 2 * node + 1;
  const int right = 2 * node + 2;
  if (left < n) {
    marked_[static_cast<std::size_t>(left)] = mark;
    mark_descendants(left, mark);
  }
  if (right < n) {
    marked_[static_cast<std::size_t>(right)] = mark;
    mark_descendants(right, mark);
  }
}

std::optional<std::int32_t> ShmemAllocator::allocate(std::int32_t bytes) {
  if (bytes > arena_bytes_) {
    alloc_failures_ += 1;
    return std::nullopt;
  }
  const std::int32_t block = block_size_for(bytes);
  const int level = level_of_size(block);
  // Search the level for an unmarked node. (On the GPU the 32 threads of the
  // scheduler warp scan in parallel; here the linear scan is charged for by
  // the caller's cycle model.)
  const int first = first_node_of_level(level);
  for (int node = first; node < first + nodes_in_level(level); ++node) {
    if (marked_[static_cast<std::size_t>(node)]) continue;
    // Mark the node, its descendants, and its ancestors (paper Fig 3).
    marked_[static_cast<std::size_t>(node)] = true;
    mark_descendants(node, true);
    for (int up = node; up != 0;) {
      up = (up - 1) / 2;
      marked_[static_cast<std::size_t>(up)] = true;
    }
    const std::int32_t offset = offset_of_node(node, level);
    alloc_size_at_offset_[static_cast<std::size_t>(offset / granularity_)] =
        block;
    allocated_bytes_ += block;
    peak_allocated_bytes_ = std::max(peak_allocated_bytes_, allocated_bytes_);
    alloc_successes_ += 1;
    internal_frag_bytes_ += block - bytes;
    return offset;
  }
  alloc_failures_ += 1;
  return std::nullopt;
}

void ShmemAllocator::deallocate(std::int32_t offset) {
  PAGODA_CHECK(offset >= 0 && offset < arena_bytes_ &&
               offset % granularity_ == 0);
  const std::size_t slot = static_cast<std::size_t>(offset / granularity_);
  const std::int32_t block = alloc_size_at_offset_[slot];
  PAGODA_CHECK_MSG(block > 0, "deallocating an unallocated offset");
  alloc_size_at_offset_[slot] = 0;
  allocated_bytes_ -= block;

  const int level = level_of_size(block);
  const int node =
      first_node_of_level(level) + offset / level_block_size(level);
  // Unmark descendants, then the node, then ancestors while the sibling is
  // free (paper Fig 4).
  mark_descendants(node, false);
  marked_[static_cast<std::size_t>(node)] = false;
  for (int cur = node; cur != 0;) {
    const int parent = (cur - 1) / 2;
    const int sibling = (cur % 2 == 1) ? cur + 1 : cur - 1;
    if (marked_[static_cast<std::size_t>(sibling)]) break;
    marked_[static_cast<std::size_t>(parent)] = false;
    cur = parent;
  }
}

bool ShmemAllocator::check_invariants() const {
  // Invariant 1 (paper §5.1): a marked node implies a marked parent.
  for (std::size_t node = 1; node < marked_.size(); ++node) {
    if (marked_[node] && !marked_[(node - 1) / 2]) return false;
  }
  // Invariant 2: the allocated byte count equals the sum of live blocks.
  std::int64_t live = 0;
  for (const std::int32_t size : alloc_size_at_offset_) live += size;
  if (live != allocated_bytes_) return false;
  // Invariant 3: every live block's node (and hence its ancestors, by
  // invariant 1) is marked.
  for (std::size_t slot = 0; slot < alloc_size_at_offset_.size(); ++slot) {
    const std::int32_t size = alloc_size_at_offset_[slot];
    if (size == 0) continue;
    const std::int32_t offset =
        static_cast<std::int32_t>(slot) * granularity_;
    const int level = level_of_size(size);
    const int node = first_node_of_level(level) + offset / size;
    if (!marked_[static_cast<std::size_t>(node)]) return false;
  }
  return true;
}

std::int32_t ShmemAllocator::largest_free_block() const {
  // Top-down: the first level holding any unmarked node holds the largest
  // allocatable block (an unmarked node's subtree is entirely free).
  for (int level = 0; level <= levels_; ++level) {
    const int first = first_node_of_level(level);
    for (int node = first; node < first + nodes_in_level(level); ++node) {
      if (!marked_[static_cast<std::size_t>(node)]) {
        return level_block_size(level);
      }
    }
  }
  return 0;
}

double ShmemAllocator::external_fragmentation() const {
  const std::int32_t total_free = arena_bytes_ - allocated_bytes_;
  if (total_free == 0) return 1.0;
  return static_cast<double>(largest_free_block()) /
         static_cast<double>(total_free);
}

void ShmemAllocator::mark_for_deallocation(std::int32_t offset) {
  deferred_.push_back(offset);
}

int ShmemAllocator::sweep_deferred() {
  const int freed = static_cast<int>(deferred_.size());
  for (const std::int32_t offset : deferred_) deallocate(offset);
  deferred_.clear();
  sweeps_ += 1;
  blocks_swept_ += freed;
  return freed;
}

}  // namespace pagoda::runtime
