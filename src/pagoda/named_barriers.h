// Named-barrier pool for sub-threadblock synchronization (paper §5.2).
//
// CUDA's __syncthreads() cannot be used inside the MasterKernel because an
// MTB may host several unrelated threadblocks; Pagoda instead leases PTX
// named barriers (bar.sync N) to synchronizing threadblocks. PTX provides 16
// barrier ids per threadblock, so ids must be recycled when a threadblock
// finishes.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "gpu/barrier.h"
#include "sim/simulation.h"

namespace pagoda::runtime {

class NamedBarrierPool {
 public:
  static constexpr int kNumBarriers = 16;  // PTX bar.sync id space

  explicit NamedBarrierPool(sim::Simulation& sim) {
    for (int i = 0; i < kNumBarriers; ++i) {
      barriers_[static_cast<std::size_t>(i)] =
          std::make_unique<gpu::BlockBarrier>(sim);
      free_ids_.push_back(kNumBarriers - 1 - i);  // pop from the back: id 0 first
    }
  }

  bool has_free() const { return !free_ids_.empty(); }
  int free_count() const { return static_cast<int>(free_ids_.size()); }

  /// Leases a barrier id for a threadblock of `participants` warps.
  /// Precondition: has_free().
  int acquire(int participants) {
    PAGODA_CHECK_MSG(has_free(), "named barrier pool exhausted");
    const int id = free_ids_.back();
    free_ids_.pop_back();
    barriers_[static_cast<std::size_t>(id)]->reset(participants);
    return id;
  }

  /// Returns a barrier id to the pool (last warp of the block).
  void release(int id) {
    PAGODA_CHECK(id >= 0 && id < kNumBarriers);
    free_ids_.push_back(id);
  }

  gpu::BlockBarrier& barrier(int id) {
    PAGODA_CHECK(id >= 0 && id < kNumBarriers);
    return *barriers_[static_cast<std::size_t>(id)];
  }

 private:
  std::array<std::unique_ptr<gpu::BlockBarrier>, kNumBarriers> barriers_;
  std::vector<int> free_ids_;
};

}  // namespace pagoda::runtime
