// The MasterKernel (paper §4.1): the OS-like daemon kernel that virtualizes
// the GPU.
//
// On the Titan X the MasterKernel launches 48 MTBs (two 32-warp threadblocks
// per SMM), capping registers at 32/thread and statically allocating 32 KB
// of shared memory per MTB, so the daemon itself reaches 100% occupancy and
// owns every warp slot. Warp 0 of each MTB is the *scheduler warp*; the
// other 31 are *executor warps*.
//
// Each MTB owns one TaskTable column, a 31-slot WarpTable, a buddy-managed
// 32 KB shared-memory arena and a pool of 16 named barriers. The scheduler
// warp runs Algorithm 1 (lines 2–28): it releases predecessor tasks named by
// incoming ready fields, claims entries whose sched flag is set, leases
// barriers/shared memory per threadblock, and places warps onto free
// executor slots via the parallel pSched routine (Algorithm 2) — blocking,
// as the paper does, until enough executor warps free up. Executor warps run
// lines 29–43: execute the task warp (treating the task kernel as a
// subroutine), mark shared memory for deferred deallocation, release the
// named barrier, decrement the task's done counter and clear the entry's
// ready field when the whole task has finished.
//
// Simulation notes: the scheduler warp's polling is event-driven — it parks
// when it has no work and is woken by entry copies, warp frees, deferred
// deallocations and barrier releases. Its scheduling work *is* charged to
// the SMM pipeline (contending with executor warps, as on silicon); the idle
// spin of parked warps is not modeled and its issue-bandwidth cost is folded
// into the per-pass scan charges.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpu/device.h"
#include "gpu/kernel.h"
#include "pagoda/named_barriers.h"
#include "pagoda/task_table.h"
#include "pagoda/trace.h"
#include "pagoda/warp_table.h"
#include "sched/policy.h"
#include "sim/process.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "vres/resource_ledger.h"
#include "vres/virtual_shmem.h"

namespace pagoda::runtime {

/// Tunables for the Pagoda runtime; scheduling costs are in GPU cycles and
/// are charged to the MTB's SMM pipeline.
struct PagodaConfig {
  int rows_per_column = 32;              // paper: 32 TaskTable rows per MTB
  gpu::ExecMode mode = gpu::ExecMode::Compute;
  const gpu::CostModel* costs = &gpu::kDefaultCostModel;

  /// Host-side polling cadence of wait/waitAll before forcing a copy-back
  /// (the paper's timeout on lazy TaskTable updates).
  sim::Duration wait_poll = sim::microseconds(20.0);

  /// Ablation of §6.4: dispatch at threadblock granularity — pSched places a
  /// threadblock's warps only when enough executor warps are free for ALL of
  /// them at once (CUDA's hardware rule), instead of streaming warps onto
  /// executors as they free (Pagoda's warp-granularity scheduling).
  bool threadblock_granularity = false;

  /// Ablation of §4.2.1: instead of the pipelined single-copy protocol
  /// (ready field carries the previous task's id), spawn with TWO memcpys —
  /// one for the parameters, a second for the ready/sched flags once the
  /// first completes. Doubles the per-task copy overhead, as the paper
  /// argues.
  bool two_copy_spawn = false;

  /// Claim-order policy for the scheduler warps (see sched/policy.h): which
  /// pending TaskTable entry a scheduler warp claims first within a scan.
  /// fifo keeps the paper's raw column-scan order on the legacy code path
  /// (byte-identical event stream); other policies defer claims to a
  /// comparator-ordered pass charged claim_select_cycles.
  sched::PolicyConfig sched{};

  /// Virtual-resource oversubscription factor (DESIGN.md §16). 1.0 (the
  /// default) keeps every shmem/register/slot decision on the physical
  /// capacities — byte-identical to the pre-vres runtime by construction.
  /// F > 1 virtualizes each MTB arena to F x its bytes, each MTB register
  /// budget to F x its share, and each node's TaskTable admission to
  /// F x its entries, with spill-on-pressure to a backing store.
  double oversub = 1.0;

  /// Transfer rate charged for vres spill/reclaim traffic (modeled as a
  /// PCIe-rate DMA local to the node; the shard-crossing link itself is not
  /// contended, keeping spills lookahead-free).
  double vres_spill_gbps = 12.0;

  // GPU-side scheduling cost constants (cycles on the SMM pipeline).
  double scan_pass_cycles = 16.0;          // one scan of the 32-row column
  double release_chain_cycles = 8.0;       // prev-task release (lines 6-13)
  double claim_select_cycles = 8.0;        // non-fifo claim-order selection
  double dispatch_cycles_per_warp = 8.0;   // pSched slot claim + fill
  double shmem_alloc_cycles = 24.0;        // buddy-tree search + marking
  double shmem_sweep_cycles = 16.0;        // deferred deallocation sweep
  double barrier_mgmt_cycles = 6.0;        // named barrier lease
};

class MasterKernel {
 public:
  static constexpr int kWarpsPerMtb = 32;      // 1 scheduler + 31 executors
  static constexpr int kExecutorWarps = 31;
  static constexpr int kMtbsPerSmm = 2;
  /// The per-MTB shared-memory arena on the Titan X (96 KB SMM: 2 x 32 KB
  /// arenas + the remainder for scheduling structures, per §4.1).
  static constexpr std::int32_t kArenaBytes = 32 * 1024;

  /// Arena size for an arbitrary architecture: the largest power of two
  /// that leaves ~1/3 of the SMM's shared memory for the two MTBs' own
  /// scheduling structures (Titan X 96 KB -> 32 KB; Tesla K40 48 KB ->
  /// 16 KB).
  static std::int32_t arena_bytes_for(const gpu::GpuSpec& spec);

  MasterKernel(gpu::Device& dev, TaskTable& gpu_table,
               const PagodaConfig& cfg);
  ~MasterKernel();
  MasterKernel(const MasterKernel&) = delete;
  MasterKernel& operator=(const MasterKernel&) = delete;

  /// Reserves the whole GPU (two 32-warp, 32 KB, 32-reg MTBs per SMM) and
  /// starts the scheduler/executor warp processes.
  void start();

  /// Stops all warp processes and releases the GPU.
  void shutdown();

  bool running() const { return running_; }
  int num_mtbs() const { return static_cast<int>(mtbs_.size()); }

  /// Signaled by the host runtime when the H2D copy of task `id`'s entry
  /// lands; wakes that column's scheduler warp (and any scheduler waiting on
  /// this task as a release predecessor).
  void on_entry_copied(TaskId id);

  /// Per-MTB shared-memory arena on this device.
  std::int32_t arena_bytes() const { return arena_bytes_; }

  // --- statistics ---------------------------------------------------------
  std::int64_t tasks_scheduled() const { return tasks_scheduled_; }
  std::int64_t tasks_completed() const { return tasks_completed_; }
  /// Liveness signature for host-side watchdogs: bumps whenever a scheduler
  /// warp makes a pass or a task completes. A wedged/crashed device's
  /// heartbeat freezes, which is exactly what the fault layer's watchdog
  /// samples for. Pure counter — reading or incrementing it emits no events.
  std::int64_t heartbeats() const { return heartbeats_; }
  std::int64_t warps_dispatched() const { return warps_dispatched_; }
  std::int64_t shmem_blocks_swept() const { return shmem_blocks_swept_; }

  // --- observability ------------------------------------------------------
  /// Executor warps currently running task work (all MTBs).
  int busy_executor_warps() const { return busy_warps_; }
  /// Free executor-warp slots across all MTBs.
  int free_executor_slots() const;
  /// Issue-pipeline time the scheduler warps have consumed, in seconds
  /// (scans, release chains, leases, pSched dispatches). The busy fraction
  /// is this / (elapsed * num_mtbs).
  double scheduler_busy_seconds() const;
  /// Executor-warp busy integral of one MTB (warp*seconds); utilization per
  /// MTB is this / (elapsed * kExecutorWarps).
  double executor_busy_warp_seconds(int mtb_index) const;

  /// Buddy-arena pressure, aggregated over all MTBs' physical arenas.
  std::int64_t shmem_bytes_in_use() const;
  /// Highest per-arena high-water mark (bytes) across MTBs.
  std::int32_t shmem_peak_arena_bytes() const;
  std::int64_t shmem_alloc_successes() const;
  std::int64_t shmem_alloc_failures() const;
  std::int64_t shmem_sweeps() const;
  /// Fragmentation of the physical buddy arenas: worst (lowest) per-MTB
  /// external-fragmentation gauge, and total internal rounding loss.
  double shmem_external_frag() const;
  std::int64_t shmem_internal_frag_bytes() const;

  // --- virtual-resource plane (oversub > 1 only; all zero otherwise) ------
  std::int64_t vres_spills() const;
  std::int64_t vres_reclaims() const;
  std::int64_t vres_spill_bytes() const;
  std::int64_t vres_reclaim_bytes() const;
  /// Declared bytes currently charged against the virtual arenas.
  std::int64_t vres_virtual_bytes_in_use() const;
  /// Bytes currently living in backing stores (spilled, not yet reclaimed).
  std::int64_t vres_spilled_bytes_in_use() const;

  /// Observer invoked (GPU-side, at the moment the last warp clears the
  /// ready field) for every completed task. Instrumentation only.
  using CompletionObserver = std::function<void(TaskId, sim::Time)>;
  void set_completion_observer(CompletionObserver obs) {
    completion_observer_ = std::move(obs);
  }

  /// Observer invoked when a scheduler warp claims a TaskTable entry (the
  /// instant its sched flag clears, before pSched dispatches warps).
  /// Instrumentation only — the request tracer's warp_wait/exec boundary.
  using ClaimObserver = std::function<void(TaskId, sim::Time)>;
  void set_claim_observer(ClaimObserver obs) {
    claim_observer_ = std::move(obs);
  }

  /// Observer invoked after a vres spill (spill = true; charged to the task
  /// whose allocation triggered the eviction) or reclaim (spill = false;
  /// charged to the task touching its spilled block) finishes, with the
  /// transfer's [start, end) window. Instrumentation only — the request
  /// tracer's vres_spill/vres_reclaim phase buckets. Never fires at
  /// oversub == 1.
  using VresObserver =
      std::function<void(TaskId, sim::Time start, sim::Time end, bool spill)>;
  void set_vres_observer(VresObserver obs) { vres_observer_ = std::move(obs); }

  /// Time-integrated busy executor warps (warp·seconds): the achieved
  /// task-execution occupancy is this / (elapsed * 64 * num_smms).
  double executor_busy_warp_seconds() const;

  /// Optional event tracing (see pagoda/trace.h). Owned by the caller; must
  /// outlive the MasterKernel. nullptr disables tracing.
  void set_trace_recorder(TraceRecorder* trace) { trace_ = trace; }

 private:
  struct Mtb {
    int index = 0;
    int column = 0;  // TaskTable column owned by this MTB (== index)
    gpu::Smm* smm = nullptr;
    std::array<WarpSlot, kExecutorWarps> warp_table;
    int free_slots = kExecutorWarps;
    std::vector<std::byte> arena;  // backing bytes for the 32 KB shared mem
    /// The virtual facade over this MTB's physical buddy arena. At
    /// oversub == 1 every call is a verbatim delegation to the buddy
    /// (byte-identical); above 1 it owns the virtual mapping and spills.
    vres::VirtualShmem shmem;
    /// Virtual register budget (oversub x this MTB's register-file share).
    /// Passive at oversub == 1 (never charged); above 1, claims defer —
    /// wait, never spill — while the budget is exhausted.
    vres::ResourceLedger regs;
    NamedBarrierPool barriers;
    std::vector<std::int32_t> done_ctr;  // per TaskTable row
    sim::Condition sched_cv;             // scheduler warp wakeups
    std::uint64_t sched_seq = 0;         // lost-wakeup guard
    sim::Condition exec_cv;              // executor warp wakeups

    // Per-MTB executor busy integral (warp·seconds), for the observability
    // layer's per-MTB utilization metric.
    double busy_integral = 0.0;
    int busy_warps = 0;
    sim::Time busy_last_touch = 0;

    // Claim-order policy state (per MTB so WFQ virtual time is a per-queue
    // quantity, like the dispatcher's per-cluster instance) and the scratch
    // row list the non-fifo claim pass collects into.
    sched::Policy claim_policy;
    std::vector<int> claim_rows;

    Mtb(sim::Simulation& sim, int rows, std::int32_t arena_bytes,
        const PagodaConfig& cfg, std::int64_t reg_virtual_capacity)
        : arena(static_cast<std::size_t>(arena_bytes)),
          shmem(std::span<std::byte>(arena), cfg.oversub),
          regs(reg_virtual_capacity, /*physical_capacity=*/0),
          barriers(sim),
          done_ctr(static_cast<std::size_t>(rows), 0),
          sched_cv(sim),
          exec_cv(sim),
          claim_policy(cfg.sched) {}
  };

  void wake_scheduler(Mtb& mtb) {
    mtb.sched_seq += 1;
    mtb.sched_cv.notify_all();
  }
  Mtb& mtb_of_column(int column) { return *mtbs_[static_cast<std::size_t>(column)]; }
  sim::Duration stall_to_time(double cycles) const;

  /// Charges `cycles` to the MTB's SMM pipeline on the scheduler warp's
  /// behalf, accumulating them for scheduler_busy_seconds().
  sim::Task<> sched_charge(Mtb& mtb, double cycles);

  sim::Process scheduler_warp(Mtb& mtb);
  sim::Process executor_warp(Mtb& mtb, int slot_index);
  sim::Task<bool> scan_once(Mtb& mtb);
  sim::Task<bool> claim_in_policy_order(Mtb& mtb);
  sched::SchedKey claim_key(const Mtb& mtb, int row) const;
  sim::Task<> schedule_entry(Mtb& mtb, int row);
  sim::Task<> psched(Mtb& mtb, int row, int base_warp, int count,
                     std::shared_ptr<BlockState> block);
  /// Executor-side vres touch: reclaims the slot's block from the backing
  /// store if spilled (waiting for physical room when everything is
  /// pinned), refreshes slot.sm_index, and charges/reports the transfer.
  sim::Task<> ensure_resident(Mtb& mtb, WarpSlot& slot);
  /// Wire time of a vres spill/reclaim transfer at vres_spill_gbps.
  sim::Duration vres_xfer_time(std::int64_t bytes) const;

  gpu::Device& dev_;
  TaskTable& gpu_table_;
  PagodaConfig cfg_;
  std::int32_t arena_bytes_;
  std::vector<std::unique_ptr<Mtb>> mtbs_;
  bool running_ = false;
  bool started_ = false;

  /// Release chains are serial in spawn order: entry S carrying ready == P
  /// cannot be processed until P itself reached (-1, 0). On silicon the
  /// polling scheduler warp just retries; in the event-driven simulation we
  /// record "column of S is waiting for P" and wake it when P transitions.
  /// This replaces polling only — the retry's cycle cost is still charged.
  std::unordered_map<TaskId, int> waiting_successor_column_;

  std::int64_t tasks_scheduled_ = 0;
  std::int64_t tasks_completed_ = 0;
  std::int64_t heartbeats_ = 0;
  std::int64_t warps_dispatched_ = 0;
  std::int64_t shmem_blocks_swept_ = 0;
  CompletionObserver completion_observer_;
  ClaimObserver claim_observer_;
  VresObserver vres_observer_;
  TraceRecorder* trace_ = nullptr;

  void trace(TraceKind kind, TaskId task, std::int32_t aux = 0) {
    if (trace_ != nullptr) trace_->record(dev_.sim().now(), kind, task, aux);
  }

  void touch_busy(Mtb& mtb, int delta);
  double busy_integral_ = 0.0;  // warp·seconds
  int busy_warps_ = 0;
  sim::Time busy_last_touch_ = 0;
  double sched_cycles_ = 0.0;  // pipeline cycles charged by scheduler warps
};

}  // namespace pagoda::runtime
