#include "baselines/task_runtime.h"

#include "baselines/factories.h"
#include "common/check.h"

namespace pagoda::baselines {

int max_wave(const workloads::Workload& w) {
  int m = 0;
  for (const workloads::TaskSpec& t : w.tasks()) m = std::max(m, t.wave);
  return m;
}

bool TaskRuntime::supports(const workloads::Workload&) const { return true; }

std::unique_ptr<TaskRuntime> make_runtime(std::string_view name) {
  if (name == "Pagoda") return make_pagoda_runtime(/*batching=*/false);
  if (name == "PagodaBatching") return make_pagoda_runtime(/*batching=*/true);
  if (name == "HyperQ") return make_hyperq_runtime();
  if (name == "GeMTC") return make_gemtc_runtime();
  if (name == "Fusion") return make_fusion_runtime();
  if (name == "PThreads") return make_cpu_runtime(/*cores=*/20);
  if (name == "Sequential") return make_cpu_runtime(/*cores=*/1);
  if (name == "Cluster") return make_cluster_runtime();
  PAGODA_CHECK_MSG(false, "unknown runtime name");
}

}  // namespace pagoda::baselines
