#include "baselines/task_runtime.h"

#include "baselines/factories.h"
#include "common/check.h"

namespace pagoda::baselines {

int max_wave(const workloads::Workload& w) { return w.max_wave(); }

bool TaskRuntime::supports(const workloads::Workload&) const { return true; }

engine::SessionConfig device_session(const RunConfig& cfg) {
  engine::SessionConfig sc;
  sc.spec = cfg.spec;
  sc.pcie = cfg.pcie;
  sc.host = cfg.host;
  sc.collector = cfg.collector;
  return sc;
}

engine::SessionConfig pagoda_session(const RunConfig& cfg) {
  engine::SessionConfig sc = device_session(cfg);
  sc.pagoda_runtime = true;
  sc.pagoda = cfg.pagoda;
  sc.pagoda.mode = cfg.mode;
  return sc;
}

std::span<const std::string_view> all_runtime_names() {
  static constexpr std::string_view kNames[] = {
      "Sequential", "PThreads", "HyperQ",  "GeMTC",
      "Fusion",     "Pagoda",   "PagodaBatching", "Cluster"};
  return kNames;
}

std::unique_ptr<TaskRuntime> make_runtime(std::string_view name) {
  if (name == "Pagoda") return make_pagoda_runtime(/*batching=*/false);
  if (name == "PagodaBatching") return make_pagoda_runtime(/*batching=*/true);
  if (name == "HyperQ") return make_hyperq_runtime();
  if (name == "GeMTC") return make_gemtc_runtime();
  if (name == "Fusion") return make_fusion_runtime();
  if (name == "PThreads") return make_cpu_runtime(/*cores=*/20);
  if (name == "Sequential") return make_cpu_runtime(/*cores=*/1);
  if (name == "Cluster") return make_cluster_runtime();
  PAGODA_CHECK_MSG(false, "unknown runtime name");
}

}  // namespace pagoda::baselines
