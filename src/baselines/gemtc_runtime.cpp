// GeMTC baseline (Krieder et al., HPDC'14), re-implemented from its
// paper-level description and the properties §6 of the Pagoda paper relies
// on:
//  * A persistent SuperKernel whose workers are threadblocks; one task runs
//    entirely inside one worker threadblock.
//  * A single FIFO queue feeds all workers — every pull is a serialized
//    atomic on device memory.
//  * Batch-based launching: the CPU ships a batch of tasks and waits for
//    the whole batch before sending the next, so a batch's completion time
//    is its longest task (load imbalance) and there is no spawn/execute
//    overlap.
//  * No shared-memory support; tasks must fit one threadblock; the task
//    count must be known upfront (no dependency waves -> no SLUD).
#include <deque>
#include <memory>
#include <vector>

#include "baselines/factories.h"
#include "common/check.h"
#include "engine/result_builder.h"
#include "engine/stage_pipeline.h"
#include "gpu/barrier.h"
#include "gpu/occupancy.h"
#include "gpu/stream.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

using workloads::TaskSpec;

/// Serialized device-memory atomic for a queue pull.
constexpr sim::Duration kQueuePullCost = sim::nanoseconds(400.0);

struct Worker {
  gpu::Smm* smm = nullptr;
};

struct GemtcState {
  engine::Session session;
  engine::StagePipeline pipe;
  engine::ResultBuilder marks;  // batch issue -> batch finish times
  std::vector<Worker> workers;
  std::deque<int> queue;  // task indices of the current batch
  sim::Semaphore queue_lock;
  int batch_tasks_left = 0;
  sim::Trigger* batch_done = nullptr;
  bool done = false;
  sim::Time end_time = 0;
  // busy-warp occupancy accounting
  double busy_integral = 0.0;
  int busy_warps = 0;
  sim::Time busy_touch = 0;

  GemtcState(const RunConfig& cfg, int num_tasks)
      : session(device_session(cfg)),
        pipe(session, {.h2d_streams = 1, .d2h_streams = 0}),
        marks(num_tasks),
        queue_lock(session.sim(), 1) {}

  sim::Simulation& sim() { return session.sim(); }

  void touch_busy(int delta) {
    busy_integral += static_cast<double>(busy_warps) *
                     sim::to_seconds(sim().now() - busy_touch);
    busy_touch = sim().now();
    busy_warps += delta;
  }
};

/// Runs one warp of a task inside a worker threadblock.
sim::Process task_warp(GemtcState& st, const RunConfig& cfg, gpu::Smm& smm,
                       const runtime::TaskParams& p, int warp,
                       std::span<std::byte> shmem, gpu::BlockBarrier& barrier,
                       int* warps_left, sim::Trigger* block_done) {
  gpu::WarpCtx ctx;
  ctx.warp_in_task = warp;
  ctx.block_index = 0;
  ctx.warp_in_block = warp;
  ctx.threads_per_block = p.threads_per_block;
  ctx.num_blocks = 1;
  ctx.mode = cfg.mode;
  ctx.args = p.args.data();
  ctx.shared_mem = shmem;
  st.touch_busy(+1);
  gpu::KernelCoro coro = p.fn(ctx);
  while (true) {
    const gpu::SegmentResult seg = gpu::run_segment(coro, ctx);
    if (seg.stall_cycles > 0.0) {
      co_await st.sim().delay(static_cast<sim::Duration>(
          seg.stall_cycles * 1e12 / cfg.spec.clock_hz));
    }
    if (seg.cycles > 0.0) co_await smm.execute(seg.cycles);
    if (!seg.at_barrier) break;
    co_await barrier.arrive_and_wait();
  }
  st.touch_busy(-1);
  if (--*warps_left == 0) block_done->fire();
}

/// One SuperKernel worker: pull tasks from the FIFO queue until empty.
sim::Process worker_proc(GemtcState& st, const RunConfig& cfg,
                         std::span<const TaskSpec> tasks, gpu::Smm& smm) {
  while (true) {
    co_await st.queue_lock.acquire();
    if (st.queue.empty()) {
      st.queue_lock.release();
      break;
    }
    const int idx = st.queue.front();
    st.queue.pop_front();
    // Serialized atomic pull on the single queue (the contention Pagoda's
    // multi-column TaskTable avoids).
    co_await st.sim().delay(kQueuePullCost);
    st.queue_lock.release();

    const TaskSpec& t = tasks[static_cast<std::size_t>(idx)];
    const runtime::TaskParams& p = t.params;
    const int warps = p.warps_per_block();
    gpu::BlockBarrier barrier(st.sim(), warps);
    sim::Trigger block_done(st.sim());
    int warps_left = warps;
    for (int wv = 0; wv < warps; ++wv) {
      st.sim().spawn(task_warp(st, cfg, smm, p, wv, {}, barrier, &warps_left,
                               &block_done));
    }
    co_await block_done.wait();
    if (--st.batch_tasks_left == 0) st.batch_done->fire();
  }
}

sim::Process controller(GemtcState& st, const RunConfig& cfg,
                        workloads::Workload& w, int batch_size) {
  const std::span<const TaskSpec> tasks = w.tasks();
  const auto total = static_cast<int>(tasks.size());
  for (int batch_start = 0; batch_start < total; batch_start += batch_size) {
    const int batch_end = std::min(total, batch_start + batch_size);
    // Ship the batch: descriptors + inputs in one bulk H2D.
    std::int64_t in_bytes = 256;  // task descriptors
    std::int64_t out_bytes = 0;
    for (int i = batch_start; i < batch_end; ++i) {
      in_bytes += cfg.include_data_copies
                      ? tasks[static_cast<std::size_t>(i)].h2d_bytes
                      : 0;
      out_bytes += cfg.include_data_copies
                       ? tasks[static_cast<std::size_t>(i)].d2h_bytes
                       : 0;
    }
    co_await st.pipe.copy_sync(st.pipe.h2d_stream(0),
                               pcie::Direction::HostToDevice, in_bytes);
    co_await st.pipe.launch_cost();  // SuperKernel launch

    const sim::Time batch_issue = st.sim().now();
    for (int i = batch_start; i < batch_end; ++i) {
      st.queue.push_back(i);
      st.marks.mark_start(i, batch_issue);
    }
    st.batch_tasks_left = batch_end - batch_start;
    sim::Trigger batch_done(st.sim());
    st.batch_done = &batch_done;
    std::vector<sim::Joinable> joins;
    joins.reserve(st.workers.size());
    for (Worker& wk : st.workers) {
      joins.push_back(st.sim().spawn(worker_proc(st, cfg, tasks, *wk.smm)));
    }
    co_await batch_done.wait();
    for (const sim::Joinable& j : joins) co_await j.join();
    st.batch_done = nullptr;
    // Batch results land together (batch semantics).
    const sim::Time batch_finish = st.sim().now();
    for (int i = batch_start; i < batch_end; ++i) {
      st.marks.mark_end(i, batch_finish);
    }
    if (out_bytes > 0) {
      co_await st.pipe.copy_sync(st.pipe.h2d_stream(0),
                                 pcie::Direction::DeviceToHost, out_bytes);
    }
  }
  st.end_time = st.sim().now();
  st.done = true;
}

class GemtcRuntime final : public TaskRuntime {
 public:
  std::string_view name() const override { return "GeMTC"; }

  bool supports(const workloads::Workload& w) const override {
    if (max_wave(w) > 0) return false;  // task count must be predefined
    for (const TaskSpec& t : w.tasks()) {
      if (t.params.num_blocks != 1) return false;      // task == 1 threadblock
      if (t.params.shared_mem_bytes > 0) return false;  // no shmem support
    }
    return true;
  }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    PAGODA_CHECK_MSG(supports(w), "GeMTC cannot run this workload");
    const auto num_tasks = static_cast<int>(w.tasks().size());
    GemtcState st(cfg, num_tasks);

    // The SuperKernel: as many worker threadblocks as fit at maximum
    // occupancy for this threadblock size.
    const int tpb = w.tasks().empty()
                        ? 128
                        : w.tasks()[0].params.threads_per_block;
    const auto fp = gpu::BlockFootprint::of(tpb, 32, 0);
    const auto residency = gpu::max_residency(cfg.spec, fp);
    gpu::Device& dev = st.session.device();
    for (int s = 0; s < cfg.spec.num_smms; ++s) {
      for (int b = 0; b < residency.blocks_per_smm; ++b) {
        dev.smm(s).reserve(fp);
        st.workers.push_back(Worker{&dev.smm(s)});
      }
    }
    const int batch =
        cfg.batch_size > 0 ? cfg.batch_size
                           : static_cast<int>(st.workers.size());
    st.sim().spawn(controller(st, cfg, w, std::max(1, batch)));
    st.session.run_until(cfg.time_cap);

    st.marks.complete(st.done, st.end_time);
    st.marks.wires_from(dev);
    st.touch_busy(0);
    st.marks.occupancy_integral(
        st.busy_integral,
        static_cast<double>(cfg.spec.max_resident_warps()));
    return st.marks.assemble(cfg.collect_latencies, cfg.collector);
  }
};

}  // namespace

int gemtc_worker_count(const gpu::GpuSpec& spec,
                       const workloads::Workload& w) {
  const int tpb =
      w.tasks().empty() ? 128 : w.tasks()[0].params.threads_per_block;
  const auto residency =
      gpu::max_residency(spec, gpu::BlockFootprint::of(tpb, 32, 0));
  return std::max(1, residency.blocks_per_smm * spec.num_smms);
}

std::unique_ptr<TaskRuntime> make_gemtc_runtime() {
  return std::make_unique<GemtcRuntime>();
}

}  // namespace pagoda::baselines
