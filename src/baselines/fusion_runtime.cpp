// Static task fusion baseline (§6.3): all tasks are fused into one
// monolithic kernel — one threadblock per sub-task, 256 threads each (the
// paper's heuristic choice, since per-task thread tuning is infeasible in
// static fusion). Every sub-task receives the SAME resource allocation,
// sized for the most resource-hungry task (the CUDA programming model's
// uniform per-block resources), and the fused kernel finishes only when its
// longest sub-task does — both drawbacks §1/§6.3 call out.
#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/factories.h"
#include "common/check.h"
#include "engine/result_builder.h"
#include "engine/stage_pipeline.h"
#include "gpu/stream.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

using workloads::TaskSpec;

constexpr int kFusedThreadsPerSubTask = 256;

struct FusedArgs {
  const runtime::TaskParams* tasks;
  std::int32_t num_tasks;
};

/// The fused kernel: block b runs sub-task b as a nested warp coroutine,
/// forwarding its barriers to the fused block's native barrier and its cycle
/// charges to the fused warp.
gpu::KernelCoro fused_kernel(gpu::WarpCtx& ctx) {
  const FusedArgs& fa = ctx.args_as<FusedArgs>();
  PAGODA_CHECK(ctx.block_index < fa.num_tasks);
  const runtime::TaskParams& tp = fa.tasks[ctx.block_index];

  gpu::WarpCtx sub;
  sub.warp_in_task = ctx.warp_in_block;
  sub.block_index = 0;
  sub.warp_in_block = ctx.warp_in_block;
  sub.threads_per_block = ctx.threads_per_block;  // 256, redistributed work
  sub.num_blocks = 1;
  sub.mode = ctx.mode;
  sub.set_costs(&ctx.costs());
  sub.args = tp.args.data();
  sub.shared_mem = ctx.shared_mem;

  gpu::KernelCoro inner = tp.fn(sub);
  while (true) {
    inner.resume();
    ctx.charge(sub.take_charge());
    ctx.charge_stall(sub.take_stall());
    if (inner.done()) break;
    co_await ctx.sync_block();
  }
}

struct FusionState {
  engine::Session session;
  engine::StagePipeline pipe;
  std::vector<runtime::TaskParams> fused_tasks;
  bool done = false;
  sim::Time end_time = 0;
  sim::Time kernel_issue = 0;
  sim::Time kernel_complete = 0;

  explicit FusionState(const RunConfig& cfg)
      : session(device_session(cfg)),
        pipe(session, {.h2d_streams = 1, .d2h_streams = 0}) {}

  sim::Simulation& sim() { return session.sim(); }
};

sim::Process controller(FusionState& st, const RunConfig& cfg,
                        workloads::Workload& w) {
  const std::span<const TaskSpec> tasks = w.tasks();
  std::int64_t in_bytes = 0;
  std::int64_t out_bytes = 0;
  std::int64_t max_shmem = 0;
  int max_regs = 32;
  for (const TaskSpec& t : tasks) {
    in_bytes += t.h2d_bytes;
    out_bytes += t.d2h_bytes;
    max_shmem = std::max<std::int64_t>(max_shmem, t.params.shared_mem_bytes);
    max_regs = std::max(max_regs, t.regs_per_thread);
  }

  if (cfg.include_data_copies && in_bytes > 0) {
    // All inputs must be resident before the monolithic kernel launches.
    co_await st.pipe.copy_sync(st.pipe.h2d_stream(0),
                               pcie::Direction::HostToDevice, in_bytes);
  }

  co_await st.pipe.launch_cost();
  st.kernel_issue = st.sim().now();

  gpu::KernelLaunchParams p;
  p.fn = fused_kernel;
  p.args = gpu::KernelLaunchParams::pack_args(FusedArgs{
      st.fused_tasks.data(), static_cast<std::int32_t>(st.fused_tasks.size())});
  p.threads_per_block = kFusedThreadsPerSubTask;
  p.num_blocks = static_cast<int>(st.fused_tasks.size());
  p.regs_per_thread = max_regs;
  p.shared_mem_bytes = max_shmem;
  p.mode = cfg.mode;
  gpu::KernelExecutionPtr exec =
      st.session.device().dispatcher().launch(std::move(p));
  co_await exec->done.wait();
  st.kernel_complete = st.sim().now();

  if (cfg.include_data_copies && out_bytes > 0) {
    co_await st.pipe.copy_sync(st.pipe.h2d_stream(0),
                               pcie::Direction::DeviceToHost, out_bytes);
  }
  st.end_time = st.sim().now();
  st.done = true;
}

class FusionRuntime final : public TaskRuntime {
 public:
  std::string_view name() const override { return "Fusion"; }

  bool supports(const workloads::Workload& w) const override {
    // Fusion needs the full task list at compile/launch time.
    return max_wave(w) == 0;
  }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    PAGODA_CHECK_MSG(supports(w), "static fusion cannot run this workload");
    FusionState st(cfg);
    st.fused_tasks.reserve(w.tasks().size());
    for (const TaskSpec& t : w.tasks()) st.fused_tasks.push_back(t.params);
    st.sim().spawn(controller(st, cfg, w));
    st.session.run_until(cfg.time_cap);

    engine::ResultBuilder marks(static_cast<int>(w.tasks().size()));
    marks.complete(st.done, st.end_time);
    marks.occupancy_device(st.session.device());
    marks.wires_from(st.session.device());
    // Every task's result is only available when the whole fused kernel
    // retires — the Fig 10 latency model for fused/batched execution.
    marks.uniform_interval(st.kernel_issue, st.kernel_complete);
    return marks.assemble(cfg.collect_latencies, cfg.collector);
  }
};

}  // namespace

std::unique_ptr<TaskRuntime> make_fusion_runtime() {
  return std::make_unique<FusionRuntime>();
}

}  // namespace pagoda::baselines
