// Driver for the multi-GPU serving layer (src/cluster/): turns a workload's
// task list into an open-loop request stream over a Dispatcher fronting N
// Pagoda runtimes. This is the scale-out counterpart of pagoda_driver.cpp —
// instead of two spawner threads feeding one device, an arrival process
// offers requests and a placement policy spreads them over the fleet.
//
// The "Cluster" runtime only handles wave-free workloads: a serving cluster
// has no global barrier to express SLUD's dependency waves.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/factories.h"
#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/check.h"
#include "engine/result_builder.h"
#include "fault/plan.h"
#include "engine/session.h"
#include "obs/collector.h"
#include "power/governor.h"
#include "sim/process.h"

namespace pagoda::baselines {
namespace {

using workloads::TaskSpec;

std::string node_prefix(int index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "dev%02d.", index);
  return buf;
}

struct ClusterRunState {
  engine::Session session;  // clock-only; each GpuNode builds a sub-session
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher dispatcher;
  bool done = false;
  sim::Time end_time = 0;

  ClusterRunState(const RunConfig& cfg,
                  std::unique_ptr<cluster::PlacementPolicy> policy)
      : session(clock_only(cfg)),
        fleet(sim, node_configs(cfg)),
        dispatcher(fleet, std::move(policy), dispatcher_config(cfg)) {}

  static engine::SessionConfig clock_only(const RunConfig& cfg) {
    engine::SessionConfig c;
    c.device = false;
    c.sim_threads = cfg.cluster.sim_threads;
    c.sim_sharding = !cfg.cluster.global_queue;
    return c;
  }

  static std::vector<cluster::NodeConfig> node_configs(const RunConfig& cfg) {
    std::vector<gpu::GpuSpec> specs = cfg.cluster.specs;
    if (specs.empty()) specs.push_back(cfg.spec);
    std::vector<cluster::NodeConfig> nodes;
    nodes.reserve(specs.size());
    for (const gpu::GpuSpec& spec : specs) {
      cluster::NodeConfig nc;
      nc.spec = spec;
      nc.pcie = cfg.pcie;
      nc.host = cfg.host;
      nc.pagoda = cfg.pagoda;
      nc.pagoda.mode = cfg.mode;
      // One policy end-to-end: the scheduler warps claim in the same order
      // the dispatcher admits.
      nc.pagoda.sched = cfg.cluster.sched;
      nodes.push_back(nc);
    }
    return nodes;
  }

  static cluster::DispatcherConfig dispatcher_config(const RunConfig& cfg) {
    cluster::DispatcherConfig dc;
    dc.queue_limit = cfg.cluster.queue_limit;
    dc.default_slo = cfg.cluster.slo;
    dc.host = cfg.host;
    std::string err;
    std::optional<fault::FaultPlan> plan =
        fault::FaultPlan::parse(cfg.cluster.faults, &err);
    PAGODA_CHECK_MSG(plan.has_value(), "bad --faults spec (CLI validates "
                                       "first; direct callers must too)");
    dc.faults = std::move(*plan);
    if (dc.faults.seed == 0) dc.faults.seed = cfg.cluster.seed;
    dc.retry.seed = dc.faults.seed;
    if (cfg.cluster.retry_budget >= 0) {
      dc.retry.budget = cfg.cluster.retry_budget;
    }
    dc.task_timeout = cfg.cluster.task_timeout;
    dc.sched = cfg.cluster.sched;
    dc.qos = cfg.cluster.qos;
    // One oversubscription factor end-to-end: virtual slot admission here
    // mirrors the per-node VirtualShmem/register virtualization.
    dc.oversub = cfg.pagoda.oversub;
    if (!cfg.cluster.power.empty()) {
      dc.power.spec = power::PowerSpec::parse(cfg.cluster.power, &err);
      PAGODA_CHECK_MSG(dc.power.spec.has_value(),
                       "bad --power spec (CLI validates first; direct "
                       "callers must too)");
      const std::optional<power::GovernorKind> gov =
          power::parse_governor(cfg.cluster.governor);
      PAGODA_CHECK_MSG(gov.has_value(), "unknown power governor");
      dc.power.governor = *gov;
      dc.power.cap_watts = cfg.cluster.power_cap_watts;
      // energy-min packs the fleet precisely so the governor can sleep the
      // idle tail; the two are one strategy, so packing arms sleep.
      dc.power.manage_sleep = cfg.cluster.policy == "energy-min";
    }
    dc.migration.enabled = cfg.cluster.migrate;
    if (!cfg.cluster.autoscale.empty()) {
      std::optional<migrate::AutoscaleConfig> as =
          migrate::parse_autoscale_spec(cfg.cluster.autoscale, &err);
      PAGODA_CHECK_MSG(as.has_value(), "bad --autoscale spec (CLI validates "
                                       "first; direct callers must too)");
      dc.autoscale = std::move(*as);
    }
    if (!cfg.cluster.resize.empty()) {
      std::optional<std::vector<migrate::ResizeStep>> plan =
          migrate::parse_resize_spec(cfg.cluster.resize, &err);
      PAGODA_CHECK_MSG(plan.has_value(), "bad --resize spec (CLI validates "
                                         "first; direct callers must too)");
      dc.autoscale.plan = std::move(*plan);
    }
    return dc;
  }
};

/// The open-loop source: offers one request per workload task, paced by the
/// arrival process. Requests inherit the task's kernel and copy volumes.
sim::Process source(ClusterRunState& st, const RunConfig& cfg,
                    std::span<const TaskSpec> tasks,
                    cluster::ArrivalConfig acfg) {
  cluster::ArrivalSequence seq(acfg, cfg.cluster.seed);
  for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await st.sim.delay(gap);
    const TaskSpec& t = tasks[static_cast<std::size_t>(i)];
    cluster::Request r;
    r.params = t.params;
    if (cfg.include_data_copies) {
      r.h2d_bytes = t.h2d_bytes;
      r.d2h_bytes = t.d2h_bytes;
    }
    r.index = i;
    r.cls = cfg.cluster.default_class;
    st.dispatcher.offer(std::move(r));
  }
  st.dispatcher.close();
}

sim::Process drainer(ClusterRunState& st) {
  co_await st.dispatcher.drain();
  st.end_time = st.sim.now();
  st.done = true;
}

class ClusterDriver final : public TaskRuntime {
 public:
  std::string_view name() const override { return "Cluster"; }

  bool supports(const workloads::Workload& w) const override {
    return max_wave(w) == 0;  // no global barrier in a serving cluster
  }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    std::unique_ptr<cluster::PlacementPolicy> policy =
        cluster::make_policy(cfg.cluster.policy);
    PAGODA_CHECK_MSG(policy != nullptr, "unknown placement policy");
    const std::optional<cluster::ArrivalConfig> acfg =
        cluster::ArrivalConfig::parse(cfg.cluster.arrival);
    PAGODA_CHECK_MSG(acfg.has_value(), "bad arrival spec");

    ClusterRunState st(cfg, std::move(policy));
    if (cfg.collector != nullptr) {
      for (int i = 0; i < st.fleet.size(); ++i) {
        st.fleet.node(i).session().attach_collector(*cfg.collector,
                                                    node_prefix(i));
      }
      st.dispatcher.install_sampler(*cfg.collector);
      if (cfg.collector->spans_enabled()) {
        st.dispatcher.set_tracer(&cfg.collector->request_tracer());
      }
    }
    st.fleet.start();
    st.sim.spawn(source(st, cfg, w.tasks(), *acfg));
    st.sim.spawn(drainer(st));
    st.sim.run_until(cfg.time_cap);

    engine::ResultBuilder marks(0);  // the dispatcher supplies everything
    marks.complete(st.done, st.end_time);
    marks.set_tasks(st.dispatcher.stats().completed);
    double warp_capacity = 0.0;
    for (int i = 0; i < st.fleet.size(); ++i) {
      gpu::Device& dev = st.fleet.node(i).device();
      marks.wires_from(dev);
      warp_capacity += static_cast<double>(dev.spec().max_resident_warps());
    }
    marks.occupancy_integral(st.fleet.executor_busy_warp_seconds(),
                             warp_capacity);
    if (cfg.collect_latencies) {
      marks.set_latencies({st.dispatcher.latencies_us().begin(),
                           st.dispatcher.latencies_us().end()});
    }
    for (const cluster::Dispatcher::Span& s : st.dispatcher.spans()) {
      marks.add_span(s.arrival, s.done);
    }
    if (cfg.collector != nullptr) {
      st.dispatcher.export_metrics(cfg.collector->metrics());
    }
    RunResult res = marks.assemble(cfg.collect_latencies, cfg.collector);
    st.fleet.shutdown();
    return res;
  }
};

}  // namespace

std::unique_ptr<TaskRuntime> make_cluster_runtime() {
  return std::make_unique<ClusterDriver>();
}

}  // namespace pagoda::baselines
