// Common interface over every task-execution scheme the paper compares:
//
//   Pagoda          — the full runtime (continuous spawning + concurrent,
//                     pipelined scheduling)
//   PagodaBatching  — Fig 11 ablation: Pagoda's scheduler, GeMTC's batching
//   HyperQ          — one CUDA kernel per task over 32 streams/connections
//   GeMTC           — persistent SuperKernel, single FIFO queue, batches
//   Fusion          — all tasks statically fused into one monolithic kernel
//   PThreads        — task pool on the 20-core CPU
//   Sequential      — one CPU core (the Fig 5 speedup baseline)
//
// Each run() builds a fresh Simulation + Device, executes every task of the
// workload (respecting SLUD-style dependency waves) and reports end-to-end
// virtual time, per-task latencies and achieved occupancy.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/run_result.h"
#include "gpu/gpu_spec.h"
#include "host/host_api.h"
#include "pagoda/master_kernel.h"
#include "pcie/pcie_bus.h"
#include "workloads/workload.h"

namespace pagoda::obs {
class Collector;
}

namespace pagoda::baselines {

/// Options for the "Cluster" runtime (src/cluster/): a fleet of simulated
/// GPUs behind one dispatcher. Ignored by every single-device scheme.
struct ClusterOptions {
  /// One spec per GPU; empty means one device of RunConfig::spec.
  std::vector<gpu::GpuSpec> specs;
  /// Placement policy name (see cluster::all_policy_names()).
  std::string policy = "round-robin";
  /// Arrival process spec (see cluster::ArrivalConfig::parse()).
  std::string arrival = "closed";
  /// Per-request deadline for SLO accounting; 0 disables it.
  sim::Duration slo = 0;
  /// Admission bound on the dispatcher backlog; 0 = unbounded.
  int queue_limit = 0;
  /// Seed for the arrival process.
  std::uint64_t seed = 1;
  /// Fault-plan spec (see fault::FaultPlan::parse()); "" disables injection.
  std::string faults;
  /// Retries per request beyond the first attempt; -1 = the fault layer's
  /// default budget.
  int retry_budget = -1;
  /// Per-attempt execution deadline; 0 = none (required nonzero by plans
  /// that wedge or crash).
  sim::Duration task_timeout = 0;
  /// QoS scheduling policy for the dispatcher's admission queues (and, via
  /// TaskParams tags, the GPU-side claim order). fifo = legacy behavior.
  sched::PolicyConfig sched{};
  /// Class stamped on every request the driver synthesizes from the
  /// workload's tasks.
  sched::Class default_class = sched::Class::kStandard;
  /// Arms per-class sched.* metric export even under fifo.
  bool qos = false;
  /// Power-model spec (see power::PowerSpec::parse()); "" leaves the power
  /// plane off and the run byte-identical to a power-unaware build.
  std::string power;
  /// Power governor name (see power::all_governor_names()); only read when
  /// `power` is set.
  std::string governor = "static";
  /// Fleet-watt budget for the powercap governor and the power-cap
  /// placement policy; 0 = uncapped.
  double power_cap_watts = 0.0;
  /// Arms migrate-not-shed drains (checkpoint/restore of in-flight
  /// attempts); off leaves drain_node() with its finish-in-place semantics.
  bool migrate = false;
  /// Autoscaler spec "UTIL[:LOW:HIGH[:MIN]]" (see
  /// migrate::parse_autoscale_spec); "" leaves utilization scaling off.
  /// Requires `migrate` and a power spec.
  std::string autoscale;
  /// Rolling-resize plan "AT_US:NODES[,...]" (see
  /// migrate::parse_resize_spec); "" means no plan. Same requirements.
  std::string resize;
  /// Worker threads for the sharded simulation core (--threads). 1 keeps
  /// the sequential-sharded driver, whose pop order is exactly the legacy
  /// single-queue order.
  int sim_threads = 1;
  /// Run on the historical single global event queue instead of per-node
  /// shards (--sim-core=global); the determinism-soak reference mode.
  bool global_queue = false;
};

struct RunConfig {
  gpu::ExecMode mode = gpu::ExecMode::Model;
  /// Include per-task H2D/D2H data copies (Fig 5 "overall") or not
  /// (Fig 7/8 "compute time only").
  bool include_data_copies = true;
  int spawner_threads = 2;  // paper Fig 1a: two CPU spawner threads
  gpu::GpuSpec spec = gpu::GpuSpec::titan_x();
  pcie::PcieConfig pcie{};
  host::HostCosts host{};
  runtime::PagodaConfig pagoda{};
  /// GeMTC / Pagoda-Batching batch size; 0 = one task per SuperKernel
  /// worker (GeMTC's natural batch).
  int batch_size = 0;
  /// Hard cap on virtual time (deadlock safety net for experiments).
  sim::Duration time_cap = sim::seconds(3600.0);
  /// Record per-task spawn->completion latencies (Fig 10).
  bool collect_latencies = false;
  /// Observability sink (see obs/collector.h). When set, the driver attaches
  /// its Device/Runtime/CpuCluster, emits task spans and calls finish()
  /// before tearing the run down. nullptr disables collection entirely; a
  /// Collector serves exactly one run() call.
  obs::Collector* collector = nullptr;
  /// Multi-GPU serving options (the "Cluster" runtime only).
  ClusterOptions cluster{};
  /// QoS class tagged onto every task the single-device Pagoda drivers
  /// spawn (TaskParams::sched_class). Spawn order within a batch follows
  /// RunConfig::pagoda.sched when it is not fifo.
  sched::Class task_class = sched::Class::kStandard;
};

/// The uniform measurement (assembled by engine::ResultBuilder).
using RunResult = engine::RunResult;

class TaskRuntime {
 public:
  virtual ~TaskRuntime() = default;
  virtual std::string_view name() const = 0;

  /// Whether this scheme can execute the workload at all. Batch-based
  /// schemes (GeMTC, Fusion) need the task count statically and cannot run
  /// dependency-wave workloads like SLUD (§6.2/§6.3).
  virtual bool supports(const workloads::Workload& w) const;

  virtual RunResult run(workloads::Workload& w, const RunConfig& cfg) = 0;
};

/// Factory: "Pagoda", "PagodaBatching", "HyperQ", "GeMTC", "Fusion",
/// "PThreads", "Sequential", "Cluster".
std::unique_ptr<TaskRuntime> make_runtime(std::string_view name);

/// Every name make_runtime() accepts, in canonical (comparison-table) order.
std::span<const std::string_view> all_runtime_names();

/// Highest dependency wave in the workload (0 = all independent). Reads the
/// value Workload::generate() cached; no task-list scan.
int max_wave(const workloads::Workload& w);

}  // namespace pagoda::baselines
