// Drivers for the Pagoda runtime itself: the full scheme (continuous
// spawning + concurrent pipelined scheduling) and the Fig 11 ablation
// "Pagoda-Batching" (same GPU scheduler, but the CPU withholds the next
// batch until the previous one drains, like GeMTC).
//
// Host-side structure mirrors the paper's Fig 1a: N spawner threads copy a
// task's input to the device (synchronously, on their own data stream) and
// then taskSpawn it; a completion observer plays the nested wait()-then-
// copy-output task, issuing the D2H transfer as soon as the task finishes.
#include <memory>
#include <unordered_map>

#include "baselines/factories.h"
#include "engine/result_builder.h"
#include "engine/stage_pipeline.h"
#include "gpu/stream.h"
#include "sched/policy.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

using workloads::TaskSpec;

struct RunState {
  engine::Session session;
  engine::StagePipeline pipe;
  engine::ResultBuilder marks;  // spawn -> completion times
  std::unordered_map<runtime::TaskId, int> entry_to_idx;
  int outstanding_d2h = 0;
  bool draining = false;
  sim::Trigger drained;
  int pending_spawns = 0;
  sim::Condition spawns_cv;
  /// Bounds concurrently in-flight input copies, like the paper's Fig 1a
  /// OpenMP task pool whose tasks block in a synchronous cudaMemcpy: without
  /// a bound, queued bulk inputs would starve the (FIFO) DMA engine of the
  /// small TaskTable entry copies that drive scheduling.
  sim::Semaphore data_slots;
  /// Host-side spawn-order policy (persists across batch slices so WFQ's
  /// virtual time carries over); fifo leaves slices untouched.
  sched::Policy sched_policy;
  bool done = false;
  sim::Time end_time = 0;

  RunState(const RunConfig& cfg, int num_tasks)
      : session(pagoda_session(cfg)),
        // Stream pools: the Fig 1a OpenMP task pool keeps many copies in
        // flight, hiding per-transaction DMA latency (as HyperQ's 32 streams
        // do).
        pipe(session, {.h2d_streams = 8,
                       .d2h_streams = 4,
                       .spawner_threads = cfg.spawner_threads}),
        marks(num_tasks),
        drained(session.sim()),
        spawns_cv(session.sim()),
        data_slots(session.sim(), 8),
        sched_policy(cfg.pagoda.sched) {}

  sim::Simulation& sim() { return session.sim(); }
  runtime::Runtime& rt() { return session.rt(); }
};

/// Performs the taskSpawn for one task (invoked once its input copy has
/// landed). Runs as its own tiny process, modelling the paper's Fig 1a
/// OpenMP task pool where copies and spawns of different tasks overlap.
/// Takes the (possibly class-tagged) params by value: the copy-completion
/// callback outlives the spawner's loop iteration.
sim::Process spawn_one(RunState& st, runtime::TaskParams p, int idx) {
  const runtime::TaskHandle h = co_await st.rt().task_spawn(p);
  st.entry_to_idx[h.id] = idx;
  st.marks.mark_start(idx, st.sim().now());
  st.pending_spawns -= 1;
  if (st.pending_spawns == 0) st.spawns_cv.notify_all();
}

/// The spec's params with the driver-wide QoS class applied. kStandard (the
/// default) leaves pre-tagged specs alone, so programmatic mixed-class task
/// lists survive the stamp.
runtime::TaskParams tagged_params(const RunConfig& cfg, const TaskSpec& t) {
  runtime::TaskParams p = t.params;
  if (cfg.task_class != sched::Class::kStandard) {
    p.sched_class = static_cast<std::uint8_t>(cfg.task_class);
  }
  return p;
}

sim::Process spawner(RunState& st, const RunConfig& cfg,
                     std::span<const TaskSpec> tasks,
                     std::span<const int> indices) {
  // The spawn stream is the first point where arrival order can be
  // overridden (the scheduler warps' claim pass is the second): under a
  // non-fifo policy the slice is reordered by the policy comparator over
  // each task's QoS tags, slice position breaking ties. fifo takes the
  // slice verbatim — byte-identical to the pre-QoS driver.
  std::vector<int> reordered;
  std::span<const int> order = indices;
  if (!st.sched_policy.fifo()) {
    std::vector<sched::SchedKey> keys(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const runtime::TaskParams p =
          tagged_params(cfg, tasks[static_cast<std::size_t>(indices[i])]);
      sched::SchedKey& k = keys[i];
      k.cls = sched::class_from_raw(p.sched_class);
      k.deadline = sched::deadline_from_us(p.deadline_us);
      k.cost = static_cast<double>(p.warps_total());
      k.seq = static_cast<std::uint64_t>(i);
    }
    reordered.reserve(indices.size());
    for (const int pos : st.sched_policy.order(keys)) {
      st.sched_policy.served(keys[static_cast<std::size_t>(pos)]);
      reordered.push_back(indices[static_cast<std::size_t>(pos)]);
    }
    order = reordered;
  }
  for (const int idx : order) {
    const TaskSpec& t = tasks[static_cast<std::size_t>(idx)];
    const runtime::TaskParams p = tagged_params(cfg, t);
    st.pending_spawns += 1;
    if (cfg.include_data_copies && t.h2d_bytes > 0) {
      // Fig 1a copies a task's input before spawning it; with the OpenMP
      // task pool, copies and spawns of *different* tasks overlap (the
      // spawn rides the copy's completion), but only ~pool-size copies are
      // ever in flight (each pool task blocks in its synchronous copy).
      co_await st.data_slots.acquire();
      co_await st.pipe.copy_staged(
          st.pipe.h2d_stream(static_cast<std::size_t>(idx)),
          pcie::Direction::HostToDevice, t.h2d_bytes, [&st, p, idx] {
            st.data_slots.release();
            st.sim().spawn(spawn_one(st, p, idx));
          });
    } else {
      st.sim().spawn(spawn_one(st, p, idx));
      co_await st.sim().delay(cfg.host.task_spawn_fill);
    }
  }
}

sim::Process controller(RunState& st, const RunConfig& cfg,
                        workloads::Workload& w, int batch, bool batching) {
  const std::span<const TaskSpec> tasks = w.tasks();

  // Completion observer: record latency and issue the output copy.
  st.rt().set_completion_observer(
      [&st, &cfg, tasks](runtime::TaskId id, sim::Time t) {
        const auto it = st.entry_to_idx.find(id);
        if (it == st.entry_to_idx.end()) return;
        const int idx = it->second;
        st.marks.mark_end(idx, t);
        const TaskSpec& spec = tasks[static_cast<std::size_t>(idx)];
        if (cfg.include_data_copies && spec.d2h_bytes > 0) {
          st.outstanding_d2h += 1;
          st.pipe.d2h_stream(static_cast<std::size_t>(idx))
              .memcpy_async(pcie::Direction::DeviceToHost, nullptr, nullptr,
                            static_cast<std::size_t>(spec.d2h_bytes), [&st] {
                              st.outstanding_d2h -= 1;
                              if (st.outstanding_d2h == 0 && st.draining) {
                                st.drained.fire();
                              }
                            });
        }
      });

  engine::StagePipeline::WavePlan plan;
  plan.slice = [&st, &cfg, tasks](std::span<const int> slice) {
    return spawner(st, cfg, tasks, slice);
  };
  plan.chunk_size = batching ? std::max(1, batch) : 0;
  plan.after_chunk = [&st, batching]() -> sim::Task<> {
    while (st.pending_spawns > 0) co_await st.spawns_cv.wait();
    if (batching) co_await st.rt().wait_all();  // batch gate (Fig 11)
  };
  plan.after_wave = [&st]() -> sim::Task<> {
    while (st.pending_spawns > 0) co_await st.spawns_cv.wait();
    co_await st.rt().wait_all();  // wave gate (SLUD dependencies)
  };
  co_await st.pipe.run_waves(tasks, max_wave(w) + 1, plan);

  // Drain outstanding output copies.
  st.draining = true;
  if (st.outstanding_d2h > 0) co_await st.drained.wait();
  st.end_time = st.sim().now();
  st.done = true;
}

class PagodaDriver final : public TaskRuntime {
 public:
  explicit PagodaDriver(bool batching) : batching_(batching) {}

  std::string_view name() const override {
    return batching_ ? "PagodaBatching" : "Pagoda";
  }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    const auto num_tasks = static_cast<int>(w.tasks().size());
    RunState st(cfg, num_tasks);
    st.session.start();
    const int batch =
        cfg.batch_size > 0 ? cfg.batch_size : gemtc_worker_count(cfg.spec, w);
    st.sim().spawn(controller(st, cfg, w, batch, batching_));
    st.session.run_until(cfg.time_cap);

    st.marks.complete(st.done, st.end_time);
    st.marks.wires_from(st.session.device());
    st.marks.occupancy_executors(st.rt(), cfg.spec);
    RunResult res = st.marks.assemble(cfg.collect_latencies, cfg.collector);
    st.session.shutdown();
    return res;
  }

 private:
  bool batching_;
};

}  // namespace

std::unique_ptr<TaskRuntime> make_pagoda_runtime(bool batching) {
  return std::make_unique<PagodaDriver>(batching);
}

}  // namespace pagoda::baselines
