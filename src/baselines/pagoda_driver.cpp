// Drivers for the Pagoda runtime itself: the full scheme (continuous
// spawning + concurrent pipelined scheduling) and the Fig 11 ablation
// "Pagoda-Batching" (same GPU scheduler, but the CPU withholds the next
// batch until the previous one drains, like GeMTC).
//
// Host-side structure mirrors the paper's Fig 1a: N spawner threads copy a
// task's input to the device (synchronously, on their own data stream) and
// then taskSpawn it; a completion observer plays the nested wait()-then-
// copy-output task, issuing the D2H transfer as soon as the task finishes.
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/factories.h"
#include "common/check.h"
#include "gpu/device.h"
#include "gpu/stream.h"
#include "obs/collector.h"
#include "pagoda/runtime.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

using workloads::TaskSpec;

struct RunState {
  sim::Simulation sim;
  gpu::Device dev;
  runtime::Runtime rt;
  std::deque<gpu::Stream> h2d_streams;  // input-copy pool (latency hiding)
  std::deque<gpu::Stream> d2h_streams;  // output-copy pool
  std::unordered_map<runtime::TaskId, int> entry_to_idx;
  std::vector<sim::Time> spawn_time;
  std::vector<sim::Time> complete_time;
  int outstanding_d2h = 0;
  bool draining = false;
  sim::Trigger drained;
  int pending_spawns = 0;
  sim::Condition spawns_cv;
  /// Bounds concurrently in-flight input copies, like the paper's Fig 1a
  /// OpenMP task pool whose tasks block in a synchronous cudaMemcpy: without
  /// a bound, queued bulk inputs would starve the (FIFO) DMA engine of the
  /// small TaskTable entry copies that drive scheduling.
  sim::Semaphore data_slots;
  bool done = false;
  sim::Time end_time = 0;

  RunState(const RunConfig& cfg, int num_tasks)
      : dev(sim, cfg.spec, cfg.pcie),
        rt(dev, cfg.host,
           [&] {
             runtime::PagodaConfig pc = cfg.pagoda;
             pc.mode = cfg.mode;
             return pc;
           }()),
        spawn_time(static_cast<std::size_t>(num_tasks), 0),
        complete_time(static_cast<std::size_t>(num_tasks), 0),
        drained(sim),
        spawns_cv(sim),
        data_slots(sim, 8) {}
};

/// Performs the taskSpawn for one task (invoked once its input copy has
/// landed). Runs as its own tiny process, modelling the paper's Fig 1a
/// OpenMP task pool where copies and spawns of different tasks overlap.
sim::Process spawn_one(RunState& st, const TaskSpec& t, int idx) {
  const runtime::TaskHandle h = co_await st.rt.task_spawn(t.params);
  st.entry_to_idx[h.id] = idx;
  st.spawn_time[static_cast<std::size_t>(idx)] = st.sim.now();
  st.pending_spawns -= 1;
  if (st.pending_spawns == 0) st.spawns_cv.notify_all();
}

sim::Process spawner(RunState& st, const RunConfig& cfg,
                     std::span<const TaskSpec> tasks,
                     std::span<const int> indices) {
  for (const int idx : indices) {
    const TaskSpec& t = tasks[static_cast<std::size_t>(idx)];
    st.pending_spawns += 1;
    if (cfg.include_data_copies && t.h2d_bytes > 0) {
      // Fig 1a copies a task's input before spawning it; with the OpenMP
      // task pool, copies and spawns of *different* tasks overlap (the
      // spawn rides the copy's completion), but only ~pool-size copies are
      // ever in flight (each pool task blocks in its synchronous copy).
      co_await st.data_slots.acquire();
      co_await st.sim.delay(cfg.host.memcpy_setup);
      gpu::Stream& data_stream =
          st.h2d_streams[static_cast<std::size_t>(idx) %
                         st.h2d_streams.size()];
      data_stream.memcpy_async(
          pcie::Direction::HostToDevice, nullptr, nullptr,
          static_cast<std::size_t>(t.h2d_bytes), [&st, &t, idx] {
            st.data_slots.release();
            st.sim.spawn(spawn_one(st, t, idx));
          });
    } else {
      st.sim.spawn(spawn_one(st, t, idx));
      co_await st.sim.delay(cfg.host.task_spawn_fill);
    }
  }
}

sim::Process controller(RunState& st, const RunConfig& cfg,
                        workloads::Workload& w, int batch, bool batching) {
  const std::span<const TaskSpec> tasks = w.tasks();
  const int waves = max_wave(w) + 1;

  // Completion observer: record latency and issue the output copy.
  st.rt.set_completion_observer(
      [&st, &cfg, tasks](runtime::TaskId id, sim::Time t) {
        const auto it = st.entry_to_idx.find(id);
        if (it == st.entry_to_idx.end()) return;
        const int idx = it->second;
        st.complete_time[static_cast<std::size_t>(idx)] = t;
        const TaskSpec& spec = tasks[static_cast<std::size_t>(idx)];
        if (cfg.include_data_copies && spec.d2h_bytes > 0) {
          st.outstanding_d2h += 1;
          st.d2h_streams[static_cast<std::size_t>(idx) %
                         st.d2h_streams.size()].memcpy_async(
              pcie::Direction::DeviceToHost, nullptr, nullptr,
              static_cast<std::size_t>(spec.d2h_bytes), [&st] {
                st.outstanding_d2h -= 1;
                if (st.outstanding_d2h == 0 && st.draining) st.drained.fire();
              });
        }
      });

  // Stream pools: the Fig 1a OpenMP task pool keeps many copies in flight,
  // hiding per-transaction DMA latency (as HyperQ's 32 streams do).
  for (int s = 0; s < 8; ++s) st.h2d_streams.emplace_back(st.dev);
  for (int s = 0; s < 4; ++s) st.d2h_streams.emplace_back(st.dev);

  for (int wave = 0; wave < waves; ++wave) {
    std::vector<int> wave_tasks;
    for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
      if (tasks[static_cast<std::size_t>(i)].wave == wave) {
        wave_tasks.push_back(i);
      }
    }
    const int chunk_size =
        batching ? std::max(1, batch) : static_cast<int>(wave_tasks.size());
    for (std::size_t chunk_start = 0; chunk_start < wave_tasks.size();
         chunk_start += static_cast<std::size_t>(chunk_size)) {
      const std::size_t chunk_end =
          std::min(wave_tasks.size(),
                   chunk_start + static_cast<std::size_t>(chunk_size));
      const std::span<const int> chunk(wave_tasks.data() + chunk_start,
                                       chunk_end - chunk_start);
      // Split the chunk among the spawner threads.
      std::vector<sim::Joinable> joins;
      const int nsp = cfg.spawner_threads;
      const std::size_t per = (chunk.size() + static_cast<std::size_t>(nsp) - 1) /
                              static_cast<std::size_t>(nsp);
      for (int s = 0; s < nsp; ++s) {
        const std::size_t lo = static_cast<std::size_t>(s) * per;
        if (lo >= chunk.size()) break;
        const std::size_t hi = std::min(chunk.size(), lo + per);
        joins.push_back(st.sim.spawn(
            spawner(st, cfg, tasks, chunk.subspan(lo, hi - lo))));
      }
      for (const sim::Joinable& j : joins) co_await j.join();
      while (st.pending_spawns > 0) co_await st.spawns_cv.wait();
      if (batching) co_await st.rt.wait_all();  // batch gate (Fig 11)
    }
    while (st.pending_spawns > 0) co_await st.spawns_cv.wait();
    co_await st.rt.wait_all();  // wave gate (SLUD dependencies)
  }

  // Drain outstanding output copies.
  st.draining = true;
  if (st.outstanding_d2h > 0) co_await st.drained.wait();
  st.end_time = st.sim.now();
  st.done = true;
}

class PagodaDriver final : public TaskRuntime {
 public:
  explicit PagodaDriver(bool batching) : batching_(batching) {}

  std::string_view name() const override {
    return batching_ ? "PagodaBatching" : "Pagoda";
  }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    const auto num_tasks = static_cast<int>(w.tasks().size());
    RunState st(cfg, num_tasks);
    if (cfg.collector != nullptr) {
      cfg.collector->attach_device(st.dev);
      cfg.collector->attach_pagoda(st.rt);
    }
    st.rt.start();
    const int batch =
        cfg.batch_size > 0 ? cfg.batch_size : gemtc_worker_count(cfg.spec, w);
    st.sim.spawn(controller(st, cfg, w, batch, batching_));
    st.sim.run_until(cfg.time_cap);

    RunResult res;
    res.completed = st.done;
    res.elapsed = st.end_time;
    res.tasks = num_tasks;
    res.h2d_wire_busy =
        st.dev.pcie().link(pcie::Direction::HostToDevice).busy_time();
    res.d2h_wire_busy =
        st.dev.pcie().link(pcie::Direction::DeviceToHost).busy_time();
    const double elapsed_s = sim::to_seconds(st.end_time);
    if (elapsed_s > 0) {
      res.occupancy =
          st.rt.master_kernel().executor_busy_warp_seconds() /
          (elapsed_s * static_cast<double>(cfg.spec.max_resident_warps()));
    }
    if (cfg.collect_latencies) {
      res.task_latency_us.reserve(static_cast<std::size_t>(num_tasks));
      for (int i = 0; i < num_tasks; ++i) {
        res.task_latency_us.push_back(sim::to_microseconds(
            st.complete_time[static_cast<std::size_t>(i)] -
            st.spawn_time[static_cast<std::size_t>(i)]));
      }
    }
    if (cfg.collector != nullptr) {
      for (int i = 0; i < num_tasks; ++i) {
        cfg.collector->task_span(st.spawn_time[static_cast<std::size_t>(i)],
                                 st.complete_time[static_cast<std::size_t>(i)]);
      }
      cfg.collector->finish(st.end_time, num_tasks);
    }
    st.rt.shutdown();
    return res;
  }

 private:
  bool batching_;
};

}  // namespace

std::unique_ptr<TaskRuntime> make_pagoda_runtime(bool batching) {
  return std::make_unique<PagodaDriver>(batching);
}

}  // namespace pagoda::baselines
