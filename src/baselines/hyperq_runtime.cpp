// CUDA-HyperQ baseline: one kernel per task, issued round-robin over 32
// streams (the paper sets CUDA_DEVICE_MAX_CONNECTIONS=32), so at most 32
// narrow kernels are concurrently resident — the §2 arithmetic that caps
// occupancy at e.g. 16.67% for 256-thread tasks.
//
// Per task, on its stream: H2D input copy, kernel, D2H output copy. The host
// threads pay the driver costs (memcpy setup, kernel launch) for every
// enqueue, which is itself a first-order cost at 32K tasks.
#include <deque>
#include <memory>
#include <vector>

#include "baselines/factories.h"
#include "gpu/device.h"
#include "gpu/stream.h"
#include "obs/collector.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

using workloads::TaskSpec;

constexpr int kStreams = 32;

struct HqState {
  sim::Simulation sim;
  gpu::Device dev;
  std::deque<gpu::Stream> streams;
  /// CUDA launches serialize on the driver's per-context lock; two host
  /// threads do not double kernel-launch throughput.
  sim::Semaphore launch_lock;
  std::vector<sim::Time> issue_time;
  std::vector<sim::Time> complete_time;
  bool done = false;
  sim::Time end_time = 0;

  HqState(const RunConfig& cfg, int num_tasks)
      : dev(sim, cfg.spec, cfg.pcie),
        launch_lock(sim, 1),
        issue_time(static_cast<std::size_t>(num_tasks), 0),
        complete_time(static_cast<std::size_t>(num_tasks), 0) {
    for (int i = 0; i < kStreams; ++i) streams.emplace_back(dev);
  }
};

gpu::KernelLaunchParams to_launch(const TaskSpec& t, const RunConfig& cfg) {
  gpu::KernelLaunchParams p;
  p.fn = t.params.fn;
  p.args.assign(t.params.args.begin(),
                t.params.args.begin() + t.params.args_size);
  p.threads_per_block = t.params.threads_per_block;
  p.num_blocks = t.params.num_blocks;
  p.regs_per_thread = t.regs_per_thread;
  p.shared_mem_bytes = t.params.shared_mem_bytes;
  p.mode = cfg.mode;
  return p;
}

sim::Process enqueuer(HqState& st, const RunConfig& cfg,
                      std::span<const TaskSpec> tasks,
                      std::span<const int> indices) {
  for (const int idx : indices) {
    const TaskSpec& t = tasks[static_cast<std::size_t>(idx)];
    gpu::Stream& stream = st.streams[static_cast<std::size_t>(idx % kStreams)];
    if (cfg.include_data_copies && t.h2d_bytes > 0) {
      co_await st.sim.delay(cfg.host.memcpy_setup);
      stream.memcpy_async(pcie::Direction::HostToDevice, nullptr, nullptr,
                          static_cast<std::size_t>(t.h2d_bytes));
    }
    co_await st.launch_lock.acquire();
    co_await st.sim.delay(cfg.host.kernel_launch);
    st.launch_lock.release();
    st.issue_time[static_cast<std::size_t>(idx)] = st.sim.now();
    auto trig = stream.kernel_async(to_launch(t, cfg));
    trig->call_on_fire([&st, idx] {
      st.complete_time[static_cast<std::size_t>(idx)] = st.sim.now();
    });
    if (cfg.include_data_copies && t.d2h_bytes > 0) {
      co_await st.sim.delay(cfg.host.memcpy_setup);
      stream.memcpy_async(pcie::Direction::DeviceToHost, nullptr, nullptr,
                          static_cast<std::size_t>(t.d2h_bytes));
    }
  }
}

sim::Process controller(HqState& st, const RunConfig& cfg,
                        workloads::Workload& w) {
  const std::span<const TaskSpec> tasks = w.tasks();
  const int waves = max_wave(w) + 1;
  for (int wave = 0; wave < waves; ++wave) {
    std::vector<int> wave_tasks;
    for (int i = 0; i < static_cast<int>(tasks.size()); ++i) {
      if (tasks[static_cast<std::size_t>(i)].wave == wave) wave_tasks.push_back(i);
    }
    std::vector<sim::Joinable> joins;
    const int nsp = cfg.spawner_threads;
    const std::size_t per =
        (wave_tasks.size() + static_cast<std::size_t>(nsp) - 1) /
        static_cast<std::size_t>(nsp);
    for (int s = 0; s < nsp; ++s) {
      const std::size_t lo = static_cast<std::size_t>(s) * per;
      if (lo >= wave_tasks.size()) break;
      const std::size_t hi = std::min(wave_tasks.size(), lo + per);
      joins.push_back(st.sim.spawn(enqueuer(
          st, cfg, tasks,
          std::span<const int>(wave_tasks.data() + lo, hi - lo))));
    }
    for (const sim::Joinable& j : joins) co_await j.join();
    for (gpu::Stream& s : st.streams) co_await s.synchronize();
  }
  st.end_time = st.sim.now();
  st.done = true;
}

class HyperQRuntime final : public TaskRuntime {
 public:
  std::string_view name() const override { return "HyperQ"; }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    const auto num_tasks = static_cast<int>(w.tasks().size());
    HqState st(cfg, num_tasks);
    if (cfg.collector != nullptr) cfg.collector->attach_device(st.dev);
    st.sim.spawn(controller(st, cfg, w));
    st.sim.run_until(cfg.time_cap);

    RunResult res;
    res.completed = st.done;
    res.elapsed = st.end_time;
    res.tasks = num_tasks;
    res.h2d_wire_busy =
        st.dev.pcie().link(pcie::Direction::HostToDevice).busy_time();
    res.d2h_wire_busy =
        st.dev.pcie().link(pcie::Direction::DeviceToHost).busy_time();
    res.occupancy = st.dev.achieved_occupancy();
    if (cfg.collect_latencies) {
      for (int i = 0; i < num_tasks; ++i) {
        res.task_latency_us.push_back(sim::to_microseconds(
            st.complete_time[static_cast<std::size_t>(i)] -
            st.issue_time[static_cast<std::size_t>(i)]));
      }
    }
    if (cfg.collector != nullptr) {
      for (int i = 0; i < num_tasks; ++i) {
        cfg.collector->task_span(st.issue_time[static_cast<std::size_t>(i)],
                                 st.complete_time[static_cast<std::size_t>(i)]);
      }
      cfg.collector->finish(st.end_time, num_tasks);
    }
    return res;
  }
};

}  // namespace

std::unique_ptr<TaskRuntime> make_hyperq_runtime() {
  return std::make_unique<HyperQRuntime>();
}

}  // namespace pagoda::baselines
