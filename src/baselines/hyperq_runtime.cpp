// CUDA-HyperQ baseline: one kernel per task, issued round-robin over 32
// streams (the paper sets CUDA_DEVICE_MAX_CONNECTIONS=32), so at most 32
// narrow kernels are concurrently resident — the §2 arithmetic that caps
// occupancy at e.g. 16.67% for 256-thread tasks.
//
// Per task, on its stream: H2D input copy, kernel, D2H output copy. The host
// threads pay the driver costs (memcpy setup, kernel launch) for every
// enqueue, which is itself a first-order cost at 32K tasks.
#include <memory>

#include "baselines/factories.h"
#include "engine/result_builder.h"
#include "engine/stage_pipeline.h"
#include "gpu/stream.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

using workloads::TaskSpec;

constexpr int kStreams = 32;

struct HqState {
  engine::Session session;
  engine::StagePipeline pipe;
  engine::ResultBuilder marks;  // issue -> completion times
  /// CUDA launches serialize on the driver's per-context lock; two host
  /// threads do not double kernel-launch throughput.
  sim::Semaphore launch_lock;
  bool done = false;
  sim::Time end_time = 0;

  HqState(const RunConfig& cfg, int num_tasks)
      : session(device_session(cfg)),
        // A task's input copy, kernel and output copy share one stream
        // (d2h_streams = 0 aliases the pool).
        pipe(session, {.h2d_streams = kStreams,
                       .d2h_streams = 0,
                       .spawner_threads = cfg.spawner_threads}),
        marks(num_tasks),
        launch_lock(session.sim(), 1) {}

  sim::Simulation& sim() { return session.sim(); }
};

gpu::KernelLaunchParams to_launch(const TaskSpec& t, const RunConfig& cfg) {
  gpu::KernelLaunchParams p;
  p.fn = t.params.fn;
  p.args.assign(t.params.args.begin(),
                t.params.args.begin() + t.params.args_size);
  p.threads_per_block = t.params.threads_per_block;
  p.num_blocks = t.params.num_blocks;
  p.regs_per_thread = t.regs_per_thread;
  p.shared_mem_bytes = t.params.shared_mem_bytes;
  p.mode = cfg.mode;
  return p;
}

sim::Process enqueuer(HqState& st, const RunConfig& cfg,
                      std::span<const TaskSpec> tasks,
                      std::span<const int> indices) {
  for (const int idx : indices) {
    const TaskSpec& t = tasks[static_cast<std::size_t>(idx)];
    gpu::Stream& stream = st.pipe.h2d_stream(static_cast<std::size_t>(idx));
    if (cfg.include_data_copies && t.h2d_bytes > 0) {
      co_await st.pipe.copy_staged(stream, pcie::Direction::HostToDevice,
                                   t.h2d_bytes);
    }
    co_await st.launch_lock.acquire();
    co_await st.pipe.launch_cost();
    st.launch_lock.release();
    st.marks.mark_start(idx, st.sim().now());
    auto trig = stream.kernel_async(to_launch(t, cfg));
    trig->call_on_fire(
        [&st, idx] { st.marks.mark_end(idx, st.sim().now()); });
    if (cfg.include_data_copies && t.d2h_bytes > 0) {
      co_await st.pipe.copy_staged(stream, pcie::Direction::DeviceToHost,
                                   t.d2h_bytes);
    }
  }
}

sim::Process controller(HqState& st, const RunConfig& cfg,
                        workloads::Workload& w) {
  const std::span<const TaskSpec> tasks = w.tasks();
  engine::StagePipeline::WavePlan plan;
  plan.slice = [&st, &cfg, tasks](std::span<const int> slice) {
    return enqueuer(st, cfg, tasks, slice);
  };
  plan.after_wave = [&st]() -> sim::Task<> {
    for (int s = 0; s < kStreams; ++s) {
      co_await st.pipe.h2d_stream(static_cast<std::size_t>(s)).synchronize();
    }
  };
  co_await st.pipe.run_waves(tasks, max_wave(w) + 1, plan);
  st.end_time = st.sim().now();
  st.done = true;
}

class HyperQRuntime final : public TaskRuntime {
 public:
  std::string_view name() const override { return "HyperQ"; }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    const auto num_tasks = static_cast<int>(w.tasks().size());
    HqState st(cfg, num_tasks);
    st.sim().spawn(controller(st, cfg, w));
    st.session.run_until(cfg.time_cap);

    st.marks.complete(st.done, st.end_time);
    st.marks.wires_from(st.session.device());
    st.marks.occupancy_device(st.session.device());
    return st.marks.assemble(cfg.collect_latencies, cfg.collector);
  }
};

}  // namespace

std::unique_ptr<TaskRuntime> make_hyperq_runtime() {
  return std::make_unique<HyperQRuntime>();
}

}  // namespace pagoda::baselines
