// CPU baselines: PThreads task pool on the paper's 2x Xeon E5-2660 (20
// cores at 2.6 GHz) and the sequential single-core baseline Fig 5
// normalizes against. Tasks run entirely in host memory — no PCIe copies —
// which is why CPUs win for a handful of narrow tasks and lose at 32K.
#include <memory>
#include <vector>

#include "baselines/factories.h"
#include "engine/result_builder.h"
#include "engine/stage_pipeline.h"
#include "gpu/kernel.h"
#include "host/host_api.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

/// Calibration of the CPU model (see harness/calibration.h for discussion):
/// effective scalar-op throughput per core and the per-task pool handoff.
// A counted "op" is a multiply-accumulate plus its loads; scalar code on the
// 2.6 GHz Xeon sustains ~1.3 of those per cycle on these kernels.
constexpr double kCoreOpsPerSec = 3.5e9;
constexpr double kDispatchOps = 8000.0;  // ~2.3 us pthread pool handoff

/// Executes a task's kernel functionally on the host (Compute mode): the
/// CPU baselines run the same code the GPU kernels do, which is also how the
/// outputs stay verifiable. Warps of a block advance in barrier rounds.
void run_task_functionally(const runtime::TaskParams& p) {
  for (int block = 0; block < p.num_blocks; ++block) {
    const int warps = p.warps_per_block();
    std::vector<gpu::WarpCtx> ctxs(static_cast<std::size_t>(warps));
    std::vector<std::unique_ptr<gpu::KernelCoro>> coros;
    std::vector<std::byte> shmem(
        static_cast<std::size_t>(p.shared_mem_bytes));
    coros.reserve(static_cast<std::size_t>(warps));
    for (int w = 0; w < warps; ++w) {
      gpu::WarpCtx& ctx = ctxs[static_cast<std::size_t>(w)];
      ctx.warp_in_task = block * warps + w;
      ctx.block_index = block;
      ctx.warp_in_block = w;
      ctx.threads_per_block = p.threads_per_block;
      ctx.num_blocks = p.num_blocks;
      ctx.mode = gpu::ExecMode::Compute;
      ctx.args = p.args.data();
      ctx.shared_mem = std::span<std::byte>(shmem);
      coros.push_back(std::make_unique<gpu::KernelCoro>(
          p.fn(ctxs[static_cast<std::size_t>(w)])));
    }
    bool any_live = true;
    while (any_live) {
      any_live = false;
      for (int w = 0; w < warps; ++w) {
        auto& coro = *coros[static_cast<std::size_t>(w)];
        if (coro.done()) continue;
        const gpu::SegmentResult seg =
            gpu::run_segment(coro, ctxs[static_cast<std::size_t>(w)]);
        if (seg.at_barrier) any_live = true;
      }
    }
  }
}

struct CpuState {
  engine::Session session;
  engine::ResultBuilder marks;  // submit -> completion times
  bool done = false;
  sim::Time end_time = 0;

  CpuState(const RunConfig& cfg, int cores, int num_tasks)
      : session([&] {
          engine::SessionConfig sc;
          sc.device = false;
          sc.cpu_cores = cores;
          sc.cpu_core_ops_per_sec = kCoreOpsPerSec;
          sc.host = cfg.host;
          sc.collector = cfg.collector;
          return sc;
        }()),
        marks(num_tasks) {}

  sim::Simulation& sim() { return session.sim(); }
};

/// The pool dispatch loop runs inline on the controller (a pthread pool has
/// no per-wave spawner threads), so it keeps its shape rather than going
/// through StagePipeline::fan_out.
sim::Process controller(CpuState& st, const RunConfig& cfg,
                        std::span<const workloads::TaskSpec> tasks,
                        int waves) {
  for (int wave = 0; wave < waves; ++wave) {
    const std::vector<int> members =
        engine::StagePipeline::wave_members(tasks, wave);
    if (members.empty()) continue;
    int remaining = static_cast<int>(members.size());
    sim::Trigger wave_done(st.sim());
    int* left = &remaining;
    for (const int i : members) {
      st.marks.mark_start(i, st.sim().now());
      if (cfg.mode == gpu::ExecMode::Compute) {
        run_task_functionally(tasks[static_cast<std::size_t>(i)].params);
      }
      st.session.cpu().run_async(
          kDispatchOps + tasks[static_cast<std::size_t>(i)].cpu_ops,
          [&st, i, left, &wave_done] {
            st.marks.mark_end(i, st.sim().now());
            if (--*left == 0) wave_done.fire();
          });
    }
    co_await wave_done.wait();
  }
  st.end_time = st.sim().now();
  st.done = true;
}

class CpuRuntime final : public TaskRuntime {
 public:
  explicit CpuRuntime(int cores) : cores_(cores) {}

  std::string_view name() const override {
    return cores_ == 1 ? "Sequential" : "PThreads";
  }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    const std::span<const workloads::TaskSpec> tasks = w.tasks();
    CpuState st(cfg, cores_, static_cast<int>(tasks.size()));
    st.sim().spawn(controller(st, cfg, tasks, max_wave(w) + 1));
    st.session.run_until(cfg.time_cap);

    st.marks.complete(st.done, st.end_time);
    return st.marks.assemble(cfg.collect_latencies, cfg.collector);
  }

 private:
  int cores_;
};

}  // namespace

std::unique_ptr<TaskRuntime> make_cpu_runtime(int cores) {
  return std::make_unique<CpuRuntime>(cores);
}

}  // namespace pagoda::baselines
