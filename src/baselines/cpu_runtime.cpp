// CPU baselines: PThreads task pool on the paper's 2x Xeon E5-2660 (20
// cores at 2.6 GHz) and the sequential single-core baseline Fig 5
// normalizes against. Tasks run entirely in host memory — no PCIe copies —
// which is why CPUs win for a handful of narrow tasks and lose at 32K.
#include <memory>
#include <vector>

#include "baselines/factories.h"
#include "gpu/kernel.h"
#include "host/host_api.h"
#include "obs/collector.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::baselines {
namespace {

/// Calibration of the CPU model (see harness/calibration.h for discussion):
/// effective scalar-op throughput per core and the per-task pool handoff.
// A counted "op" is a multiply-accumulate plus its loads; scalar code on the
// 2.6 GHz Xeon sustains ~1.3 of those per cycle on these kernels.
constexpr double kCoreOpsPerSec = 3.5e9;
constexpr double kDispatchOps = 8000.0;  // ~2.3 us pthread pool handoff

/// Executes a task's kernel functionally on the host (Compute mode): the
/// CPU baselines run the same code the GPU kernels do, which is also how the
/// outputs stay verifiable. Warps of a block advance in barrier rounds.
void run_task_functionally(const runtime::TaskParams& p) {
  for (int block = 0; block < p.num_blocks; ++block) {
    const int warps = p.warps_per_block();
    std::vector<gpu::WarpCtx> ctxs(static_cast<std::size_t>(warps));
    std::vector<std::unique_ptr<gpu::KernelCoro>> coros;
    std::vector<std::byte> shmem(
        static_cast<std::size_t>(p.shared_mem_bytes));
    coros.reserve(static_cast<std::size_t>(warps));
    for (int w = 0; w < warps; ++w) {
      gpu::WarpCtx& ctx = ctxs[static_cast<std::size_t>(w)];
      ctx.warp_in_task = block * warps + w;
      ctx.block_index = block;
      ctx.warp_in_block = w;
      ctx.threads_per_block = p.threads_per_block;
      ctx.num_blocks = p.num_blocks;
      ctx.mode = gpu::ExecMode::Compute;
      ctx.args = p.args.data();
      ctx.shared_mem = std::span<std::byte>(shmem);
      coros.push_back(std::make_unique<gpu::KernelCoro>(
          p.fn(ctxs[static_cast<std::size_t>(w)])));
    }
    bool any_live = true;
    while (any_live) {
      any_live = false;
      for (int w = 0; w < warps; ++w) {
        auto& coro = *coros[static_cast<std::size_t>(w)];
        if (coro.done()) continue;
        const gpu::SegmentResult seg =
            gpu::run_segment(coro, ctxs[static_cast<std::size_t>(w)]);
        if (seg.at_barrier) any_live = true;
      }
    }
  }
}

class CpuRuntime final : public TaskRuntime {
 public:
  explicit CpuRuntime(int cores) : cores_(cores) {}

  std::string_view name() const override {
    return cores_ == 1 ? "Sequential" : "PThreads";
  }

  RunResult run(workloads::Workload& w, const RunConfig& cfg) override {
    sim::Simulation sim;
    host::CpuCluster cpu(sim, cores_, kCoreOpsPerSec);
    if (cfg.collector != nullptr) cfg.collector->attach_cpu(sim, cpu);
    const std::span<const workloads::TaskSpec> tasks = w.tasks();
    const int waves = max_wave(w) + 1;

    std::vector<sim::Time> submit(tasks.size(), 0);
    std::vector<sim::Time> complete(tasks.size(), 0);
    bool done = false;
    sim::Time end_time = 0;

    struct Driver {
      static sim::Process run(sim::Simulation& sim, host::CpuCluster& cpu,
                              std::span<const workloads::TaskSpec> tasks,
                              int waves, gpu::ExecMode mode,
                              std::vector<sim::Time>& submit,
                              std::vector<sim::Time>& complete, bool& done,
                              sim::Time& end_time) {
        for (int wave = 0; wave < waves; ++wave) {
          int remaining = 0;
          sim::Trigger wave_done(sim);
          for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (tasks[i].wave != wave) continue;
            ++remaining;
          }
          if (remaining == 0) continue;
          int* left = &remaining;
          for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (tasks[i].wave != wave) continue;
            submit[i] = sim.now();
            if (mode == gpu::ExecMode::Compute) {
              run_task_functionally(tasks[i].params);
            }
            cpu.run_async(kDispatchOps + tasks[i].cpu_ops,
                          [&sim, &complete, i, left, &wave_done] {
                            complete[i] = sim.now();
                            if (--*left == 0) wave_done.fire();
                          });
          }
          co_await wave_done.wait();
        }
        end_time = sim.now();
        done = true;
      }
    };

    sim.spawn(Driver::run(sim, cpu, tasks, waves, cfg.mode, submit, complete,
                          done, end_time));
    sim.run_until(cfg.time_cap);

    RunResult res;
    res.completed = done;
    res.elapsed = end_time;
    res.tasks = static_cast<std::int64_t>(tasks.size());
    if (cfg.collect_latencies) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        res.task_latency_us.push_back(
            sim::to_microseconds(complete[i] - submit[i]));
      }
    }
    if (cfg.collector != nullptr) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        cfg.collector->task_span(submit[i], complete[i]);
      }
      cfg.collector->finish(end_time,
                            static_cast<std::int64_t>(tasks.size()));
    }
    return res;
  }

 private:
  int cores_;
};

}  // namespace

std::unique_ptr<TaskRuntime> make_cpu_runtime(int cores) {
  return std::make_unique<CpuRuntime>(cores);
}

}  // namespace pagoda::baselines
