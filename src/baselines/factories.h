// Internal per-scheme factories (see task_runtime.h::make_runtime).
#pragma once

#include <memory>

#include "baselines/task_runtime.h"
#include "engine/session.h"

namespace pagoda::baselines {

/// Session config for a device-only run (HyperQ, GeMTC, Fusion).
engine::SessionConfig device_session(const RunConfig& cfg);
/// As above plus the Pagoda runtime (PagodaConfig::mode <- RunConfig::mode).
engine::SessionConfig pagoda_session(const RunConfig& cfg);

std::unique_ptr<TaskRuntime> make_pagoda_runtime(bool batching);
std::unique_ptr<TaskRuntime> make_hyperq_runtime();
std::unique_ptr<TaskRuntime> make_gemtc_runtime();
std::unique_ptr<TaskRuntime> make_fusion_runtime();
std::unique_ptr<TaskRuntime> make_cpu_runtime(int cores);
std::unique_ptr<TaskRuntime> make_cluster_runtime();

/// GeMTC's SuperKernel worker count for this workload's threadblock size:
/// the number of resident worker threadblocks at maximum occupancy. Also
/// used as the default batch size for batch-gated schemes.
int gemtc_worker_count(const gpu::GpuSpec& spec, const workloads::Workload& w);

}  // namespace pagoda::baselines
