// Trace subsystem tests: the recorded per-task lifecycle respects the
// protocol's strict temporal order Spawned -> EntryCopied -> Released ->
// Scheduled -> Completed, across entry recycling and randomized task shapes.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.h"
#include "gpu/device.h"
#include "pagoda/runtime.h"
#include "pagoda/trace.h"
#include "sim/process.h"

namespace pagoda::runtime {
namespace {

gpu::KernelCoro noop_kernel(gpu::WarpCtx& ctx) {
  ctx.charge(20.0);
  ctx.charge_stall(40.0);
  co_return;
}

sim::Process spawn_n(sim::Simulation& sim, Runtime& rt, int n,
                     SplitMix64& rng, bool& done) {
  for (int t = 0; t < n; ++t) {
    TaskParams p;
    p.fn = noop_kernel;
    p.threads_per_block = static_cast<int>(rng.next_in(1, 8)) * 32;
    p.num_blocks = 1;
    co_await rt.task_spawn(p);
    if (rng.next() % 8 == 0) {
      co_await sim.delay(sim::microseconds(rng.next_double() * 10.0));
    }
  }
  co_await rt.wait_all();
  done = true;
}

TEST(Trace, LifecycleOrderHoldsForEveryTask) {
  sim::Simulation sim;
  gpu::GpuSpec spec = gpu::GpuSpec::titan_x();
  spec.num_smms = 2;  // small table -> recycling
  gpu::Device dev(sim, spec);
  Runtime rt(dev);
  TraceRecorder trace;
  rt.set_trace_recorder(&trace);
  rt.start();
  SplitMix64 rng(11);
  bool done = false;
  constexpr int kTasks = 400;
  sim.spawn(spawn_n(sim, rt, kTasks, rng, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done);

  const auto timelines = trace.timelines();
  ASSERT_EQ(timelines.size(), static_cast<std::size_t>(kTasks));
  for (const auto& t : timelines) {
    ASSERT_TRUE(t.complete()) << "task at entry " << t.task
                              << " missing lifecycle events";
    ASSERT_TRUE(t.ordered()) << "task at entry " << t.task
                             << " violated lifecycle order";
  }
  rt.shutdown();
}

TEST(Trace, WarpDispatchWindowSitsInsideScheduledToCompleted) {
  sim::Simulation sim;
  gpu::Device dev(sim, gpu::GpuSpec::titan_x());
  Runtime rt(dev);
  TraceRecorder trace;
  rt.set_trace_recorder(&trace);
  rt.start();
  SplitMix64 rng(21);
  bool done = false;
  constexpr int kTasks = 200;
  sim.spawn(spawn_n(sim, rt, kTasks, rng, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done);

  int total_dispatched = 0;
  for (const auto& t : trace.timelines()) {
    // Every executed task had at least one warp placed by pSched, and the
    // placement window is bracketed by scheduling and completion (the
    // ordered() predicate enforces the bracketing; re-check the endpoints
    // explicitly so a silent -1 cannot slip through complete()).
    ASSERT_TRUE(t.complete());
    ASSERT_TRUE(t.ordered());
    EXPECT_GE(t.warps_dispatched, 1) << "entry " << t.task;
    EXPECT_GE(t.first_warp_dispatch, t.scheduled);
    EXPECT_LE(t.last_warp_dispatch, t.completed);
    EXPECT_LE(t.first_warp_dispatch, t.last_warp_dispatch);
    total_dispatched += t.warps_dispatched;
  }
  // The per-task attribution must not lose or invent placements.
  EXPECT_EQ(total_dispatched,
            static_cast<int>(rt.master_kernel().warps_dispatched()));
  rt.shutdown();
}

TEST(Trace, FlushAndCopyBackEventsAreOrderedAndAttributed) {
  sim::Simulation sim;
  gpu::GpuSpec spec = gpu::GpuSpec::titan_x();
  spec.num_smms = 2;  // small table -> recycling exercises copy-back paths
  gpu::Device dev(sim, spec);
  Runtime rt(dev);
  TraceRecorder trace;
  rt.set_trace_recorder(&trace);
  rt.start();
  SplitMix64 rng(17);
  bool done = false;
  constexpr int kTasks = 300;
  sim.spawn(spawn_n(sim, rt, kTasks, rng, done));
  sim.run_until(sim::seconds(5.0));
  ASSERT_TRUE(done);

  int flushed = 0;
  int copied_back = 0;
  for (const auto& t : trace.timelines()) {
    ASSERT_TRUE(t.ordered()) << "entry " << t.task;
    if (t.was_flushed()) {
      ++flushed;
      // A flush releases an entry the GPU already holds but the scheduler
      // has not claimed yet.
      EXPECT_GE(t.flushed, t.entry_copied);
      EXPECT_LE(t.flushed, t.scheduled);
      // A flushed task has no successor, so its release came from the host
      // flush itself, never earlier than the flush.
      EXPECT_GE(t.released, t.flushed);
    }
    if (t.copy_back >= 0) {
      ++copied_back;
      EXPECT_GE(t.copy_back, t.completed);
    }
  }
  // The stop-start spawner (random inter-spawn gaps + the final wait_all)
  // must strand at least one chain tail for the host to flush, and the
  // host copy-back must observe at least one freed entry.
  EXPECT_GE(flushed, 1);
  EXPECT_GE(copied_back, 1);
  EXPECT_EQ(flushed, static_cast<int>(rt.stats().flushes));
  rt.shutdown();
}

TEST(Trace, WarpDispatchCountMatchesTaskWarps) {
  sim::Simulation sim;
  gpu::Device dev(sim, gpu::GpuSpec::titan_x());
  Runtime rt(dev);
  TraceRecorder trace;
  rt.set_trace_recorder(&trace);
  rt.start();
  SplitMix64 rng(3);
  bool done = false;
  sim.spawn(spawn_n(sim, rt, 50, rng, done));
  sim.run_until(sim::seconds(2.0));
  ASSERT_TRUE(done);
  int dispatched = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceKind::kWarpDispatched) ++dispatched;
  }
  EXPECT_EQ(dispatched,
            static_cast<int>(rt.master_kernel().warps_dispatched()));
  rt.shutdown();
}

TEST(Trace, CsvDumpIsWellFormed) {
  sim::Simulation sim;
  gpu::Device dev(sim, gpu::GpuSpec::titan_x());
  Runtime rt(dev);
  TraceRecorder trace;
  rt.set_trace_recorder(&trace);
  rt.start();
  SplitMix64 rng(5);
  bool done = false;
  sim.spawn(spawn_n(sim, rt, 5, rng, done));
  sim.run_until(sim::seconds(1.0));
  ASSERT_TRUE(done);
  std::ostringstream os;
  trace.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_us,kind,task,aux"), std::string::npos);
  EXPECT_NE(csv.find("spawned"), std::string::npos);
  EXPECT_NE(csv.find("completed"), std::string::npos);
  // One line per event plus the header.
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, trace.events().size() + 1);
  rt.shutdown();
}

TEST(Trace, ChromeTraceExportIsValidJson) {
  sim::Simulation sim;
  gpu::Device dev(sim, gpu::GpuSpec::titan_x());
  Runtime rt(dev);
  TraceRecorder trace;
  rt.set_trace_recorder(&trace);
  rt.start();
  SplitMix64 rng(13);
  bool done = false;
  sim.spawn(spawn_n(sim, rt, 10, rng, done));
  sim.run_until(sim::seconds(1.0));
  ASSERT_TRUE(done);
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // Balanced braces and one duration slice per task.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  std::size_t slices = 0;
  for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++slices;
  }
  EXPECT_EQ(slices, 10u);
  rt.shutdown();
}

TEST(Trace, ForTaskFiltersAndKindNamesAreStable) {
  TraceRecorder trace;
  trace.record(10, TraceKind::kSpawned, 2);
  trace.record(20, TraceKind::kSpawned, 3);
  trace.record(30, TraceKind::kCompleted, 2);
  const auto t2 = trace.for_task(2);
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_EQ(t2[0].kind, TraceKind::kSpawned);
  EXPECT_EQ(t2[1].kind, TraceKind::kCompleted);
  EXPECT_EQ(trace_kind_name(TraceKind::kWarpDispatched), "warp_dispatched");
  EXPECT_EQ(trace_kind_name(TraceKind::kCopyBack), "copy_back");
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace pagoda::runtime
