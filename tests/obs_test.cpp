// Observability layer tests: metrics registry semantics and formatting,
// timeline/Chrome-trace invariants, and the two end-to-end guarantees the
// subsystem makes:
//   * determinism — two identically seeded runs produce byte-identical
//     metrics snapshots (golden-snapshot property, not a stored golden file);
//   * coverage — every runtime populates the acceptance metric set through
//     the harness, and the profile export is structurally valid with
//     non-negative, time-monotone counter tracks.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/calibration.h"
#include "harness/experiment.h"
#include "obs/collector.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace pagoda::obs {
namespace {

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, CounterGaugeStatBasics) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a.events").add();
  reg.counter("a.events").add(4);
  reg.gauge("a.level").set(0.5);
  reg.stat("a.samples").add(1.0);
  reg.stat("a.samples").add(3.0);
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.counter_value("a.events"), 5);
  EXPECT_EQ(reg.counter_value("missing", -7), -7);
  EXPECT_DOUBLE_EQ(reg.gauge_value("a.level"), 0.5);
  EXPECT_DOUBLE_EQ(reg.stat_mean("a.samples"), 2.0);
  EXPECT_DOUBLE_EQ(reg.stat_max("a.samples"), 3.0);
  EXPECT_TRUE(reg.has_counter("a.events"));
  EXPECT_FALSE(reg.has_counter("a.level"));
  EXPECT_TRUE(reg.has_gauge("a.level"));
  EXPECT_TRUE(reg.has_stat("a.samples"));
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Metrics, HistogramLog2Bucketing) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max_bucket(), -1);
  h.add(0.0);   // bucket 0: < 1
  h.add(0.5);   // bucket 0
  h.add(1.0);   // bucket 1: [1, 2)
  h.add(1.99);  // bucket 1
  h.add(2.0);   // bucket 2: [2, 4)
  h.add(3.0);   // bucket 2
  h.add(4.0);   // bucket 3: [4, 8)
  h.add(1024.0);  // bucket 11
  h.add(0.25);    // sub-unit values share bucket 0 (negatives are rejected
                  // by a CHECK — the registry stores latencies/sizes only)
  EXPECT_EQ(h.count(), 9);
  EXPECT_EQ(h.bucket(0), 3);
  EXPECT_EQ(h.bucket(1), 2);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.bucket(11), 1);
  EXPECT_EQ(h.max_bucket(), 11);
}

TEST(Metrics, DoubleFormattingIsStable) {
  // The snapshot format contract: %.9g with -0.0 normalized, so identical
  // values always serialize identically.
  EXPECT_EQ(format_metric_double(0.0), "0");
  EXPECT_EQ(format_metric_double(-0.0), "0");
  EXPECT_EQ(format_metric_double(1.0), "1");
  EXPECT_EQ(format_metric_double(0.5), "0.5");
  EXPECT_EQ(format_metric_double(1.0 / 3.0), format_metric_double(1.0 / 3.0));
}

TEST(Metrics, JsonSnapshotIsSortedAndStable) {
  MetricsRegistry reg;
  // Insert in non-lexicographic order; the snapshot must sort.
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("m.mid").set(3.25);
  reg.stat("s.one").add(1.0);
  reg.histogram("h.one").add(2.0);
  std::ostringstream a;
  std::ostringstream b;
  reg.write_json(a);
  reg.write_json(b);
  EXPECT_EQ(a.str(), b.str());  // serialization itself is pure
  const std::string json = a.str();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// --- Timeline --------------------------------------------------------------

TEST(Timeline, TrackInterningAndRecording) {
  Timeline tl;
  EXPECT_TRUE(tl.empty());
  const Timeline::TrackId a = tl.track("tasks");
  const Timeline::TrackId b = tl.track("pcie.h2d");
  EXPECT_EQ(tl.track("tasks"), a);  // same name, same id
  EXPECT_NE(a, b);
  tl.span(a, "task", 1000, 5000);
  tl.instant(b, "step", 2000);
  tl.counter("gpu.occupancy", 0, 0.0);
  tl.counter("gpu.occupancy", 1000, 0.5);
  EXPECT_EQ(tl.num_spans(), 1u);
  EXPECT_EQ(tl.num_instants(), 1u);
  EXPECT_EQ(tl.num_counter_samples(), 2u);
  EXPECT_EQ(tl.num_tracks(), 2u);
  EXPECT_EQ(tl.track_name(a), "tasks");
  ASSERT_EQ(tl.spans().size(), 1u);
  EXPECT_EQ(tl.name_of(tl.spans()[0].name), "task");
}

TEST(Timeline, ChromeTraceShapesAndCounts) {
  Timeline tl;
  const Timeline::TrackId t = tl.track("tasks");
  tl.span(t, "task", 0, 3000000);
  tl.span(t, "task", 1000000, 2000000);
  tl.instant(t, "mark", 1500000);
  tl.counter("fill", 0, 1.0);
  tl.counter("fill", 1000000, 2.0);
  std::ostringstream os;
  tl.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  auto count_of = [&json](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_of("\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_of("\"ph\":\"C\""), 2u);
  EXPECT_EQ(count_of("\"ph\":\"M\""), 1u);  // one thread_name per track
}

TEST(Timeline, CsvListsEveryRecord) {
  Timeline tl;
  const Timeline::TrackId t = tl.track("tasks");
  tl.span(t, "task", 0, 1000000);
  tl.counter("fill", 0, 1.0);
  std::ostringstream os;
  tl.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_us,kind,track,name,value"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1u + tl.num_spans() + tl.num_instants() +
                tl.num_counter_samples());
}

// --- End-to-end: harness + collector ---------------------------------------

baselines::RunConfig small_cfg(Collector* c) {
  baselines::RunConfig rcfg = harness::paper_platform();
  rcfg.collect_latencies = true;
  rcfg.collector = c;
  return rcfg;
}

workloads::WorkloadConfig small_wcfg() {
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 96;
  wcfg.threads_per_task = 128;
  wcfg.seed = 0xDECAF;
  return wcfg;
}

std::string metrics_json(const std::string& runtime, bool timeline) {
  CollectorConfig ccfg;
  ccfg.timeline = timeline;
  Collector collector(ccfg);
  const harness::Measurement m = harness::run_experiment(
      "MM", runtime, small_wcfg(), small_cfg(&collector));
  EXPECT_TRUE(collector.finished());
  std::ostringstream os;
  m.metrics.write_json(os);
  return os.str();
}

TEST(Collector, IdenticalSeededRunsProduceByteIdenticalMetrics) {
  // The golden-snapshot determinism property from the issue: running the
  // same seeded experiment twice must serialize to the same bytes, for the
  // full Pagoda runtime and for a baseline.
  EXPECT_EQ(metrics_json("Pagoda", false), metrics_json("Pagoda", false));
  EXPECT_EQ(metrics_json("HyperQ", false), metrics_json("HyperQ", false));
}

TEST(Collector, AttachingACollectorDoesNotPerturbTheRun) {
  // Passive-sampling invariant: the measured virtual time must be identical
  // with and without a collector attached.
  Collector collector;
  const harness::Measurement with = harness::run_experiment(
      "MM", "Pagoda", small_wcfg(), small_cfg(&collector));
  const harness::Measurement without = harness::run_experiment(
      "MM", "Pagoda", small_wcfg(), small_cfg(nullptr));
  EXPECT_EQ(with.result.elapsed, without.result.elapsed);
  ASSERT_EQ(with.result.task_latency_us.size(),
            without.result.task_latency_us.size());
  for (std::size_t i = 0; i < with.result.task_latency_us.size(); ++i) {
    EXPECT_EQ(with.result.task_latency_us[i],
              without.result.task_latency_us[i])
        << "task " << i;
  }
  EXPECT_TRUE(without.metrics.empty());
}

TEST(Collector, EveryRuntimePopulatesTheCoreMetricSet) {
  const std::vector<std::string> runtimes{
      "Sequential", "PThreads", "HyperQ", "GeMTC",
      "Fusion",     "Pagoda",   "PagodaBatching"};
  for (const std::string& rt : runtimes) {
    Collector collector;
    workloads::WorkloadConfig wcfg = small_wcfg();
    wcfg.num_tasks = 64;
    const harness::Measurement m =
        harness::run_experiment("MM", rt, wcfg, small_cfg(&collector));
    SCOPED_TRACE(rt);
    EXPECT_EQ(m.metrics.counter_value("run.tasks"), 64);
    EXPECT_GT(m.metrics.gauge_value("run.elapsed_ms"), 0.0);
    // Latency histogram fed by the harness for every runtime.
    MetricsRegistry reg = m.metrics;
    EXPECT_EQ(reg.histogram("task.latency_us").count(), 64);
    const bool on_gpu = rt != "Sequential" && rt != "PThreads";
    if (on_gpu) {
      EXPECT_GT(m.metrics.counter_value("pcie.h2d.bytes"), 0);
      EXPECT_GT(m.metrics.gauge_value("pcie.h2d.achieved_gbps"), 0.0);
      // A fraction of the device's warp capacity — in particular it must not
      // integrate residency past end_time (persistent-worker runtimes keep
      // warps resident right up to the end of the run).
      EXPECT_GT(m.metrics.gauge_value("gpu.occupancy.achieved"), 0.0);
      // GeMTC's persistent workers own every slot for the whole run, so the
      // fraction lands exactly on 1 up to float rounding in the integral.
      EXPECT_LE(m.metrics.gauge_value("gpu.occupancy.achieved"), 1.0 + 1e-9);
      EXPECT_TRUE(m.metrics.has_stat("gpu.resident_warps"));
      EXPECT_TRUE(m.metrics.has_stat("gpu.issue_utilization"));
    } else {
      EXPECT_GT(m.metrics.gauge_value("cpu.busy_fraction"), 0.0);
      EXPECT_TRUE(m.metrics.has_stat("cpu.active_tasks"));
    }
    if (rt == "Pagoda" || rt == "PagodaBatching") {
      EXPECT_EQ(m.metrics.counter_value("pagoda.tasks_spawned"), 64);
      EXPECT_EQ(m.metrics.counter_value("pagoda.tasks_completed"), 64);
      EXPECT_GT(m.metrics.counter_value("pagoda.warps_dispatched"), 0);
      EXPECT_GT(m.metrics.gauge_value("pagoda.sched.busy_fraction"), 0.0);
      EXPECT_GT(m.metrics.gauge_value("pagoda.executors.utilization"), 0.0);
      EXPECT_TRUE(m.metrics.has_stat("pagoda.tasktable.fill"));
      EXPECT_TRUE(m.metrics.has_stat("pagoda.shmem.bytes_in_use"));
      EXPECT_TRUE(m.metrics.has_stat("pagoda.executors.busy"));
    }
  }
}

TEST(Collector, ProfileCounterTracksAreNonNegativeAndMonotone) {
  CollectorConfig ccfg;
  ccfg.timeline = true;
  Collector collector(ccfg);
  const harness::Measurement m = harness::run_experiment(
      "MM", "Pagoda", small_wcfg(), small_cfg(&collector));
  (void)m;
  const Timeline& tl = collector.timeline();
  EXPECT_GT(tl.num_spans(), 0u);
  EXPECT_GT(tl.num_counter_samples(), 0u);
  std::map<int, sim::Time> last_time;
  for (const Timeline::CounterSample& s : tl.counter_samples()) {
    EXPECT_GE(s.value, 0.0) << tl.series_name(s.series);
    const auto it = last_time.find(s.series);
    if (it != last_time.end()) {
      EXPECT_GE(s.time, it->second) << tl.series_name(s.series);
    }
    last_time[s.series] = s.time;
  }
  // Task spans are well-formed intervals within the run.
  for (const Timeline::Span& sp : tl.spans()) {
    EXPECT_LE(sp.start, sp.end);
    EXPECT_GE(sp.start, 0);
  }
}

TEST(Collector, ProfileExportParsesAsBalancedJson) {
  // Minimal structural validation of the Chrome trace export; the Python
  // toolchain is not available in the test environment, so check the JSON
  // invariants that matter for chrome://tracing ingestion by hand.
  CollectorConfig ccfg;
  ccfg.timeline = true;
  Collector collector(ccfg);
  (void)harness::run_experiment("MM", "HyperQ", small_wcfg(),
                                small_cfg(&collector));
  std::ostringstream os;
  collector.timeline().write_chrome_trace(os);
  const std::string json = os.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Collector, SamplerSelfTerminatesAtQueueDrain) {
  // All sampled values must carry timestamps within [0, end_time]: the
  // sampler must not keep ticking to the time cap after the run drains.
  Collector collector;
  harness::Measurement m = harness::run_experiment(
      "MM", "Pagoda", small_wcfg(), small_cfg(&collector));
  const double elapsed_ms = m.metrics.gauge_value("run.elapsed_ms");
  EXPECT_GT(elapsed_ms, 0.0);
  ASSERT_TRUE(m.metrics.has_stat("gpu.resident_warps"));
  // 96 tasks run in well under a second; a runaway sampler would record
  // ~180M ticks to the 3600 s cap and blow the sample counts sky high.
  const RunningStats& rs = m.metrics.stat("gpu.resident_warps").stats();
  EXPECT_GT(rs.count(), 0u);
  EXPECT_LT(static_cast<double>(rs.count()),
            elapsed_ms * 1000.0 / 20.0 + 2.0);  // ticks at 20 us cadence
}

}  // namespace
}  // namespace pagoda::obs
