// Fault plane tests: plan parsing, deterministic backoff, the watchdog state
// machine, the closable slot semaphore, node crash/recovery and the
// drain/reinstate lifecycle — plus a chaos soak that replays randomized fault
// plans over many seeds and pins the layer's exactly-once invariants.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "common/rng.h"
#include "fault/plan.h"
#include "fault/retry.h"
#include "fault/watchdog.h"
#include "harness/experiment.h"
#include "obs/metrics.h"
#include "sim/process.h"
#include "sim/sync.h"

namespace pagoda::fault {
namespace {

// --- plan parsing -------------------------------------------------------------

TEST(FaultPlan, EmptySpecDisablesEverything) {
  std::string err;
  const auto plan = FaultPlan::parse("", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_FALSE(plan->enabled());
  EXPECT_FALSE(plan->needs_deadline());
  // A disabled plan must never inject, whatever the key.
  for (std::uint64_t uid = 0; uid < 100; ++uid) {
    EXPECT_FALSE(plan->task_fails(uid, 1));
    EXPECT_FALSE(plan->wedges(uid, 1));
    EXPECT_FALSE(plan->transfer_corrupts(0, uid));
  }
}

TEST(FaultPlan, FullSpecRoundTrips) {
  std::string err;
  const auto plan = FaultPlan::parse(
      "task:0.05,xfer:0.1,wedge:0.01,crash:1:2000:3000,"
      "degrade:500:1000:0.25:0,seed:42",
      &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_TRUE(plan->enabled());
  EXPECT_TRUE(plan->needs_deadline());
  EXPECT_DOUBLE_EQ(plan->task_fault_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->transfer_fault_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan->wedge_rate, 0.01);
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_EQ(plan->crashes[0].node, 1);
  EXPECT_EQ(plan->crashes[0].at, sim::microseconds(2000.0));
  EXPECT_TRUE(plan->crashes[0].recovers);
  EXPECT_EQ(plan->crashes[0].recover_after, sim::microseconds(3000.0));
  ASSERT_EQ(plan->degrades.size(), 1u);
  EXPECT_EQ(plan->degrades[0].at, sim::microseconds(500.0));
  EXPECT_EQ(plan->degrades[0].duration, sim::microseconds(1000.0));
  EXPECT_DOUBLE_EQ(plan->degrades[0].factor, 0.25);
  EXPECT_EQ(plan->degrades[0].node, 0);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus:1",          // unknown kind
      "task",             // missing rate
      "task:1.5",         // rate out of [0,1]
      "task:-0.1",        // negative rate
      "task:0.1x",        // trailing garbage
      "crash:0",          // missing time
      "crash:0:-5",       // negative time
      "crash:0:100:0",    // recovery must be > 0
      "degrade:0:0:0.5",  // zero duration
      "degrade:0:10:0",   // factor must be in (0,1]
      "degrade:0:10:2",   // factor > 1
      "seed:abc",         // non-numeric
      ",",                // empty item
  };
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(spec, &err).has_value()) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(FaultPlan, DecisionsArePureAndRateShaped) {
  std::string err;
  const auto plan = FaultPlan::parse("task:0.2,seed:7", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  int hits = 0;
  constexpr int kN = 20000;
  for (std::uint64_t uid = 0; uid < kN; ++uid) {
    const bool a = plan->task_fails(uid, 1);
    EXPECT_EQ(a, plan->task_fails(uid, 1));  // pure: same key, same verdict
    if (a) ++hits;
  }
  const double rate = static_cast<double>(hits) / kN;
  EXPECT_NEAR(rate, 0.2, 0.02);
  // Different salts decorrelate the channels: a task fault for a key says
  // nothing about a wedge for the same key.
  const auto wedgy = FaultPlan::parse("wedge:0.2,seed:7", &err);
  ASSERT_TRUE(wedgy.has_value());
  int both = 0;
  for (std::uint64_t uid = 0; uid < kN; ++uid) {
    if (plan->task_fails(uid, 1) && wedgy->wedges(uid, 1)) ++both;
  }
  EXPECT_NEAR(static_cast<double>(both) / kN, 0.04, 0.02);
}

// --- backoff ------------------------------------------------------------------

TEST(RetryBackoff, DeterministicGrowthWithCapAndJitter) {
  RetryConfig cfg;
  cfg.seed = 99;
  double prev_nominal = 0.0;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const sim::Duration d = backoff(cfg, 17, attempt);
    EXPECT_EQ(d, backoff(cfg, 17, attempt));  // pure
    // Jitter scales the nominal by (1-jitter, 1]: bound both sides.
    double nominal = static_cast<double>(cfg.base);
    for (int i = 1; i < attempt; ++i) nominal *= cfg.multiplier;
    if (nominal > static_cast<double>(cfg.max))
      nominal = static_cast<double>(cfg.max);
    EXPECT_LE(static_cast<double>(d), nominal);
    EXPECT_GT(static_cast<double>(d), nominal * (1.0 - cfg.jitter));
    prev_nominal = nominal;
  }
  // Attempt 10 nominal hit the cap.
  EXPECT_EQ(prev_nominal, static_cast<double>(cfg.max));
  // Different uids de-synchronize (the thundering-herd fix).
  EXPECT_NE(backoff(cfg, 17, 2), backoff(cfg, 18, 2));
}

TEST(RetryBackoff, ZeroJitterIsExactExponential) {
  RetryConfig cfg;
  cfg.jitter = 0.0;
  EXPECT_EQ(backoff(cfg, 0, 1), cfg.base);
  EXPECT_EQ(backoff(cfg, 0, 2), cfg.base * 2);
  EXPECT_EQ(backoff(cfg, 0, 3), cfg.base * 4);
  EXPECT_EQ(backoff(cfg, 0, 20), cfg.max);
}

// --- watchdog state machine ---------------------------------------------------

TEST(Watchdog, FrozenSignatureWithWorkDiesExactlyOnce) {
  WatchdogConfig cfg;
  cfg.miss_threshold = 3;
  Watchdog wd(cfg, 2);
  const NodeSig frozen{100, 50};
  EXPECT_FALSE(wd.observe(0, frozen, true));  // first sight: baseline
  EXPECT_FALSE(wd.observe(0, frozen, true));  // miss 1
  EXPECT_FALSE(wd.observe(0, frozen, true));  // miss 2
  EXPECT_TRUE(wd.observe(0, frozen, true));   // miss 3: the one transition
  EXPECT_TRUE(wd.dead(0));
  EXPECT_FALSE(wd.observe(0, frozen, true));  // already dead: no re-report
  EXPECT_EQ(wd.deaths_detected(), 1);
  EXPECT_FALSE(wd.dead(1));  // the other node is untouched
}

TEST(Watchdog, ProgressOrIdlenessResetsMisses) {
  Watchdog wd({}, 1);
  NodeSig sig{1, 0};
  EXPECT_FALSE(wd.observe(0, sig, true));
  EXPECT_FALSE(wd.observe(0, sig, true));  // miss 1
  sig.heartbeat += 1;                      // progress
  EXPECT_FALSE(wd.observe(0, sig, true));
  EXPECT_EQ(wd.misses(0), 0);
  // A frozen but idle node is healthy — idleness is not death.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(wd.observe(0, sig, false));
  EXPECT_EQ(wd.misses(0), 0);
  EXPECT_FALSE(wd.dead(0));
}

TEST(Watchdog, ResetRevivesADeadNode) {
  WatchdogConfig cfg;
  cfg.miss_threshold = 1;
  Watchdog wd(cfg, 1);
  const NodeSig frozen{5, 5};
  EXPECT_FALSE(wd.observe(0, frozen, true));
  EXPECT_TRUE(wd.observe(0, frozen, true));
  wd.reset(0);
  EXPECT_FALSE(wd.dead(0));
  EXPECT_EQ(wd.misses(0), 0);
  // It can die again after revival (a second crash is a second death).
  EXPECT_FALSE(wd.observe(0, frozen, true));
  EXPECT_TRUE(wd.observe(0, frozen, true));
  EXPECT_EQ(wd.deaths_detected(), 2);
}

// --- closable semaphore -------------------------------------------------------

sim::Process acquire_once(sim::Semaphore& s, bool& granted, bool& done) {
  granted = co_await s.acquire();
  done = true;
}

TEST(ClosableSemaphore, CloseWakesParkedWaitersUngranted) {
  sim::Simulation sim;
  sim::Semaphore s(sim, 1);
  bool g1 = false, d1 = false, g2 = false, d2 = false;
  sim.spawn(acquire_once(s, g1, d1));
  sim.spawn(acquire_once(s, g2, d2));  // parks: only one slot
  sim.after(sim::microseconds(10.0), [&] { s.close(); });
  sim.run();
  EXPECT_TRUE(d1 && g1);   // first grant landed before the close
  EXPECT_TRUE(d2);         // the parked waiter woke...
  EXPECT_FALSE(g2);        // ...ungranted
  // Releases while closed accumulate; reopen restores normal service.
  s.release();
  s.reopen();
  bool g3 = false, d3 = false;
  sim.spawn(acquire_once(s, g3, d3));
  sim.run();
  EXPECT_TRUE(d3 && g3);
}

}  // namespace
}  // namespace pagoda::fault

namespace pagoda::cluster {
namespace {

// --- cluster-level fault runs -------------------------------------------------

struct FaultRunSpec {
  int nodes = 2;
  std::string policy = "least-loaded";
  int requests = 64;
  std::uint64_t seed = 0xC0FFEE;
  double arrival_rate = 300.0e3;
  std::string faults;  // FaultPlan spec ("" = fault plane off)
  sim::Duration task_timeout = 0;
  int retry_budget = 3;
  sim::Duration slo = sim::milliseconds(20.0);
  /// Administrative actions applied at virtual times (drain/reinstate).
  std::vector<std::pair<sim::Time, int>> drains;
  std::vector<std::pair<sim::Time, int>> reinstates;
};

struct FaultRunOutput {
  Dispatcher::Stats stats;
  std::vector<int> placements;
  std::vector<std::int64_t> per_node_completed;
  std::vector<std::int64_t> free_slots;
  std::vector<int> capacity;
  std::string metrics_json;
  bool done = false;
  sim::Time end_time = 0;
};

sim::Process feed(sim::Simulation& sim, Dispatcher& disp,
                  const FaultRunSpec& rs) {
  ArrivalConfig acfg;
  acfg.kind = ArrivalKind::Poisson;
  acfg.rate_per_sec = rs.arrival_rate;
  ArrivalSequence seq(acfg, rs.seed);
  RequestProfile profile;
  profile.slo = rs.slo;
  for (int i = 0; i < rs.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await sim.delay(gap);
    disp.offer(synth_request(profile, rs.seed, i));
  }
  disp.close();
}

sim::Process settle(Dispatcher& disp, FaultRunOutput& out,
                    sim::Simulation& sim) {
  co_await disp.drain();
  out.end_time = sim.now();
  out.done = true;
}

FaultRunOutput run_fault_cluster(const FaultRunSpec& rs) {
  sim::Simulation sim;
  std::vector<NodeConfig> nodes(static_cast<std::size_t>(rs.nodes));
  Cluster fleet(sim, nodes);
  DispatcherConfig dc;
  std::string err;
  const auto plan = fault::FaultPlan::parse(rs.faults, &err);
  EXPECT_TRUE(plan.has_value()) << rs.faults << ": " << err;
  dc.faults = *plan;
  if (dc.faults.seed == 0) dc.faults.seed = rs.seed;
  dc.retry.seed = dc.faults.seed;
  dc.retry.budget = rs.retry_budget;
  dc.task_timeout = rs.task_timeout;
  dc.watchdog.probe_period = sim::microseconds(100.0);
  Dispatcher disp(fleet, make_policy(rs.policy), dc);
  fleet.start();
  for (const auto& [t, node] : rs.drains) {
    sim.at(t, [&disp, node = node] { disp.drain_node(node); });
  }
  for (const auto& [t, node] : rs.reinstates) {
    sim.at(t, [&disp, node = node] { disp.reinstate_node(node); });
  }

  FaultRunOutput out;
  sim.spawn(feed(sim, disp, rs));
  sim.spawn(settle(disp, out, sim));
  sim.run_until(sim::seconds(60.0));

  out.stats = disp.stats();
  out.placements = disp.placements();
  for (int i = 0; i < fleet.size(); ++i) {
    out.per_node_completed.push_back(fleet.node(i).completed());
    out.free_slots.push_back(disp.free_slots(i));
    out.capacity.push_back(fleet.node(i).capacity());
  }
  obs::MetricsRegistry m;
  disp.export_metrics(m);
  std::ostringstream os;
  m.write_json(os);
  out.metrics_json = os.str();
  fleet.shutdown();
  return out;
}

/// The invariants every fault run must satisfy, whatever the plan:
/// exactly-once resolution and exactly-once slot accounting.
void expect_invariants(const FaultRunOutput& out, const char* what) {
  ASSERT_TRUE(out.done) << what;
  EXPECT_EQ(out.stats.offered, out.stats.admitted + out.stats.dropped) << what;
  EXPECT_EQ(out.stats.completed + out.stats.shed, out.stats.admitted) << what;
  EXPECT_EQ(out.stats.slot_releases, out.stats.admitted) << what;
  // Every slot grant was returned: each node's semaphore is back at its full
  // TaskTable capacity, dead or alive (death recovery releases the sweep).
  for (std::size_t i = 0; i < out.free_slots.size(); ++i) {
    EXPECT_EQ(out.free_slots[i], out.capacity[i]) << what << " node " << i;
  }
}

TEST(FaultCluster, TaskFaultsAllRetriedToCompletion) {
  FaultRunSpec rs;
  rs.faults = "task:0.1";
  const FaultRunOutput out = run_fault_cluster(rs);
  expect_invariants(out, "task faults");
  EXPECT_GT(out.stats.injected_task_faults, 0);
  EXPECT_EQ(out.stats.retries, out.stats.injected_task_faults);
  EXPECT_EQ(out.stats.shed, 0);  // budget 3 absorbs a 10% fault rate
  EXPECT_EQ(out.stats.completed, out.stats.admitted);
  // Retried attempts claim fresh slots: acquires outnumber request releases.
  EXPECT_EQ(out.stats.slot_acquires,
            out.stats.slot_releases + out.stats.retries);
}

TEST(FaultCluster, ZeroBudgetShedsEveryFault) {
  FaultRunSpec rs;
  rs.faults = "task:0.15";
  rs.retry_budget = 0;
  const FaultRunOutput out = run_fault_cluster(rs);
  expect_invariants(out, "no retries");
  EXPECT_GT(out.stats.injected_task_faults, 0);
  EXPECT_EQ(out.stats.retries, 0);
  EXPECT_EQ(out.stats.shed, out.stats.injected_task_faults);
  // Shed requests carry an SLO, so every shed is charged as a violation.
  EXPECT_GE(out.stats.slo_violations, out.stats.shed);
}

TEST(FaultCluster, WedgesRecoverViaDeadline) {
  FaultRunSpec rs;
  rs.faults = "wedge:0.08";
  rs.task_timeout = sim::microseconds(1500.0);
  const FaultRunOutput out = run_fault_cluster(rs);
  expect_invariants(out, "wedges");
  EXPECT_GT(out.stats.injected_wedges, 0);
  // Every wedge is invisible until its deadline fires.
  EXPECT_EQ(out.stats.detected_timeouts, out.stats.injected_wedges);
  EXPECT_EQ(out.stats.completed, out.stats.admitted);
}

TEST(FaultCluster, CrashDetectedRecoveredAndNothingLost) {
  FaultRunSpec rs;
  rs.requests = 128;
  rs.arrival_rate = 150.0e3;
  rs.faults = "crash:1:200:400";
  rs.task_timeout = sim::microseconds(1500.0);
  const FaultRunOutput out = run_fault_cluster(rs);
  expect_invariants(out, "crash+recover");
  EXPECT_EQ(out.stats.injected_crashes, 1);
  EXPECT_EQ(out.stats.detected_node_deaths, 1);
  EXPECT_EQ(out.stats.nodes_recovered, 1);
  EXPECT_EQ(out.stats.completed, out.stats.admitted);
  // The recovered node serves again after reinstatement.
  EXPECT_GT(out.per_node_completed[1], 0);
}

TEST(FaultCluster, CrashWithoutRecoveryStillResolvesEverything) {
  FaultRunSpec rs;
  rs.requests = 128;
  rs.arrival_rate = 150.0e3;
  rs.faults = "crash:0:200";
  rs.task_timeout = sim::microseconds(1500.0);
  const FaultRunOutput out = run_fault_cluster(rs);
  expect_invariants(out, "crash, no recovery");
  EXPECT_EQ(out.stats.detected_node_deaths, 1);
  EXPECT_EQ(out.stats.nodes_recovered, 0);
  // The survivor picked up the dead node's re-dispatched work.
  EXPECT_GT(out.per_node_completed[1], 0);
}

TEST(FaultCluster, DrainReinstateLifecycle) {
  // Draining node 0 before traffic starts steers everything to node 1.
  FaultRunSpec rs;
  rs.policy = "round-robin";
  rs.drains = {{0, 0}};
  const FaultRunOutput drained = run_fault_cluster(rs);
  expect_invariants(drained, "drained");
  EXPECT_EQ(drained.per_node_completed[0], 0);
  for (const int p : drained.placements) EXPECT_EQ(p, 1);

  // Reinstating mid-run returns the node to rotation.
  rs.reinstates = {{sim::microseconds(50.0), 0}};
  const FaultRunOutput back = run_fault_cluster(rs);
  expect_invariants(back, "reinstated");
  EXPECT_GT(back.per_node_completed[0], 0);
}

TEST(FaultCluster, ArmedButEmptyPlanInjectsNothing) {
  // A task deadline arms the machinery without any injection source: the
  // run must complete fault-free with every fault counter at zero.
  FaultRunSpec rs;
  rs.task_timeout = sim::milliseconds(50.0);
  const FaultRunOutput out = run_fault_cluster(rs);
  expect_invariants(out, "armed, empty");
  EXPECT_EQ(out.stats.injected_task_faults, 0);
  EXPECT_EQ(out.stats.detected_timeouts, 0);
  EXPECT_EQ(out.stats.retries + out.stats.shed, 0);
  EXPECT_NE(out.metrics_json.find("fault.injected.task_faults"),
            std::string::npos);
}

// --- determinism --------------------------------------------------------------

TEST(FaultDeterminism, SameSeedAndPlanIsByteIdentical) {
  // The headline contract: same seed + same plan -> byte-identical metrics
  // across two independent runs, backoff timings included (the latency
  // histogram in the JSON would differ if any retry fired at another time).
  FaultRunSpec rs;
  rs.faults = "task:0.3,wedge:0.05,xfer:0.1,crash:1:300:500";
  rs.task_timeout = sim::microseconds(1500.0);
  rs.requests = 96;
  const FaultRunOutput a = run_fault_cluster(rs);
  const FaultRunOutput b = run_fault_cluster(rs);
  expect_invariants(a, "run a");
  expect_invariants(b, "run b");
  EXPECT_GT(a.stats.retries, 0);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(FaultDeterminism, PlanSeedChangesTheFaultSet) {
  FaultRunSpec rs;
  rs.faults = "task:0.3,seed:1";
  const FaultRunOutput a = run_fault_cluster(rs);
  rs.faults = "task:0.3,seed:2";
  const FaultRunOutput b = run_fault_cluster(rs);
  expect_invariants(a, "seed 1");
  expect_invariants(b, "seed 2");
  EXPECT_NE(a.metrics_json, b.metrics_json);
}

// --- chaos soak ---------------------------------------------------------------

TEST(FaultChaos, FiftySeedSoakHoldsEveryInvariant) {
  // Randomized plans over 50 seeds: rates, crash node, crash timing and
  // recovery all derived from the seed. Whatever combination comes up, the
  // exactly-once invariants must hold and the run must be reproducible.
  for (int s = 0; s < 50; ++s) {
    const std::uint64_t seed = 0xC0FFEE + static_cast<std::uint64_t>(s);
    const double task_rate =
        static_cast<double>(hash_index(seed, 1) % 30) / 100.0;    // [0, 0.30)
    const double wedge_rate =
        static_cast<double>(hash_index(seed, 2) % 6) / 100.0;     // [0, 0.06)
    const double xfer_rate =
        static_cast<double>(hash_index(seed, 3) % 10) / 100.0;    // [0, 0.10)
    const int crash_node = static_cast<int>(hash_index(seed, 4) % 2);
    const bool crash = (hash_index(seed, 5) % 4) != 0;   // 3 in 4 runs crash
    const bool recover = (hash_index(seed, 6) % 2) != 0;
    std::ostringstream spec;
    spec << "task:" << task_rate << ",wedge:" << wedge_rate
         << ",xfer:" << xfer_rate;
    if (crash) {
      spec << ",crash:" << crash_node << ":"
           << 100 + hash_index(seed, 7) % 400;
      if (recover) spec << ":" << 300 + hash_index(seed, 8) % 300;
    }
    FaultRunSpec rs;
    rs.seed = seed;
    rs.faults = spec.str();
    rs.task_timeout = sim::microseconds(1500.0);
    rs.retry_budget = static_cast<int>(hash_index(seed, 9) % 4);  // 0..3
    const FaultRunOutput out = run_fault_cluster(rs);
    expect_invariants(out, rs.faults.c_str());
    // Reproducibility spot-check on a slice of the soak (a full double run
    // of all 50 seeds would double the test's wall time for little gain).
    if (s % 10 == 0) {
      const FaultRunOutput again = run_fault_cluster(rs);
      EXPECT_EQ(out.metrics_json, again.metrics_json) << rs.faults;
      EXPECT_EQ(out.end_time, again.end_time) << rs.faults;
    }
  }
}

// --- end-to-end compute verification -------------------------------------------

TEST(FaultCompute, RetriedTasksVerifyAgainstCpuReferences) {
  // Compute mode executes real kernels and run_experiment() CHECKs every
  // output against the workload's CPU reference — so a surviving run proves
  // retried/redispatched tasks produced correct bytes, not just completions.
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 96;
  wcfg.threads_per_task = 64;
  baselines::RunConfig rcfg;
  rcfg.mode = gpu::ExecMode::Compute;
  rcfg.cluster.specs = {gpu::GpuSpec::titan_x(), gpu::GpuSpec::titan_x()};
  rcfg.cluster.policy = "least-loaded";
  rcfg.cluster.faults = "task:0.15,xfer:0.1";
  rcfg.cluster.task_timeout = sim::microseconds(3000.0);
  rcfg.cluster.seed = wcfg.seed;
  const harness::Measurement m =
      harness::run_experiment("MM", "Cluster", wcfg, rcfg);
  EXPECT_EQ(m.result.tasks, wcfg.num_tasks);
}

}  // namespace
}  // namespace pagoda::cluster
