// Power-plane tests: spec parsing, the energy conservation invariant
// (integrated energy == residency/issue-table decomposition, read at
// mid-window instants across many seeds), governor determinism, the
// passivity guarantee (power off == static floor-0 timing, bit for bit),
// S-state sleep/wake lifecycle with wake-latency charging and trace-phase
// tiling, and the diurnal MMPP-2 arrival process.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatcher.h"
#include "cluster/placement.h"
#include "cluster/traffic.h"
#include "engine/session.h"
#include "obs/trace_span.h"
#include "power/governor.h"
#include "power/power_model.h"
#include "power/power_spec.h"
#include "sim/process.h"

namespace pagoda::power {
namespace {

// --- spec parsing ------------------------------------------------------------

TEST(PowerSpec, ParsesDefaultAndFloor) {
  std::string err;
  const auto plain = PowerSpec::parse("default", &err);
  ASSERT_TRUE(plain.has_value()) << err;
  EXPECT_EQ(plain->p_floor, 0);
  EXPECT_DOUBLE_EQ(plain->p_clock_scale[0], 1.0);

  for (int floor = 0; floor < kNumPStates; ++floor) {
    const auto spec = PowerSpec::parse(
        "default:floor=" + std::to_string(floor), &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->p_floor, floor);
  }
}

TEST(PowerSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                  // empty
      "bogus",             // unknown table
      "default:floor=4",   // out of range
      "default:floor=-1",  // negative
      "default:floor=x",   // not a number
      "default:floor=",    // missing value
      "default:junk=1",    // unknown option
      "default:",          // dangling colon
  };
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(PowerSpec::parse(spec, &err).has_value()) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(Governor, NameRoundTrip) {
  for (const std::string_view name : all_governor_names()) {
    const auto kind = parse_governor(name);
    ASSERT_TRUE(kind.has_value()) << name;
    EXPECT_EQ(governor_name(*kind), name);
    EXPECT_FALSE(governor_description(*kind).empty());
  }
  EXPECT_FALSE(parse_governor("bogus").has_value());
  EXPECT_FALSE(parse_governor("").has_value());
}

// --- cluster harness ---------------------------------------------------------

struct RunSpec {
  int gpus = 2;
  int requests = 384;
  std::uint64_t seed = 1;
  double rate_per_sec = 100.0e3;
  std::string placement = "energy-min";
  bool power_on = true;
  int p_floor = 3;
  GovernorKind governor = GovernorKind::kDvfs;
  double cap_watts = 0.0;
  bool manage_sleep = true;
  /// Instants (virtual time) at which a probe coroutine checks the
  /// conservation invariant mid-run — between transition edges.
  std::vector<sim::Time> probe_at;
};

struct RunBox {
  static engine::SessionConfig clock_only() {
    engine::SessionConfig c;
    c.device = false;
    return c;
  }

  engine::Session session{clock_only()};
  sim::Simulation& sim = session.sim();
  cluster::Cluster fleet;
  cluster::Dispatcher disp;
  sim::Time end_time = 0;
  bool done = false;
  int probes_run = 0;

  static std::vector<cluster::NodeConfig> nodes(const RunSpec& rs) {
    cluster::NodeConfig nc;
    nc.pagoda.rows_per_column = 4;
    return std::vector<cluster::NodeConfig>(
        static_cast<std::size_t>(rs.gpus), nc);
  }

  static cluster::DispatcherConfig disp_config(const RunSpec& rs) {
    cluster::DispatcherConfig dc;
    dc.qos = true;
    if (rs.power_on) {
      PowerSpec spec = PowerSpec::default_spec();
      spec.p_floor = rs.p_floor;
      dc.power.spec = spec;
      dc.power.governor = rs.governor;
      dc.power.cap_watts = rs.cap_watts;
      dc.power.manage_sleep = rs.manage_sleep;
    }
    return dc;
  }

  explicit RunBox(const RunSpec& rs)
      : fleet(sim, nodes(rs)),
        disp(fleet, cluster::make_policy(rs.placement), disp_config(rs)) {}
};

/// The conservation identity from power_model.h, recomputed from the
/// residency and issue tables alone.
double decomposed_energy(const NodePower& np, sim::Time now) {
  const PowerSpec& spec = np.spec();
  double j = np.s_residency_seconds(0, now) * spec.node_base_watts;
  for (int s = 1; s < kNumSStates; ++s) {
    j += np.s_residency_seconds(s, now) *
         spec.s_watts[static_cast<std::size_t>(s)];
  }
  for (int i = 0; i < np.num_smms(); ++i) {
    const SmmPower& sp = np.smm_power(i);
    for (int p = 0; p < kNumPStates; ++p) {
      j += sp.c0_residency_seconds(p, now) *
           spec.p_static_watts[static_cast<std::size_t>(p)];
      j += sp.issued_work(p, now) *
           spec.p_dynamic_joules[static_cast<std::size_t>(p)];
    }
    for (int c = 1; c < kNumCStates; ++c) {
      j += sp.c_residency_seconds(c, now) *
           spec.c_watts[static_cast<std::size_t>(c)];
    }
  }
  return j;
}

void expect_conservation(const cluster::Cluster& fleet, sim::Time now) {
  for (int i = 0; i < fleet.size(); ++i) {
    const NodePower* np = fleet.node(i).power();
    ASSERT_NE(np, nullptr);
    const double integrated = np->energy_joules(now);
    const double decomposed = decomposed_energy(*np, now);
    EXPECT_NEAR(integrated, decomposed,
                1e-9 * std::max(1.0, std::abs(integrated)))
        << "node " << i << " at t=" << now;
  }
}

sim::Process probe(RunBox& box, std::vector<sim::Time> at) {
  for (const sim::Time t : at) {
    if (t > box.sim.now()) co_await box.sim.delay(t - box.sim.now());
    expect_conservation(box.fleet, box.sim.now());
    box.probes_run += 1;
  }
}

sim::Process source(RunBox& box, const RunSpec& rs,
                    obs::RequestTracer* tracer) {
  if (tracer != nullptr) box.disp.set_tracer(tracer);
  cluster::ArrivalConfig acfg;
  acfg.kind = cluster::ArrivalKind::Diurnal;
  acfg.rate_per_sec = rs.rate_per_sec;
  acfg.burst_factor = 8.0;
  acfg.mean_on = sim::milliseconds(20.0);
  cluster::ArrivalSequence seq(acfg, rs.seed);
  cluster::RequestProfile prof;
  prof.slo = sim::milliseconds(5.0);
  for (int i = 0; i < rs.requests; ++i) {
    const sim::Duration gap = seq.next_gap();
    if (gap > 0) co_await box.sim.delay(gap);
    box.disp.offer(cluster::synth_request(prof, rs.seed, i));
  }
  box.disp.close();
}

sim::Process drainer(RunBox& box) {
  co_await box.disp.drain();
  box.end_time = box.sim.now();
  box.done = true;
}

struct RunResultLite {
  std::vector<int> placements;
  std::vector<double> latencies_us;
  std::vector<double> node_energy_j;
  sim::Time end_time = 0;
  cluster::Dispatcher::Stats stats;
  PowerGovernor::Stats gov;
  std::uint64_t wakeups = 0;
  std::uint64_t transitions = 0;
  int probes_run = 0;
};

RunResultLite run_cluster(const RunSpec& rs,
                          obs::RequestTracer* tracer = nullptr) {
  RunBox box(rs);
  box.fleet.start();
  box.sim.spawn(source(box, rs, tracer));
  box.sim.spawn(drainer(box));
  if (!rs.probe_at.empty()) box.sim.spawn(probe(box, rs.probe_at));
  box.sim.run_until(sim::seconds(600.0));
  EXPECT_TRUE(box.done);

  RunResultLite out;
  out.placements = box.disp.placements();
  out.latencies_us.assign(box.disp.latencies_us().begin(),
                          box.disp.latencies_us().end());
  out.end_time = box.end_time;
  out.stats = box.disp.stats();
  out.probes_run = box.probes_run;
  if (rs.power_on) {
    EXPECT_NE(box.disp.governor(), nullptr);
    out.gov = box.disp.governor()->stats();
    for (int i = 0; i < box.fleet.size(); ++i) {
      const NodePower* np = box.fleet.node(i).power();
      EXPECT_NE(np, nullptr);
      out.node_energy_j.push_back(np->energy_joules(box.end_time));
      out.wakeups += np->wakeups();
      out.transitions += np->transitions();
    }
    expect_conservation(box.fleet, box.end_time);
  } else {
    for (int i = 0; i < box.fleet.size(); ++i) {
      EXPECT_EQ(box.fleet.node(i).power(), nullptr);
    }
  }
  box.fleet.shutdown();
  return out;
}

// --- energy conservation -----------------------------------------------------

// The core invariant, across >= 20 seeds of a state-churning scenario
// (energy-min packing + dvfs + sleep on diurnal traffic drives P, C and S
// transitions), with mid-window probe reads between transition edges — a
// read must extrapolate both sides of the identity consistently.
TEST(EnergyConservation, HoldsAcrossSeedsWithMidWindowReads) {
  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    RunSpec rs;
    rs.seed = seed;
    // Prime-ish offsets so probes land inside residency windows, not on
    // governor tick edges (multiples of 50 us).
    rs.probe_at = {sim::microseconds(1313.0), sim::microseconds(7373.0),
                   sim::milliseconds(13.37)};
    const RunResultLite r = run_cluster(rs);
    EXPECT_EQ(r.stats.completed, 384) << "seed " << seed;
    EXPECT_EQ(r.probes_run, 3) << "seed " << seed;
    EXPECT_GT(r.transitions, 0u) << "seed " << seed;
  }
}

// Same invariant under the powercap governor (cap pressure forces extra
// P-state churn) and under static pinning (no churn at all).
TEST(EnergyConservation, HoldsUnderPowercapAndStatic) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RunSpec rs;
    rs.seed = seed;
    rs.placement = "power-cap";
    rs.governor = GovernorKind::kPowerCap;
    rs.cap_watts = 150.0;
    rs.manage_sleep = false;
    rs.probe_at = {sim::microseconds(7373.0)};
    run_cluster(rs);

    RunSpec st;
    st.seed = seed;
    st.placement = "least-outstanding";
    st.governor = GovernorKind::kStatic;
    st.p_floor = 2;
    st.manage_sleep = false;
    st.probe_at = {sim::microseconds(7373.0)};
    const RunResultLite r = run_cluster(st);
    EXPECT_EQ(r.stats.completed, 384);
  }
}

// --- determinism and passivity -----------------------------------------------

// Two identical runs must agree bit-for-bit: placements, latencies, energy.
TEST(PowerDeterminism, IdenticalRunsAreByteIdentical) {
  RunSpec rs;
  rs.seed = 7;
  const RunResultLite a = run_cluster(rs);
  const RunResultLite b = run_cluster(rs);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.latencies_us, b.latencies_us);
  EXPECT_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.node_energy_j.size(), b.node_energy_j.size());
  for (std::size_t i = 0; i < a.node_energy_j.size(); ++i) {
    EXPECT_EQ(a.node_energy_j[i], b.node_energy_j[i]);  // exact doubles
  }
  EXPECT_EQ(a.gov.checks, b.gov.checks);
  EXPECT_EQ(a.gov.nodes_slept, b.gov.nodes_slept);
  EXPECT_EQ(a.wakeups, b.wakeups);
}

// Power off vs static floor-0: the governor pins P0 (clock scale exactly
// 1.0), so every timing-visible quantity must match the power-off run
// exactly — the plane meters energy without perturbing the simulation.
TEST(PowerPassivity, StaticFloorZeroMatchesPowerOffTiming) {
  RunSpec off;
  off.seed = 11;
  off.placement = "least-outstanding";
  off.power_on = false;
  const RunResultLite a = run_cluster(off);

  RunSpec metered = off;
  metered.power_on = true;
  metered.p_floor = 0;
  metered.governor = GovernorKind::kStatic;
  metered.manage_sleep = false;
  const RunResultLite b = run_cluster(metered);

  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.latencies_us, b.latencies_us);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  // ... while actually metering: energy accrues, nothing else changes.
  double total = 0.0;
  for (const double j : b.node_energy_j) total += j;
  EXPECT_GT(total, 0.0);
  EXPECT_EQ(b.stats.power_wakeup_waits, 0);
}

// --- sleep/wake lifecycle ----------------------------------------------------

// Diurnal traffic on an energy-min fleet: troughs put surplus nodes to
// sleep, the next peak wakes them, and requests granted onto a waking node
// are charged the residual S->active latency — visible in the dispatcher
// ledger AND as the power_wakeup trace phase, which must tile exactly.
TEST(SleepLifecycle, WakeLatencyIsChargedAndPhasesTile) {
  obs::RequestTracer tracer;
  RunSpec rs;
  rs.seed = 3;
  rs.requests = 4096;
  // Hot enough that a trough packs onto one node and the next peak
  // saturates it — forcing the governor to wake the sleeper mid-peak.
  rs.rate_per_sec = 800.0e3;
  const RunResultLite r = run_cluster(rs, &tracer);

  EXPECT_GT(r.gov.nodes_slept, 0u);
  EXPECT_GT(r.gov.nodes_woken, 0u);
  EXPECT_GT(r.wakeups, 0u);
  EXPECT_GT(r.stats.power_wakeup_waits, 0);

  // Every terminal record tiles: sum(buckets) == done - arrival. Requests
  // that waited on a wake-up carry it in the power_wakeup bucket.
  std::int64_t with_wakeup = 0;
  for (const obs::RequestTracer::Record& rec : tracer.records()) {
    sim::Duration sum = 0;
    for (const sim::Duration d : rec.buckets) sum += d;
    EXPECT_EQ(sum, rec.done - rec.arrival) << "uid " << rec.uid;
    const sim::Duration wake =
        rec.buckets[static_cast<std::size_t>(obs::Phase::kPowerWakeup)];
    EXPECT_GE(wake, 0);
    if (wake > 0) with_wakeup += 1;
  }
  EXPECT_EQ(with_wakeup, r.stats.power_wakeup_waits);
  // The S3 wake-up is 10 ms: at least one charged request must carry a
  // multi-millisecond power_wakeup bucket.
  sim::Duration max_wake = 0;
  for (const obs::RequestTracer::Record& rec : tracer.records()) {
    max_wake = std::max(
        max_wake,
        rec.buckets[static_cast<std::size_t>(obs::Phase::kPowerWakeup)]);
  }
  EXPECT_GT(max_wake, sim::milliseconds(1.0));
}

// Exactly-once ledger still balances when sleep management reshapes the
// fleet mid-run.
TEST(SleepLifecycle, LedgerBalancesUnderSleepManagement) {
  RunSpec rs;
  rs.seed = 5;
  rs.requests = 1024;
  const RunResultLite r = run_cluster(rs);
  EXPECT_EQ(r.stats.completed + r.stats.shed, r.stats.admitted);
  EXPECT_EQ(r.stats.slot_releases, r.stats.admitted);
  EXPECT_EQ(r.stats.dropped, 0);
}

// --- diurnal arrivals --------------------------------------------------------

TEST(DiurnalArrivals, ParseAcceptsAndRejects) {
  const auto full = cluster::ArrivalConfig::parse("diurnal:50000:6:10000");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->kind, cluster::ArrivalKind::Diurnal);
  EXPECT_DOUBLE_EQ(full->rate_per_sec, 50000.0);
  EXPECT_DOUBLE_EQ(full->burst_factor, 6.0);
  EXPECT_EQ(full->mean_on, sim::microseconds(10000.0));

  const auto defaults = cluster::ArrivalConfig::parse("diurnal:50000");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_DOUBLE_EQ(defaults->burst_factor, 4.0);

  for (const char* bad :
       {"diurnal", "diurnal:", "diurnal:0", "diurnal:-5", "diurnal:1000:1",
        "diurnal:1000:0.5", "diurnal:1000:4:0", "diurnal:1000:4:-3",
        "diurnal:1000:4:5:6"}) {
    EXPECT_FALSE(cluster::ArrivalConfig::parse(bad).has_value()) << bad;
  }
}

// Same seed -> bit-identical gap stream; different seed -> different.
TEST(DiurnalArrivals, DeterministicPerSeed) {
  cluster::ArrivalConfig cfg;
  cfg.kind = cluster::ArrivalKind::Diurnal;
  cfg.rate_per_sec = 50000.0;
  cluster::ArrivalSequence a(cfg, 42), b(cfg, 42), c(cfg, 43);
  bool differs = false;
  for (int i = 0; i < 4096; ++i) {
    const sim::Duration ga = a.next_gap();
    EXPECT_EQ(ga, b.next_gap());
    if (ga != c.next_gap()) differs = true;
  }
  EXPECT_TRUE(differs);
}

// MMPP-2 statistics: equal mean phase lengths -> ~50% duty cycle, and the
// long-run mean rate converges to the configured rate (the peak/trough
// construction preserves the mean by design).
TEST(DiurnalArrivals, DutyCycleAndMeanRateConverge) {
  cluster::ArrivalConfig cfg;
  cfg.kind = cluster::ArrivalKind::Diurnal;
  cfg.rate_per_sec = 50000.0;
  cfg.burst_factor = 8.0;
  cfg.mean_on = sim::milliseconds(5.0);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    cluster::ArrivalSequence seq(cfg, seed);
    const int n = 200000;
    sim::Duration total = 0;
    for (int i = 0; i < n; ++i) total += seq.next_gap();
    const double occupancy = seq.on_fraction();
    EXPECT_GT(occupancy, 0.40) << "seed " << seed;
    EXPECT_LT(occupancy, 0.60) << "seed " << seed;
    const double mean_rate =
        static_cast<double>(n) / sim::to_seconds(total);
    EXPECT_NEAR(mean_rate, cfg.rate_per_sec, 0.05 * cfg.rate_per_sec)
        << "seed " << seed;
  }
}

// The peak phase must actually run hotter than the trough: split the gap
// stream by phase and compare conditional rates.
TEST(DiurnalArrivals, PeakRunsHotterThanTrough) {
  cluster::ArrivalConfig cfg;
  cfg.kind = cluster::ArrivalKind::Diurnal;
  cfg.rate_per_sec = 50000.0;
  cfg.burst_factor = 8.0;
  cfg.mean_on = sim::milliseconds(5.0);
  cluster::ArrivalSequence seq(cfg, 9);
  sim::Duration prev_gap = 0;
  std::vector<double> gaps;
  for (int i = 0; i < 100000; ++i) {
    gaps.push_back(sim::to_seconds(seq.next_gap()));
    (void)prev_gap;
  }
  // The gap distribution is bimodal (rate ratio 8): the mean gap must sit
  // well above the pure-peak mean and below the pure-trough mean.
  double sum = 0.0;
  for (const double g : gaps) sum += g;
  const double mean_gap = sum / static_cast<double>(gaps.size());
  const double peak_rate = cfg.rate_per_sec * 2.0 * cfg.burst_factor /
                           (cfg.burst_factor + 1.0);
  EXPECT_GT(mean_gap, 1.0 / peak_rate);
  EXPECT_LT(mean_gap, cfg.burst_factor / peak_rate);
}

}  // namespace
}  // namespace pagoda::power
