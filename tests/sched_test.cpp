// Tests for the QoS scheduling layer (src/sched): the on-descriptor ABI,
// policy comparators (priority / edf / wfq weighted shares), batch ordering,
// the policy-ordered ReadyQueue (grant order, eviction, close semantics),
// and the end-to-end invariant that switching policies never perturbs the
// Model-vs-Compute timing identity.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "pagoda/task_table.h"
#include "sched/policy.h"
#include "sched/ready_queue.h"
#include "sim/process.h"
#include "sim/simulation.h"

namespace pagoda::sched {
namespace {

// The QoS tags (sched_class, deadline_us) must live in the descriptor's
// padding holes: growing TaskParams would change kEntryCopyBytes and with
// it every PCIe copy charge, shifting all golden timings.
static_assert(sizeof(runtime::TaskParams) == 224,
              "QoS tags must not grow the spawn descriptor");
static_assert(sizeof(runtime::TaskEntry) == 240,
              "QoS tags must not grow the TaskTable entry");
static_assert(runtime::kEntryCopyBytes == sizeof(runtime::TaskEntry));

SchedKey key(Class c, std::uint64_t seq, sim::Time deadline = 0,
             double cost = 1.0) {
  SchedKey k;
  k.cls = c;
  k.seq = seq;
  k.deadline = deadline;
  k.cost = cost;
  return k;
}

// --- parsing and the class ABI ------------------------------------------------

TEST(SchedClass, ParseRoundTripsAndClamps) {
  for (const Class c :
       {Class::kInteractive, Class::kStandard, Class::kBatch}) {
    const auto parsed = parse_class(to_string(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
    EXPECT_EQ(class_from_raw(static_cast<std::uint8_t>(c)), c);
  }
  EXPECT_FALSE(parse_class("premium").has_value());
  // A corrupted tag degrades service instead of escalating it.
  EXPECT_EQ(class_from_raw(3), Class::kBatch);
  EXPECT_EQ(class_from_raw(255), Class::kBatch);
}

TEST(SchedPolicyKind, ParseRoundTrips) {
  for (const PolicyKind k : {PolicyKind::kFifo, PolicyKind::kPriority,
                             PolicyKind::kEdf, PolicyKind::kWfq}) {
    const auto parsed = parse_policy_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_policy_kind("sjf").has_value());
}

TEST(SchedDeadline, MicrosecondEncodingRoundTrips) {
  EXPECT_EQ(deadline_to_us(0), 0u);
  EXPECT_EQ(deadline_from_us(0), 0);
  // A real deadline never encodes to 0 ("no deadline"), however small.
  EXPECT_GE(deadline_to_us(1), 1u);
  const sim::Time t = sim::microseconds(1500.0);
  EXPECT_EQ(deadline_from_us(deadline_to_us(t)), t);
}

// --- comparators --------------------------------------------------------------

TEST(SchedPolicy, FifoOrdersBySequenceOnly) {
  Policy p;  // default config = fifo
  EXPECT_TRUE(p.fifo());
  EXPECT_TRUE(p.before(key(Class::kBatch, 0), key(Class::kInteractive, 1)));
  EXPECT_FALSE(p.before(key(Class::kInteractive, 2), key(Class::kBatch, 1)));
}

TEST(SchedPolicy, PriorityOrdersByClassThenSequence) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kPriority;
  Policy p(cfg);
  EXPECT_TRUE(p.before(key(Class::kInteractive, 9), key(Class::kBatch, 0)));
  EXPECT_TRUE(p.before(key(Class::kStandard, 9), key(Class::kBatch, 0)));
  EXPECT_FALSE(p.before(key(Class::kBatch, 0), key(Class::kStandard, 9)));
  // Same class: FIFO within.
  EXPECT_TRUE(p.before(key(Class::kBatch, 3), key(Class::kBatch, 4)));
}

TEST(SchedPolicy, EdfOrdersByDeadlineAndRanksUndatedLast) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kEdf;
  Policy p(cfg);
  EXPECT_TRUE(p.before(key(Class::kBatch, 9, sim::microseconds(10.0)),
                       key(Class::kInteractive, 0, sim::microseconds(20.0))));
  // deadline == 0 means none: ranks after every dated key.
  EXPECT_TRUE(p.before(key(Class::kBatch, 9, sim::microseconds(10.0)),
                       key(Class::kInteractive, 0, 0)));
  // Both undated: sequence decides.
  EXPECT_TRUE(p.before(key(Class::kBatch, 1, 0), key(Class::kBatch, 2, 0)));
}

TEST(SchedPolicy, WfqDeliversWeightedSharesUnderSaturation) {
  // Saturated server, one backlogged flow per class, unit cost: the served
  // counts must track the configured 4:2:1 shares.
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kWfq;
  cfg.weights = {4.0, 2.0, 1.0};
  Policy p(cfg);
  std::array<SchedKey, kNumClasses> head;
  std::uint64_t seq = 0;
  for (int c = 0; c < kNumClasses; ++c) {
    head[static_cast<std::size_t>(c)] = key(static_cast<Class>(c), seq++);
    p.admit(head[static_cast<std::size_t>(c)]);
  }
  std::array<int, kNumClasses> served{};
  constexpr int kRounds = 700;
  for (int i = 0; i < kRounds; ++i) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < head.size(); ++c) {
      if (p.before(head[c], head[best])) best = c;
    }
    served[best] += 1;
    p.served(head[best]);
    head[best] = key(static_cast<Class>(best), seq++);
    p.admit(head[best]);
  }
  EXPECT_NEAR(static_cast<double>(served[0]) / kRounds, 4.0 / 7.0, 0.01);
  EXPECT_NEAR(static_cast<double>(served[1]) / kRounds, 2.0 / 7.0, 0.01);
  EXPECT_NEAR(static_cast<double>(served[2]) / kRounds, 1.0 / 7.0, 0.01);
}

TEST(SchedPolicy, OrderIsStableAndPolicyDriven) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kPriority;
  Policy p(cfg);
  std::vector<SchedKey> keys = {
      key(Class::kBatch, 0), key(Class::kInteractive, 1),
      key(Class::kBatch, 2), key(Class::kInteractive, 3)};
  EXPECT_EQ(p.order(keys), (std::vector<int>{1, 3, 0, 2}));

  Policy fifo;
  EXPECT_EQ(fifo.order(keys), (std::vector<int>{0, 1, 2, 3}));
}

// --- ReadyQueue ---------------------------------------------------------------

struct QueueProbe {
  std::vector<int> granted;   // ids in grant order
  std::vector<int> evicted;   // ids woken by evict_worst
  std::vector<int> ungranted; // ids woken by close()
};

sim::Process acquirer(ReadyQueue& q, SchedKey k, int id, QueueProbe& probe) {
  const ReadyQueue::Grant g = co_await q.acquire(k);
  if (g.granted) {
    probe.granted.push_back(id);
  } else if (g.evicted) {
    probe.evicted.push_back(id);
  } else {
    probe.ungranted.push_back(id);
  }
}

sim::Process releaser(sim::Simulation& sim, ReadyQueue& q, int times) {
  for (int i = 0; i < times; ++i) {
    co_await sim.delay(10);
    q.release();
  }
}

TEST(ReadyQueue, GrantsParkedWaitersInPolicyOrder) {
  sim::Simulation sim;
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kPriority;
  Policy policy(cfg);
  ReadyQueue q(sim, 1, policy);
  QueueProbe probe;
  sim.spawn(acquirer(q, key(Class::kBatch, 0), 0, probe));  // takes the slot
  sim.spawn(acquirer(q, key(Class::kBatch, 1), 1, probe));
  sim.spawn(acquirer(q, key(Class::kStandard, 2), 2, probe));
  sim.spawn(acquirer(q, key(Class::kInteractive, 3), 3, probe));
  sim.spawn(releaser(sim, q, 3));
  sim.run();
  // Slot 0 granted synchronously; releases then pick interactive first,
  // standard next, batch last — not arrival order.
  EXPECT_EQ(probe.granted, (std::vector<int>{0, 3, 2, 1}));
}

TEST(ReadyQueue, FifoGrantsInArrivalOrder) {
  sim::Simulation sim;
  Policy policy;
  ReadyQueue q(sim, 1, policy);
  QueueProbe probe;
  sim.spawn(acquirer(q, key(Class::kBatch, 0), 0, probe));
  sim.spawn(acquirer(q, key(Class::kInteractive, 1), 1, probe));
  sim.spawn(acquirer(q, key(Class::kInteractive, 2), 2, probe));
  sim.spawn(releaser(sim, q, 2));
  sim.run();
  EXPECT_EQ(probe.granted, (std::vector<int>{0, 1, 2}));
}

TEST(ReadyQueue, EvictWorstWakesThePolicyWorstWaiter) {
  sim::Simulation sim;
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kPriority;
  Policy policy(cfg);
  ReadyQueue q(sim, 0, policy);  // nothing ever granted
  QueueProbe probe;
  sim.spawn(acquirer(q, key(Class::kInteractive, 0), 0, probe));
  sim.spawn(acquirer(q, key(Class::kBatch, 1), 1, probe));
  sim.spawn(acquirer(q, key(Class::kBatch, 2), 2, probe));
  sim.run_until(1);
  ASSERT_EQ(q.waiting(), 3u);
  ASSERT_NE(q.worst(), nullptr);
  EXPECT_EQ(q.worst()->seq, 2u);  // latest batch arrival loses
  q.evict_worst();
  q.evict_worst();
  sim.run();
  EXPECT_EQ(probe.evicted, (std::vector<int>{2, 1}));
  EXPECT_TRUE(probe.granted.empty());
  EXPECT_EQ(q.waiting(), 1u);  // the interactive waiter stays parked
  q.close();
  sim.run();
  EXPECT_EQ(probe.ungranted, (std::vector<int>{0}));
}

TEST(ReadyQueue, CloseWakesEveryWaiterUngrantedInArrivalOrder) {
  sim::Simulation sim;
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kEdf;
  Policy policy(cfg);
  ReadyQueue q(sim, 0, policy);
  QueueProbe probe;
  for (int i = 0; i < 3; ++i) {
    sim.spawn(acquirer(q, key(Class::kStandard, static_cast<std::uint64_t>(i),
                              sim::microseconds(100.0 - i)),
                       i, probe));
  }
  sim.run_until(1);
  q.close();
  sim.run();
  // close() matches sim::Semaphore: deque (arrival) order, not policy order.
  EXPECT_EQ(probe.ungranted, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(probe.granted.empty());
  q.reopen();
  EXPECT_FALSE(q.closed());
}

// --- end-to-end: timing is mode- and policy-consistent ------------------------

TEST(SchedEndToEnd, ModelComputeTimingIdenticalUnderEveryPolicy) {
  // The claim pass charges the same scheduler-warp cycles whichever order
  // it claims in, so Model and Compute runs must agree on elapsed time
  // under every policy — the same invariant the fifo goldens pin.
  for (const PolicyKind kind : {PolicyKind::kFifo, PolicyKind::kPriority,
                                PolicyKind::kEdf, PolicyKind::kWfq}) {
    workloads::WorkloadConfig wcfg;
    wcfg.num_tasks = 96;
    baselines::RunConfig rcfg;
    rcfg.pagoda.sched.kind = kind;
    rcfg.mode = gpu::ExecMode::Model;
    const harness::Measurement model =
        harness::run_experiment("MM", "Pagoda", wcfg, rcfg);
    rcfg.mode = gpu::ExecMode::Compute;
    const harness::Measurement compute =
        harness::run_experiment("MM", "Pagoda", wcfg, rcfg);
    EXPECT_EQ(model.result.elapsed, compute.result.elapsed)
        << to_string(kind);
  }
}

TEST(SchedEndToEnd, NonFifoPoliciesStillCompleteEveryTask) {
  for (const PolicyKind kind :
       {PolicyKind::kPriority, PolicyKind::kEdf, PolicyKind::kWfq}) {
    workloads::WorkloadConfig wcfg;
    wcfg.num_tasks = 64;
    baselines::RunConfig rcfg;
    rcfg.pagoda.sched.kind = kind;
    rcfg.task_class = Class::kInteractive;
    const harness::Measurement m =
        harness::run_experiment("CONV", "Pagoda", wcfg, rcfg);
    EXPECT_TRUE(m.result.completed) << to_string(kind);
    EXPECT_EQ(m.result.tasks, 64) << to_string(kind);
  }
}

}  // namespace
}  // namespace pagoda::sched
