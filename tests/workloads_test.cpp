// Workload correctness and cost-model invariants.
//
// Each workload's kernels are driven inline (outside any runtime) through
// the warp-coroutine interface, then verified against the CPU reference.
// A parameterized suite also asserts the key timing invariant: Model and
// Compute modes charge identical cycles.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.h"
#include "workloads/workload.h"

namespace pagoda::workloads {
namespace {

/// Drives one task's kernel to completion, honoring block barriers, without
/// any simulator: warps of a block advance in rounds. Returns total charged
/// (issue, stall) cycles across all warps.
std::pair<double, double> run_task_inline(const TaskSpec& spec,
                                          gpu::ExecMode mode) {
  const runtime::TaskParams& p = spec.params;
  double issue = 0.0;
  double stall = 0.0;
  for (int block = 0; block < p.num_blocks; ++block) {
    const int warps = p.warps_per_block();
    std::vector<gpu::WarpCtx> ctxs(static_cast<std::size_t>(warps));
    std::vector<std::unique_ptr<gpu::KernelCoro>> coros;
    std::vector<std::byte> shmem(
        static_cast<std::size_t>(p.shared_mem_bytes));
    for (int w = 0; w < warps; ++w) {
      gpu::WarpCtx& ctx = ctxs[static_cast<std::size_t>(w)];
      ctx.warp_in_task = block * warps + w;
      ctx.block_index = block;
      ctx.warp_in_block = w;
      ctx.threads_per_block = p.threads_per_block;
      ctx.num_blocks = p.num_blocks;
      ctx.mode = mode;
      ctx.args = p.args.data();
      ctx.shared_mem = std::span<std::byte>(shmem);
      coros.push_back(std::make_unique<gpu::KernelCoro>(
          p.fn(ctxs[static_cast<std::size_t>(w)])));
    }
    // Rounds: resume every live warp once per round (barrier semantics).
    bool any_live = true;
    int rounds = 0;
    while (any_live) {
      any_live = false;
      if (rounds++ > 100000) {
        ADD_FAILURE() << "kernel never terminates";
        break;
      }
      for (int w = 0; w < warps; ++w) {
        auto& coro = *coros[static_cast<std::size_t>(w)];
        if (coro.done()) continue;
        const gpu::SegmentResult seg =
            gpu::run_segment(coro, ctxs[static_cast<std::size_t>(w)]);
        issue += seg.cycles;
        stall += seg.stall_cycles;
        if (seg.at_barrier) any_live = true;
      }
    }
  }
  return {issue, stall};
}

// Using void return to allow ASSERT inside.
void run_task_inline_checked(const TaskSpec& spec, gpu::ExecMode mode,
                             double& issue, double& stall) {
  auto [i, s] = run_task_inline(spec, mode);
  issue = i;
  stall = s;
}

class WorkloadCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadCorrectness, ComputeModeMatchesReference) {
  auto wl = make_workload(GetParam());
  WorkloadConfig cfg;
  cfg.num_tasks = 8;
  cfg.threads_per_task = 128;
  cfg.mode = gpu::ExecMode::Compute;
  wl->generate(cfg);
  ASSERT_EQ(wl->tasks().size(), 8u);
  for (const TaskSpec& spec : wl->tasks()) {
    double issue = 0.0;
    double stall = 0.0;
    run_task_inline_checked(spec, gpu::ExecMode::Compute, issue, stall);
    EXPECT_GT(issue, 0.0) << "kernel charged no issue cycles";
  }
  EXPECT_TRUE(wl->verify()) << GetParam() << " output mismatch";
}

TEST_P(WorkloadCorrectness, ModelModeChargesIdenticalCycles) {
  auto wl = make_workload(GetParam());
  WorkloadConfig cfg;
  cfg.num_tasks = 4;
  cfg.threads_per_task = 96;
  cfg.mode = gpu::ExecMode::Compute;
  wl->generate(cfg);
  for (const TaskSpec& spec : wl->tasks()) {
    double ci = 0.0;
    double cs = 0.0;
    double mi = 0.0;
    double ms = 0.0;
    run_task_inline_checked(spec, gpu::ExecMode::Compute, ci, cs);
    run_task_inline_checked(spec, gpu::ExecMode::Model, mi, ms);
    EXPECT_DOUBLE_EQ(ci, mi) << "issue charges differ between modes";
    EXPECT_DOUBLE_EQ(cs, ms) << "stall charges differ between modes";
  }
}

TEST_P(WorkloadCorrectness, ResetOutputsAllowsReRun) {
  auto wl = make_workload(GetParam());
  if (GetParam() == "SLUD") return;  // in-place tasks regenerate inputs
  WorkloadConfig cfg;
  cfg.num_tasks = 3;
  cfg.threads_per_task = 64;
  cfg.mode = gpu::ExecMode::Compute;
  wl->generate(cfg);
  for (const TaskSpec& spec : wl->tasks()) {
    double i = 0.0;
    double s = 0.0;
    run_task_inline_checked(spec, gpu::ExecMode::Compute, i, s);
  }
  ASSERT_TRUE(wl->verify());
  wl->reset_outputs();
  EXPECT_FALSE(wl->verify());  // outputs cleared
  for (const TaskSpec& spec : wl->tasks()) {
    double i = 0.0;
    double s = 0.0;
    run_task_inline_checked(spec, gpu::ExecMode::Compute, i, s);
  }
  EXPECT_TRUE(wl->verify());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadCorrectness,
                         ::testing::Values("MB", "FB", "BF", "CONV", "DCT",
                                           "MM", "SLUD", "3DES", "MPE"),
                         [](const auto& info) { return info.param; });

// Thread-count sweep (Fig 7's axis): work per task must be constant across
// thread counts — only the distribution changes.
class ThreadCountInvariance : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountInvariance, TotalChargesIndependentOfThreads) {
  auto wl = make_workload("CONV");
  WorkloadConfig cfg;
  cfg.num_tasks = 2;
  cfg.threads_per_task = GetParam();
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  double total = 0.0;
  for (const TaskSpec& spec : wl->tasks()) {
    double i = 0.0;
    double s = 0.0;
    run_task_inline_checked(spec, gpu::ExecMode::Model, i, s);
    total += i;
  }
  // Charges are warp instructions: one instruction covers the warp's 32
  // lanes, so a 128x128 image costs pixels/32 warp-iterations of 56
  // issue-cycles each. Strided loops may round up per warp: within 5%.
  const double expected = 2.0 * 128 * 128 / 32.0 * 56.0;
  EXPECT_NEAR(total, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountInvariance,
                         ::testing::Values(32, 64, 128, 256, 512));

TEST(Workloads, IrregularSizesVaryAcrossTasks) {
  auto wl = make_workload("3DES");
  WorkloadConfig cfg;
  cfg.num_tasks = 64;
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  std::int64_t min_b = wl->tasks()[0].h2d_bytes;
  std::int64_t max_b = min_b;
  for (const TaskSpec& t : wl->tasks()) {
    min_b = std::min(min_b, t.h2d_bytes);
    max_b = std::max(max_b, t.h2d_bytes);
  }
  EXPECT_GE(min_b, 2 * 1024);
  EXPECT_LE(max_b, 64 * 1024);
  EXPECT_GT(max_b, 2 * min_b) << "packet sizes should spread";
}

TEST(Workloads, SludHasDependencyWaves) {
  auto wl = make_workload("SLUD");
  WorkloadConfig cfg;
  cfg.num_tasks = 100;
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  int max_wave = 0;
  int wave0 = 0;
  for (const TaskSpec& t : wl->tasks()) {
    max_wave = std::max(max_wave, t.wave);
    if (t.wave == 0) ++wave0;
  }
  EXPECT_GT(max_wave, 2);      // several dependency levels
  EXPECT_EQ(wave0, 50);        // leaf-heavy: half the tasks in wave 0
}

TEST(Workloads, MpeInterleavesFourApplications) {
  auto wl = make_workload("MPE");
  WorkloadConfig cfg;
  cfg.num_tasks = 16;
  cfg.mode = gpu::ExecMode::Model;
  wl->generate(cfg);
  ASSERT_EQ(wl->tasks().size(), 16u);
  // Consecutive tasks come from different applications: kernel fns differ.
  const auto& tasks = wl->tasks();
  EXPECT_NE(tasks[0].params.fn, tasks[1].params.fn);
  EXPECT_NE(tasks[1].params.fn, tasks[2].params.fn);
  EXPECT_NE(tasks[2].params.fn, tasks[3].params.fn);
  // Stream repeats with period 4.
  EXPECT_EQ(tasks[0].params.fn, tasks[4].params.fn);
}

TEST(Workloads, RegisterCountsMatchTable3) {
  const std::pair<const char*, int> expected[] = {
      {"MB", 28}, {"FB", 21}, {"BF", 34},   {"CONV", 25},
      {"DCT", 33}, {"MM", 30}, {"SLUD", 17}, {"3DES", 26}};
  for (const auto& [name, regs] : expected) {
    auto wl = make_workload(name);
    EXPECT_EQ(wl->traits().default_registers, regs) << name;
  }
}

TEST(Workloads, Table3FlagsMatch) {
  EXPECT_TRUE(make_workload("MB")->traits().irregular);
  EXPECT_TRUE(make_workload("SLUD")->traits().irregular);
  EXPECT_TRUE(make_workload("3DES")->traits().irregular);
  EXPECT_FALSE(make_workload("CONV")->traits().irregular);
  EXPECT_TRUE(make_workload("FB")->traits().needs_sync);
  EXPECT_TRUE(make_workload("DCT")->traits().needs_sync);
  EXPECT_TRUE(make_workload("MM")->traits().may_use_shared);
  EXPECT_FALSE(make_workload("BF")->traits().may_use_shared);
}

}  // namespace
}  // namespace pagoda::workloads
