// PCIe model tests: real byte transport, FIFO engine semantics, and the
// §4.2.1 intra-transaction ordering hazard that motivates the TaskTable's
// pipelined ready-field protocol.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pcie/pcie_bus.h"
#include "sim/simulation.h"

namespace pagoda::pcie {
namespace {

TEST(PcieBus, CopyMovesRealBytes) {
  sim::Simulation sim;
  PcieBus bus(sim, PcieConfig{});
  std::vector<std::byte> src(1024);
  std::vector<std::byte> dst(1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 7);
  }
  bool done = false;
  bus.copy(Direction::HostToDevice, dst.data(), src.data(), src.size(),
           [&] { done = true; });
  // Bytes must NOT be visible before the transfer completes.
  EXPECT_NE(std::memcmp(dst.data(), src.data(), src.size()), 0);
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST(PcieBus, NullPointersSkipDataMovement) {
  sim::Simulation sim;
  PcieBus bus(sim, PcieConfig{});
  bool done = false;
  bus.copy(Direction::DeviceToHost, nullptr, nullptr, 1 << 20,
           [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);  // timing-only copies still complete
}

TEST(PcieBus, DirectionsAreIndependentEngines) {
  sim::Simulation sim;
  PcieConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e9;
  cfg.latency = 0;
  cfg.transaction_gap = 0;
  PcieBus bus(sim, cfg);
  sim::Time h2d_done = -1;
  sim::Time d2h_done = -1;
  bus.copy(Direction::HostToDevice, nullptr, nullptr, 1000,
           [&] { h2d_done = sim.now(); });
  bus.copy(Direction::DeviceToHost, nullptr, nullptr, 1000,
           [&] { d2h_done = sim.now(); });
  sim.run();
  // Full duplex: both finish in 1us, not serialized.
  EXPECT_EQ(h2d_done, sim::microseconds(1));
  EXPECT_EQ(d2h_done, sim::microseconds(1));
}

TEST(PcieBus, SameDirectionCopiesServeFifo) {
  sim::Simulation sim;
  PcieConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1e9;
  cfg.latency = 0;
  cfg.transaction_gap = 0;
  PcieBus bus(sim, cfg);
  std::vector<sim::Time> done;
  for (int i = 0; i < 3; ++i) {
    bus.copy(Direction::HostToDevice, nullptr, nullptr, 1000,
             [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], sim::microseconds(1));
  EXPECT_EQ(done[1], sim::microseconds(2));
  EXPECT_EQ(done[2], sim::microseconds(3));
}

// The §4.2.1 hazard: a task's parameters and its ready flag copied in ONE
// transaction can become visible to the GPU in either order — a naive
// "params + flag in one memcpy" protocol would let the GPU schedule a task
// whose parameters have not landed.
TEST(PcieBus, IntraTransactionWriteOrderIsNotGuaranteed) {
  struct NaiveEntry {
    int params;
    int ready;
  };
  bool saw_flag_before_params = false;
  // Try several transactions; the reorder choice is deterministic per seed
  // and transaction index, so within a few tries both orders appear.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Simulation sim;
    PcieBus bus(sim, PcieConfig{});
    NaiveEntry cpu{42, 1};
    NaiveEntry gpu{0, 0};
    bool mid_flight_flag_set_without_params = false;
    // Poll the GPU view mid-flight, like a scheduler warp would.
    for (int t = 1; t < 40; ++t) {
      sim.after(sim::microseconds(static_cast<double>(t) * 0.2), [&] {
        if (gpu.ready == 1 && gpu.params != 42) {
          mid_flight_flag_set_without_params = true;
        }
      });
    }
    bus.copy_two_regions_unordered(
        Direction::HostToDevice, &gpu.params, &cpu.params, sizeof(int),
        &gpu.ready, &cpu.ready, sizeof(int), seed, [] {});
    sim.run();
    // After completion both regions are consistent...
    EXPECT_EQ(gpu.params, 42);
    EXPECT_EQ(gpu.ready, 1);
    saw_flag_before_params |= mid_flight_flag_set_without_params;
  }
  // ...but some transaction exposed the flag before the parameters: the
  // naive protocol is unsound, which is why Pagoda's ready field carries
  // the PREVIOUS task's id instead.
  EXPECT_TRUE(saw_flag_before_params);
}

}  // namespace
}  // namespace pagoda::pcie
