// Harness tests: experiment plumbing, per-runtime workload adjustment,
// table formatting, and determinism of measurements.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/calibration.h"
#include "harness/experiment.h"
#include "harness/flags.h"

namespace pagoda::harness {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, GetIntParsesAndDefaults) {
  const Flags f = make_flags({"--tasks=4096", "--neg=-12"});
  EXPECT_EQ(f.get_int("tasks", 1), 4096);
  EXPECT_EQ(f.get_int("neg", 1), -12);
  EXPECT_EQ(f.get_int("absent", 17), 17);
}

TEST(Flags, GetDoubleParsesAndDefaults) {
  const Flags f = make_flags({"--rate=2.5e3", "--frac=0.125"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 2500.0);
  EXPECT_DOUBLE_EQ(f.get_double("frac", 0.0), 0.125);
  EXPECT_DOUBLE_EQ(f.get_double("absent", 1.5), 1.5);
}

TEST(FlagsDeathTest, GetIntRejectsTrailingGarbage) {
  // Regression: --tasks=12abc used to silently parse as 12.
  const Flags f = make_flags({"--tasks=12abc"});
  EXPECT_EXIT(f.get_int("tasks", 1), ::testing::ExitedWithCode(2),
              "invalid value for --tasks: '12abc'");
}

TEST(FlagsDeathTest, GetIntRejectsNonNumeric) {
  const Flags f = make_flags({"--tasks=lots"});
  EXPECT_EXIT(f.get_int("tasks", 1), ::testing::ExitedWithCode(2),
              "invalid value for --tasks");
}

TEST(FlagsDeathTest, GetDoubleRejectsTrailingGarbage) {
  const Flags f = make_flags({"--rate=1.5x"});
  EXPECT_EXIT(f.get_double("rate", 0.0), ::testing::ExitedWithCode(2),
              "invalid value for --rate: '1.5x'");
}

TEST(Experiment, GemtcGetsNoSharedMemoryVariant) {
  // §6.2: GeMTC cannot use shared memory; run_experiment must generate the
  // no-shmem MM variant for it (otherwise supports() would reject it).
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 16;
  wcfg.use_shared_memory = true;
  EXPECT_TRUE(runtime_supports("MM", "GeMTC", wcfg));
  const Measurement m =
      run_experiment("MM", "GeMTC", wcfg, paper_platform());
  EXPECT_TRUE(m.result.completed);
}

TEST(Experiment, MeasurementsAreDeterministic) {
  workloads::WorkloadConfig wcfg;
  wcfg.num_tasks = 64;
  const baselines::RunConfig rcfg = paper_platform();
  const Measurement a = run_experiment("3DES", "Pagoda", wcfg, rcfg);
  const Measurement b = run_experiment("3DES", "Pagoda", wcfg, rcfg);
  EXPECT_EQ(a.result.elapsed, b.result.elapsed);
  EXPECT_EQ(a.result.h2d_wire_busy, b.result.h2d_wire_busy);
}

TEST(Experiment, SpeedupIsRatioOfTimes) {
  Measurement base;
  base.result.elapsed = sim::milliseconds(10.0);
  Measurement faster;
  faster.result.elapsed = sim::milliseconds(4.0);
  EXPECT_NEAR(speedup(base, faster), 2.5, 1e-12);
}

TEST(TableFormat, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1.00x"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableFormat, Formatters) {
  EXPECT_EQ(fmt_x(5.701), "5.70x");
  EXPECT_EQ(fmt_pct(0.1667), "16.7%");
  EXPECT_EQ(fmt_ms(sim::milliseconds(12.345)), "12.35 ms");
  EXPECT_EQ(fmt_us(55.04), "55.0 us");
}

}  // namespace
}  // namespace pagoda::harness
